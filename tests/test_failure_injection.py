"""Failure injection: the pipeline under realistic acquisition faults.

A point-of-care device sees everything: grip released mid-measurement,
amplifier saturation, skipped beats, connector pops.  The chain must
degrade *gracefully* — keep analysing the good parts, gate out the
bad, and never report garbage as physiology.
"""

import numpy as np
import pytest

from repro.core import BeatToBeatPipeline
from repro.ecg.quality import assess_quality, clipping_fraction, flatline_fraction
from repro.errors import SignalError
from repro.synth import SynthesisConfig, default_cohort, synthesize_recording

FS = 250.0


@pytest.fixture(scope="module")
def base_recording():
    subject = default_cohort()[1]
    return synthesize_recording(
        subject, "thoracic", 1,
        SynthesisConfig(duration_s=20.0, include_motion=False,
                        include_powerline=False))


def _process(ecg, z):
    return BeatToBeatPipeline(FS).process(ecg, z)


def test_mid_recording_dropout(base_recording):
    """2 s of lost contact (flatline on both channels): the remaining
    beats are still analysed and HR stays near truth."""
    ecg = base_recording.channel("ecg").copy()
    z = base_recording.channel("z").copy()
    lo, hi = int(8 * FS), int(10 * FS)
    ecg[lo:hi] = ecg[lo]
    z[lo:hi] = z[lo]
    result = _process(ecg, z)
    # Dropout is visible to the quality gate.
    assert flatline_fraction(ecg, FS) > 0.05
    # The good segments still produce physiological numbers.
    assert result.mean_pep_s == pytest.approx(
        base_recording.meta["true_pep_s"], abs=0.04)
    assert 0.15 < result.mean_lvet_s < 0.45


def test_amplifier_saturation(base_recording):
    """Hard clipping of the ECG: detection survives, quality flags it."""
    ecg = np.clip(base_recording.channel("ecg"), -0.4, 0.6)
    z = base_recording.channel("z")
    result = _process(ecg, z)
    truth = base_recording.annotation("r_times_s")
    assert result.r_peak_times_s.size >= truth.size - 3
    assert clipping_fraction(ecg) > 0.01


def test_skipped_beat_arrhythmia(base_recording):
    """One suppressed QRS (blocked beat): the long RR window spans two
    cycles; the detector must not fabricate a beat and the intervals
    from other beats stay clean."""
    ecg = base_recording.channel("ecg").copy()
    truth = base_recording.annotation("r_times_s")
    victim = truth[6]
    lo = int((victim - 0.25) * FS)
    hi = int((victim + 0.35) * FS)
    ecg[lo:hi] = np.linspace(ecg[lo], ecg[hi], hi - lo)  # excise the beat
    result = _process(ecg, base_recording.channel("z"))
    detected = result.r_peak_times_s
    # No spurious extra detections (search-back may legitimately claim
    # a residual ICG deflection, but never more peaks than real beats),
    # and the intervals from intact beats stay clean.
    assert detected.size <= truth.size
    assert result.mean_pep_s == pytest.approx(
        base_recording.meta["true_pep_s"], abs=0.04)


def test_electrode_pop_transient(base_recording):
    """A large step transient on Z (connector pop) corrupts at most the
    beats it touches."""
    z = base_recording.channel("z").copy()
    pop_at = int(11.3 * FS)
    z[pop_at:] += 0.8   # step change of 0.8 ohm
    result = _process(base_recording.channel("ecg"), z)
    # Gated intervals remain physiological.
    assert 0.04 < result.mean_pep_s < 0.2
    assert 0.15 < result.mean_lvet_s < 0.45
    # Most beats still analysed.
    truth = base_recording.annotation("r_times_s")
    assert result.n_beats_detected >= truth.size - 4


def test_wrong_channel_order_is_caught(base_recording):
    """Feeding Z as ECG (a classic wiring bug) must not silently
    produce physiology: either detection fails or quality rejects."""
    ecg = base_recording.channel("ecg")
    z = base_recording.channel("z")
    try:
        result = _process(z - np.mean(z), 25.0 + ecg)
    except SignalError:
        return
    verdict = assess_quality(z - np.mean(z), FS, result.r_peak_indices)
    assert not verdict.acceptable


def test_all_zero_impedance_fails_loudly(base_recording):
    ecg = base_recording.channel("ecg")
    with pytest.raises(SignalError):
        _process(ecg, np.zeros(ecg.size))


def test_nan_burst_does_not_propagate_silently(base_recording):
    """NaNs from a DMA glitch: the pipeline must not return NaN
    physiology without any signal of trouble."""
    z = base_recording.channel("z").copy()
    z[1000:1010] = np.nan
    ecg = base_recording.channel("ecg")
    try:
        result = _process(ecg, z)
    except (SignalError, ValueError):
        return  # loud failure is acceptable
    # If it returns, the summary must be finite (NaNs were gated out)
    # or explicitly non-finite Z0 (visible to the caller).
    summary = result.summary()
    assert not np.isfinite(summary["z0_ohm"]) or np.isfinite(
        summary["pep_s"])
