"""Shard partition/merge: determinism, bit-identity with the serial
study, validation of incomplete or inconsistent shard sets."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError, ProtocolError
from repro.experiments import (
    ProtocolConfig,
    StudyShard,
    merge_shards,
    partition_jobs,
    run_study,
    run_study_shard,
    study_jobs,
)
from repro.synth import default_cohort

CONFIG = ProtocolConfig().quick()
COHORT = default_cohort()[:2]
N_SHARDS = 3


@pytest.fixture(scope="module")
def serial_study():
    return run_study(cohort=COHORT, config=CONFIG)


@pytest.fixture(scope="module")
def shards():
    return [run_study_shard(cohort=COHORT, config=CONFIG,
                            n_shards=N_SHARDS, shard_index=i)
            for i in range(N_SHARDS)]


def _assert_studies_identical(got, want):
    """Bit-level equality of two study results, including dict
    iteration order (the merge re-canonicalises insertion order)."""
    assert got.subject_ids == want.subject_ids
    assert got.config == want.config
    assert list(got.device) == list(want.device)
    assert list(got.thoracic) == list(want.thoracic)
    for store in ("device", "thoracic"):
        for key, want_analysis in getattr(want, store).items():
            got_analysis = getattr(got, store)[key]
            assert np.array_equal(got_analysis.ensemble_beat,
                                  want_analysis.ensemble_beat)
            for field in ("subject_id", "setup", "position",
                          "frequency_hz", "mean_z0_ohm", "hr_bpm",
                          "n_beats", "n_failures"):
                assert (getattr(got_analysis, field)
                        == getattr(want_analysis, field))
            for field in ("mean_pep_s", "mean_lvet_s"):
                a = getattr(got_analysis, field)
                b = getattr(want_analysis, field)
                assert a == b or (np.isnan(a) and np.isnan(b))
    for position in want.config.positions:
        assert (got.correlation_table(position)
                == want.correlation_table(position))
    assert got.relative_errors() == want.relative_errors()
    assert got.worst_case_error() == want.worst_case_error()
    assert got.mean_correlation() == want.mean_correlation()


# -- partitioning --------------------------------------------------------


def test_partition_is_disjoint_and_exhaustive():
    jobs = list(range(23))
    for n_shards in (1, 2, 5, 23, 30):
        parts = [partition_jobs(jobs, n_shards, i)
                 for i in range(n_shards)]
        merged = [job for part in parts for job in part]
        assert sorted(merged) == jobs
        assert sum(len(p) for p in parts) == len(jobs)


def test_partition_validation():
    with pytest.raises(ConfigurationError):
        partition_jobs([1], 0, 0)
    with pytest.raises(ConfigurationError):
        partition_jobs([1], 2, 2)
    with pytest.raises(ConfigurationError):
        partition_jobs([1], 2, -1)


def test_study_jobs_are_deterministic():
    first = study_jobs(COHORT, CONFIG)
    second = study_jobs(COHORT, CONFIG)
    assert [(j[0], j[1]) for j in first] == [(j[0], j[1]) for j in second]
    # thoracic + 3 positions per (subject, frequency)
    assert len(first) == len(COHORT) * len(CONFIG.frequencies_hz) * (
        1 + len(CONFIG.positions))


# -- the acceptance criterion --------------------------------------------


def test_merged_shards_reproduce_serial_study(serial_study, shards):
    _assert_studies_identical(merge_shards(shards), serial_study)


@settings(max_examples=25, deadline=None)
@given(st.data())
def test_any_shard_permutation_merges_identically(data):
    """Property: merging the shard artifacts in any order reproduces
    the serial study bit-identically.

    Shards are computed once per test session (the fixtures cannot be
    reused inside ``@given``, so module-level laziness stands in)."""
    permutation = data.draw(st.permutations(range(N_SHARDS)))
    shards = _lazy_shards()
    serial = _lazy_serial()
    _assert_studies_identical(
        merge_shards([shards[i] for i in permutation]), serial)


_CACHE = {}


def _lazy_shards():
    if "shards" not in _CACHE:
        _CACHE["shards"] = [
            run_study_shard(cohort=COHORT, config=CONFIG,
                            n_shards=N_SHARDS, shard_index=i)
            for i in range(N_SHARDS)
        ]
    return _CACHE["shards"]


def _lazy_serial():
    if "serial" not in _CACHE:
        _CACHE["serial"] = run_study(cohort=COHORT, config=CONFIG)
    return _CACHE["serial"]


@pytest.mark.parametrize("n_shards", [1, 2, 5, 16, 40])
def test_every_shard_count_merges_identically(n_shards, serial_study):
    """More shards than jobs is legal: surplus shards are empty."""
    shards = [run_study_shard(cohort=COHORT, config=CONFIG,
                              n_shards=n_shards, shard_index=i)
              for i in range(n_shards)]
    _assert_studies_identical(merge_shards(shards), serial_study)


def test_parallel_shard_execution_matches(serial_study):
    shards = [run_study_shard(cohort=COHORT, config=CONFIG,
                              n_shards=2, shard_index=i, n_jobs=2,
                              backend="process")
              for i in range(2)]
    _assert_studies_identical(merge_shards(shards), serial_study)


# -- merge validation ----------------------------------------------------


def test_merge_rejects_incomplete_set(shards):
    with pytest.raises(ProtocolError):
        merge_shards(shards[:-1])
    with pytest.raises(ProtocolError):
        merge_shards([])


def test_merge_rejects_duplicates(shards):
    with pytest.raises(ProtocolError):
        merge_shards([shards[0], shards[0], shards[1]])


def test_merge_rejects_mismatched_protocols(shards):
    other = run_study_shard(cohort=COHORT,
                            config=ProtocolConfig(duration_s=13.0,
                                                  frequencies_hz=(
                                                      50_000.0,)),
                            n_shards=N_SHARDS, shard_index=1)
    with pytest.raises(ProtocolError):
        merge_shards([shards[0], other, shards[2]])


def test_merge_rejects_disagreeing_shard_counts(shards):
    stray = run_study_shard(cohort=COHORT, config=CONFIG,
                            n_shards=N_SHARDS + 1, shard_index=1)
    with pytest.raises(ProtocolError):
        merge_shards([shards[0], stray, shards[2]])


def test_merge_detects_missing_jobs(shards):
    hollow = StudyShard(config=CONFIG,
                        subject_ids=[s.subject_id for s in COHORT],
                        n_shards=N_SHARDS, shard_index=1,
                        n_jobs_total=shards[1].n_jobs_total)
    with pytest.raises(ProtocolError):
        merge_shards([shards[0], hollow, shards[2]])
