"""Table/figure text rendering."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments import tables


def test_format_table_alignment():
    out = tables.format_table(["a", "long_header"],
                              [["1", "2"], ["333", "4"]])
    lines = out.splitlines()
    assert len(lines) == 4
    assert "a" in lines[0] and "long_header" in lines[0]
    assert set(lines[1]) <= {"-", "+"}


def test_format_table_title():
    out = tables.format_table(["x"], [["1"]], title="My title")
    assert out.splitlines()[0] == "My title"


def test_format_table_rejects_ragged_rows():
    with pytest.raises(ConfigurationError):
        tables.format_table(["a", "b"], [["1"]])


def test_render_correlation_table():
    out = tables.render_correlation_table({1: 0.9081, 2: 0.9471}, 1)
    assert "TABLE II" in out
    assert "Subject 1" in out
    assert "0.9081" in out
    assert "Correlation Coefficient" in out


def test_render_correlation_table_numbers():
    assert "TABLE III" in tables.render_correlation_table({1: 0.5}, 2)
    assert "TABLE IV" in tables.render_correlation_table({1: 0.5}, 3)


def test_render_mean_z_series():
    series = {2000.0: [10.0, 11.0], 10000.0: [25.0, 26.0]}
    out = tables.render_mean_z_series(series, "Fig 6")
    assert "Fig 6" in out
    assert "2" in out and "10" in out
    assert "25.00" in out
    assert "mean" in out


def test_render_relative_errors():
    errors = {name: {1: {2000.0: 0.05, 10000.0: 0.06}}
              for name in ("e21", "e23", "e31")}
    out = tables.render_relative_errors(errors)
    assert "e21" in out and "e23" in out and "e31" in out
    assert "+5.0%" in out


def test_render_hemodynamics():
    table = {1: {"lvet_s": 0.301, "pep_s": 0.092, "hr_bpm": 63.1}}
    out = tables.render_hemodynamics(table, 1)
    assert "301" in out
    assert "92" in out
    assert "63" in out
    assert "Position 1" in out
