"""The study runner on a reduced (quick) protocol.

The full-size protocol is exercised by the benchmarks; tests use two
subjects, two frequencies and 12 s recordings to stay fast while
covering every artefact derivation.
"""

import numpy as np
import pytest

from repro.errors import ProtocolError
from repro.experiments import ProtocolConfig, run_study
from repro.synth import default_cohort


@pytest.fixture(scope="module")
def quick_study():
    cohort = default_cohort()[:2]
    config = ProtocolConfig(duration_s=12.0,
                            frequencies_hz=(10_000.0, 50_000.0))
    return run_study(cohort=cohort, config=config)


def test_all_recordings_analysed(quick_study):
    assert len(quick_study.thoracic) == 2 * 2          # subjects x freqs
    assert len(quick_study.device) == 2 * 3 * 2        # x positions


def test_correlation_tables_complete(quick_study):
    for position in (1, 2, 3):
        table = quick_study.correlation_table(position)
        assert set(table) == {1, 2}
        for value in table.values():
            assert -1.0 <= value <= 1.0


def test_correlations_high(quick_study):
    """Shape claim: device matches thoracic morphology (> 0.8 typical,
    paper > 80 %)."""
    values = [quick_study.correlation(sid, pos)
              for sid in (1, 2) for pos in (1, 2, 3)]
    assert np.mean(values) > 0.8


def test_thoracic_mean_z_shape(quick_study):
    series = quick_study.thoracic_mean_z()
    assert set(series) == {10_000.0, 50_000.0}
    # 10 kHz reads above 50 kHz (the Fig 6 peak at 10 kHz).
    assert np.mean(series[10_000.0]) > np.mean(series[50_000.0])


def test_device_mean_z_per_position(quick_study):
    for position in (1, 2, 3):
        series = quick_study.device_mean_z(position)
        assert len(series[50_000.0]) == 2
        assert all(z > 100.0 for z in series[50_000.0])


def test_relative_errors_structure_and_bounds(quick_study):
    errors = quick_study.relative_errors()
    assert set(errors) == {"e21", "e23", "e31"}
    for by_subject in errors.values():
        for by_freq in by_subject.values():
            for value in by_freq.values():
                assert abs(value) < 0.20    # conclusion claim


def test_error_ordering(quick_study):
    """e21 largest, e31 smallest (Fig 8)."""
    errors = quick_study.relative_errors()

    def mean_error(name):
        return np.mean([v for by_freq in errors[name].values()
                        for v in by_freq.values()])

    assert mean_error("e21") > mean_error("e23") > mean_error("e31") > 0


def test_worst_case_error_under_20_percent(quick_study):
    assert quick_study.worst_case_error() < 0.20


def test_hemodynamics_table(quick_study):
    table = quick_study.hemodynamics(1, frequency_hz=50_000.0)
    cohort = {s.subject_id: s for s in default_cohort()[:2]}
    for sid, entry in table.items():
        subject = cohort[sid]
        assert entry["hr_bpm"] == pytest.approx(subject.hr_bpm, rel=0.05)
        assert entry["lvet_s"] == pytest.approx(subject.lvet_s, abs=0.08)
        assert entry["pep_s"] == pytest.approx(subject.pep_s, abs=0.04)


def test_hemodynamics_position_guard(quick_study):
    with pytest.raises(ProtocolError):
        quick_study.hemodynamics(3)


def test_missing_recording_raises(quick_study):
    with pytest.raises(ProtocolError):
        quick_study.correlation(99, 1)
    with pytest.raises(ProtocolError):
        quick_study._device(1, 1, 123.0)


def test_study_is_deterministic():
    cohort = default_cohort()[:1]
    config = ProtocolConfig(duration_s=12.0, frequencies_hz=(50_000.0,))
    a = run_study(cohort=cohort, config=config)
    b = run_study(cohort=cohort, config=config)
    assert a.correlation(1, 1) == b.correlation(1, 1)
    assert (a.device[(1, 1, 50_000.0)].mean_z0_ohm
            == b.device[(1, 1, 50_000.0)].mean_z0_ohm)
