"""Protocol configuration."""

import pytest

from repro.experiments import protocol
from repro.errors import ConfigurationError


def test_defaults_match_paper():
    config = protocol.ProtocolConfig()
    assert config.duration_s == 30.0
    assert config.fs == 250.0
    assert config.frequencies_hz == (2e3, 10e3, 50e3, 100e3)
    assert config.positions == (1, 2, 3)


def test_hemodynamics_constants():
    assert protocol.HEMODYNAMICS_POSITIONS == (1, 2)
    assert protocol.HEMODYNAMICS_FREQUENCY_HZ == 50_000.0


def test_quick_config_is_valid_and_smaller():
    config = protocol.ProtocolConfig().quick()
    assert config.duration_s < 30.0
    assert len(config.frequencies_hz) == 2


def test_validation():
    with pytest.raises(ConfigurationError):
        protocol.ProtocolConfig(duration_s=2.0)
    with pytest.raises(ConfigurationError):
        protocol.ProtocolConfig(frequencies_hz=())
    with pytest.raises(ConfigurationError):
        protocol.ProtocolConfig(frequencies_hz=(-5.0,))
    with pytest.raises(ConfigurationError):
        protocol.ProtocolConfig(positions=(1, 7))
