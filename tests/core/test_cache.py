"""Filter-design cache: hit behavior, key discrimination, safety."""

import numpy as np
import pytest

from repro.core import FilterDesignCache
from repro.core.cache import default_design_cache
from repro.dsp import fir as _fir
from repro.dsp import iir as _iir
from repro.ecg.pan_tompkins import PanTompkinsConfig
from repro.ecg.preprocessing import EcgFilterConfig
from repro.icg.preprocessing import IcgFilterConfig

FS = 250.0


@pytest.fixture()
def cache():
    return FilterDesignCache()


def test_first_lookup_is_a_miss_second_a_hit(cache):
    config = EcgFilterConfig()
    first = cache.ecg_fir_taps(FS, config)
    assert cache.stats() == {"hits": 0, "misses": 1, "entries": 1}
    second = cache.ecg_fir_taps(FS, config)
    assert cache.stats() == {"hits": 1, "misses": 1, "entries": 1}
    assert second is first   # same object, no re-design


def test_cached_designs_match_direct_design(cache):
    ecg = EcgFilterConfig()
    icg = IcgFilterConfig()
    pt = PanTompkinsConfig()
    assert np.array_equal(
        cache.ecg_fir_taps(FS, ecg),
        _fir.design_bandpass(ecg.fir_order, ecg.low_cut_hz,
                             ecg.high_cut_hz, FS, window=ecg.window))
    assert np.array_equal(
        cache.icg_lowpass_sos(FS, icg),
        _iir.butter_lowpass(icg.order, icg.cutoff_hz, FS))
    assert np.array_equal(
        cache.icg_highpass_sos(FS, icg),
        _iir.butter_highpass(icg.highpass_order, icg.highpass_hz, FS))
    assert np.array_equal(
        cache.pan_tompkins_sos(FS, pt),
        _iir.butter_bandpass(2, *pt.band_hz, FS))
    width = int(round(pt.integration_window_s * FS))
    assert np.array_equal(cache.mwi_kernel(FS, pt),
                          np.ones(width) / width)


def test_distinct_fs_or_config_get_distinct_entries(cache):
    base = IcgFilterConfig()
    a = cache.icg_lowpass_sos(250.0, base)
    b = cache.icg_lowpass_sos(500.0, base)
    c = cache.icg_lowpass_sos(250.0, IcgFilterConfig(cutoff_hz=15.0))
    assert cache.misses == 3 and cache.hits == 0
    assert not np.array_equal(a, b)
    assert not np.array_equal(a, c)


def test_disabled_highpass_returns_none_without_caching(cache):
    config = IcgFilterConfig(highpass_hz=None)
    assert cache.icg_highpass_sos(FS, config) is None
    assert len(cache) == 0


def test_cached_arrays_are_read_only(cache):
    taps = cache.ecg_fir_taps(FS, EcgFilterConfig())
    with pytest.raises(ValueError):
        taps[0] = 1.0


def test_clear_resets_entries_and_counters(cache):
    cache.ecg_fir_taps(FS, EcgFilterConfig())
    cache.ecg_fir_taps(FS, EcgFilterConfig())
    cache.clear()
    assert cache.stats() == {"hits": 0, "misses": 0, "entries": 0}


def test_generic_get_builds_once(cache):
    calls = []

    def builder():
        calls.append(1)
        return np.arange(3.0)

    first = cache.get(("custom", 1.0), builder)
    second = cache.get(("custom", 1.0), builder)
    assert len(calls) == 1
    assert first is second


def test_unhashable_config_falls_back_to_uncached_design(cache):
    """A list-valued config field worked before the cache existed; it
    must keep working (just without memoization)."""
    config = EcgFilterConfig(morphology_lengths_s=[0.2, 0.3])
    taps = cache.ecg_fir_taps(FS, config)
    assert np.array_equal(taps, cache.ecg_fir_taps(FS, config))
    assert len(cache) == 0   # never stored


def test_default_cache_is_process_wide_singleton():
    assert default_design_cache() is default_design_cache()
