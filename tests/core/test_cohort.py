"""Cohort-batched tier: planning, bit-identical parity with the
per-recording oracle, and the demotion/fallback lattice.

``process_cohort`` stacks recording groups into leading-axis kernel
calls; the acceptance criterion is that nothing observable changes —
results arrive in input order, every array bit-identical to the serial
loop, and the first failing recording raises the same error at the
same input position.  The per-recording path stays available as the
``"reference"`` cohort backend, which is the oracle every parity test
here compares against.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

import repro.core.cohort as cohort_mod
from repro.core import (
    BeatToBeatPipeline,
    FilterDesignCache,
    plan_cohort,
    process_batch,
    process_cohort,
    use_cohort_backend,
)
from repro.core.cohort import MIN_GROUP_ROWS, cohort_backend, set_cohort_backend
from repro.dsp import iir as _iir
from repro.errors import ConfigurationError, SignalError
from repro.io import Recording
from repro.synth import SynthesisConfig, default_cohort, synthesize_recording

FS = 250.0


def _make_recording(fs=FS, n=4000, channels=("ecg", "z"), seed=0):
    """A cheap synthetic Recording for planning tests (not processable)."""
    rng = np.random.default_rng(seed)
    return Recording(fs=fs, signals={
        name: rng.standard_normal(n) for name in channels})


@pytest.fixture(scope="module")
def pool():
    """Nine recordings across subjects, rates and length buckets."""
    cohort = default_cohort()
    recordings = []
    for i, duration in enumerate([9.0, 9.0, 9.0]):
        recordings.append(synthesize_recording(
            cohort[i], "thoracic", 1 + i % 3,
            SynthesisConfig(duration_s=duration, fs=FS)))
    for i in range(2):
        recordings.append(synthesize_recording(
            cohort[i], "thoracic", 1 + i,
            SynthesisConfig(duration_s=10.0, fs=200.0)))
    for i in range(2):
        recordings.append(synthesize_recording(
            cohort[i + 2], "device", 1 + i,
            SynthesisConfig(duration_s=16.5, fs=FS)))
    recordings.append(synthesize_recording(
        cohort[4], "thoracic", 3, SynthesisConfig(duration_s=9.0, fs=FS)))
    recordings.append(synthesize_recording(
        cohort[3], "thoracic", 2, SynthesisConfig(duration_s=10.0, fs=200.0)))
    return recordings


@pytest.fixture(scope="module")
def oracle(pool):
    """Per-recording reference results, one pipeline per rate."""
    pipelines = {}
    results = []
    for recording in pool:
        fs = float(recording.fs)
        if fs not in pipelines:
            pipelines[fs] = BeatToBeatPipeline(
                fs, cache=FilterDesignCache())
        results.append(pipelines[fs].process_recording(recording))
    return results


def _assert_identical(got, want):
    assert np.array_equal(got.r_peak_indices, want.r_peak_indices)
    assert np.array_equal(got.ecg_filtered, want.ecg_filtered)
    assert np.array_equal(got.icg, want.icg)
    assert np.array_equal(got.pep_s, want.pep_s)
    assert np.array_equal(got.lvet_s, want.lvet_s)
    assert got.z0_ohm == want.z0_ohm
    assert got.hr_bpm == want.hr_bpm


# --- planning ------------------------------------------------------------

def test_plan_groups_by_rate_and_length_bucket():
    recordings = ([_make_recording(fs=250.0, n=2250, seed=i)
                   for i in range(3)]
                  + [_make_recording(fs=200.0, n=2000, seed=i)
                     for i in range(2)]
                  + [_make_recording(fs=250.0, n=4125, seed=i)
                     for i in range(2)])
    plan = plan_cohort(recordings)
    keys = sorted((g.fs, g.width, len(g.indices)) for g in plan.groups)
    assert keys == [(200.0, 2000, 2), (250.0, 2250, 3), (250.0, 4125, 2)]
    assert plan.singles == ()
    assert plan.n_batched == 7 and plan.n_per_recording == 0


def test_plan_partitions_input_indices(pool):
    plan = plan_cohort(pool)
    covered = sorted(i for g in plan.groups for i in g.indices)
    covered += list(plan.singles)
    assert sorted(covered) == list(range(len(pool)))


def test_plan_routes_unbatchable_recordings_to_singles():
    batchable = [_make_recording(n=2250, seed=i) for i in range(2)]
    short = _make_recording(n=400)            # < the 2 s learning phase
    no_z = _make_recording(n=2250, channels=("ecg",))
    lone_rate = _make_recording(fs=125.0, n=2250)   # singleton group
    plan = plan_cohort(batchable + [short, no_z, lone_rate])
    assert plan.singles == (2, 3, 4)
    assert len(plan.groups) == 1 and plan.groups[0].indices == (0, 1)


def test_plan_splits_oversized_groups_into_slabs():
    recordings = [_make_recording(n=2250, seed=i) for i in range(7)]
    plan = plan_cohort(recordings, max_group_rows=3)
    assert [len(g.indices) for g in plan.groups] == [3, 3]
    # The trailing 1-recording slab stacks nothing: per-recording.
    assert plan.singles == (6,)
    with pytest.raises(ConfigurationError):
        plan_cohort(recordings, max_group_rows=MIN_GROUP_ROWS - 1)


# --- backend toggle ------------------------------------------------------

def test_cohort_backend_toggle_and_validation():
    assert cohort_backend() == "batched"
    with use_cohort_backend("reference"):
        assert cohort_backend() == "reference"
    assert cohort_backend() == "batched"
    with pytest.raises(ConfigurationError):
        set_cohort_backend("gpu")
    with pytest.raises(RuntimeError):
        with use_cohort_backend("reference"):
            raise RuntimeError("boom")
    assert cohort_backend() == "batched"


# --- parity with the per-recording oracle --------------------------------

def test_cohort_bit_identical_to_serial(pool, oracle):
    results = process_cohort(pool, cache=FilterDesignCache())
    plan = plan_cohort(pool)
    assert plan.n_batched >= 7        # the tier actually batched
    for got, want in zip(results, oracle):
        _assert_identical(got, want)


def test_process_batch_routes_cohort_backend(pool, oracle):
    results = process_batch(pool, backend="cohort",
                            cache=FilterDesignCache())
    for got, want in zip(results, oracle):
        _assert_identical(got, want)


def test_reference_cohort_backend_matches(pool, oracle):
    with use_cohort_backend("reference"):
        results = process_cohort(pool, cache=FilterDesignCache())
    for got, want in zip(results, oracle):
        _assert_identical(got, want)


def test_cohort_falls_back_under_reference_sosfilt(pool):
    """The batched IIR scan has no scalar twin: selecting the scalar
    sosfilt reference must demote the whole cohort, not crash.  The
    oracle is recomputed under the same kernel backend (the scalar
    reference rounds differently from the vectorized scan)."""
    with _iir.use_sosfilt_backend("reference"):
        results = process_cohort(pool[:4], cache=FilterDesignCache())
        with use_cohort_backend("reference"):
            want = process_cohort(pool[:4], cache=FilterDesignCache())
    for got, ref in zip(results, want):
        _assert_identical(got, ref)


def test_empty_and_singleton_cohorts(pool, oracle):
    assert process_cohort([]) == []
    results = process_cohort([pool[0]], cache=FilterDesignCache())
    _assert_identical(results[0], oracle[0])


def test_all_distinct_rates_run_per_recording(pool, oracle):
    """One recording per rate: every group is a singleton, the whole
    cohort takes per-recording dispatch — and still matches."""
    subset = [pool[0], pool[3]]               # 250 Hz, 200 Hz
    plan = plan_cohort(subset)
    assert plan.groups == () and plan.singles == (0, 1)
    results = process_cohort(subset, cache=FilterDesignCache())
    _assert_identical(results[0], oracle[0])
    _assert_identical(results[1], oracle[3])


def test_ragged_bucket_parity(pool, oracle):
    """Mixed lengths inside one bucket exercise the zero-pad masking."""
    subset = [pool[0], pool[1], pool[8], pool[2]]
    plan = plan_cohort(subset)
    assert any(len(g.indices) >= 3 for g in plan.groups)
    results = process_cohort(subset, cache=FilterDesignCache())
    for got, want in zip(results, [oracle[0], oracle[1], oracle[8],
                                   oracle[2]]):
        _assert_identical(got, want)


@settings(max_examples=12, deadline=None)
@given(indices=st.lists(st.integers(min_value=0, max_value=8),
                        min_size=0, max_size=8))
def test_hypothesis_cohort_parity(indices, pool, oracle):
    """Random multisets of the pool (mixed rates, ragged buckets,
    repeats, empty/singleton cohorts): bit-identical, in order."""
    subset = [pool[i] for i in indices]
    results = process_cohort(subset, cache=FilterDesignCache())
    assert len(results) == len(indices)
    for got, i in zip(results, indices):
        _assert_identical(got, oracle[i])


# --- failure semantics ---------------------------------------------------

def _flat_recording(template):
    """Same shape/rate as ``template`` but with an R-peak-free ECG."""
    n = template.n_samples
    return Recording(fs=template.fs, signals={
        "ecg": np.zeros(n), "z": np.full(n, 25.0)})


def test_row_failure_raises_at_input_position(pool):
    """A batched row with too few R peaks raises exactly where — and
    what — the serial loop would have raised."""
    recordings = [pool[0], pool[1], _flat_recording(pool[2]), pool[2]]
    plan = plan_cohort(recordings)
    assert any(2 in g.indices for g in plan.groups)  # batched, not demoted
    with pytest.raises(SignalError) as batched_err:
        process_cohort(recordings, cache=FilterDesignCache())
    with use_cohort_backend("reference"):
        with pytest.raises(SignalError) as serial_err:
            process_cohort(recordings, cache=FilterDesignCache())
    assert str(batched_err.value) == str(serial_err.value)
    assert "fewer than two R peaks" in str(batched_err.value)


def test_group_failure_demotes_slab_to_per_recording(pool, oracle,
                                                     monkeypatch):
    """Any batched-stage crash sends the slab through per-recording
    dispatch — correctness never depends on the batched tier."""
    def boom(*args, **kwargs):
        raise RuntimeError("batched stage exploded")

    monkeypatch.setattr(cohort_mod, "_run_group", boom)
    results = process_cohort(pool[:4], cache=FilterDesignCache())
    for got, want in zip(results, oracle[:4]):
        _assert_identical(got, want)


def test_pipeline_construction_errors_surface_first(pool):
    """An unusable rate raises at pipeline construction, before any
    recording is touched — matching the serial path's eager builds."""
    # 20 Hz puts the Pan-Tompkins passband above Nyquist; the serial
    # path raises while building its pipelines, and so must we.
    recordings = [pool[0], _make_recording(fs=20.0, n=2250)]
    with pytest.raises(ConfigurationError):
        process_cohort(recordings, cache=FilterDesignCache())
    with use_cohort_backend("reference"):
        with pytest.raises(ConfigurationError):
            process_cohort(recordings, cache=FilterDesignCache())
