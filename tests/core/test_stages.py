"""Stage graph: decomposition, parity with the monolithic chain."""

import numpy as np
import pytest

from repro.core import (
    BeatContext,
    BeatToBeatPipeline,
    EcgConditionStage,
    FilterDesignCache,
    HemodynamicsStage,
    IcgConditionStage,
    PipelineConfig,
    PointDetectionStage,
    RPeakStage,
    Stage,
    StageGraph,
    default_stage_graph,
)
from repro.ecg.pan_tompkins import PanTompkinsDetector
from repro.ecg.preprocessing import preprocess_ecg
from repro.errors import ConfigurationError, SignalError
from repro.icg.hemodynamics import systolic_intervals
from repro.icg.points import detect_all_points
from repro.icg.preprocessing import icg_from_impedance


@pytest.fixture(scope="module")
def signals(thoracic_recording):
    return (thoracic_recording.channel("ecg"),
            thoracic_recording.channel("z"), thoracic_recording.fs)


def _fresh_context(signals):
    ecg, z, fs = signals
    return BeatContext.from_signals(ecg, z, fs,
                                    cache=FilterDesignCache())


def test_default_graph_has_the_fig3_chain():
    graph = default_stage_graph()
    assert graph.stage_names == ("ecg_condition", "r_peaks",
                                 "icg_condition", "point_detection",
                                 "hemodynamics")
    for stage in graph.stages:
        assert isinstance(stage, Stage)


def test_graph_matches_monolithic_chain_bitwise(signals):
    """The stage graph reproduces the pre-refactor pipeline exactly:
    same filters, same detections, sample for sample."""
    ecg, z, fs = signals
    ctx = default_stage_graph().run(_fresh_context(signals))

    # The monolithic chain, spelled out as pipeline.process() used to.
    ecg_filtered = preprocess_ecg(ecg, fs)
    r_peaks = PanTompkinsDetector(fs).detect(ecg_filtered)
    icg = icg_from_impedance(z, fs)
    points, failures = detect_all_points(icg, fs, r_peaks)
    intervals = systolic_intervals(points, fs)

    assert np.array_equal(ctx.ecg_filtered, ecg_filtered)
    assert np.array_equal(ctx.r_peak_indices, r_peaks)
    assert np.array_equal(ctx.icg, icg)
    assert [p.b_index for p in ctx.points] == [p.b_index for p in points]
    assert [p.x_index for p in ctx.points] == [p.x_index for p in points]
    assert ctx.failures == failures
    assert np.array_equal(ctx.intervals.pep_s, intervals.pep_s)
    assert np.array_equal(ctx.intervals.lvet_s, intervals.lvet_s)


def test_facade_equals_graph_output(signals, thoracic_recording):
    ecg, z, fs = signals
    result = BeatToBeatPipeline(
        fs, cache=FilterDesignCache()).process_recording(
        thoracic_recording)
    ctx = default_stage_graph().run(_fresh_context(signals))
    assert np.array_equal(result.ecg_filtered, ctx.ecg_filtered)
    assert np.array_equal(result.r_peak_indices, ctx.r_peak_indices)
    assert np.array_equal(result.icg, ctx.icg)
    assert result.z0_ohm == ctx.z0_ohm
    assert result.hr_bpm == ctx.hr_bpm


def test_partial_graph_fills_only_its_fields(signals):
    graph = default_stage_graph().upto("point_detection")
    ctx = graph.run(_fresh_context(signals))
    assert ctx.points is not None and ctx.failures is not None
    assert ctx.intervals is None and ctx.z0_ohm is None


def test_upto_unknown_stage_rejected():
    with pytest.raises(ConfigurationError):
        default_stage_graph().upto("nonexistent")


def test_out_of_order_graph_fails_loudly(signals):
    """R-peak detection before ECG conditioning has no input."""
    graph = StageGraph([RPeakStage()])
    with pytest.raises(SignalError):
        graph.run(_fresh_context(signals))


def test_duplicate_stage_names_rejected():
    with pytest.raises(ConfigurationError):
        StageGraph([EcgConditionStage(), EcgConditionStage()])


def test_empty_graph_rejected():
    with pytest.raises(ConfigurationError):
        StageGraph([])


def test_hemodynamics_stage_requires_analysable_beats(signals):
    ctx = _fresh_context(signals)
    ctx.points, ctx.failures = [], [(0, "synthetic failure")]
    ctx.r_peak_indices = np.array([0, 250])
    ctx.icg = np.zeros_like(ctx.z)
    with pytest.raises(SignalError):
        HemodynamicsStage().run(ctx)


def test_stages_use_the_context_cache(signals):
    ctx = _fresh_context(signals)
    graph = StageGraph([EcgConditionStage(), RPeakStage(),
                        IcgConditionStage(), PointDetectionStage()])
    graph.run(ctx)
    stats = ctx.cache.stats()
    assert stats["entries"] == 5   # FIR, PT sos, MWI, ICG lp + hp
    assert stats["misses"] == 5


def test_custom_graph_skips_pan_tompkins_validation():
    """A graph without an RPeakStage must not trip Pan-Tompkins
    constraints (e.g. fs < 60 Hz) at facade build time."""
    graph = StageGraph([EcgConditionStage(), IcgConditionStage()])
    pipeline = BeatToBeatPipeline(50.0, cache=FilterDesignCache(),
                                  graph=graph)
    assert pipeline._pan_tompkins is None
    with pytest.raises(ConfigurationError):
        BeatToBeatPipeline(50.0, cache=FilterDesignCache())


def test_custom_stage_slots_into_the_graph(signals):
    """The seam future detector variants plug into."""

    class NegatingIcgStage:
        name = "icg_condition"

        def run(self, ctx):
            ctx.icg = -icg_from_impedance(ctx.z, ctx.fs, ctx.config.icg)
            return ctx

    stages = list(default_stage_graph().stages)
    stages[2] = NegatingIcgStage()
    ctx = StageGraph(stages[:3]).run(_fresh_context(signals))
    reference = default_stage_graph().upto("icg_condition").run(
        _fresh_context(signals))
    assert np.array_equal(ctx.icg, -reference.icg)


# -- the wavelet conditioning variant ------------------------------------


def test_wavelet_variant_is_a_one_line_swap(signals):
    """default_stage_graph("wavelet") swaps exactly one box; names,
    truncation and downstream stages are untouched."""
    from repro.core import WaveletIcgConditionStage

    graph = default_stage_graph("wavelet")
    assert graph.stage_names == default_stage_graph().stage_names
    assert isinstance(graph.stages[2], WaveletIcgConditionStage)
    assert isinstance(graph.stages[2], Stage)
    with pytest.raises(ConfigurationError):
        default_stage_graph("fourier")


def test_wavelet_stage_matches_functional_conditioner(signals):
    """Stage parity: the graph box computes exactly what the
    functional wavelet conditioner computes."""
    ctx = default_stage_graph("wavelet").upto("icg_condition").run(
        _fresh_context(signals))
    ecg, z, fs = signals
    want = icg_from_impedance(z, fs, method="wavelet")
    assert np.array_equal(ctx.icg, want)


def test_wavelet_variant_parity_with_default_conditioner(signals):
    """Benchmark parity: the wavelet box is the related-work
    *alternative*, not a clone — it must still track the default
    conditioner's waveform closely and support beat detection
    end-to-end through the unchanged downstream stages."""
    from repro.bioimpedance.analysis import pearson_correlation

    filt = default_stage_graph().run(_fresh_context(signals))
    wave = default_stage_graph("wavelet").run(_fresh_context(signals))
    assert pearson_correlation(filt.icg, wave.icg) > 0.7
    assert len(wave.points) >= 3
    assert wave.hr_bpm == pytest.approx(filt.hr_bpm)   # same R peaks
    # Interval estimates stay physiological through the swap.
    assert 0.1 < wave.intervals.mean_lvet_s < 0.5


def test_wavelet_variant_through_the_pipeline_facade(signals):
    ecg, z, fs = signals
    pipeline = BeatToBeatPipeline(fs, cache=FilterDesignCache(),
                                  graph=default_stage_graph("wavelet"))
    result = pipeline.process(ecg, z)
    assert result.n_beats_detected >= 3
    assert np.isfinite(result.z0_ohm)
