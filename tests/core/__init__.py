"""Test package (keeps basenames like test_preprocessing.py unambiguous)."""
