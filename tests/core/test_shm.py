"""The shared-memory data plane: arenas, descriptors, recordings,
packed buffers, lifecycle."""

import numpy as np
import pytest

from repro.core.shm import (
    ALIGNMENT,
    RecordingDescriptor,
    ShmArena,
    ShmDescriptor,
    aligned_nbytes,
    attach_view,
    buffer_view,
    detach_all,
    pack_arrays,
    publish_recording,
    recording_from_descriptor,
    recording_nbytes,
)
from repro.errors import ConfigurationError
from repro.io import Recording


@pytest.fixture(autouse=True)
def _clean_attachments():
    yield
    detach_all()


def test_aligned_nbytes():
    assert aligned_nbytes(1) == ALIGNMENT
    assert aligned_nbytes(ALIGNMENT) == ALIGNMENT
    assert aligned_nbytes(ALIGNMENT + 1) == 2 * ALIGNMENT


def test_arena_put_view_roundtrip():
    rng = np.random.default_rng(0)
    arrays = [rng.standard_normal(257), np.arange(9, dtype=np.int64),
              rng.standard_normal((3, 5))]
    with ShmArena(sum(aligned_nbytes(a.nbytes) for a in arrays)) as arena:
        descriptors = [arena.put(a) for a in arrays]
        for array, descriptor in zip(arrays, descriptors):
            assert descriptor.block == arena.name
            assert descriptor.offset % ALIGNMENT == 0
            view = arena.view(descriptor)
            assert np.array_equal(view, array)
            assert not view.flags.writeable
            assert view.dtype == array.dtype


def test_arena_overflow_raises():
    with ShmArena(ALIGNMENT) as arena:
        arena.put(np.zeros(8))
        with pytest.raises(ConfigurationError):
            arena.put(np.zeros(8))


def test_arena_rejects_object_arrays():
    with ShmArena(ALIGNMENT) as arena:
        with pytest.raises(ConfigurationError):
            arena.put(np.array([object()]))


def test_reserve_then_write_then_view():
    with ShmArena(ALIGNMENT * 2) as arena:
        slot = arena.reserve((6,), np.float64)
        attach_view(slot, writable=True)[...] = np.arange(6.0)
        assert np.array_equal(arena.view(slot), np.arange(6.0))


def test_views_survive_release():
    """The release contract: the name disappears immediately, existing
    views keep their bytes until garbage-collected."""
    arena = ShmArena(ALIGNMENT)
    descriptor = arena.put(np.arange(4.0))
    view = arena.view(descriptor)
    arena.release()
    arena.release()                     # idempotent
    assert np.array_equal(view, np.arange(4.0))
    with pytest.raises(FileNotFoundError):
        attach_view(descriptor)         # the name is gone


def test_attach_view_same_process():
    with ShmArena(ALIGNMENT) as arena:
        descriptor = arena.put(np.arange(5.0))
        attached = attach_view(descriptor)
        assert np.array_equal(attached, np.arange(5.0))
        assert not attached.flags.writeable


def test_descriptor_nbytes():
    descriptor = ShmDescriptor(block="x", shape=(3, 4), dtype="<f8",
                               offset=0)
    assert descriptor.nbytes == 96


def test_publish_and_materialise_recording():
    recording = Recording(
        250.0,
        signals={"ecg": np.arange(500.0), "z": np.arange(500.0) + 1},
        annotations={"r_times_s": np.array([0.1, 0.9])},
        meta={"subject_id": 3, "setup": "device"})
    with ShmArena(recording_nbytes(recording)) as arena:
        descriptor = publish_recording(recording, arena)
        assert isinstance(descriptor, RecordingDescriptor)
        clone = recording_from_descriptor(descriptor)
        assert clone.fs == recording.fs
        assert clone.meta == recording.meta
        for name in recording.signals:
            assert np.array_equal(clone.channel(name),
                                  recording.channel(name))
            # Zero-copy and read-only: a stage mutating its input
            # would corrupt the shared buffer, so that is an error.
            with pytest.raises(ValueError):
                clone.channel(name)[0] = 1.0
        assert np.array_equal(clone.annotation("r_times_s"),
                              recording.annotation("r_times_s"))


def test_recording_nbytes_covers_publish():
    recording = Recording(100.0, signals={"a": np.zeros(77),
                                          "b": np.zeros(77)})
    with ShmArena(recording_nbytes(recording)) as arena:
        publish_recording(recording, arena)     # exactly fits
        assert arena.used == recording_nbytes(recording)


def test_pack_arrays_buffer_view_roundtrip():
    rng = np.random.default_rng(1)
    arrays = [rng.standard_normal(100), rng.standard_normal(3),
              np.arange(7, dtype=np.int32)]
    buffer, descriptors = pack_arrays(arrays)
    for array, descriptor in zip(arrays, descriptors):
        assert descriptor.block == ""       # inline buffer
        view = buffer_view(buffer, descriptor)
        assert np.array_equal(view, array)
        assert view.dtype == array.dtype
        assert not view.flags.writeable


def test_buffer_view_rejects_shm_descriptors():
    descriptor = ShmDescriptor(block="some_block", shape=(1,),
                               dtype="<f8", offset=0)
    with pytest.raises(ConfigurationError):
        buffer_view(np.zeros(64, np.uint8), descriptor)


def _named_segments():
    import os

    try:
        return {n for n in os.listdir("/dev/shm")
                if n.startswith("psm_")}
    except FileNotFoundError:           # non-Linux
        return set()


def test_no_leftover_segments(tmp_path):
    """Create/publish/release cycles leave nothing in /dev/shm."""
    before = _named_segments()
    for _ in range(5):
        with ShmArena(4096) as arena:
            arena.put(np.zeros(256))
    assert _named_segments() <= before


def test_failing_shm_job_detaches_everything():
    """The worker body detaches its mappings even when the job raises
    — a long-lived pool worker must not leak an attachment (or, after
    release, a /dev/shm segment) per failed job."""
    from repro.core import shm
    from repro.core.executor import (plan_recording_job,
                                     process_shm_job,
                                     recording_job_nbytes)
    from repro.errors import SignalError

    n = int(8 * 250.0)
    # Flat signals: journaling-grade input the pipeline rejects.
    recording = Recording(250.0, signals={"ecg": np.zeros(n),
                                          "z": np.full(n, 25.0)})
    before = _named_segments()
    with ShmArena(recording_job_nbytes(recording)) as arena:
        job = plan_recording_job(recording, arena)
        with pytest.raises(SignalError):
            process_shm_job(job)
        # The failed job body left zero lingering attachments behind.
        assert arena.name not in shm._ATTACHED
    assert _named_segments() <= before
