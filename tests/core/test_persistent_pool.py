"""Warm persistent process pool: reuse across fan-outs, lifecycle
hygiene, and the per-submission shipping protocol.

``process_batch``/``run_study`` used to rebuild a process pool per
call, paying worker spawn and per-worker cache warm-up every time.
The executor now keeps one lazily-created pool warm across calls;
these tests pin the observable contract: the *same worker PIDs* serve
consecutive fan-outs, reuse/create counters are reported, the env kill
switch restores ephemeral pools, and shutdown is explicit and
idempotent.
"""

import os

import numpy as np
import pytest

from repro.core import (
    BATCH_BACKENDS,
    BeatToBeatPipeline,
    FilterDesignCache,
    persistent_pool_stats,
    persistent_process_pool,
    process_batch,
    shutdown_persistent_pool,
)
from repro.core.executor import (
    BACKENDS,
    PERSISTENT_POOL_ENV,
    process_worker_cache_stats,
)
from repro.synth import SynthesisConfig, default_cohort, synthesize_recording

FS = 250.0


def _square(value):
    return value * value


@pytest.fixture(scope="module")
def recordings():
    cohort = default_cohort()
    config = SynthesisConfig(duration_s=9.0, fs=FS)
    return [synthesize_recording(subject, "thoracic", 1, config)
            for subject in cohort[:4]]


@pytest.fixture(autouse=True)
def fresh_pool():
    """Each test starts and ends without a warm pool."""
    shutdown_persistent_pool()
    yield
    shutdown_persistent_pool()


def test_batch_backends_supersets_pool_backends():
    assert set(BACKENDS) < set(BATCH_BACKENDS)
    assert "cohort" in BATCH_BACKENDS


def test_consecutive_batches_reuse_the_same_workers(recordings):
    """The satellite acceptance check: two back-to-back process
    fan-outs are served by the *same* worker processes."""
    before = persistent_pool_stats()
    process_batch(recordings, n_jobs=2, backend="process")
    first_pids = set(process_worker_cache_stats())
    process_batch(recordings, n_jobs=2, backend="process")
    second_pids = set(process_worker_cache_stats())
    after = persistent_pool_stats()
    assert first_pids and first_pids == second_pids
    assert after["created"] == before["created"] + 1
    assert after["reused"] >= before["reused"] + 1
    assert after["n_workers"] == 2
    assert set(after["pids"]) == first_pids


def test_warm_results_stay_bit_identical(recordings):
    """Reuse must not leak state between fan-outs: the second warm
    call still matches the serial loop exactly."""
    serial = [BeatToBeatPipeline(r.fs, cache=FilterDesignCache())
              .process_recording(r) for r in recordings]
    process_batch(recordings, n_jobs=2, backend="process")
    warm = process_batch(recordings, n_jobs=2, backend="process")
    for got, want in zip(warm, serial):
        assert np.array_equal(got.ecg_filtered, want.ecg_filtered)
        assert np.array_equal(got.icg, want.icg)
        assert np.array_equal(got.r_peak_indices, want.r_peak_indices)


def test_width_change_recreates_the_pool(recordings):
    """A fan-out asking for a different worker count cannot reuse the
    warm pool — it is torn down and rebuilt at the new width."""
    before = persistent_pool_stats()["created"]
    process_batch(recordings, n_jobs=2, backend="process")
    pids_wide = set(process_worker_cache_stats())
    process_batch(recordings, n_jobs=3, backend="process")
    pids_wider = set(process_worker_cache_stats())
    stats = persistent_pool_stats()
    assert stats["created"] == before + 2
    assert stats["n_workers"] == 3
    assert not (pids_wide & pids_wider)


def test_env_kill_switch_restores_ephemeral_pools(recordings,
                                                  monkeypatch):
    monkeypatch.setenv(PERSISTENT_POOL_ENV, "0")
    results = process_batch(recordings[:2], n_jobs=2, backend="process")
    stats = persistent_pool_stats()
    assert stats["enabled"] is False
    assert stats["n_workers"] is None and stats["pids"] == []
    serial = [BeatToBeatPipeline(r.fs, cache=FilterDesignCache())
              .process_recording(r) for r in recordings[:2]]
    for got, want in zip(results, serial):
        assert np.array_equal(got.icg, want.icg)


def test_shutdown_is_idempotent_and_clears_the_pool(recordings):
    process_batch(recordings[:2], n_jobs=2, backend="process")
    assert persistent_pool_stats()["pids"]
    shutdown_persistent_pool()
    stats = persistent_pool_stats()
    assert stats["n_workers"] is None and stats["pids"] == []
    shutdown_persistent_pool()                  # second call: no-op
    # The next fan-out simply warms a fresh pool.
    process_batch(recordings[:2], n_jobs=2, backend="process")
    assert persistent_pool_stats()["pids"]


def test_persistent_process_pool_context_manager():
    """Direct submissions (the streaming finalize path) route through
    the same warm pool and leave it warm on exit."""
    before = persistent_pool_stats()["reused"]
    with persistent_process_pool(2) as pool:
        futures = [pool.submit(_square, v) for v in range(5)]
        assert [f.result() for f in futures] == [0, 1, 4, 9, 16]
    # Exiting the context must NOT tear down the warm pool.
    assert persistent_pool_stats()["n_workers"] == 2
    with persistent_process_pool(2) as pool:
        assert pool.submit(_square, 7).result() == 49
    assert persistent_pool_stats()["reused"] >= before + 1


def test_ephemeral_context_manager_when_disabled(monkeypatch):
    """With the kill switch set, the context manager hands out a
    self-contained pool and tears it down on exit."""
    monkeypatch.setenv(PERSISTENT_POOL_ENV, "0")
    with persistent_process_pool(2) as pool:
        assert pool.submit(_square, 6).result() == 36
    assert persistent_pool_stats()["pids"] == []


def test_pool_survives_worker_death(recordings):
    """A broken pool is discarded and the fan-out retried on a fresh
    one — jobs are pure, so the retry is safe and invisible."""
    process_batch(recordings[:2], n_jobs=2, backend="process")
    stats = persistent_pool_stats()
    victim = stats["pids"][0]
    os.kill(victim, 9)
    results = process_batch(recordings[:2], n_jobs=2, backend="process")
    assert len(results) == 2
    fresh = persistent_pool_stats()
    assert victim not in fresh["pids"]
