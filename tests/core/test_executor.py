"""Batch executor: parity with the serial loop, ordering, fan-out,
job batching and IPC accounting."""

import pickle
from functools import partial

import numpy as np
import pytest

from repro.core import (
    BeatToBeatPipeline,
    FilterDesignCache,
    parallel_map,
    process_batch,
)
from repro.core.executor import (
    job_batches,
    last_ipc_stats,
    process_recording_job,
    process_worker_cache_stats,
    resolve_backend,
    resolve_n_jobs,
)
from repro.errors import ConfigurationError
from repro.synth import SynthesisConfig, default_cohort, synthesize_recording

FS = 250.0


@pytest.fixture(scope="module")
def batch_recordings():
    """Six recordings across subjects/setups (one shared fs)."""
    cohort = default_cohort()
    config = SynthesisConfig(duration_s=12.0, fs=FS)
    recordings = [
        synthesize_recording(subject, "thoracic", 1, config)
        for subject in cohort[:3]
    ]
    recordings += [
        synthesize_recording(subject, "device", 2, config)
        for subject in cohort[:3]
    ]
    return recordings


def _assert_results_identical(batch, serial):
    assert len(batch) == len(serial)
    for got, want in zip(batch, serial):
        assert np.array_equal(got.r_peak_indices, want.r_peak_indices)
        assert np.array_equal(got.ecg_filtered, want.ecg_filtered)
        assert np.array_equal(got.icg, want.icg)
        assert np.array_equal(got.pep_s, want.pep_s)
        assert np.array_equal(got.lvet_s, want.lvet_s)
        assert got.z0_ohm == want.z0_ohm
        assert got.hr_bpm == want.hr_bpm


@pytest.mark.parametrize("n_jobs", [1, 2, 4])
def test_batch_identical_to_serial_loop(batch_recordings, n_jobs):
    """The acceptance criterion: bitwise-equal arrays per recording,
    serial or parallel."""
    serial = [
        BeatToBeatPipeline(r.fs, cache=FilterDesignCache())
        .process_recording(r)
        for r in batch_recordings
    ]
    batch = process_batch(batch_recordings, n_jobs=n_jobs,
                          cache=FilterDesignCache())
    _assert_results_identical(batch, serial)


def test_batch_preserves_input_order(batch_recordings):
    results = process_batch(batch_recordings, n_jobs=3,
                            cache=FilterDesignCache())
    for recording, result in zip(batch_recordings, results):
        assert result.fs == recording.fs
        assert result.z0_ohm == pytest.approx(
            recording.meta["true_z0_ohm"], rel=0.05)


def test_batch_shares_one_design_set(batch_recordings):
    cache = FilterDesignCache()
    process_batch(batch_recordings, cache=cache)
    # Five designs total for the whole cohort, not five per recording.
    assert len(cache) == 5
    assert cache.misses == 5


def test_batch_handles_mixed_sampling_rates():
    subject = default_cohort()[1]
    recordings = [
        synthesize_recording(subject, "thoracic", 1,
                             SynthesisConfig(duration_s=12.0, fs=fs,
                                             include_motion=False,
                                             include_powerline=False))
        for fs in (125.0, 250.0)
    ]
    cache = FilterDesignCache()
    results = process_batch(recordings, n_jobs=2, cache=cache)
    assert [r.fs for r in results] == [125.0, 250.0]
    assert len(cache) == 10   # one design set per sampling rate


def test_empty_batch_returns_empty_list():
    assert process_batch([], cache=FilterDesignCache()) == []


def test_batch_propagates_processing_errors(batch_recordings):
    from repro.errors import SignalError
    from repro.io import Recording

    n = int(8 * FS)
    flat = Recording(FS, {"ecg": np.zeros(n), "z": np.full(n, 25.0)})
    with pytest.raises(SignalError):
        process_batch([batch_recordings[0], flat],
                      cache=FilterDesignCache())


def test_parallel_map_matches_serial_map():
    items = list(range(20))
    assert parallel_map(lambda v: v * v, items, n_jobs=4) == [
        v * v for v in items]


def test_parallel_map_propagates_exceptions():
    def boom(v):
        raise RuntimeError(f"job {v}")

    with pytest.raises(RuntimeError):
        parallel_map(boom, [1, 2, 3], n_jobs=2)


def test_batch_process_backend_identical_to_serial(batch_recordings):
    """The process pool returns the same bits as the serial loop —
    recordings and results round-trip through pickling unchanged."""
    serial = [
        BeatToBeatPipeline(r.fs, cache=FilterDesignCache())
        .process_recording(r)
        for r in batch_recordings
    ]
    forked = process_batch(batch_recordings, n_jobs=2,
                           backend="process")
    _assert_results_identical(forked, serial)


def test_batch_process_backend_preserves_order(batch_recordings):
    results = process_batch(batch_recordings, n_jobs=2,
                            backend="process")
    for recording, result in zip(batch_recordings, results):
        assert result.fs == recording.fs


def test_batch_process_backend_serial_fallback(batch_recordings):
    """n_jobs=1 with the process backend must not spawn a pool."""
    serial = process_batch(batch_recordings[:2], n_jobs=1,
                           backend="process",
                           cache=FilterDesignCache())
    want = process_batch(batch_recordings[:2], n_jobs=1,
                         cache=FilterDesignCache())
    _assert_results_identical(serial, want)


def _square(value):
    return value * value


def test_parallel_map_process_backend():
    items = list(range(12))
    assert parallel_map(_square, items, n_jobs=2,
                        backend="process") == [v * v for v in items]


def test_resolve_backend():
    assert resolve_backend(None) == "thread"
    assert resolve_backend("thread") == "thread"
    assert resolve_backend("process") == "process"
    for bad in ("fork", "greenlet", 3):
        with pytest.raises(ConfigurationError):
            resolve_backend(bad)


def test_resolve_n_jobs():
    assert resolve_n_jobs(3) == 3
    assert resolve_n_jobs(None) >= 1
    assert resolve_n_jobs(-1) >= 1
    for bad in (0, -2, 1.5, "two"):
        with pytest.raises(ConfigurationError):
            resolve_n_jobs(bad)


def test_job_batches_preserve_order_and_partition():
    items = list(range(23))
    for n_batches in (1, 2, 5, 23, 40):
        batches = job_batches(items, n_batches)
        assert [i for batch in batches for i in batch] == items
        assert all(batches)                       # never empty
        sizes = [len(b) for b in batches]
        assert max(sizes) - min(sizes) <= 1       # near-equal
    assert job_batches([], 3) == []
    with pytest.raises(ConfigurationError):
        job_batches(items, 0)


def test_process_backend_pickles_config_once_per_worker(batch_recordings):
    """The chunked-IPC fix: the shared config/partial is hoisted into
    the worker initializer, so it crosses the pipe once per *worker*,
    not once per job — asserted via the executor's pickle-size
    counter."""
    from repro.core import PipelineConfig
    from repro.core.executor import process_shm_job

    config = PipelineConfig()
    n_workers = 2
    process_batch(batch_recordings, config, n_jobs=n_workers,
                  backend="process")
    stats = last_ipc_stats()
    assert stats is not None
    assert stats.n_items == len(batch_recordings)
    assert stats.n_workers == n_workers

    # The shared callable (partial closing over the config) ships with
    # the initializer — its pickle is paid n_workers times, where the
    # legacy per-job scheme paid it once per item.
    shared_bytes = len(pickle.dumps(partial(process_shm_job,
                                            config=config)))
    assert stats.shared_fn_bytes == shared_bytes
    assert stats.n_workers < stats.n_items
    assert stats.shipped_bytes < stats.legacy_bytes
    # Batching: far fewer submissions than items.
    assert stats.n_submissions <= 2 * n_workers < stats.n_items


def test_process_backend_ships_descriptors_not_arrays(batch_recordings):
    """The shared-memory data plane: every recording and every
    recording-length result array crosses as a (block, shape, dtype,
    offset) descriptor, so the pickled payload collapses to a constant
    per job while the float64 payload rides shared memory."""
    process_batch(batch_recordings, n_jobs=2, backend="process")
    stats = last_ipc_stats()
    assert stats is not None

    recordings_bytes = sum(len(pickle.dumps(r))
                           for r in batch_recordings)
    raw_signal_bytes = sum(
        sum(s.nbytes for s in r.signals.values())
        for r in batch_recordings)
    # Descriptors for: every signal/annotation + 2 result slots each.
    assert stats.n_descriptors >= 4 * len(batch_recordings)
    # The data plane carried at least the raw signals plus the two
    # same-length result arrays per recording.
    assert stats.data_plane_bytes >= 2 * raw_signal_bytes
    # The pipe carried orders of magnitude less than the old pickled
    # payload: at least a 10x collapse (it measures ~50-100x here).
    assert stats.payload_bytes * 10 < recordings_bytes
    assert stats.descriptor_collapse > 10.0
    # legacy_bytes now accounts for the array payload the pickle
    # scheme would have shipped.
    assert stats.legacy_bytes > stats.data_plane_bytes
    assert stats.shipped_bytes < stats.legacy_bytes / 10


def test_process_backend_results_are_shared_views(batch_recordings):
    """Result arrays come back as read-only views over the result
    arena — the parent never unpickles a recording-length array."""
    results = process_batch(batch_recordings[:3], n_jobs=2,
                            backend="process")
    for result in results:
        assert not result.ecg_filtered.flags.writeable
        assert not result.icg.flags.writeable
        # Values are still exactly the pipeline's output (spot check
        # against a fresh serial run).
    serial = [
        BeatToBeatPipeline(r.fs, cache=FilterDesignCache())
        .process_recording(r)
        for r in batch_recordings[:3]
    ]
    _assert_results_identical(results, serial)


def test_process_backend_reports_worker_cache_stats(batch_recordings):
    """Each worker's process-local cache counters come home with its
    job batches — the numbers `repro cache-stats --backend process`
    renders (misses = per-worker design rebuilds)."""
    process_batch(batch_recordings, n_jobs=2, backend="process")
    workers = process_worker_cache_stats()
    assert 1 <= len(workers) <= 2
    for stats in workers.values():
        assert set(stats) == {"designs", "kernels"}
        # Every worker that processed a recording rebuilt the designs
        # at least once (they cannot see the parent's cache).
        assert stats["designs"]["misses"] >= 1
        assert stats["designs"]["entries"] >= 1


def test_study_parallel_matches_serial():
    """run_study(n_jobs=2) reproduces the serial tables exactly,
    whichever pool backend fans the jobs out."""
    from repro.experiments import ProtocolConfig, run_study

    config = ProtocolConfig().quick()
    cohort = default_cohort()[:2]
    serial = run_study(cohort=cohort, config=config, n_jobs=1,
                       cache=FilterDesignCache())
    threaded = run_study(cohort=cohort, config=config, n_jobs=2,
                         cache=FilterDesignCache())
    forked = run_study(cohort=cohort, config=config, n_jobs=2,
                       backend="process")
    for study in (threaded, forked):
        for position in config.positions:
            assert (serial.correlation_table(position)
                    == study.correlation_table(position))
        assert serial.worst_case_error() == study.worst_case_error()


def test_process_backend_falls_back_when_shared_memory_unavailable(
        batch_recordings, monkeypatch):
    """A host that cannot provide the arena (e.g. a /dev/shm cap) must
    degrade to the pickle plane, not fail the batch."""
    import repro.core.executor as executor

    def no_shm(*args, **kwargs):
        raise OSError(28, "No space left on device")

    monkeypatch.setattr(executor, "ShmArena", no_shm)
    serial = [
        BeatToBeatPipeline(r.fs, cache=FilterDesignCache())
        .process_recording(r)
        for r in batch_recordings[:3]
    ]
    results = process_batch(batch_recordings[:3], n_jobs=2,
                            backend="process")
    _assert_results_identical(results, serial)
    stats = last_ipc_stats()
    assert stats.data_plane_bytes == 0          # pickle plane ran
    assert stats.payload_bytes > 100_000        # arrays over the pipe
