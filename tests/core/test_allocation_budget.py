"""Allocation-regression budget for the beat-batched hot path.

The batched point-detection kernels exist to replace per-beat Python
with whole-recording array passes.  The regression this suite pins:
the batched path must not quietly reintroduce per-beat *array*
temporaries.  Concretely, with the total signal length held fixed,

* the tracemalloc peak of one detection pass must not grow with the
  number of beats (per-beat buffers of any size would move it);
* the number of live large blocks (>= 8 KiB) retained by the result
  must stay a small constant (the landmark columns), never one block
  per beat;
* the derivative stage must issue exactly one global ``correlate``
  per derivative order however many beats the recording holds.

(The deliberately per-beat *scalar* work that bit-parity with the
reference requires — the tiny edge-projection matvecs and line-fit
reductions — allocates well under the 8 KiB threshold and is excluded
by design.)
"""

import tracemalloc

import numpy as np

from repro.icg.batch import detect_all_points_batched
from repro.icg.points import PointConfig

FS = 250.0
LARGE_BLOCK = 8 * 1024


def many_beat_signal(n_beats: int, total_samples: int = 48000):
    """A periodic synthetic ICG with ``n_beats`` analysable beats over
    a fixed total length (positive C lobe, negative X trough)."""
    length = total_samples // n_beats
    t = np.arange(length) / FS
    period = length / FS
    beat = (1.2 * np.exp(-((t - 0.30 * period) ** 2) / (2 * 0.03 ** 2))
            - 0.6 * np.exp(-((t - 0.62 * period) ** 2) / (2 * 0.05 ** 2)))
    icg = np.tile(beat, n_beats)
    r_indices = np.arange(n_beats + 1) * length
    return icg, r_indices


def detection_peak_bytes(n_beats: int) -> tuple:
    """(tracemalloc peak, live large blocks) of one batched pass."""
    icg, r_indices = many_beat_signal(n_beats)
    config = PointConfig()
    # Warm caches (savgol kernels, design tables) out of the budget.
    detect_all_points_batched(icg, FS, r_indices, config)
    tracemalloc.start()
    tracemalloc.reset_peak()
    before, _ = tracemalloc.get_traced_memory()
    points, failures, landmarks = detect_all_points_batched(
        icg, FS, r_indices, config)
    _, peak = tracemalloc.get_traced_memory()
    snapshot = tracemalloc.take_snapshot()
    tracemalloc.stop()
    assert points, "synthetic beats must be analysable"
    large_live = sum(
        1 for trace in snapshot.traces if trace.size >= LARGE_BLOCK)
    return peak - before, large_live


def test_peak_is_independent_of_beat_count():
    """Fixed signal, 8x the beats: the batched pass's peak allocation
    must stay flat (per-beat temporaries would scale it)."""
    few_peak, few_live = detection_peak_bytes(12)
    many_peak, many_live = detection_peak_bytes(96)
    assert many_peak <= 1.3 * few_peak + 64 * 1024, (
        f"peak grew with beat count: {few_peak} -> {many_peak}")
    # Live large blocks: the landmark/result columns only — a small
    # constant, never O(n_beats) buffers.
    assert many_live <= few_live + 8
    assert many_live <= 40


def test_peak_is_linear_in_signal_not_beats():
    """The budget itself: one pass allocates a small constant multiple
    of the signal size (the derivative arrays and window views), not
    more."""
    icg, r_indices = many_beat_signal(48)
    config = PointConfig()
    detect_all_points_batched(icg, FS, r_indices, config)
    tracemalloc.start()
    tracemalloc.reset_peak()
    before, _ = tracemalloc.get_traced_memory()
    detect_all_points_batched(icg, FS, r_indices, config)
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    signal_bytes = icg.nbytes
    # 3 derivative arrays + padded copies + (n_beats x width) window
    # gathers (~2x signal for tiling beats) + masks: comfortably under
    # 40x the signal; per-beat full-width temporaries would blow past.
    assert peak - before <= 40 * signal_bytes + 256 * 1024


def test_one_global_correlate_per_derivative_order(monkeypatch):
    """The derivative stage runs exactly three global correlations —
    one per order — regardless of beat count (the pre-batched code ran
    three per beat)."""
    import repro.icg.batch as batch

    calls = []
    real = np.correlate

    def counting(*args, **kwargs):
        calls.append(args[1].size)
        return real(*args, **kwargs)

    monkeypatch.setattr(batch.np, "correlate", counting)
    for n_beats in (8, 64):
        calls.clear()
        icg, r_indices = many_beat_signal(n_beats)
        detect_all_points_batched(icg, FS, r_indices, PointConfig())
        assert len(calls) == 3, (
            f"{len(calls)} correlate calls for {n_beats} beats")
