"""The end-to-end beat-to-beat pipeline."""

import numpy as np
import pytest

from repro.core import BeatToBeatPipeline, PipelineConfig
from repro.errors import ConfigurationError, SignalError
from repro.synth import SynthesisConfig, default_cohort, synthesize_recording


def test_summary_payload_fields(pipeline_result):
    summary = pipeline_result.summary()
    assert set(summary) == {"z0_ohm", "lvet_s", "pep_s", "hr_bpm"}


def test_recovers_ground_truth_hr(pipeline_result, thoracic_recording):
    assert pipeline_result.hr_bpm == pytest.approx(
        thoracic_recording.meta["true_hr_bpm"], rel=0.01)


def test_recovers_ground_truth_z0(pipeline_result, thoracic_recording):
    assert pipeline_result.z0_ohm == pytest.approx(
        thoracic_recording.meta["true_z0_ohm"], rel=0.02)


def test_recovers_intervals_within_tolerance(pipeline_result,
                                             thoracic_recording):
    """Definitional detector offsets are bounded and documented."""
    assert pipeline_result.mean_pep_s == pytest.approx(
        thoracic_recording.meta["true_pep_s"], abs=0.025)
    assert pipeline_result.mean_lvet_s == pytest.approx(
        thoracic_recording.meta["true_lvet_s"], abs=0.06)


def test_detects_most_beats(pipeline_result, thoracic_recording):
    truth = thoracic_recording.annotation("r_times_s")
    assert pipeline_result.n_beats_detected >= truth.size - 2
    assert len(pipeline_result.failures) <= 2


def test_intermediate_signals_exposed(pipeline_result,
                                      thoracic_recording):
    assert pipeline_result.ecg_filtered.shape == (
        thoracic_recording.n_samples,)
    assert pipeline_result.icg.shape == (thoracic_recording.n_samples,)


def test_hemodynamics_computed_when_height_given(thoracic_recording):
    subject = default_cohort()[1]
    config = PipelineConfig(height_cm=subject.height_m * 100)
    pipeline = BeatToBeatPipeline(thoracic_recording.fs, config)
    result = pipeline.process_recording(thoracic_recording)
    assert len(result.beat_hemodynamics) > 5
    sv = np.array([b.sv_kubicek_ml for b in result.beat_hemodynamics])
    assert np.all((sv > 20.0) & (sv < 150.0))  # physiological SV


def test_hemodynamics_skipped_without_height(pipeline_result):
    assert pipeline_result.beat_hemodynamics == []


def test_fs_mismatch_rejected(thoracic_recording):
    pipeline = BeatToBeatPipeline(500.0)
    with pytest.raises(ConfigurationError):
        pipeline.process_recording(thoracic_recording)


def test_mismatched_channel_lengths_rejected():
    pipeline = BeatToBeatPipeline(250.0)
    with pytest.raises(SignalError):
        pipeline.process(np.zeros(5000), np.zeros(4000))


def test_garbage_signal_flagged_by_quality_gate(rng):
    """An adaptive detector happily 'detects' beats in pure noise; the
    acquisition loop relies on the quality gate to reject the take."""
    from repro.ecg.quality import assess_quality

    pipeline = BeatToBeatPipeline(250.0)
    noise = 0.001 * rng.standard_normal(4000)
    try:
        result = pipeline.process(noise, 25.0 + noise)
    except SignalError:
        return  # also acceptable: nothing detectable at all
    verdict = assess_quality(noise, 250.0, result.r_peak_indices)
    assert not verdict.acceptable


def test_device_recording_processes(subject):
    recording = synthesize_recording(subject, "device", 2,
                                     SynthesisConfig(duration_s=16.0))
    pipeline = BeatToBeatPipeline(recording.fs)
    result = pipeline.process_recording(recording)
    assert result.hr_bpm == pytest.approx(recording.meta["true_hr_bpm"],
                                          rel=0.02)
    assert result.z0_ohm == pytest.approx(recording.meta["true_z0_ohm"],
                                          rel=0.02)


def test_result_is_deterministic(thoracic_recording):
    a = BeatToBeatPipeline(thoracic_recording.fs).process_recording(
        thoracic_recording)
    b = BeatToBeatPipeline(thoracic_recording.fs).process_recording(
        thoracic_recording)
    assert np.array_equal(a.r_peak_indices, b.r_peak_indices)
    assert np.allclose(a.pep_s, b.pep_s)
