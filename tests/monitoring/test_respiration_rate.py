"""Respiration-rate extraction from device signals."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, SignalError
from repro.monitoring import (
    fuse_rate_estimates,
    respiration_rate_from_impedance,
    respiration_rate_from_rr,
)
from repro.synth import SynthesisConfig, default_cohort, synthesize_recording


@pytest.fixture(scope="module")
def long_recording():
    subject = default_cohort()[0]   # resp rate 0.24 Hz
    return subject, synthesize_recording(
        subject, "device", 1, SynthesisConfig(duration_s=30.0))


def test_impedance_estimate_matches_truth(long_recording):
    subject, recording = long_recording
    rate = respiration_rate_from_impedance(recording.channel("z"),
                                           recording.fs)
    assert rate == pytest.approx(subject.resp_rate_hz, abs=0.05)


def test_rsa_estimate_matches_truth(long_recording):
    subject, recording = long_recording
    rate = respiration_rate_from_rr(recording.annotation("r_times_s"))
    assert rate == pytest.approx(subject.resp_rate_hz, abs=0.05)


def test_estimates_fuse(long_recording):
    subject, recording = long_recording
    fused = fuse_rate_estimates(
        respiration_rate_from_impedance(recording.channel("z"),
                                        recording.fs),
        respiration_rate_from_rr(recording.annotation("r_times_s")))
    assert fused == pytest.approx(subject.resp_rate_hz, abs=0.05)


def test_works_across_subjects():
    for subject in default_cohort()[1:3]:
        recording = synthesize_recording(
            subject, "thoracic", 1, SynthesisConfig(duration_s=30.0))
        rate = respiration_rate_from_impedance(recording.channel("z"),
                                               recording.fs)
        assert rate == pytest.approx(subject.resp_rate_hz, abs=0.06)


def test_fusion_rejects_disagreement():
    with pytest.raises(SignalError):
        fuse_rate_estimates(0.2, 0.5)


def test_fusion_validates_inputs():
    with pytest.raises(ConfigurationError):
        fuse_rate_estimates(-0.1, 0.2)


def test_impedance_band_validation(long_recording):
    _, recording = long_recording
    with pytest.raises(ConfigurationError):
        respiration_rate_from_impedance(recording.channel("z"),
                                        recording.fs,
                                        band_hz=(0.01, 0.5))
    with pytest.raises(SignalError):
        respiration_rate_from_impedance(np.ones(100), 250.0)


def test_rsa_needs_enough_beats():
    with pytest.raises(SignalError):
        respiration_rate_from_rr(np.arange(5) * 0.8)
    with pytest.raises(SignalError):
        respiration_rate_from_rr(np.array([0.0, 0.5, 0.4, 1.0, 1.5, 2.0,
                                           2.5, 3.0, 3.5]))
