"""CHF decompensation monitoring."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.monitoring import (
    ChfMonitor,
    DecompensationScenario,
    WeightMonitor,
    simulate_decompensation_course,
)
from repro.synth import default_cohort


@pytest.fixture(scope="module")
def decompensation_course():
    subject = default_cohort()[3]
    scenario = DecompensationScenario()
    rng = np.random.default_rng(42)
    return scenario, simulate_decompensation_course(subject, scenario, rng)


def _stable_course(seed):
    scenario = DecompensationScenario(
        z0_drop_fraction=0.0, lvet_drop_fraction=0.0,
        dzdt_drop_fraction=0.0, pep_rise_fraction=0.0, hr_rise_bpm=0.0,
        weight_gain_kg=1e-9)
    return simulate_decompensation_course(
        default_cohort()[seed % 5], scenario, np.random.default_rng(seed))


def test_course_structure(decompensation_course):
    scenario, course = decompensation_course
    assert len(course) == scenario.n_days
    # Z0 falls, TFC rises, LVET falls, HR rises after the onset.
    before = course[: scenario.onset_day - 2]
    after = course[-5:]
    assert np.mean([m.z0_ohm for m in after]) < np.mean(
        [m.z0_ohm for m in before])
    assert np.mean([m.tfc for m in after]) > np.mean(
        [m.tfc for m in before])
    assert np.mean([m.lvet_s for m in after]) < np.mean(
        [m.lvet_s for m in before])
    assert np.mean([m.hr_bpm for m in after]) > np.mean(
        [m.hr_bpm for m in before])


def test_weight_lags_fluid(decompensation_course):
    scenario, course = decompensation_course
    mid = scenario.onset_day + scenario.ramp_days // 2
    # Fluid severity leads weight severity at mid-ramp.
    assert scenario.severity(mid) > scenario.weight_severity(mid)


def test_icg_alert_fires_shortly_after_onset(decompensation_course):
    scenario, course = decompensation_course
    alert_day = ChfMonitor().run(course)
    assert scenario.onset_day < alert_day <= scenario.onset_day + 10


def test_icg_alert_precedes_weight_alert(decompensation_course):
    """The paper's introduction claim, quantified."""
    _, course = decompensation_course
    icg_day = ChfMonitor().run(course)
    weight_day = WeightMonitor().run(course)
    assert icg_day > 0
    assert weight_day == -1 or weight_day > icg_day + 3


@pytest.mark.parametrize("seed", [100, 101, 102])
def test_no_false_alarms_on_stable_course(seed):
    course = _stable_course(seed)
    assert ChfMonitor().run(course) == -1
    assert WeightMonitor().run(course) == -1


def test_persistence_rule_suppresses_single_spikes(decompensation_course):
    _, course = decompensation_course
    monitor = ChfMonitor(persistence_days=3)
    # Feed stable days, then ONE wildly bad measurement, then stable.
    stable = course[:15]
    for measurement in stable:
        monitor.update(measurement)
    bad = stable[-1]
    spiked = type(bad)(day=bad.day + 1, z0_ohm=bad.z0_ohm * 0.5,
                       lvet_s=bad.lvet_s * 0.7, pep_s=bad.pep_s * 1.3,
                       hr_bpm=bad.hr_bpm + 30,
                       dzdt_max_ohm_s=bad.dzdt_max_ohm_s,
                       weight_kg=bad.weight_kg)
    monitor.update(spiked)
    assert not monitor.alert


def test_risk_history_recorded(decompensation_course):
    _, course = decompensation_course
    monitor = ChfMonitor()
    monitor.run(course)
    assert len(monitor.risk_history) >= 20


def test_tfc_property():
    from repro.monitoring import DailyMeasurement
    m = DailyMeasurement(day=0, z0_ohm=400.0, lvet_s=0.3, pep_s=0.1,
                         hr_bpm=60.0, dzdt_max_ohm_s=1.0, weight_kg=80.0)
    assert m.tfc == pytest.approx(2.5)


def test_scenario_validation():
    with pytest.raises(ConfigurationError):
        DecompensationScenario(onset_day=50, n_days=40)
    with pytest.raises(ConfigurationError):
        DecompensationScenario(ramp_days=0)
    with pytest.raises(ConfigurationError):
        DecompensationScenario(z0_drop_fraction=0.9)


def test_monitor_validation():
    with pytest.raises(ConfigurationError):
        ChfMonitor(threshold=0.0)
    with pytest.raises(ConfigurationError):
        ChfMonitor(persistence_days=0)
    with pytest.raises(ConfigurationError):
        WeightMonitor(gain_threshold_kg=0.0)
