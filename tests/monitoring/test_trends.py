"""Trend machinery: aggregation, Theil-Sen, tracker."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError, SignalError
from repro.monitoring import (
    TrendTracker,
    aggregate_daily,
    theil_sen_slope,
)


def test_aggregate_daily_medians():
    days = [0, 0, 0, 1, 1]
    values = [10.0, 11.0, 100.0, 5.0, 7.0]
    summaries = aggregate_daily(days, values)
    assert summaries[0].median == pytest.approx(11.0)   # outlier-proof
    assert summaries[0].n_measurements == 3
    assert summaries[1].median == pytest.approx(6.0)


def test_aggregate_daily_drops_nonfinite():
    summaries = aggregate_daily([0, 0, 1], [1.0, np.nan, 2.0])
    assert summaries[0].n_measurements == 1
    assert summaries[1].median == 2.0


def test_aggregate_daily_validation():
    with pytest.raises(SignalError):
        aggregate_daily([], [])
    with pytest.raises(SignalError):
        aggregate_daily([0, 1], [1.0])
    with pytest.raises(SignalError):
        aggregate_daily([0], [np.inf])


@settings(max_examples=40)
@given(slope=st.floats(-5.0, 5.0), intercept=st.floats(-10.0, 10.0))
def test_theil_sen_exact_on_lines(slope, intercept):
    x = np.arange(20.0)
    estimated = theil_sen_slope(x, slope * x + intercept)
    assert estimated == pytest.approx(slope, abs=1e-9)


def test_theil_sen_robust_to_outliers():
    x = np.arange(30.0)
    y = 2.0 * x
    y[5] += 500.0
    y[17] -= 300.0
    assert theil_sen_slope(x, y) == pytest.approx(2.0, abs=0.05)


def test_theil_sen_validation():
    with pytest.raises(SignalError):
        theil_sen_slope([1.0], [2.0])
    with pytest.raises(SignalError):
        theil_sen_slope([1.0, 1.0], [2.0, 3.0])


def test_tracker_flat_series_scores_zero(rng):
    tracker = TrendTracker()
    scores = [tracker.update(10.0 + 0.01 * rng.standard_normal())
              for _ in range(30)]
    assert max(abs(s) for s in scores[10:]) < 3.0


def test_tracker_detects_step_change(rng):
    tracker = TrendTracker(baseline_days=10.0)
    for _ in range(20):
        tracker.update(10.0 + 0.05 * rng.standard_normal())
    scores = [tracker.update(11.0 + 0.05 * rng.standard_normal())
              for _ in range(5)]
    assert max(scores) > 3.0


def test_tracker_warmup_is_silent():
    tracker = TrendTracker(warmup_updates=5)
    scores = [tracker.update(v) for v in (1.0, 99.0, 1.0, 99.0, 1.0)]
    assert scores == [0.0] * 5


def test_tracker_validation():
    with pytest.raises(ConfigurationError):
        TrendTracker(baseline_days=0.5)
    with pytest.raises(ConfigurationError):
        TrendTracker(scale_floor=0.0)
    with pytest.raises(ConfigurationError):
        TrendTracker(warmup_updates=0)
    with pytest.raises(SignalError):
        TrendTracker().update(np.nan)


def test_summarize_beat_series_collapses_columns():
    """The beat-batched monitoring bridge: one robust sample per
    parameter from a BeatHemodynamicsSeries, as column reductions."""
    import numpy as np

    from repro.icg.hemodynamics import BeatHemodynamicsSeries
    from repro.monitoring.trends import DailySummary, summarize_beat_series

    pep = np.array([0.08, 0.09, 0.10, np.nan])
    series = BeatHemodynamicsSeries(
        pep_s=pep, lvet_s=pep * 3, hr_bpm=np.full(4, 60.0),
        dzdt_max_ohm_s=pep, sv_kubicek_ml=pep * 100,
        sv_sramek_ml=pep * 90, co_kubicek_l_min=pep * 5,
        co_sramek_l_min=pep * 4)
    out = summarize_beat_series(3, series)
    assert set(out) == {"pep_s", "lvet_s", "hr_bpm", "sv_kubicek_ml",
                        "co_kubicek_l_min"}
    summary = out["pep_s"]
    assert isinstance(summary, DailySummary)
    assert summary.day == 3
    assert summary.n_measurements == 3          # NaN beat dropped
    assert summary.median == 0.09
    assert out["hr_bpm"].spread == 0.0


def test_summarize_beat_series_rejects_empty():
    import numpy as np
    import pytest

    from repro.errors import SignalError
    from repro.icg.hemodynamics import BeatHemodynamicsSeries
    from repro.monitoring.trends import summarize_beat_series

    empty = BeatHemodynamicsSeries(*(np.empty(0),) * 8)
    with pytest.raises(SignalError):
        summarize_beat_series(0, empty)
