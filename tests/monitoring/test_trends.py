"""Trend machinery: aggregation, Theil-Sen, tracker."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError, SignalError
from repro.monitoring import (
    TrendTracker,
    aggregate_daily,
    theil_sen_slope,
)


def test_aggregate_daily_medians():
    days = [0, 0, 0, 1, 1]
    values = [10.0, 11.0, 100.0, 5.0, 7.0]
    summaries = aggregate_daily(days, values)
    assert summaries[0].median == pytest.approx(11.0)   # outlier-proof
    assert summaries[0].n_measurements == 3
    assert summaries[1].median == pytest.approx(6.0)


def test_aggregate_daily_drops_nonfinite():
    summaries = aggregate_daily([0, 0, 1], [1.0, np.nan, 2.0])
    assert summaries[0].n_measurements == 1
    assert summaries[1].median == 2.0


def test_aggregate_daily_validation():
    with pytest.raises(SignalError):
        aggregate_daily([], [])
    with pytest.raises(SignalError):
        aggregate_daily([0, 1], [1.0])
    with pytest.raises(SignalError):
        aggregate_daily([0], [np.inf])


@settings(max_examples=40)
@given(slope=st.floats(-5.0, 5.0), intercept=st.floats(-10.0, 10.0))
def test_theil_sen_exact_on_lines(slope, intercept):
    x = np.arange(20.0)
    estimated = theil_sen_slope(x, slope * x + intercept)
    assert estimated == pytest.approx(slope, abs=1e-9)


def test_theil_sen_robust_to_outliers():
    x = np.arange(30.0)
    y = 2.0 * x
    y[5] += 500.0
    y[17] -= 300.0
    assert theil_sen_slope(x, y) == pytest.approx(2.0, abs=0.05)


def test_theil_sen_validation():
    with pytest.raises(SignalError):
        theil_sen_slope([1.0], [2.0])
    with pytest.raises(SignalError):
        theil_sen_slope([1.0, 1.0], [2.0, 3.0])


def test_tracker_flat_series_scores_zero(rng):
    tracker = TrendTracker()
    scores = [tracker.update(10.0 + 0.01 * rng.standard_normal())
              for _ in range(30)]
    assert max(abs(s) for s in scores[10:]) < 3.0


def test_tracker_detects_step_change(rng):
    tracker = TrendTracker(baseline_days=10.0)
    for _ in range(20):
        tracker.update(10.0 + 0.05 * rng.standard_normal())
    scores = [tracker.update(11.0 + 0.05 * rng.standard_normal())
              for _ in range(5)]
    assert max(scores) > 3.0


def test_tracker_warmup_is_silent():
    tracker = TrendTracker(warmup_updates=5)
    scores = [tracker.update(v) for v in (1.0, 99.0, 1.0, 99.0, 1.0)]
    assert scores == [0.0] * 5


def test_tracker_validation():
    with pytest.raises(ConfigurationError):
        TrendTracker(baseline_days=0.5)
    with pytest.raises(ConfigurationError):
        TrendTracker(scale_floor=0.0)
    with pytest.raises(ConfigurationError):
        TrendTracker(warmup_updates=0)
    with pytest.raises(SignalError):
        TrendTracker().update(np.nan)
