"""Shard artifact persistence: lossless round trip, merge after
reload, failure modes."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.experiments import (
    ProtocolConfig,
    merge_shards,
    run_study,
    run_study_shard,
)
from repro.io import load_shard, save_shard
from repro.synth import default_cohort

CONFIG = ProtocolConfig().quick()
COHORT = default_cohort()[:2]


@pytest.fixture(scope="module")
def shard():
    return run_study_shard(cohort=COHORT, config=CONFIG, n_shards=2,
                           shard_index=1)


def test_round_trip_is_lossless(shard, tmp_path):
    path = save_shard(shard, tmp_path / "shard1.npz")
    loaded = load_shard(path)
    assert loaded.n_shards == shard.n_shards
    assert loaded.shard_index == shard.shard_index
    assert loaded.n_jobs_total == shard.n_jobs_total
    assert loaded.subject_ids == shard.subject_ids
    assert loaded.config == shard.config
    for store in ("device", "thoracic"):
        original = getattr(shard, store)
        rebuilt = getattr(loaded, store)
        assert list(rebuilt) == list(original)
        for key in original:
            a, b = original[key], rebuilt[key]
            assert np.array_equal(a.ensemble_beat, b.ensemble_beat)
            assert a.setup == b.setup
            assert a.mean_z0_ohm == b.mean_z0_ohm
            assert a.hr_bpm == b.hr_bpm
            assert (a.mean_pep_s == b.mean_pep_s
                    or (np.isnan(a.mean_pep_s)
                        and np.isnan(b.mean_pep_s)))


def test_bare_name_gets_npz_suffix(shard, tmp_path):
    path = save_shard(shard, tmp_path / "bare")
    assert str(path).endswith(".npz")
    assert load_shard(tmp_path / "bare").shard_index == shard.shard_index


def test_reloaded_shards_merge_to_the_serial_study(tmp_path):
    serial = run_study(cohort=COHORT, config=CONFIG)
    paths = [
        save_shard(run_study_shard(cohort=COHORT, config=CONFIG,
                                   n_shards=2, shard_index=i),
                   tmp_path / f"s{i}.npz")
        for i in range(2)
    ]
    merged = merge_shards([load_shard(p) for p in paths])
    assert list(merged.device) == list(serial.device)
    for key in serial.device:
        assert np.array_equal(merged.device[key].ensemble_beat,
                              serial.device[key].ensemble_beat)
    for position in CONFIG.positions:
        assert (merged.correlation_table(position)
                == serial.correlation_table(position))
    assert merged.worst_case_error() == serial.worst_case_error()


def test_missing_file_raises(tmp_path):
    with pytest.raises(ConfigurationError):
        load_shard(tmp_path / "nope.npz")


def test_unsupported_schema_raises(shard, tmp_path):
    path = save_shard(shard, tmp_path / "future.npz")
    with np.load(path, allow_pickle=False) as data:
        payload = {k: data[k] for k in data.files}
    payload["schema"] = np.asarray(999)
    np.savez_compressed(path, **payload)
    with pytest.raises(ConfigurationError):
        load_shard(path)
