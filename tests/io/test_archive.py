"""Cold-tier session archives: bit-identical rehydration, idempotent
sweeps, an index that stays addressable, and loud refusal on damage."""

import json

import numpy as np
import pytest

from repro.errors import ArchiveError
from repro.ingest import (
    ChunkJournal,
    DeviceFleet,
    FleetConfig,
    StreamingExecutor,
    journal_gc,
)
from repro.io import (
    archive_sessions,
    load_archive,
    read_archive_index,
    rehydrate_session,
    save_archive,
)

FLEET = FleetConfig(n_devices=3, duration_s=8.0, chunk_s=2.0, seed=13,
                    n_rounds=2, round_gap_s=2.0)

_CACHE = {}


def _fleet():
    if "fleet" not in _CACHE:
        _CACHE["fleet"] = DeviceFleet(FLEET)
    return _CACHE["fleet"]


@pytest.fixture()
def journaled(tmp_path):
    """A completed journaled fleet run; returns (journal dir, results)."""
    directory = tmp_path / "journal"
    with ChunkJournal(directory) as journal:
        executor = StreamingExecutor(n_workers=1, preview=False,
                                     journal=journal)
        results = executor.run(_fleet())
    return directory, results


def _assert_chunks_identical(got, want):
    assert [c.seq for c in got] == [c.seq for c in want]
    for a, b in zip(got, want):
        assert a.session_id == b.session_id
        assert a.fs == b.fs and a.start_sample == b.start_sample
        assert a.is_last == b.is_last and a.arrival_s == b.arrival_s
        assert a.meta == b.meta
        for store in ("signals", "annotations"):
            sa, sb = getattr(a, store), getattr(b, store)
            assert set(sa) == set(sb)
            for name in sa:
                assert np.array_equal(sa[name], sb[name]), (store, name)


def test_archive_then_rehydrate_is_bit_identical(journaled):
    directory, results = journaled
    adir = directory.parent / "cold"
    report = archive_sessions(directory, adir)
    assert set(report.archived) == set(results)
    assert not report.skipped
    assert report.bytes_written > 0

    from repro.ingest import scan_journal
    scan = scan_journal(directory)
    for sid, chunks in scan.complete.items():
        _assert_chunks_identical(rehydrate_session(adir, sid), chunks)
        # ... and the stage graph over the rehydrated stream produces
        # the run's exact numbers.
        replay = StreamingExecutor(n_workers=1, preview=False).run(
            iter(rehydrate_session(adir, sid)))
        assert (replay[sid].result.summary()
                == results[sid].result.summary())


def test_archive_is_idempotent_and_appends_new_files(journaled,
                                                     tmp_path):
    directory, results = journaled
    adir = tmp_path / "cold"
    first = archive_sessions(directory, adir)
    again = archive_sessions(directory, adir)
    assert again.file is None and not again.archived
    assert set(again.already_archived) == set(first.archived)
    assert sorted(p.name for p in adir.glob("archive-*.npz")) \
        == [first.file.name]

    # A later run with new sessions lands in a second file; the index
    # addresses both.
    late = DeviceFleet(FleetConfig(n_devices=1, duration_s=8.0,
                                   chunk_s=2.0, seed=99))
    with ChunkJournal(directory) as journal:
        StreamingExecutor(n_workers=1, preview=False,
                          journal=journal).run(late)
    second = archive_sessions(directory, adir)
    assert second.file is not None and second.file.name != first.file.name
    index = read_archive_index(adir)
    assert set(index) == set(results) | set(second.archived)
    files = {entry["file"] for entry in index.values()}
    assert files == {first.file.name, second.file.name}


def test_archive_skips_unarchivable_requests(journaled, tmp_path):
    directory, _ = journaled
    from tests.ingest.faults import flip_crc_byte

    victim = flip_crc_byte(directory, index=1)
    report = archive_sessions(directory, tmp_path / "cold",
                              session_ids=[victim, "no-such-session"])
    assert not report.archived
    assert "quarantined" in report.skipped[victim]
    assert report.skipped["no-such-session"] == "unknown to the journal"


def test_archive_then_gc_keeps_sessions_addressable(journaled,
                                                    tmp_path):
    """The lifecycle handoff: archive, reclaim the journal, and the
    sessions remain reachable from the cold tier only."""
    directory, results = journaled
    adir = tmp_path / "cold"
    report = archive_sessions(directory, adir)
    gc_report = journal_gc(directory)
    assert set(gc_report.sessions_collected) == set(results)
    sid = sorted(results)[0]
    replay = StreamingExecutor(n_workers=1, preview=False).run(
        iter(rehydrate_session(adir, sid)))
    assert replay[sid].result.summary() == results[sid].result.summary()
    # Collected sessions cannot be re-archived from the journal.
    rerun = archive_sessions(directory, tmp_path / "cold2",
                             session_ids=[sid])
    assert "collected" in rerun.skipped[sid]
    assert report.file.exists()


def test_load_archive_round_trips_standalone(tmp_path):
    from repro.ingest import chunk_recording
    from repro.synth import (SynthesisConfig, default_cohort,
                             synthesize_recording)

    recording = synthesize_recording(
        default_cohort()[0], "device", 1, SynthesisConfig(duration_s=8.0))
    chunks = list(chunk_recording(recording, "solo", 2.0))
    file = save_archive({"solo": chunks}, tmp_path / "one")
    assert file.name.endswith(".npz")
    _assert_chunks_identical(load_archive(file)["solo"], chunks)


def test_rehydrate_unknown_session_raises(tmp_path):
    (tmp_path / "index.json").write_text("{}")
    with pytest.raises(ArchiveError):
        rehydrate_session(tmp_path, "ghost")
    with pytest.raises(ArchiveError):
        load_archive(tmp_path / "missing.npz")


def test_index_mismatch_raises(journaled, tmp_path):
    directory, results = journaled
    adir = tmp_path / "cold"
    archive_sessions(directory, adir)
    sid = sorted(results)[0]
    index = read_archive_index(adir)
    index[sid]["n_chunks"] += 1
    (adir / "index.json").write_text(json.dumps(index))
    with pytest.raises(ArchiveError):
        rehydrate_session(adir, sid)
