"""Recording container and persistence."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, SignalError
from repro.io import Recording


def _recording():
    return Recording(
        fs=250.0,
        signals={"ecg": np.sin(np.arange(1000) * 0.1),
                 "z": 25.0 + 0.1 * np.cos(np.arange(1000) * 0.05)},
        annotations={"r_times_s": np.array([0.5, 1.5, 2.5]),
                     "pep_beats_s": np.array([0.1, 0.11, 0.09])},
        meta={"subject_id": 3, "setup": "device", "position": 2,
              "true_hr_bpm": 60.0},
    )


def test_basic_properties():
    rec = _recording()
    assert rec.n_samples == 1000
    assert rec.duration_s == pytest.approx(4.0)
    assert rec.time_s[1] == pytest.approx(1.0 / 250.0)


def test_channel_access():
    rec = _recording()
    assert rec.channel("ecg").size == 1000
    with pytest.raises(SignalError):
        rec.channel("missing")


def test_annotation_access():
    rec = _recording()
    assert rec.annotation("r_times_s").size == 3
    with pytest.raises(SignalError):
        rec.annotation("missing")


def test_channel_length_mismatch_rejected():
    with pytest.raises(SignalError):
        Recording(250.0, {"a": np.ones(10), "b": np.ones(11)})


def test_empty_or_2d_channel_rejected():
    with pytest.raises(SignalError):
        Recording(250.0, {"a": np.array([])})
    with pytest.raises(SignalError):
        Recording(250.0, {"a": np.ones((4, 4))})


def test_no_channels_rejected():
    with pytest.raises(ConfigurationError):
        Recording(250.0, {})


def test_nonscalar_meta_rejected():
    with pytest.raises(ConfigurationError):
        Recording(250.0, {"a": np.ones(5)}, meta={"bad": [1, 2, 3]})


def test_invalid_fs_rejected():
    with pytest.raises(ConfigurationError):
        Recording(0.0, {"a": np.ones(5)})


def test_with_channel_is_copy():
    rec = _recording()
    extended = rec.with_channel("icg", np.zeros(1000))
    assert "icg" in extended.signals
    assert "icg" not in rec.signals


def test_slice_time_shifts_event_annotations():
    rec = _recording()
    sliced = rec.slice_time(1.0, 3.0)
    assert sliced.n_samples == 500
    assert np.allclose(sliced.annotation("r_times_s"), [0.5, 1.5])
    # Non-time annotations kept verbatim.
    assert sliced.annotation("pep_beats_s").size == 3


def test_slice_time_validation():
    rec = _recording()
    with pytest.raises(ConfigurationError):
        rec.slice_time(2.0, 1.0)
    with pytest.raises(SignalError):
        rec.slice_time(3.999, 4.0)


def test_save_load_roundtrip(tmp_path):
    rec = _recording()
    path = rec.save(tmp_path / "test_rec.npz")
    loaded = Recording.load(path)
    assert loaded.fs == rec.fs
    for name in rec.signals:
        assert np.allclose(loaded.channel(name), rec.channel(name))
    for name in rec.annotations:
        assert np.allclose(loaded.annotation(name), rec.annotation(name))
    assert loaded.meta["subject_id"] == 3
    assert loaded.meta["setup"] == "device"
    assert loaded.meta["true_hr_bpm"] == 60.0


def test_save_appends_npz_suffix(tmp_path):
    rec = _recording()
    path = rec.save(tmp_path / "bare_name")
    assert str(path).endswith(".npz")
    assert path.exists()
    assert Recording.load(tmp_path / "bare_name").fs == 250.0


def test_load_missing_file_rejected(tmp_path):
    with pytest.raises(ConfigurationError):
        Recording.load(tmp_path / "nope.npz")


def test_export_csv(tmp_path):
    rec = _recording()
    path = rec.export_csv(tmp_path / "rec.csv")
    table = np.loadtxt(path, delimiter=",", skiprows=1)
    assert table.shape == (1000, 3)  # time + 2 channels
    with open(path) as handle:
        header = handle.readline().strip()
    assert header == "time_s,ecg,z"


def test_synthesized_recording_roundtrip(tmp_path, device_recording):
    path = device_recording.save(tmp_path / "synth.npz")
    loaded = Recording.load(path)
    assert np.allclose(loaded.channel("z"), device_recording.channel("z"))
    assert loaded.meta["injection_frequency_hz"] == 50_000.0
