"""Respiration, motion and noise generators."""

import numpy as np
import pytest

from repro.dsp import spectral
from repro.synth import motion, noise, respiration
from repro.errors import ConfigurationError

FS = 250.0


# --- respiration -----------------------------------------------------------

def test_respiration_rate_recovered(rng):
    model = respiration.RespirationModel(rate_hz=0.3, rate_variability=0.02)
    wave = respiration.respiration_wave(model, 120.0, FS, rng)
    rate = spectral.dominant_frequency(wave, FS, low_hz=0.05, high_hz=1.0)
    assert rate == pytest.approx(0.3, abs=0.08)


def test_respiration_zero_mean(rng):
    model = respiration.RespirationModel()
    wave = respiration.respiration_wave(model, 60.0, FS, rng)
    assert abs(wave.mean()) < 1e-9


def test_respiration_band_limits_enforced():
    with pytest.raises(ConfigurationError):
        respiration.RespirationModel(rate_hz=3.0)   # above the 2 Hz band
    with pytest.raises(ConfigurationError):
        respiration.RespirationModel(rate_hz=0.01)  # below 0.04 Hz


def test_respiration_depth_varies(rng):
    model = respiration.RespirationModel(depth_variability=0.3)
    wave = respiration.respiration_wave(model, 120.0, FS, rng)
    # Per-cycle peaks should differ when depth variability is on.
    from repro.dsp.derivative import local_maxima
    peaks = wave[local_maxima(wave)]
    big_peaks = peaks[peaks > 0.3]
    assert big_peaks.std() > 0.02


def test_respiration_validation():
    with pytest.raises(ConfigurationError):
        respiration.RespirationModel(ie_ratio=0.05)
    with pytest.raises(ConfigurationError):
        respiration.RespirationModel(rate_variability=0.9)


# --- motion ---------------------------------------------------------------

def test_motion_rms_close_to_requested(rng):
    model = motion.MotionModel(tremor_rms=0.5, burst_rate_hz=0.0)
    trace = motion.motion_artifact(model, 60.0, FS, rng)
    assert np.sqrt(np.mean(trace**2)) == pytest.approx(0.5, rel=0.05)


def test_motion_band_limited(rng):
    model = motion.MotionModel(tremor_rms=1.0, burst_rate_hz=0.0,
                               band_hz=(0.5, 8.0))
    trace = motion.motion_artifact(model, 120.0, FS, rng)
    freqs, psd = spectral.welch(trace, FS, nperseg=2048)
    in_band = spectral.band_power(freqs, psd, 0.5, 8.0)
    out_band = spectral.band_power(freqs, psd, 20.0, 125.0)
    assert in_band > 20 * out_band


def test_bursts_add_energy(rng):
    quiet = motion.MotionModel(tremor_rms=0.1, burst_rate_hz=0.0)
    bursty = motion.MotionModel(tremor_rms=0.1, burst_rate_hz=1.0,
                                burst_amplitude=5.0)
    t_quiet = motion.motion_artifact(quiet, 60.0, FS,
                                     np.random.default_rng(3))
    t_bursty = motion.motion_artifact(bursty, 60.0, FS,
                                      np.random.default_rng(3))
    assert np.abs(t_bursty).max() > 3 * np.abs(t_quiet).max()


def test_position_motion_model_scaling():
    base = motion.position_motion_model(1, 0.01)
    outstretched = motion.position_motion_model(2, 0.01)
    hanging = motion.position_motion_model(3, 0.01)
    assert outstretched.tremor_rms > base.tremor_rms
    assert hanging.tremor_rms > outstretched.tremor_rms * 0.9


def test_position_motion_model_invalid_position():
    with pytest.raises(ConfigurationError):
        motion.position_motion_model(7, 0.01)


def test_motion_validation():
    with pytest.raises(ConfigurationError):
        motion.MotionModel(band_hz=(5.0, 1.0))
    with pytest.raises(ConfigurationError):
        motion.MotionModel(tremor_rms=-1.0)


# --- noise ----------------------------------------------------------------

def test_white_noise_rms(rng):
    trace = noise.white_noise(2.0, 50_000, rng)
    assert np.sqrt(np.mean(trace**2)) == pytest.approx(2.0, rel=0.02)


def test_pink_noise_spectrum_slope(rng):
    trace = noise.pink_noise(1.0, 2**16, rng)
    freqs, psd = spectral.welch(trace, 1.0, nperseg=4096)
    band = (freqs > 0.01) & (freqs < 0.4)
    slope = np.polyfit(np.log10(freqs[band]), np.log10(psd[band]), 1)[0]
    assert slope == pytest.approx(-1.0, abs=0.25)


def test_pink_noise_rms(rng):
    trace = noise.pink_noise(0.7, 4096, rng)
    assert np.sqrt(np.mean(trace**2)) == pytest.approx(0.7, rel=1e-6)


def test_powerline_fundamental_peak(rng):
    model = noise.PowerlineModel(frequency_hz=50.0, amplitude=1.0)
    trace = noise.powerline_interference(model, 30.0, FS, rng)
    peak = spectral.dominant_frequency(trace, FS, low_hz=30.0)
    assert peak == pytest.approx(50.0, abs=0.5)


def test_powerline_harmonics_skipped_above_nyquist(rng):
    model = noise.PowerlineModel(frequency_hz=50.0, n_harmonics=4)
    trace = noise.powerline_interference(model, 5.0, FS, rng)
    assert np.all(np.isfinite(trace))  # 250 Hz harmonic silently dropped


def test_noise_validation(rng):
    with pytest.raises(ConfigurationError):
        noise.white_noise(-1.0, 10, rng)
    with pytest.raises(ConfigurationError):
        noise.pink_noise(1.0, 1, rng)
    with pytest.raises(ConfigurationError):
        noise.PowerlineModel(frequency_hz=0.0)
    with pytest.raises(ConfigurationError):
        noise.PowerlineModel(n_harmonics=0)
