"""Subject profiles and the default cohort."""

import numpy as np
import pytest

from repro.synth import subject as subject_mod
from repro.errors import ConfigurationError


def test_default_cohort_has_five_subjects():
    cohort = subject_mod.default_cohort()
    assert [s.subject_id for s in cohort] == [1, 2, 3, 4, 5]


def test_cohort_structure_matches_tables():
    """Subject 3 has the best contact; subject 5 degrades in position 3."""
    cohort = {s.subject_id: s for s in subject_mod.default_cohort()}
    contacts = {sid: s.contact_quality for sid, s in cohort.items()}
    assert contacts[3] == max(contacts.values())
    s5 = cohort[5]
    assert s5.effective_contact(3) < 0.7 * s5.effective_contact(1)


def test_geometry_derivation(subject):
    geometry = subject.geometry
    assert geometry.height_m == subject.height_m
    assert geometry.weight_kg == subject.weight_kg


def test_rr_model_binds_vitals(subject):
    model = subject.rr_model()
    assert model.mean_hr_bpm == subject.hr_bpm
    assert model.respiration_rate_hz == subject.resp_rate_hz


def test_effective_contact_clipped():
    profile = subject_mod.SubjectProfile(
        subject_id=9, age_years=30, height_m=1.8, weight_kg=75.0,
        body_fat_fraction=0.2, hr_bpm=60.0, pep_s=0.1, lvet_s=0.3,
        contact_quality=0.1, position_contact={1: 0.01, 2: 1.0, 3: 1.0})
    assert profile.effective_contact(1) == pytest.approx(0.05)


def test_rng_for_deterministic_and_context_sensitive(subject):
    a = subject.rng_for("device", 1, 50_000).normal(size=4)
    b = subject.rng_for("device", 1, 50_000).normal(size=4)
    c = subject.rng_for("device", 2, 50_000).normal(size=4)
    assert np.array_equal(a, b)
    assert not np.array_equal(a, c)


def test_rng_differs_between_subjects(cohort):
    a = cohort[0].rng_for("device", 1).normal(size=4)
    b = cohort[1].rng_for("device", 1).normal(size=4)
    assert not np.array_equal(a, b)


def test_validation_rejects_nonphysiological():
    base = dict(subject_id=1, age_years=30, height_m=1.8, weight_kg=75.0,
                body_fat_fraction=0.2, hr_bpm=60.0, pep_s=0.1, lvet_s=0.3)
    with pytest.raises(ConfigurationError):
        subject_mod.SubjectProfile(**{**base, "pep_s": 0.4})
    with pytest.raises(ConfigurationError):
        subject_mod.SubjectProfile(**{**base, "lvet_s": 0.1})
    with pytest.raises(ConfigurationError):
        subject_mod.SubjectProfile(**{**base, "subject_id": 0})
    with pytest.raises(ConfigurationError):
        subject_mod.SubjectProfile(**{**base, "contact_quality": 1.2})
    with pytest.raises(ConfigurationError):
        subject_mod.SubjectProfile(**{**base, "height_m": 0.5})
    with pytest.raises(ConfigurationError):
        subject_mod.SubjectProfile(
            **{**base, "position_contact": {1: 1.0, 2: 1.0}})


def test_unknown_position_rejected(subject):
    with pytest.raises(ConfigurationError):
        subject.effective_contact(9)


def test_random_cohort_size_and_ids():
    cohort = subject_mod.random_cohort(8)
    assert len(cohort) == 8
    assert [s.subject_id for s in cohort] == list(range(1, 9))


def test_random_cohort_deterministic():
    a = subject_mod.random_cohort(4, np.random.default_rng(3))
    b = subject_mod.random_cohort(4, np.random.default_rng(3))
    assert [s.seed for s in a] == [s.seed for s in b]
    assert [s.hr_bpm for s in a] == [s.hr_bpm for s in b]


def test_random_cohort_all_profiles_valid():
    """Construction validates; every subject must survive it and be
    synthesizable."""
    from repro.synth import SynthesisConfig, synthesize_recording
    cohort = subject_mod.random_cohort(20, np.random.default_rng(9))
    for s in cohort[:3]:
        rec = synthesize_recording(s, "device", 1,
                                   SynthesisConfig(duration_s=10.0))
        assert rec.n_samples > 0


def test_random_cohort_lvet_tracks_hr():
    """Weissler regression: faster hearts eject for less time."""
    cohort = subject_mod.random_cohort(60, np.random.default_rng(11))
    hr = np.array([s.hr_bpm for s in cohort])
    lvet = np.array([s.lvet_s for s in cohort])
    assert np.corrcoef(hr, lvet)[0, 1] < -0.5


def test_random_cohort_validation():
    with pytest.raises(ConfigurationError):
        subject_mod.random_cohort(0)
    with pytest.raises(ConfigurationError):
        subject_mod.random_cohort(2.5)
