"""Synthetic ECG generation."""

import numpy as np
import pytest

from repro.synth import ecg_model
from repro.errors import ConfigurationError

FS = 250.0


def _single_beat(rr=0.9):
    beat_times = np.array([1.0])
    rr_arr = np.array([rr])
    ecg, t_peaks = ecg_model.synthesize_ecg(beat_times, rr_arr, 3.0, FS)
    return ecg, t_peaks


def test_r_peak_at_requested_time():
    ecg, _ = _single_beat()
    peak_time = np.argmax(ecg) / FS
    assert peak_time == pytest.approx(1.0, abs=1.5 / FS)


def test_r_amplitude_matches_template():
    ecg, _ = _single_beat()
    assert ecg.max() == pytest.approx(1.10, abs=0.05)


def test_t_peak_after_r():
    _, t_peaks = _single_beat()
    assert 0.2 < t_peaks[0] - 1.0 < 0.45


def test_t_peak_scales_with_rr():
    _, t_short = _single_beat(rr=0.6)
    _, t_long = _single_beat(rr=1.1)
    assert t_long[0] - 1.0 > t_short[0] - 1.0


def test_beat_morphology_has_pqrst():
    """P and T are positive bumps, Q and S negative dips near R."""
    ecg, _ = _single_beat()
    r = int(round(1.0 * FS))
    p_window = ecg[r - int(0.25 * FS): r - int(0.10 * FS)]
    q_window = ecg[r - int(0.05 * FS): r - 2]
    s_window = ecg[r + 2: r + int(0.06 * FS)]
    t_window = ecg[r + int(0.15 * FS): r + int(0.45 * FS)]
    assert p_window.max() > 0.05
    assert q_window.min() < -0.05
    assert s_window.min() < -0.1
    assert t_window.max() > 0.2


def test_multiple_beats_superpose():
    beat_times = np.array([0.8, 1.7, 2.6])
    rr = np.array([0.9, 0.9, 0.9])
    ecg, t_peaks = ecg_model.synthesize_ecg(beat_times, rr, 4.0, FS)
    assert t_peaks.shape == (3,)
    for bt in beat_times:
        window = ecg[int((bt - 0.05) * FS): int((bt + 0.05) * FS)]
        assert window.max() > 0.9


def test_quiet_outside_beats():
    ecg, _ = _single_beat()
    assert np.abs(ecg[: int(0.4 * FS)]).max() < 0.02


def test_beat_near_edge_does_not_crash():
    beat_times = np.array([0.05, 2.95])
    rr = np.array([0.9, 0.9])
    ecg, _ = ecg_model.synthesize_ecg(beat_times, rr, 3.0, FS)
    assert np.all(np.isfinite(ecg))


def test_custom_template_flat_t():
    waves = dict(ecg_model.EcgBeatModel().waves)
    waves["T"] = ecg_model.WaveSpec(0.31, 0.0, 0.055, rr_scaled=True)
    model = ecg_model.EcgBeatModel(waves=waves)
    beat_times, rr = np.array([1.0]), np.array([0.9])
    ecg, _ = ecg_model.synthesize_ecg(beat_times, rr, 3.0, FS, model)
    t_window = ecg[int(1.2 * FS): int(1.45 * FS)]
    assert np.abs(t_window).max() < 0.05


def test_template_requires_r_wave():
    with pytest.raises(ConfigurationError):
        ecg_model.EcgBeatModel(waves={"P": ecg_model.WaveSpec(-0.1, 0.1,
                                                              0.02)})


def test_template_requires_t_for_offset():
    model = ecg_model.EcgBeatModel(
        waves={"R": ecg_model.WaveSpec(0.0, 1.0, 0.011)})
    with pytest.raises(ConfigurationError):
        model.t_peak_offset(0.9)


def test_mismatched_inputs_rejected():
    with pytest.raises(ConfigurationError):
        ecg_model.synthesize_ecg(np.array([1.0]), np.array([0.9, 0.8]),
                                 3.0, FS)
    with pytest.raises(ConfigurationError):
        ecg_model.synthesize_ecg(np.array([1.0]), np.array([0.9]),
                                 -1.0, FS)
    with pytest.raises(ConfigurationError):
        ecg_model.WaveSpec(0.0, 1.0, -0.01)
