"""The full recording assembler."""

import numpy as np
import pytest

from repro.synth import SynthesisConfig, synthesize_recording
from repro.errors import ConfigurationError


def test_channels_and_length(device_recording):
    assert set(device_recording.signals) == {"ecg", "z"}
    assert device_recording.n_samples == int(16.0 * 250.0)


def test_ground_truth_annotations_present(device_recording):
    for name in ("r_times_s", "t_peak_times_s", "b_times_s", "c_times_s",
                 "x_times_s", "pep_beats_s", "lvet_beats_s", "rr_beats_s"):
        assert device_recording.annotation(name).size > 0


def test_landmark_ordering(device_recording):
    r = device_recording.annotation("r_times_s")
    b = device_recording.annotation("b_times_s")
    c = device_recording.annotation("c_times_s")
    x = device_recording.annotation("x_times_s")
    assert np.all(b > r)
    assert np.all(c > b)
    assert np.all(x > c)


def test_metadata_complete(device_recording, subject):
    meta = device_recording.meta
    assert meta["subject_id"] == subject.subject_id
    assert meta["setup"] == "device"
    assert meta["position"] == 1
    assert meta["injection_frequency_hz"] == 50_000.0
    assert 0 < meta["cardiac_coupling"] < 1
    assert 0 < meta["contact_quality"] <= 1


def test_determinism(subject, short_config):
    a = synthesize_recording(subject, "device", 2, short_config)
    b = synthesize_recording(subject, "device", 2, short_config)
    assert np.array_equal(a.channel("z"), b.channel("z"))
    assert np.array_equal(a.channel("ecg"), b.channel("ecg"))


def test_different_positions_differ(subject, short_config):
    a = synthesize_recording(subject, "device", 1, short_config)
    b = synthesize_recording(subject, "device", 2, short_config)
    assert not np.array_equal(a.channel("z"), b.channel("z"))
    assert b.meta["true_z0_ohm"] > a.meta["true_z0_ohm"]


def test_thoracic_vs_device_scale(subject, short_config):
    thoracic = synthesize_recording(subject, "thoracic", 1, short_config)
    device = synthesize_recording(subject, "device", 1, short_config)
    assert device.meta["true_z0_ohm"] > 10 * thoracic.meta["true_z0_ohm"]
    assert device.meta["cardiac_coupling"] < thoracic.meta[
        "cardiac_coupling"]


def test_z_mean_close_to_true_z0(device_recording):
    z = device_recording.channel("z")
    assert np.mean(z) == pytest.approx(device_recording.meta["true_z0_ohm"],
                                       rel=0.01)


def test_low_frequency_injection_attenuates_cardiac(subject):
    low = synthesize_recording(
        subject, "device", 1,
        SynthesisConfig(duration_s=12.0, injection_frequency_hz=2_000.0))
    high = synthesize_recording(
        subject, "device", 1,
        SynthesisConfig(duration_s=12.0, injection_frequency_hz=50_000.0))
    assert low.meta["cardiac_coupling"] < 0.5 * high.meta["cardiac_coupling"]
    assert low.meta["true_z0_ohm"] < high.meta["true_z0_ohm"]


def test_artifact_switches_reduce_variance(subject):
    clean_config = SynthesisConfig(duration_s=12.0,
                                   include_respiration=False,
                                   include_motion=False,
                                   include_noise=False,
                                   include_powerline=False)
    noisy_config = SynthesisConfig(duration_s=12.0)
    clean = synthesize_recording(subject, "device", 3, clean_config)
    noisy = synthesize_recording(subject, "device", 3, noisy_config)
    clean_z = clean.channel("z")
    noisy_z = noisy.channel("z")
    assert noisy_z.std() > clean_z.std()


def test_true_hemodynamics_recorded(device_recording, subject):
    assert device_recording.meta["true_pep_s"] == pytest.approx(
        subject.pep_s, abs=0.01)
    assert device_recording.meta["true_lvet_s"] == pytest.approx(
        subject.lvet_s, abs=0.01)
    assert device_recording.meta["true_hr_bpm"] == pytest.approx(
        subject.hr_bpm, rel=0.05)


def test_invalid_setup_rejected(subject):
    with pytest.raises(ConfigurationError):
        synthesize_recording(subject, "wrist", 1)


def test_too_short_recording_rejected(subject):
    with pytest.raises(ConfigurationError):
        SynthesisConfig(duration_s=-1.0)


def test_custom_rng_overrides_subject_stream(subject, short_config):
    rng = np.random.default_rng(42)
    a = synthesize_recording(subject, "device", 1, short_config, rng=rng)
    b = synthesize_recording(subject, "device", 1, short_config)
    assert not np.array_equal(a.channel("z"), b.channel("z"))
