"""RR-interval generation."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.synth import rr
from repro.errors import ConfigurationError


def test_mean_rr_matches_hr():
    model = rr.RRModel(mean_hr_bpm=75.0)
    assert model.mean_rr_s == pytest.approx(0.8)


def test_series_mean_close_to_target(rng):
    model = rr.RRModel(mean_hr_bpm=60.0)
    series = rr.generate_rr_series(model, 300, rng)
    assert series.mean() == pytest.approx(1.0, rel=0.03)


def test_series_within_clip_bounds(rng):
    model = rr.RRModel(mean_hr_bpm=70.0, jitter_fraction=0.15)
    series = rr.generate_rr_series(model, 500, rng)
    mean_rr = model.mean_rr_s
    assert np.all(series >= 0.85 * mean_rr - 1e-12)
    assert np.all(series <= 1.15 * mean_rr + 1e-12)


def test_rsa_produces_respiratory_modulation(rng):
    """With only RSA on, the RR series oscillates at the breathing
    rate."""
    model = rr.RRModel(mean_hr_bpm=60.0, rsa_fraction=0.05,
                       mayer_fraction=0.0, jitter_fraction=0.0,
                       respiration_rate_hz=0.25)
    series = rr.generate_rr_series(model, 120, rng)
    spread = series.max() - series.min()
    assert 0.05 < spread / series.mean() <= 0.12


def test_deterministic_given_rng():
    model = rr.RRModel()
    a = rr.generate_rr_series(model, 50, np.random.default_rng(9))
    b = rr.generate_rr_series(model, 50, np.random.default_rng(9))
    assert np.array_equal(a, b)


@settings(max_examples=30)
@given(hr=st.floats(min_value=40.0, max_value=180.0),
       n=st.integers(min_value=1, max_value=100))
def test_series_always_positive(hr, n):
    model = rr.RRModel(mean_hr_bpm=hr)
    series = rr.generate_rr_series(model, n, np.random.default_rng(0))
    assert series.shape == (n,)
    assert np.all(series > 0)


def test_beat_times_cumulative():
    times = rr.rr_to_beat_times(np.array([1.0, 0.9, 1.1]), first_beat_s=0.5)
    assert np.allclose(times, [0.5, 1.5, 2.4])


def test_beat_times_strictly_increasing(rng):
    model = rr.RRModel()
    series = rr.generate_rr_series(model, 100, rng)
    times = rr.rr_to_beat_times(series)
    assert np.all(np.diff(times) > 0)


def test_invalid_model_rejected():
    with pytest.raises(ConfigurationError):
        rr.RRModel(mean_hr_bpm=20.0)
    with pytest.raises(ConfigurationError):
        rr.RRModel(rsa_fraction=0.5)
    with pytest.raises(ConfigurationError):
        rr.RRModel(respiration_rate_hz=0.0)


def test_invalid_series_inputs_rejected(rng):
    model = rr.RRModel()
    with pytest.raises(ConfigurationError):
        rr.generate_rr_series(model, 0, rng)
    with pytest.raises(ConfigurationError):
        rr.rr_to_beat_times(np.array([1.0, -0.5]))
    with pytest.raises(ConfigurationError):
        rr.rr_to_beat_times(np.array([]))
    with pytest.raises(ConfigurationError):
        rr.rr_to_beat_times(np.array([1.0]), first_beat_s=-1.0)
