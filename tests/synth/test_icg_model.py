"""Synthetic ICG: landmark exactness and integral properties."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro._compat import trapezoid
from repro.synth import icg_model
from repro.errors import ConfigurationError

FS = 250.0


def _one_beat(pep=0.10, lvet=0.30, amp=1.2, **kwargs):
    beat_times = np.array([1.0])
    icg, lm = icg_model.synthesize_icg(beat_times, pep, lvet, amp, 3.0,
                                       FS, **kwargs)
    return icg, lm


def test_landmark_times_by_construction():
    icg, lm = _one_beat(pep=0.10, lvet=0.30)
    assert lm["b_times_s"][0] == pytest.approx(1.10)
    assert lm["x_times_s"][0] == pytest.approx(1.40)
    shape = icg_model.IcgBeatShape()
    assert lm["c_times_s"][0] == pytest.approx(
        1.10 + shape.c_time_fraction * 0.30)


def test_c_is_beat_maximum():
    icg, lm = _one_beat()
    c_index = int(round(lm["c_times_s"][0] * FS))
    window = icg[int(1.0 * FS): int(2.0 * FS)]
    assert icg[c_index] == pytest.approx(window.max(), rel=1e-6)
    assert icg[c_index] == pytest.approx(1.2, rel=1e-3)


def test_x_is_deepest_minimum_right_of_c():
    icg, lm = _one_beat()
    c_index = int(round(lm["c_times_s"][0] * FS))
    x_index = int(round(lm["x_times_s"][0] * FS))
    right = icg[c_index: int(2.2 * FS)]
    assert icg[x_index] == pytest.approx(right.min(), rel=1e-3)


def test_x_amplitude_fraction():
    shape = icg_model.IcgBeatShape()
    icg, lm = _one_beat(amp=1.0)
    x_index = int(round(lm["x_times_s"][0] * FS))
    assert icg[x_index] == pytest.approx(-shape.x_amplitude_fraction,
                                         abs=0.02)


def test_flat_before_a_wave():
    icg, lm = _one_beat()
    quiet = icg[: int(0.7 * FS)]
    assert np.abs(quiet).max() < 1e-6


def test_zero_slope_at_b_onset():
    icg, lm = _one_beat()
    b_index = int(round(lm["b_times_s"][0] * FS))
    local_slope = (icg[b_index + 1] - icg[b_index - 1]) * FS / 2.0
    # The A-wave tail contributes a tiny slope; the C upstroke slope is
    # two orders of magnitude larger.
    upstroke = np.max(np.diff(icg) * FS)
    assert abs(local_slope) < 0.05 * upstroke


def test_beat_integrates_to_zero_with_correction():
    icg, lm = _one_beat(zero_mean_per_beat=True)
    area = trapezoid(icg, dx=1.0 / FS)
    assert abs(area) < 5e-3


def test_beat_integral_nonzero_without_correction():
    icg, _ = _one_beat(zero_mean_per_beat=False)
    area = trapezoid(icg, dx=1.0 / FS)
    assert abs(area) > 1e-2


def test_correction_plateau_shallower_than_x_trough():
    """The diastolic recovery must never rival X0 (regression test for
    the detection bug it once caused)."""
    icg, lm = _one_beat()
    x_index = int(round(lm["x_times_s"][0] * FS))
    after = icg[x_index + int(0.12 * FS):]
    assert after.min() > icg[x_index] * 0.6


def test_per_beat_parameter_arrays():
    beat_times = np.array([0.8, 1.8])
    icg, lm = icg_model.synthesize_icg(
        beat_times, np.array([0.09, 0.12]), np.array([0.28, 0.32]),
        np.array([1.0, 1.4]), 3.2, FS)
    assert lm["b_times_s"][0] == pytest.approx(0.89)
    assert lm["b_times_s"][1] == pytest.approx(1.92)
    assert lm["x_times_s"][1] == pytest.approx(1.92 + 0.32)


def test_integrate_to_impedance_round_trip():
    """d/dt of the integrated impedance recovers -ICG."""
    icg, _ = _one_beat()
    z = icg_model.integrate_to_impedance(icg, FS, z0_ohm=25.0)
    recovered = -np.gradient(z, 1.0 / FS)
    inner = slice(5, -5)
    assert np.allclose(recovered[inner], icg[inner], atol=0.02)


def test_integrate_starts_at_z0():
    icg, _ = _one_beat()
    z = icg_model.integrate_to_impedance(icg, FS, z0_ohm=430.0)
    assert z[0] == pytest.approx(430.0)


def test_impedance_returns_to_baseline_each_beat():
    beat_times = np.arange(0.8, 9.0, 0.9)
    icg, _ = icg_model.synthesize_icg(beat_times, 0.10, 0.30, 1.2, 10.0, FS)
    z = icg_model.integrate_to_impedance(icg, FS, z0_ohm=25.0)
    # Sample Z just before each beat: drift across beats must be tiny.
    probes = [z[int((bt - 0.15) * FS)] for bt in beat_times]
    assert np.max(np.abs(np.diff(probes))) < 0.02


@settings(max_examples=25)
@given(pep=st.floats(0.06, 0.18), lvet=st.floats(0.2, 0.4),
       amp=st.floats(0.3, 3.0))
def test_landmarks_consistent_for_any_physiology(pep, lvet, amp):
    beat_times = np.array([1.0])
    icg, lm = icg_model.synthesize_icg(beat_times, pep, lvet, amp, 3.0, FS)
    b, c, x = (lm["b_times_s"][0], lm["c_times_s"][0], lm["x_times_s"][0])
    assert b < c < x
    assert x - b == pytest.approx(lvet, abs=1e-9)
    assert b - 1.0 == pytest.approx(pep, abs=1e-9)
    c_index = int(round(c * FS))
    assert icg[c_index] > 0.9 * amp


def test_shape_validation():
    with pytest.raises(ConfigurationError):
        icg_model.IcgBeatShape(c_time_fraction=0.8, zero_time_fraction=0.6)
    with pytest.raises(ConfigurationError):
        icg_model.IcgBeatShape(x_amplitude_fraction=1.5)
    with pytest.raises(ConfigurationError):
        icg_model.IcgBeatShape(o_delay_s=-0.1)


def test_input_validation():
    with pytest.raises(ConfigurationError):
        icg_model.synthesize_icg(np.array([]), 0.1, 0.3, 1.0, 3.0, FS)
    with pytest.raises(ConfigurationError):
        icg_model.synthesize_icg(np.array([1.0]), -0.1, 0.3, 1.0, 3.0, FS)
    with pytest.raises(ConfigurationError):
        icg_model.synthesize_icg(np.array([1.0]), np.array([0.1, 0.2]),
                                 0.3, 1.0, 3.0, FS)
    with pytest.raises(ConfigurationError):
        icg_model.integrate_to_impedance(np.array([]), FS, 25.0)
