"""ICG characteristic-point detection — the paper's core algorithm."""

import numpy as np
import pytest

from repro.ecg import detect_r_peaks, preprocess_ecg
from repro.errors import ConfigurationError, DetectionError, SignalError
from repro.icg import points as points_mod
from repro.icg.preprocessing import icg_from_impedance
from repro.synth import SynthesisConfig, default_cohort, synthesize_recording

FS = 250.0


@pytest.fixture(scope="module")
def detected(clean_recording_module):
    rec = clean_recording_module
    icg = icg_from_impedance(rec.channel("z"), rec.fs)
    r_peaks = detect_r_peaks(preprocess_ecg(rec.channel("ecg"), rec.fs),
                             rec.fs)
    pts, failures = points_mod.detect_all_points(icg, rec.fs, r_peaks)
    return rec, icg, pts, failures


@pytest.fixture(scope="module")
def clean_recording_module():
    subject = default_cohort()[1]
    config = SynthesisConfig(duration_s=16.0, include_motion=False,
                             include_powerline=False, include_noise=False)
    return synthesize_recording(subject, "thoracic", 1, config)


def _nearest_error_ms(detected_times, truth_times):
    return np.array([
        (d - truth_times[np.argmin(np.abs(truth_times - d))]) * 1000.0
        for d in detected_times])


def test_all_beats_detected(detected):
    rec, _, pts, failures = detected
    assert len(failures) == 0
    assert len(pts) >= rec.annotation("r_times_s").size - 2


def test_c_point_accuracy(detected):
    rec, _, pts, _ = detected
    errors = _nearest_error_ms(np.array([p.c_index for p in pts]) / FS,
                               rec.annotation("c_times_s"))
    assert np.abs(errors.mean()) < 6.0
    assert errors.std() < 8.0


def test_b_point_accuracy(detected):
    """B within the tolerance band reported for B-detectors in the
    literature (~15 ms bias, ~20 ms dispersion)."""
    rec, _, pts, _ = detected
    errors = _nearest_error_ms(np.array([p.b_index for p in pts]) / FS,
                               rec.annotation("b_times_s"))
    assert np.abs(errors.mean()) < 16.0
    assert errors.std() < 22.0


def test_x0_initial_estimate_accuracy(detected):
    rec, _, pts, _ = detected
    errors = _nearest_error_ms(np.array([p.x0_index for p in pts]) / FS,
                               rec.annotation("x_times_s"))
    assert np.abs(errors.mean()) < 16.0


def test_x_refinement_is_earlier_than_x0(detected):
    """The paper's X (3rd-derivative minimum) precedes the trough X0."""
    _, _, pts, _ = detected
    assert all(p.x_index <= p.x0_index for p in pts)


def test_point_ordering_invariant(detected):
    _, _, pts, _ = detected
    for p in pts:
        assert p.r_index < p.b_index < p.c_index < p.x_index


def test_intervals_physiological(detected):
    rec, _, pts, _ = detected
    peps = np.array([p.pep_s(FS) for p in pts])
    lvets = np.array([p.lvet_s(FS) for p in pts])
    assert np.all((peps > 0.04) & (peps < 0.2))
    assert np.all((lvets > 0.15) & (lvets < 0.45))
    # Mean close to ground truth (definitional offsets documented).
    assert abs(peps.mean() - rec.meta["true_pep_s"]) < 0.03
    assert abs(lvets.mean() - rec.meta["true_lvet_s"]) < 0.06


def test_device_recording_still_analysable():
    subject = default_cohort()[1]
    rec = synthesize_recording(subject, "device", 1,
                               SynthesisConfig(duration_s=16.0))
    icg = icg_from_impedance(rec.channel("z"), rec.fs)
    r_peaks = detect_r_peaks(preprocess_ecg(rec.channel("ecg"), rec.fs),
                             rec.fs)
    pts, failures = points_mod.detect_all_points(icg, rec.fs, r_peaks)
    assert len(pts) >= 0.7 * (r_peaks.size - 1)


def test_rt_window_strategy_matches_global_on_clean(detected):
    """With a healthy T wave the Carvalho RT-window X0 lands near the
    paper's global X0."""
    rec, icg, pts_global, _ = detected
    r_peaks = np.array([p.r_index for p in pts_global]
                       + [pts_global[-1].x0_index + 100])
    t_peaks = rec.annotation("t_peak_times_s")
    rt = []
    for p in pts_global:
        r_time = p.r_index / FS
        nearest_t = t_peaks[np.argmin(np.abs(t_peaks - r_time - 0.3))]
        rt.append(max(0.15, nearest_t - r_time))
    config = points_mod.PointConfig(x_strategy="rt_window")
    agree = 0
    for k, p in enumerate(pts_global):
        try:
            alt = points_mod.detect_beat_points(
                icg, FS, p.r_index,
                p.r_index + int((r_peaks[k + 1] - r_peaks[k])),
                config, rt_interval_s=rt[k])
        except DetectionError:
            continue
        if abs(alt.x0_index - p.x0_index) <= int(0.04 * FS):
            agree += 1
    assert agree >= 0.6 * len(pts_global)


def test_rt_window_requires_rt_interval(detected):
    _, icg, pts, _ = detected
    config = points_mod.PointConfig(x_strategy="rt_window")
    with pytest.raises(DetectionError):
        points_mod.detect_beat_points(icg, FS, pts[0].r_index,
                                      pts[1].r_index, config)


def test_detect_beat_rejects_bad_window(detected):
    _, icg, _, _ = detected
    with pytest.raises(DetectionError):
        points_mod.detect_beat_points(icg, FS, 100, 120)  # < 250 ms
    with pytest.raises(DetectionError):
        points_mod.detect_beat_points(icg, FS, 500, 400)


def test_detect_beat_on_flat_signal_fails():
    flat = np.zeros(1000)
    with pytest.raises(DetectionError):
        points_mod.detect_beat_points(flat, FS, 0, 500)


def test_detect_beat_on_negative_signal_fails():
    negative = -np.abs(np.sin(np.arange(1000) * 0.05)) - 0.1
    with pytest.raises(DetectionError):
        points_mod.detect_beat_points(negative, FS, 0, 500)


def test_detect_all_collects_failures(detected):
    _, icg, _, _ = detected
    # Garbage R peaks: windows of 60 samples are too short.
    r = np.arange(0, 600, 60)
    pts, failures = points_mod.detect_all_points(icg, FS, r)
    assert len(pts) == 0
    assert len(failures) == r.size - 1


def test_detect_all_needs_two_peaks(detected):
    _, icg, _, _ = detected
    with pytest.raises(SignalError):
        points_mod.detect_all_points(icg, FS, np.array([100]))


def test_rt_intervals_length_validated(detected):
    _, icg, _, _ = detected
    with pytest.raises(ConfigurationError):
        points_mod.detect_all_points(icg, FS, np.array([0, 300, 600]),
                                     rt_intervals_s=np.array([0.3]))


def test_config_validation():
    with pytest.raises(ConfigurationError):
        points_mod.PointConfig(line_fit_low=0.9, line_fit_high=0.5)
    with pytest.raises(ConfigurationError):
        points_mod.PointConfig(x_strategy="nonsense")
    with pytest.raises(ConfigurationError):
        points_mod.PointConfig(rt_window_factor=0.9)


def test_beat_points_interval_helpers():
    p = points_mod.BeatPoints(r_index=1000, c_index=1060, b_index=1025,
                              x_index=1100, b0_index=1030.5, x0_index=1105,
                              pattern_found=False)
    assert p.pep_s(FS) == pytest.approx(0.1)
    assert p.lvet_s(FS) == pytest.approx(0.3)
