"""Batched point-detection/hemodynamics vs the per-beat oracle.

The contract under test is *bit-identity*: the beat-batched kernels of
``repro.icg.batch`` and the batched hemodynamics of
``repro.icg.hemodynamics`` must reproduce the original per-beat loops
exactly — same ``BeatPoints`` (including the fractional ``b0_index``),
same failure tuples in the same order with the same messages, same
hemodynamic floats — across synth subjects, sampling rates, configs
and degenerate inputs (0 analysable beats, 1 beat, truncated last
window, non-monotonic R indices).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import BeatToBeatPipeline, FilterDesignCache, PipelineConfig
from repro.core.context import BeatContext
from repro.core.stages import default_stage_graph
from repro.icg.batch import BeatLandmarks, detect_all_points_batched
from repro.icg.hemodynamics import (
    HemodynamicsEstimator,
    systolic_intervals,
    systolic_intervals_from_landmarks,
)
from repro.icg.points import (
    PointConfig,
    _detect_all_points_ref,
    active_point_backend,
    detect_all_points,
    set_point_backend,
    use_point_backend,
)
from repro.synth import SynthesisConfig, default_cohort, synthesize_recording

FS = 250.0

_GRAPH = default_stage_graph().upto("icg_condition")
_CACHE = FilterDesignCache()


def conditioned(subject_index=0, setup="device", fs=FS, duration_s=10.0):
    """(icg, r_peaks) of one synthesized, conditioned recording."""
    subject = default_cohort()[subject_index]
    recording = synthesize_recording(
        subject, setup, 1, SynthesisConfig(duration_s=duration_s, fs=fs))
    ctx = BeatContext.from_signals(recording.channel("ecg"),
                                   recording.channel("z"), fs,
                                   cache=_CACHE)
    ctx = _GRAPH.run(ctx)
    return ctx.icg, ctx.r_peak_indices


def assert_identical(icg, fs, r_indices, config=None, rt=None):
    ref_points, ref_failures = _detect_all_points_ref(
        np.asarray(icg, dtype=float), fs,
        np.asarray(r_indices, dtype=int), config, rt)
    points, failures, landmarks = detect_all_points_batched(
        icg, fs, r_indices, config, rt)
    assert points == ref_points          # dataclass equality: all fields
    assert failures == ref_failures      # same beats, same messages
    assert landmarks.to_points() == points
    return points, failures, landmarks


# --- synth-subject sweep --------------------------------------------------

@pytest.mark.parametrize("subject_index", range(5))
@pytest.mark.parametrize("setup", ["device", "thoracic"])
def test_batched_matches_reference_across_cohort(subject_index, setup):
    icg, r_peaks = conditioned(subject_index, setup)
    assert_identical(icg, FS, r_peaks)


@pytest.mark.parametrize("fs", [125.0, 250.0, 500.0, 1000.0])
def test_batched_matches_reference_across_rates(fs):
    icg, r_peaks = conditioned(1, fs=fs)
    points, failures, _ = assert_identical(icg, fs, r_peaks)
    assert points or failures            # the sweep exercised something


@pytest.mark.parametrize("config", [
    PointConfig(),
    PointConfig(line_fit_low=0.2, line_fit_high=0.95),
    PointConfig(sign_tolerance_fraction=0.0),
    PointConfig(b_search_window_s=0.02),
    PointConfig(x_search_window_s=0.01),
    PointConfig(min_c_delay_s=0.12),
])
def test_batched_matches_reference_across_configs(config):
    icg, r_peaks = conditioned(2)
    assert_identical(icg, FS, r_peaks, config)


def test_batched_matches_reference_rt_window_strategy():
    icg, r_peaks = conditioned(0)
    config = PointConfig(x_strategy="rt_window")
    rt = np.full(r_peaks.size - 1, 0.30)
    assert_identical(icg, FS, r_peaks, config, rt)
    # Missing RT intervals: every surviving beat fails with the same
    # message the reference produces.
    assert_identical(icg, FS, r_peaks, config, None)


# --- degenerate geometries ------------------------------------------------

def test_single_beat_window():
    icg, r_peaks = conditioned(0)
    pair = np.array([int(r_peaks[0]), int(r_peaks[1])])
    points, failures, landmarks = assert_identical(icg, FS, pair)
    assert len(points) + len(failures) == 1
    assert landmarks.n_beats == len(points)


def test_zero_analysable_beats_all_failures():
    """A flat-negative signal fails every beat — identically."""
    icg = np.full(2000, -1.0)
    r_peaks = np.array([0, 400, 800, 1200])
    points, failures, landmarks = assert_identical(icg, FS, r_peaks)
    assert points == []
    assert len(failures) == 3
    assert landmarks.n_beats == 0


def test_truncated_last_window_fails_like_reference():
    """An R peak past the end of the signal (device disconnected
    mid-beat) must produce the reference's exact failure message."""
    icg, r_peaks = conditioned(0)
    truncated = np.append(r_peaks, icg.size + 500)
    points, failures, _ = assert_identical(icg, FS, truncated)
    assert failures[-1][0] == truncated.size - 2
    assert "invalid beat window" in failures[-1][1]


def test_short_beat_windows_fail_like_reference():
    icg, r_peaks = conditioned(0)
    crowded = np.sort(np.concatenate(
        [r_peaks, r_peaks[:-1] + 10]))       # 40 ms beats interleaved
    assert_identical(icg, FS, crowded)


def test_non_monotonic_r_indices_fall_back_to_reference():
    icg, r_peaks = conditioned(0)
    jumbled = np.array([int(r_peaks[0]), int(r_peaks[2]),
                        int(r_peaks[1]), int(r_peaks[3])])
    assert_identical(icg, FS, jumbled)


# --- hypothesis: random signals and windows -------------------------------

@st.composite
def signal_and_peaks(draw):
    n = draw(st.integers(min_value=300, max_value=2500))
    seed = draw(st.integers(min_value=0, max_value=2**32 - 1))
    rng = np.random.default_rng(seed)
    # Smooth-ish random signal with beat-scale structure.
    base = rng.standard_normal(n)
    kernel = np.hanning(25)
    icg = np.convolve(base, kernel / kernel.sum(), mode="same")
    icg += 0.5 * np.sin(np.arange(n) * 2 * np.pi / 180.0)
    n_peaks = draw(st.integers(min_value=2, max_value=8))
    peaks = draw(st.lists(st.integers(min_value=0, max_value=n + 50),
                          min_size=n_peaks, max_size=n_peaks))
    return icg, np.sort(np.asarray(peaks, dtype=int))


@settings(max_examples=60, deadline=None)
@given(signal_and_peaks())
def test_batched_matches_reference_on_random_inputs(case):
    icg, r_indices = case
    if np.any(np.diff(r_indices) == 0):
        r_indices = r_indices + np.arange(r_indices.size)  # de-dup, sorted
    try:
        ref = _detect_all_points_ref(np.asarray(icg, float), FS,
                                     np.asarray(r_indices, int), None)
    except Exception as exc:                  # noqa: BLE001
        with pytest.raises(type(exc)):
            detect_all_points_batched(icg, FS, r_indices, None)
        return
    points, failures, _ = detect_all_points_batched(icg, FS, r_indices,
                                                    None)
    assert (points, failures) == ref


# --- dispatcher / backend toggle -----------------------------------------

def test_detect_all_points_dispatches_by_backend():
    icg, r_peaks = conditioned(0)
    assert active_point_backend() == "batched"
    batched = detect_all_points(icg, FS, r_peaks)
    with use_point_backend("reference"):
        assert active_point_backend() == "reference"
        reference = detect_all_points(icg, FS, r_peaks)
    assert active_point_backend() == "batched"
    assert batched == reference


def test_set_point_backend_rejects_unknown():
    from repro.errors import ConfigurationError

    with pytest.raises(ConfigurationError):
        set_point_backend("simd")


# --- batched hemodynamics -------------------------------------------------

def _landmarks_and_points():
    icg, r_peaks = conditioned(0)
    points, _, landmarks = detect_all_points_batched(icg, FS, r_peaks)
    return icg, points, landmarks


def test_systolic_intervals_from_landmarks_bit_identical():
    icg, points, landmarks = _landmarks_and_points()
    ref = systolic_intervals(points, FS)
    got = systolic_intervals_from_landmarks(landmarks, FS)
    assert np.array_equal(ref.pep_s, got.pep_s)
    assert np.array_equal(ref.lvet_s, got.lvet_s)


def test_estimate_series_bit_identical_to_estimate_all():
    icg, points, landmarks = _landmarks_and_points()
    estimator = HemodynamicsEstimator(FS, 30.0, 178.0,
                                      z0_calibration=0.06,
                                      dzdt_calibration=3.3)
    ref = estimator.estimate_all(points, icg)
    assert estimator.estimate_landmarks(landmarks, icg) == ref
    series = estimator.estimate_series(landmarks, icg)
    assert series.n_beats == len(ref)
    assert series.to_beats() == ref


def test_estimate_series_raises_like_per_beat_loop():
    icg, points, landmarks = _landmarks_and_points()
    estimator = HemodynamicsEstimator(FS, 30.0, 178.0)
    # Negate the ICG at the first beat's C index: dzdt <= 0 there.
    broken = icg.copy()
    broken[points[0].c_index] = -1.0
    from repro.errors import SignalError

    with pytest.raises(SignalError):
        estimator.estimate_all(points, broken)
    with pytest.raises(SignalError):
        estimator.estimate_series(landmarks, broken)


def test_full_pipeline_identical_across_backends():
    """End to end: the production (batched) chain equals the reference
    chain bit for bit, including per-beat hemodynamics."""
    subject = default_cohort()[0]
    recording = synthesize_recording(
        subject, "device", 1, SynthesisConfig(duration_s=12.0, fs=FS))
    config = PipelineConfig(height_cm=180.0)
    pipe = BeatToBeatPipeline(FS, config, cache=FilterDesignCache())
    batched = pipe.process_recording(recording)
    with use_point_backend("reference"):
        reference = pipe.process_recording(recording)
    assert batched.points == reference.points
    assert batched.failures == reference.failures
    assert np.array_equal(batched.pep_s, reference.pep_s)
    assert np.array_equal(batched.lvet_s, reference.lvet_s)
    assert batched.beat_hemodynamics == reference.beat_hemodynamics
    assert batched.hr_bpm == reference.hr_bpm
    assert batched.z0_ohm == reference.z0_ohm


def test_landmarks_roundtrip_points():
    _, points, landmarks = _landmarks_and_points()
    assert BeatLandmarks.from_points(points).to_points() == points


def test_estimate_series_empty_icg_raises_like_per_beat_loop():
    """Exception parity on a degenerate input: an empty ICG must raise
    the per-beat loop's SignalError, not an IndexError."""
    import numpy as np
    import pytest

    from repro.errors import SignalError

    _, points, landmarks = _landmarks_and_points()
    estimator = HemodynamicsEstimator(FS, 30.0, 178.0)
    empty = np.empty(0)
    with pytest.raises(SignalError):
        estimator.estimate_all(points, empty)
    with pytest.raises(SignalError):
        estimator.estimate_series(landmarks, empty)


def test_estimate_series_validates_electrode_distance():
    """A non-positive electrode distance raises the same
    ConfigurationError the per-beat kubicek call produces."""
    import pytest

    from repro.errors import ConfigurationError

    icg, points, landmarks = _landmarks_and_points()
    estimator = HemodynamicsEstimator(FS, 30.0, 178.0,
                                      electrode_distance_cm=-2.0)
    with pytest.raises(ConfigurationError):
        estimator.estimate_all(points, icg)
    with pytest.raises(ConfigurationError):
        estimator.estimate_series(landmarks, icg)
