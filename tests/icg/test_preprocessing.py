"""ICG conditioning chain."""

import numpy as np
import pytest

from repro.dsp import spectral
from repro.icg import preprocessing
from repro.errors import ConfigurationError

FS = 250.0


def test_lowpass_removes_high_frequency(rng):
    t = np.arange(int(20 * FS)) / FS
    signal = np.sin(2 * np.pi * 3.0 * t)
    noisy = signal + 0.5 * np.sin(2 * np.pi * 45.0 * t)
    filtered = preprocessing.lowpass(noisy, FS)
    inner = slice(int(FS), int(-FS))
    assert np.allclose(filtered[inner], signal[inner], atol=0.05)


def test_lowpass_zero_phase():
    t = np.arange(int(20 * FS)) / FS
    x = np.sin(2 * np.pi * 4.0 * t)
    y = preprocessing.lowpass(x, FS)
    centre = slice(1000, 4000)
    lag = np.argmax(np.correlate(y[centre], x[centre], "full")) - 2999
    assert lag == 0


def test_highpass_removes_respiration():
    t = np.arange(int(30 * FS)) / FS
    cardiac = np.sin(2 * np.pi * 3.0 * t)
    respiration = 2.0 * np.sin(2 * np.pi * 0.25 * t)
    conditioned = preprocessing.condition_icg(cardiac + respiration, FS)
    freqs, psd = spectral.welch(conditioned, FS, nperseg=2048)
    resp_power = spectral.band_power(freqs, psd, 0.1, 0.45)
    cardiac_power = spectral.band_power(freqs, psd, 2.5, 3.5)
    assert cardiac_power > 50 * resp_power


def test_highpass_disabled_via_none():
    config = preprocessing.IcgFilterConfig(highpass_hz=None)
    t = np.arange(int(10 * FS)) / FS
    x = np.sin(2 * np.pi * 0.25 * t)
    passed = preprocessing.highpass(x, FS, config)
    assert np.allclose(passed, x)


def test_icg_from_impedance_recovers_derivative(clean_recording):
    """-dZ/dt of the synthetic Z must match the annotated landmarks:
    the max of the conditioned ICG sits at the C time."""
    icg = preprocessing.icg_from_impedance(clean_recording.channel("z"),
                                           clean_recording.fs)
    c_times = clean_recording.annotation("c_times_s")
    for c in c_times[1:4]:
        idx = int(round(c * FS))
        window = icg[idx - 50: idx + 50]
        assert np.argmax(window) == pytest.approx(50, abs=3)


def test_icg_amplitude_preserved(clean_recording):
    """Conditioning preserves the C amplitude within a few percent."""
    icg = preprocessing.icg_from_impedance(clean_recording.channel("z"),
                                           clean_recording.fs)
    coupling = clean_recording.meta["cardiac_coupling"]
    c_indices = (clean_recording.annotation("c_times_s") * FS).astype(int)
    c_values = icg[c_indices[1:-1]]
    # Subject dzdt_max with beat jitter; compare against the mean level.
    expected = clean_recording.meta["true_z0_ohm"] * 0 + coupling
    assert np.median(c_values) == pytest.approx(
        1.15 * coupling, rel=0.15)  # subject 2: dzdt_max = 1.15


def test_cutoff_above_nyquist_rejected():
    with pytest.raises(ConfigurationError):
        preprocessing.lowpass(np.ones(100), 30.0)


def test_config_validation():
    with pytest.raises(ConfigurationError):
        preprocessing.IcgFilterConfig(cutoff_hz=-5.0)
    with pytest.raises(ConfigurationError):
        preprocessing.IcgFilterConfig(highpass_hz=25.0)  # above low-pass
    with pytest.raises(ConfigurationError):
        preprocessing.IcgFilterConfig(order=0)
