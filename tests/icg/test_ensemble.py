"""Beat ensemble averaging."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, SignalError
from repro.icg import ensemble

FS = 250.0


def _beat_train(n_beats=10, rr_samples=200, rng=None):
    """A periodic signal with one Gaussian bump per beat."""
    rng = rng or np.random.default_rng(0)
    n = n_beats * rr_samples + 100
    signal = np.zeros(n)
    r_indices = np.arange(50, n - rr_samples, rr_samples)
    t = np.arange(n)
    for r in r_indices:
        signal += np.exp(-((t - r - 60) ** 2) / (2 * 15.0**2))
    return signal, r_indices


def test_extract_beats_shape():
    signal, r_indices = _beat_train()
    beats = ensemble.extract_beats(signal, FS, r_indices, 100)
    assert beats.shape == (r_indices.size - 1, 100)


def test_ensemble_of_identical_beats_is_the_beat():
    signal, r_indices = _beat_train()
    result = ensemble.ensemble_average(signal, FS, r_indices)
    assert result.n_used == result.n_total
    single = ensemble.extract_beats(signal, FS, r_indices[:2], 100)[0]
    assert np.allclose(result.waveform, single, atol=1e-6)


def test_ensemble_suppresses_noise(rng):
    signal, r_indices = _beat_train()
    noisy = signal + 0.3 * rng.standard_normal(signal.size)
    clean_result = ensemble.ensemble_average(signal, FS, r_indices)
    noisy_result = ensemble.ensemble_average(noisy, FS, r_indices)
    residual = noisy_result.waveform - clean_result.waveform
    assert np.std(residual) < 0.15  # ~0.3 / sqrt(9)


def test_outlier_beats_rejected(rng):
    signal, r_indices = _beat_train(n_beats=12)
    corrupted = signal.copy()
    # Replace two beats with pure noise.
    for r in r_indices[[3, 7]]:
        corrupted[r: r + 200] = rng.standard_normal(200) * 2.0
    result = ensemble.ensemble_average(corrupted, FS, r_indices)
    assert result.n_used <= result.n_total - 2
    assert result.rejection_fraction > 0.0


def test_fallback_when_all_beats_rejected(rng):
    """Pathological threshold: falls back to using all beats."""
    signal, r_indices = _beat_train()
    config = ensemble.EnsembleConfig(outlier_correlation=0.999999)
    noisy = signal + 0.4 * rng.standard_normal(signal.size)
    result = ensemble.ensemble_average(noisy, FS, r_indices, config)
    assert result.n_used == result.n_total


def test_phase_normalisation_handles_variable_rr():
    rng = np.random.default_rng(2)
    n = 3000
    signal = np.zeros(n)
    r_indices = [100]
    while r_indices[-1] < n - 350:
        r_indices.append(r_indices[-1] + rng.integers(180, 260))
    r_indices = np.asarray(r_indices)
    t = np.arange(n)
    for lo, hi in zip(r_indices[:-1], r_indices[1:]):
        centre = lo + 0.3 * (hi - lo)   # bump at fixed *phase*
        signal += np.exp(-((t - centre) ** 2) / (2 * 10.0**2))
    result = ensemble.ensemble_average(signal, FS, r_indices)
    assert np.argmax(result.waveform) == pytest.approx(30, abs=3)


def test_min_beats_enforced():
    signal, r_indices = _beat_train(n_beats=3)
    with pytest.raises(SignalError):
        ensemble.ensemble_average(signal, FS, r_indices[:3])


def test_extract_beats_needs_two_peaks():
    with pytest.raises(SignalError):
        ensemble.extract_beats(np.ones(100), FS, np.array([10]))


def test_extract_beats_skips_out_of_range():
    signal = np.ones(500)
    beats = ensemble.extract_beats(signal, FS,
                                   np.array([100, 300, 490, 700]), 50)
    assert beats.shape[0] == 2  # the window past the end is dropped


def test_config_validation():
    with pytest.raises(ConfigurationError):
        ensemble.EnsembleConfig(n_phase_samples=5)
    with pytest.raises(ConfigurationError):
        ensemble.EnsembleConfig(min_beats=1)
    with pytest.raises(ConfigurationError):
        ensemble.EnsembleConfig(outlier_correlation=1.0)


def test_ensemble_on_recording(device_recording):
    from repro.icg.preprocessing import icg_from_impedance
    icg = icg_from_impedance(device_recording.channel("z"),
                             device_recording.fs)
    r_indices = (device_recording.annotation("r_times_s")
                 * device_recording.fs).astype(int)
    result = ensemble.ensemble_average(icg, device_recording.fs, r_indices)
    assert result.waveform.size == 100
    # The ensemble has a positive C wave in early systole.
    assert result.waveform[:50].max() > 0
