"""Hemodynamic parameter estimation (LVET, PEP, SV, CO, TFC)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, SignalError
from repro.icg import hemodynamics as hd
from repro.icg.points import BeatPoints

FS = 250.0


def _points(pep_s=0.1, lvet_s=0.3, r=1000):
    b = r + int(pep_s * FS)
    x = b + int(lvet_s * FS)
    return BeatPoints(r_index=r, c_index=b + 25, b_index=b, x_index=x,
                      b0_index=b + 2.0, x0_index=x + 3,
                      pattern_found=True)


def test_systolic_intervals_means():
    pts = [_points(0.10, 0.30, 1000), _points(0.12, 0.32, 1250)]
    intervals = hd.systolic_intervals(pts, FS)
    assert intervals.mean_pep_s == pytest.approx(0.11, abs=1e-9)
    assert intervals.mean_lvet_s == pytest.approx(0.31, abs=1e-9)
    assert intervals.n_beats == 2
    assert intervals.pep_over_lvet == pytest.approx(0.11 / 0.31)


def test_systolic_intervals_gating():
    good = _points(0.10, 0.30)
    bad = _points(0.10, 0.30)
    # Forge an implausible beat: LVET of 0.8 s.
    bad = BeatPoints(bad.r_index, bad.c_index, bad.b_index,
                     bad.b_index + int(0.8 * FS), bad.b0_index,
                     bad.x0_index, bad.pattern_found)
    intervals = hd.systolic_intervals([good, bad], FS)
    assert intervals.n_beats == 1


def test_systolic_intervals_all_invalid_rejected():
    bad = BeatPoints(1000, 1025, 1010, 1010 + int(0.9 * FS), 1012.0, 1300,
                     False)
    with pytest.raises(SignalError):
        hd.systolic_intervals([bad], FS)


def test_kubicek_formula():
    sv = hd.kubicek_stroke_volume_ml(
        z0_ohm=25.0, lvet_s=0.3, dzdt_max_ohm_s=1.2,
        electrode_distance_cm=30.0, rho_ohm_cm=135.0)
    expected = 135.0 * (30.0 / 25.0) ** 2 * 0.3 * 1.2
    assert sv == pytest.approx(expected)
    assert 40.0 < sv < 120.0  # physiological


def test_sramek_bernstein_formula():
    sv = hd.sramek_bernstein_stroke_volume_ml(
        z0_ohm=25.0, lvet_s=0.3, dzdt_max_ohm_s=1.2, height_cm=175.0)
    expected = (0.17 * 175.0) ** 3 / 4.25 * 0.3 * 1.2 / 25.0
    assert sv == pytest.approx(expected)
    assert 40.0 < sv < 120.0


def test_sv_increases_with_lvet_and_amplitude():
    base = hd.kubicek_stroke_volume_ml(25.0, 0.30, 1.2, 30.0)
    longer = hd.kubicek_stroke_volume_ml(25.0, 0.35, 1.2, 30.0)
    stronger = hd.kubicek_stroke_volume_ml(25.0, 0.30, 1.5, 30.0)
    assert longer > base
    assert stronger > base


def test_sv_decreases_with_z0():
    low = hd.kubicek_stroke_volume_ml(20.0, 0.3, 1.2, 30.0)
    high = hd.kubicek_stroke_volume_ml(30.0, 0.3, 1.2, 30.0)
    assert low > high


def test_thoracic_fluid_content():
    assert hd.thoracic_fluid_content(25.0) == pytest.approx(40.0)
    # Fluid accumulation (lower Z0) raises TFC — the CHF warning trend.
    assert hd.thoracic_fluid_content(20.0) > hd.thoracic_fluid_content(30.0)


def test_estimator_per_beat():
    icg = np.zeros(2000)
    p = _points(0.10, 0.30)
    icg[p.c_index] = 1.2
    estimator = hd.HemodynamicsEstimator(FS, z0_ohm=25.0, height_cm=175.0)
    beat = estimator.estimate_beat(p, rr_s=0.8, icg=icg)
    assert beat.hr_bpm == pytest.approx(75.0)
    assert beat.pep_s == pytest.approx(0.10, abs=1e-9)
    assert beat.sv_kubicek_ml > 0
    assert beat.co_kubicek_l_min == pytest.approx(
        beat.sv_kubicek_ml * 75.0 / 1000.0)


def test_estimator_estimate_all():
    icg = np.zeros(3000)
    pts = [_points(0.1, 0.3, 500), _points(0.1, 0.3, 700),
           _points(0.1, 0.3, 900)]
    for p in pts:
        icg[p.c_index] = 1.0
    estimator = hd.HemodynamicsEstimator(FS, 25.0, 175.0)
    beats = estimator.estimate_all(pts, icg)
    assert len(beats) == 2
    assert beats[0].hr_bpm == pytest.approx(60.0 / (200 / FS))


def test_z0_calibration_scales_kubicek_inverse_square():
    icg = np.zeros(2000)
    p = _points()
    icg[p.c_index] = 0.4
    base = hd.HemodynamicsEstimator(FS, 430.0, 175.0)
    calibrated = base.with_calibration(0.5, 1.0)
    ratio = (calibrated.estimate_beat(p, 0.8, icg).sv_kubicek_ml
             / base.estimate_beat(p, 0.8, icg).sv_kubicek_ml)
    assert ratio == pytest.approx(4.0)   # (1/0.5)^2


def test_dzdt_calibration_scales_sv_linearly():
    icg = np.zeros(2000)
    p = _points()
    icg[p.c_index] = 0.4
    base = hd.HemodynamicsEstimator(FS, 430.0, 175.0)
    calibrated = base.with_calibration(1.0, 3.0)
    assert (calibrated.estimate_beat(p, 0.8, icg).sv_kubicek_ml
            == pytest.approx(3.0 * base.estimate_beat(p, 0.8,
                                                      icg).sv_kubicek_ml))
    assert (calibrated.estimate_beat(p, 0.8, icg).sv_sramek_ml
            == pytest.approx(3.0 * base.estimate_beat(p, 0.8,
                                                      icg).sv_sramek_ml))


def test_device_pathway_calibration_recovers_thoracic_sv():
    """Mapping measured hand-to-hand (Z0, dZ/dt) onto the thoracic
    scale with the two pathway factors reproduces the thoracic SV."""
    icg_thor = np.zeros(2000)
    p = _points()
    icg_thor[p.c_index] = 1.2
    thoracic = hd.HemodynamicsEstimator(FS, 25.0, 175.0)
    sv_thor = thoracic.estimate_beat(p, 0.8, icg_thor).sv_kubicek_ml

    coupling = 0.32
    icg_dev = np.zeros(2000)
    icg_dev[p.c_index] = 1.2 * coupling
    device = hd.HemodynamicsEstimator(
        FS, 430.0, 175.0, z0_calibration=25.0 / 430.0,
        dzdt_calibration=1.0 / coupling)
    sv_dev = device.estimate_beat(p, 0.8, icg_dev).sv_kubicek_ml
    assert sv_dev == pytest.approx(sv_thor, rel=1e-9)


def test_estimator_rejects_negative_dzdt():
    icg = np.zeros(2000)  # C value is 0 -> invalid
    estimator = hd.HemodynamicsEstimator(FS, 25.0, 175.0)
    with pytest.raises(SignalError):
        estimator.estimate_beat(_points(), 0.8, icg)


def test_formula_validation():
    with pytest.raises(ConfigurationError):
        hd.kubicek_stroke_volume_ml(0.0, 0.3, 1.2, 30.0)
    with pytest.raises(ConfigurationError):
        hd.kubicek_stroke_volume_ml(25.0, 0.3, -1.2, 30.0)
    with pytest.raises(ConfigurationError):
        hd.sramek_bernstein_stroke_volume_ml(25.0, 0.3, 1.2, 0.0)
    with pytest.raises(ConfigurationError):
        hd.sramek_bernstein_stroke_volume_ml(25.0, 0.3, 1.2, 175.0,
                                             delta=-1.0)
    with pytest.raises(ConfigurationError):
        hd.thoracic_fluid_content(0.0)


def test_estimator_validation():
    with pytest.raises(ConfigurationError):
        hd.HemodynamicsEstimator(-1.0, 25.0, 175.0)
    with pytest.raises(ConfigurationError):
        hd.HemodynamicsEstimator(FS, 25.0, 175.0, z0_calibration=0.0)
    with pytest.raises(ConfigurationError):
        hd.HemodynamicsEstimator(FS, 25.0, 175.0, dzdt_calibration=-1.0)
    estimator = hd.HemodynamicsEstimator(FS, 25.0, 175.0)
    with pytest.raises(ConfigurationError):
        estimator.estimate_beat(_points(), -0.5, np.zeros(2000))


def test_default_electrode_distance_is_017_height():
    estimator = hd.HemodynamicsEstimator(FS, 25.0, 175.0)
    assert estimator.electrode_distance_cm == pytest.approx(0.17 * 175.0)
