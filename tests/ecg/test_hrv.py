"""RR-interval statistics and HR."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ecg import hrv
from repro.errors import ConfigurationError, SignalError


def test_rr_intervals_basic():
    times = np.array([0.5, 1.5, 2.4, 3.5])
    rr = hrv.rr_intervals(times)
    assert np.allclose(rr, [1.0, 0.9, 1.1])


def test_rr_intervals_drop_outliers():
    times = np.array([0.5, 1.5, 1.6, 6.0, 7.0])  # 0.1 s and 4.4 s invalid
    rr = hrv.rr_intervals(times)
    assert np.allclose(rr, [1.0, 1.0])


def test_mean_hr():
    times = np.arange(0.0, 10.0, 0.75)
    assert hrv.mean_heart_rate_bpm(times) == pytest.approx(80.0)


def test_instantaneous_hr_series():
    times = np.array([0.0, 1.0, 1.8])
    inst = hrv.instantaneous_hr_bpm(times)
    assert np.allclose(inst, [60.0, 75.0])


def test_hrv_summary_statistics():
    rng = np.random.default_rng(0)
    rr = 0.8 + 0.02 * rng.standard_normal(200)
    times = np.concatenate([[0.0], np.cumsum(rr)])
    summary = hrv.hrv_summary(times)
    assert summary.mean_hr_bpm == pytest.approx(75.0, rel=0.02)
    assert summary.sdnn_ms == pytest.approx(20.0, rel=0.25)
    assert summary.n_beats == 201
    assert 0.0 <= summary.pnn50 <= 1.0


def test_pnn50_on_alternans():
    """Alternating 0.7/0.8 s RR: every successive difference is 100 ms."""
    rr = np.tile([0.7, 0.8], 50)
    times = np.concatenate([[0.0], np.cumsum(rr)])
    summary = hrv.hrv_summary(times)
    assert summary.pnn50 == pytest.approx(1.0)


def test_recovers_subject_hr(device_recording):
    times = device_recording.annotation("r_times_s")
    hr = hrv.mean_heart_rate_bpm(times)
    assert hr == pytest.approx(device_recording.meta["true_hr_bpm"],
                               rel=0.01)


def test_heart_rate_from_indices():
    indices = np.arange(0, 2500, 250)
    assert hrv.heart_rate_from_indices(indices, 250.0) == pytest.approx(
        60.0)


@settings(max_examples=30)
@given(rr_s=st.floats(min_value=0.3, max_value=2.0),
       n=st.integers(min_value=4, max_value=50))
def test_constant_rr_zero_variability(rr_s, n):
    times = np.arange(n) * rr_s
    summary = hrv.hrv_summary(times)
    assert summary.sdnn_ms == pytest.approx(0.0, abs=1e-6)
    assert summary.rmssd_ms == pytest.approx(0.0, abs=1e-6)
    assert summary.pnn50 == 0.0


def test_validation():
    with pytest.raises(SignalError):
        hrv.rr_intervals(np.array([1.0]))
    with pytest.raises(SignalError):
        hrv.rr_intervals(np.array([2.0, 1.0]))
    with pytest.raises(SignalError):
        hrv.mean_heart_rate_bpm(np.array([0.0, 10.0]))  # only outlier RR
    with pytest.raises(ConfigurationError):
        hrv.heart_rate_from_indices(np.arange(10), -1.0)


def test_hrv_from_landmarks_matches_r_times_path():
    """The beat-batched entry point: identical to feeding the landmark
    R column as times."""
    import numpy as np

    from repro.ecg.hrv import (
        hrv_from_landmarks,
        hrv_summary,
        instantaneous_hr_bpm,
        instantaneous_hr_from_landmarks,
    )
    from repro.icg.batch import BeatLandmarks

    r = np.array([0, 210, 415, 640, 850, 1070], dtype=np.int64)
    landmarks = BeatLandmarks(
        r=r, c=r + 30, b=r + 15, x=r + 80, b0=r + 14.5,
        x0=r + 85, pattern_found=np.ones(r.size, bool))
    fs = 250.0
    want = hrv_summary(r / fs)
    assert hrv_from_landmarks(landmarks, fs) == want
    assert np.array_equal(instantaneous_hr_from_landmarks(landmarks, fs),
                          instantaneous_hr_bpm(r / fs))
