"""Pan-Tompkins QRS detection."""

import numpy as np
import pytest

from repro.ecg import pan_tompkins, preprocessing
from repro.errors import ConfigurationError, SignalError
from repro.synth import SynthesisConfig, default_cohort, synthesize_recording

FS = 250.0


def _score(detected_s, truth_s, tolerance_s=0.06):
    hits = sum(1 for t in truth_s
               if np.any(np.abs(detected_s - t) < tolerance_s))
    false_pos = sum(1 for d in detected_s
                    if not np.any(np.abs(truth_s - d) < tolerance_s))
    return hits, false_pos


def test_perfect_detection_on_clean_ecg(clean_recording):
    detector = pan_tompkins.PanTompkinsDetector(clean_recording.fs)
    filtered = preprocessing.preprocess_ecg(clean_recording.channel("ecg"),
                                            clean_recording.fs)
    detected = detector.detect_times(filtered)
    truth = clean_recording.annotation("r_times_s")
    hits, false_pos = _score(detected, truth)
    assert hits == truth.size
    assert false_pos == 0


@pytest.mark.parametrize("subject_index", [0, 2, 4])
def test_detection_across_cohort(subject_index):
    subject = default_cohort()[subject_index]
    recording = synthesize_recording(subject, "device", 1,
                                     SynthesisConfig(duration_s=16.0))
    filtered = preprocessing.preprocess_ecg(recording.channel("ecg"),
                                            recording.fs)
    detected = pan_tompkins.detect_r_peaks(filtered, recording.fs) / \
        recording.fs
    truth = recording.annotation("r_times_s")
    hits, false_pos = _score(np.asarray(detected), truth)
    assert hits >= truth.size - 1     # first beat may fall in learning
    assert false_pos == 0


def test_detection_under_noise(clean_recording, rng):
    """0.1 mV RMS broadband noise: sensitivity must stay high."""
    ecg = clean_recording.channel("ecg") + 0.1 * rng.standard_normal(
        clean_recording.n_samples)
    filtered = preprocessing.preprocess_ecg(ecg, FS)
    detected = pan_tompkins.detect_r_peaks(filtered, FS) / FS
    truth = clean_recording.annotation("r_times_s")
    hits, false_pos = _score(np.asarray(detected), truth)
    assert hits >= truth.size - 2
    assert false_pos <= 1


def test_refractory_blocks_double_detection(clean_recording):
    detector = pan_tompkins.PanTompkinsDetector(FS)
    filtered = preprocessing.preprocess_ecg(clean_recording.channel("ecg"),
                                            FS)
    detected = detector.detect(filtered)
    assert np.all(np.diff(detected) >= int(0.2 * FS))


def test_tall_t_wave_discrimination(rng):
    """Beats with exaggerated T waves must not double-count."""
    from repro.synth.ecg_model import EcgBeatModel, WaveSpec, synthesize_ecg
    waves = dict(EcgBeatModel().waves)
    waves["T"] = WaveSpec(0.30, 0.55, 0.06, rr_scaled=True)
    beat_times = np.arange(1.0, 14.0, 0.85)
    ecg, _ = synthesize_ecg(beat_times, np.full(beat_times.size, 0.85),
                            15.0, FS, EcgBeatModel(waves=waves))
    detected = pan_tompkins.detect_r_peaks(ecg, FS) / FS
    hits, false_pos = _score(np.asarray(detected), beat_times)
    assert false_pos == 0
    assert hits >= beat_times.size - 1


def test_search_back_recovers_low_amplitude_beat():
    """One attenuated beat mid-recording: search-back must find it."""
    from repro.synth.ecg_model import EcgBeatModel, synthesize_ecg
    beat_times = np.arange(1.0, 14.0, 0.8)
    rr = np.full(beat_times.size, 0.8)
    ecg, _ = synthesize_ecg(beat_times, rr, 15.0, FS, EcgBeatModel())
    # Attenuate beat 7 to 35 %.
    idx = int(beat_times[7] * FS)
    window = slice(idx - int(0.1 * FS), idx + int(0.1 * FS))
    ecg[window] *= 0.35
    detected = pan_tompkins.detect_r_peaks(ecg, FS) / FS
    assert np.any(np.abs(np.asarray(detected) - beat_times[7]) < 0.08)


def test_intermediate_signals_exposed(clean_recording):
    detector = pan_tompkins.PanTompkinsDetector(FS)
    detector.detect(clean_recording.channel("ecg"))
    assert detector.bandpassed is not None
    assert detector.integrated is not None
    assert detector.integrated.shape == (clean_recording.n_samples,)


def test_detect_times_matches_indices(clean_recording):
    detector = pan_tompkins.PanTompkinsDetector(FS)
    ecg = clean_recording.channel("ecg")
    idx = detector.detect(ecg)
    times = pan_tompkins.PanTompkinsDetector(FS).detect_times(ecg)
    assert np.allclose(times, idx / FS)


def test_low_fs_rejected():
    with pytest.raises(ConfigurationError):
        pan_tompkins.PanTompkinsDetector(40.0)


def test_band_above_nyquist_rejected():
    with pytest.raises(ConfigurationError):
        pan_tompkins.PanTompkinsDetector(
            80.0, pan_tompkins.PanTompkinsConfig(band_hz=(5.0, 45.0)))


def test_short_signal_rejected():
    detector = pan_tompkins.PanTompkinsDetector(FS)
    with pytest.raises(SignalError):
        detector.detect(np.zeros(100))


def test_2d_signal_rejected():
    detector = pan_tompkins.PanTompkinsDetector(FS)
    with pytest.raises(SignalError):
        detector.detect(np.zeros((10, 10)))


def test_config_validation():
    with pytest.raises(ConfigurationError):
        pan_tompkins.PanTompkinsConfig(band_hz=(15.0, 5.0))
    with pytest.raises(ConfigurationError):
        pan_tompkins.PanTompkinsConfig(refractory_s=-0.1)
