"""ECG signal-quality metrics."""

import numpy as np
import pytest

from repro.ecg import quality
from repro.errors import ConfigurationError, SignalError

FS = 250.0


def test_snr_higher_for_clean_signal(clean_recording, rng):
    ecg = clean_recording.channel("ecg")
    clean_snr = quality.snr_db(ecg, FS)
    noisy_snr = quality.snr_db(
        ecg + 0.1 * rng.standard_normal(ecg.size), FS)
    assert clean_snr > noisy_snr + 10.0


def test_flatline_detection():
    signal = np.concatenate([np.zeros(int(4 * FS)),
                             np.sin(np.arange(int(4 * FS)) * 0.3)])
    fraction = quality.flatline_fraction(signal, FS)
    assert fraction == pytest.approx(0.5, abs=0.1)


def test_no_flatline_on_live_signal(clean_recording):
    assert quality.flatline_fraction(clean_recording.channel("ecg"),
                                     FS) == 0.0


def test_clipping_detection():
    t = np.arange(int(8 * FS)) / FS
    signal = np.clip(2.0 * np.sin(2 * np.pi * 1.0 * t), -1.0, 1.0)
    assert quality.clipping_fraction(signal) > 0.2


def test_no_clipping_on_clean_signal(clean_recording):
    assert quality.clipping_fraction(
        clean_recording.channel("ecg")) < 0.05


def test_constant_signal_counts_as_clipped():
    assert quality.clipping_fraction(np.ones(100)) == 1.0


def test_template_correlation_high_for_consistent_beats(
        clean_recording, pipeline_result):
    corr = quality.qrs_template_correlation(
        clean_recording.channel("ecg"), FS,
        (clean_recording.annotation("r_times_s") * FS).astype(int))
    assert corr > 0.95


def test_template_correlation_drops_with_artifacts(clean_recording, rng):
    ecg = clean_recording.channel("ecg").copy()
    r_indices = (clean_recording.annotation("r_times_s") * FS).astype(int)
    # Corrupt half the beats with large noise bursts.
    for r in r_indices[::2]:
        ecg[r - 20: r + 20] += 2.0 * rng.standard_normal(40)
    corr = quality.qrs_template_correlation(ecg, FS, r_indices)
    assert corr < 0.9


def test_template_needs_three_beats():
    with pytest.raises(SignalError):
        quality.qrs_template_correlation(np.ones(1000), FS,
                                         np.array([100, 200]))


def test_assess_quality_verdict(clean_recording):
    r_indices = (clean_recording.annotation("r_times_s") * FS).astype(int)
    verdict = quality.assess_quality(clean_recording.channel("ecg"), FS,
                                     r_indices)
    assert verdict.acceptable


def test_assess_quality_rejects_garbage(rng):
    noise = 0.01 * rng.standard_normal(int(16 * FS))
    r_indices = np.arange(200, 3800, 220)
    verdict = quality.assess_quality(noise, FS, r_indices)
    assert not verdict.acceptable


def test_snr_validation():
    with pytest.raises(ConfigurationError):
        quality.snr_db(np.ones(100), -1.0)


def test_clipping_rail_fraction_validation():
    with pytest.raises(ConfigurationError):
        quality.clipping_fraction(np.arange(10.0), rail_fraction=0.3)
