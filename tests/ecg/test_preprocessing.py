"""The paper's ECG conditioning chain."""

import numpy as np
import pytest

from repro.dsp import spectral
from repro.ecg import preprocessing
from repro.errors import ConfigurationError

FS = 250.0


def _wandering_ecg(clean_recording):
    ecg = clean_recording.channel("ecg")
    t = clean_recording.time_s
    wander = 0.6 * np.sin(2 * np.pi * 0.15 * t) + 0.3 * t / t[-1]
    return ecg, ecg + wander, wander


def test_baseline_removal_recovers_clean_ecg(clean_recording):
    ecg, contaminated, _ = _wandering_ecg(clean_recording)
    corrected = preprocessing.remove_baseline_wander(contaminated,
                                                     clean_recording.fs)
    # R-peak amplitudes preserved, wander gone.
    inner = slice(int(2 * FS), int(-2 * FS))
    residual = corrected[inner] - ecg[inner]
    assert np.std(residual) < 0.1
    assert np.abs(corrected[inner]).max() == pytest.approx(
        np.abs(ecg[inner]).max(), rel=0.15)


def test_baseline_removal_cuts_sub_hz_power(clean_recording):
    _, contaminated, _ = _wandering_ecg(clean_recording)
    corrected = preprocessing.remove_baseline_wander(contaminated, FS)
    freqs, psd_before = spectral.welch(contaminated, FS, nperseg=2048)
    _, psd_after = spectral.welch(corrected, FS, nperseg=2048)
    low_before = spectral.band_power(freqs, psd_before, 0.0, 0.5)
    low_after = spectral.band_power(freqs, psd_after, 0.0, 0.5)
    assert low_after < 0.1 * low_before


def test_bandpass_removes_high_frequency_noise(clean_recording, rng):
    ecg = clean_recording.channel("ecg")
    noisy = ecg + 0.05 * rng.standard_normal(ecg.size)
    filtered = preprocessing.bandpass(noisy, FS)
    freqs, psd = spectral.welch(filtered, FS, nperseg=2048)
    high = spectral.band_power(freqs, psd, 60.0, 124.0)
    _, psd_noisy = spectral.welch(noisy, FS, nperseg=2048)
    high_noisy = spectral.band_power(freqs, psd_noisy, 60.0, 124.0)
    assert high < 0.15 * high_noisy


def test_full_chain_preserves_r_peak_timing(clean_recording):
    """Zero-phase guarantee: R peaks do not move."""
    ecg = clean_recording.channel("ecg")
    processed = preprocessing.preprocess_ecg(ecg, FS)
    r_times = clean_recording.annotation("r_times_s")
    for r in r_times[1:-1]:
        idx = int(round(r * FS))
        window = slice(idx - 10, idx + 11)
        raw_peak = idx - 10 + np.argmax(ecg[window])
        filtered_peak = idx - 10 + np.argmax(processed[window])
        assert abs(int(raw_peak) - int(filtered_peak)) <= 1


def test_division_of_labour(clean_recording):
    """The morphology stage handles < 1 Hz; the 32nd-order FIR cannot
    (documented fidelity note) — verify the chain needs both."""
    _, contaminated, _ = _wandering_ecg(clean_recording)
    only_fir = preprocessing.bandpass(contaminated, FS)
    full = preprocessing.preprocess_ecg(contaminated, FS)
    freqs, psd_fir = spectral.welch(only_fir, FS, nperseg=2048)
    _, psd_full = spectral.welch(full, FS, nperseg=2048)
    low_fir = spectral.band_power(freqs, psd_fir, 0.05, 0.4)
    low_full = spectral.band_power(freqs, psd_full, 0.05, 0.4)
    assert low_full < 0.5 * low_fir


def test_config_morphology_lengths_custom():
    config = preprocessing.EcgFilterConfig(
        morphology_lengths_s=(0.1, 0.2))
    first, second = config.morphology_lengths(FS)
    assert first == 25 and second == 51  # rounded up to odd


def test_config_default_lengths():
    config = preprocessing.EcgFilterConfig()
    first, second = config.morphology_lengths(FS)
    assert first % 2 == 1 and second % 2 == 1
    assert second > first


def test_invalid_band_rejected():
    with pytest.raises(ConfigurationError):
        preprocessing.EcgFilterConfig(low_cut_hz=50.0, high_cut_hz=10.0)


def test_high_cut_above_nyquist_rejected():
    config = preprocessing.EcgFilterConfig(high_cut_hz=40.0)
    with pytest.raises(ConfigurationError):
        preprocessing.bandpass(np.ones(100), 60.0, config)
