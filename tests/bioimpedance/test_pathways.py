"""Measurement pathways: the Fig 6/7 curve shapes and position effects."""

import numpy as np
import pytest

from repro.bioimpedance import pathways, tissue
from repro.device.injector import PAPER_SWEEP_FREQUENCIES_HZ
from repro.errors import ConfigurationError

GEOMETRY = tissue.BodyGeometry(1.78, 75.0, 0.18)
SWEEP = np.asarray(PAPER_SWEEP_FREQUENCIES_HZ)


def test_instrument_gain_monotone_saturating():
    instrument = pathways.InstrumentResponse()
    freqs = np.logspace(3, 6, 30)
    gains = instrument.gain(freqs)
    assert np.all(np.diff(gains) > 0)
    assert gains[-1] < 1.0
    assert instrument.gain(1e8) == pytest.approx(1.0, abs=1e-4)


def test_instrument_rejects_nonpositive_frequency():
    with pytest.raises(ConfigurationError):
        pathways.InstrumentResponse().gain(0.0)
    with pytest.raises(ConfigurationError):
        pathways.InstrumentResponse(corner_hz=-5.0)


def test_thoracic_z0_peaks_at_10khz():
    """Fig 6: measured Z0 rises to 10 kHz then falls."""
    thorax = pathways.ThoracicPathway(GEOMETRY)
    z = thorax.measured_z0(SWEEP)
    assert z[1] > z[0]            # 2 kHz -> 10 kHz: rising
    assert z[1] > z[2] > z[3]     # 10 -> 50 -> 100 kHz: falling


@pytest.mark.parametrize("position", [1, 2, 3])
def test_device_z0_peaks_at_10khz(position):
    """Fig 7: the device shows the same non-monotonic shape."""
    device = pathways.HandToHandPathway(GEOMETRY, position)
    z = device.measured_z0(SWEEP)
    assert z[1] > z[0]
    assert z[1] > z[2] > z[3]


def test_device_z0_much_larger_than_thoracic():
    thorax = pathways.ThoracicPathway(GEOMETRY)
    device = pathways.HandToHandPathway(GEOMETRY, 1)
    assert device.measured_z0(5e4) > 10 * thorax.measured_z0(5e4)


def test_position_ordering_matches_fig8():
    """Position 2 reads highest, position 3 slightly above position 1:
    the ordering that produces e21 > e23 > e31 > 0."""
    z = {pos: float(np.mean(
        pathways.HandToHandPathway(GEOMETRY, pos).measured_z0(SWEEP)))
        for pos in (1, 2, 3)}
    assert z[2] > z[3] > z[1]


def test_position_errors_within_paper_bound():
    from repro.bioimpedance.analysis import position_relative_errors
    z = {pos: float(np.mean(
        pathways.HandToHandPathway(GEOMETRY, pos).measured_z0(SWEEP)))
        for pos in (1, 2, 3)}
    errors = position_relative_errors(z)
    assert errors["e21"] > errors["e23"] > errors["e31"] > 0
    assert all(abs(v) < 0.20 for v in errors.values())


def test_cardiac_coupling_attenuated_on_device():
    thorax = pathways.ThoracicPathway(GEOMETRY)
    device = pathways.HandToHandPathway(GEOMETRY, 1)
    assert thorax.cardiac_coupling == pytest.approx(1.0)
    assert 0.0 < device.cardiac_coupling < 0.5


def test_with_position_copies():
    device = pathways.HandToHandPathway(GEOMETRY, 1)
    moved = device.with_position(3)
    assert moved.position == 3
    assert device.position == 1
    assert moved.geometry is device.geometry


def test_invalid_position_rejected():
    with pytest.raises(ConfigurationError):
        pathways.HandToHandPathway(GEOMETRY, 4)
    with pytest.raises(ConfigurationError):
        pathways.position_arm_factor(0)


def test_tissue_chain_composition():
    device = pathways.HandToHandPathway(GEOMETRY, 1)
    chain = device.tissue_chain()
    assert len(chain.elements) == 3  # arm + thorax + arm
    thorax = pathways.ThoracicPathway(GEOMETRY)
    assert len(thorax.tissue_chain().elements) == 1
