"""Cole-Cole tissue model physics."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.bioimpedance import cole
from repro.errors import ConfigurationError

cole_models = st.builds(
    cole.ColeModel,
    r_zero_ohm=st.floats(min_value=10.0, max_value=1000.0),
    r_inf_ohm=st.floats(min_value=1.0, max_value=9.0),
    tau_s=st.floats(min_value=1e-7, max_value=1e-4),
    alpha=st.floats(min_value=0.3, max_value=1.0),
)


def test_limits_match_r0_rinf():
    model = cole.ColeModel(100.0, 40.0, 1e-5, 0.8)
    assert model.magnitude(0.0) == pytest.approx(100.0)
    assert model.magnitude(1e12) == pytest.approx(40.0, rel=1e-3)


@settings(max_examples=50)
@given(model=cole_models)
def test_magnitude_monotone_decreasing(model):
    freqs = np.logspace(1, 7, 40)
    mags = model.magnitude(freqs)
    assert np.all(np.diff(mags) <= 1e-9)


@settings(max_examples=50)
@given(model=cole_models)
def test_magnitude_bounded_by_r0_rinf(model):
    freqs = np.logspace(0, 8, 30)
    mags = model.magnitude(freqs)
    assert np.all(mags <= model.r_zero_ohm + 1e-9)
    assert np.all(mags >= model.r_inf_ohm - 1e-9)


def test_phase_is_capacitive():
    model = cole.ColeModel(100.0, 40.0, 1e-5, 0.8)
    phase = model.phase_deg(model.characteristic_frequency_hz)
    assert phase < 0.0


def test_characteristic_frequency():
    model = cole.ColeModel(100.0, 40.0, tau_s=1.0 / (2 * np.pi * 1000.0),
                           alpha=1.0)
    assert model.characteristic_frequency_hz == pytest.approx(1000.0)


@settings(max_examples=30)
@given(model=cole_models, factor=st.floats(min_value=0.1, max_value=10.0))
def test_scaling_is_geometric(model, factor):
    scaled = model.scaled(factor)
    freqs = np.logspace(2, 6, 10)
    assert np.allclose(scaled.magnitude(freqs),
                       factor * model.magnitude(freqs), rtol=1e-12)


def test_series_combination_adds():
    a = cole.ColeModel(100.0, 40.0, 1e-5, 0.8)
    b = cole.ColeModel(50.0, 20.0, 2e-5, 0.9)
    chain = a.series(b)
    freqs = np.array([1e3, 5e4])
    assert np.allclose(chain.impedance(freqs),
                       a.impedance(freqs) + b.impedance(freqs))


def test_from_fluid_resistances_circuit_identities():
    re_, ri, cm = 80.0, 120.0, 3e-9
    model = cole.from_fluid_resistances(re_, ri, cm)
    assert model.r_zero_ohm == pytest.approx(re_)
    assert model.r_inf_ohm == pytest.approx(re_ * ri / (re_ + ri))
    assert model.tau_s == pytest.approx((re_ + ri) * cm)


def test_debye_case_matches_circuit():
    """alpha=1: the Cole model equals the explicit RC circuit."""
    re_, ri, cm = 100.0, 150.0, 2e-9
    model = cole.from_fluid_resistances(re_, ri, cm, alpha=1.0)
    freqs = np.logspace(2, 7, 20)
    omega = 2j * np.pi * freqs
    z_membrane = ri + 1.0 / (omega * cm)
    z_circuit = re_ * z_membrane / (re_ + z_membrane)
    assert np.allclose(model.impedance(freqs), z_circuit, rtol=1e-9)


def test_invalid_parameters_rejected():
    with pytest.raises(ConfigurationError):
        cole.ColeModel(-1.0, 0.5, 1e-5)
    with pytest.raises(ConfigurationError):
        cole.ColeModel(10.0, 20.0, 1e-5)  # Rinf > R0
    with pytest.raises(ConfigurationError):
        cole.ColeModel(10.0, 5.0, -1e-5)
    with pytest.raises(ConfigurationError):
        cole.ColeModel(10.0, 5.0, 1e-5, alpha=1.5)
    with pytest.raises(ConfigurationError):
        cole.ColeModel(10.0, 5.0, 1e-5).scaled(0.0)


def test_negative_frequency_rejected():
    model = cole.ColeModel(10.0, 5.0, 1e-5)
    with pytest.raises(ConfigurationError):
        model.impedance(-100.0)


def test_presets_are_physiological():
    for preset in (cole.BLOOD, cole.MUSCLE, cole.FAT, cole.THORAX_BULK,
                   cole.ARM_BULK):
        assert preset.r_zero_ohm > preset.r_inf_ohm > 0
        assert 1e3 < preset.characteristic_frequency_hz < 1e6


def test_fat_resists_more_than_blood():
    freqs = np.array([5e4])
    assert cole.FAT.magnitude(freqs)[0] > cole.MUSCLE.magnitude(freqs)[0]
    assert cole.MUSCLE.magnitude(freqs)[0] > cole.BLOOD.magnitude(freqs)[0]
