"""Body geometry and anthropometric scaling."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.bioimpedance import tissue
from repro.errors import ConfigurationError

geometries = st.builds(
    tissue.BodyGeometry,
    height_m=st.floats(min_value=1.5, max_value=2.1),
    weight_kg=st.floats(min_value=45.0, max_value=150.0),
    body_fat_fraction=st.floats(min_value=0.08, max_value=0.45),
)


def test_reference_scale_is_unity():
    assert tissue.REFERENCE_GEOMETRY.segment_scale() == pytest.approx(1.0)
    assert tissue.REFERENCE_GEOMETRY.impedance_index() == pytest.approx(1.0)


def test_taller_lighter_means_higher_impedance():
    tall = tissue.BodyGeometry(1.95, 70.0, 0.20)
    short = tissue.BodyGeometry(1.60, 70.0, 0.20)
    assert tall.impedance_index() > short.impedance_index()


def test_heavier_means_lower_impedance():
    heavy = tissue.BodyGeometry(1.75, 100.0, 0.20)
    light = tissue.BodyGeometry(1.75, 55.0, 0.20)
    assert heavy.impedance_index() < light.impedance_index()


def test_fat_raises_impedance():
    lean = tissue.BodyGeometry(1.75, 70.0, 0.10)
    obese = tissue.BodyGeometry(1.75, 70.0, 0.40)
    assert obese.fat_modifier() > lean.fat_modifier()


@settings(max_examples=40)
@given(geometry=geometries)
def test_segments_scale_together(geometry):
    arm = tissue.arm_segment(geometry)
    thorax = tissue.thorax_segment(geometry)
    # Arms dominate hand-to-hand impedance: at mid frequency one arm
    # must far exceed the trans-thoracic path.
    assert arm.magnitude(5e4) > 3 * thorax.magnitude(5e4)


@settings(max_examples=40)
@given(geometry=geometries)
def test_thorax_damped_scaling(geometry):
    """Thorax impedance varies as sqrt of the segment scale."""
    thorax = tissue.thorax_segment(geometry)
    ref = tissue.thorax_segment(tissue.REFERENCE_GEOMETRY)
    expected = np.sqrt(geometry.segment_scale())
    ratio = thorax.magnitude(5e4) / ref.magnitude(5e4)
    assert ratio == pytest.approx(expected, rel=1e-9)


def test_bmi():
    geometry = tissue.BodyGeometry(1.80, 81.0, 0.2)
    assert geometry.bmi == pytest.approx(25.0)


def test_path_lengths_proportional_to_height():
    geometry = tissue.BodyGeometry(1.80, 75.0)
    assert geometry.arm_length_m == pytest.approx(0.44 * 1.80)
    assert geometry.thorax_path_m == pytest.approx(0.26 * 1.80)


def test_invalid_anthropometrics_rejected():
    with pytest.raises(ConfigurationError):
        tissue.BodyGeometry(0.9, 70.0)
    with pytest.raises(ConfigurationError):
        tissue.BodyGeometry(1.75, 20.0)
    with pytest.raises(ConfigurationError):
        tissue.BodyGeometry(1.75, 70.0, body_fat_fraction=0.7)
