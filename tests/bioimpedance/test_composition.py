"""Multi-frequency body-composition estimation."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.bioimpedance import composition
from repro.bioimpedance.cole import ColeModel
from repro.errors import ConfigurationError


def test_tbw_reference_male():
    """A 175 cm / 70 kg male with whole-body R = 500 ohm lands in the
    textbook 38-45 L range (55-60 % of body weight)."""
    tbw = composition.total_body_water_l(175.0, 70.0, 500.0, "M")
    assert 35.0 < tbw < 46.0
    assert 0.48 < tbw / 70.0 < 0.66


def test_tbw_female_lower_than_male():
    male = composition.total_body_water_l(170.0, 65.0, 550.0, "M")
    female = composition.total_body_water_l(170.0, 65.0, 550.0, "F")
    assert female < male


@settings(max_examples=40)
@given(r=st.floats(min_value=300.0, max_value=900.0))
def test_tbw_decreases_with_resistance(r):
    base = composition.total_body_water_l(175.0, 75.0, r)
    higher = composition.total_body_water_l(175.0, 75.0, r + 50.0)
    assert higher < base


def test_tbw_validation():
    with pytest.raises(ConfigurationError):
        composition.total_body_water_l(-1.0, 70.0, 500.0)
    with pytest.raises(ConfigurationError):
        composition.total_body_water_l(175.0, 70.0, 500.0, sex="X")


def test_fluid_compartments_from_cole_circuit():
    """Feeding a Cole model's own R0/Rinf back recovers its Ri/Re."""
    model = ColeModel(r_zero_ohm=600.0, r_inf_ohm=350.0, tau_s=1e-5)
    r_low = model.r_zero_ohm
    r_high = model.r_inf_ohm
    compartments = composition.fluid_compartments(r_low, r_high)
    r_intracellular = r_low * r_high / (r_low - r_high)
    assert compartments.ecw_over_icw == pytest.approx(
        r_intracellular / r_low)
    assert compartments.ecw_fraction + compartments.icw_fraction == \
        pytest.approx(1.0)


def test_healthy_ecw_fraction_range():
    """Typical adult: ECW is roughly 35-50 % of TBW.  With whole-body
    R0 ~ 600 and Rinf ~ 400 the split lands in that band."""
    compartments = composition.fluid_compartments(600.0, 400.0)
    assert 0.3 < compartments.ecw_fraction < 0.75


def test_fluid_overload_raises_ecw_fraction():
    """Extra extracellular fluid lowers R0 more than Rinf -> ECW up."""
    healthy = composition.fluid_compartments(600.0, 400.0)
    overloaded = composition.fluid_compartments(480.0, 380.0)
    assert overloaded.ecw_fraction > healthy.ecw_fraction


def test_fluid_compartments_validation():
    with pytest.raises(ConfigurationError):
        composition.fluid_compartments(400.0, 600.0)  # inverted
    with pytest.raises(ConfigurationError):
        composition.fluid_compartments(0.0, -1.0)


def test_fat_free_mass_hydration():
    assert composition.fat_free_mass_kg(42.0) == pytest.approx(
        42.0 / 0.732)
    with pytest.raises(ConfigurationError):
        composition.fat_free_mass_kg(42.0, hydration=0.3)
    with pytest.raises(ConfigurationError):
        composition.fat_free_mass_kg(-1.0)


def test_full_composition_plausible():
    body = composition.BodyComposition.from_multifrequency(
        height_cm=178.0, weight_kg=78.0, r_low_ohm=620.0,
        r_high_ohm=430.0, sex="M")
    assert 35.0 < body.tbw_l < 50.0
    assert 45.0 < body.ffm_kg < 75.0
    assert 0.0 <= body.fat_fraction < 0.45
    assert body.fat_kg == pytest.approx(78.0 - body.ffm_kg)
    assert 0.3 < body.compartments.ecw_fraction < 0.75


def test_fat_mass_floored_at_zero():
    """Very lean + low resistance: the regression may exceed weight."""
    body = composition.BodyComposition.from_multifrequency(
        height_cm=195.0, weight_kg=60.0, r_low_ohm=420.0,
        r_high_ohm=300.0, sex="M")
    assert body.fat_kg >= 0.0
    assert body.fat_fraction >= 0.0


def test_composition_from_pathway_model():
    """End-to-end: take the hand-to-hand pathway's tissue resistances
    at 2/100 kHz (instrument gain divided out) and estimate."""
    from repro.bioimpedance import BodyGeometry, HandToHandPathway

    geometry = BodyGeometry(1.78, 75.0, 0.18)
    pathway = HandToHandPathway(geometry, 1)
    r_low = float(np.abs(pathway.impedance(2_000.0)))
    r_high = float(np.abs(pathway.impedance(100_000.0)))
    body = composition.BodyComposition.from_multifrequency(
        178.0, 75.0, r_low, r_high, "M")
    assert 30.0 < body.tbw_l < 55.0
    assert 0.0 <= body.fat_fraction < 0.5
