"""Electrode-skin interface models."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.bioimpedance import electrodes
from repro.errors import ConfigurationError


def test_magnitude_decreases_with_frequency():
    for electrode in (electrodes.wet_gel_electrode(),
                      electrodes.dry_finger_electrode()):
        freqs = np.logspace(1, 6, 30)
        mags = electrode.magnitude(freqs)
        assert np.all(np.diff(mags) <= 1e-9)


def test_high_frequency_limit_is_series_resistance():
    electrode = electrodes.dry_finger_electrode()
    assert electrode.magnitude(1e9) == pytest.approx(
        electrode.series_resistance_ohm, rel=1e-3)


def test_dc_limit_is_rs_plus_rct():
    electrode = electrodes.ElectrodeModel(100.0, 5000.0, 1e-8)
    assert electrode.magnitude(0.0) == pytest.approx(5100.0)


def test_dry_worse_than_wet_at_low_frequency():
    wet = electrodes.wet_gel_electrode()
    dry = electrodes.dry_finger_electrode()
    assert dry.magnitude(1e3) > 10 * wet.magnitude(1e3)


def test_dry_electrode_rolloff_spans_decades():
    """The dry pad impedance collapses between 1 kHz and 100 kHz —
    the mechanism behind the device's low-frequency insensitivity."""
    dry = electrodes.dry_finger_electrode()
    assert dry.magnitude(1e3) / dry.magnitude(1e5) > 5.0


@settings(max_examples=40)
@given(quality=st.floats(min_value=0.1, max_value=1.0))
def test_quality_scales_interface(quality):
    base = electrodes.dry_finger_electrode()
    derated = base.with_quality(quality)
    # Lower quality -> higher low-frequency impedance.
    assert derated.magnitude(100.0) >= base.magnitude(100.0) - 1e-9


def test_with_quality_returns_new_instance():
    base = electrodes.wet_gel_electrode()
    other = base.with_quality(0.5)
    assert other is not base
    assert other.contact_quality == 0.5
    assert base.contact_quality == 1.0


def test_invalid_parameters_rejected():
    with pytest.raises(ConfigurationError):
        electrodes.ElectrodeModel(-1.0, 100.0, 1e-8)
    with pytest.raises(ConfigurationError):
        electrodes.ElectrodeModel(10.0, 0.0, 1e-8)
    with pytest.raises(ConfigurationError):
        electrodes.ElectrodeModel(10.0, 100.0, -1e-8)
    with pytest.raises(ConfigurationError):
        electrodes.ElectrodeModel(10.0, 100.0, 1e-8, contact_quality=0.0)
    with pytest.raises(ConfigurationError):
        electrodes.ElectrodeModel(10.0, 100.0, 1e-8, contact_quality=1.5)


def test_negative_frequency_rejected():
    with pytest.raises(ConfigurationError):
        electrodes.wet_gel_electrode().impedance(-5.0)
