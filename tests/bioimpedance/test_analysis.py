"""Correlation and relative-error metrics (equations (1)-(3))."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra.numpy import arrays

from repro.bioimpedance import analysis
from repro.errors import ConfigurationError, SignalError

varied = arrays(np.float64, st.integers(min_value=3, max_value=100),
                elements=st.floats(-1e3, 1e3, allow_nan=False)).filter(
                    lambda x: np.std(x) > 1e-6)


@settings(max_examples=50)
@given(x=varied)
def test_self_correlation_is_one(x):
    assert analysis.pearson_correlation(x, x) == pytest.approx(1.0)


@settings(max_examples=50)
@given(x=varied)
def test_anticorrelation_is_minus_one(x):
    assert analysis.pearson_correlation(x, -x) == pytest.approx(-1.0)


@settings(max_examples=50)
@given(x=varied, scale=st.floats(0.01, 100.0), offset=st.floats(-50, 50))
def test_correlation_affine_invariant(x, scale, offset):
    r = analysis.pearson_correlation(x, scale * x + offset)
    assert r == pytest.approx(1.0, abs=1e-6)


@settings(max_examples=50)
@given(x=varied)
def test_correlation_bounded(x):
    rng = np.random.default_rng(0)
    y = rng.normal(size=x.size)
    if np.std(y) < 1e-9:
        return
    r = analysis.pearson_correlation(x, y)
    assert -1.0 <= r <= 1.0


def test_correlation_symmetric():
    rng = np.random.default_rng(1)
    x, y = rng.normal(size=50), rng.normal(size=50)
    assert analysis.pearson_correlation(x, y) == pytest.approx(
        analysis.pearson_correlation(y, x))


def test_correlation_rejects_constant():
    with pytest.raises(SignalError):
        analysis.pearson_correlation(np.ones(10), np.arange(10.0))


def test_correlation_rejects_mismatched():
    with pytest.raises(SignalError):
        analysis.pearson_correlation(np.ones(5), np.ones(6))


def test_correlation_rejects_single_sample():
    with pytest.raises(SignalError):
        analysis.pearson_correlation(np.array([1.0]), np.array([2.0]))


def test_mean_impedance():
    assert analysis.mean_impedance([1.0, 2.0, 3.0]) == pytest.approx(2.0)


def test_mean_impedance_rejects_nonfinite():
    with pytest.raises(SignalError):
        analysis.mean_impedance([1.0, np.nan])
    with pytest.raises(SignalError):
        analysis.mean_impedance([])


def test_relative_error_paper_equation():
    """e21 = (Z2 - Z1) / Z2, the sign convention of equation (1)."""
    assert analysis.relative_error(110.0, 100.0) == pytest.approx(
        10.0 / 110.0)
    assert analysis.relative_error(100.0, 110.0) == pytest.approx(-0.1)


def test_relative_error_zero_reference_rejected():
    with pytest.raises(ConfigurationError):
        analysis.relative_error(0.0, 1.0)


def test_position_relative_errors_identities():
    mean_z = {1: 100.0, 2: 113.0, 3: 102.5}
    errors = analysis.position_relative_errors(mean_z)
    assert errors["e21"] == pytest.approx((113.0 - 100.0) / 113.0)
    assert errors["e23"] == pytest.approx((113.0 - 102.5) / 113.0)
    assert errors["e31"] == pytest.approx((102.5 - 100.0) / 102.5)


def test_position_relative_errors_missing_position():
    with pytest.raises(ConfigurationError):
        analysis.position_relative_errors({1: 100.0, 2: 110.0})


@settings(max_examples=50)
@given(z1=st.floats(50.0, 200.0), z2=st.floats(50.0, 200.0),
       z3=st.floats(50.0, 200.0))
def test_error_pairs_consistent_with_table(z1, z2, z3):
    errors = analysis.position_relative_errors({1: z1, 2: z2, 3: z3})
    for name, (ref, other) in analysis.ERROR_PAIRS.items():
        z_by_pos = {1: z1, 2: z2, 3: z3}
        assert errors[name] == pytest.approx(
            (z_by_pos[ref] - z_by_pos[other]) / z_by_pos[ref])
