"""Session supervisor: the table-driven state machine contract.

Every ``(from, to)`` pair of the state space is swept — legal edges
must transition, everything else must raise — plus the bookkeeping
each edge carries (history, counters, the re-ingest reset) and the
end-to-end QUARANTINED → ACCEPTING readmission through
``RecoveryManager.reingest`` over a really-damaged journal.
"""

import itertools

import pytest

from repro.errors import SupervisorError
from repro.ingest import ChunkJournal, DeviceFleet, FleetConfig
from repro.ingest.stats import ingest_stats, reset_ingest_stats
from repro.serve import (
    ACCEPTING,
    DONE,
    DRAINING,
    FINALIZING,
    LEGAL_TRANSITIONS,
    QUARANTINED,
    SESSION_STATES,
    ServeDaemon,
    SessionSupervisor,
)

from tests.ingest.faults import flip_crc_byte

#: Shortest legal path that parks a fresh session in each state.
_PATH_TO = {
    ACCEPTING: (),
    DRAINING: (DRAINING,),
    FINALIZING: (DRAINING, FINALIZING),
    DONE: (DRAINING, FINALIZING, DONE),
    QUARANTINED: (QUARANTINED,),
}


def _park(supervisor: SessionSupervisor, sid: str, state: str) -> None:
    supervisor.accept(sid)
    for step in _PATH_TO[state]:
        supervisor.transition(sid, step)


@pytest.mark.parametrize(
    "src,dst", list(itertools.product(SESSION_STATES, SESSION_STATES)))
def test_every_edge_of_the_table(src, dst):
    """The complete edge table: legal edges transition and are
    recorded; every other pair raises and leaves the state alone."""
    supervisor = SessionSupervisor()
    _park(supervisor, "s", src)
    record = supervisor.get("s")
    assert record.state == src
    if (src, dst) in LEGAL_TRANSITIONS:
        supervisor.transition("s", dst)
        assert record.state == dst
        assert record.history[-1] == (src, dst)
    else:
        with pytest.raises(SupervisorError):
            supervisor.transition("s", dst)
        assert record.state == src


def test_unknown_session_and_unknown_state_raise():
    supervisor = SessionSupervisor()
    with pytest.raises(SupervisorError):
        supervisor.transition("ghost", DRAINING)
    supervisor.accept("s")
    with pytest.raises(SupervisorError):
        supervisor.transition("s", "exploded")


def test_double_accept_raises():
    supervisor = SessionSupervisor()
    supervisor.accept("s")
    with pytest.raises(SupervisorError):
        supervisor.accept("s")


def test_quarantine_records_reason_and_counts():
    reset_ingest_stats()
    supervisor = SessionSupervisor()
    supervisor.accept("s")
    supervisor.quarantine("s", "stalled source: no chunk for 5s")
    record = supervisor.get("s")
    assert record.state == QUARANTINED
    assert "stalled source" in record.reason
    stats = ingest_stats()
    assert stats.serve_sessions_quarantined == 1
    assert stats.serve_sessions_accepted == 1


def test_done_counts():
    reset_ingest_stats()
    supervisor = SessionSupervisor()
    _park(supervisor, "s", DONE)
    assert ingest_stats().serve_sessions_done == 1
    assert supervisor.all_terminal


def test_reingest_edge_resets_the_record():
    """QUARANTINED -> ACCEPTING is the readmission: sequencing, retry
    and deadline bookkeeping restart from scratch."""
    reset_ingest_stats()
    supervisor = SessionSupervisor()
    supervisor.accept("s")
    record = supervisor.get("s")
    record.next_seq = 7
    record.n_chunks = 7
    record.attempts = 2
    record.last_chunk_monotonic = 123.0
    supervisor.quarantine("s", "journal damage: crc mismatch")
    supervisor.transition("s", ACCEPTING)
    assert record.state == ACCEPTING
    assert record.next_seq == 0
    assert record.n_chunks == 0
    assert record.attempts == 0
    assert record.reason is None
    assert record.last_chunk_monotonic is None
    assert ingest_stats().serve_sessions_accepted == 2  # re-admission


def test_views_cover_all_states():
    supervisor = SessionSupervisor()
    _park(supervisor, "a", ACCEPTING)
    _park(supervisor, "b", DONE)
    _park(supervisor, "c", QUARANTINED)
    counts = supervisor.counts()
    assert set(counts) == set(SESSION_STATES)
    assert counts[ACCEPTING] == 1
    assert counts[DONE] == 1
    assert counts[QUARANTINED] == 1
    assert counts[DRAINING] == 0
    assert supervisor.states() == {"a": ACCEPTING, "b": DONE,
                                   "c": QUARANTINED}
    assert [r.session_id for r in supervisor.in_state(DONE)] == ["b"]
    assert not supervisor.all_terminal
    assert "a" in supervisor and "ghost" not in supervisor
    assert len(supervisor) == 3


FLEET = FleetConfig(n_devices=2, duration_s=4.0, chunk_s=2.0, seed=11)


def test_reingest_readmits_damaged_session_end_to_end(tmp_path):
    """The full QUARANTINED exit: damage one session's journal record
    on disk, boot a daemon (it quarantines the session), re-ingest via
    the daemon (RecoveryManager moves the records aside), and serve
    the session again from seq 0 to DONE."""
    # Seed the journal with two completed sessions.
    with ChunkJournal(tmp_path) as journal:
        for chunk in DeviceFleet(FLEET):
            journal.append(chunk)
    damaged_sid = flip_crc_byte(tmp_path, index=0)

    daemon = ServeDaemon(tmp_path, n_workers=1, health=False)
    results = daemon.serve([])
    record = daemon.supervisor.get(damaged_sid)
    assert record.state == QUARANTINED
    assert "journal damage" in record.reason
    assert damaged_sid not in results       # the survivor finalized
    assert len(results) == 1

    report = daemon.reingest(damaged_sid)
    assert report.records_moved > 0
    assert report.sidecar is not None and report.sidecar.exists()
    assert daemon.supervisor.get(damaged_sid).state == ACCEPTING

    # The device measures again: the same session id streams from
    # seq 0 through the ordinary write-through path, to DONE.
    fleet = DeviceFleet(FLEET)
    chunks = [c for c in fleet if c.session_id == damaged_sid]
    results = daemon.serve([chunks])
    assert daemon.supervisor.get(damaged_sid).state == DONE
    assert damaged_sid in results

    # reingest of a non-quarantined session is refused.
    with pytest.raises(SupervisorError):
        daemon.reingest(damaged_sid)
