"""SIGTERM with a group-commit window in flight (subprocess fault).

A daemon dying via a SIGTERM handler (``sys.exit``) never reaches
``ChunkJournal.close``; the journal's atexit barrier must drain the
pending group-commit window during interpreter shutdown, so a graceful
termination loses nothing that ``append`` accepted."""

import os
import signal
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.ingest import ChunkJournal

pytestmark = pytest.mark.faults

_SRC = Path(__file__).resolve().parents[2] / "src"

_CHILD = textwrap.dedent("""
    import signal
    import sys
    import time

    import numpy as np

    from repro.ingest import ChunkJournal, chunk_recording
    from repro.io import Recording

    signal.signal(signal.SIGTERM, lambda *a: sys.exit(0))

    journal = ChunkJournal({directory!r}, durability="group")
    n = 2500
    recording = Recording(250.0, {{"ecg": np.sin(np.arange(n) * 0.1),
                                   "z": np.full(n, 25.0)}})
    count = 0
    for chunk in chunk_recording(recording, "sigterm-000", 0.2):
        journal.append(chunk)
        count += 1
    # Deliberately no flush() and no close(): the group window may
    # still be pending when SIGTERM lands; only the atexit barrier
    # stands between those appends and the daemonic writer's death.
    print("READY", count, flush=True)
    while True:
        time.sleep(0.1)
""")


def test_sigterm_mid_window_loses_no_accepted_append(tmp_path):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(_SRC) + os.pathsep + env.get("PYTHONPATH", "")
    child = subprocess.Popen(
        [sys.executable, "-c", _CHILD.format(directory=str(tmp_path))],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE,
        env=env, text=True)
    try:
        line = child.stdout.readline().split()
        assert line and line[0] == "READY", child.stderr.read()
        n_appended = int(line[1])
        child.send_signal(signal.SIGTERM)
        assert child.wait(timeout=30) == 0, child.stderr.read()
    finally:
        if child.poll() is None:
            child.kill()
            child.wait(timeout=30)

    with ChunkJournal(tmp_path) as journal:
        scan = journal.last_scan
        assert not scan.damaged
        assert scan.n_records == n_appended
        assert "sigterm-000" in journal.completed_sessions
