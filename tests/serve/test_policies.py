"""Serve policies as pure units: deadline math, the backoff schedule,
ladder hysteresis, and periodic-job failure containment."""

import time

import pytest

from repro.errors import ConfigurationError
from repro.ingest.stats import ingest_stats, reset_ingest_stats
from repro.serve import (
    DEGRADATION_LEVELS,
    NORMAL,
    SHED_NEW,
    STRICT_DURABILITY,
    DeadlinePolicy,
    DegradationLadder,
    PeriodicJob,
    RetryPolicy,
)

# -- DeadlinePolicy ---------------------------------------------------------


def test_deadline_none_disables():
    policy = DeadlinePolicy()
    assert not policy.chunk_overdue(0.0, 1e9)
    assert not policy.finalize_overdue(0.0, 1e9)


def test_deadline_overdue_math():
    policy = DeadlinePolicy(chunk_deadline_s=1.0, finalize_timeout_s=2.0)
    assert not policy.chunk_overdue(10.0, 11.0)     # exactly at: not over
    assert policy.chunk_overdue(10.0, 11.01)
    assert not policy.chunk_overdue(None, 11.01)    # no chunk yet: no clock
    assert not policy.finalize_overdue(10.0, 12.0)
    assert policy.finalize_overdue(10.0, 12.01)
    assert not policy.finalize_overdue(None, 1e9)


@pytest.mark.parametrize("kwargs", [
    {"chunk_deadline_s": 0.0},
    {"chunk_deadline_s": -1.0},
    {"finalize_timeout_s": 0.0},
])
def test_deadline_validates(kwargs):
    with pytest.raises(ConfigurationError):
        DeadlinePolicy(**kwargs)


# -- RetryPolicy ------------------------------------------------------------


def test_backoff_schedule_doubles_then_caps():
    policy = RetryPolicy(max_attempts=5, base_s=0.05, cap_s=0.4)
    assert [policy.backoff_s(k) for k in range(6)] == \
        [0.05, 0.1, 0.2, 0.4, 0.4, 0.4]


def test_exhausted_counts_failures():
    policy = RetryPolicy(max_attempts=2)
    assert not policy.exhausted(0)
    assert not policy.exhausted(1)
    assert policy.exhausted(2)
    assert policy.exhausted(3)


def test_sleep_credits_the_retry_counter():
    reset_ingest_stats()
    policy = RetryPolicy(max_attempts=2, base_s=0.001, cap_s=0.002)
    slept = policy.sleep(0)
    assert slept == pytest.approx(0.001)
    assert ingest_stats().serve_retries == 1


@pytest.mark.parametrize("kwargs", [
    {"max_attempts": 0},
    {"base_s": 0.0},
    {"base_s": 0.2, "cap_s": 0.1},
])
def test_retry_validates(kwargs):
    with pytest.raises(ConfigurationError):
        RetryPolicy(**kwargs)


# -- DegradationLadder ------------------------------------------------------


def test_ladder_order_is_the_cost_order():
    assert DEGRADATION_LEVELS == (NORMAL, SHED_NEW, STRICT_DURABILITY)


def test_ladder_climbs_one_rung_per_sample_and_descends_with_hysteresis():
    reset_ingest_stats()
    ladder = DegradationLadder(high_water=0.8, low_water=0.3)
    assert ladder.level == 0 and not ladder.degraded
    assert ladder.update(0.9) == 1          # one rung, not a jump
    assert ladder.name == SHED_NEW and ladder.degraded
    assert ladder.update(0.95) == 2
    assert ladder.name == STRICT_DURABILITY
    assert ladder.update(1.5) == 2          # already at the top
    assert ladder.update(0.5) == 2          # dead band: holds steady
    assert ladder.update(0.3) == 1          # at low water: descend
    assert ladder.update(0.5) == 1          # dead band again
    assert ladder.update(0.1) == 0
    assert ladder.update(0.0) == 0          # already at the floor
    assert ingest_stats().serve_degradations == 2


def test_ladder_force_jumps_and_clamps():
    reset_ingest_stats()
    ladder = DegradationLadder()
    assert ladder.force(2) == 2
    assert ingest_stats().serve_degradations == 1
    assert ladder.force(99) == 2            # clamped to the top rung
    assert ladder.force(-3) == 0            # clamped to the floor
    assert ingest_stats().serve_degradations == 1  # descent is free


def test_ladder_validates_watermarks():
    for high, low in [(0.3, 0.8), (0.8, 0.8), (1.2, 0.3), (0.8, 0.0)]:
        with pytest.raises(ConfigurationError):
            DegradationLadder(high_water=high, low_water=low)


# -- PeriodicJob ------------------------------------------------------------


def test_periodic_job_contains_failures_and_recovers():
    reset_ingest_stats()
    calls = []

    def flaky():
        calls.append(None)
        if len(calls) < 3:
            raise OSError("disk hiccup")

    job = PeriodicJob("gc", interval_s=60.0, fn=flaky,
                      retry=RetryPolicy(base_s=0.001, cap_s=0.002))
    assert job.tick() is False
    assert job.tick() is False
    assert job.failures == 2 and job.runs == 0
    assert "disk hiccup" in job.last_error
    assert ingest_stats().serve_retries == 2
    assert job.tick() is True               # third run succeeds
    assert job.runs == 1
    assert job.last_error is None
    stats = job.stats()
    assert stats["name"] == "gc" and stats["failures"] == 2


def test_periodic_job_runs_on_its_timer_and_stops():
    ran = []
    job = PeriodicJob("tick", interval_s=0.02, fn=lambda: ran.append(1))
    job.start()
    job.start()                             # idempotent
    deadline = time.monotonic() + 2.0
    while len(ran) < 2 and time.monotonic() < deadline:
        time.sleep(0.01)
    job.stop()
    job.stop()                              # idempotent
    assert len(ran) >= 2
    settled = len(ran)
    time.sleep(0.08)
    assert len(ran) == settled              # really stopped


def test_periodic_job_validates_interval():
    with pytest.raises(ConfigurationError):
        PeriodicJob("bad", interval_s=0.0, fn=lambda: None)
