"""The serve daemon end to end: bit-identity with the batch streaming
path, crash-recovering boots, shedding/degradation, deadline
quarantines, finalize retries, and graceful drains."""

import threading
import time

import numpy as np
import pytest

from repro.errors import ConfigurationError, ReproError
from repro.io import Recording
from repro.ingest import (
    ChunkJournal,
    DeviceFleet,
    FleetConfig,
    StreamingExecutor,
    chunk_recording,
)
from repro.ingest.stats import ingest_stats, reset_ingest_stats
from repro.serve import (
    ACCEPTING,
    DONE,
    QUARANTINED,
    DeadlinePolicy,
    RetryPolicy,
    ServeDaemon,
)

from tests.ingest.faults import SimulatedCrash, StalledSource

FLEET = FleetConfig(n_devices=4, duration_s=6.0, chunk_s=2.0, seed=7)


def _assert_sessions_identical(got, want):
    assert set(got) == set(want)
    for sid, reference in want.items():
        result = got[sid].result
        assert np.array_equal(result.icg, reference.result.icg)
        assert np.array_equal(result.r_peak_indices,
                              reference.result.r_peak_indices)
        assert np.array_equal(result.pep_s, reference.result.pep_s)
        assert np.array_equal(result.lvet_s, reference.result.lvet_s)
        assert result.z0_ohm == reference.result.z0_ohm
        assert result.hr_bpm == reference.result.hr_bpm


def _flat_chunks(session_id="flat-000", chunk_s=1.0):
    """A session whose finalize deterministically raises SignalError
    (all-zero ECG has no R peaks)."""
    n = 1000
    recording = Recording(250.0, {"ecg": np.zeros(n),
                                  "z": np.full(n, 25.0)})
    return list(chunk_recording(recording, session_id, chunk_s))


# -- the service path is the batch path ------------------------------------


def test_results_bit_identical_to_streaming_executor(tmp_path):
    reference = StreamingExecutor(n_workers=1,
                                  preview=False).run(DeviceFleet(FLEET))
    daemon = ServeDaemon(tmp_path, n_workers=1, health=False)
    results = daemon.run_once(DeviceFleet(FLEET))
    _assert_sessions_identical(results, reference)
    assert daemon.supervisor.all_terminal
    assert daemon.supervisor.counts()[DONE] == FLEET.n_devices


def test_crash_and_restart_recover_bit_identically(tmp_path):
    """SIGKILL (SimulatedCrash from the crash hook) mid-serve, then a
    fresh daemon on the same journal + the re-sent stream: results are
    bit-identical to the uninterrupted run."""
    reference = StreamingExecutor(n_workers=1,
                                  preview=False).run(DeviceFleet(FLEET))
    events = []

    def crash_ninth(stage, detail):
        events.append((stage, detail))
        if len(events) == 9:
            raise SimulatedCrash(f"crashed at {stage}")

    daemon = ServeDaemon(tmp_path, n_workers=1, health=False,
                         crash_hook=crash_ninth)
    with pytest.raises(SimulatedCrash):
        daemon.run_once(DeviceFleet(FLEET))

    # Restart: boot replays the journal; the device fleet re-sends its
    # streams (journaled seqs dedup idempotently).
    restarted = ServeDaemon(tmp_path, n_workers=1, health=False)
    results = restarted.run_once(DeviceFleet(FLEET))
    _assert_sessions_identical(results, reference)


def test_restart_without_resend_finalizes_whats_journaled(tmp_path):
    """Boot alone (no sources) finalizes every journal-complete
    session — boot *is* recovery."""
    reference = StreamingExecutor(n_workers=1,
                                  preview=False).run(DeviceFleet(FLEET))
    daemon = ServeDaemon(tmp_path, n_workers=1, health=False,
                         crash_hook=lambda s, d: (_ for _ in ()).throw(
                             SimulatedCrash(s)) if s == "drained" else None)
    with pytest.raises(SimulatedCrash):
        daemon.run_once(DeviceFleet(FLEET))

    restarted = ServeDaemon(tmp_path, n_workers=1, health=False)
    results = restarted.serve([])
    _assert_sessions_identical(results, reference)


# -- supervision of the live stream ----------------------------------------


def test_sequence_gap_quarantines_only_that_session(tmp_path):
    chunks = _flat_chunks(chunk_s=1.0)
    assert len(chunks) >= 3
    gapped = [chunks[0], chunks[2]]         # seq 1 lost in transport
    daemon = ServeDaemon(tmp_path, n_workers=1, health=False)
    results = daemon.serve([gapped])
    record = daemon.supervisor.get("flat-000")
    assert record.state == QUARANTINED
    assert "sequence gap" in record.reason
    assert results == {}


def test_stale_duplicate_chunks_are_idempotent(tmp_path):
    """Transport re-sends (seq below the watermark) are absorbed
    without disturbing the session."""
    fleet = FleetConfig(n_devices=1, duration_s=4.0, chunk_s=2.0, seed=5)
    reference = StreamingExecutor(n_workers=1,
                                  preview=False).run(DeviceFleet(fleet))
    chunks = list(DeviceFleet(fleet))
    noisy = [chunks[0], chunks[0], chunks[1], chunks[0]] + chunks[1:]
    daemon = ServeDaemon(tmp_path, n_workers=1, health=False)
    results = daemon.serve([noisy])
    _assert_sessions_identical(results, reference)


def test_stalled_source_quarantined_while_neighbour_completes(tmp_path):
    """A silent device trips the chunk deadline and is quarantined
    alone; its healthy neighbour still reaches DONE."""
    reset_ingest_stats()
    fleet = FleetConfig(n_devices=2, duration_s=4.0, chunk_s=2.0, seed=9)
    chunks = list(DeviceFleet(fleet))
    stalled_sid, healthy_sid = "device-000", "device-001"
    stalled = StalledSource(
        [c for c in chunks if c.session_id == stalled_sid],
        yield_chunks=1)
    healthy = [c for c in chunks if c.session_id == healthy_sid]
    daemon = ServeDaemon(
        tmp_path, n_workers=1, health=False,
        deadline=DeadlinePolicy(chunk_deadline_s=0.2))
    thread = threading.Thread(target=daemon.serve,
                              args=([stalled, healthy],), daemon=True)
    thread.start()
    deadline = time.monotonic() + 20.0
    while time.monotonic() < deadline:
        record = daemon.supervisor.get(stalled_sid)
        if record is not None and record.state == QUARANTINED:
            break
        time.sleep(0.02)
    stalled.release()
    daemon.stop()
    thread.join(timeout=20.0)
    assert not thread.is_alive()
    assert daemon.supervisor.get(stalled_sid).state == QUARANTINED
    assert "stalled source" in daemon.supervisor.get(stalled_sid).reason
    assert daemon.supervisor.get(healthy_sid).state == DONE
    assert healthy_sid in daemon.results
    assert ingest_stats().serve_deadline_hits >= 1


def test_finalize_failure_retries_then_quarantines(tmp_path):
    """A deterministically failing finalize (flat ECG -> SignalError)
    burns the retry budget and quarantines the session; the daemon
    survives."""
    reset_ingest_stats()
    daemon = ServeDaemon(
        tmp_path, n_workers=1, health=False,
        retry=RetryPolicy(max_attempts=2, base_s=0.001, cap_s=0.002))
    results = daemon.serve([_flat_chunks()])
    record = daemon.supervisor.get("flat-000")
    assert record.state == QUARANTINED
    assert "finalize failed after 2 attempts" in record.reason
    assert "SignalError" in record.reason or "peak" in record.reason.lower()
    assert results == {}
    assert ingest_stats().serve_retries >= 1


def test_source_exception_is_contained(tmp_path):
    """A source that raises takes down neither the service nor its
    neighbours."""
    fleet = FleetConfig(n_devices=2, duration_s=4.0, chunk_s=2.0, seed=13)
    chunks = list(DeviceFleet(fleet))
    healthy = [c for c in chunks if c.session_id == "device-001"]

    def dying():
        raise OSError("device link dropped")
        yield  # pragma: no cover

    daemon = ServeDaemon(tmp_path, n_workers=1, health=False)
    results = daemon.serve([dying(), healthy])
    assert "device-001" in results
    assert len(daemon.source_errors) == 1
    assert isinstance(daemon.source_errors[0], OSError)


# -- degradation and shedding (white box) ----------------------------------


def _idle_daemon(tmp_path, **kwargs):
    """A daemon with its journal open but no serve loop — the unit
    surface for the consume path."""
    daemon = ServeDaemon(tmp_path, n_workers=1, health=False, **kwargs)
    daemon.journal = ChunkJournal(tmp_path,
                                  durability=daemon.configured_durability)
    return daemon


def test_shed_new_rejects_only_unjournaled_sessions(tmp_path):
    reset_ingest_stats()
    daemon = _idle_daemon(tmp_path)
    known = _flat_chunks("known-000", chunk_s=0.5)
    fresh = _flat_chunks("fresh-000", chunk_s=0.5)
    daemon._consume(known[0], None, live=True)   # admitted at NORMAL
    daemon.ladder.force(1)                       # overload: SHED_NEW
    daemon._consume(fresh[0], None, live=True)
    assert "fresh-000" in daemon._shed
    assert "fresh-000" not in daemon.supervisor
    assert ingest_stats().serve_sheds == 1
    # Later chunks of a shed session stay shed (one counter hit).
    daemon._consume(fresh[1], None, live=True)
    assert ingest_stats().serve_sheds == 1
    # The journaled session keeps flowing through the same overload.
    daemon._consume(known[1], None, live=True)
    assert daemon.supervisor.get("known-000").n_chunks == 2
    # Replayed chunks are never shed (their durability promise holds).
    daemon.journal.close()


def test_shed_spares_sessions_journaled_by_a_previous_run(tmp_path):
    """A session with chunks on disk but not yet supervised (mid-boot
    arrival) is admitted even under SHED_NEW: anything journaled is a
    promise already made."""
    chunks = _flat_chunks("old-000", chunk_s=0.5)
    with ChunkJournal(tmp_path) as journal:
        journal.append(chunks[0])
    daemon = _idle_daemon(tmp_path)
    daemon.ladder.force(1)
    daemon._consume(chunks[1], None, live=True)
    assert "old-000" not in daemon._shed
    assert "old-000" in daemon.supervisor
    daemon.journal.close()


def test_overload_forces_strict_durability_then_restores(tmp_path):
    daemon = _idle_daemon(tmp_path, durability="group")
    assert daemon.journal.durability == "group"
    daemon._update_degradation(daemon.max_chunks)    # pressure 1.0
    assert daemon.ladder.level == 1                  # one rung per sample
    assert daemon.journal.durability == "group"
    daemon._update_degradation(daemon.max_chunks)
    assert daemon.ladder.level == 2
    assert daemon.journal.durability == "strict"
    daemon._update_degradation(0)                    # pressure cleared
    assert daemon.ladder.level == 1
    assert daemon.journal.durability == "group"
    daemon.journal.close()


# -- graceful drain --------------------------------------------------------


def test_graceful_stop_preserves_open_sessions_for_the_next_boot(tmp_path):
    """SIGTERM-style drain: the open session's journaled chunks stay
    on disk undamaged, and a later boot + re-send completes it
    bit-identically."""
    fleet = FleetConfig(n_devices=1, duration_s=6.0, chunk_s=2.0, seed=21)
    reference = StreamingExecutor(n_workers=1,
                                  preview=False).run(DeviceFleet(fleet))
    chunks = list(DeviceFleet(fleet))
    stalled = StalledSource(chunks, yield_chunks=1)
    daemon = ServeDaemon(tmp_path, n_workers=1, health=False)
    thread = threading.Thread(target=daemon.serve,
                              args=([stalled],), daemon=True)
    thread.start()
    assert stalled.stalled.wait(timeout=10.0)
    deadline = time.monotonic() + 10.0
    while (daemon.supervisor.get("device-000") is None
           and time.monotonic() < deadline):
        time.sleep(0.01)
    daemon.stop()
    thread.join(timeout=10.0)
    assert not thread.is_alive()
    record = daemon.supervisor.get("device-000")
    assert record.state == ACCEPTING        # still open, still journaled
    assert record.n_chunks == 1

    # Zero journal damage: a fresh scan sees one open, healthy session.
    with ChunkJournal(tmp_path) as journal:
        scan = journal.last_scan
        assert not scan.damaged
        assert journal.next_seq("device-000") == 1

    restarted = ServeDaemon(tmp_path, n_workers=1, health=False)
    results = restarted.run_once(chunks)    # device re-sends everything
    _assert_sessions_identical(results, reference)


def test_serve_rejects_reentry_and_validates_config(tmp_path):
    with pytest.raises(ConfigurationError):
        ServeDaemon(tmp_path, durability="yolo")
    with pytest.raises(ConfigurationError):
        ServeDaemon(tmp_path, archive_interval_s=5.0)
    daemon = ServeDaemon(tmp_path, n_workers=1, health=False)
    daemon._state = "serving"
    with pytest.raises(ReproError):
        daemon.serve([])
    daemon._state = "idle"


# -- supervised maintenance ------------------------------------------------


def test_gc_and_archive_ticks_keep_the_journal_usable(tmp_path):
    """Maintenance sweeps run against the live journal: GC closes,
    sweeps and reopens (same durability); archive flushes then copies;
    appends keep working afterwards."""
    archive_dir = tmp_path / "cold"
    daemon = ServeDaemon(tmp_path, n_workers=1, health=False,
                         durability="group", archive_dir=archive_dir)
    results = daemon.run_once(DeviceFleet(
        FleetConfig(n_devices=1, duration_s=4.0, chunk_s=2.0, seed=2)))
    assert results

    daemon.journal = ChunkJournal(tmp_path, durability="group")
    daemon._archive_tick()
    assert any(archive_dir.iterdir())
    daemon._gc_tick()
    assert not daemon.journal.closed
    assert daemon.journal.durability == "group"
    extra = _flat_chunks("post-gc-000", chunk_s=0.5)
    assert daemon.journal.append(extra[0])
    daemon.journal.close()

    # Ticks against a closed journal are clean no-ops (the drained
    # daemon's timers may fire once more before they stop).
    daemon._gc_tick()
    daemon._archive_tick()
