"""Daemon soak: the acceptance-criterion fleet (8 devices x 3 rounds
with churn) under crash sweeps, SIGTERM-style drains, overload
degradation, and a poisoned finalize worker.

Marked ``soak``: CI runs these in the dedicated hard-timeout soak job
(the main matrix excludes them), but they are plain pytest and run in
the full local suite too.
"""

import os
import signal
import threading
import time
import warnings

import numpy as np
import pytest

from repro.errors import ReproError
from repro.ingest import (
    ChunkJournal,
    DeviceFleet,
    FleetConfig,
    StreamingExecutor,
)
from repro.serve import QUARANTINED, DeadlinePolicy, ServeDaemon, read_status

from tests.ingest.faults import SimulatedCrash, StalledSource

pytestmark = pytest.mark.soak

#: The acceptance-criterion fleet, as in tests/ingest/test_recovery.py.
ACCEPTANCE = FleetConfig(n_devices=8, duration_s=8.0, chunk_s=2.0,
                         seed=42, n_rounds=3, round_gap_s=2.0,
                         dropout=0.25, rejoin=True)

_CACHE = {}


def _acceptance_fleet():
    if "fleet" not in _CACHE:
        _CACHE["fleet"] = DeviceFleet(ACCEPTANCE)
    return _CACHE["fleet"]


def _reference():
    if "reference" not in _CACHE:
        _CACHE["reference"] = StreamingExecutor(
            n_workers=1, preview=False).run(_acceptance_fleet())
    return _CACHE["reference"]


def _assert_sessions_identical(got, want):
    assert want                             # a vacuous pass hides bugs
    assert set(got) == set(want)
    for sid, reference in want.items():
        result = got[sid].result
        assert np.array_equal(result.icg, reference.result.icg)
        assert np.array_equal(result.r_peak_indices,
                              reference.result.r_peak_indices)
        assert np.array_equal(result.pep_s, reference.result.pep_s)
        assert np.array_equal(result.lvet_s, reference.result.lvet_s)
        assert result.z0_ohm == reference.result.z0_ohm
        assert result.hr_bpm == reference.result.hr_bpm


@pytest.mark.parametrize("crash_after", [5, 31, 83])
def test_crash_point_sweep_recovers_bit_identically(tmp_path,
                                                    crash_after):
    """SIGKILL the daemon at an arbitrary durable event (early boot,
    mid-stream, deep into finalizes); a fresh daemon on the same
    journal plus the re-sent streams recovers bit-identically to the
    uninterrupted run."""
    reference = _reference()
    count = [0]

    def crash_hook(stage, detail):
        count[0] += 1
        if count[0] == crash_after:
            raise SimulatedCrash(f"killed at event {crash_after} "
                                 f"({stage} {detail})")

    daemon = ServeDaemon(tmp_path, n_workers=1, health=False,
                         crash_hook=crash_hook)
    with pytest.raises(SimulatedCrash):
        daemon.run_once(_acceptance_fleet())

    restarted = ServeDaemon(tmp_path, n_workers=1, health=False)
    results = restarted.run_once(_acceptance_fleet())
    _assert_sessions_identical(results, reference)


def test_sigterm_drain_mid_fleet_is_zero_damage(tmp_path):
    """Stop the daemon while the fleet is mid-stream: the drain exits
    cleanly, the journal scans with zero damage, and a restart plus
    re-send completes bit-identically."""
    reference = _reference()
    daemon = ServeDaemon(tmp_path, n_workers=1, health=False)
    served_enough = threading.Event()
    n_live = [0]

    def watch_hook(stage, detail):
        if stage == "journaled":
            n_live[0] += 1
            if n_live[0] >= 20:
                served_enough.set()

    daemon.crash_hook = watch_hook
    thread = threading.Thread(target=daemon.run_once,
                              args=(_acceptance_fleet(),), daemon=True)
    thread.start()
    assert served_enough.wait(timeout=60.0)
    daemon.stop()                           # what the CLI's SIGTERM does
    thread.join(timeout=60.0)
    assert not thread.is_alive()

    with ChunkJournal(tmp_path) as journal:
        assert not journal.last_scan.damaged

    restarted = ServeDaemon(tmp_path, n_workers=1, health=False)
    results = restarted.run_once(_acceptance_fleet())
    _assert_sessions_identical(results, reference)


def test_stalled_device_in_the_fleet_does_not_block_the_rest(tmp_path):
    """One device of the fleet goes silent mid-round; the deadline
    quarantines exactly its session while every other session reaches
    the reference result."""
    reference = _reference()
    chunks = list(_acceptance_fleet())
    stalled_sid = sorted({c.session_id for c in chunks})[0]
    stalled = StalledSource(
        [c for c in chunks if c.session_id == stalled_sid],
        yield_chunks=1)
    rest = [c for c in chunks if c.session_id != stalled_sid]
    daemon = ServeDaemon(tmp_path, n_workers=1, health=False,
                         deadline=DeadlinePolicy(chunk_deadline_s=0.5))
    thread = threading.Thread(target=daemon.serve,
                              args=([stalled, rest],), daemon=True)
    thread.start()
    deadline = time.monotonic() + 120.0
    while time.monotonic() < deadline:
        record = daemon.supervisor.get(stalled_sid)
        if (record is not None and record.state == QUARANTINED
                and set(daemon.results) >= set(reference) - {stalled_sid}):
            break
        time.sleep(0.05)
    stalled.release()
    daemon.stop()
    thread.join(timeout=60.0)
    assert not thread.is_alive()
    assert daemon.supervisor.get(stalled_sid).state == QUARANTINED
    assert "stalled source" in daemon.supervisor.get(stalled_sid).reason
    want = {sid: r for sid, r in reference.items() if sid != stalled_sid}
    _assert_sessions_identical(daemon.results, want)


def test_poisoned_finalize_worker_then_restart_is_bit_identical(tmp_path):
    """SIGKILL a warm finalize worker under the process backend.  The
    run either degrades in place (BrokenProcessPool -> parent rerun)
    or dies like any crash — either way a restart recovers the full
    reference results."""
    from repro.core.executor import (
        _discard_persistent_pool,
        persistent_pool_stats,
        persistent_process_pool,
    )
    from tests.ingest.faults import kill_worker_job

    reference = _reference()
    _discard_persistent_pool(wait=True)
    try:
        with persistent_process_pool(2) as pool:
            pool.submit(kill_worker_job, "warm").result()
        pids = persistent_pool_stats()["pids"]
        assert pids, "warm pool has no workers to kill"
        os.kill(pids[0], signal.SIGKILL)

        daemon = ServeDaemon(tmp_path, n_workers=2,
                             finalize_backend="process", health=False)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            try:
                results = daemon.run_once(_acceptance_fleet())
            except Exception:
                results = None              # the pool break killed the run
        if results is None or set(results) != set(reference):
            restarted = ServeDaemon(tmp_path, n_workers=1, health=False)
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", RuntimeWarning)
                results = restarted.run_once(_acceptance_fleet())
        _assert_sessions_identical(results, reference)
    finally:
        _discard_persistent_pool(wait=True)


def test_status_socket_reports_degradation_under_overload(tmp_path):
    """The acceptance smoke for the health endpoint: a degraded daemon
    answers ``ok: false`` with the ladder's level over its socket."""
    source = StalledSource(
        DeviceFleet(FleetConfig(n_devices=1, duration_s=4.0,
                                chunk_s=2.0, seed=6)),
        yield_chunks=1)
    daemon = ServeDaemon(tmp_path, n_workers=1)
    thread = threading.Thread(target=daemon.serve,
                              args=([source],), daemon=True)
    thread.start()
    assert source.stalled.wait(timeout=30.0)
    deadline = time.monotonic() + 30.0
    while daemon._state != "serving" and time.monotonic() < deadline:
        time.sleep(0.01)
    assert read_status(daemon.socket_path)["ok"] is True

    daemon.ladder.force(1)                  # overload: shed new sessions
    doc = None
    deadline = time.monotonic() + 30.0
    while time.monotonic() < deadline:
        try:
            doc = read_status(daemon.socket_path)
            break
        except ReproError:
            time.sleep(0.05)
    assert doc is not None
    assert doc["ok"] is False
    assert doc["degradation"] == {"level": 1, "name": "shed-new"}

    source.release()
    daemon.stop()
    thread.join(timeout=30.0)
    assert not thread.is_alive()
