"""Health endpoint: unix-socket round trips, failure answers, and the
live daemon's status document."""

import threading
import time

import pytest

from repro.errors import ReproError
from repro.ingest import DeviceFleet, FleetConfig
from repro.serve import HealthServer, ServeDaemon, read_status

from tests.ingest.faults import StalledSource


def test_round_trip(tmp_path):
    path = tmp_path / "health.sock"
    server = HealthServer(path, lambda: {"ok": True, "answer": 42})
    server.start()
    try:
        doc = read_status(path)
        assert doc == {"ok": True, "answer": 42}
        # Each connection gets a fresh document.
        assert read_status(path)["answer"] == 42
    finally:
        server.stop()
    assert not path.exists()


def test_snapshot_failure_answers_not_ok(tmp_path):
    path = tmp_path / "health.sock"

    def broken():
        raise RuntimeError("snapshot exploded")

    server = HealthServer(path, broken).start()
    try:
        doc = read_status(path)
        assert doc["ok"] is False
        assert "snapshot exploded" in doc["error"]
    finally:
        server.stop()


def test_read_status_without_a_daemon_raises(tmp_path):
    with pytest.raises(ReproError):
        read_status(tmp_path / "nobody.sock")


def test_stale_socket_file_is_reclaimed(tmp_path):
    """A socket file left by a SIGKILLed daemon must not block the
    next boot's bind."""
    path = tmp_path / "health.sock"
    HealthServer(path, lambda: {"ok": True}).start().stop()
    path.touch()                            # simulate the stale leftover
    server = HealthServer(path, lambda: {"ok": True, "boot": 2}).start()
    try:
        assert read_status(path)["boot"] == 2
    finally:
        server.stop()


def test_live_daemon_answers_on_its_journal_socket(tmp_path):
    """While serving, the daemon's ``serve.sock`` answers with the
    supervisor's and ladder's live numbers."""
    source = StalledSource(
        DeviceFleet(FleetConfig(n_devices=1, duration_s=4.0,
                                chunk_s=2.0, seed=3)),
        yield_chunks=1)
    daemon = ServeDaemon(tmp_path, n_workers=1)
    thread = threading.Thread(target=daemon.serve,
                              args=([source],), daemon=True)
    thread.start()
    assert source.stalled.wait(timeout=10.0)
    deadline = time.monotonic() + 10.0
    doc = None
    while time.monotonic() < deadline:
        try:
            doc = read_status(daemon.socket_path)
            if doc["sessions"]["counts"]["accepting"] >= 1:
                break
        except ReproError:
            pass
        time.sleep(0.02)
    assert doc is not None
    assert doc["ok"] is True
    assert doc["state"] == "serving"
    assert doc["degradation"] == {"level": 0, "name": "normal"}
    assert len(doc["journal"]["open_sessions"]) >= 1
    assert "serve_sessions_accepted" in doc["stats"]

    source.release()
    daemon.stop()
    thread.join(timeout=10.0)
    assert not thread.is_alive()
    # The socket file is gone once the daemon exits.
    assert not daemon.socket_path.exists()
    with pytest.raises(ReproError):
        read_status(daemon.socket_path)
