"""Streaming kernels equal their offline counterparts."""

import numpy as np
import pytest

from repro.dsp import fir as fir_mod
from repro.dsp import iir as iir_mod
from repro.dsp import morphology
from repro.errors import ConfigurationError
from repro.rt import streaming

FS = 250.0


def _stream(kernel, x):
    return np.array([kernel.process(v) for v in x])


def test_streaming_fir_equals_offline():
    taps = fir_mod.design_bandpass(32, 0.05, 40.0, FS)
    x = np.random.default_rng(0).normal(size=400)
    offline = fir_mod.apply_fir(taps, x)
    online = _stream(streaming.StreamingFir(taps), x)
    assert np.allclose(online, offline, atol=1e-10)


def test_streaming_fir_delay_property():
    taps = fir_mod.design_lowpass(32, 30.0, FS)
    assert streaming.StreamingFir(taps).delay_samples == 16.0


def test_streaming_biquad_equals_offline():
    sos = iir_mod.butter_lowpass(4, 20.0, FS)
    x = np.random.default_rng(1).normal(size=400)
    offline = iir_mod.sosfilt(sos, x)
    online = _stream(streaming.StreamingBiquadCascade(sos), x)
    assert np.allclose(online, offline, atol=1e-10)


def test_streaming_biquad_validates_sos():
    with pytest.raises(ConfigurationError):
        streaming.StreamingBiquadCascade(np.ones((2, 5)))
    bad = iir_mod.butter_lowpass(2, 20.0, FS).copy()
    bad[0, 3] = 2.0
    with pytest.raises(ConfigurationError):
        streaming.StreamingBiquadCascade(bad)


def test_moving_window_integrator_equals_convolution():
    width = 37
    x = np.random.default_rng(2).normal(size=300)
    kernel = np.ones(width) / width
    offline = np.convolve(x, kernel, mode="full")[: x.size]
    online = _stream(streaming.MovingWindowIntegrator(width), x)
    assert np.allclose(online, offline, atol=1e-10)


def test_streaming_extreme_equals_offline_morphology():
    """Lemire wedge output equals erosion/dilation up to the centring
    delay of the offline (centred) operator."""
    size = 9
    x = np.random.default_rng(3).normal(size=200)
    eroded = morphology.erode(x, size)
    dilated = morphology.dilate(x, size)
    stream_min = _stream(streaming.StreamingExtreme(size, "min"), x)
    stream_max = _stream(streaming.StreamingExtreme(size, "max"), x)
    delay = size // 2
    # Causal output at n covers window [n-size+1, n]; centred output at
    # n-delay covers the same window.
    assert np.allclose(stream_min[size - 1:], eroded[delay: x.size - delay])
    assert np.allclose(stream_max[size - 1:], dilated[delay: x.size - delay])


def test_streaming_morphology_baseline_tracks_offline():
    fs = FS
    t = np.arange(int(8 * fs)) / fs
    signal = 0.5 * np.sin(2 * np.pi * 0.2 * t)
    for centre in np.arange(0.5, 7.5, 0.8):
        signal += np.exp(-((t - centre) ** 2) / (2 * 0.01**2))
    first, second = morphology.default_element_lengths(fs)
    offline = morphology.estimate_baseline(signal, fs)
    kernel = streaming.StreamingMorphologyBaseline(first, second)
    online = _stream(kernel, signal)
    delay = int(kernel.delay_samples)
    aligned = online[delay:]
    reference = offline[: aligned.size]
    inner = slice(int(fs), aligned.size - int(fs))
    assert np.sqrt(np.mean((aligned[inner] - reference[inner])**2)) < 0.08


def test_streaming_derivative_matches_stencil():
    x = np.random.default_rng(4).normal(size=50)
    online = _stream(streaming.StreamingDerivative(), x)
    padded = np.concatenate([np.zeros(4), x])
    expected = (2 * padded[4:] + padded[3:-1] - padded[1:-3]
                - 2 * padded[:-4]) / 8.0
    assert np.allclose(online, expected)


def test_streaming_square():
    kernel = streaming.StreamingSquare()
    assert kernel.process(-3.0) == 9.0
    assert kernel.process(0.5) == 0.25


def test_every_kernel_reports_ops():
    taps = fir_mod.design_lowpass(32, 30.0, FS)
    sos = iir_mod.butter_lowpass(4, 20.0, FS)
    kernels = [
        streaming.StreamingFir(taps),
        streaming.StreamingBiquadCascade(sos),
        streaming.MovingWindowIntegrator(37),
        streaming.StreamingExtreme(9, "min"),
        streaming.StreamingMorphologyBaseline(9, 13),
        streaming.StreamingDerivative(),
        streaming.StreamingSquare(),
    ]
    for kernel in kernels:
        ops = kernel.ops_per_sample()
        assert ops.total() > 0


def test_fir_ops_scale_with_taps():
    few = streaming.StreamingFir(np.ones(8)).ops_per_sample()
    many = streaming.StreamingFir(np.ones(64)).ops_per_sample()
    assert many.mac == 8 * few.mac


def test_extreme_invalid_mode():
    with pytest.raises(ConfigurationError):
        streaming.StreamingExtreme(5, "median")
    with pytest.raises(ConfigurationError):
        streaming.StreamingExtreme(0, "min")


def test_integrator_invalid_width():
    with pytest.raises(ConfigurationError):
        streaming.MovingWindowIntegrator(0)
