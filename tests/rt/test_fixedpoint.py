"""Q-format fixed point: round-trips, saturation, DSP-op semantics."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError
from repro.rt import fixedpoint as fp


@settings(max_examples=100)
@given(x=st.floats(min_value=-0.999, max_value=0.999),
       q=st.sampled_from([7, 15, 31]))
def test_roundtrip_error_bounded(x, q):
    recovered = float(fp.quantize(x, q))
    assert abs(recovered - x) <= 2.0**-q


def test_saturation_at_bounds():
    assert fp.to_fixed(1.5, fp.Q15) == 2**15 - 1
    assert fp.to_fixed(-1.5, fp.Q15) == -(2**15)
    assert float(fp.from_fixed(fp.to_fixed(1.5, fp.Q15), fp.Q15)) < 1.0


@settings(max_examples=60)
@given(x=st.floats(-0.99, 0.99), y=st.floats(-0.99, 0.99))
def test_quantize_monotone(x, y):
    if x <= y:
        assert fp.quantize(x, fp.Q15) <= fp.quantize(y, fp.Q15)


def test_array_conversion():
    values = np.array([-0.5, 0.0, 0.25])
    fixed = fp.to_fixed(values, fp.Q15)
    assert fixed.dtype == np.int64
    assert np.allclose(fp.from_fixed(fixed, fp.Q15), values, atol=2**-15)


def test_saturating_add():
    near_max = 2**15 - 10
    assert fp.saturating_add(near_max, 100, fp.Q15) == 2**15 - 1
    assert fp.saturating_add(-(2**15) + 5, -100, fp.Q15) == -(2**15)
    assert fp.saturating_add(100, 200, fp.Q15) == 300


@settings(max_examples=60)
@given(a=st.floats(-0.9, 0.9), b=st.floats(-0.9, 0.9))
def test_saturating_multiply_approximates_product(a, b):
    fa, fb = fp.to_fixed(a, fp.Q15), fp.to_fixed(b, fp.Q15)
    product = fp.from_fixed(fp.saturating_multiply(int(fa), int(fb),
                                                   fp.Q15), fp.Q15)
    assert float(product) == pytest.approx(a * b, abs=3 * 2.0**-15)


def test_multiply_saturates():
    big = fp.to_fixed(0.999, fp.Q15)
    # 0.999 * 0.999 fits; -1 * -1 would overflow to +1 which saturates.
    min_val = -(2**15)
    assert fp.saturating_multiply(min_val, min_val, fp.Q15) == 2**15 - 1


def test_q15_filter_accuracy_on_paper_fir():
    """Quantizing the paper's FIR taps to Q15 keeps the response
    close: max tap error bounded by one LSB."""
    from repro.dsp.fir import design_bandpass
    taps = design_bandpass(32, 0.05, 40.0, 250.0)
    scale = np.abs(taps).max() * 1.01
    quantized = fp.quantize(taps / scale, fp.Q15) * scale
    assert np.max(np.abs(quantized - taps)) <= scale * 2.0**-15 + 1e-12


def test_invalid_q_rejected():
    with pytest.raises(ConfigurationError):
        fp.to_fixed(0.5, 0)
    with pytest.raises(ConfigurationError):
        fp.to_fixed(0.5, 63)
    with pytest.raises(ConfigurationError):
        fp.saturating_add(1, 2, -1)
