"""Streaming detectors vs offline references."""

import numpy as np
import pytest

from repro.ecg import detect_r_peaks, preprocess_ecg
from repro.errors import ConfigurationError
from repro.icg.preprocessing import icg_from_impedance
from repro.rt import detectors


def test_streaming_pan_tompkins_finds_beats(clean_recording):
    rec = clean_recording
    ecg = preprocess_ecg(rec.channel("ecg"), rec.fs)
    detector = detectors.StreamingPanTompkins(rec.fs)
    found = [r for r in (detector.process(v) for v in ecg)
             if r is not None]
    truth = rec.annotation("r_times_s")
    detected_s = np.asarray(found) / rec.fs
    hits = sum(1 for t in truth
               if np.any(np.abs(detected_s - t) < 0.08))
    assert hits >= truth.size - 2
    false_pos = sum(1 for ds in detected_s
                    if not np.any(np.abs(truth - ds) < 0.08))
    assert false_pos <= 1


def test_streaming_close_to_offline_detector(clean_recording):
    rec = clean_recording
    ecg = preprocess_ecg(rec.channel("ecg"), rec.fs)
    offline = detect_r_peaks(ecg, rec.fs) / rec.fs
    detector = detectors.StreamingPanTompkins(rec.fs)
    online = np.asarray([r for r in (detector.process(v) for v in ecg)
                         if r is not None]) / rec.fs
    for peak in online:
        assert np.min(np.abs(offline - peak)) < 0.06


def test_streaming_pt_needs_reasonable_fs():
    with pytest.raises(ConfigurationError):
        detectors.StreamingPanTompkins(30.0)


def test_icg_conditioner_matches_offline_shape(clean_recording):
    """Causal chain vs zero-phase: same waveform after alignment
    (small residual from nonlinear phase).  Alignment is found by
    cross-correlation — ``delay_samples`` is calibrated for the B
    landmark specifically, not for bulk waveform alignment."""
    rec = clean_recording
    z = rec.channel("z")
    offline = icg_from_impedance(z, rec.fs)
    conditioner = detectors.StreamingIcgConditioner(rec.fs)
    online = np.array([conditioner.process(v) for v in z])
    best = -1.0
    for lag in range(0, 16):
        aligned = online[lag:]
        reference = offline[: aligned.size]
        inner = slice(int(2 * rec.fs), aligned.size - int(2 * rec.fs))
        best = max(best, np.corrcoef(aligned[inner],
                                     reference[inner])[0, 1])
    # Causal 4th-order filtering smears the asymmetric C wave, so the
    # agreement is high but not perfect — exactly what real embedded
    # implementations see against offline zero-phase references.
    assert best > 0.85


def test_icg_conditioner_delay_is_b_point_calibrated():
    """The advertised delay makes the causal chain's detected B agree
    with the offline chain's on a canonical beat (by construction)."""
    conditioner = detectors.StreamingIcgConditioner(250.0)
    assert 0.0 <= conditioner.delay_samples <= 15.0


def test_beat_processor_analyses_completed_beats(clean_recording):
    rec = clean_recording
    z = rec.channel("z")
    conditioner = detectors.StreamingIcgConditioner(rec.fs)
    processor = detectors.StreamingBeatProcessor(rec.fs)
    r_truth = (rec.annotation("r_times_s") * rec.fs).astype(int)
    delay = int(round(conditioner.delay_samples))
    r_cursor = 0
    for n, sample in enumerate(z):
        processor.push_icg(conditioner.process(sample))
        # Announce R peaks as the firmware would (with a small lag).
        if r_cursor < r_truth.size and n == r_truth[r_cursor] + 40:
            processor.on_r_peak(int(r_truth[r_cursor]) + delay)
            r_cursor += 1
    assert len(processor.beats) >= r_truth.size - 3
    for points, r_start, r_stop in processor.beats:
        assert 0.04 < points.pep_s(rec.fs) < 0.25
        assert 0.15 < points.lvet_s(rec.fs) < 0.45


def test_beat_processor_buffer_overflow_reported(clean_recording):
    """Beats older than the buffer produce failures, not crashes."""
    rec = clean_recording
    processor = detectors.StreamingBeatProcessor(rec.fs, buffer_s=1.0)
    for value in rec.channel("z")[: int(3 * rec.fs)]:
        processor.push_icg(value)
    processor.on_r_peak(0)
    processor.on_r_peak(int(0.9 * rec.fs))
    # Window [0, 225] fell out of the 250-sample buffer by now? push
    # more samples to trigger deferred analysis.
    processor.push_icg(0.0)
    assert processor.failures or processor.beats


def test_beat_processor_rejects_negative_r():
    processor = detectors.StreamingBeatProcessor(250.0)
    with pytest.raises(ConfigurationError):
        processor.on_r_peak(-5)


def test_ops_reported():
    pt = detectors.StreamingPanTompkins(250.0)
    cond = detectors.StreamingIcgConditioner(250.0)
    proc = detectors.StreamingBeatProcessor(250.0)
    assert pt.ops_per_sample().total() > 0
    assert cond.ops_per_sample().total() > 0
    assert proc.ops_per_beat_sample().mac >= 33
