"""Ring buffer: FIFO semantics, model-based property test."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError, SignalError
from repro.rt.ringbuffer import RingBuffer


def test_push_and_recent():
    buffer = RingBuffer(4)
    for value in (1.0, 2.0, 3.0):
        buffer.push(value)
    assert len(buffer) == 3
    assert np.allclose(buffer.recent(3), [1.0, 2.0, 3.0])
    assert np.allclose(buffer.recent(2), [2.0, 3.0])


def test_wraparound_evicts_oldest():
    buffer = RingBuffer(3)
    buffer.extend([1, 2, 3, 4, 5])
    assert len(buffer) == 3
    assert buffer.is_full
    assert np.allclose(buffer.recent(3), [3.0, 4.0, 5.0])
    assert buffer.total_pushed == 5


def test_age_indexing():
    buffer = RingBuffer(5)
    buffer.extend([10, 20, 30])
    assert buffer[0] == 30.0
    assert buffer[1] == 20.0
    assert buffer[2] == 10.0


def test_age_beyond_window_rejected():
    buffer = RingBuffer(5)
    buffer.push(1.0)
    with pytest.raises(SignalError):
        buffer[1]
    with pytest.raises(SignalError):
        buffer[-1]


def test_over_read_rejected():
    buffer = RingBuffer(5)
    buffer.extend([1, 2])
    with pytest.raises(SignalError):
        buffer.recent(3)


def test_recent_zero_is_empty():
    buffer = RingBuffer(3)
    buffer.push(1.0)
    assert buffer.recent(0).size == 0


def test_clear_resets_window_not_counter():
    buffer = RingBuffer(3)
    buffer.extend([1, 2, 3])
    buffer.clear()
    assert len(buffer) == 0
    assert buffer.total_pushed == 3


def test_invalid_capacity():
    with pytest.raises(ConfigurationError):
        RingBuffer(0)
    with pytest.raises(ConfigurationError):
        RingBuffer(-1)


@settings(max_examples=60)
@given(capacity=st.integers(min_value=1, max_value=16),
       values=st.lists(st.floats(-1e6, 1e6, allow_nan=False),
                       min_size=0, max_size=80))
def test_model_based_fifo(capacity, values):
    """The ring buffer behaves exactly like a bounded list tail."""
    buffer = RingBuffer(capacity)
    model: list = []
    for value in values:
        buffer.push(value)
        model.append(value)
        tail = model[-capacity:]
        assert len(buffer) == len(tail)
        assert np.allclose(buffer.recent(len(tail)), tail)
        for age in range(len(tail)):
            assert buffer[age] == tail[-1 - age]
