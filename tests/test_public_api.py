"""Public API contract: exports resolve, everything is documented.

These guards keep the library honest as it grows: every name in an
``__all__`` must exist, every public callable must carry a docstring,
and the top-level convenience surface must stay importable.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro

ALL_MODULES = [m.name for m in pkgutil.walk_packages(repro.__path__,
                                                     "repro.")]


def test_version_string():
    parts = repro.__version__.split(".")
    assert len(parts) == 3
    assert all(p.isdigit() for p in parts)


@pytest.mark.parametrize("module_name", ALL_MODULES)
def test_module_imports(module_name):
    importlib.import_module(module_name)


@pytest.mark.parametrize("module_name", ALL_MODULES)
def test_all_exports_resolve(module_name):
    module = importlib.import_module(module_name)
    for name in getattr(module, "__all__", []):
        assert hasattr(module, name), f"{module_name}.{name} missing"


@pytest.mark.parametrize("module_name", ALL_MODULES)
def test_public_callables_documented(module_name):
    module = importlib.import_module(module_name)
    undocumented = [
        name for name in getattr(module, "__all__", [])
        if callable(getattr(module, name, None))
        and not inspect.getdoc(getattr(module, name))
    ]
    assert not undocumented, f"{module_name}: {undocumented}"


@pytest.mark.parametrize("module_name", ALL_MODULES)
def test_modules_have_docstrings(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__, f"{module_name} has no module docstring"


def test_top_level_surface():
    """The names the README quickstart relies on."""
    for name in ("BeatToBeatPipeline", "Recording", "default_cohort",
                 "random_cohort", "synthesize_recording", "run_study",
                 "ReproError"):
        assert name in repro.__all__
        assert hasattr(repro, name)


def test_exceptions_form_a_hierarchy():
    from repro import (
        ArchiveError,
        ConfigurationError,
        DetectionError,
        HardwareError,
        JournalError,
        PoisonJobError,
        ProtocolError,
        QueueClosedError,
        ReproError,
        SignalError,
        SupervisorError,
    )

    for exc in (ConfigurationError, SignalError, DetectionError,
                HardwareError, ProtocolError, JournalError,
                ArchiveError, PoisonJobError, QueueClosedError,
                SupervisorError):
        assert issubclass(exc, ReproError)
        assert issubclass(exc, Exception)


def test_storage_lifecycle_surface():
    """The storage-lifecycle names callers handle failures through:
    the archive and poison-job types ride the top-level package."""
    from repro import PoisonJob, raise_if_poison

    for name in ("ArchiveError", "PoisonJobError", "PoisonJob",
                 "raise_if_poison"):
        assert name in repro.__all__
        assert hasattr(repro, name)
    job = PoisonJob(index=3, attempts=2, reason="worker died twice")
    with pytest.raises(repro.PoisonJobError):
        raise_if_poison(job)
    assert raise_if_poison("fine") == "fine"
