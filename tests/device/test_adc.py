"""ADC model: rates, quantization, clipping."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.device import adc
from repro.errors import ConfigurationError, HardwareError, SignalError


def test_rate_range_enforced():
    adc.AdcConfig(sample_rate_hz=125.0)
    adc.AdcConfig(sample_rate_hz=16_000.0)
    with pytest.raises(HardwareError):
        adc.AdcConfig(sample_rate_hz=100.0)
    with pytest.raises(HardwareError):
        adc.AdcConfig(sample_rate_hz=20_000.0)


def test_resolution_range_enforced():
    adc.AdcConfig(resolution_bits=16)
    with pytest.raises(HardwareError):
        adc.AdcConfig(resolution_bits=18)
    with pytest.raises(HardwareError):
        adc.AdcConfig(resolution_bits=2)


def test_lsb_and_code_range():
    config = adc.AdcConfig(resolution_bits=12, full_scale=2.048)
    assert config.lsb == pytest.approx(2 * 2.048 / 4096)
    assert config.code_min == -2048
    assert config.code_max == 2047


@settings(max_examples=40)
@given(bits=st.integers(min_value=8, max_value=16))
def test_quantization_error_within_half_lsb(bits):
    config = adc.AdcConfig(resolution_bits=bits, full_scale=1.0)
    model = adc.AdcModel(config)
    rng = np.random.default_rng(bits)
    x = rng.uniform(-0.9, 0.9, size=200)
    result = model.convert(x)
    assert np.all(np.abs(result.reconstructed - x) <= config.lsb / 2 + 1e-12)
    assert result.clipped_fraction == 0.0


def test_clipping_detected_and_saturated():
    model = adc.AdcModel(adc.AdcConfig(full_scale=1.0))
    x = np.array([0.0, 2.0, -3.0, 0.5])
    result = model.convert(x)
    assert result.clipped_fraction == pytest.approx(0.5)
    assert result.codes.max() <= model.config.code_max
    assert result.codes.min() >= model.config.code_min


def test_codes_are_integers():
    model = adc.AdcModel()
    result = model.convert(np.linspace(-1, 1, 100))
    assert result.codes.dtype == np.int32


def test_monotonicity():
    model = adc.AdcModel(adc.AdcConfig(resolution_bits=8, full_scale=1.0))
    x = np.linspace(-0.99, 0.99, 500)
    result = model.convert(x)
    assert np.all(np.diff(result.codes) >= 0)


def test_resampling_on_rate_mismatch():
    model = adc.AdcModel(adc.AdcConfig(sample_rate_hz=250.0))
    t = np.arange(2000) / 1000.0
    x = np.sin(2 * np.pi * 5.0 * t)
    result = model.convert(x, fs_in=1000.0)
    assert result.codes.size == pytest.approx(500, abs=3)


def test_dither_randomises_codes():
    quiet = adc.AdcModel(adc.AdcConfig(dither_lsb=0.0))
    dithered = adc.AdcModel(adc.AdcConfig(dither_lsb=1.0))
    x = np.full(1000, 0.1234 * quiet.config.lsb)
    assert np.unique(quiet.convert(x).codes).size == 1
    assert np.unique(dithered.convert(x).codes).size > 1


def test_theoretical_snr():
    model = adc.AdcModel(adc.AdcConfig(resolution_bits=12))
    assert model.snr_theoretical_db() == pytest.approx(74.0, abs=0.1)


def test_empty_signal_rejected():
    with pytest.raises(SignalError):
        adc.AdcModel().convert(np.array([]))


def test_invalid_fs_in_rejected():
    with pytest.raises(ConfigurationError):
        adc.AdcModel().convert(np.ones(10), fs_in=-5.0)
