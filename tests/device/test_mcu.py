"""Cortex-M3 cycle-cost model."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.device import mcu
from repro.errors import ConfigurationError
from repro.rt.opcount import OpCounts


def test_cycles_price_each_class():
    costs = mcu.CortexM3Costs(overhead_factor=1.0)
    assert costs.cycles(OpCounts(mac=10)) == pytest.approx(10 * costs.mac)
    assert costs.cycles(OpCounts(div=2)) == pytest.approx(2 * costs.div)
    assert costs.cycles(OpCounts()) == 0.0


def test_overhead_factor_multiplies():
    lean = mcu.CortexM3Costs(overhead_factor=1.0)
    padded = mcu.CortexM3Costs(overhead_factor=1.5)
    ops = OpCounts(mac=100, load=50)
    assert padded.cycles(ops) == pytest.approx(1.5 * lean.cycles(ops))


def test_cost_regimes_strictly_ordered():
    """q15 < soft-float < soft-double for any nontrivial workload."""
    ops = OpCounts(mac=100, mul=20, add=50, cmp=30, load=200, store=50)
    q15 = mcu.CortexM3Costs().cycles(ops)
    flt = mcu.CortexM3Costs.software_float().cycles(ops)
    dbl = mcu.CortexM3Costs.software_double().cycles(ops)
    assert q15 < flt < dbl


def test_duty_cycle_formula():
    model = mcu.McuModel(clock_hz=32e6,
                         costs=mcu.CortexM3Costs(overhead_factor=1.0))
    ops = OpCounts(add=1280)   # 1280 cycles per sample
    # At 250 Hz: 320k cycles/s on 32 MHz -> 1 %.
    assert model.duty_cycle(ops, 250.0) == pytest.approx(0.01)


@settings(max_examples=30)
@given(fs=st.floats(min_value=125.0, max_value=16000.0))
def test_duty_scales_linearly_with_fs(fs):
    model = mcu.McuModel()
    ops = OpCounts(mac=100)
    base = model.duty_cycle(ops, 250.0)
    assert model.duty_cycle(ops, fs) == pytest.approx(base * fs / 250.0)


def test_headroom_inverse_of_duty():
    model = mcu.McuModel()
    ops = OpCounts(mac=500, load=1000)
    fs_max = model.headroom_fs(ops, max_duty=0.5)
    assert model.duty_cycle(ops, fs_max) == pytest.approx(0.5)


def test_validation():
    with pytest.raises(ConfigurationError):
        mcu.McuModel(clock_hz=0.0)
    with pytest.raises(ConfigurationError):
        mcu.CortexM3Costs(mac=-1.0)
    with pytest.raises(ConfigurationError):
        mcu.CortexM3Costs(overhead_factor=0.5)
    with pytest.raises(ConfigurationError):
        mcu.McuModel().duty_cycle(OpCounts(mac=1), 0.0)
    with pytest.raises(ConfigurationError):
        mcu.McuModel().headroom_fs(OpCounts())
