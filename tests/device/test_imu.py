"""IMU simulation and posture classification."""

import numpy as np
import pytest

from repro.device import imu
from repro.errors import ConfigurationError, SignalError


@pytest.mark.parametrize("position", [1, 2, 3])
def test_classifier_recovers_position(position, rng):
    model = imu.ImuModel()
    classifier = imu.PostureClassifier()
    samples = model.simulate(position, 2.0, rng, tremor_level=1.0)
    assert classifier.classify(samples) == position


def test_classifier_confusion_matrix_diagonal(rng):
    """All positions classified correctly over repeated draws."""
    model = imu.ImuModel()
    classifier = imu.PostureClassifier()
    for trial in range(5):
        for position in (1, 2, 3):
            samples = model.simulate(position, 1.0,
                                     np.random.default_rng(trial * 10
                                                           + position))
            assert classifier.classify(samples) == position


def test_unstable_window_rejected(rng):
    model = imu.ImuModel(gyro_noise_rads=2.0)
    classifier = imu.PostureClassifier(max_gyro_rms_rads=0.25)
    samples = model.simulate(1, 1.0, rng, tremor_level=3.0)
    with pytest.raises(SignalError):
        classifier.classify(samples)


def test_unknown_orientation_rejected():
    classifier = imu.PostureClassifier(max_angle_deg=20.0)
    # Gravity along +Y: not close to any template.
    weird = [imu.ImuSample(accel=np.array([0.0, 9.81, 0.0]),
                           gyro=np.zeros(3))]
    with pytest.raises(SignalError):
        classifier.classify(weird)


def test_free_fall_rejected():
    classifier = imu.PostureClassifier()
    samples = [imu.ImuSample(accel=np.zeros(3), gyro=np.zeros(3))]
    with pytest.raises(SignalError):
        classifier.classify(samples)


def test_empty_window_rejected():
    with pytest.raises(SignalError):
        imu.PostureClassifier().classify([])


def test_gravity_magnitude_plausible(rng):
    model = imu.ImuModel()
    samples = model.simulate(2, 1.0, rng, tremor_level=0.5)
    mean_accel = np.mean([np.linalg.norm(s.accel) for s in samples])
    assert mean_accel == pytest.approx(9.81, rel=0.1)


def test_tremor_scales_accel_noise():
    model = imu.ImuModel()
    calm = model.simulate(1, 2.0, np.random.default_rng(0),
                          tremor_level=0.2)
    shaky = model.simulate(1, 2.0, np.random.default_rng(0),
                           tremor_level=3.0)
    var_calm = np.var([s.accel for s in calm], axis=0).sum()
    var_shaky = np.var([s.accel for s in shaky], axis=0).sum()
    assert var_shaky > 5 * var_calm


def test_templates_are_unit_vectors():
    for template in imu.GRAVITY_TEMPLATES.values():
        assert np.linalg.norm(template) == pytest.approx(1.0)


def test_templates_mutually_distinct():
    keys = sorted(imu.GRAVITY_TEMPLATES)
    for i in keys:
        for j in keys:
            if i < j:
                cosine = np.dot(imu.GRAVITY_TEMPLATES[i],
                                imu.GRAVITY_TEMPLATES[j])
                assert cosine < 0.6  # > 50 degrees apart


def test_validation(rng):
    with pytest.raises(ConfigurationError):
        imu.ImuModel(fs=0.0)
    with pytest.raises(ConfigurationError):
        imu.ImuModel().simulate(5, 1.0, rng)
    with pytest.raises(ConfigurationError):
        imu.ImuModel().simulate(1, -1.0, rng)
    with pytest.raises(ConfigurationError):
        imu.PostureClassifier(max_angle_deg=120.0)
    with pytest.raises(ConfigurationError):
        imu.ImuSample(accel=np.zeros(2), gyro=np.zeros(3))
