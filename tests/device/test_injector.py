"""Current injector: safety envelope and load behaviour."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.device import injector
from repro.errors import ConfigurationError, HardwareError


def test_safety_limit_below_1khz_is_100ua():
    assert injector.max_safe_current_ua(500.0) == 100.0
    assert injector.max_safe_current_ua(1_000.0) == 100.0


def test_safety_limit_scales_with_frequency():
    assert injector.max_safe_current_ua(50_000.0) == pytest.approx(5_000.0)
    assert injector.max_safe_current_ua(10_000.0) == pytest.approx(1_000.0)


def test_safety_limit_caps_at_10ma():
    assert injector.max_safe_current_ua(500_000.0) == 10_000.0


def test_default_injector_is_safe():
    source = injector.CurrentInjector()
    assert source.amplitude_ua <= injector.max_safe_current_ua(
        source.frequency_hz)


def test_unsafe_amplitude_rejected():
    with pytest.raises(HardwareError):
        injector.CurrentInjector(frequency_hz=2_000.0, amplitude_ua=400.0)


def test_frequency_range_enforced():
    with pytest.raises(HardwareError):
        injector.CurrentInjector(frequency_hz=500.0)
    with pytest.raises(HardwareError):
        injector.CurrentInjector(frequency_hz=200_000.0)


@settings(max_examples=30)
@given(freq=st.sampled_from(injector.PAPER_SWEEP_FREQUENCIES_HZ))
def test_safe_for_every_sweep_frequency(freq):
    source = injector.CurrentInjector.safe_for(freq)
    assert source.frequency_hz == freq
    assert source.amplitude_ua == pytest.approx(
        0.8 * injector.max_safe_current_ua(freq))


def test_with_frequency_revalidates():
    source = injector.CurrentInjector(50_000.0, 4_000.0)
    with pytest.raises(HardwareError):
        source.with_frequency(10_000.0)  # limit there is 1000 uA


def test_current_sags_into_high_impedance():
    source = injector.CurrentInjector(output_impedance_ohm=1e5)
    full = source.delivered_current_ua(0.0)
    sagged = source.delivered_current_ua(50_000.0)
    assert sagged < full
    assert sagged == pytest.approx(full * 1e5 / (1e5 + 5e4))


def test_developed_voltage_proportional_to_z():
    source = injector.CurrentInjector(50_000.0, 400.0)
    z = np.array([100.0, 200.0])
    v = source.developed_voltage_mv(z)
    assert v[1] == pytest.approx(2 * v[0], rel=1e-6)
    # 400 uA across 100 ohm = 40 mV rms.
    assert v[0] == pytest.approx(40.0, rel=0.01)


def test_negative_impedance_rejected():
    with pytest.raises(ConfigurationError):
        injector.CurrentInjector().developed_voltage_mv(np.array([-1.0]))


def test_sweep_frequencies_match_paper():
    assert injector.PAPER_SWEEP_FREQUENCIES_HZ == (2e3, 10e3, 50e3, 100e3)
