"""Power model: Table I and the 106-hour claim."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.device import power
from repro.errors import ConfigurationError


def test_table_i_values_match_paper():
    """Table I, verbatim."""
    assert power.TABLE_I["ecg_chip"].active_ma == 0.400
    assert power.TABLE_I["icg_chip"].active_ma == 0.900
    assert power.TABLE_I["mcu"].active_ma == 10.500
    assert power.TABLE_I["mcu"].standby_ma == 0.020
    assert power.TABLE_I["radio"].active_ma == 11.000
    assert power.TABLE_I["radio"].standby_ma == 0.002
    assert power.TABLE_I["imu"].active_ma == 3.800


def test_battery_life_reproduces_106_hours():
    """The headline: 710 mAh at the paper's operating point ~= 106 h."""
    hours = power.battery_life_hours()
    assert hours == pytest.approx(106.0, abs=1.5)


def test_battery_life_exceeds_four_days():
    assert power.battery_life_hours() > 96.0


def test_paper_operating_point_duties():
    duties = power.paper_operating_point()
    assert duties["mcu"] == 0.50
    assert duties["radio"] == 0.01
    assert duties["imu"] == 0.0
    assert duties["ecg_chip"] == 1.0


@settings(max_examples=40)
@given(duty=st.floats(min_value=0.0, max_value=1.0))
def test_average_current_interpolates(duty):
    component = power.ComponentPower("x", active_ma=10.0, standby_ma=1.0)
    avg = component.average_ma(duty)
    assert 1.0 - 1e-12 <= avg <= 10.0 + 1e-12
    assert avg == pytest.approx(1.0 + 9.0 * duty)


def test_battery_life_decreases_with_mcu_duty():
    budget = power.PowerBudget()
    base = power.paper_operating_point()
    lives = budget.sweep_mcu_duty(710.0, base, [0.1, 0.3, 0.5, 0.8, 1.0])
    assert np.all(np.diff(lives) < 0)


def test_imu_always_on_costs_a_day_plus():
    duties = power.paper_operating_point()
    duties["imu"] = 1.0
    with_imu = power.battery_life_hours(duty_cycles=duties)
    assert with_imu < 0.7 * power.battery_life_hours()


def test_unknown_component_rejected():
    budget = power.PowerBudget()
    with pytest.raises(ConfigurationError):
        budget.average_current_ma({"nonexistent": 0.5})


def test_invalid_duty_rejected():
    component = power.ComponentPower("x", 1.0)
    with pytest.raises(ConfigurationError):
        component.average_ma(1.5)


def test_component_validation():
    with pytest.raises(ConfigurationError):
        power.ComponentPower("x", active_ma=-1.0)
    with pytest.raises(ConfigurationError):
        power.ComponentPower("x", active_ma=1.0, standby_ma=2.0)


def test_zero_capacity_rejected():
    with pytest.raises(ConfigurationError):
        power.PowerBudget().battery_life_hours(0.0,
                                               power.paper_operating_point())


def test_all_off_rejected():
    budget = power.PowerBudget()
    with pytest.raises(ConfigurationError):
        budget.battery_life_hours(710.0, {})
