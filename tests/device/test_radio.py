"""BLE radio model and report packets."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.device import radio
from repro.errors import ConfigurationError


def test_packet_roundtrip():
    packet = radio.ReportPacket(z0_ohm=430.123, lvet_s=0.301234,
                                pep_s=0.098765, hr_bpm=67.5, sequence=42)
    decoded = radio.ReportPacket.decode(packet.encode())
    assert decoded.z0_ohm == pytest.approx(packet.z0_ohm, abs=1e-3)
    assert decoded.lvet_s == pytest.approx(packet.lvet_s, abs=1e-6)
    assert decoded.pep_s == pytest.approx(packet.pep_s, abs=1e-6)
    assert decoded.hr_bpm == pytest.approx(packet.hr_bpm, abs=1e-3)
    assert decoded.sequence == 42


@settings(max_examples=50)
@given(z0=st.floats(1.0, 2000.0), lvet=st.floats(0.1, 0.6),
       pep=st.floats(0.04, 0.3), hr=st.floats(30.0, 220.0),
       seq=st.integers(0, 100000))
def test_packet_roundtrip_property(z0, lvet, pep, hr, seq):
    packet = radio.ReportPacket(z0, lvet, pep, hr, seq)
    decoded = radio.ReportPacket.decode(packet.encode())
    assert decoded.z0_ohm == pytest.approx(z0, abs=1e-3)
    assert decoded.sequence == seq


def test_crc_detects_corruption():
    payload = bytearray(radio.ReportPacket(25.0, 0.3, 0.1, 60.0).encode())
    payload[3] ^= 0xFF
    with pytest.raises(ConfigurationError):
        radio.ReportPacket.decode(bytes(payload))


def test_payload_size_constant():
    packet = radio.ReportPacket(25.0, 0.3, 0.1, 60.0)
    assert len(packet.encode()) == radio.ReportPacket.PAYLOAD_BYTES


def test_wrong_length_rejected():
    with pytest.raises(ConfigurationError):
        radio.ReportPacket.decode(b"\x00" * 5)


def test_report_duty_cycle_matches_paper():
    """One report per beat (~1 Hz): duty must land near the paper's
    0.1 % figure and below the 1 % budget."""
    model = radio.BleRadioModel()
    duty = model.report_duty_cycle(report_interval_s=1.0)
    assert 0.0005 < duty < 0.01


def test_raw_streaming_orders_of_magnitude_costlier():
    model = radio.BleRadioModel()
    report = model.report_duty_cycle(1.0)
    streaming = model.raw_streaming_duty_cycle(fs=250.0, bytes_per_sample=2)
    assert streaming > 5 * report


def test_duty_cycle_monotone_in_interval():
    model = radio.BleRadioModel()
    assert model.report_duty_cycle(0.5) > model.report_duty_cycle(2.0)


def test_duty_cycle_capped_at_one():
    model = radio.BleRadioModel(air_rate_bps=1000.0)
    assert model.raw_streaming_duty_cycle(16_000.0, 2) == 1.0


def test_air_time_includes_overheads():
    model = radio.BleRadioModel(air_rate_bps=1e6, overhead_bytes=14,
                                event_overhead_s=0.001)
    t = model.packet_air_time_s(22)
    assert t == pytest.approx(8 * 36 / 1e6 + 0.001)


def test_energy_per_report():
    model = radio.BleRadioModel()
    energy = model.energy_per_report_mj(tx_current_ma=11.0, supply_v=3.0)
    assert energy > 0
    # More payload, more energy.
    assert model.energy_per_report_mj(11.0, 3.0, 200) > energy


def test_validation():
    with pytest.raises(ConfigurationError):
        radio.BleRadioModel(air_rate_bps=0.0)
    with pytest.raises(ConfigurationError):
        radio.BleRadioModel().report_duty_cycle(0.0)
    with pytest.raises(ConfigurationError):
        radio.BleRadioModel().packet_air_time_s(-1)
    with pytest.raises(ConfigurationError):
        radio.ReportPacket(25.0, 0.3, 0.1, 60.0, sequence=-1)
    with pytest.raises(ConfigurationError):
        radio.BleRadioModel().energy_per_report_mj(0.0)
