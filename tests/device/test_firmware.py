"""The firmware simulator: functional agreement and resource claims."""

import numpy as np
import pytest

from repro.core import BeatToBeatPipeline
from repro.device import firmware
from repro.errors import SignalError


@pytest.fixture(scope="module")
def firmware_result(thoracic_recording_module):
    rec = thoracic_recording_module
    simulator = firmware.FirmwareSimulator(rec.fs)
    return simulator.run(rec.channel("ecg"), rec.channel("z"))


@pytest.fixture(scope="module")
def thoracic_recording_module():
    from repro.synth import SynthesisConfig, default_cohort, synthesize_recording
    return synthesize_recording(default_cohort()[1], "thoracic", 1,
                                SynthesisConfig(duration_s=16.0))


def test_detects_most_beats(firmware_result, thoracic_recording_module):
    truth = thoracic_recording_module.annotation("r_times_s")
    # Learning phase costs the first beat or two; the rest must be there.
    assert firmware_result.r_peak_indices.size >= truth.size - 2
    assert len(firmware_result.beats) >= truth.size - 3


def test_r_peaks_close_to_truth(firmware_result, thoracic_recording_module):
    rec = thoracic_recording_module
    truth = rec.annotation("r_times_s")
    detected = firmware_result.r_peak_indices / rec.fs
    for d in detected:
        assert np.min(np.abs(truth - d)) < 0.05


def test_agrees_with_offline_pipeline(firmware_result,
                                      thoracic_recording_module):
    """Streaming causal chain vs zero-phase offline: bounded deltas."""
    rec = thoracic_recording_module
    offline = BeatToBeatPipeline(rec.fs).process_recording(rec)
    fw = firmware_result.summary()
    off = offline.summary()
    assert fw["z0_ohm"] == pytest.approx(off["z0_ohm"], rel=0.01)
    assert fw["hr_bpm"] == pytest.approx(off["hr_bpm"], abs=1.0)
    assert abs(fw["pep_s"] - off["pep_s"]) < 0.03
    assert abs(fw["lvet_s"] - off["lvet_s"]) < 0.03


def test_cpu_duty_reproduces_paper_claim(firmware_result):
    """Section V: 40-50 % of the STM32 duty cycle (soft-double build)."""
    assert 0.40 <= firmware_result.cpu_duty_paper <= 0.50


def test_fixed_point_rewrite_headroom(firmware_result):
    """The Q15 ablation: an order of magnitude below the paper build."""
    assert firmware_result.cpu_duty_q15 < 0.1
    assert (firmware_result.cpu_duty_q15
            < firmware_result.cpu_duty_softfloat
            < firmware_result.cpu_duty_softdouble)


def test_radio_duty_near_paper_figure(firmware_result):
    """Section V: ~0.1 % radio duty for the derived-parameter reports."""
    assert 0.0002 < firmware_result.radio_duty < 0.005


def test_packets_carry_beat_parameters(firmware_result):
    assert len(firmware_result.packets) > 5
    for packet in firmware_result.packets[:5]:
        assert 0.0 < packet.pep_s < 0.3
        assert 0.1 < packet.lvet_s < 0.6
        assert 30.0 < packet.hr_bpm < 220.0
        roundtrip = packet.decode(packet.encode())
        assert roundtrip.sequence == packet.sequence


def test_report_interval_thinning(thoracic_recording_module):
    rec = thoracic_recording_module
    config = firmware.FirmwareConfig(report_interval_beats=3)
    result = firmware.FirmwareSimulator(rec.fs, config).run(
        rec.channel("ecg"), rec.channel("z"))
    full = firmware.FirmwareSimulator(rec.fs).run(
        rec.channel("ecg"), rec.channel("z"))
    assert len(result.packets) <= len(full.packets) // 2 + 1


def test_ops_accounting_positive(firmware_result):
    ops = firmware_result.ops_per_sample
    assert ops.mac > 50          # FIR + front-end decimation dominate
    assert ops.total() > 100


def test_short_input_rejected(thoracic_recording_module):
    rec = thoracic_recording_module
    simulator = firmware.FirmwareSimulator(rec.fs)
    with pytest.raises(SignalError):
        simulator.run(np.zeros(100), np.zeros(100))


def test_mismatched_channels_rejected(thoracic_recording_module):
    rec = thoracic_recording_module
    simulator = firmware.FirmwareSimulator(rec.fs)
    with pytest.raises(SignalError):
        simulator.run(np.zeros(5000), np.zeros(5001))
