"""Analog front ends: ECG chain and ICG synchronous demodulation."""

import numpy as np
import pytest

from repro.bioimpedance.pathways import InstrumentResponse
from repro.device import afe
from repro.device.injector import CurrentInjector
from repro.errors import ConfigurationError, SignalError

FS = 250.0


# --- ECG front end -----------------------------------------------------------

def test_ecg_frontend_preserves_signal(clean_recording, rng):
    frontend = afe.EcgFrontEnd(input_noise_uv_rms=2.0)
    ecg = clean_recording.channel("ecg")
    acquired = frontend.acquire(ecg, FS, rng)
    assert np.corrcoef(ecg, acquired)[0, 1] > 0.99


def test_ecg_frontend_adds_specified_noise(rng):
    frontend = afe.EcgFrontEnd(input_noise_uv_rms=20.0,
                               bandwidth_hz=1000.0)
    quiet = np.zeros(int(60 * FS))
    acquired = frontend.acquire(quiet, FS, rng)
    assert np.std(acquired) * 1000 == pytest.approx(20.0, rel=0.1)


def test_ecg_frontend_bandlimits(rng):
    frontend = afe.EcgFrontEnd(bandwidth_hz=40.0, input_noise_uv_rms=0.0)
    t = np.arange(int(10 * FS)) / FS
    tone = np.sin(2 * np.pi * 100.0 * t)
    acquired = frontend.acquire(tone, FS, rng)
    assert np.std(acquired[500:]) < 0.5 * np.std(tone)


def test_ecg_frontend_validation():
    with pytest.raises(ConfigurationError):
        afe.EcgFrontEnd(gain=0.0)
    with pytest.raises(ConfigurationError):
        afe.EcgFrontEnd(input_noise_uv_rms=-1.0)


# --- ICG front end ----------------------------------------------------------

def test_measure_applies_instrument_gain(rng):
    frontend = afe.IcgFrontEnd(
        injector=CurrentInjector(10_000.0, 800.0),
        instrument=InstrumentResponse(corner_hz=3000.0),
        noise_ohm_rms=0.0)
    z = np.full(int(4 * FS), 400.0)
    measured = frontend.measure(z, FS, rng)
    expected = 400.0 * (10e3**2 / (10e3**2 + 3e3**2))
    assert np.median(measured) == pytest.approx(expected, rel=0.01)


def test_measure_adds_noise(rng):
    frontend = afe.IcgFrontEnd(noise_ohm_rms=0.01)
    z = np.full(int(4 * FS), 25.0)
    measured = frontend.measure(z, FS, rng)
    assert 0.005 < np.std(measured[200:]) < 0.02


def test_carrier_demodulation_recovers_envelope():
    """Full mixing path: inject, modulate, demodulate — the recovered
    envelope must match the true Z(t) to sub-milliohm accuracy."""
    frontend = afe.IcgFrontEnd(injector=CurrentInjector(50_000.0, 400.0))
    fs_carrier = 400_000.0
    n = int(0.25 * fs_carrier)
    t = np.arange(n) / fs_carrier
    envelope = 430.0 + 0.2 * np.sin(2 * np.pi * 1.5 * t)
    voltage = frontend.modulated_voltage_mv(envelope, fs_carrier)
    recovered = frontend.demodulate_carrier(voltage, fs_carrier)
    inner = slice(int(0.05 * fs_carrier), int(0.2 * fs_carrier))
    assert np.max(np.abs(recovered[inner] - envelope[inner])) < 1e-3


def test_carrier_needs_adequate_sampling():
    frontend = afe.IcgFrontEnd(injector=CurrentInjector(50_000.0, 400.0))
    with pytest.raises(ConfigurationError):
        frontend.modulated_voltage_mv(np.ones(100), 100_000.0)
    with pytest.raises(ConfigurationError):
        frontend.demodulate_carrier(np.ones(100), 100_000.0)


def test_measure_validation(rng):
    frontend = afe.IcgFrontEnd()
    with pytest.raises(SignalError):
        frontend.measure(np.array([]), FS, rng)
    with pytest.raises(ConfigurationError):
        afe.IcgFrontEnd(noise_ohm_rms=-0.1)
    with pytest.raises(ConfigurationError):
        afe.IcgFrontEnd(output_lowpass_hz=0.0)
