"""Power-management policies and discharge simulation."""

import numpy as np
import pytest

from repro.device import pmu
from repro.errors import ConfigurationError


def test_mode_selection_thresholds():
    unit = pmu.PowerManagementUnit()
    assert unit.select_mode(0.9).name == "continuous"
    assert unit.select_mode(0.3).name == "periodic"
    assert unit.select_mode(0.05).name == "low_power"


def test_mode_currents_strictly_ordered():
    unit = pmu.PowerManagementUnit()
    continuous = unit.mode_current_ma(pmu.STANDARD_MODES["continuous"])
    periodic = unit.mode_current_ma(pmu.STANDARD_MODES["periodic"])
    low = unit.mode_current_ma(pmu.STANDARD_MODES["low_power"])
    assert continuous > 10 * periodic > 10 * low > 0


def test_fixed_continuous_discharge_matches_battery_life():
    from repro.device.power import battery_life_hours
    unit = pmu.PowerManagementUnit()
    result = unit.simulate_discharge(step_hours=0.25, adaptive=False)
    assert result.lifetime_hours == pytest.approx(battery_life_hours(),
                                                  rel=0.01)


def test_adaptive_policy_extends_lifetime():
    unit = pmu.PowerManagementUnit()
    fixed = unit.simulate_discharge(adaptive=False)
    adaptive = unit.simulate_discharge(adaptive=True)
    assert adaptive.lifetime_hours > 2 * fixed.lifetime_hours


def test_adaptive_policy_passes_through_all_modes():
    unit = pmu.PowerManagementUnit()
    result = unit.simulate_discharge(adaptive=True)
    assert {"continuous", "periodic", "low_power"} <= set(result.mode_names)


def test_remaining_fraction_monotone():
    unit = pmu.PowerManagementUnit()
    result = unit.simulate_discharge(adaptive=True)
    assert np.all(np.diff(result.remaining_fraction) <= 1e-12)
    assert result.remaining_fraction[0] == 1.0
    assert result.remaining_fraction[-1] == pytest.approx(0.0, abs=1e-9)


def test_timeline_monotone():
    unit = pmu.PowerManagementUnit()
    result = unit.simulate_discharge(adaptive=True)
    assert np.all(np.diff(result.timeline_hours) > 0)


def test_custom_thresholds():
    unit = pmu.PowerManagementUnit(periodic_threshold=0.8,
                                   low_power_threshold=0.5)
    assert unit.select_mode(0.75).name == "periodic"
    assert unit.select_mode(0.45).name == "low_power"


def test_validation():
    with pytest.raises(ConfigurationError):
        pmu.PowerManagementUnit(battery_mah=0.0)
    with pytest.raises(ConfigurationError):
        pmu.PowerManagementUnit(periodic_threshold=0.1,
                                low_power_threshold=0.5)
    with pytest.raises(ConfigurationError):
        pmu.PowerManagementUnit().select_mode(1.5)
    with pytest.raises(ConfigurationError):
        pmu.PowerManagementUnit().simulate_discharge(step_hours=0.0)
    with pytest.raises(ConfigurationError):
        pmu.OperatingMode("", {})
    with pytest.raises(ConfigurationError):
        pmu.OperatingMode("bad", {"mcu": 1.5})
    with pytest.raises(ConfigurationError):
        pmu.PowerManagementUnit(modes={"continuous":
                                       pmu.STANDARD_MODES["continuous"]})
