"""Cross-module integration tests.

These exercise the paths a downstream user actually runs: synthesize ->
persist -> reload -> pipeline -> hemodynamics; firmware vs offline on
the same recording; full device chain including the AFE and ADC.
"""

import numpy as np
import pytest

from repro import (
    BeatToBeatPipeline,
    PipelineConfig,
    Recording,
    default_cohort,
    synthesize_recording,
)
from repro.device import (
    AdcConfig,
    AdcModel,
    FirmwareSimulator,
    IcgFrontEnd,
    PostureClassifier,
    ImuModel,
)
from repro.synth import SynthesisConfig


def test_save_load_process_roundtrip(tmp_path, device_recording):
    """Processing a reloaded recording equals processing the original."""
    path = device_recording.save(tmp_path / "rec.npz")
    reloaded = Recording.load(path)
    original = BeatToBeatPipeline(device_recording.fs).process_recording(
        device_recording)
    reprocessed = BeatToBeatPipeline(reloaded.fs).process_recording(
        reloaded)
    assert np.array_equal(original.r_peak_indices,
                          reprocessed.r_peak_indices)
    assert original.summary() == reprocessed.summary()


def test_firmware_and_pipeline_agree_on_device_recording(subject):
    recording = synthesize_recording(subject, "device", 1,
                                     SynthesisConfig(duration_s=16.0))
    offline = BeatToBeatPipeline(recording.fs).process_recording(recording)
    firmware = FirmwareSimulator(recording.fs).run(
        recording.channel("ecg"), recording.channel("z"))
    assert firmware.z0_ohm == pytest.approx(offline.z0_ohm, rel=0.01)
    assert firmware.hr_bpm == pytest.approx(offline.hr_bpm, abs=1.5)
    assert abs(firmware.mean_pep_s - offline.mean_pep_s) < 0.03
    # LVET hinges on X, whose noise sensitivity differs between the
    # causal and zero-phase conditioners on device-grade (noisy)
    # signals; agreement is correspondingly looser than on thoracic.
    assert abs(firmware.mean_lvet_s - offline.mean_lvet_s) < 0.12


def test_adc_quantization_does_not_break_detection(subject):
    """12-bit conversion of both channels: the pipeline still works."""
    recording = synthesize_recording(subject, "thoracic", 1,
                                     SynthesisConfig(duration_s=16.0))
    ecg = recording.channel("ecg")
    z = recording.channel("z")
    ecg_adc = AdcModel(AdcConfig(resolution_bits=12, full_scale=4.0))
    # The impedance channel is digitised after offset removal (the AFE
    # presents Z - Z0 to the converter).
    z0 = float(np.mean(z))
    z_adc = AdcModel(AdcConfig(resolution_bits=12, full_scale=2.0))
    ecg_q = ecg_adc.convert(ecg).reconstructed
    z_q = z_adc.convert(z - z0).reconstructed + z0
    result = BeatToBeatPipeline(recording.fs).process(ecg_q, z_q)
    assert result.hr_bpm == pytest.approx(recording.meta["true_hr_bpm"],
                                          rel=0.02)
    assert result.mean_pep_s == pytest.approx(
        recording.meta["true_pep_s"], abs=0.03)


def test_afe_measurement_chain_end_to_end(subject, rng):
    """True Z envelope -> AFE -> pipeline: gain is accounted for."""
    recording = synthesize_recording(
        subject, "thoracic", 1,
        SynthesisConfig(duration_s=16.0, include_noise=False))
    z_true = recording.channel("z")
    frontend = IcgFrontEnd()
    measured = frontend.measure(z_true, recording.fs, rng)
    gain = float(frontend.instrument.gain(
        frontend.injector.frequency_hz))
    assert np.mean(measured) == pytest.approx(gain * np.mean(z_true),
                                              rel=0.01)


def test_posture_gate_before_measurement(rng):
    """The Fig 3 acquisition loop: classify posture, then measure."""
    imu = ImuModel()
    classifier = PostureClassifier()
    subject = default_cohort()[2]
    for position in (1, 2, 3):
        samples = imu.simulate(position, 1.0, rng)
        detected_position = classifier.classify(samples)
        recording = synthesize_recording(
            subject, "device", detected_position,
            SynthesisConfig(duration_s=12.0))
        assert recording.meta["position"] == position


def test_cohort_wide_pipeline_sanity():
    """Every subject's device recording yields physiological outputs."""
    for subject in default_cohort():
        recording = synthesize_recording(subject, "device", 1,
                                         SynthesisConfig(duration_s=12.0))
        result = BeatToBeatPipeline(recording.fs).process_recording(
            recording)
        summary = result.summary()
        assert 40.0 < summary["hr_bpm"] < 100.0
        assert 0.04 < summary["pep_s"] < 0.2
        assert 0.15 < summary["lvet_s"] < 0.45
        assert 100.0 < summary["z0_ohm"] < 1000.0


def test_device_calibrated_stroke_volume(subject):
    """Device SV with pathway calibration lands in physiological range.

    Z0 and dZ/dt need *separate* calibrations: the hand-to-hand path
    multiplies the base impedance (~17x) and attenuates the cardiac
    pulse (~0.3x) by different factors.
    """
    device = synthesize_recording(subject, "device", 1,
                                  SynthesisConfig(duration_s=16.0))
    thoracic = synthesize_recording(subject, "thoracic", 1,
                                    SynthesisConfig(duration_s=16.0))
    config = PipelineConfig(
        height_cm=subject.height_m * 100,
        z0_calibration=(thoracic.meta["true_z0_ohm"]
                        / device.meta["true_z0_ohm"]),
        dzdt_calibration=1.0 / device.meta["cardiac_coupling"])
    result = BeatToBeatPipeline(device.fs, config).process_recording(
        device)
    sv = np.median([b.sv_sramek_ml for b in result.beat_hemodynamics])
    assert 20.0 < sv < 150.0
