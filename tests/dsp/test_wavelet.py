"""Wavelet transform: orthonormality, reconstruction, denoising."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.dsp import wavelet as wv
from repro.errors import ConfigurationError, SignalError

WAVELET_NAMES = sorted(wv.WAVELETS)


@pytest.mark.parametrize("name", WAVELET_NAMES)
def test_filters_are_orthonormal(name):
    low = wv.WAVELETS[name]
    assert np.sum(low**2) == pytest.approx(1.0, abs=1e-12)
    assert np.sum(low) == pytest.approx(np.sqrt(2.0), abs=1e-12)
    # Double-shift orthogonality.
    for shift in range(2, low.size, 2):
        assert np.dot(low[shift:], low[:-shift]) == pytest.approx(
            0.0, abs=1e-12)


@pytest.mark.parametrize("name", WAVELET_NAMES)
@pytest.mark.parametrize("n", [64, 250, 1000])
def test_single_level_perfect_reconstruction(name, n):
    rng = np.random.default_rng(n)
    x = rng.normal(size=n + n % 2)
    approx, detail = wv.dwt(x, name)
    assert approx.size == x.size // 2
    reconstructed = wv.idwt(approx, detail, name)
    assert np.allclose(reconstructed, x, atol=1e-10)


@settings(max_examples=30)
@given(seed=st.integers(0, 1000), level=st.integers(1, 5),
       name=st.sampled_from(WAVELET_NAMES))
def test_multilevel_perfect_reconstruction(seed, level, name):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=300)
    coefficients, original = wv.wavedec(x, name, level)
    reconstructed = wv.waverec(coefficients, name, original)
    assert np.allclose(reconstructed, x, atol=1e-9)


@pytest.mark.parametrize("name", WAVELET_NAMES)
def test_energy_preservation(name):
    """Orthonormal transform: coefficient energy equals signal energy
    (exact when no padding is needed)."""
    rng = np.random.default_rng(3)
    x = rng.normal(size=512)
    coefficients, _ = wv.wavedec(x, name, 4)
    energy = sum(float(np.sum(np.asarray(c) ** 2)) for c in coefficients)
    assert energy == pytest.approx(float(np.sum(x**2)), rel=1e-9)


def test_constant_signal_lives_in_approximation():
    x = np.full(256, 3.0)
    coefficients, _ = wv.wavedec(x, "db4", 3)
    for detail in coefficients[1:]:
        assert np.abs(detail).max() < 1e-9


def test_denoise_improves_rmse(rng):
    t = np.arange(2048) / 250.0
    clean = np.sin(2 * np.pi * 3.0 * t) * np.exp(-((t - 4.0) ** 2))
    noisy = clean + 0.3 * rng.standard_normal(t.size)
    denoised = wv.denoise(noisy, "db4")
    rmse_noisy = np.sqrt(np.mean((noisy - clean) ** 2))
    rmse_denoised = np.sqrt(np.mean((denoised - clean) ** 2))
    assert rmse_denoised < 0.6 * rmse_noisy


def test_denoise_hard_keeps_large_coefficients(rng):
    x = np.zeros(256)
    x[100] = 10.0  # an isolated spike is signal under hard thresholding
    denoised = wv.denoise(x + 0.01 * rng.standard_normal(256),
                          "haar", mode="hard")
    assert denoised[100] > 5.0


def test_denoise_noise_only_shrinks_to_near_zero(rng):
    noise = 0.5 * rng.standard_normal(1024)
    denoised = wv.denoise(noise, "db4", mode="soft")
    assert np.std(denoised) < 0.3 * np.std(noise)


def test_suppress_low_frequency_removes_respiration():
    t = np.arange(4096) / 250.0
    cardiac = np.sin(2 * np.pi * 3.0 * t)
    respiration = 2.0 * np.sin(2 * np.pi * 0.25 * t)
    cleaned = wv.suppress_low_frequency(cardiac + respiration, 250.0, 0.8)
    inner = slice(256, -256)
    residual = cleaned[inner] - cardiac[inner]
    assert np.sqrt(np.mean(residual**2)) < 0.25


def test_suppress_preserves_cardiac_band():
    t = np.arange(4096) / 250.0
    cardiac = np.sin(2 * np.pi * 3.0 * t)
    cleaned = wv.suppress_low_frequency(cardiac, 250.0, 0.8)
    inner = slice(256, -256)
    assert np.corrcoef(cleaned[inner], cardiac[inner])[0, 1] > 0.98


def test_level_band_hz():
    low, high = wv.level_band_hz(1, 250.0)
    assert (low, high) == (62.5, 125.0)
    low, high = wv.level_band_hz(7, 250.0)
    assert high == pytest.approx(250.0 / 128.0)


def test_validation():
    with pytest.raises(ConfigurationError):
        wv.dwt(np.ones(10), "sym8")
    with pytest.raises(SignalError):
        wv.dwt(np.ones(9), "haar")        # odd length
    with pytest.raises(SignalError):
        wv.wavedec(np.ones(4), "haar", 5)  # too deep
    with pytest.raises(ConfigurationError):
        wv.denoise(np.ones(64), mode="fuzzy")
    with pytest.raises(ConfigurationError):
        wv.suppress_low_frequency(np.ones(64), 250.0, 200.0)
    with pytest.raises(SignalError):
        wv.idwt(np.ones(4), np.ones(5), "haar")


def test_wavelet_icg_conditioning_matches_filter_chain(clean_recording):
    """Both conditioners must recover comparable landmark structure."""
    from repro.icg.preprocessing import icg_from_impedance

    z = clean_recording.channel("z")
    fs = clean_recording.fs
    filt = icg_from_impedance(z, fs, method="filter")
    wave = icg_from_impedance(z, fs, method="wavelet")
    c_times = clean_recording.annotation("c_times_s")
    for c in c_times[2:6]:
        idx = int(round(c * fs))
        assert np.argmax(wave[idx - 20: idx + 20]) == pytest.approx(
            20, abs=4)
    inner = slice(int(2 * fs), int(-2 * fs))
    assert np.corrcoef(filt[inner], wave[inner])[0, 1] > 0.9
