"""FIR design and zero-phase application."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.dsp import fir
from repro.errors import ConfigurationError, SignalError

FS = 250.0


def test_lowpass_dc_gain_is_one():
    taps = fir.design_lowpass(32, 30.0, FS)
    assert taps.sum() == pytest.approx(1.0)


def test_lowpass_attenuates_stopband():
    taps = fir.design_lowpass(64, 20.0, FS)
    _, h = fir.frequency_response(taps, np.array([5.0, 60.0, 100.0]), FS)
    assert abs(h[0]) > 0.95
    assert abs(h[1]) < 0.05
    assert abs(h[2]) < 0.05


def test_highpass_nyquist_gain_is_one():
    taps = fir.design_highpass(32, 30.0, FS)
    _, h = fir.frequency_response(taps, np.array([FS / 2 - 1e-9]), FS)
    assert abs(h[0]) == pytest.approx(1.0, abs=1e-6)


def test_highpass_blocks_dc():
    # H(0) = sum of taps; windowing leaves a small residual (> 40 dB
    # down for a Hamming design of this order).
    taps = fir.design_highpass(64, 10.0, FS)
    assert abs(taps.sum()) < 0.01


def test_bandpass_centre_gain_is_one():
    taps = fir.design_bandpass(32, 0.05, 40.0, FS)
    centre = np.sqrt(0.05 * 40.0)
    _, h = fir.frequency_response(taps, np.array([centre]), FS)
    assert abs(h[0]) == pytest.approx(1.0, abs=1e-9)


def test_paper_bandpass_passes_qrs_band():
    """The 32nd-order 0.05-40 Hz design must pass 5-20 Hz (QRS)."""
    taps = fir.design_bandpass(32, 0.05, 40.0, FS)
    freqs = np.array([5.0, 10.0, 20.0])
    _, h = fir.frequency_response(taps, freqs, FS)
    assert np.all(np.abs(h) > 0.8)


def test_paper_bandpass_attenuates_powerline():
    taps = fir.design_bandpass(32, 0.05, 40.0, FS)
    _, h = fir.frequency_response(taps, np.array([50.0]), FS)
    assert abs(h[0]) < 0.7  # modest order: partial but real attenuation


def test_bandstop_notches_centre():
    taps = fir.design_bandstop(128, 45.0, 55.0, FS)
    _, h = fir.frequency_response(taps, np.array([50.0, 10.0]), FS)
    assert abs(h[0]) < 0.12
    assert abs(h[1]) > 0.9


def test_bandstop_dc_gain_one():
    taps = fir.design_bandstop(64, 40.0, 60.0, FS)
    assert taps.sum() == pytest.approx(1.0)


def test_odd_order_rejected():
    with pytest.raises(ConfigurationError):
        fir.design_lowpass(31, 20.0, FS)


def test_cutoff_beyond_nyquist_rejected():
    with pytest.raises(ConfigurationError):
        fir.design_lowpass(32, 130.0, FS)


def test_inverted_band_rejected():
    with pytest.raises(ConfigurationError):
        fir.design_bandpass(32, 40.0, 0.05, FS)


def test_group_delay_linear_phase():
    taps = fir.design_lowpass(32, 20.0, FS)
    assert fir.group_delay(taps) == 16.0


def test_apply_fir_is_causal_convolution():
    taps = np.array([0.5, 0.5])
    x = np.array([1.0, 0.0, 0.0, 2.0])
    y = fir.apply_fir(taps, x)
    assert np.allclose(y, [0.5, 0.5, 0.0, 1.0])


def test_filtfilt_zero_phase_on_sine():
    """A passband sine must come through with no phase shift."""
    taps = fir.design_bandpass(32, 0.05, 40.0, FS)
    t = np.arange(2000) / FS
    x = np.sin(2 * np.pi * 10.0 * t)
    y = fir.filtfilt_fir(taps, x)
    centre = slice(500, 1500)
    lag = np.argmax(np.correlate(y[centre], x[centre], "full")) - 999
    assert lag == 0


def test_filtfilt_magnitude_is_squared():
    """Forward-backward doubles the attenuation in dB."""
    taps = fir.design_lowpass(32, 20.0, FS)
    t = np.arange(4000) / FS
    x = np.sin(2 * np.pi * 45.0 * t)  # stopband-ish tone
    y_once = fir.apply_fir(taps, x)
    y_twice = fir.filtfilt_fir(taps, x)
    mid = slice(1000, 3000)
    gain_once = np.std(y_once[mid]) / np.std(x[mid])
    gain_twice = np.std(y_twice[mid]) / np.std(x[mid])
    assert gain_twice == pytest.approx(gain_once**2, rel=0.1)


@settings(max_examples=25)
@given(scale=st.floats(min_value=0.1, max_value=100.0),
       offset=st.floats(min_value=-10.0, max_value=10.0))
def test_filtfilt_linearity(scale, offset):
    taps = fir.design_lowpass(16, 30.0, FS)
    rng = np.random.default_rng(7)
    x = rng.normal(size=400)
    base = fir.filtfilt_fir(taps, x)
    scaled = fir.filtfilt_fir(taps, scale * x + offset)
    # Unit-DC-gain filter: offset passes through, scaling is linear.
    assert np.allclose(scaled, scale * base + offset, atol=1e-6 * scale + 1e-6)


def test_filtfilt_preserves_length():
    taps = fir.design_lowpass(32, 20.0, FS)
    x = np.random.default_rng(0).normal(size=777)
    assert fir.filtfilt_fir(taps, x).size == 777


def test_apply_fir_rejects_2d():
    with pytest.raises(SignalError):
        fir.apply_fir(np.ones(3), np.zeros((4, 4)))


def test_apply_fir_rejects_empty():
    with pytest.raises(SignalError):
        fir.apply_fir(np.ones(3), np.array([]))


def test_frequency_response_needs_positive_fs():
    with pytest.raises(ConfigurationError):
        fir.frequency_response(np.ones(3), np.array([1.0]), -1.0)
