"""Butterworth design + SOS filtering against scipy oracles."""

import numpy as np
import pytest
import scipy.signal as ss
from hypothesis import given, settings, strategies as st

from repro.dsp import iir
from repro.errors import ConfigurationError, SignalError

FS = 250.0


@pytest.mark.parametrize("order", [1, 2, 3, 4, 6])
def test_prototype_poles_match_scipy(order):
    mine = iir.butter_prototype(order)
    z_ref, p_ref, k_ref = ss.buttap(order)
    assert np.allclose(sorted(mine.poles, key=lambda p: (p.real, p.imag)),
                       sorted(p_ref, key=lambda p: (p.real, p.imag)),
                       atol=1e-12)
    assert mine.gain == pytest.approx(k_ref)
    assert mine.zeros.size == 0


@pytest.mark.parametrize("order,fc", [(2, 20.0), (4, 20.0), (5, 35.0)])
def test_lowpass_response_matches_scipy(order, fc):
    mine = iir.butter_lowpass(order, fc, FS)
    ref = ss.butter(order, fc, btype="low", fs=FS, output="sos")
    w = np.linspace(0.5, 124.0, 200)
    _, h1 = iir.sos_frequency_response(mine, w, FS)
    _, h2 = ss.sosfreqz(ref, w, fs=FS)
    assert np.allclose(np.abs(h1), np.abs(h2), atol=1e-8)


@pytest.mark.parametrize("order,fc", [(2, 0.8), (3, 5.0)])
def test_highpass_response_matches_scipy(order, fc):
    mine = iir.butter_highpass(order, fc, FS)
    ref = ss.butter(order, fc, btype="high", fs=FS, output="sos")
    w = np.linspace(0.1, 124.0, 200)
    _, h1 = iir.sos_frequency_response(mine, w, FS)
    _, h2 = ss.sosfreqz(ref, w, fs=FS)
    assert np.allclose(np.abs(h1), np.abs(h2), atol=1e-8)


def test_bandpass_response_matches_scipy():
    mine = iir.butter_bandpass(2, 5.0, 15.0, FS)
    ref = ss.butter(2, [5.0, 15.0], btype="band", fs=FS, output="sos")
    w = np.linspace(0.5, 124.0, 300)
    _, h1 = iir.sos_frequency_response(mine, w, FS)
    _, h2 = ss.sosfreqz(ref, w, fs=FS)
    assert np.allclose(np.abs(h1), np.abs(h2), atol=1e-8)


def test_bandstop_response_matches_scipy():
    mine = iir.butter_bandstop(2, 45.0, 55.0, FS)
    ref = ss.butter(2, [45.0, 55.0], btype="bandstop", fs=FS, output="sos")
    w = np.linspace(0.5, 124.0, 300)
    _, h1 = iir.sos_frequency_response(mine, w, FS)
    _, h2 = ss.sosfreqz(ref, w, fs=FS)
    assert np.allclose(np.abs(h1), np.abs(h2), atol=1e-8)


def test_all_poles_inside_unit_circle():
    for sos in [iir.butter_lowpass(4, 20.0, FS),
                iir.butter_highpass(3, 0.8, FS),
                iir.butter_bandpass(3, 5.0, 15.0, FS)]:
        for section in sos:
            poles = np.roots(section[3:])
            assert np.all(np.abs(poles) < 1.0)


def test_sosfilt_matches_scipy():
    sos = iir.butter_lowpass(4, 20.0, FS)
    x = np.random.default_rng(3).normal(size=500)
    mine = iir.sosfilt(sos, x)
    ref = ss.sosfilt(sos, x)
    assert np.allclose(mine, ref, atol=1e-10)


def test_sosfilt_with_state_continuity():
    """Filtering in two chunks with carried state equals one pass."""
    sos = iir.butter_lowpass(4, 20.0, FS)
    x = np.random.default_rng(4).normal(size=400)
    whole = iir.sosfilt(sos, x)
    zi = np.zeros((sos.shape[0], 2))
    first, zf = iir.sosfilt(sos, x[:150], zi=zi)
    second, _ = iir.sosfilt(sos, x[150:], zi=zf)
    assert np.allclose(np.concatenate([first, second]), whole, atol=1e-10)


def test_sosfiltfilt_matches_scipy():
    sos_mine = iir.butter_lowpass(4, 20.0, FS)
    sos_ref = ss.butter(4, 20.0, btype="low", fs=FS, output="sos")
    x = np.random.default_rng(5).normal(size=600)
    mine = iir.sosfiltfilt(sos_mine, x)
    ref = ss.sosfiltfilt(sos_ref, x)
    assert np.allclose(mine, ref, atol=1e-7)


def test_sosfiltfilt_zero_phase_on_sine():
    sos = iir.butter_lowpass(4, 20.0, FS)
    t = np.arange(2000) / FS
    x = np.sin(2 * np.pi * 5.0 * t)
    y = iir.sosfiltfilt(sos, x)
    centre = slice(500, 1500)
    lag = np.argmax(np.correlate(y[centre], x[centre], "full")) - 999
    assert lag == 0


def test_sosfilt_zi_step_response_steady():
    """With zi scaled by the step level, the output starts settled."""
    sos = iir.butter_lowpass(4, 20.0, FS)
    zi = iir.sosfilt_zi(sos)
    level = 3.7
    y, _ = iir.sosfilt(sos, np.full(100, level), zi=zi * level)
    assert np.allclose(y, level, atol=1e-9)


@settings(max_examples=20)
@given(scale=st.floats(min_value=0.01, max_value=50.0))
def test_sosfilt_homogeneity(scale):
    sos = iir.butter_lowpass(2, 30.0, FS)
    x = np.random.default_rng(11).normal(size=200)
    assert np.allclose(iir.sosfilt(sos, scale * x),
                       scale * iir.sosfilt(sos, x), atol=1e-9 * scale)


def test_dc_gain_lowpass_unity():
    sos = iir.butter_lowpass(4, 20.0, FS)
    _, h = iir.sos_frequency_response(sos, np.array([1e-6]), FS)
    assert abs(h[0]) == pytest.approx(1.0, abs=1e-6)


def test_zpk_to_sos_rejects_more_zeros_than_poles():
    bad = iir.ZpkFilter(np.array([1.0, -1.0, 0.5]),
                        np.array([0.2, 0.3]), 1.0)
    with pytest.raises(ConfigurationError):
        iir.zpk_to_sos(bad)


def test_zpk_to_sos_rejects_unpaired_complex():
    bad = iir.ZpkFilter(np.empty(0), np.array([0.5 + 0.2j, 0.4]), 1.0)
    with pytest.raises(ConfigurationError):
        iir.zpk_to_sos(bad)


def test_invalid_orders_and_cutoffs():
    with pytest.raises(ConfigurationError):
        iir.butter_lowpass(0, 20.0, FS)
    with pytest.raises(ConfigurationError):
        iir.butter_lowpass(4, 0.0, FS)
    with pytest.raises(ConfigurationError):
        iir.butter_lowpass(4, 125.0, FS)
    with pytest.raises(ConfigurationError):
        iir.butter_bandpass(2, 15.0, 5.0, FS)


def test_sosfilt_rejects_wrong_zi_shape():
    sos = iir.butter_lowpass(4, 20.0, FS)
    with pytest.raises(ConfigurationError):
        iir.sosfilt(sos, np.zeros(10), zi=np.zeros((1, 2)))


def test_sosfilt_rejects_empty_signal():
    sos = iir.butter_lowpass(2, 20.0, FS)
    with pytest.raises(SignalError):
        iir.sosfilt(sos, np.array([]))


def test_odd_order_bandpass_matches_scipy():
    mine = iir.butter_bandpass(3, 1.0, 30.0, FS)
    ref = ss.butter(3, [1.0, 30.0], btype="band", fs=FS, output="sos")
    w = np.linspace(0.2, 124.0, 250)
    _, h1 = iir.sos_frequency_response(mine, w, FS)
    _, h2 = ss.sosfreqz(ref, w, fs=FS)
    assert np.allclose(np.abs(h1), np.abs(h2), atol=1e-7)
