"""Leading-axis (row-batched) kernel parity and the shared ragged
stacking helpers.

The cohort tier stands on one claim: running the hot chain over a
``(n_rows, n_samples)`` matrix produces **bit-identical** outputs to
the per-signal calls, row by row, including ragged rows whose zero
tail padding must never leak back into valid samples.  Every batched
kernel is pinned here against its per-row oracle with
``np.array_equal`` — exact equality, not tolerance — across ragged
lengths, FIR method choices and the Pan-Tompkins front half.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.dsp import fir as _fir
from repro.dsp import iir as _iir
from repro.dsp import morphology as _morph
from repro.dsp._signal import (
    check_lengths,
    odd_reflect_pad,
    odd_reflect_pad_rows,
    padded_row_view,
    stack_ragged,
)
from repro.ecg.pan_tompkins import PanTompkinsDetector
from repro.ecg.preprocessing import (
    EcgFilterConfig,
    design_ecg_fir,
    preprocess_ecg,
    preprocess_ecg_batch,
)
from repro.errors import SignalError
from repro.icg.preprocessing import (
    IcgFilterConfig,
    icg_from_impedance,
    icg_from_impedance_batch,
)

FS = 250.0

#: Ragged lengths long enough for every kernel under test (the
#: Pan-Tompkins learning phase needs 2 s = 500 samples at 250 Hz).
RAGGED = [2500, 2100, 3000, 2047, 2500]


def ragged_rows(lengths, seed=7):
    rng = np.random.default_rng(seed)
    return [rng.standard_normal(n) for n in lengths]


def assert_rows_equal(name, batch, signals, per_row_fn):
    """Each batched row must equal the per-signal call bit-for-bit."""
    for i, s in enumerate(signals):
        want = per_row_fn(s)
        got = batch[i, : s.size] if batch.ndim == 2 else batch[i]
        assert np.array_equal(want, np.asarray(got)), (
            f"{name}: row {i} diverges from the per-signal oracle")


# --- stacking helpers ----------------------------------------------------

def test_stack_ragged_left_aligns_and_zero_pads():
    signals = [np.array([1.0, 2.0, 3.0]), np.array([4.0])]
    matrix, lengths = stack_ragged(signals)
    assert matrix.shape == (2, 3)
    assert lengths.tolist() == [3, 1]
    assert matrix[0].tolist() == [1.0, 2.0, 3.0]
    assert matrix[1].tolist() == [4.0, 0.0, 0.0]


def test_stack_ragged_explicit_width_and_validation():
    matrix, _ = stack_ragged([np.ones(2)], width=5)
    assert matrix.shape == (1, 5)
    with pytest.raises(SignalError):
        stack_ragged([np.ones(4)], width=3)
    with pytest.raises(SignalError):
        stack_ragged([])
    with pytest.raises(SignalError):
        stack_ragged([np.ones((2, 2))])


def test_check_lengths_defaults_and_bounds():
    x = np.zeros((3, 10))
    assert check_lengths(x, None).tolist() == [10, 10, 10]
    assert check_lengths(x, [4, 10, 1]).tolist() == [4, 10, 1]
    with pytest.raises(SignalError):
        check_lengths(x, [4, 10])            # wrong shape
    with pytest.raises(SignalError):
        check_lengths(x, [0, 1, 1])          # below 1
    with pytest.raises(SignalError):
        check_lengths(x, [4, 11, 1])         # beyond width
    with pytest.raises(SignalError):
        check_lengths(np.zeros(10), None)    # not a matrix


@pytest.mark.parametrize("pad", [1, 3, 15])
def test_odd_reflect_pad_rows_matches_scalar(pad):
    signals = ragged_rows([60, 40, 25], seed=3)
    x, lengths = stack_ragged(signals)
    padded = odd_reflect_pad_rows(x, lengths, pad)
    assert padded.shape == (3, x.shape[1] + 2 * pad)
    for i, s in enumerate(signals):
        want = odd_reflect_pad(s, pad)
        assert np.array_equal(padded[i, : want.size], want)
        # Beyond each row's padded extent: zeros, never stale copies.
        assert not padded[i, want.size:].any()


def test_odd_reflect_pad_rows_rejects_short_rows():
    x, lengths = stack_ragged([np.ones(10), np.ones(3)])
    with pytest.raises(SignalError):
        odd_reflect_pad_rows(x, lengths, 5)


def test_padded_row_view_gathers_and_zero_extends():
    signal = np.arange(10.0)
    view = padded_row_view(signal, [0, 4, 8], 4)
    assert view.shape == (3, 4)
    assert view[0].tolist() == [0.0, 1.0, 2.0, 3.0]
    assert view[1].tolist() == [4.0, 5.0, 6.0, 7.0]
    assert view[2].tolist() == [8.0, 9.0, 0.0, 0.0]  # off-the-end zeros


# --- IIR batch kernels ---------------------------------------------------

def test_sosfilt_batch_bitwise_parity_ragged():
    signals = ragged_rows(RAGGED)
    x, lengths = stack_ragged(signals)
    sos = _iir.butter_bandpass(2, 5.0, 15.0, FS)
    y = _iir.sosfilt_batch(sos, x, lengths=lengths)
    assert_rows_equal("sosfilt_batch", y, signals,
                      lambda s: _iir.sosfilt(sos, s))


def test_sosfilt_batch_zi_and_closing_state_parity():
    signals = ragged_rows(RAGGED, seed=11)
    x, lengths = stack_ragged(signals)
    sos = _iir.butter_bandpass(2, 5.0, 15.0, FS)
    zi = _iir.sosfilt_zi(sos)
    y, zf = _iir.sosfilt_batch(sos, x, zi=zi, lengths=lengths)
    for i, s in enumerate(signals):
        want_y, want_zf = _iir.sosfilt(sos, s, zi=zi.copy())
        assert np.array_equal(y[i, : s.size], want_y)
        assert np.array_equal(zf[i], want_zf)


@pytest.mark.parametrize("design", [
    lambda: _iir.butter_lowpass(4, 20.0, FS),
    lambda: _iir.butter_highpass(2, 0.8, FS),
])
def test_sosfiltfilt_batch_bitwise_parity_ragged(design):
    signals = ragged_rows(RAGGED, seed=5)
    x, lengths = stack_ragged(signals)
    sos = design()
    y = _iir.sosfiltfilt_batch(sos, x, lengths=lengths)
    assert_rows_equal("sosfiltfilt_batch", y, signals,
                      lambda s: _iir.sosfiltfilt(sos, s))


def test_sosfiltfilt_batch_rejects_rows_shorter_than_pad():
    sos = _iir.butter_lowpass(4, 20.0, FS)
    x, lengths = stack_ragged([np.ones(100), np.ones(10)])
    with pytest.raises(SignalError):
        _iir.sosfiltfilt_batch(sos, x, lengths=lengths)


# --- FIR batch kernels ---------------------------------------------------

@pytest.mark.parametrize("method", ["auto", "direct", "fft"])
@pytest.mark.parametrize("n_taps", [33, 38])
def test_apply_fir_batch_bitwise_parity_ragged(method, n_taps):
    signals = ragged_rows(RAGGED, seed=n_taps)
    x, lengths = stack_ragged(signals)
    taps = (design_ecg_fir(FS) if n_taps == 33
            else np.ones(n_taps) / n_taps)
    y = _fir.apply_fir_batch(taps, x, lengths=lengths, method=method)
    assert_rows_equal(f"apply_fir_batch[{method}]", y, signals,
                      lambda s: _fir.apply_fir(taps, s, method=method))


def test_apply_fir_batch_ignores_tail_garbage():
    """Padding columns beyond each row's length must not influence the
    valid outputs — the contract that lets upstream kernels leave
    unspecified tails."""
    signals = ragged_rows([400, 250, 333], seed=2)
    taps = design_ecg_fir(FS)
    x, lengths = stack_ragged(signals)
    dirty = x.copy()
    for i, n in enumerate(lengths):
        dirty[i, n:] = 1e300                     # poison the tails
    clean = _fir.apply_fir_batch(taps, x, lengths=lengths)
    poisoned = _fir.apply_fir_batch(taps, dirty, lengths=lengths)
    for i, n in enumerate(lengths):
        assert np.array_equal(clean[i, :n], poisoned[i, :n])


def test_filtfilt_fir_batch_bitwise_parity_ragged():
    signals = ragged_rows(RAGGED, seed=13)
    x, lengths = stack_ragged(signals)
    taps = design_ecg_fir(FS)
    y = _fir.filtfilt_fir_batch(taps, x, lengths=lengths)
    assert_rows_equal("filtfilt_fir_batch", y, signals,
                      lambda s: _fir.filtfilt_fir(taps, s))


# --- morphology / ECG / ICG chains ---------------------------------------

def test_remove_baseline_batch_bitwise_parity_ragged():
    signals = ragged_rows(RAGGED, seed=17)
    x, lengths = stack_ragged(signals)
    y = _morph.remove_baseline_batch(x, FS, lengths=lengths)
    assert_rows_equal("remove_baseline_batch", y, signals,
                      lambda s: _morph.remove_baseline(s, FS))


def test_preprocess_ecg_batch_bitwise_parity_ragged():
    signals = ragged_rows(RAGGED, seed=19)
    x, lengths = stack_ragged(signals)
    config = EcgFilterConfig()
    y = preprocess_ecg_batch(x, FS, lengths=lengths, config=config)
    assert_rows_equal("preprocess_ecg_batch", y, signals,
                      lambda s: preprocess_ecg(s, FS, config))


def synth_ecg(n, seed, fs=FS):
    """Noisy baseline-wandering trace with unambiguous QRS spikes."""
    rng = np.random.default_rng(seed)
    t = np.arange(n) / fs
    x = 0.1 * rng.standard_normal(n) + 0.2 * np.sin(2 * np.pi * 0.3 * t)
    for beat in np.arange(0.4, n / fs - 0.4, 0.8):
        k = int(beat * fs)
        x[k - 2: k + 3] += [0.2, 0.6, 1.4, 0.6, 0.2][: min(5, n - k + 2)]
    return x


def test_detect_batch_bitwise_parity_ragged():
    signals = [synth_ecg(n, 100 + i) for i, n in enumerate(RAGGED)]
    x, lengths = stack_ragged(signals)
    detector = PanTompkinsDetector(FS)
    batched = detector.detect_batch(x, lengths=lengths)
    for i, s in enumerate(signals):
        assert np.array_equal(detector.detect(s), batched[i])


def test_detect_batch_reference_backend_falls_back():
    """With the scalar sosfilt reference selected there is no batched
    IIR twin; detect_batch must still answer, via the per-row path."""
    signals = [synth_ecg(n, 40 + i) for i, n in enumerate([600, 550])]
    x, lengths = stack_ragged(signals)
    detector = PanTompkinsDetector(FS)
    with _iir.use_sosfilt_backend("reference"):
        batched = detector.detect_batch(x, lengths=lengths)
        for i, s in enumerate(signals):
            assert np.array_equal(detector.detect(s), batched[i])


def test_detect_batch_rejects_short_rows():
    x, lengths = stack_ragged([np.zeros(600), np.zeros(300)])
    with pytest.raises(SignalError):
        PanTompkinsDetector(FS).detect_batch(x, lengths=lengths)


@pytest.mark.parametrize("config", [
    IcgFilterConfig(),
    IcgFilterConfig(highpass_hz=None),
])
def test_icg_from_impedance_batch_bitwise_parity_ragged(config):
    rng = np.random.default_rng(23)
    signals = [np.cumsum(rng.standard_normal(n)) * 0.01 + 25.0
               for n in RAGGED]
    x, lengths = stack_ragged(signals)
    y = icg_from_impedance_batch(x, FS, lengths=lengths, config=config)
    assert_rows_equal("icg_from_impedance_batch", y, signals,
                      lambda s: icg_from_impedance(s, FS, config))


# --- property-based ragged sweeps ----------------------------------------

@settings(max_examples=15, deadline=None)
@given(lengths=st.lists(st.integers(min_value=120, max_value=700),
                        min_size=1, max_size=5),
       seed=st.integers(min_value=0, max_value=2**31 - 1))
def test_hypothesis_fir_and_iir_parity(lengths, seed):
    """Random ragged stacks: the core linear kernels stay bit-exact."""
    signals = ragged_rows(lengths, seed=seed)
    x, row_lengths = stack_ragged(signals)
    taps = design_ecg_fir(FS)
    y_fir = _fir.apply_fir_batch(taps, x, lengths=row_lengths)
    assert_rows_equal("hyp fir", y_fir, signals,
                      lambda s: _fir.apply_fir(taps, s))
    sos = _iir.butter_lowpass(4, 20.0, FS)
    y_iir = _iir.sosfilt_batch(sos, x, lengths=row_lengths)
    assert_rows_equal("hyp iir", y_iir, signals,
                      lambda s: _iir.sosfilt(sos, s))
    y_ff = _iir.sosfiltfilt_batch(sos, x, lengths=row_lengths)
    assert_rows_equal("hyp filtfilt", y_ff, signals,
                      lambda s: _iir.sosfiltfilt(sos, s))


@settings(max_examples=10, deadline=None)
@given(lengths=st.lists(st.integers(min_value=520, max_value=1400),
                        min_size=1, max_size=4),
       seed=st.integers(min_value=0, max_value=2**31 - 1))
def test_hypothesis_full_chain_parity(lengths, seed):
    """Random ragged stacks through the full batched front half."""
    ecgs = [synth_ecg(n, seed + i) for i, n in enumerate(lengths)]
    x, row_lengths = stack_ragged(ecgs)
    filtered = preprocess_ecg_batch(x, FS, lengths=row_lengths)
    assert_rows_equal("hyp ecg", filtered, ecgs,
                      lambda s: preprocess_ecg(s, FS))
    detector = PanTompkinsDetector(FS)
    batched = detector.detect_batch(x, lengths=row_lengths)
    for i, s in enumerate(ecgs):
        assert np.array_equal(detector.detect(s), batched[i])
