"""Grey-scale morphology: algebraic laws and ECG baseline behaviour."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra.numpy import arrays

from repro.dsp import morphology
from repro.errors import ConfigurationError, SignalError

signals = arrays(np.float64, st.integers(min_value=5, max_value=120),
                 elements=st.floats(min_value=-100, max_value=100,
                                    allow_nan=False))
sizes = st.sampled_from([3, 5, 7, 9])


@given(x=signals, size=sizes)
def test_erosion_below_dilation(x, size):
    eroded = morphology.erode(x, size)
    dilated = morphology.dilate(x, size)
    assert np.all(eroded <= x + 1e-12)
    assert np.all(dilated >= x - 1e-12)
    assert np.all(eroded <= dilated)


@given(x=signals, size=sizes)
def test_opening_anti_extensive_closing_extensive(x, size):
    assert np.all(morphology.opening(x, size) <= x + 1e-12)
    assert np.all(morphology.closing(x, size) >= x - 1e-12)


@settings(max_examples=50)
@given(x=signals, size=sizes)
def test_opening_idempotent(x, size):
    once = morphology.opening(x, size)
    twice = morphology.opening(once, size)
    assert np.allclose(once, twice)


@settings(max_examples=50)
@given(x=signals, size=sizes)
def test_closing_idempotent(x, size):
    once = morphology.closing(x, size)
    twice = morphology.closing(once, size)
    assert np.allclose(once, twice)


@given(x=signals, size=sizes,
       offset=st.floats(min_value=-50, max_value=50, allow_nan=False))
def test_offset_equivariance(x, size, offset):
    """Flat-element morphology commutes with constant offsets."""
    assert np.allclose(morphology.erode(x + offset, size),
                       morphology.erode(x, size) + offset)
    assert np.allclose(morphology.dilate(x + offset, size),
                       morphology.dilate(x, size) + offset)


@given(x=signals, size=sizes)
def test_duality_erode_dilate(x, size):
    """Erosion of -x equals -dilation of x (grey-scale duality)."""
    assert np.allclose(morphology.erode(-x, size),
                       -morphology.dilate(x, size))


def test_erode_is_window_minimum():
    x = np.array([3.0, 1.0, 4.0, 1.0, 5.0])
    assert np.allclose(morphology.erode(x, 3), [1, 1, 1, 1, 1])


def test_dilate_is_window_maximum():
    x = np.array([3.0, 1.0, 4.0, 1.0, 5.0])
    assert np.allclose(morphology.dilate(x, 3), [3, 4, 4, 5, 5])


def test_size_one_is_identity():
    x = np.array([2.0, -1.0, 7.0])
    assert np.array_equal(morphology.erode(x, 1), x)
    assert np.array_equal(morphology.dilate(x, 1), x)


def test_even_size_rejected():
    with pytest.raises(ConfigurationError):
        morphology.erode(np.ones(10), 4)


def test_empty_signal_rejected():
    with pytest.raises(SignalError):
        morphology.erode(np.array([]), 3)


def test_default_element_lengths_scale_with_fs():
    first_250, second_250 = morphology.default_element_lengths(250.0)
    first_500, second_500 = morphology.default_element_lengths(500.0)
    assert first_250 % 2 == 1 and second_250 % 2 == 1
    assert second_250 > first_250
    assert first_500 > first_250


def test_baseline_estimation_removes_qrs_spikes():
    """A spiky signal on a slow ramp: the baseline tracks the ramp."""
    fs = 250.0
    t = np.arange(int(10 * fs)) / fs
    ramp = 0.3 * t
    spikes = np.zeros_like(t)
    for centre in np.arange(0.5, 9.5, 0.8):
        spikes += 1.0 * np.exp(-((t - centre) ** 2) / (2 * 0.01**2))
    baseline = morphology.estimate_baseline(ramp + spikes, fs)
    # Baseline must be close to the ramp, far below the spike peaks.
    inner = slice(int(fs), int(9 * fs))
    assert np.max(np.abs(baseline[inner] - ramp[inner])) < 0.15


def test_remove_baseline_centres_ecg(clean_recording):
    ecg = clean_recording.channel("ecg") + 0.8  # gross DC offset
    corrected = morphology.remove_baseline(ecg, clean_recording.fs)
    # After correction the isoelectric level sits near zero.
    assert abs(np.median(corrected)) < 0.05


def test_baseline_of_flat_signal_is_itself():
    x = np.full(100, 2.5)
    baseline = morphology.estimate_baseline(x, 250.0)
    assert np.allclose(baseline, 2.5)


def test_custom_lengths_accepted():
    x = np.random.default_rng(0).normal(size=300)
    out = morphology.estimate_baseline(x, 250.0, lengths=(11, 17))
    assert out.shape == x.shape
