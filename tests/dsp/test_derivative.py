"""Derivatives, Savitzky-Golay, line fits and landmark search."""

import numpy as np
import pytest
import scipy.signal as ss
from hypothesis import given, settings, strategies as st

from repro.dsp import derivative as d
from repro.errors import ConfigurationError, SignalError

FS = 250.0


@pytest.mark.parametrize("window,poly,deriv", [
    (9, 3, 1), (11, 4, 2), (11, 5, 3), (7, 2, 0),
])
def test_savgol_matches_scipy(window, poly, deriv):
    x = np.random.default_rng(1).normal(size=300)
    mine = d.savgol_derivative(x, FS, window, poly, deriv)
    ref = ss.savgol_filter(x, window, poly, deriv=deriv, delta=1.0 / FS)
    assert np.allclose(mine, ref, atol=1e-6 * max(1.0, np.abs(ref).max()))


@settings(max_examples=30)
@given(a=st.floats(-5, 5), b=st.floats(-5, 5), c=st.floats(-5, 5))
def test_savgol_exact_on_quadratics(a, b, c):
    """A quadratic's first derivative is recovered exactly."""
    t = np.arange(100) / FS
    x = a * t**2 + b * t + c
    d1 = d.savgol_derivative(x, FS, 9, 3, 1)
    assert np.allclose(d1, 2 * a * t + b, atol=1e-6 * (abs(a) + abs(b) + 1))


def test_savgol_coefficients_match_scipy():
    from scipy.signal import savgol_coeffs
    mine = d.savgol_coefficients(11, 4, 2, delta=1.0 / FS)
    ref = savgol_coeffs(11, 4, deriv=2, delta=1.0 / FS, use="dot")
    # scipy's "dot" convention orders taps for direct dot products with
    # the window; our correlation taps match it directly.
    assert np.allclose(mine, ref, atol=1e-8 * np.abs(ref).max())


def test_savgol_rejects_bad_window():
    with pytest.raises(ConfigurationError):
        d.savgol_coefficients(8, 3, 1)
    with pytest.raises(ConfigurationError):
        d.savgol_coefficients(9, 9, 1)
    with pytest.raises(ConfigurationError):
        d.savgol_coefficients(9, 3, 4)


def test_savgol_signal_shorter_than_window():
    with pytest.raises(SignalError):
        d.savgol_derivative(np.ones(5), FS, 9, 3, 1)


def test_central_difference_on_line():
    t = np.arange(50) / FS
    x = 3.0 * t + 1.0
    d1 = d.central_difference(x, FS)
    assert np.allclose(d1, 3.0, atol=1e-9)


def test_central_difference_order_validation():
    with pytest.raises(ConfigurationError):
        d.central_difference(np.ones(10), FS, order=0)


def test_smooth_derivative_dispatch():
    x = np.sin(2 * np.pi * 2.0 * np.arange(500) / FS)
    smooth = d.smooth_derivative(x, FS, order=1, smooth=True)
    raw = d.smooth_derivative(x, FS, order=1, smooth=False)
    expected = 2 * np.pi * 2.0 * np.cos(2 * np.pi * 2.0 * np.arange(500) / FS)
    inner = slice(20, -20)
    assert np.allclose(smooth[inner], expected[inner], atol=0.05)
    assert np.allclose(raw[inner], expected[inner], atol=0.05)


@settings(max_examples=30)
@given(slope=st.floats(-10, 10).filter(lambda s: abs(s) > 1e-3),
       intercept=st.floats(-10, 10))
def test_fit_line_exact(slope, intercept):
    t = np.linspace(0.0, 5.0, 40)
    fitted_slope, fitted_intercept = d.fit_line(t, slope * t + intercept)
    assert fitted_slope == pytest.approx(slope, rel=1e-9, abs=1e-9)
    assert fitted_intercept == pytest.approx(intercept, rel=1e-6, abs=1e-6)


def test_fit_line_x_intercept_roundtrip():
    slope, intercept = 2.0, -4.0
    assert d.line_x_intercept(slope, intercept) == pytest.approx(2.0)


def test_line_x_intercept_horizontal_rejected():
    with pytest.raises(SignalError):
        d.line_x_intercept(0.0, 1.0)


def test_fit_line_degenerate_abscissae():
    with pytest.raises(SignalError):
        d.fit_line(np.ones(5), np.arange(5.0))


def test_zero_crossings_simple():
    x = np.array([1.0, 0.5, -0.5, -1.0, 0.0, 2.0])
    assert np.array_equal(d.zero_crossings(x), [1, 4])


def test_zero_crossings_none():
    assert d.zero_crossings(np.array([1.0, 2.0, 3.0])).size == 0


def test_local_extrema_with_plateaus():
    x = np.array([0.0, 1.0, 0.0, 2.0, 2.0, 1.0, 3.0])
    assert np.array_equal(d.local_maxima(x), [1, 3])
    x2 = np.array([3.0, 1.0, 2.0, 0.0, 0.0, 2.0])
    assert np.array_equal(d.local_minima(x2), [1, 3])


def test_local_extrema_edges():
    x = np.array([5.0, 1.0, 2.0])
    assert 0 in d.local_maxima(x, include_edges=True)
    assert 0 not in d.local_maxima(x)


def test_sign_pattern_positions_basic():
    sig = np.concatenate([np.ones(5), -np.ones(5), np.ones(5), -np.ones(5)])
    assert np.array_equal(d.sign_pattern_positions(sig, "+-+-"), [0])
    assert np.array_equal(d.sign_pattern_positions(sig, "-+"), [5])


def test_sign_pattern_tolerance_bridges_noise():
    """Small ripples inside the tolerance band do not break a run."""
    sig = np.array([1.0, 1.0, 0.01, -0.01, 1.0, -1.0, -1.0, 1.0, -1.0])
    with_tol = d.sign_pattern_positions(sig, "+-+-", tol=0.05)
    assert with_tol.size >= 1


def test_sign_pattern_rejects_bad_pattern():
    with pytest.raises(ConfigurationError):
        d.sign_pattern_positions(np.ones(5), "+0-")
    with pytest.raises(ConfigurationError):
        d.sign_pattern_positions(np.ones(5), "")


def test_sign_pattern_no_match():
    sig = np.ones(10)
    assert d.sign_pattern_positions(sig, "+-").size == 0
