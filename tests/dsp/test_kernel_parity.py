"""Vectorized-kernel parity: blocked-scan SOS vs the scalar oracle,
FFT vs direct convolution, and the kernel cache contract.

The vectorized DSP layer must be a pure performance change: every
sample it produces has to match the scalar reference implementation
within 1e-9 relative tolerance, across random filter cascades, signal
lengths straddling the block boundaries, ``zi`` round-trips and the
FFT/direct crossover.
"""

import numpy as np
import pytest

from repro.dsp import fir as _fir
from repro.dsp import iir as _iir
from repro.dsp.kernels import (
    DEFAULT_BLOCK,
    KernelCache,
    default_kernel_cache,
    pole_block_kernel,
    savgol_kernel,
)
from repro.errors import ConfigurationError

RTOL = 1e-9


def assert_parity(got: np.ndarray, want: np.ndarray) -> None:
    """Max absolute deviation within 1e-9 of the reference's scale."""
    scale = max(1.0, float(np.max(np.abs(want))))
    assert np.max(np.abs(got - want)) <= RTOL * scale


def random_stable_sos(rng, n_sections: int) -> np.ndarray:
    """Random SOS cascade with every pole strictly inside the unit
    circle (radius <= 0.97, so reference rounding stays benign)."""
    sections = []
    for _ in range(n_sections):
        radius = rng.uniform(0.1, 0.97)
        angle = rng.uniform(0.0, np.pi)
        a1 = -2.0 * radius * np.cos(angle)
        a2 = radius * radius
        b0, b1, b2 = rng.standard_normal(3)
        sections.append([b0, b1, b2, 1.0, a1, a2])
    return np.asarray(sections)


# --- blocked-scan sosfilt vs the scalar oracle ---------------------------

@pytest.mark.parametrize("n_sections", [1, 2, 3, 4])
@pytest.mark.parametrize("n_samples", [
    1, 2, 3, DEFAULT_BLOCK - 1, DEFAULT_BLOCK, DEFAULT_BLOCK + 1,
    2 * DEFAULT_BLOCK + 7, 1000,
])
def test_sosfilt_matches_reference_random_cascades(n_sections, n_samples):
    rng = np.random.default_rng(1000 * n_sections + n_samples)
    for trial in range(3):
        sos = random_stable_sos(rng, n_sections)
        x = rng.standard_normal(n_samples)
        assert_parity(_iir._sosfilt_vec(sos, x),
                      _iir._sosfilt_ref(sos, x))


@pytest.mark.parametrize("n_samples", [1, 2, 5, 64, 65, 300])
def test_sosfilt_zi_round_trip_matches_reference(n_samples):
    rng = np.random.default_rng(n_samples)
    sos = random_stable_sos(rng, 3)
    x = rng.standard_normal(n_samples)
    zi = rng.standard_normal((3, 2))
    y_ref, zf_ref = _iir._sosfilt_ref(sos, x, zi=zi.copy())
    y_vec, zf_vec = _iir._sosfilt_vec(sos, x, zi=zi.copy())
    assert_parity(y_vec, y_ref)
    assert_parity(zf_vec, zf_ref)


def test_sosfilt_chunked_equals_one_shot():
    """Filtering in chunks through zf hand-off equals one pass — the
    streaming contract the state computation must preserve."""
    rng = np.random.default_rng(7)
    sos = random_stable_sos(rng, 2)
    x = rng.standard_normal(500)
    whole = _iir.sosfilt(sos, x)
    state = np.zeros((2, 2))
    pieces = []
    for chunk in np.array_split(x, [3, 64, 131, 400]):
        y, state = _iir.sosfilt(sos, chunk, zi=state)
        pieces.append(y)
    assert_parity(np.concatenate(pieces), whole)


@pytest.mark.parametrize("design", [
    lambda: _iir.butter_lowpass(4, 20.0, 250.0),
    lambda: _iir.butter_highpass(2, 0.8, 250.0),
    lambda: _iir.butter_bandpass(2, 5.0, 15.0, 250.0),
    lambda: _iir.butter_bandstop(2, 45.0, 55.0, 250.0),
])
def test_sosfiltfilt_backend_parity_on_paper_designs(design):
    rng = np.random.default_rng(42)
    x = rng.standard_normal(3000)
    sos = design()
    vectorized = _iir.sosfiltfilt(sos, x)
    with _iir.use_sosfilt_backend("reference"):
        reference = _iir.sosfiltfilt(sos, x)
    assert_parity(vectorized, reference)


def test_backend_toggle_dispatch_and_validation():
    assert _iir.sosfilt_backend() == "vectorized"
    with _iir.use_sosfilt_backend("reference"):
        assert _iir.sosfilt_backend() == "reference"
    assert _iir.sosfilt_backend() == "vectorized"
    with pytest.raises(ConfigurationError):
        _iir.set_sosfilt_backend("cuda")
    # The context manager restores the backend even on error.
    with pytest.raises(RuntimeError):
        with _iir.use_sosfilt_backend("reference"):
            raise RuntimeError("boom")
    assert _iir.sosfilt_backend() == "vectorized"


# --- FFT vs direct FIR application ---------------------------------------

@pytest.mark.parametrize("n_taps", [
    3, 33, _fir.FFT_CROSSOVER_TAPS - 1, _fir.FFT_CROSSOVER_TAPS,
    _fir.FFT_CROSSOVER_TAPS + 1, 513,
])
@pytest.mark.parametrize("n_samples", [700, 4096, 5000])
def test_apply_fir_fft_matches_direct(n_taps, n_samples):
    rng = np.random.default_rng(n_taps * 7 + n_samples)
    taps = rng.standard_normal(n_taps)
    x = rng.standard_normal(n_samples)
    assert_parity(_fir.apply_fir(taps, x, method="fft"),
                  _fir.apply_fir(taps, x, method="direct"))
    # Whatever auto picks, it must agree too.
    assert_parity(_fir.apply_fir(taps, x),
                  _fir.apply_fir(taps, x, method="direct"))


def test_filtfilt_fir_fft_matches_direct():
    rng = np.random.default_rng(3)
    taps = _fir.design_lowpass(320, 30.0, 1000.0)
    x = rng.standard_normal(6000)
    assert_parity(_fir.filtfilt_fir(taps, x, method="fft"),
                  _fir.filtfilt_fir(taps, x, method="direct"))


def test_apply_fir_auto_crossover_boundary():
    """Auto switches to FFT exactly at the active crossover, and
    never for signals shorter than the kernel.

    The crossover is pinned for the test — in production it comes from
    the startup micro-calibration (see ``repro.dsp.calibration``),
    whose own suite covers the adaptive behaviour.
    """
    from repro.dsp.calibration import use_crossover

    rng = np.random.default_rng(5)
    long_x = rng.standard_normal(4 * _fir.FFT_CROSSOVER_TAPS)
    below = rng.standard_normal(_fir.FFT_CROSSOVER_TAPS - 1)
    at = rng.standard_normal(_fir.FFT_CROSSOVER_TAPS)
    with use_crossover(_fir.FFT_CROSSOVER_TAPS):
        assert _fir._resolve_method("auto", below, long_x) == "direct"
        assert _fir._resolve_method("auto", at, long_x) == "fft"
        short_x = rng.standard_normal(_fir.FFT_CROSSOVER_TAPS // 2)
        assert _fir._resolve_method("auto", at, short_x) == "direct"
    with pytest.raises(ConfigurationError):
        _fir.apply_fir(at, long_x, method="overlap-save")


# --- kernel cache contract ----------------------------------------------

def test_pole_block_kernel_cached_and_frozen():
    H1, G1 = pole_block_kernel(-1.5, 0.6, block=32)
    H2, G2 = pole_block_kernel(-1.5, 0.6, block=32)
    assert H1 is H2 and G1 is G2
    assert not H1.flags.writeable and not G1.flags.writeable
    assert H1.shape == (32, 32) and G1.shape == (32, 2)


def test_pole_block_kernel_solves_recurrence():
    """H/G reproduce the scalar recurrence from arbitrary state."""
    rng = np.random.default_rng(11)
    a1, a2 = -1.2, 0.5
    block = 16
    H, G = pole_block_kernel(a1, a2, block=block)
    f = rng.standard_normal(block)
    y_prev1, y_prev2 = rng.standard_normal(2)
    expected = np.empty(block)
    p1, p2 = y_prev1, y_prev2
    for n in range(block):
        expected[n] = f[n] - a1 * p1 - a2 * p2
        p1, p2 = expected[n], p1
    got = H @ f + G @ np.array([y_prev1, y_prev2])
    assert_parity(got, expected)


def test_savgol_kernel_shared_between_calls():
    cache = default_kernel_cache()
    first = savgol_kernel(9, 3)
    hits_before = cache.hits
    second = savgol_kernel(9, 3)
    assert first is second
    assert cache.hits == hits_before + 1
    assert not first.flags.writeable


def test_kernel_cache_unhashable_key_falls_back_to_building():
    cache = KernelCache()
    value = cache.get(["not", "hashable"], lambda: np.arange(3.0))
    assert value.tolist() == [0.0, 1.0, 2.0]
    assert len(cache) == 0 and cache.misses == 0


def test_kernel_cache_stats_and_clear():
    cache = KernelCache()
    cache.get("a", lambda: np.ones(2))
    cache.get("a", lambda: np.ones(2))
    assert cache.stats() == {"hits": 1, "misses": 1, "entries": 1}
    cache.clear()
    assert cache.stats() == {"hits": 0, "misses": 0, "entries": 0}
