"""Window functions: scipy oracles, symmetry, parameter validation."""

import numpy as np
import pytest
import scipy.signal as ss
from hypothesis import given, strategies as st

from repro.dsp import windows
from repro.errors import ConfigurationError


@pytest.mark.parametrize("name", ["hamming", "hann", "blackman",
                                  "blackmanharris"])
@pytest.mark.parametrize("n", [5, 32, 33, 128])
def test_matches_scipy_symmetric(name, n):
    mine = windows.get_window(name, n)
    ref = ss.get_window(name, n, fftbins=False)
    assert np.allclose(mine, ref, atol=1e-12)


@pytest.mark.parametrize("name", ["hamming", "hann", "blackman"])
@pytest.mark.parametrize("n", [16, 63])
def test_matches_scipy_periodic(name, n):
    mine = windows.get_window(name, n, periodic=True)
    ref = ss.get_window(name, n, fftbins=True)
    assert np.allclose(mine, ref, atol=1e-12)


@pytest.mark.parametrize("beta", [0.0, 2.0, 8.6, 14.0])
def test_kaiser_matches_scipy(beta):
    mine = windows.kaiser(41, beta)
    ref = ss.get_window(("kaiser", beta), 41, fftbins=False)
    assert np.allclose(mine, ref, atol=1e-12)


def test_kaiser_via_get_window_tuple():
    mine = windows.get_window(("kaiser", 5.0), 21)
    assert np.allclose(mine, windows.kaiser(21, 5.0))


@given(n=st.integers(min_value=3, max_value=200))
def test_symmetric_windows_are_symmetric(n):
    for name in ("hamming", "hann", "blackman", "blackmanharris"):
        w = windows.get_window(name, n)
        assert np.allclose(w, w[::-1], atol=1e-12)


@given(n=st.integers(min_value=1, max_value=100))
def test_windows_bounded_by_one(n):
    for name in ("hamming", "hann", "blackman"):
        w = windows.get_window(name, n)
        assert np.all(w <= 1.0 + 1e-12)
        assert np.all(w >= -1e-12)


def test_rectangular_is_ones():
    assert np.array_equal(windows.rectangular(7), np.ones(7))


def test_length_one_windows():
    for name in ("hamming", "hann", "blackman", "blackmanharris"):
        assert np.array_equal(windows.get_window(name, 1), np.ones(1))
    assert np.array_equal(windows.kaiser(1, 8.0), np.ones(1))


def test_kaiser_beta_regimes():
    assert windows.kaiser_beta(10.0) == 0.0
    assert 0.0 < windows.kaiser_beta(30.0) < windows.kaiser_beta(60.0)


def test_kaiser_order_increases_with_attenuation():
    low = windows.kaiser_order(30.0, 0.05)
    high = windows.kaiser_order(80.0, 0.05)
    assert high > low > 0


def test_kaiser_order_rejects_bad_transition():
    with pytest.raises(ConfigurationError):
        windows.kaiser_order(60.0, 0.7)


@pytest.mark.parametrize("bad_n", [0, -3, 2.5])
def test_invalid_length_rejected(bad_n):
    with pytest.raises(ConfigurationError):
        windows.hamming(bad_n)


def test_unknown_window_rejected():
    with pytest.raises(ConfigurationError):
        windows.get_window("tukey", 10)


def test_unknown_parametric_window_rejected():
    with pytest.raises(ConfigurationError):
        windows.get_window(("chebwin", 100.0), 10)


def test_kaiser_negative_beta_rejected():
    with pytest.raises(ConfigurationError):
        windows.kaiser(11, -1.0)
