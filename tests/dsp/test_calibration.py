"""Adaptive FFT-crossover calibration: search, clamps, overrides,
snapshots."""

import numpy as np
import pytest

from repro.dsp import fir as _fir
from repro.dsp.calibration import (
    DEFAULT_CROSSOVER_TAPS,
    MAX_CROSSOVER_TAPS,
    MIN_CROSSOVER_TAPS,
    FftCrossoverTable,
    use_crossover,
)
from repro.errors import ConfigurationError


@pytest.fixture(autouse=True)
def _no_disk_cache(monkeypatch):
    """Keep the per-host calibration cache out of unit tests."""
    monkeypatch.setenv("REPRO_FFT_CACHE", "")


def fake_measure(threshold):
    """A deterministic 'FFT wins at >= threshold taps' oracle."""

    def measure(n_samples, n_taps):
        return n_taps >= threshold

    return measure


def table(threshold, **kwargs):
    kwargs.setdefault("calibrate", True)
    kwargs.setdefault("override", None)
    return FftCrossoverTable(measure=fake_measure(threshold), **kwargs)


def test_bucket_is_power_of_two_and_capped():
    assert FftCrossoverTable.bucket(1000) == 1024
    assert FftCrossoverTable.bucket(1024) == 1024
    assert FftCrossoverTable.bucket(1025) == 2048
    assert FftCrossoverTable.bucket(10 ** 9) == FftCrossoverTable.bucket(
        16384)


@pytest.mark.parametrize("threshold,expected", [
    (64, 64),
    (100, 128),          # next candidate at/above the true threshold
    (256, 256),
    (1000, 1024),
])
def test_calibration_finds_candidate_threshold(threshold, expected):
    t = table(threshold)
    assert t.crossover_taps(8192) == expected


def test_calibration_clamped_to_floor():
    """Even a host where FFT always wins keeps short kernels direct —
    the published chain's designs must be timing-independent."""
    t = table(1)
    assert t.crossover_taps(8192) == MIN_CROSSOVER_TAPS


def test_calibration_defaults_when_fft_never_wins():
    t = table(10 ** 9)
    value = t.crossover_taps(8192)
    assert value == max(DEFAULT_CROSSOVER_TAPS, MIN_CROSSOVER_TAPS)
    assert value <= MAX_CROSSOVER_TAPS


def test_calibration_runs_once_per_bucket():
    calls = []

    def measure(n_samples, n_taps):
        calls.append((n_samples, n_taps))
        return n_taps >= 256

    t = FftCrossoverTable(calibrate=True, override=None, measure=measure)
    first = t.crossover_taps(5000)
    n_calls = len(calls)
    assert n_calls > 0
    assert t.crossover_taps(5000) == first
    assert t.crossover_taps(5001) == first       # same bucket
    assert len(calls) == n_calls                 # no re-measurement


def test_override_disables_measurement():
    def explode(n_samples, n_taps):              # pragma: no cover
        raise AssertionError("measured despite override")

    t = FftCrossoverTable(override=123, measure=explode)
    assert t.crossover_taps(4096) == 123
    assert t.resolve(123, 4096) == "fft"
    assert t.resolve(122, 4096) == "direct"


def test_env_override(monkeypatch):
    monkeypatch.setenv("REPRO_FFT_CROSSOVER", "300")
    t = FftCrossoverTable()
    assert t.override == 300
    assert t.crossover_taps(100000) == 300
    monkeypatch.setenv("REPRO_FFT_CROSSOVER", "many")
    with pytest.raises(ConfigurationError):
        FftCrossoverTable()


def test_env_disables_calibration(monkeypatch):
    monkeypatch.setenv("REPRO_FFT_CALIBRATE", "0")
    t = FftCrossoverTable(measure=fake_measure(64))
    assert not t.calibrate
    assert t.crossover_taps(8192) == DEFAULT_CROSSOVER_TAPS


def test_resolve_never_ffts_signals_shorter_than_kernel():
    t = table(64)
    assert t.resolve(128, 100) == "direct"       # n <= taps
    assert t.resolve(128, 8192) == "fft"


def test_snapshot_install_keeps_worker_in_lockstep():
    t = table(100)
    t.crossover_taps(4096)
    clone = FftCrossoverTable.from_snapshot(t.snapshot())
    # Calibrated bucket: identical answer, no re-measurement possible.
    assert clone.crossover_taps(4096) == t.crossover_taps(4096)
    assert not clone.calibrate
    # Un-calibrated bucket: falls back to the shared default, never to
    # a fresh (possibly disagreeing) measurement.
    assert clone.crossover_taps(16384) == clone.default


def test_stats_reports_mode_and_table():
    t = table(256)
    t.crossover_taps(4096)
    stats = t.stats()
    assert stats["mode"] == "calibrated"
    assert stats["table"] == {4096: 256}
    assert FftCrossoverTable(override=50).stats()["mode"] == "override"


def test_use_crossover_pins_process_wide():
    rng = np.random.default_rng(0)
    x = rng.standard_normal(4 * 512)
    with use_crossover(512):
        assert _fir._resolve_method("auto", rng.standard_normal(511),
                                    x) == "direct"
        assert _fir._resolve_method("auto", rng.standard_normal(512),
                                    x) == "fft"
    with pytest.raises(ConfigurationError):
        use_crossover(0)


def test_real_calibration_smoke():
    """The genuine measurement path returns a sane, clamped value and
    caches it (timing-dependent, so only sanity is asserted)."""
    t = FftCrossoverTable(calibrate=True, override=None)
    value = t.crossover_taps(4096)
    assert MIN_CROSSOVER_TAPS <= value <= MAX_CROSSOVER_TAPS
    assert t.crossover_taps(4096) == value


def test_disk_cache_round_trips_between_processes(tmp_path, monkeypatch):
    """A second table (a fresh process) resolves previously measured
    buckets from the per-host cache instead of re-timing them."""
    monkeypatch.setenv("REPRO_FFT_CACHE", str(tmp_path / "fft.json"))
    first = table(100)
    assert first.crossover_taps(4096) == 128

    def explode(n_samples, n_taps):              # pragma: no cover
        raise AssertionError("re-measured a cached bucket")

    second = FftCrossoverTable(calibrate=True, override=None,
                               measure=explode)
    assert second.crossover_taps(4096) == 128
    # An unmeasured bucket still calibrates (and persists) normally.
    third = table(512)
    assert third.crossover_taps(16384) == 512
    assert table(512).crossover_taps(4096) == 128


def test_disk_cache_disabled_by_empty_env(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_FFT_CACHE", "")
    t = table(100)
    t.crossover_taps(4096)
    assert not list(tmp_path.iterdir())
