"""Resampling: rate conversion and beat-phase normalisation."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.dsp import resample
from repro.errors import ConfigurationError, SignalError

FS = 250.0


def test_resample_to_length_preserves_endpoints():
    x = np.array([1.0, 5.0, 2.0, 8.0])
    y = resample.resample_to_length(x, 50)
    assert y[0] == pytest.approx(1.0)
    assert y[-1] == pytest.approx(8.0)
    assert y.size == 50


@settings(max_examples=30)
@given(n_out=st.integers(min_value=2, max_value=400),
       value=st.floats(-50, 50, allow_nan=False))
def test_resample_to_length_constant(n_out, value):
    y = resample.resample_to_length(np.full(17, value), n_out)
    assert np.allclose(y, value)


def test_resample_to_length_single_sample():
    assert np.allclose(resample.resample_to_length(np.array([3.0]), 5), 3.0)


def test_resample_to_length_rejects_short_output():
    with pytest.raises(ConfigurationError):
        resample.resample_to_length(np.ones(10), 1)


def test_linear_resample_interpolates():
    t_in = np.array([0.0, 1.0, 2.0])
    x = np.array([0.0, 10.0, 20.0])
    y = resample.linear_resample(x, t_in, np.array([0.5, 1.5]))
    assert np.allclose(y, [5.0, 15.0])


def test_linear_resample_requires_increasing_times():
    with pytest.raises(SignalError):
        resample.linear_resample(np.ones(3), np.array([0.0, 0.0, 1.0]),
                                 np.array([0.5]))


def test_decimate_preserves_low_frequency_tone():
    t = np.arange(4000) / FS
    x = np.sin(2 * np.pi * 5.0 * t)
    y = resample.decimate(x, 2, FS)
    t2 = np.arange(y.size) * 2 / FS
    inner = slice(100, -100)
    assert np.allclose(y[inner], np.sin(2 * np.pi * 5.0 * t2)[inner],
                       atol=0.02)


def test_decimate_removes_aliasing_tone():
    """A tone above the new Nyquist must be attenuated, not aliased."""
    t = np.arange(4000) / FS
    x = np.sin(2 * np.pi * 100.0 * t)  # above 62.5 Hz new Nyquist
    y = resample.decimate(x, 2, FS)
    assert np.std(y[100:-100]) < 0.05


def test_decimate_factor_one_is_copy():
    x = np.random.default_rng(0).normal(size=100)
    y = resample.decimate(x, 1, FS)
    assert np.array_equal(x, y)
    assert y is not x


def test_decimate_rejects_bad_factor():
    with pytest.raises(ConfigurationError):
        resample.decimate(np.ones(100), 0, FS)
    with pytest.raises(ConfigurationError):
        resample.decimate(np.ones(100), 2.5, FS)


def test_decimate_rejects_short_signal():
    with pytest.raises(SignalError):
        resample.decimate(np.ones(10), 4, FS)


def test_resample_rate_downsample_length():
    x = np.sin(2 * np.pi * 5.0 * np.arange(1000) / FS)
    y = resample.resample_rate(x, FS, 125.0)
    assert abs(y.size - 500) <= 2


def test_resample_rate_upsample_preserves_tone():
    t = np.arange(500) / FS
    x = np.sin(2 * np.pi * 3.0 * t)
    y = resample.resample_rate(x, FS, 1000.0)
    t_up = np.arange(y.size) / 1000.0
    assert np.allclose(y, np.sin(2 * np.pi * 3.0 * t_up), atol=0.01)


def test_resample_rate_identity():
    x = np.random.default_rng(1).normal(size=64)
    y = resample.resample_rate(x, FS, FS)
    assert np.array_equal(x, y)


def test_resample_rate_rejects_nonpositive():
    with pytest.raises(ConfigurationError):
        resample.resample_rate(np.ones(10), 0.0, 100.0)
