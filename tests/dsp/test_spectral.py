"""Spectral estimation: power accounting and peak finding."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.dsp import spectral
from repro.errors import ConfigurationError, SignalError

FS = 250.0


def test_periodogram_peak_at_tone():
    t = np.arange(2048) / FS
    x = np.sin(2 * np.pi * 30.0 * t)
    freqs, psd = spectral.periodogram(x, FS)
    assert freqs[np.argmax(psd)] == pytest.approx(30.0, abs=0.2)


def test_periodogram_power_of_sine():
    """A unit sine has power 1/2; the integrated PSD must match."""
    t = np.arange(4096) / FS
    x = np.sin(2 * np.pi * 25.0 * t)
    freqs, psd = spectral.periodogram(x, FS, window="hann")
    assert spectral.total_power(freqs, psd) == pytest.approx(0.5, rel=0.05)


def test_welch_reduces_variance():
    rng = np.random.default_rng(0)
    x = rng.normal(size=8192)
    _, psd_single = spectral.periodogram(x, FS)
    _, psd_welch = spectral.welch(x, FS, nperseg=512)
    assert psd_welch.std() < psd_single.std()


def test_welch_white_noise_flat_level():
    """White noise with variance s^2 has PSD ~ s^2 / (fs/2)."""
    rng = np.random.default_rng(1)
    sigma = 2.0
    x = sigma * rng.normal(size=65536)
    freqs, psd = spectral.welch(x, FS, nperseg=1024)
    expected = sigma**2 / (FS / 2.0)
    inner = (freqs > 10) & (freqs < 110)
    assert np.median(psd[inner]) == pytest.approx(expected, rel=0.1)


def test_band_power_splits_total():
    rng = np.random.default_rng(2)
    x = rng.normal(size=4096)
    freqs, psd = spectral.welch(x, FS, nperseg=512)
    low = spectral.band_power(freqs, psd, 0.0, 60.0)
    high = spectral.band_power(freqs, psd, 60.0, FS / 2.0)
    total = spectral.total_power(freqs, psd)
    assert low + high == pytest.approx(total, rel=0.02)


def test_band_power_empty_band_is_zero():
    freqs = np.linspace(0, 125, 100)
    psd = np.ones(100)
    assert spectral.band_power(freqs, psd, 200.0, 210.0) == 0.0


def test_band_power_rejects_inverted_band():
    freqs = np.linspace(0, 125, 100)
    with pytest.raises(ConfigurationError):
        spectral.band_power(freqs, np.ones(100), 50.0, 10.0)


def test_band_power_rejects_mismatched_shapes():
    with pytest.raises(SignalError):
        spectral.band_power(np.ones(5), np.ones(6), 0.0, 1.0)


def test_dominant_frequency_finds_tone():
    t = np.arange(8192) / FS
    x = 0.2 * np.sin(2 * np.pi * 7.0 * t) + 0.05 * np.sin(
        2 * np.pi * 80.0 * t)
    assert spectral.dominant_frequency(x, FS) == pytest.approx(7.0, abs=0.5)


def test_dominant_frequency_band_restricted():
    t = np.arange(8192) / FS
    x = 1.0 * np.sin(2 * np.pi * 7.0 * t) + 0.5 * np.sin(2 * np.pi * 80.0 * t)
    found = spectral.dominant_frequency(x, FS, low_hz=50.0, high_hz=120.0)
    assert found == pytest.approx(80.0, abs=0.5)


def test_dominant_frequency_empty_band_rejected():
    with pytest.raises(SignalError):
        spectral.dominant_frequency(np.ones(256), FS, low_hz=500.0,
                                    high_hz=600.0)


def test_respiration_rate_recoverable_from_impedance(device_recording):
    """The respiration model's rate shows up in the z channel PSD."""
    z = device_recording.channel("z")
    rate = spectral.dominant_frequency(z - z.mean(), device_recording.fs,
                                       low_hz=0.1, high_hz=0.6)
    assert 0.1 < rate < 0.6


@settings(max_examples=20)
@given(scale=st.floats(min_value=0.1, max_value=10.0))
def test_psd_scales_quadratically(scale):
    rng = np.random.default_rng(3)
    x = rng.normal(size=1024)
    _, psd1 = spectral.welch(x, FS, nperseg=256)
    _, psd2 = spectral.welch(scale * x, FS, nperseg=256)
    assert np.allclose(psd2, scale**2 * psd1, rtol=1e-9)


def test_welch_invalid_params():
    x = np.ones(100)
    with pytest.raises(ConfigurationError):
        spectral.welch(x, FS, nperseg=4)
    with pytest.raises(ConfigurationError):
        spectral.welch(x, FS, overlap=1.0)
    with pytest.raises(ConfigurationError):
        spectral.welch(x, -1.0)
