"""Every example script must run end-to-end and produce its report.

The examples double as living documentation; a broken example is a
broken promise to the first-time user, so they are executed (not just
imported) as part of the suite.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[1] / "examples"
EXAMPLES = sorted(p.stem for p in EXAMPLES_DIR.glob("*.py"))

#: A fragment each example's output must contain (proves the script got
#: to its conclusion, not merely that it didn't crash early).
EXPECTED_OUTPUT = {
    "quickstart": "ground truth",
    "position_study": "correlation",
    "battery_planning": "Battery life",
    "streaming_firmware": "CPU duty",
    "cardiac_output": "Sramek",
    "carrier_demodulation": "Demodulated envelope",
    "chf_monitoring": "ICG multi-parameter alert",
    "body_composition": "ECW fraction",
    "device_fleet": "bit-identical",
    "durable_ingest": "bit-identical across all",
}


def _load_and_run(name: str):
    spec = importlib.util.spec_from_file_location(
        f"example_{name}", EXAMPLES_DIR / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    try:
        spec.loader.exec_module(module)
        module.main()
    finally:
        sys.modules.pop(spec.name, None)


def test_every_example_is_covered():
    """A new example must register its expected output fragment."""
    assert set(EXAMPLES) == set(EXPECTED_OUTPUT)


@pytest.mark.parametrize("name", EXAMPLES)
def test_example_runs_to_completion(name, capsys):
    _load_and_run(name)
    out = capsys.readouterr().out
    assert EXPECTED_OUTPUT[name] in out
    assert len(out.splitlines()) >= 5
