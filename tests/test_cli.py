"""Command-line interface."""

import pytest

from repro import cli


def test_measure_prints_payload(capsys):
    code = cli.main(["measure", "--subject", "3", "--duration", "12"])
    out = capsys.readouterr().out
    assert code == 0
    assert "Z0" in out and "LVET" in out and "PEP" in out and "HR" in out
    assert "Subject 3" in out


def test_measure_thoracic_setup(capsys):
    code = cli.main(["measure", "--setup", "thoracic", "--duration",
                     "12"])
    out = capsys.readouterr().out
    assert code == 0
    assert "thoracic" in out


def test_cohort_batch_prints_payload_rows(capsys):
    code = cli.main(["cohort", "--duration", "12", "--jobs", "2"])
    out = capsys.readouterr().out
    assert code == 0
    for column in ("Z0", "LVET", "PEP", "HR"):
        assert column in out
    for sid in range(1, 6):
        assert f"Subject {sid}" in out


def test_cohort_process_backend(capsys):
    code = cli.main(["cohort", "--duration", "12", "--jobs", "2",
                     "--backend", "process"])
    out = capsys.readouterr().out
    assert code == 0
    for sid in range(1, 6):
        assert f"Subject {sid}" in out


def test_cohort_rejects_unknown_backend():
    with pytest.raises(SystemExit):
        cli.main(["cohort", "--backend", "greenlet"])


def test_cache_stats_reports_hit_rates(capsys):
    code = cli.main(["cache-stats", "--duration", "8"])
    out = capsys.readouterr().out
    assert code == 0
    assert "designs" in out and "kernels" in out
    assert "hit rate" in out


def test_cache_stats_reports_the_ingest_plane(capsys):
    code = cli.main(["cache-stats", "--duration", "8"])
    out = capsys.readouterr().out
    assert code == 0
    assert "Zero-copy ingest plane" in out
    assert "descriptor chunks" in out
    assert "0 B copied on the hot path" in out
    assert "% of its ring" in out
    assert "group commit" in out and "fsync" in out


def test_power_reports_106_hours(capsys):
    code = cli.main(["power"])
    out = capsys.readouterr().out
    assert code == 0
    assert "106" in out


def test_monitor_reports_alert_days(capsys):
    code = cli.main(["monitor", "--days", "40", "--onset", "20",
                     "--seed", "7"])
    out = capsys.readouterr().out
    assert code == 0
    assert "alert" in out
    assert "onset day 20" in out


def test_study_quick_renders_tables(capsys):
    code = cli.main(["study", "--quick"])
    out = capsys.readouterr().out
    assert code == 0
    assert "TABLE II" in out
    assert "Fig 6" in out
    assert "Overall correlation" in out


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        cli.main(["frobnicate"])


def test_invalid_subject_rejected():
    with pytest.raises(SystemExit):
        cli.main(["measure", "--subject", "9"])


def test_parser_help_lists_commands():
    parser = cli.build_parser()
    help_text = parser.format_help()
    for command in ("measure", "cohort", "study", "power", "monitor",
                    "cache-stats"):
        assert command in help_text


def test_ingest_streams_a_fleet(capsys):
    code = cli.main(["ingest", "--devices", "3", "--duration", "8",
                     "--chunk", "1", "--jobs", "2"])
    out = capsys.readouterr().out
    assert code == 0
    for device in ("device-000", "device-001", "device-002"):
        assert device in out
    assert "backpressure" in out
    assert "Queue:" in out


def test_ingest_journaled_multiround_and_recover(tmp_path, capsys):
    """The CLI acceptance path: a journaled churning multi-round
    ingest leaves open sessions on disk; `repro recover` finalizes the
    completed ones and reports the open ones."""
    journal = tmp_path / "journal"
    code = cli.main(["ingest", "--devices", "3", "--duration", "8",
                     "--chunk", "2", "--jobs", "1", "--rounds", "2",
                     "--dropout", "0.5", "--no-rejoin", "--seed", "4",
                     "--journal", str(journal)])
    out = capsys.readouterr().out
    assert code == 0
    assert "device-000-r0" in out
    assert "Open sessions (journaled, awaiting trailer):" in out
    assert f"repro recover {journal}" in out

    code = cli.main(["recover", str(journal)])
    recover_out = capsys.readouterr().out
    assert code == 0
    assert "Recovered" in recover_out
    assert "Still open (no trailer journaled):" in recover_out
    # Every payload row the ingest printed is reproduced bit-for-bit
    # by recovery (same formatting of the same numbers).
    for line in out.splitlines():
        if line.startswith("  device-") and "Z0" in line:
            assert line in recover_out


def test_recover_reports_damage_with_exit_code(tmp_path, capsys):
    journal = tmp_path / "journal"
    code = cli.main(["ingest", "--devices", "2", "--duration", "8",
                     "--chunk", "2", "--jobs", "1", "--journal",
                     str(journal)])
    assert code == 0
    capsys.readouterr()
    from tests.ingest.faults import flip_crc_byte

    victim = flip_crc_byte(journal, index=1)
    code = cli.main(["recover", str(journal)])
    out = capsys.readouterr().out
    assert code == 1
    assert f"DAMAGED {victim}" in out


def test_recover_rejects_missing_journal(tmp_path, capsys):
    code = cli.main(["recover", str(tmp_path / "nowhere")])
    assert code == 1
    assert "error" in capsys.readouterr().err


def test_ingest_process_finalize_backend(capsys):
    code = cli.main(["ingest", "--devices", "2", "--duration", "8",
                     "--chunk", "2", "--jobs", "2", "--backend",
                     "process"])
    out = capsys.readouterr().out
    assert code == 0
    assert "device-001" in out


def test_sharded_study_and_merge_roundtrip(tmp_path, capsys):
    for index in range(2):
        code = cli.main(["study", "--quick", "--shards", "2",
                         "--shard-index", str(index), "--out",
                         str(tmp_path / f"shard{index}.npz")])
        assert code == 0
    capsys.readouterr()
    code = cli.main(["merge", str(tmp_path / "shard0.npz"),
                     str(tmp_path / "shard1.npz")])
    out = capsys.readouterr().out
    assert code == 0
    assert "TABLE III" in out
    assert "Overall correlation" in out


def test_study_shards_require_out(capsys):
    code = cli.main(["study", "--quick", "--shards", "2",
                     "--shard-index", "0"])
    assert code == 2
    assert "--out" in capsys.readouterr().err


def test_study_rejects_bad_shard_index(capsys):
    code = cli.main(["study", "--quick", "--shards", "2",
                     "--shard-index", "5", "--out", "x.npz"])
    assert code == 2


def test_merge_rejects_incomplete_shard_set(tmp_path, capsys):
    code = cli.main(["study", "--quick", "--shards", "2",
                     "--shard-index", "0", "--out",
                     str(tmp_path / "only.npz")])
    assert code == 0
    capsys.readouterr()
    code = cli.main(["merge", str(tmp_path / "only.npz")])
    assert code == 1
    assert "error" in capsys.readouterr().err


def test_cache_stats_process_backend_reports_workers(capsys):
    code = cli.main(["cache-stats", "--duration", "8", "--backend",
                     "process", "--jobs", "2"])
    out = capsys.readouterr().out
    assert code == 0
    assert "Per-worker process-local caches" in out
    assert "worker pid" in out


def _journaled_ingest(journal):
    code = cli.main(["ingest", "--devices", "2", "--duration", "8",
                     "--chunk", "2", "--jobs", "1", "--journal",
                     str(journal)])
    assert code == 0


def test_recover_json_reports_verdicts_and_taxonomy(tmp_path, capsys):
    import json

    journal = tmp_path / "journal"
    _journaled_ingest(journal)
    capsys.readouterr()
    code = cli.main(["recover", "--json", str(journal)])
    payload = json.loads(capsys.readouterr().out)
    assert code == 0 and payload["exit_code"] == 0
    assert payload["journal"] == str(journal)
    assert payload["n_records"] > 0
    assert payload["bytes_scanned"] > 0
    verdicts = {s["verdict"] for s in payload["sessions"].values()}
    assert verdicts == {"recovered"}
    for session in payload["sessions"].values():
        assert session["n_chunks"] > 0
        assert {"z0_ohm", "lvet_s", "pep_s", "hr_bpm"} \
            <= set(session["payload"])
    assert payload["damage"]["crc_mismatch"] == 0
    assert payload["damage"]["unattributed_records"] == 0


def test_recover_json_damage_counts_and_exit_code(tmp_path, capsys):
    import json

    journal = tmp_path / "journal"
    _journaled_ingest(journal)
    capsys.readouterr()
    from tests.ingest.faults import flip_crc_byte

    victim = flip_crc_byte(journal, index=1)
    code = cli.main(["recover", "--json", str(journal)])
    payload = json.loads(capsys.readouterr().out)
    assert code == 1 and payload["exit_code"] == 1
    assert payload["sessions"][victim]["verdict"] == "damaged"
    assert "crc mismatch" in payload["sessions"][victim]["reason"]
    assert payload["damage"]["crc_mismatch"] == 1


def test_journal_gc_reclaims_and_reports(tmp_path, capsys):
    journal = tmp_path / "journal"
    _journaled_ingest(journal)
    capsys.readouterr()
    code = cli.main(["journal-gc", "--dry-run", str(journal)])
    out = capsys.readouterr().out
    assert code == 0
    assert "Would reclaim" in out

    code = cli.main(["journal-gc", str(journal)])
    out = capsys.readouterr().out
    assert code == 0
    assert "Reclaimed" in out and "-> 0 bytes" in out
    assert "Sessions collected:" in out

    code = cli.main(["journal-gc", str(journal)])
    out = capsys.readouterr().out
    assert code == 0
    assert "Nothing to collect" in out


def test_journal_gc_json_payload(tmp_path, capsys):
    import json

    journal = tmp_path / "journal"
    _journaled_ingest(journal)
    capsys.readouterr()
    code = cli.main(["journal-gc", "--json", str(journal)])
    payload = json.loads(capsys.readouterr().out)
    assert code == 0
    assert payload["bytes_before"] > payload["bytes_after"] == 0
    assert payload["sessions_collected"]
    assert payload["dry_run"] is False


def test_archive_and_rehydrate_roundtrip(tmp_path, capsys):
    journal = tmp_path / "journal"
    cold = tmp_path / "cold"
    _journaled_ingest(journal)
    ingest_out = capsys.readouterr().out
    code = cli.main(["archive", str(journal), str(cold)])
    out = capsys.readouterr().out
    assert code == 0
    assert "Archived 2 session(s)" in out
    assert f"repro journal-gc {journal}" in out

    code = cli.main(["rehydrate", "--list", str(cold)])
    out = capsys.readouterr().out
    assert code == 0
    assert "device-000" in out and "device-001" in out

    code = cli.main(["journal-gc", str(journal)])
    capsys.readouterr()
    code = cli.main(["rehydrate", str(cold), "device-001"])
    out = capsys.readouterr().out
    assert code == 0
    # The archived session replays to the exact rows the live ingest
    # printed (bit-identical rehydration, same formatting).
    for line in ingest_out.splitlines():
        if line.startswith("  device-001") and "Z0" in line:
            assert line in out


def test_archive_skips_are_reported_with_exit_code(tmp_path, capsys):
    journal = tmp_path / "journal"
    _journaled_ingest(journal)
    capsys.readouterr()
    code = cli.main(["archive", str(journal), str(tmp_path / "cold"),
                     "--sessions", "device-000", "ghost"])
    out = capsys.readouterr().out
    assert code == 1
    assert "SKIPPED ghost: unknown to the journal" in out
    assert "device-000" in out


def test_rehydrate_requires_a_session_or_list(tmp_path, capsys):
    code = cli.main(["rehydrate", str(tmp_path)])
    captured = capsys.readouterr()
    assert code == 2
    assert "session id" in captured.err


def test_rehydrate_unknown_session_is_an_error(tmp_path, capsys):
    (tmp_path / "index.json").write_text("{}")
    code = cli.main(["rehydrate", str(tmp_path), "ghost"])
    assert code == 1
    assert "error" in capsys.readouterr().err


def test_parser_help_lists_lifecycle_commands():
    parser = cli.build_parser()
    help_text = parser.format_help()
    for command in ("recover", "journal-gc", "archive", "rehydrate",
                    "serve"):
        assert command in help_text


def test_cache_stats_process_backend_reports_pool_reuse(capsys):
    """The command runs two fan-outs, so the warm pool must report at
    least one reuse (unless the kill switch disabled it)."""
    code = cli.main(["cache-stats", "--duration", "8", "--backend",
                     "process", "--jobs", "2"])
    out = capsys.readouterr().out
    assert code == 0
    assert "Warm process pool" in out
    import re
    match = re.search(r"(\d+) built / (\d+) reused", out)
    assert match is not None
    assert int(match.group(2)) >= 1


def test_serve_runs_a_fleet_to_done(tmp_path, capsys):
    code = cli.main(["serve", "--journal", str(tmp_path),
                     "--devices", "2", "--duration", "4",
                     "--jobs", "1", "--no-health"])
    out = capsys.readouterr().out
    assert code == 0
    assert "Serving 2 device(s)" in out
    assert "Sessions: 2 done, 0 still open (journaled), 0 quarantined" in out
    assert "Policies:" in out


def test_serve_status_round_trip(tmp_path, capsys):
    """`repro serve --status` reads the live daemon's socket and exits
    0 while the service is healthy."""
    import json
    import threading
    import time

    from repro.ingest import DeviceFleet, FleetConfig
    from repro.serve import ServeDaemon
    from tests.ingest.faults import StalledSource

    source = StalledSource(
        DeviceFleet(FleetConfig(n_devices=1, duration_s=4.0,
                                chunk_s=2.0, seed=8)),
        yield_chunks=1)
    daemon = ServeDaemon(tmp_path, n_workers=1)
    thread = threading.Thread(target=daemon.serve,
                              args=([source],), daemon=True)
    thread.start()
    try:
        assert source.stalled.wait(timeout=10.0)
        deadline = time.monotonic() + 10.0
        code = 1
        while time.monotonic() < deadline:
            if daemon._state == "serving":
                code = cli.main(["serve", "--journal", str(tmp_path),
                                 "--status"])
                break
            time.sleep(0.02)
        out = capsys.readouterr().out
        assert code == 0
        doc = json.loads(out)
        assert doc["ok"] is True and doc["state"] == "serving"
    finally:
        source.release()
        daemon.stop()
        thread.join(timeout=10.0)
    assert not thread.is_alive()


def test_serve_status_without_a_daemon_is_an_error(tmp_path, capsys):
    code = cli.main(["serve", "--journal", str(tmp_path), "--status"])
    captured = capsys.readouterr()
    assert code == 1
    assert "no serve daemon answering" in captured.err


def test_serve_resumes_a_previous_journal(tmp_path, capsys):
    """Two `repro serve` runs over one journal: the second boots from
    the first's journal and re-finalizes nothing incorrectly."""
    for _ in range(2):
        code = cli.main(["serve", "--journal", str(tmp_path),
                         "--devices", "1", "--duration", "4",
                         "--jobs", "1", "--no-health"])
        assert code == 0
    out = capsys.readouterr().out
    assert "Sessions: 1 done" in out


def test_cache_stats_reports_serve_counters(capsys):
    code = cli.main(["cache-stats", "--duration", "8"])
    out = capsys.readouterr().out
    assert code == 0
    assert "Serve daemon" in out
    assert "accepted" in out and "quarantined" in out
