"""The chain must work across the device's selectable sampling rates.

Section III-A: sampling is adjustable from 125 Hz to 16 kHz.  The
protocol uses 250 Hz; these tests verify the full pipeline holds up at
the bottom of the range and at higher rates (time resolution should
improve, not break).
"""

import numpy as np
import pytest

from repro.core import BeatToBeatPipeline
from repro.synth import SynthesisConfig, default_cohort, synthesize_recording


@pytest.fixture(scope="module")
def subject():
    return default_cohort()[1]


@pytest.mark.parametrize("fs", [125.0, 250.0, 500.0])
def test_pipeline_across_rates(subject, fs):
    recording = synthesize_recording(
        subject, "thoracic", 1,
        SynthesisConfig(duration_s=16.0, fs=fs, include_motion=False,
                        include_powerline=False))
    result = BeatToBeatPipeline(fs).process_recording(recording)
    assert result.hr_bpm == pytest.approx(recording.meta["true_hr_bpm"],
                                          rel=0.02)
    assert result.mean_pep_s == pytest.approx(
        recording.meta["true_pep_s"], abs=0.03)
    assert result.mean_lvet_s == pytest.approx(
        recording.meta["true_lvet_s"], abs=0.07)
    truth = recording.annotation("r_times_s")
    assert result.n_beats_detected >= truth.size - 2


def test_higher_rate_does_not_degrade_landmarks(subject):
    """Finer sampling: B/C timing errors must not grow."""
    errors = {}
    for fs in (125.0, 500.0):
        recording = synthesize_recording(
            subject, "thoracic", 1,
            SynthesisConfig(duration_s=16.0, fs=fs, include_motion=False,
                            include_powerline=False, include_noise=False))
        result = BeatToBeatPipeline(fs).process_recording(recording)
        truth_c = recording.annotation("c_times_s")
        detected_c = np.array([p.c_index for p in result.points]) / fs
        errors[fs] = np.mean([
            abs(d - truth_c[np.argmin(np.abs(truth_c - d))])
            for d in detected_c])
    assert errors[500.0] <= errors[125.0] + 0.004


def test_device_rate_bounds_enforced():
    """The ADC model refuses rates outside the paper's 125 Hz-16 kHz."""
    from repro.device import AdcConfig
    from repro.errors import HardwareError

    AdcConfig(sample_rate_hz=125.0)
    AdcConfig(sample_rate_hz=16_000.0)
    with pytest.raises(HardwareError):
        AdcConfig(sample_rate_hz=124.9)
    with pytest.raises(HardwareError):
        AdcConfig(sample_rate_hz=16_001.0)


def test_firmware_at_125_hz(subject):
    """The streaming firmware also holds at the lowest rate."""
    from repro.device import FirmwareSimulator

    recording = synthesize_recording(
        subject, "thoracic", 1,
        SynthesisConfig(duration_s=16.0, fs=125.0, include_motion=False,
                        include_powerline=False))
    result = FirmwareSimulator(125.0).run(recording.channel("ecg"),
                                          recording.channel("z"))
    assert result.hr_bpm == pytest.approx(recording.meta["true_hr_bpm"],
                                          abs=2.0)
    assert len(result.beats) >= 10
    # Halving the rate roughly halves the per-sample workload cost.
    assert result.cpu_duty_q15 < 0.1
