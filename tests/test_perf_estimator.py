"""The perf gate's quick-mode timing estimator.

The ROADMAP's perf-gate stability item: best-of-N timings on contended
1-2 vCPU runners can swing past the 30 % tolerance with no code change
(a 2x excursion was observed on a busy container).  The fix is a
median-of-odd-N estimator behind a calibration spin; these tests pin
its contract — in particular that one 2x-contended sample cannot move
the estimate at all.
"""

import sys
from pathlib import Path

import pytest

BENCHMARKS = Path(__file__).resolve().parents[1] / "benchmarks"
if str(BENCHMARKS) not in sys.path:
    sys.path.insert(0, str(BENCHMARKS))

import perf_regression  # noqa: E402


class FakeClock:
    """A perf_counter stand-in replaying scripted run durations."""

    def __init__(self, durations):
        self.durations = list(durations)
        self.now = 0.0
        self.reading_start = True

    def __call__(self) -> float:
        if not self.reading_start:          # the stop reading
            self.now += self.durations.pop(0)
        self.reading_start = not self.reading_start
        return self.now


def test_median_of_is_the_middle_order_statistic():
    assert perf_regression.median_of([3.0, 1.0, 2.0]) == 2.0
    assert perf_regression.median_of([5.0]) == 5.0


def test_median_of_requires_odd_sample_counts():
    with pytest.raises(ValueError):
        perf_regression.median_of([])
    with pytest.raises(ValueError):
        perf_regression.median_of([1.0, 2.0])


def test_estimator_tolerates_a_2x_injected_outlier():
    """The ROADMAP scenario: one of five samples runs 2x slow (a
    stolen timeslice); the estimate must equal the uncontended value
    exactly — and best-of's failure mode (one fast fluke) must not
    flatter it either."""
    outlier_runs = [1.0, 1.0, 2.0, 1.0, 1.0]
    estimate = perf_regression.timed_seconds(
        lambda: None, repeats=5, clock=FakeClock(outlier_runs))
    assert estimate == 1.0
    # An outlier in the *fast* direction is discarded just the same.
    fluke_runs = [1.0, 0.5, 1.0, 1.0, 1.0]
    estimate = perf_regression.timed_seconds(
        lambda: None, repeats=5, clock=FakeClock(fluke_runs))
    assert estimate == 1.0


def test_estimator_rounds_even_repeats_up_to_odd():
    clock = FakeClock([1.0] * 5)
    assert perf_regression.timed_seconds(lambda: None, repeats=4,
                                         clock=clock) == 1.0
    assert not clock.durations              # all 5 samples consumed


def test_estimator_rejects_nonpositive_repeats():
    with pytest.raises(ValueError):
        perf_regression.timed_seconds(lambda: None, repeats=0)


def test_calibration_spin_does_real_work():
    assert perf_regression.calibration_spin(min_s=0.01) >= 1


# --- absolute floors (the process_scaling gate) ---------------------------

def test_floor_enforced_on_multicore_runners():
    summary = {"cpu_count": 4, "batch": {"process_scaling": 0.8}}
    assert perf_regression.floor_violations(summary) == [
        ("batch.process_scaling", 0.8, 1.0)]


def test_floor_passes_above_minimum():
    summary = {"cpu_count": 4, "batch": {"process_scaling": 1.42}}
    assert perf_regression.floor_violations(summary) == []


def test_floor_skipped_on_single_core():
    """A process pool cannot beat serial on one core, whatever the IPC
    does — the floor is recorded but not enforced there."""
    summary = {"cpu_count": 1, "batch": {"process_scaling": 0.4}}
    assert perf_regression.floor_violations(summary) == []
    assert perf_regression.floor_violations(
        {"batch": {"process_scaling": 0.4}}) == []


def test_floor_ignores_missing_metric():
    assert perf_regression.floor_violations({"cpu_count": 8}) == []


def test_cohort_floors_enforced_on_any_host():
    """The cohort tier's win needs no extra cores, so its floors are
    checked even on single-CPU runners."""
    summary = {"cpu_count": 1,
               "cohort": {"speedup_1000": 1.4, "curve_ratio": 0.95}}
    assert perf_regression.floor_violations(summary) == [
        ("cohort.speedup_1000", 1.4, 2.0)]
    summary["cohort"]["speedup_1000"] = 2.6
    assert perf_regression.floor_violations(summary) == []


def test_cohort_curve_collapse_is_a_floor_violation():
    summary = {"cpu_count": 4,
               "cohort": {"speedup_1000": 2.5, "curve_ratio": 0.5}}
    assert perf_regression.floor_violations(summary) == [
        ("cohort.curve_ratio", 0.5, 0.8)]


# --- the wall-clock budget (--max-seconds) --------------------------------

def test_quick_mode_defaults_to_the_budget(monkeypatch, capsys,
                                           tmp_path):
    """A quick run that blows its --max-seconds budget fails loudly
    even when every metric gate passes."""
    monkeypatch.setattr(perf_regression, "measure",
                        lambda **kwargs: {"mode": "quick",
                                          "cpu_count": 1})
    monkeypatch.setattr(perf_regression, "render", lambda s: "(render)")
    clock = iter([0.0, 100.0])
    monkeypatch.setattr(perf_regression.time, "perf_counter",
                        lambda: next(clock))
    assert perf_regression.main(["--quick"]) == 1
    assert "BUDGET EXCEEDED" in capsys.readouterr().out


def test_budget_passes_under_the_limit(monkeypatch, capsys):
    monkeypatch.setattr(perf_regression, "measure",
                        lambda **kwargs: {"mode": "quick",
                                          "cpu_count": 1})
    monkeypatch.setattr(perf_regression, "render", lambda s: "(render)")
    clock = iter([0.0, 5.0])
    monkeypatch.setattr(perf_regression.time, "perf_counter",
                        lambda: next(clock))
    assert perf_regression.main(["--quick", "--max-seconds", "30"]) == 0
    assert "BUDGET EXCEEDED" not in capsys.readouterr().out
