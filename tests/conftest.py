"""Shared fixtures.

Recording synthesis and full-pipeline runs are the expensive pieces, so
they are session-scoped: many test modules share one 16-second
device/thoracic pair from the same subject.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import BeatToBeatPipeline
from repro.synth import SynthesisConfig, default_cohort, synthesize_recording

#: Sampling rate used throughout the tests (the protocol's 250 Hz).
FS = 250.0


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "faults: fault-injection tests (torn journals, crc flips, "
        "killed sources); run in their own CI job via -m faults")
    config.addinivalue_line(
        "markers",
        "soak: long multi-round daemon soak runs (crash-point sweeps, "
        "SIGTERM drains); run in the hard-timeout CI soak job via "
        "-m soak")


@pytest.fixture(scope="session")
def cohort():
    """The five-subject default cohort."""
    return default_cohort()


@pytest.fixture(scope="session")
def subject(cohort):
    """One mid-quality subject (S2)."""
    return cohort[1]


@pytest.fixture(scope="session")
def short_config():
    """16 s at 250 Hz — enough beats for ensembles, fast to build."""
    return SynthesisConfig(duration_s=16.0, fs=FS)


@pytest.fixture(scope="session")
def device_recording(subject, short_config):
    """A device recording (position 1, 50 kHz)."""
    return synthesize_recording(subject, "device", 1, short_config)


@pytest.fixture(scope="session")
def thoracic_recording(subject, short_config):
    """The matching thoracic reference recording."""
    return synthesize_recording(subject, "thoracic", 1, short_config)


@pytest.fixture(scope="session")
def clean_recording(subject):
    """An artifact-free thoracic recording (detector happy path)."""
    config = SynthesisConfig(duration_s=16.0, fs=FS,
                             include_motion=False,
                             include_powerline=False,
                             include_noise=False)
    return synthesize_recording(subject, "thoracic", 1, config)


@pytest.fixture(scope="session")
def pipeline_result(thoracic_recording):
    """Full offline pipeline output on the thoracic recording."""
    pipeline = BeatToBeatPipeline(thoracic_recording.fs)
    return pipeline.process_recording(thoracic_recording)


@pytest.fixture()
def rng():
    """Fresh deterministic RNG per test."""
    return np.random.default_rng(1234)
