"""Storage-lifecycle fault injection: crashes inside the collector,
bit-flipped cold-tier archives, quarantine re-ingest, and workers
SIGKILLed mid-fan-out.

The contract extends the durable-ingest one: however the lifecycle
machinery is interrupted — any GC crash window, any interleaving of
gc/archive/rehydrate around a crashed run, any worker death — the
per-session results remain bit-identical to the uninterrupted run, and
damage is always reported, never invented and never silently eaten.
"""

import os

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ArchiveError, JournalError
from repro.ingest import (
    ChunkJournal,
    DeviceFleet,
    FleetConfig,
    RecoveryManager,
    StreamingExecutor,
    journal_gc,
    scan_journal,
)
from repro.ingest.gc import collectible_sessions
from repro.io import (
    archive_sessions,
    load_archive,
    rehydrate_session,
    scan_segment,
)
from tests.ingest.faults import (
    KILL_SENTINEL,
    CrashAfterEvents,
    FaultySource,
    SimulatedCrash,
    flip_archive_byte,
    flip_crc_byte,
    journal_segments,
    kill_worker_job,
)

pytestmark = pytest.mark.faults

FLEET = FleetConfig(n_devices=3, duration_s=8.0, chunk_s=2.0, seed=13,
                    n_rounds=2, round_gap_s=2.0)

_CACHE = {}


def _fleet():
    if "fleet" not in _CACHE:
        _CACHE["fleet"] = DeviceFleet(FLEET)
        _CACHE["n_chunks"] = sum(1 for _ in _CACHE["fleet"])
    return _CACHE["fleet"]


def _uninterrupted():
    if "reference" not in _CACHE:
        _fleet()
        _CACHE["reference"] = StreamingExecutor(
            n_workers=1, preview=False).run(_fleet())
    return _CACHE["reference"]


def _journaled_run(directory, segment_records=None, crash_after=None):
    journal = ChunkJournal(directory, segment_records=segment_records)
    executor = StreamingExecutor(n_workers=1, preview=False,
                                 journal=journal)
    try:
        if crash_after is None:
            executor.run(_fleet())
        else:
            with pytest.raises(SimulatedCrash):
                executor.run(FaultySource(_fleet(), crash_after))
    finally:
        journal.close()
    return directory


def _assert_summary_identical(got, sid):
    reference = _uninterrupted()[sid]
    assert got.result.summary() == reference.result.summary()
    assert np.array_equal(got.result.icg, reference.result.icg)
    assert np.array_equal(got.result.pep_s, reference.result.pep_s)


# -- crashes inside the collector ----------------------------------------


def test_gc_crash_at_every_event_recovers_bit_identically(tmp_path):
    """Kill the collector after its 1st, 2nd, ... durable step.  At no
    interruption point may a rescan report damage, and a rerun must
    finish the collection with every live session intact."""
    budget = 1
    while True:
        directory = tmp_path / f"crash-{budget}"
        _journaled_run(directory, segment_records=3, crash_after=11)
        hook = CrashAfterEvents(budget)
        try:
            journal_gc(directory, crash_hook=hook)
        except SimulatedCrash:
            pass
        else:
            break                       # budget outlived the pass
        scan = scan_journal(directory)
        assert not scan.damaged and scan.unattributed_damage == 0

        rerun = journal_gc(directory)
        assert not rerun.skipped_segments
        final = scan_journal(directory)
        assert not final.damaged
        # Everything still journaled (the open sessions) resumes
        # bit-identically; everything collected was complete.
        outcome = RecoveryManager(directory).resume(_fleet())
        assert not outcome.damaged and not outcome.open_sessions
        for sid, result in outcome.results.items():
            _assert_summary_identical(result, sid)
        budget += 1
    assert budget > 3                   # the loop crashed in several
                                        # distinct windows


def test_gc_crash_between_mark_and_sweep_leaves_garbage_not_damage(
        tmp_path):
    directory = tmp_path / "j"
    _journaled_run(directory, segment_records=3)
    hook = CrashAfterEvents(1)          # die right after the first mark
    with pytest.raises(SimulatedCrash):
        journal_gc(directory, crash_hook=hook)
    assert hook.events[0][0] == "marked"
    scan = scan_journal(directory)
    assert not scan.damaged
    # The marked session's records are still on disk but now count as
    # reclaimable garbage, not as a phantom replay obligation.
    marked = hook.events[0][1]
    assert marked in scan.collected
    assert marked in collectible_sessions(scan)
    report = journal_gc(directory)
    assert not report.skipped_segments
    assert marked not in report.sessions_collected  # already marked


def test_gc_crash_with_sidecar_written_but_not_swapped(tmp_path):
    """The narrowest window: the compacted sidecar is on disk but the
    original segment was not replaced yet.  A rescan must see the
    original (no torn state), a rerun must finish the swap."""
    directory = tmp_path / "j"
    # Open session interleaved so compaction (not deletion) happens.
    source = list(_fleet())
    _journaled_run(directory, segment_records=4,
                   crash_after=len(source) - 3)

    events = []

    def hook(stage, detail):
        events.append((stage, detail))
        if stage == "compact-written":
            raise SimulatedCrash("between sidecar write and swap")

    try:
        journal_gc(directory, crash_hook=hook)
    except SimulatedCrash:
        assert list(directory.glob("*.gctmp"))
        scan = scan_journal(directory)
        assert not scan.damaged and scan.torn_tail is None
        rerun = journal_gc(directory)
        assert rerun.stale_tmp_removed >= 1
        assert not list(directory.glob("*.gctmp"))
    else:
        # This segmentation produced only whole-dead segments; the
        # mark-crash case above already covers that shape.
        assert all(stage != "compact-written" for stage, _ in events)
    outcome = RecoveryManager(directory).resume(_fleet())
    assert not outcome.damaged and not outcome.open_sessions
    for sid, result in outcome.results.items():
        _assert_summary_identical(result, sid)


# -- corrupt cold-tier archives ------------------------------------------


def test_bit_flipped_archive_refuses_loudly(tmp_path):
    directory = _journaled_run(tmp_path / "j")
    adir = tmp_path / "cold"
    report = archive_sessions(directory, adir)
    assert report.archived
    flip_archive_byte(adir)
    with pytest.raises(ArchiveError):
        load_archive(report.file)
    with pytest.raises(ArchiveError):
        rehydrate_session(adir, report.archived[0])
    # The journal was never touched: the hot tier still replays every
    # session bit-identically — damage to a copy loses no data.
    outcome = RecoveryManager(directory).recover()
    assert not outcome.damaged
    for sid, result in outcome.results.items():
        _assert_summary_identical(result, sid)


def test_truncated_archive_refuses_loudly(tmp_path):
    directory = _journaled_run(tmp_path / "j")
    report = archive_sessions(directory, tmp_path / "cold")
    data = report.file.read_bytes()
    report.file.write_bytes(data[:len(data) // 2])
    with pytest.raises(ArchiveError):
        load_archive(report.file)


# -- quarantine re-ingest ------------------------------------------------


def test_reingest_moves_damage_aside_and_accepts_the_session_again(
        tmp_path):
    directory = _journaled_run(tmp_path / "j", segment_records=4)
    victim = flip_crc_byte(directory, index=1)
    assert victim in scan_journal(directory).damaged

    report = RecoveryManager(directory).reingest(victim)
    assert report.session_id == victim
    assert report.records_moved > 0 and report.manifest_reset
    assert report.sidecar is not None and report.sidecar.exists()
    assert report.sidecar.parent.name == ".quarantine"

    scan = scan_journal(directory)
    assert victim not in scan.damaged
    assert victim not in scan.complete      # gone, not resurrected
    # Other sessions were untouched (byte-identical frames).
    outcome = RecoveryManager(directory).recover()
    assert not outcome.damaged
    for sid, result in outcome.results.items():
        _assert_summary_identical(result, sid)

    # The device re-sends: normal write-through from seq 0.
    with ChunkJournal(directory) as journal:
        executor = StreamingExecutor(n_workers=1, preview=False,
                                     journal=journal)
        results = executor.run(
            iter(c for c in _fleet() if c.session_id == victim))
    _assert_summary_identical(results[victim], victim)
    final = scan_journal(directory)
    assert victim in final.complete and not final.damaged


def test_reingest_requires_a_quarantined_session(tmp_path):
    directory = _journaled_run(tmp_path / "j")
    manager = RecoveryManager(directory)
    healthy = sorted(scan_journal(directory).complete)[0]
    with pytest.raises(JournalError):
        manager.reingest(healthy)
    with pytest.raises(JournalError):
        manager.reingest("no-such-session")


def test_reingest_sidecars_never_collide(tmp_path):
    """Re-damaging and re-ingesting the same session twice yields two
    sidecar files — evidence is append-only."""
    directory = _journaled_run(tmp_path / "j", segment_records=4)
    victim = flip_crc_byte(directory, index=1)
    RecoveryManager(directory).reingest(victim)
    with ChunkJournal(directory) as journal:
        executor = StreamingExecutor(n_workers=1, preview=False,
                                     journal=journal)
        executor.run(iter(c for c in _fleet()
                          if c.session_id == victim))
    # Find one of the re-sent records and damage it again.
    entries = [entry for path in journal_segments(directory)
               for entry in scan_segment(path).entries]
    index = next(i for i, entry in enumerate(entries)
                 if entry.session_id == victim)
    assert flip_crc_byte(directory, index=index) == victim
    RecoveryManager(directory).reingest(victim)
    sidecars = sorted((directory / ".quarantine").iterdir())
    assert len(sidecars) == 2


# -- killed workers ------------------------------------------------------


@pytest.fixture()
def _fresh_pool():
    from repro.core.executor import _discard_persistent_pool

    _discard_persistent_pool(wait=True)
    yield
    _discard_persistent_pool(wait=True)


@pytest.mark.parametrize("kill_at", [0, 3, 7])
def test_sigkilled_worker_yields_a_completed_fanout(_fresh_pool,
                                                    kill_at):
    """A worker SIGKILLed mid-fan-out never crashes the fan-out: every
    healthy job's result lands in its slot, the killer comes back as a
    structured PoisonJob, and the batch completes."""
    import warnings

    from repro.core.executor import PoisonJob, parallel_map

    items = [f"item-{i}" for i in range(8)]
    items[kill_at] = KILL_SENTINEL
    with warnings.catch_warnings():
        # Whether the serial-degrade warning fires depends on how many
        # batches were still in flight at the break — a timing detail.
        warnings.simplefilter("ignore", RuntimeWarning)
        results = parallel_map(kill_worker_job, items, n_jobs=2,
                               backend="process")
    assert len(results) == len(items)
    poison = results[kill_at]
    assert isinstance(poison, PoisonJob)
    assert poison.index == kill_at and poison.attempts == 2
    for index, result in enumerate(results):
        if index != kill_at:
            assert result == ("ok", items[index])


def test_poisoned_fanout_does_not_poison_the_next_one(_fresh_pool):
    import warnings

    from repro.core.executor import PoisonJob, parallel_map

    items = ["a", KILL_SENTINEL, "b", "c"]
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        first = parallel_map(kill_worker_job, items, n_jobs=2,
                             backend="process")
    assert any(isinstance(r, PoisonJob) for r in first)
    clean = parallel_map(kill_worker_job, ["x", "y", "z"], n_jobs=2,
                         backend="process")
    assert clean == [("ok", "x"), ("ok", "y"), ("ok", "z")]


def test_process_batch_survives_a_worker_killed_between_fanouts(
        _fresh_pool, cohort):
    """The acceptance shape at the process_batch level: kill a warm
    worker, then fan out — the batch completes with correct results
    (retried on a rebuilt pool), never a crashed process_batch."""
    from repro.core.executor import (persistent_pool_stats,
                                     process_batch)
    from repro.synth import SynthesisConfig, synthesize_recording

    recordings = [
        synthesize_recording(subject, "device", 1,
                             SynthesisConfig(duration_s=8.0))
        for subject in cohort[:2]]
    reference = process_batch(recordings, n_jobs=1)
    process_batch(recordings, n_jobs=2, backend="process")
    pids = persistent_pool_stats()["pids"]
    assert pids
    os.kill(pids[0], 9)
    results = process_batch(recordings, n_jobs=2, backend="process")
    assert len(results) == len(recordings)
    for got, want in zip(results, reference):
        assert got.summary() == want.summary()
        assert np.array_equal(got.icg, want.icg)


# -- the lifecycle property ----------------------------------------------


@settings(max_examples=8, deadline=None)
@given(data=st.data())
def test_lifecycle_interleavings_preserve_every_session(data):
    """Property: crash a journaled fleet run at any chunk, apply any
    interleaving of gc / archive / (crashing gc) passes, then resume —
    the union of journal-resumed and archive-rehydrated sessions
    covers the whole fleet, every one bit-identical to the
    uninterrupted run."""
    reference = _uninterrupted()
    crash_after = data.draw(
        st.integers(min_value=0, max_value=_CACHE["n_chunks"] - 1),
        label="crash_after")
    segment_records = data.draw(
        st.one_of(st.none(), st.integers(min_value=1, max_value=8)),
        label="segment_records")
    ops = data.draw(
        st.lists(st.sampled_from(["gc", "archive", "crashing-gc"]),
                 min_size=1, max_size=4),
        label="ops")
    directory = _CACHE["tmp_factory"](f"life-{crash_after}")
    adir = directory / "cold"
    _journaled_run(directory, segment_records=segment_records,
                   crash_after=crash_after)

    archived = set()
    for op in ops:
        if op == "gc":
            journal_gc(directory)
        elif op == "archive":
            archived |= set(archive_sessions(directory, adir).archived)
        else:
            budget = data.draw(st.integers(min_value=1, max_value=4),
                               label="gc_crash_budget")
            try:
                journal_gc(directory,
                           crash_hook=CrashAfterEvents(budget))
            except SimulatedCrash:
                pass
            assert not scan_journal(directory).damaged

    # The journal still resumes every session it has not handed to the
    # cold tier; anything GC reclaimed was archived or complete.
    outcome = RecoveryManager(directory).resume(_fleet())
    assert not outcome.damaged and not outcome.open_sessions
    for sid, result in outcome.results.items():
        _assert_summary_identical(result, sid)
    recovered = set(outcome.results)

    for sid in archived:
        chunks = rehydrate_session(adir, sid)
        replay = StreamingExecutor(n_workers=1, preview=False).run(
            iter(chunks))
        _assert_summary_identical(replay[sid], sid)
    assert recovered | archived >= set(reference)


@pytest.fixture(scope="module", autouse=True)
def _tmp_factory(tmp_path_factory):
    """Expose pytest's tmp dir factory to the hypothesis body (fixtures
    cannot be drawn inside @given examples)."""
    counter = [0]

    def make(tag):
        counter[0] += 1
        return tmp_path_factory.mktemp(f"life-{counter[0]}-{tag}")

    _CACHE["tmp_factory"] = make
    yield
    _CACHE.pop("tmp_factory", None)
