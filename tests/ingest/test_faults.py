"""Fault injection: killed sources, torn journal tails, flipped CRC
bytes.  The durability contract under test: recovery either resumes
bit-identically or reports the exact damaged session — it never
crashes and never silently drops or mangles data."""

import numpy as np
import pytest

from repro.errors import JournalError
from repro.ingest import (
    ChunkJournal,
    DeviceFleet,
    FleetConfig,
    RecoveryManager,
    StreamingExecutor,
    scan_journal,
)
from tests.ingest.faults import (
    FaultySource,
    SimulatedCrash,
    flip_crc_byte,
    flip_magic_byte,
    flip_payload_byte,
    journal_segments,
    tear_journal_tail,
)

pytestmark = pytest.mark.faults

FLEET = FleetConfig(n_devices=3, duration_s=8.0, chunk_s=2.0, seed=13,
                    n_rounds=2, round_gap_s=2.0)


@pytest.fixture(scope="module")
def fleet():
    return DeviceFleet(FLEET)


@pytest.fixture(scope="module")
def uninterrupted(fleet):
    return StreamingExecutor(n_workers=1, preview=False).run(fleet)


@pytest.fixture(params=["strict", "group"])
def durability(request):
    """Every fault scenario must hold under both write-through modes:
    strict (record on disk before analysis) and group commit (bounded
    buffer, one fsync per flush window)."""
    return request.param


def _crash_journaled_run(tmp_path, fleet, crash_after,
                         segment_records=None, durability="strict"):
    """Run a journal-attached executor into a scripted kill; returns
    the journal directory."""
    directory = tmp_path / "journal"
    journal = ChunkJournal(directory, segment_records=segment_records,
                           durability=durability)
    executor = StreamingExecutor(n_workers=1, preview=False,
                                 journal=journal)
    try:
        with pytest.raises(SimulatedCrash):
            executor.run(FaultySource(fleet, crash_after))
    finally:
        journal.close()
    return directory


def _assert_sessions_identical(got, want):
    assert set(got) == set(want)
    for sid, reference in want.items():
        result = got[sid].result
        assert np.array_equal(result.icg, reference.result.icg)
        assert np.array_equal(result.ecg_filtered,
                              reference.result.ecg_filtered)
        assert np.array_equal(result.pep_s, reference.result.pep_s)
        assert np.array_equal(result.lvet_s, reference.result.lvet_s)
        assert result.z0_ohm == reference.result.z0_ohm
        assert result.hr_bpm == reference.result.hr_bpm


# -- killed sources ------------------------------------------------------


@pytest.mark.parametrize("crash_after", [0, 1, 7, 23])
def test_killed_source_recovers_bit_identically(tmp_path, fleet,
                                                uninterrupted,
                                                crash_after,
                                                durability):
    directory = _crash_journaled_run(tmp_path, fleet, crash_after,
                                     segment_records=5,
                                     durability=durability)
    outcome = RecoveryManager(directory).resume(fleet)
    assert not outcome.damaged and not outcome.open_sessions
    _assert_sessions_identical(outcome.results, uninterrupted)


def test_kill_after_everything_is_a_clean_run(tmp_path, fleet,
                                              uninterrupted):
    """A crash budget the stream never reaches: no crash, journal
    complete, recovery alone (no source) reproduces every session."""
    directory = tmp_path / "journal"
    with ChunkJournal(directory) as journal:
        executor = StreamingExecutor(n_workers=1, preview=False,
                                     journal=journal)
        executor.run(FaultySource(fleet, 10_000))
    outcome = RecoveryManager(directory).recover()
    assert not outcome.open_sessions
    _assert_sessions_identical(outcome.results, uninterrupted)


# -- torn journal tails --------------------------------------------------


def test_torn_tail_is_truncated_and_resume_heals(tmp_path, fleet,
                                                 uninterrupted,
                                                 durability):
    directory = _crash_journaled_run(tmp_path, fleet, 9,
                                     durability=durability)
    tear_journal_tail(directory)
    scan = scan_journal(directory)
    assert scan.torn_tail is not None
    assert not scan.damaged           # torn != damaged: it heals
    outcome = RecoveryManager(directory).resume(fleet)
    assert outcome.torn_tail_recovered
    assert not outcome.damaged and not outcome.open_sessions
    _assert_sessions_identical(outcome.results, uninterrupted)
    # The reopen truncated the torn bytes away for good.
    assert scan_journal(directory).torn_tail is None


def test_recover_alone_heals_the_torn_tail(tmp_path, fleet,
                                              durability):
    """`recover` (journal untouched otherwise) must leave the disk in
    the state it reports: torn bytes truncated, gone on a rescan."""
    directory = _crash_journaled_run(tmp_path, fleet, 9,
                                     durability=durability)
    tear_journal_tail(directory)
    outcome = RecoveryManager(directory).recover()
    assert outcome.torn_tail_recovered
    assert scan_journal(directory).torn_tail is None
    # A second recover finds nothing left to heal.
    assert RecoveryManager(directory).recover().torn_tail_recovered \
        is False


def test_torn_tail_in_final_segment_only_loses_one_record(tmp_path,
                                                          fleet):
    directory = _crash_journaled_run(tmp_path, fleet, 9,
                                     segment_records=3)
    before = scan_journal(directory).n_records
    tear_journal_tail(directory)
    after = scan_journal(directory)
    assert after.n_records == before - 1


# -- flipped bytes -------------------------------------------------------


def test_crc_flip_reports_the_exact_damaged_session(tmp_path, fleet,
                                                    uninterrupted,
                                                    durability):
    directory = _crash_journaled_run(tmp_path, fleet, 20,
                                     durability=durability)
    victim = flip_crc_byte(directory, index=4)
    outcome = RecoveryManager(directory).recover()
    assert set(outcome.damaged) == {victim}
    assert "crc mismatch" in outcome.damaged[victim]
    assert victim not in outcome.results
    # Every *other* completed session still finalizes bit-identically.
    for sid in outcome.results:
        assert sid != victim
        _assert_sessions_identical({sid: outcome.results[sid]},
                                   {sid: uninterrupted[sid]})


def test_payload_flip_reports_the_exact_damaged_session(tmp_path,
                                                        fleet):
    directory = _crash_journaled_run(tmp_path, fleet, 20)
    victim = flip_payload_byte(directory, index=2)
    outcome = RecoveryManager(directory).recover()
    assert set(outcome.damaged) == {victim}


def test_resume_quarantines_damaged_sessions_and_completes_the_rest(
        tmp_path, fleet, uninterrupted, durability):
    directory = _crash_journaled_run(tmp_path, fleet, 20,
                                     durability=durability)
    victim = flip_crc_byte(directory, index=4)
    outcome = RecoveryManager(directory).resume(fleet)
    assert set(outcome.damaged) == {victim}
    assert not outcome.open_sessions
    healthy = {sid: ref for sid, ref in uninterrupted.items()
               if sid != victim}
    _assert_sessions_identical(outcome.results, healthy)


def test_journal_refuses_appends_to_damaged_sessions(tmp_path, fleet):
    directory = _crash_journaled_run(tmp_path, fleet, 6)
    victim = flip_crc_byte(directory, index=0)
    with ChunkJournal(directory) as journal:
        chunk = next(c for c in fleet if c.session_id == victim)
        with pytest.raises(JournalError):
            journal.append(chunk)


def test_reopen_after_lost_framing_rolls_to_a_fresh_segment(tmp_path,
                                                            fleet):
    """Appending after unreadable bytes would hide the new records
    from every future scan; a reopening journal must roll to a new
    segment so everything it writes stays readable."""
    directory = _crash_journaled_run(tmp_path, fleet, 9)
    before = scan_journal(directory)
    n_segments = len(journal_segments(directory))
    flip_magic_byte(directory, index=scan_journal(directory).n_records
                    - 1)
    with ChunkJournal(directory) as journal:
        appended = sum(journal.append(c) for c in fleet)
        assert appended > 0
    assert len(journal_segments(directory)) == n_segments + 1
    after = scan_journal(directory)
    # Every record written after the damage is readable: the journal
    # now completes every session the damage did not quarantine.
    assert after.n_records > before.n_records
    expected = set(DeviceFleet(FLEET).session_ids) - set(after.damaged)
    assert set(after.complete) == expected


def test_truncated_middle_segment_never_crashes_the_scan(tmp_path,
                                                         fleet):
    """External truncation of a non-final segment is beyond crash
    semantics — the scan must still classify it, not raise."""
    directory = _crash_journaled_run(tmp_path, fleet, 20,
                                     segment_records=4)
    middle = journal_segments(directory)[1]
    with open(middle, "r+b") as fh:
        fh.truncate(middle.stat().st_size - 7)
    scan = scan_journal(directory)
    assert scan.unattributed_damage >= 1
    outcome = RecoveryManager(directory).recover()
    # Sessions with records lost to the truncation show sequence gaps
    # and are quarantined; the rest still finalize or stay open.
    assert set(outcome.results).isdisjoint(outcome.damaged)


# -- arena rehydration ----------------------------------------------------


def test_arena_rehydrated_replay_matches_after_a_torn_tail(tmp_path,
                                                           fleet,
                                                           durability):
    """Recovery replays journal records into arena slabs
    (`decode_chunk_into`); after a torn tail the rehydrated replay
    must finalize bit-identically to the copying decoder's replay."""
    from repro.ingest import ingest_stats, reset_ingest_stats, \
        use_ingest_backend

    directory = _crash_journaled_run(tmp_path, fleet, 15,
                                     durability=durability)
    tear_journal_tail(directory)
    with use_ingest_backend("reference"):     # copying decoder
        oracle = RecoveryManager(directory).recover()
    reset_ingest_stats()
    with use_ingest_backend("arena"):         # decode_chunk_into
        outcome = RecoveryManager(directory).recover()
    assert ingest_stats().rehydrated_chunks > 0
    assert outcome.torn_tail_recovered is False   # oracle healed it
    _assert_sessions_identical(outcome.results, oracle.results)
