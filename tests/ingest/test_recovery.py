"""Crash recovery: the bit-identity property and the journal-attached
executor semantics.

The acceptance criterion of the durable-ingest layer: a journaled
8-device, 3-round fleet run killed at an *arbitrary* chunk boundary,
with an *arbitrary* journal segmentation, recovers (``recover`` +
``resume``) to per-session results bit-identical to the uninterrupted
run — asserted here as a hypothesis property (mirroring the shard-
merge property test of the sharding layer)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError
from repro.ingest import (
    ChunkJournal,
    DeviceFleet,
    DURABILITY_MODES,
    FleetConfig,
    JOURNAL_CODECS,
    RecoveryManager,
    StreamingExecutor,
    chunk_recording,
)
from repro.synth import SynthesisConfig, default_cohort, synthesize_recording
from tests.ingest.faults import FaultySource, SimulatedCrash

#: The acceptance-criterion fleet: 8 devices x 3 rounds, with churn.
ACCEPTANCE = FleetConfig(n_devices=8, duration_s=8.0, chunk_s=2.0,
                         seed=42, n_rounds=3, round_gap_s=2.0,
                         dropout=0.25, rejoin=True)

_CACHE = {}


def _acceptance_fleet():
    if "fleet" not in _CACHE:
        _CACHE["fleet"] = DeviceFleet(ACCEPTANCE)
    return _CACHE["fleet"]


def _uninterrupted():
    """The reference run (computed once; sessions finalize through the
    same streaming executor the recovery path uses)."""
    if "reference" not in _CACHE:
        _CACHE["reference"] = StreamingExecutor(
            n_workers=1, preview=False).run(_acceptance_fleet())
        _CACHE["n_chunks"] = sum(1 for _ in _acceptance_fleet())
    return _CACHE["reference"]


def _assert_sessions_identical(got, want):
    assert set(got) == set(want)
    for sid, reference in want.items():
        result = got[sid].result
        assert np.array_equal(result.icg, reference.result.icg)
        assert np.array_equal(result.r_peak_indices,
                              reference.result.r_peak_indices)
        assert np.array_equal(result.pep_s, reference.result.pep_s)
        assert np.array_equal(result.lvet_s, reference.result.lvet_s)
        assert result.z0_ohm == reference.result.z0_ohm
        assert result.hr_bpm == reference.result.hr_bpm


# -- the acceptance criterion --------------------------------------------


@settings(max_examples=8, deadline=None)
@given(data=st.data())
def test_recovery_is_bit_identical_for_any_crash_and_segmentation(data):
    """Property: for any crash point, journal segmentation, durability
    mode and codec, the journaled 8-device 3-round fleet recovers to
    per-session results bit-identical to the uninterrupted run."""
    reference = _uninterrupted()
    fleet = _acceptance_fleet()
    crash_after = data.draw(
        st.integers(min_value=0, max_value=_CACHE["n_chunks"]),
        label="crash_after")
    segment_records = data.draw(
        st.one_of(st.none(), st.integers(min_value=1, max_value=16)),
        label="segment_records")
    durability = data.draw(st.sampled_from(DURABILITY_MODES),
                           label="durability")
    codec = data.draw(st.sampled_from(JOURNAL_CODECS), label="codec")
    directory = _CACHE.setdefault("tmp_factory")(
        f"crash{crash_after}-seg{segment_records}-{durability}")
    journal = ChunkJournal(directory, segment_records=segment_records,
                           durability=durability, codec=codec)
    executor = StreamingExecutor(n_workers=1, preview=False,
                                 journal=journal)
    try:
        if crash_after >= _CACHE["n_chunks"]:
            executor.run(FaultySource(fleet, crash_after))
        else:
            with pytest.raises(SimulatedCrash):
                executor.run(FaultySource(fleet, crash_after))
    finally:
        journal.close()

    manager = RecoveryManager(directory)
    # recover() alone finalizes exactly the journaled-complete subset,
    # each bit-identical to the reference ...
    partial = manager.recover()
    assert not partial.damaged
    _assert_sessions_identical(
        partial.results,
        {sid: reference[sid] for sid in partial.results})
    # ... and resume() with the reconnected fleet completes everything.
    outcome = manager.resume(fleet)
    assert not outcome.damaged and not outcome.open_sessions
    _assert_sessions_identical(outcome.results, reference)


@pytest.fixture(scope="module", autouse=True)
def _tmp_factory(tmp_path_factory):
    """Expose pytest's tmp dir factory to the hypothesis body (fixtures
    cannot be drawn inside @given examples)."""
    counter = [0]

    def make(tag):
        counter[0] += 1
        return tmp_path_factory.mktemp(f"journal-{counter[0]}-{tag}")

    _CACHE["tmp_factory"] = make
    yield
    _CACHE.pop("tmp_factory", None)


# -- dropout + journal completion ----------------------------------------


def test_dropout_leaves_open_sessions_the_journal_later_completes(
        tmp_path):
    """The motivating scenario: users lift their thumbs (dropout, no
    rejoin), the journal persists the open sessions, and a later
    resume — the devices reconnecting — completes them."""
    config = FleetConfig(n_devices=4, duration_s=8.0, chunk_s=2.0,
                         seed=3, n_rounds=2, round_gap_s=2.0,
                         dropout=0.6, rejoin=False)
    churned = DeviceFleet(config)
    assert churned.dropped_session_ids     # the seed must churn
    with ChunkJournal(tmp_path / "j") as journal:
        executor = StreamingExecutor(n_workers=1, preview=False,
                                     journal=journal)
        results = executor.run(churned)
    open_then = executor.last_open_sessions
    assert set(open_then) == set(churned.dropped_session_ids)
    assert set(results).isdisjoint(open_then)

    # The devices come back: the churn-free twin fleet carries the
    # same sessions with the same samples (churn never touches
    # values), so resuming with it supplies exactly the missing tails.
    twin = DeviceFleet(FleetConfig(**{**config.__dict__,
                                      "dropout": 0.0}))
    assert twin.session_ids == churned.session_ids
    outcome = RecoveryManager(tmp_path / "j").resume(twin)
    assert not outcome.open_sessions and not outcome.damaged
    reference = StreamingExecutor(n_workers=1, preview=False).run(twin)
    _assert_sessions_identical(outcome.results, reference)


# -- journal-attached executor semantics ---------------------------------


@pytest.fixture()
def truncated_source():
    recording = synthesize_recording(
        default_cohort()[0], "device", 1, SynthesisConfig(duration_s=8.0))
    return list(chunk_recording(recording, "cut", 2.0))[:-1]


def test_journal_flips_open_session_default(tmp_path, truncated_source):
    """Without a journal an open session still raises (unchanged
    PR 3 semantics); with one it is tolerated and reported."""
    with pytest.raises(ConfigurationError):
        StreamingExecutor(max_chunks=8).run(truncated_source)
    with ChunkJournal(tmp_path / "j") as journal:
        executor = StreamingExecutor(max_chunks=8, journal=journal)
        results = executor.run(truncated_source)
    assert results == {}
    assert executor.last_open_sessions == ("cut",)
    scan = RecoveryManager(tmp_path / "j").scan()
    assert set(scan.open) == {"cut"}
    assert len(scan.open["cut"]) == len(truncated_source)


def test_allow_open_overrides_work_both_ways(tmp_path,
                                             truncated_source):
    executor = StreamingExecutor(max_chunks=8, allow_open=True)
    assert executor.run(truncated_source) == {}
    assert executor.last_open_sessions == ("cut",)
    with ChunkJournal(tmp_path / "j") as journal:
        strict = StreamingExecutor(max_chunks=8, journal=journal,
                                   allow_open=False)
        with pytest.raises(ConfigurationError):
            strict.run(truncated_source)


def test_write_through_precedes_analysis(tmp_path):
    """Every chunk the executor consumed is on disk even though the
    pipeline raised on the session — durability is not conditional on
    analysis succeeding."""
    from repro.errors import SignalError
    from repro.io import Recording

    n = int(8 * 250.0)
    flat = Recording(250.0, {"ecg": np.zeros(n), "z": np.full(n, 25.0)})
    chunks = list(chunk_recording(flat, "flat", 2.0))
    with ChunkJournal(tmp_path / "j") as journal:
        executor = StreamingExecutor(max_chunks=8, n_workers=1,
                                     journal=journal, preview=False)
        with pytest.raises(SignalError):
            executor.run(chunks)
    scan = RecoveryManager(tmp_path / "j").scan()
    assert scan.n_records == len(chunks)
    assert set(scan.complete) == {"flat"}
