"""Chunk journal: codec bit-exactness, framing, segmentation,
manifests, idempotent append, reopen semantics."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, JournalError
from repro.ingest import (
    ChunkJournal,
    DeviceFleet,
    FleetConfig,
    SessionAssembler,
    chunk_recording,
    scan_journal,
)
from repro.ingest.journal import read_manifests
from repro.io.journal_records import (
    decode_chunk,
    encode_chunk,
    frame_record,
    scan_segment,
)
from repro.synth import SynthesisConfig, default_cohort, synthesize_recording

FLEET = FleetConfig(n_devices=3, duration_s=8.0, chunk_s=2.0, seed=21)


@pytest.fixture(scope="module")
def fleet():
    return DeviceFleet(FLEET)


@pytest.fixture(scope="module")
def chunks(fleet):
    return list(fleet)


def _journal_all(directory, chunks, **kwargs):
    with ChunkJournal(directory, **kwargs) as journal:
        for chunk in chunks:
            journal.append(chunk)
    return journal


# -- the record codec ----------------------------------------------------


def test_codec_roundtrips_every_chunk_bit_for_bit(chunks):
    for chunk in chunks:
        back = decode_chunk(encode_chunk(chunk))
        assert back.session_id == chunk.session_id
        assert back.seq == chunk.seq
        assert back.fs == chunk.fs
        assert back.start_sample == chunk.start_sample
        assert back.is_last == chunk.is_last
        assert back.arrival_s == chunk.arrival_s
        assert set(back.signals) == set(chunk.signals)
        for name in chunk.signals:
            assert np.array_equal(back.signals[name],
                                  chunk.signals[name])
        for name in chunk.annotations:
            assert np.array_equal(back.annotations[name],
                                  chunk.annotations[name])
        assert back.meta == chunk.meta


def test_codec_roundtrips_trailer_annotations_and_meta():
    recording = synthesize_recording(
        default_cohort()[0], "device", 2, SynthesisConfig(duration_s=8.0))
    trailer = list(chunk_recording(recording, "s", 2.0))[-1]
    back = decode_chunk(encode_chunk(trailer))
    assert set(back.annotations) == set(recording.annotations)
    for name in recording.annotations:
        assert np.array_equal(back.annotations[name],
                              trailer.annotations[name])
    assert back.meta == dict(recording.meta)


def test_scan_segment_reads_back_framed_records(tmp_path, chunks):
    path = tmp_path / "segment-00000.log"
    with open(path, "wb") as fh:
        for chunk in chunks[:5]:
            fh.write(frame_record(encode_chunk(chunk)))
    scan = scan_segment(path)
    assert scan.clean
    assert len(scan.entries) == 5
    for entry, chunk in zip(scan.entries, chunks[:5]):
        assert entry.chunk.session_id == chunk.session_id
        assert entry.chunk.seq == chunk.seq


# -- the journal ---------------------------------------------------------


def test_journal_roundtrips_a_whole_fleet(tmp_path, fleet, chunks):
    _journal_all(tmp_path / "j", chunks)
    scan = scan_journal(tmp_path / "j")
    assert scan.n_records == len(chunks)
    assert not scan.damaged and scan.torn_tail is None
    assert set(scan.complete) == set(fleet.session_ids)
    assembler = SessionAssembler()
    for sid, journaled in scan.complete.items():
        rebuilt = None
        for chunk in journaled:
            rebuilt = assembler.add(chunk)
        want = fleet.session_recording(sid)
        assert np.array_equal(rebuilt.channel("z"), want.channel("z"))
        assert np.array_equal(rebuilt.channel("ecg"),
                              want.channel("ecg"))
        assert rebuilt.meta == want.meta


def test_append_is_idempotent_and_rejects_gaps(tmp_path, chunks):
    with ChunkJournal(tmp_path / "j") as journal:
        first = [c for c in chunks if c.session_id == chunks[0].session_id]
        assert journal.append(first[0]) is True
        assert journal.append(first[0]) is False      # replay: no-op
        with pytest.raises(JournalError):
            journal.append(first[2])                  # seq gap
        assert journal.append(first[1]) is True
        assert journal.next_seq(first[0].session_id) == 2
    assert scan_journal(tmp_path / "j").n_records == 2


def test_segment_rolling(tmp_path, chunks):
    journal = _journal_all(tmp_path / "j", chunks, segment_records=4)
    n_segments = (len(chunks) + 3) // 4
    assert len(journal.segments) == n_segments
    for path in journal.segments[:-1]:
        assert len(scan_segment(path).entries) == 4
    scan = scan_journal(tmp_path / "j")
    assert scan.n_records == len(chunks)
    assert set(scan.complete) == {c.session_id for c in chunks}


def test_manifests_written_on_trailer(tmp_path, fleet, chunks):
    _journal_all(tmp_path / "j", chunks)
    manifests = read_manifests(tmp_path / "j")
    assert set(manifests) == set(fleet.session_ids)
    for sid, manifest in manifests.items():
        recording = fleet.session_recording(sid)
        assert manifest["completed"] is True
        assert manifest["n_samples"] == recording.n_samples
        assert manifest["fs"] == recording.fs


def test_reopen_continues_the_log(tmp_path, chunks):
    cut = len(chunks) // 2
    _journal_all(tmp_path / "j", chunks[:cut], segment_records=4)
    with ChunkJournal(tmp_path / "j", segment_records=4) as journal:
        # Replaying the prefix is a no-op; the remainder appends.
        written = sum(journal.append(c) for c in chunks)
    assert written == len(chunks) - cut
    scan = scan_journal(tmp_path / "j")
    assert scan.n_records == len(chunks)
    assert set(scan.complete) == {c.session_id for c in chunks}


def test_open_sessions_tracked_until_trailer(tmp_path, chunks):
    sid = chunks[0].session_id
    session = [c for c in chunks if c.session_id == sid]
    with ChunkJournal(tmp_path / "j") as journal:
        for chunk in session[:-1]:
            journal.append(chunk)
        assert journal.open_sessions == (sid,)
        assert journal.completed_sessions == ()
        journal.append(session[-1])
        assert journal.open_sessions == ()
        assert journal.completed_sessions == (sid,)


def test_closed_journal_refuses_appends(tmp_path, chunks):
    journal = ChunkJournal(tmp_path / "j")
    journal.close()
    with pytest.raises(JournalError):
        journal.append(chunks[0])


def test_journal_validation(tmp_path):
    with pytest.raises(ConfigurationError):
        ChunkJournal(tmp_path / "j", segment_records=0)
    with pytest.raises(JournalError):
        scan_journal(tmp_path / "nowhere")
