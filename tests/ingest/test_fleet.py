"""Device fleet simulator: determinism, interleaving, per-device
variety."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.ingest import DeviceFleet, FleetConfig, SessionAssembler

QUICK = FleetConfig(n_devices=5, duration_s=8.0, chunk_s=1.0, seed=11)


def test_fleet_builds_requested_devices():
    fleet = DeviceFleet(QUICK)
    assert len(fleet.devices) == 5
    assert len({d.session_id for d in fleet.devices}) == 5
    assert {d.position for d in fleet.devices} <= {1, 2, 3}
    assert fleet.total_recording_s == pytest.approx(5 * 8.0)


def test_fleet_is_deterministic():
    first = [(c.session_id, c.seq, c.arrival_s)
             for c in DeviceFleet(QUICK)]
    second = [(c.session_id, c.seq, c.arrival_s)
              for c in DeviceFleet(QUICK)]
    assert first == second
    samples_a = [c.signals["z"] for c in DeviceFleet(QUICK)]
    samples_b = [c.signals["z"] for c in DeviceFleet(QUICK)]
    for a, b in zip(samples_a, samples_b):
        assert np.array_equal(a, b)


def test_different_seed_changes_the_interleave():
    other = FleetConfig(n_devices=5, duration_s=8.0, chunk_s=1.0,
                        seed=12)
    assert ([c.arrival_s for c in DeviceFleet(QUICK)]
            != [c.arrival_s for c in DeviceFleet(other)])


def test_arrivals_are_globally_sorted_and_per_session_sequential():
    last_arrival = -1.0
    per_session = {}
    for chunk in DeviceFleet(QUICK):
        assert chunk.arrival_s >= last_arrival
        last_arrival = chunk.arrival_s
        expected = per_session.get(chunk.session_id, 0)
        assert chunk.seq == expected
        per_session[chunk.session_id] = expected + 1
    assert len(per_session) == 5


def test_fleet_chunks_reassemble_into_synthesized_recordings():
    fleet = DeviceFleet(QUICK)
    assembler = SessionAssembler()
    rebuilt = {}
    for chunk in fleet:
        done = assembler.add(chunk)
        if done is not None:
            rebuilt[chunk.session_id] = done
    assert set(rebuilt) == {d.session_id for d in fleet.devices}
    for device in fleet.devices:
        want = fleet.synthesize(device)
        got = rebuilt[device.session_id]
        assert np.array_equal(got.channel("z"), want.channel("z"))
        assert np.array_equal(got.channel("ecg"), want.channel("ecg"))
        assert got.meta["session_id"] == device.session_id


def test_mixed_sampling_rates():
    config = FleetConfig(n_devices=4, duration_s=8.0, chunk_s=1.0,
                         fs_choices=(250.0, 125.0), seed=3)
    fleet = DeviceFleet(config)
    assert {d.fs for d in fleet.devices} == {250.0, 125.0}


def test_fleet_config_validation():
    with pytest.raises(ConfigurationError):
        FleetConfig(n_devices=0)
    with pytest.raises(ConfigurationError):
        FleetConfig(chunk_s=0.0)
    with pytest.raises(ConfigurationError):
        FleetConfig(fs_choices=())
    with pytest.raises(ConfigurationError):
        FleetConfig(jitter_s=-1.0)
    with pytest.raises(ConfigurationError):
        DeviceFleet(QUICK, cohort=[])
