"""Device fleet simulator: determinism, interleaving, per-device
variety."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.ingest import DeviceFleet, FleetConfig, SessionAssembler

QUICK = FleetConfig(n_devices=5, duration_s=8.0, chunk_s=1.0, seed=11)


def test_fleet_builds_requested_devices():
    fleet = DeviceFleet(QUICK)
    assert len(fleet.devices) == 5
    assert len({d.session_id for d in fleet.devices}) == 5
    assert {d.position for d in fleet.devices} <= {1, 2, 3}
    assert fleet.total_recording_s == pytest.approx(5 * 8.0)


def test_fleet_is_deterministic():
    first = [(c.session_id, c.seq, c.arrival_s)
             for c in DeviceFleet(QUICK)]
    second = [(c.session_id, c.seq, c.arrival_s)
              for c in DeviceFleet(QUICK)]
    assert first == second
    samples_a = [c.signals["z"] for c in DeviceFleet(QUICK)]
    samples_b = [c.signals["z"] for c in DeviceFleet(QUICK)]
    for a, b in zip(samples_a, samples_b):
        assert np.array_equal(a, b)


def test_different_seed_changes_the_interleave():
    other = FleetConfig(n_devices=5, duration_s=8.0, chunk_s=1.0,
                        seed=12)
    assert ([c.arrival_s for c in DeviceFleet(QUICK)]
            != [c.arrival_s for c in DeviceFleet(other)])


def test_arrivals_are_globally_sorted_and_per_session_sequential():
    last_arrival = -1.0
    per_session = {}
    for chunk in DeviceFleet(QUICK):
        assert chunk.arrival_s >= last_arrival
        last_arrival = chunk.arrival_s
        expected = per_session.get(chunk.session_id, 0)
        assert chunk.seq == expected
        per_session[chunk.session_id] = expected + 1
    assert len(per_session) == 5


def test_fleet_chunks_reassemble_into_synthesized_recordings():
    fleet = DeviceFleet(QUICK)
    assembler = SessionAssembler()
    rebuilt = {}
    for chunk in fleet:
        done = assembler.add(chunk)
        if done is not None:
            rebuilt[chunk.session_id] = done
    assert set(rebuilt) == {d.session_id for d in fleet.devices}
    for device in fleet.devices:
        want = fleet.synthesize(device)
        got = rebuilt[device.session_id]
        assert np.array_equal(got.channel("z"), want.channel("z"))
        assert np.array_equal(got.channel("ecg"), want.channel("ecg"))
        assert got.meta["session_id"] == device.session_id


def test_mixed_sampling_rates():
    config = FleetConfig(n_devices=4, duration_s=8.0, chunk_s=1.0,
                         fs_choices=(250.0, 125.0), seed=3)
    fleet = DeviceFleet(config)
    assert {d.fs for d in fleet.devices} == {250.0, 125.0}


def test_fleet_config_validation():
    with pytest.raises(ConfigurationError):
        FleetConfig(n_devices=0)
    with pytest.raises(ConfigurationError):
        FleetConfig(chunk_s=0.0)
    with pytest.raises(ConfigurationError):
        FleetConfig(fs_choices=())
    with pytest.raises(ConfigurationError):
        FleetConfig(jitter_s=-1.0)
    with pytest.raises(ConfigurationError):
        FleetConfig(n_rounds=0)
    with pytest.raises(ConfigurationError):
        FleetConfig(dropout=1.5)
    with pytest.raises(ConfigurationError):
        FleetConfig(round_gap_s=-1.0)
    with pytest.raises(ConfigurationError):
        DeviceFleet(QUICK, cohort=[])


# -- multi-round operation and churn -------------------------------------

MULTI = FleetConfig(n_devices=3, duration_s=8.0, chunk_s=2.0, seed=9,
                    n_rounds=3, round_gap_s=2.0)
CHURN = FleetConfig(n_devices=4, duration_s=8.0, chunk_s=2.0, seed=6,
                    n_rounds=2, round_gap_s=2.0, dropout=0.5)


def test_multi_round_schedules_one_session_per_device_round():
    fleet = DeviceFleet(MULTI)
    assert len(fleet.schedules) == 3 * 3
    assert fleet.session_ids == tuple(
        f"device-{i:03d}-r{r}" for i in range(3) for r in range(3))
    assert fleet.total_recording_s == pytest.approx(9 * 8.0)


def test_multi_round_interleave_is_deterministic():
    first = [(c.session_id, c.seq, c.arrival_s) for c in DeviceFleet(MULTI)]
    second = [(c.session_id, c.seq, c.arrival_s)
              for c in DeviceFleet(MULTI)]
    assert first == second
    churned_a = [(c.session_id, c.seq, c.arrival_s)
                 for c in DeviceFleet(CHURN)]
    churned_b = [(c.session_id, c.seq, c.arrival_s)
                 for c in DeviceFleet(CHURN)]
    assert churned_a == churned_b


def test_multi_round_stream_is_sorted_and_per_session_sequential():
    last_arrival = -1.0
    per_session = {}
    for chunk in DeviceFleet(CHURN):
        assert chunk.arrival_s >= last_arrival
        last_arrival = chunk.arrival_s
        expected = per_session.get(chunk.session_id, 0)
        assert chunk.seq == expected
        per_session[chunk.session_id] = expected + 1
    assert set(per_session) == set(DeviceFleet(CHURN).session_ids)


def test_rounds_are_gapped_in_time():
    fleet = DeviceFleet(MULTI)
    for device in fleet.devices:
        starts = [s.start_s for s in fleet.schedules
                  if s.device == device]
        for earlier, later in zip(starts, starts[1:]):
            # Next round starts after the previous round's recording
            # plus at least half the nominal gap.
            assert later >= earlier + MULTI.duration_s \
                + 0.5 * MULTI.round_gap_s


def test_rounds_vary_the_recording_but_round0_matches_single_round():
    multi = DeviceFleet(MULTI)
    single = DeviceFleet(FleetConfig(**{**MULTI.__dict__,
                                        "n_rounds": 1}))
    for i in range(3):
        r0 = multi.session_recording(f"device-{i:03d}-r0")
        base = single.session_recording(f"device-{i:03d}")
        assert np.array_equal(r0.channel("z"), base.channel("z"))
        r1 = multi.session_recording(f"device-{i:03d}-r1")
        assert not np.array_equal(r0.channel("z"), r1.channel("z"))


def test_dropout_without_rejoin_withholds_trailers():
    config = FleetConfig(**{**CHURN.__dict__, "rejoin": False})
    fleet = DeviceFleet(config)
    dropped = set(fleet.dropped_session_ids)
    assert dropped                         # this seed must churn
    finished = {c.session_id for c in fleet if c.is_last}
    assert finished == set(fleet.session_ids) - dropped
    # Dropped sessions stream at least one chunk, never all of them.
    seen = {}
    for chunk in fleet:
        seen[chunk.session_id] = seen.get(chunk.session_id, 0) + 1
    for sid in dropped:
        assert 1 <= seen[sid] < 4          # 8 s in 2 s chunks


def test_rejoin_completes_dropped_sessions_late():
    fleet = DeviceFleet(CHURN)
    dropped = set(fleet.dropped_session_ids)
    assert dropped
    finished = {c.session_id for c in fleet if c.is_last}
    assert finished == set(fleet.session_ids)
    # The rejoin delay must show as an arrival gap inside the session.
    for sid in dropped:
        arrivals = [c.arrival_s for c in fleet if c.session_id == sid]
        gaps = np.diff(arrivals)
        schedule = next(s for s in fleet.schedules
                        if s.session_id == sid)
        assert gaps.max() >= 0.9 * schedule.rejoin_delay_s


def test_single_chunk_sessions_cannot_drop():
    """A session too short to split (one chunk) streams whole even
    when its dropout draw fired — and must not be reported dropped,
    or consumers would wrongly expect an open session."""
    config = FleetConfig(n_devices=3, duration_s=8.0, chunk_s=8.0,
                         seed=6, n_rounds=2, dropout=1.0, rejoin=False)
    fleet = DeviceFleet(config)
    assert fleet.dropped_session_ids == ()
    finished = {c.session_id for c in fleet if c.is_last}
    assert finished == set(fleet.session_ids)


def test_churn_never_touches_sample_values():
    churned = DeviceFleet(CHURN)
    twin = DeviceFleet(FleetConfig(**{**CHURN.__dict__,
                                      "dropout": 0.0}))
    assert churned.session_ids == twin.session_ids
    for sid in churned.session_ids:
        assert np.array_equal(churned.session_recording(sid).channel("z"),
                              twin.session_recording(sid).channel("z"))
    by_session = {}
    for chunk in churned:
        by_session.setdefault(chunk.session_id, []).append(chunk)
    for sid, chunks in by_session.items():
        streamed = np.concatenate([c.signals["z"] for c in chunks])
        want = churned.session_recording(sid).channel("z")
        assert np.array_equal(streamed, want[: streamed.size])


def test_queue_backpressure_bound_holds_under_churn():
    from repro.ingest import StreamingExecutor

    fleet = DeviceFleet(CHURN)
    n_chunks = sum(1 for _ in fleet)
    executor = StreamingExecutor(n_workers=2, max_chunks=4,
                                 allow_open=True, preview=False)
    executor.run(fleet)
    stats = executor.last_queue_stats
    assert stats.peak_depth <= 4
    assert stats.total_put == stats.total_got == n_chunks
    chunk_bytes = 2 * 8 * int(CHURN.chunk_s * 250.0)
    assert stats.peak_bytes <= 4 * chunk_bytes
