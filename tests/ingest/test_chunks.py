"""Chunk transport: slicing, validation, lossless reassembly."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError, SignalError
from repro.ingest import (
    RecordingChunk,
    RecordingSource,
    SessionAssembler,
    SessionSource,
    chunk_recording,
)
from repro.io import Recording
from repro.synth import SynthesisConfig, default_cohort, synthesize_recording


@pytest.fixture(scope="module")
def recording():
    return synthesize_recording(default_cohort()[0], "device", 1,
                                SynthesisConfig(duration_s=12.0))


def _chunks(recording, chunk_s=2.0):
    return list(chunk_recording(recording, "s", chunk_s))


def test_chunks_partition_the_recording(recording):
    chunks = _chunks(recording, 1.5)
    assert chunks[0].seq == 0 and chunks[-1].is_last
    assert [c.seq for c in chunks] == list(range(len(chunks)))
    assert sum(c.n_samples for c in chunks) == recording.n_samples
    starts = [c.start_sample for c in chunks]
    assert starts == list(np.cumsum([0] + [c.n_samples
                                           for c in chunks[:-1]]))


def test_only_trailer_carries_annotations_and_meta(recording):
    chunks = _chunks(recording)
    for chunk in chunks[:-1]:
        assert chunk.annotations == {} and chunk.meta == {}
    trailer = chunks[-1]
    assert set(trailer.annotations) == set(recording.annotations)
    assert trailer.meta == recording.meta


def test_arrival_times_follow_sample_time(recording):
    chunks = _chunks(recording, 2.0)
    for chunk in chunks:
        end_s = (chunk.start_sample + chunk.n_samples) / recording.fs
        assert chunk.arrival_s == pytest.approx(end_s)


def test_chunk_nbytes_counts_payload(recording):
    chunk = _chunks(recording)[0]
    assert chunk.nbytes == sum(v.nbytes for v in chunk.signals.values())


def test_chunk_validation():
    with pytest.raises(SignalError):
        RecordingChunk("s", 0, 250.0, {}, 0)
    with pytest.raises(SignalError):
        RecordingChunk("s", 0, 250.0,
                       {"a": np.zeros(4), "b": np.zeros(5)}, 0)
    with pytest.raises(ConfigurationError):
        RecordingChunk("s", -1, 250.0, {"a": np.zeros(4)}, 0)
    with pytest.raises(ConfigurationError):
        list(chunk_recording(
            Recording(250.0, {"a": np.zeros(10)}), "s", chunk_s=0.0))


def test_recording_source_is_a_session_source(recording):
    source = RecordingSource(recording, "sess", 2.0)
    assert isinstance(source, SessionSource)
    chunks = list(source)
    assert chunks[0].session_id == "sess"
    assert chunks[-1].is_last


@settings(max_examples=20, deadline=None)
@given(chunk_s=st.floats(min_value=0.05, max_value=20.0))
def test_reassembly_is_lossless_for_any_chunking(chunk_s):
    """Slicing then concatenating must reproduce every sample,
    annotation and meta value bit-for-bit, whatever the chunk size."""
    recording = synthesize_recording(
        default_cohort()[1], "device", 2, SynthesisConfig(duration_s=9.0))
    assembler = SessionAssembler()
    rebuilt = None
    for chunk in chunk_recording(recording, "x", chunk_s):
        assert rebuilt is None            # only the trailer completes
        rebuilt = assembler.add(chunk)
    assert rebuilt is not None and len(assembler) == 0
    for name in recording.signals:
        assert np.array_equal(rebuilt.signals[name],
                              recording.signals[name])
    for name in recording.annotations:
        assert np.array_equal(rebuilt.annotations[name],
                              recording.annotations[name])
    assert rebuilt.meta == recording.meta
    assert rebuilt.fs == recording.fs


def test_assembler_interleaves_sessions(recording):
    a = list(chunk_recording(recording, "a", 3.0))
    b = list(chunk_recording(recording, "b", 3.0))
    assembler = SessionAssembler()
    done = {}
    for pair in zip(a, b):
        for chunk in pair:
            out = assembler.add(chunk)
            if out is not None:
                done[chunk.session_id] = out
    assert set(done) == {"a", "b"}
    assert np.array_equal(done["a"].channel("ecg"),
                          done["b"].channel("ecg"))


def test_assembler_rejects_gaps(recording):
    chunks = _chunks(recording, 2.0)
    assembler = SessionAssembler()
    assembler.add(chunks[0])
    with pytest.raises(SignalError):
        assembler.add(chunks[2])          # skipped seq 1
    assert assembler.open_sessions == ("s",)
