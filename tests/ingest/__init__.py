"""Streaming ingest tests."""
