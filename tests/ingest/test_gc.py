"""Journal garbage collection: bounded disk, crash-safe compaction.

The lifecycle contract under test: a GC pass only ever reclaims
records of provably dead sessions (completed + manifested + undamaged),
live sessions replay bit-identically from a compacted journal, and the
journal stays a working journal afterwards — reopening accepts appends
with correct segment numbering and a rescan reports zero damage.
"""

import numpy as np
import pytest

from repro.ingest import (
    ChunkJournal,
    DeviceFleet,
    FleetConfig,
    RecoveryManager,
    StreamingExecutor,
    chunk_recording,
    collectible_sessions,
    journal_gc,
    scan_journal,
)
from repro.ingest.gc import journal_bytes
from repro.synth import SynthesisConfig, default_cohort, synthesize_recording
from tests.ingest.faults import journal_segments

FLEET = FleetConfig(n_devices=3, duration_s=8.0, chunk_s=2.0, seed=13,
                    n_rounds=2, round_gap_s=2.0)

_CACHE = {}


def _fleet():
    if "fleet" not in _CACHE:
        _CACHE["fleet"] = DeviceFleet(FLEET)
    return _CACHE["fleet"]


def _journaled_run(directory, segment_records=None, source=None):
    with ChunkJournal(directory, segment_records=segment_records) as j:
        executor = StreamingExecutor(n_workers=1, preview=False,
                                     journal=j)
        return executor.run(source if source is not None else _fleet())


@pytest.fixture()
def truncated_source():
    recording = synthesize_recording(
        default_cohort()[0], "device", 1, SynthesisConfig(duration_s=8.0))
    return list(chunk_recording(recording, "cut", 2.0))[:-1]


def test_gc_reclaims_every_dead_session(tmp_path):
    directory = tmp_path / "j"
    _journaled_run(directory)
    scan = scan_journal(directory)
    assert collectible_sessions(scan) == frozenset(scan.complete)

    before = journal_bytes(directory)
    report = journal_gc(directory)
    assert before > 0
    assert report.bytes_before == before
    assert report.bytes_after == journal_bytes(directory) == 0
    assert set(report.sessions_collected) == set(scan.complete)
    assert not report.skipped_segments


def test_gc_compacts_mixed_segments_and_live_sessions_replay(
        tmp_path, truncated_source):
    """A segment mixing records of a dead session and a still-open one
    is compacted, and the open session's surviving records replay the
    session bit-identically to the pre-GC journal."""
    directory = tmp_path / "j"
    # One big segment: completed fleet sessions + an open "cut" session.
    def interleaved():
        yield from _fleet()
        yield from truncated_source
    _journaled_run(directory, source=interleaved())

    pre = RecoveryManager(directory).scan()
    assert "cut" in pre.open
    report = journal_gc(directory)
    assert report.compacted_segments or report.dropped_segments
    assert report.records_kept == len(truncated_source)

    post = RecoveryManager(directory).scan()
    assert not post.damaged
    assert set(post.open) == {"cut"}
    got = post.open["cut"]
    want = pre.open["cut"]
    assert len(got) == len(want)
    for a, b in zip(got, want):
        assert a.seq == b.seq
        for name in a.signals:
            assert np.array_equal(a.signals[name], b.signals[name])


def test_gc_dry_run_touches_nothing(tmp_path):
    directory = tmp_path / "j"
    _journaled_run(directory)
    before = {p.name: p.read_bytes() for p in journal_segments(directory)}
    report = journal_gc(directory, dry_run=True)
    assert report.dry_run and not report.noop
    assert report.bytes_after == report.bytes_before
    after = {p.name: p.read_bytes() for p in journal_segments(directory)}
    assert after == before
    assert not scan_journal(directory).collected


def test_gc_second_pass_is_a_noop(tmp_path):
    directory = tmp_path / "j"
    _journaled_run(directory)
    assert not journal_gc(directory).noop
    second = journal_gc(directory)
    assert second.noop
    assert second.bytes_after == second.bytes_before


def test_gc_skips_unmanifested_complete_sessions(tmp_path,
                                                 truncated_source):
    """A trailer in the log but no manifest on disk (crash before the
    manifest write) keeps the log authoritative: nothing is dead."""
    directory = tmp_path / "j"
    _journaled_run(directory)
    for manifest in directory.glob("manifest-*.json"):
        manifest.unlink()
    scan = scan_journal(directory)
    assert scan.complete and not scan.manifests
    assert collectible_sessions(scan) == frozenset()
    report = journal_gc(directory)
    assert report.noop
    assert journal_bytes(directory) == report.bytes_before


def test_gc_is_conservative_around_damage(tmp_path):
    from tests.ingest.faults import flip_crc_byte

    directory = tmp_path / "j"
    _journaled_run(directory, segment_records=4)
    victim = flip_crc_byte(directory, index=1)
    damaged_bytes = journal_bytes(directory)
    report = journal_gc(directory)
    # The quarantined session's segment(s) stay untouched as evidence;
    # every other segment is still reclaimed.
    assert any(victim in reason for _, reason in report.skipped_segments)
    assert report.dropped_segments
    assert 0 < journal_bytes(directory) < damaged_bytes
    scan = scan_journal(directory)
    assert set(scan.damaged) == {victim}


def test_reopen_after_gc_appends_with_fresh_segment_numbering(tmp_path):
    """The satellite contract: a GC'd journal is still a journal.
    Reopening accepts appends, new segments never collide with (or
    sort before) survivors, and a second scan reports zero damage."""
    directory = tmp_path / "j"
    # Small segments so GC leaves a numbering gap, not an empty dir.
    _journaled_run(directory, segment_records=3)
    extra = synthesize_recording(default_cohort()[1], "device", 1,
                                 SynthesisConfig(duration_s=8.0))
    open_chunks = list(chunk_recording(extra, "late", 2.0))[:-1]
    with ChunkJournal(directory, segment_records=3) as journal:
        for chunk in open_chunks:
            journal.append(chunk)

    journal_gc(directory)
    survivors = [p.name for p in journal_segments(directory)]
    assert survivors                      # "late" kept segments alive

    with ChunkJournal(directory, segment_records=3) as journal:
        # Collected sessions stay completed: a replayed chunk is the
        # idempotent no-op, not a fresh record resurrecting the session.
        assert journal.append(next(iter(_fleet()))) is False
        appended = sum(journal.append(c)
                       for c in chunk_recording(extra, "late", 2.0))
    assert appended > 0

    names = [p.name for p in journal_segments(directory)]
    assert names == sorted(names)
    assert len(set(names)) == len(names)
    # Every new segment sorts after every survivor: the log order on
    # disk is still the append order.
    assert names[:len(survivors)] == survivors

    scan = scan_journal(directory)
    assert not scan.damaged and scan.unattributed_damage == 0
    assert "late" in scan.complete
    outcome = RecoveryManager(directory).recover()
    assert not outcome.damaged
    assert "late" in outcome.results


def test_gc_heals_a_torn_tail(tmp_path):
    from tests.ingest.faults import tear_journal_tail

    directory = tmp_path / "j"
    _journaled_run(directory)
    tear_journal_tail(directory)
    report = journal_gc(directory)
    assert report.torn_tail_repaired
    assert scan_journal(directory).torn_tail is None


def test_gc_removes_stale_compaction_sidecars(tmp_path):
    directory = tmp_path / "j"
    _journaled_run(directory)
    stale = directory / "segment-00000.log.gctmp"
    stale.write_bytes(b"half-written compaction")
    report = journal_gc(directory)
    assert report.stale_tmp_removed == 1
    assert not stale.exists()
