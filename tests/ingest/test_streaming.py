"""Streaming executor: offline parity, causal-preview invariance,
backpressure bounds, failure propagation."""

import numpy as np
import pytest

from repro.core import PipelineConfig, process_batch
from repro.errors import ConfigurationError, SignalError
from repro.ingest import (
    CausalIcgConditioner,
    DeviceFleet,
    FleetConfig,
    RecordingSource,
    StreamingExecutor,
    chunk_recording,
)
from repro.rt.streaming import StreamingBiquadCascade
from repro.synth import SynthesisConfig, default_cohort, synthesize_recording

FLEET = FleetConfig(n_devices=4, duration_s=10.0, chunk_s=1.0, seed=5)


@pytest.fixture(scope="module")
def fleet():
    return DeviceFleet(FLEET)


@pytest.fixture(scope="module")
def fleet_results(fleet):
    executor = StreamingExecutor(n_workers=2, max_chunks=16)
    results = executor.run(fleet)
    return executor, results


def test_streaming_matches_offline_batch_bitwise(fleet, fleet_results):
    """The acceptance criterion: a session streamed chunk-by-chunk
    produces the same bits as the same recording through
    process_batch."""
    _, results = fleet_results
    recordings = [fleet.synthesize(d) for d in fleet.devices]
    offline = process_batch(recordings)
    for device, want in zip(fleet.devices, offline):
        got = results[device.session_id].result
        assert np.array_equal(got.icg, want.icg)
        assert np.array_equal(got.ecg_filtered, want.ecg_filtered)
        assert np.array_equal(got.r_peak_indices, want.r_peak_indices)
        assert np.array_equal(got.pep_s, want.pep_s)
        assert np.array_equal(got.lvet_s, want.lvet_s)
        assert got.z0_ohm == want.z0_ohm
        assert got.hr_bpm == want.hr_bpm


def test_streaming_process_finalize_matches_offline(fleet):
    executor = StreamingExecutor(n_workers=2, max_chunks=16,
                                 finalize_backend="process")
    results = executor.run(fleet)
    offline = process_batch([fleet.synthesize(d) for d in fleet.devices])
    for device, want in zip(fleet.devices, offline):
        got = results[device.session_id].result
        assert np.array_equal(got.icg, want.icg)
        assert got.z0_ohm == want.z0_ohm


def test_session_results_carry_stream_bookkeeping(fleet, fleet_results):
    _, results = fleet_results
    assert set(results) == {d.session_id for d in fleet.devices}
    for session in results.values():
        assert session.n_chunks == 10          # 10 s in 1 s chunks
        assert session.first_arrival_s < session.last_arrival_s
        assert session.preview_icg.size == session.recording.n_samples


def test_queue_stats_respect_backpressure_bound(fleet):
    executor = StreamingExecutor(n_workers=2, max_chunks=4)
    executor.run(fleet)
    stats = executor.last_queue_stats
    assert stats.peak_depth <= 4
    assert stats.total_put == stats.total_got == 4 * 10
    chunk_bytes = 2 * 8 * int(FLEET.chunk_s * 250.0)
    assert stats.peak_bytes <= 4 * chunk_bytes


def test_byte_bound_limits_peak_memory(fleet):
    chunk_bytes = 2 * 8 * int(FLEET.chunk_s * 250.0)
    executor = StreamingExecutor(n_workers=2, max_chunks=None,
                                 max_bytes=3 * chunk_bytes)
    executor.run(fleet)
    assert executor.last_queue_stats.peak_bytes <= 3 * chunk_bytes
    assert executor.last_queue_stats.blocked_puts > 0


def test_preview_can_be_disabled(fleet):
    executor = StreamingExecutor(n_workers=1, max_chunks=8,
                                 preview=False)
    results = executor.run(fleet)
    assert all(s.preview_icg is None for s in results.values())


def test_incomplete_session_raises():
    recording = synthesize_recording(
        default_cohort()[0], "device", 1, SynthesisConfig(duration_s=8.0))
    truncated = list(chunk_recording(recording, "cut", 1.0))[:-1]
    executor = StreamingExecutor(max_chunks=8)
    with pytest.raises(ConfigurationError):
        executor.run(truncated)


def test_pipeline_failure_propagates():
    from repro.io import Recording

    n = int(8 * 250.0)
    flat = Recording(250.0, {"ecg": np.zeros(n), "z": np.full(n, 25.0)})
    executor = StreamingExecutor(max_chunks=8)
    with pytest.raises(SignalError):
        executor.run(RecordingSource(flat, "flat", 1.0))


def test_rejects_bad_worker_count():
    with pytest.raises(ConfigurationError):
        StreamingExecutor(n_workers=0)


# -- the causal per-chunk conditioner ------------------------------------


@pytest.fixture(scope="module")
def z_signal():
    recording = synthesize_recording(
        default_cohort()[2], "device", 1, SynthesisConfig(duration_s=10.0))
    return recording.channel("z"), recording.fs


@pytest.mark.parametrize("n_parts", [1, 3, 17])
def test_causal_conditioner_is_chunk_invariant(z_signal, n_parts):
    """Carried filter state makes the preview independent of chunk
    boundaries (to round-off: block alignment shifts the vectorized
    scan's summation order)."""
    z, fs = z_signal
    whole = CausalIcgConditioner(fs).process_chunk(z)
    conditioner = CausalIcgConditioner(fs)
    parts = np.concatenate([conditioner.process_chunk(part)
                            for part in np.array_split(z, n_parts)])
    np.testing.assert_allclose(parts, whole, rtol=0, atol=1e-9)


def test_causal_conditioner_matches_rt_kernels(z_signal):
    """The vectorized per-chunk path is the same filter the per-sample
    rt cascade computes — pinned here so the firmware view and the
    ingest view can never drift."""
    z, fs = z_signal
    z = z[: int(2.0 * fs)]                 # per-sample loop is slow
    config = PipelineConfig()
    conditioner = CausalIcgConditioner(fs, config)
    fast = conditioner.process_chunk(z)

    from repro.core.cache import FilterDesignCache

    cache = FilterDesignCache()
    lowpass = StreamingBiquadCascade(
        np.array(cache.icg_lowpass_sos(fs, config.icg)))
    highpass = StreamingBiquadCascade(
        np.array(cache.icg_highpass_sos(fs, config.icg)))
    previous = z[0]
    reference = np.empty_like(z)
    for i, sample in enumerate(z):
        icg = -(sample - previous) * fs
        previous = sample
        reference[i] = highpass.process(lowpass.process(icg))
    np.testing.assert_allclose(fast, reference, rtol=0, atol=1e-9)


def test_causal_conditioner_tracks_offline_shape(z_signal):
    """The causal preview is delayed but morphologically faithful:
    it must correlate strongly with the zero-phase offline ICG."""
    from repro.bioimpedance.analysis import pearson_correlation
    from repro.icg.preprocessing import icg_from_impedance

    z, fs = z_signal
    preview = CausalIcgConditioner(fs).process_chunk(z)
    offline = icg_from_impedance(z, fs)
    # Search the causal group delay for the best alignment.
    best = max(
        pearson_correlation(preview[lag:], offline[:-lag or None])
        for lag in range(1, int(0.3 * fs))
    )
    assert best > 0.8
