"""Bounded work queue: FIFO, backpressure, close semantics, stats."""

import threading
import time

import pytest

from repro.errors import ConfigurationError, QueueClosedError, ReproError
from repro.ingest import BoundedWorkQueue


class _Item:
    def __init__(self, nbytes=100):
        self.nbytes = nbytes


def test_fifo_order():
    queue = BoundedWorkQueue(max_items=10)
    for value in range(5):
        queue.put(value)
    queue.close()
    assert [queue.get() for _ in range(5)] == list(range(5))
    assert queue.get() is None


def test_requires_a_bound():
    with pytest.raises(ConfigurationError):
        BoundedWorkQueue(max_items=None, max_bytes=None)
    with pytest.raises(ConfigurationError):
        BoundedWorkQueue(max_items=0)
    with pytest.raises(ConfigurationError):
        BoundedWorkQueue(max_bytes=0)


def test_put_blocks_until_space_and_counts_backpressure():
    queue = BoundedWorkQueue(max_items=2)
    queue.put(1)
    queue.put(2)
    released = threading.Event()

    def producer():
        queue.put(3)                      # must block: queue is full
        released.set()

    thread = threading.Thread(target=producer, daemon=True)
    thread.start()
    time.sleep(0.05)
    assert not released.is_set()
    assert queue.get() == 1               # frees a slot
    thread.join(timeout=2.0)
    assert released.is_set()
    assert queue.stats.blocked_puts == 1
    assert queue.stats.peak_depth == 2


def test_byte_bound_applies_backpressure():
    queue = BoundedWorkQueue(max_items=None, max_bytes=250)
    queue.put(_Item(100))
    queue.put(_Item(100))                 # 200 bytes buffered
    done = threading.Event()

    def producer():
        queue.put(_Item(100))             # 300 > 250: blocks
        done.set()

    thread = threading.Thread(target=producer, daemon=True)
    thread.start()
    time.sleep(0.05)
    assert not done.is_set()
    queue.get()
    thread.join(timeout=2.0)
    assert done.is_set()
    assert queue.stats.peak_bytes <= 250


def test_oversized_item_enters_empty_queue():
    """A single item larger than max_bytes must not deadlock — it is
    admitted alone (the bound caps *buffering*, not item size)."""
    queue = BoundedWorkQueue(max_items=None, max_bytes=50)
    queue.put(_Item(400))
    assert len(queue) == 1
    assert queue.get().nbytes == 400


def test_close_drains_then_signals_none():
    queue = BoundedWorkQueue(max_items=10)
    queue.put("a")
    queue.close()
    assert queue.closed
    assert queue.get() == "a"
    assert queue.get() is None
    with pytest.raises(QueueClosedError):
        queue.put("b")


def test_queue_closed_error_is_a_repro_error():
    """Producers that catch the library hierarchy see the close."""
    assert issubclass(QueueClosedError, ReproError)


def test_close_unblocks_producer_stuck_in_backpressure():
    """A producer blocked in the backpressure wait when close() lands
    must raise QueueClosedError instead of blocking forever on space
    no consumer will ever free (the daemon's graceful-drain path)."""
    queue = BoundedWorkQueue(max_items=1)
    queue.put("first")
    outcome = []

    def producer():
        try:
            queue.put("second")           # blocks: queue is full
            outcome.append("returned")
        except QueueClosedError:
            outcome.append("closed")

    thread = threading.Thread(target=producer, daemon=True)
    thread.start()
    time.sleep(0.05)
    assert not outcome                    # genuinely blocked
    queue.close()
    thread.join(timeout=2.0)
    assert outcome == ["closed"]
    # The buffered item is still drainable after the close.
    assert queue.get() == "first"
    assert queue.get() is None


def test_get_timeout_returns_none():
    queue = BoundedWorkQueue(max_items=4)
    start = time.perf_counter()
    assert queue.get(timeout=0.05) is None
    assert time.perf_counter() - start < 1.0


def test_concurrent_producers_consumers_conserve_items():
    queue = BoundedWorkQueue(max_items=4)
    n_producers, per_producer = 4, 50
    consumed = []
    lock = threading.Lock()

    def produce(base):
        for i in range(per_producer):
            queue.put(base + i)

    def consume():
        while True:
            item = queue.get()
            if item is None:
                return
            with lock:
                consumed.append(item)

    producers = [threading.Thread(target=produce,
                                  args=(1000 * p,), daemon=True)
                 for p in range(n_producers)]
    consumers = [threading.Thread(target=consume, daemon=True)
                 for _ in range(3)]
    for thread in producers + consumers:
        thread.start()
    for thread in producers:
        thread.join(timeout=10.0)
    queue.close()
    for thread in consumers:
        thread.join(timeout=10.0)
    assert len(consumed) == n_producers * per_producer
    assert len(set(consumed)) == len(consumed)
    assert queue.stats.peak_depth <= 4
    assert queue.stats.total_got == queue.stats.total_put
