"""The zero-copy ingest plane: arena rings and descriptor transport,
the iovec journal codec, group-commit write-through — and the
hypothesis parity sweep pinning the ``"arena"`` backend bit-identical
to the object-mode ``"reference"`` oracle over the churning
acceptance fleet."""

import warnings
import zlib

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.shm import ALIGNMENT
from repro.errors import ConfigurationError, JournalError
from repro.ingest import (
    BoundedWorkQueue,
    ChunkArenaRing,
    ChunkJournal,
    DeviceFleet,
    DURABILITY_MODES,
    FleetConfig,
    INGEST_BACKENDS,
    JOURNAL_CODECS,
    RecordingChunk,
    StreamingExecutor,
    chunk_from_descriptor,
    chunk_recording,
    ingest_backend,
    ingest_stats,
    publish_chunk,
    reset_ingest_stats,
    scan_journal,
    set_ingest_backend,
    use_ingest_backend,
)
from repro.ingest.journal import read_manifests
from repro.io.journal_records import (
    decode_chunk,
    decode_chunk_into,
    encode_chunk,
    encode_chunk_iov,
    frame_nbytes,
    frame_record,
    frame_record_iov,
    payload_crc,
)
from repro.synth import SynthesisConfig, default_cohort, synthesize_recording

#: The acceptance-criterion fleet: 8 devices x 3 rounds, with churn.
ACCEPTANCE = FleetConfig(n_devices=8, duration_s=8.0, chunk_s=2.0,
                         seed=42, n_rounds=3, round_gap_s=2.0,
                         dropout=0.25, rejoin=True)

_CACHE = {}


@pytest.fixture(scope="module")
def recording():
    return synthesize_recording(default_cohort()[0], "device", 1,
                                SynthesisConfig(duration_s=12.0))


@pytest.fixture(scope="module")
def chunks(recording):
    return list(chunk_recording(recording, "s", 2.0))


@pytest.fixture(autouse=True)
def _fresh_stats():
    reset_ingest_stats()
    yield
    reset_ingest_stats()


def _iov_bytes(parts):
    return b"".join(bytes(memoryview(p)) for p in parts)


# -- arena rings and descriptor transport --------------------------------


def test_publish_roundtrips_a_chunk(chunks):
    with ChunkArenaRing() as ring:
        for chunk in chunks:
            descriptor = publish_chunk(chunk, ring)
            assert descriptor.session_id == chunk.session_id
            assert descriptor.seq == chunk.seq
            assert descriptor.n_samples == chunk.n_samples
            assert descriptor.nbytes == chunk.nbytes
            back = chunk_from_descriptor(descriptor, ring)
            for name in chunk.signals:
                assert np.array_equal(back.signals[name],
                                      chunk.signals[name])
                assert not back.signals[name].flags.writeable
            for name in chunk.annotations:
                assert np.array_equal(back.annotations[name],
                                      chunk.annotations[name])
            assert back.meta == chunk.meta
            assert back.is_last == chunk.is_last


def test_descriptors_keep_queue_byte_accounting(chunks):
    """A descriptor is small on the wire but its ``nbytes`` still
    reports the described payload, so byte backpressure keeps bounding
    real buffered memory."""
    with ChunkArenaRing() as ring:
        descriptor = publish_chunk(chunks[0], ring)
        queue = BoundedWorkQueue(max_items=None,
                                 max_bytes=2 * descriptor.nbytes)
        queue.put(descriptor)
        assert queue.stats.peak_bytes == chunks[0].nbytes


def test_ring_rolls_blocks_and_reports_utilization(chunks):
    small = max(ALIGNMENT, 4096)
    with ChunkArenaRing(block_bytes=small) as ring:
        for chunk in chunks:
            ring.publish(chunk)
        assert ring.open_sessions == ("s",)
        stats = ingest_stats()
        assert stats.arena_blocks >= len(chunks)
        utilization = ring.session_utilization()
        assert 0.0 < utilization["s"] <= 1.0
        assert stats.arena_bytes_used <= stats.arena_bytes_reserved


def test_views_survive_session_release(chunks):
    ring = ChunkArenaRing()
    descriptor = ring.publish(chunks[0])
    view = chunk_from_descriptor(descriptor, ring)
    ring.release_session("s")
    assert ring.open_sessions == ()
    # The unlinked block lives on while the view holds its mapping —
    # a group-commit writer still draining iovecs is never racing.
    for name in chunks[0].signals:
        assert np.array_equal(view.signals[name],
                              chunks[0].signals[name])
    ring.release()


def test_released_ring_refuses_puts(chunks):
    ring = ChunkArenaRing()
    ring.release()
    with pytest.raises(ConfigurationError):
        ring.publish(chunks[0])
    ring.release()                        # idempotent


def test_ring_validation():
    with pytest.raises(ConfigurationError):
        ChunkArenaRing(block_bytes=ALIGNMENT - 1)


def test_size_hint_presizes_the_first_block(recording, chunks):
    total = sum(v.nbytes for v in recording.signals.values())
    total += sum(v.nbytes for v in recording.annotations.values())
    with ChunkArenaRing(block_bytes=4096,
                        size_hint=lambda sid: total) as ring:
        for chunk in chunks:
            ring.publish(chunk)
        # The hint pre-sizes block one to hold the whole session.
        assert ingest_stats().arena_blocks == 1


def test_backend_toggle_roundtrips():
    assert ingest_backend() in INGEST_BACKENDS
    before = ingest_backend()
    with use_ingest_backend("reference"):
        assert ingest_backend() == "reference"
    assert ingest_backend() == before
    with pytest.raises(ConfigurationError):
        set_ingest_backend("pigeon")


# -- the iovec codec ------------------------------------------------------


def test_iov_codec_is_bit_identical_to_bytes_codec(chunks):
    for chunk in chunks:
        payload = encode_chunk(chunk)
        parts = encode_chunk_iov(chunk)
        assert _iov_bytes(parts) == payload
        assert frame_nbytes(parts) == len(frame_record(payload))
        assert _iov_bytes(frame_record_iov(parts)) == \
            frame_record(payload)


def test_iov_codec_shares_the_chunk_memory(chunks):
    """The raw-sample parts alias the chunk's arrays — nothing is
    materialised, and the copy counter stays at zero."""
    chunk = chunks[0]
    reset_ingest_stats()
    parts = encode_chunk_iov(chunk)
    assert ingest_stats().bytes_copied == 0
    sample_parts = [np.frombuffer(memoryview(p), dtype="<f8")
                    for p in parts[1:]]
    arrays = list(chunk.signals.values()) + \
        list(chunk.annotations.values())
    for part, array in zip(sample_parts, arrays):
        assert np.shares_memory(part, array)


def test_payload_crc_chains_like_a_single_crc(chunks):
    parts = encode_chunk_iov(chunks[0])
    assert payload_crc(parts) == \
        zlib.crc32(_iov_bytes(parts)) & 0xFFFFFFFF


def test_codec_roundtrips_noncontiguous_and_readonly_views():
    """Strided device buffers and read-only arena views must encode
    through both codecs and decode bit-identically; the iov path folds
    the contiguity cast into its accounted copies."""
    rng = np.random.default_rng(5)
    raw = rng.normal(size=400)
    strided = raw[::2]                    # non-contiguous
    frozen = np.ascontiguousarray(raw[:200])
    frozen.setflags(write=False)          # read-only (an arena view)
    assert not strided.flags["C_CONTIGUOUS"]
    chunk = RecordingChunk("views", 0, 250.0,
                           {"z": strided, "ecg": frozen}, 0,
                           is_last=True)
    for payload in (encode_chunk(chunk),
                    _iov_bytes(encode_chunk_iov(chunk))):
        back = decode_chunk(payload)
        assert np.array_equal(back.signals["z"], strided)
        assert np.array_equal(back.signals["ecg"], frozen)
    # The strided signal forced one accounted cast copy; the read-only
    # contiguous one rode through untouched.
    reset_ingest_stats()
    encode_chunk_iov(chunk)
    assert ingest_stats().bytes_copied == strided.nbytes


def test_decode_chunk_into_rehydrates_into_the_arena(chunks):
    with ChunkArenaRing() as ring:
        for chunk in chunks:
            payload = encode_chunk(chunk)
            copied = decode_chunk(payload)
            reset_ingest_stats()
            arena_backed = decode_chunk_into(payload, ring)
            stats = ingest_stats()
            assert stats.rehydrated_chunks == 1
            assert stats.bytes_copied == 0
            for name in chunk.signals:
                assert np.array_equal(arena_backed.signals[name],
                                      copied.signals[name])
                assert not arena_backed.signals[name].flags.writeable
            assert arena_backed.meta == copied.meta


def test_frame_record_accepts_bytes_or_iovec(chunks):
    """The satellite fix: framing an iovec no longer materialises the
    payload twice — both spellings produce the same frame."""
    chunk = chunks[0]
    assert frame_record(encode_chunk_iov(chunk)) == \
        frame_record(encode_chunk(chunk))
    view = memoryview(encode_chunk(chunk))
    assert frame_record(view) == frame_record(bytes(view))


# -- group-commit write-through -------------------------------------------


def _journal_all(directory, chunks, **kwargs):
    with ChunkJournal(directory, **kwargs) as journal:
        for chunk in chunks:
            journal.append(chunk)
    return journal


def _segment_bytes(journal):
    return b"".join(path.read_bytes() for path in journal.segments)


@pytest.mark.parametrize("durability", DURABILITY_MODES)
@pytest.mark.parametrize("codec", JOURNAL_CODECS)
def test_every_mode_writes_the_same_bytes(tmp_path, chunks, durability,
                                          codec):
    """Group commit and the iovec codec change *when* bytes reach the
    disk, never *which* bytes: every durability x codec combination
    produces the byte-identical journal."""
    reference = _journal_all(tmp_path / "ref", chunks)
    journal = _journal_all(tmp_path / "j", chunks,
                           durability=durability, codec=codec)
    assert _segment_bytes(journal) == _segment_bytes(reference)
    assert read_manifests(tmp_path / "j") == \
        read_manifests(tmp_path / "ref")


def test_finalize_barriers_the_group_buffer(tmp_path, chunks):
    """``flush`` is the group-mode finalize barrier: once it returns,
    every buffered record *and* the queued completion manifest are on
    disk (appends themselves never serialize on the writer — the
    manifest marker rides the write queue behind its trailer)."""
    with ChunkJournal(tmp_path / "j", durability="group") as journal:
        for chunk in chunks:
            journal.append(chunk)
            if chunk.is_last:
                journal.flush()
                scan = scan_journal(tmp_path / "j")
                assert scan.n_records == len(chunks)
                assert "s" in read_manifests(tmp_path / "j")


def test_group_reopen_is_idempotent(tmp_path, chunks):
    cut = len(chunks) // 2
    _journal_all(tmp_path / "j", chunks[:cut], durability="group")
    with ChunkJournal(tmp_path / "j", durability="group") as journal:
        written = sum(journal.append(c) for c in chunks)
    assert written == len(chunks) - cut
    assert scan_journal(tmp_path / "j").n_records == len(chunks)


def test_group_backpressure_never_drops_records(tmp_path, chunks):
    """A pending-byte budget far below one record still admits every
    append (the bound caps buffering, not record size) — the producer
    just runs lockstep with the writer."""
    _journal_all(tmp_path / "j", chunks, durability="group",
                 max_pending_bytes=1024)
    assert scan_journal(tmp_path / "j").n_records == len(chunks)


def test_fsync_batches_per_window_not_per_record(tmp_path, chunks):
    _journal_all(tmp_path / "s", chunks, durability="strict",
                 fsync=True)
    strict = ingest_stats().strict_fsyncs
    reset_ingest_stats()
    _journal_all(tmp_path / "g", chunks, durability="group",
                 fsync=True)
    stats = ingest_stats()
    assert strict == len(chunks)
    assert 1 <= stats.group_fsyncs <= stats.group_flushes
    assert stats.group_flushes <= len(chunks)


def test_group_writer_error_surfaces_as_journal_error(tmp_path,
                                                      chunks):
    journal = ChunkJournal(tmp_path / "j", durability="group")
    try:
        def explode(batch):
            raise OSError("disk on fire")

        journal._write_batch = explode
        with pytest.raises(JournalError, match="journal writer"):
            for chunk in chunks:
                journal.append(chunk)
                journal.flush()
    finally:
        with pytest.raises(JournalError):
            journal.close()


def test_journal_mode_validation(tmp_path):
    with pytest.raises(ConfigurationError):
        ChunkJournal(tmp_path / "j", durability="eventually")
    with pytest.raises(ConfigurationError):
        ChunkJournal(tmp_path / "j", codec="pickle")
    with pytest.raises(ConfigurationError):
        ChunkJournal(tmp_path / "j", max_pending_bytes=0)


# -- work-queue sizing (the `_size_of` satellite) -------------------------


class _ShapedItem:
    shape = (1000,)
    dtype = "float64"


def test_size_of_falls_back_to_shape_and_dtype():
    queue = BoundedWorkQueue(max_items=None, max_bytes=10_000)
    queue.put(_ShapedItem())
    assert queue.stats.peak_bytes == 8000


def test_unsized_items_warn_once_per_queue():
    queue = BoundedWorkQueue(max_items=None, max_bytes=100)
    with pytest.warns(RuntimeWarning, match="byte"):
        queue.put(object())
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        queue.put(object())               # second put: already warned
    assert not [w for w in caught
                if issubclass(w.category, RuntimeWarning)]
    assert queue.stats.peak_bytes == 0
    assert len(queue) == 2


def test_unsized_items_stay_silent_without_a_byte_bound():
    queue = BoundedWorkQueue(max_items=4)
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        queue.put(object())
    assert not [w for w in caught
                if issubclass(w.category, RuntimeWarning)]


# -- the executor hot path and the parity sweep ---------------------------


def _acceptance_fleet():
    if "fleet" not in _CACHE:
        _CACHE["fleet"] = DeviceFleet(ACCEPTANCE)
    return _CACHE["fleet"]


def _reference_results():
    if "reference" not in _CACHE:
        with use_ingest_backend("reference"):
            _CACHE["reference"] = StreamingExecutor(
                n_workers=1, preview=False).run(_acceptance_fleet())
    return _CACHE["reference"]


def _assert_sessions_identical(got, want):
    assert set(got) == set(want)
    for sid, reference in want.items():
        result = got[sid].result
        assert np.array_equal(result.icg, reference.result.icg)
        assert np.array_equal(result.ecg_filtered,
                              reference.result.ecg_filtered)
        assert np.array_equal(result.pep_s, reference.result.pep_s)
        assert np.array_equal(result.lvet_s, reference.result.lvet_s)
        assert result.z0_ohm == reference.result.z0_ohm
        assert result.hr_bpm == reference.result.hr_bpm


def test_streaming_hot_path_copies_nothing(tmp_path):
    """The tentpole's bottom line: a journaled arena-backend run
    publishes each chunk once and copies zero bytes after that."""
    fleet = DeviceFleet(FleetConfig(n_devices=3, duration_s=6.0,
                                    chunk_s=2.0, seed=9))
    n_chunks = sum(1 for _ in fleet)
    reset_ingest_stats()
    with ChunkJournal(tmp_path / "j", durability="group",
                      codec="iov") as journal:
        StreamingExecutor(n_workers=1, preview=False, journal=journal,
                          ingest_backend="arena").run(fleet)
    stats = ingest_stats()
    assert stats.bytes_copied == 0
    assert stats.descriptor_chunks == n_chunks
    assert stats.object_chunks == 0
    assert stats.journal_records == n_chunks
    assert stats.arena_sessions_released == len(fleet.session_ids)
    assert stats.bytes_published == \
        sum(c.nbytes for c in fleet) + \
        sum(sum(a.nbytes for a in c.annotations.values())
            for c in fleet)


def test_reference_backend_ships_plain_objects():
    fleet = DeviceFleet(FleetConfig(n_devices=2, duration_s=4.0,
                                    chunk_s=2.0, seed=9))
    n_chunks = sum(1 for _ in fleet)
    reset_ingest_stats()
    StreamingExecutor(n_workers=1, preview=False,
                      ingest_backend="reference").run(fleet)
    stats = ingest_stats()
    assert stats.descriptor_chunks == 0
    assert stats.object_chunks == n_chunks
    assert stats.arena_blocks == 0


def test_executor_rejects_unknown_backend():
    with pytest.raises(ConfigurationError):
        StreamingExecutor(ingest_backend="pigeon")


@settings(max_examples=8, deadline=None)
@given(data=st.data())
def test_arena_backend_is_bit_identical_to_reference(data):
    """Property: over the churning acceptance fleet, the arena
    transport — any worker count, durability mode and codec — produces
    per-session results bit-identical to object-mode ingest."""
    reference = _reference_results()
    fleet = _acceptance_fleet()
    n_workers = data.draw(st.integers(min_value=1, max_value=3),
                          label="n_workers")
    journaled = data.draw(st.booleans(), label="journaled")
    durability = data.draw(st.sampled_from(DURABILITY_MODES),
                           label="durability")
    codec = data.draw(st.sampled_from(JOURNAL_CODECS), label="codec")
    directory = _CACHE["tmp_factory"](f"w{n_workers}-{durability}")
    journal = (ChunkJournal(directory, durability=durability,
                            codec=codec) if journaled else None)
    try:
        results = StreamingExecutor(
            n_workers=n_workers, preview=False, journal=journal,
            ingest_backend="arena").run(fleet)
    finally:
        if journal is not None:
            journal.close()
    _assert_sessions_identical(results, reference)


@pytest.fixture(scope="module", autouse=True)
def _tmp_factory(tmp_path_factory):
    """Expose pytest's tmp dir factory to the hypothesis body (fixtures
    cannot be drawn inside @given examples)."""
    counter = [0]

    def make(tag):
        counter[0] += 1
        return tmp_path_factory.mktemp(f"zcopy-{counter[0]}-{tag}")

    _CACHE["tmp_factory"] = make
    yield
    _CACHE.pop("tmp_factory", None)
