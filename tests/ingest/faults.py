"""Fault-injection harness for the durable-ingest tests.

Three families of scripted damage, mirroring the failure taxonomy the
journal's record framing is designed around
(:mod:`repro.io.journal_records`):

* :class:`FaultySource` — the *process* dies: a source that yields its
  wrapped source's chunks and then raises :class:`SimulatedCrash`
  mid-stream (between chunks, i.e. at a chunk boundary — the journal
  only ever observes whole consumed chunks; sub-record deaths are the
  torn-tail case below).
* :func:`tear_journal_tail` — the *write* dies: truncate the last
  segment mid-record, exactly what a crash inside ``write`` leaves
  behind.  Recovery must drop the torn bytes and heal.
* :func:`flip_crc_byte` / :func:`flip_payload_byte` — the *medium*
  lies: flip one byte of a stored record's CRC field or payload.  The
  scan must flag the record, pin it to its session, and quarantine
  exactly that session — never crash, never silently accept.

The storage-lifecycle PR adds three more families:

* :class:`CrashAfterEvents` — a ``crash_hook`` for
  :func:`repro.ingest.gc.journal_gc` that raises
  :class:`SimulatedCrash` after the N-th GC event, exercising every
  interruption window of the mark/sweep protocol.
* :func:`flip_archive_byte` — cold-tier medium damage: flip one byte
  of a stored archive file; loading must raise ``ArchiveError``,
  never return silently wrong data.
* :func:`kill_worker_job` — a picklable poison job for the process
  backend: SIGKILLs the worker that runs the sentinel item, the
  worker-death case the crash-tolerant fan-out must survive.

And the serve-daemon PR one more:

* :class:`StalledSource` — the source goes *silent* (not dead): it
  yields N chunks and then blocks without closing, the case a
  deadline policy (not crash recovery) must handle.

All helpers operate on a journal *directory* so tests stay independent
of segment layout; record indices count across segments in log order.
"""

from __future__ import annotations

import os
import signal
from pathlib import Path
from typing import Optional

from repro.io.journal_records import MAGIC, scan_segment

__all__ = ["SimulatedCrash", "FaultySource", "StalledSource",
           "journal_segments",
           "tear_journal_tail", "flip_crc_byte", "flip_payload_byte",
           "flip_magic_byte", "CrashAfterEvents", "flip_archive_byte",
           "kill_worker_job", "KILL_SENTINEL"]

_FRAME = len(MAGIC) + 4 + 4


class SimulatedCrash(BaseException):
    """Stands in for SIGKILL.  Deliberately *not* a ReproError (and not
    even an Exception): nothing in the library may catch it, exactly
    like a real kill."""


class FaultySource:
    """A session source that dies after yielding ``crash_after`` chunks.

    Wraps any iterable source; iterating raises
    :class:`SimulatedCrash` once the budget is exhausted.  If the
    wrapped source ends first, no crash happens (the degenerate
    crash-after-everything case recovery must also handle).
    """

    def __init__(self, source, crash_after: int) -> None:
        self.source = source
        self.crash_after = int(crash_after)

    def __iter__(self):
        count = 0
        for chunk in self.source:
            if count >= self.crash_after:
                raise SimulatedCrash(
                    f"source killed after {self.crash_after} chunks")
            yield chunk
            count += 1


class StalledSource:
    """A source that goes silent: yields ``yield_chunks`` chunks, then
    blocks forever (until :meth:`release`) without closing.

    This is the serve daemon's stalled-device case — the session is
    open, its chunks are journaled, and nothing further ever arrives.
    A deadline policy must quarantine exactly this session while its
    neighbours keep flowing; the source never crashes and never ends,
    so only the deadline (or :meth:`release` from the test) gets the
    consumer unstuck.
    """

    def __init__(self, source, yield_chunks: int,
                 stall_s: float = 3600.0) -> None:
        import threading
        self.source = source
        self.yield_chunks = int(yield_chunks)
        self.stall_s = float(stall_s)
        self.stalled = threading.Event()   # set once the stall begins
        self._release = threading.Event()

    def release(self) -> None:
        """Un-stall the source (it then ends without further chunks)."""
        self._release.set()

    def __iter__(self):
        count = 0
        for chunk in self.source:
            if count >= self.yield_chunks:
                self.stalled.set()
                self._release.wait(timeout=self.stall_s)
                return
            yield chunk
            count += 1


def journal_segments(directory) -> list:
    """Segment files of a journal directory, in log order."""
    return sorted(Path(directory).glob("segment-*.log"))


def _locate_record(directory, index: int):
    """(segment_path, RecordEntry) of the ``index``-th record across
    the whole journal, in log order."""
    count = 0
    for path in journal_segments(directory):
        entries = scan_segment(path).entries
        if index < count + len(entries):
            return path, entries[index - count]
        count += len(entries)
    raise IndexError(f"journal holds {count} records, no index {index}")


def tear_journal_tail(directory, keep_bytes: int = 11) -> Path:
    """Truncate the last segment mid-record (a crash inside ``write``).

    The final record is cut down to ``keep_bytes`` of its frame —
    enough to leave recognisable garbage, too little to parse — and
    the truncated segment path is returned.  Raises when the journal
    has no records to tear.
    """
    segments = journal_segments(directory)
    for path in reversed(segments):
        entries = scan_segment(path).entries
        if entries:
            last = entries[-1]
            keep = min(int(keep_bytes), last.length - 1)
            with open(path, "r+b") as fh:
                fh.truncate(last.offset + keep)
            return path
    raise IndexError("journal holds no records to tear")


def _flip_byte(path: Path, offset: int) -> None:
    data = bytearray(path.read_bytes())
    data[offset] ^= 0xFF
    path.write_bytes(bytes(data))


def flip_crc_byte(directory, index: int = 0) -> str:
    """Flip one byte of record ``index``'s stored CRC field.

    The payload stays intact, so the scan can still identify the
    session the damaged record belonged to; returns that session id.
    """
    path, entry = _locate_record(directory, index)
    _flip_byte(path, entry.offset + len(MAGIC) + 4)
    return entry.session_id


def flip_magic_byte(directory, index: int = 0) -> str:
    """Flip one byte of record ``index``'s frame MAGIC — the
    lost-framing damage class: nothing after it in that segment can be
    interpreted.  Returns the record's session id."""
    path, entry = _locate_record(directory, index)
    _flip_byte(path, entry.offset)
    return entry.session_id


def flip_payload_byte(directory, index: int = 0,
                      payload_offset: Optional[int] = None) -> str:
    """Flip one byte inside record ``index``'s payload (array bytes by
    default, so the JSON header — and session attribution — survives);
    returns the damaged record's session id."""
    path, entry = _locate_record(directory, index)
    if payload_offset is None:
        # Flip in the trailing half: safely past the JSON header.
        payload_offset = (entry.length - _FRAME) - 8
    _flip_byte(path, entry.offset + _FRAME + payload_offset)
    return entry.session_id


# -- storage-lifecycle faults --------------------------------------------


class CrashAfterEvents:
    """A ``crash_hook`` for :func:`repro.ingest.gc.journal_gc` that
    dies after ``budget`` GC events.

    ``journal_gc`` reports each durable step as a
    ``crash_hook(stage, detail)`` call — manifests marked, segments
    dropped, compacted segments written and swapped.  Raising
    :class:`SimulatedCrash` on the N-th call interrupts the collector
    in every distinct on-disk window; ``events`` records what ran so a
    test can assert it crashed where intended.
    """

    def __init__(self, budget: int) -> None:
        self.budget = int(budget)
        self.events: list = []

    def __call__(self, stage: str, detail: str) -> None:
        self.events.append((stage, detail))
        if len(self.events) >= self.budget:
            raise SimulatedCrash(
                f"gc killed at event {len(self.events)}: "
                f"{stage} {detail}")


def flip_archive_byte(archive_directory, offset: int = -64) -> Path:
    """Flip one byte of the first archive file (negative offsets count
    from the end — the default lands in array payload, past the npz
    directory).  Returns the damaged file's path."""
    files = sorted(Path(archive_directory).glob("archive-*.npz"))
    if not files:
        raise IndexError(f"no archives in {archive_directory}")
    data = bytearray(files[0].read_bytes())
    data[offset] ^= 0xFF
    files[0].write_bytes(bytes(data))
    return files[0]


#: Item value that makes :func:`kill_worker_job` kill its worker.
KILL_SENTINEL = "kill-this-worker"


def kill_worker_job(item):
    """Process-backend job that SIGKILLs its own worker on the
    :data:`KILL_SENTINEL` item and echoes everything else — picklable
    on purpose, so the crash-tolerant fan-out can ship it."""
    if item == KILL_SENTINEL:
        os.kill(os.getpid(), signal.SIGKILL)
    return ("ok", item)
