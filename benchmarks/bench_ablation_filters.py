"""Ablation A2: the conditioning-chain design choices.

* ICG high-pass on/off under deep breathing (1 ohm respiratory swing):
  without the 0.8 Hz band edge, respiratory minima capture X0 and most
  beats fail — the failure mode that motivated restricting the signal
  to its stated 0.8-20 Hz band.  At shallow resting respiration both
  variants cope, which is why the stress case is what's benchmarked.
* ECG baseline removal: morphological stage + FIR versus FIR alone —
  the 32nd-order FIR cannot build a 0.05 Hz edge by itself.
* Q15 coefficient quantization of the paper's FIR: response error
  bound for the fixed-point rewrite.
"""

import numpy as np
from conftest import save_artifact

from repro.dsp import fir as fir_mod
from repro.dsp import spectral
from repro.ecg import detect_r_peaks, preprocess_ecg
from repro.ecg.preprocessing import bandpass
from repro.experiments import format_table
from repro.icg.points import detect_all_points
from repro.icg.preprocessing import IcgFilterConfig, icg_from_impedance
from repro.rt.fixedpoint import Q15, quantize
from repro.synth import SynthesisConfig, default_cohort, synthesize_recording


def _x0_errors_ms(recording, icg, r_peaks):
    truth_x = recording.annotation("x_times_s")
    points, failures = detect_all_points(icg, recording.fs, r_peaks)
    if not points:
        return np.array([]), len(failures)
    detected = np.array([p.x0_index for p in points]) / recording.fs
    errors = np.array([
        (d - truth_x[np.argmin(np.abs(truth_x - d))]) * 1000.0
        for d in detected])
    return errors, len(failures)


def test_filter_ablations(benchmark, results_dir):
    subject = default_cohort()[1]
    # Deep-breathing stress case: a 1 ohm respiratory swing, ~3x the
    # resting default.
    recording = synthesize_recording(
        subject, "thoracic", 1,
        SynthesisConfig(duration_s=30.0, respiration_z_ohm=1.0))
    fs = recording.fs
    z = recording.channel("z")
    ecg = recording.channel("ecg")
    filtered_ecg = preprocess_ecg(ecg, fs)
    r_peaks = detect_r_peaks(filtered_ecg, fs)

    def condition_both():
        with_hp = icg_from_impedance(z, fs, IcgFilterConfig())
        without_hp = icg_from_impedance(z, fs,
                                        IcgFilterConfig(highpass_hz=None))
        return with_hp, without_hp

    with_hp, without_hp = benchmark(condition_both)

    err_with, fails_with = _x0_errors_ms(recording, with_hp, r_peaks)
    err_without, fails_without = _x0_errors_ms(recording, without_hp,
                                               r_peaks)

    # ECG: residual sub-0.5 Hz power with and without morphology.
    t = recording.time_s
    wander = 0.5 * np.sin(2 * np.pi * 0.15 * t)
    contaminated = ecg + wander
    full_chain = preprocess_ecg(contaminated, fs)
    fir_only = bandpass(contaminated, fs)
    freqs, psd_full = spectral.welch(full_chain, fs, nperseg=2048)
    _, psd_fir = spectral.welch(fir_only, fs, nperseg=2048)
    low_full = spectral.band_power(freqs, psd_full, 0.05, 0.4)
    low_fir = spectral.band_power(freqs, psd_fir, 0.05, 0.4)

    # Q15 quantization of the paper FIR.
    taps = fir_mod.design_bandpass(32, 0.05, 40.0, fs)
    scale = np.abs(taps).max() * 1.01
    taps_q15 = np.asarray(quantize(taps / scale, Q15)) * scale
    grid = np.linspace(1.0, 45.0, 50)
    _, h_float = fir_mod.frequency_response(taps, grid, fs)
    _, h_q15 = fir_mod.frequency_response(taps_q15, grid, fs)
    q15_error_db = 20 * np.log10(
        np.max(np.abs(np.abs(h_q15) - np.abs(h_float))) + 1e-12)

    def stats(err):
        return (f"{np.abs(err).mean():6.1f} (max {np.abs(err).max():5.0f})"
                if err.size else "n/a")

    rows = [
        [f"X0 |error| ms, with 0.8 Hz HP ({fails_with} failed beats)",
         stats(err_with)],
        [f"X0 |error| ms, without HP ({fails_without} failed beats)",
         stats(err_without)],
        ["ECG sub-0.5 Hz power, morphology + FIR",
         f"{low_full:.2e} mV^2"],
        ["ECG sub-0.5 Hz power, FIR only", f"{low_fir:.2e} mV^2"],
        ["Q15 FIR response error", f"{q15_error_db:.0f} dB"],
    ]
    table = format_table(["Configuration", "result"], rows,
                         title="Ablation A2: conditioning-chain choices")
    save_artifact(results_dir, "ablation_filters", table)

    # The band edge keeps detection intact under deep breathing...
    assert fails_with == 0
    assert np.abs(err_with).mean() < 20.0
    # ...while dropping it loses beats and/or blows up X0 errors.
    assert (fails_without > 5
            or np.abs(err_without).mean() > 3 * np.abs(err_with).mean())
    # Morphology is what builds the sub-hertz edge, not the FIR.
    assert low_full < 0.5 * low_fir
    # Q15 quantization is far below the signal chain's noise floor.
    assert q15_error_db < -50.0
