"""Figs 8a-c: relative position errors e21, e23, e31 (F8).

Paper: e21 (positions 2 vs 1) is the largest error, e31 (3 vs 1) the
smallest, and the worst case stays below 20 % — the "device
displacement during measurement" robustness claim.
"""

import numpy as np
from conftest import save_artifact

from repro.experiments import render_relative_errors


def _flatten(by_subject):
    return np.array([v for by_freq in by_subject.values()
                     for v in by_freq.values()])


def test_fig8_relative_errors(benchmark, study, results_dir):
    errors = benchmark(study.relative_errors)

    save_artifact(results_dir, "fig8_relative_error",
                  render_relative_errors(errors)
                  + f"\n\nWorst-case |error|: "
                    f"{study.worst_case_error() * 100:.1f} % "
                    f"(paper: always below 20 %)")

    e21 = _flatten(errors["e21"])
    e23 = _flatten(errors["e23"])
    e31 = _flatten(errors["e31"])
    # Ordering: highest overall error between positions 1 and 2,
    # lowest between 3 and 1 (paper Figs 8a/8c).
    assert e21.mean() > e23.mean() > e31.mean() > 0
    # Conclusion claim: worst case below 20 %.
    assert study.worst_case_error() < 0.20
    # And not trivially small either — displacement does matter.
    assert e21.mean() > 0.05
