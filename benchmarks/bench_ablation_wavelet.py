"""Ablation A3: paper's filter chain vs related-work wavelet denoising.

The paper's related work ([15]-[17]) suppresses ICG artifacts with
wavelet methods; the paper itself chose plain zero-phase filters for
the embedded budget.  This bench runs both conditioners on the same
noisy device recordings and compares landmark accuracy and the MCU
price — quantifying the trade the authors made.
"""

import numpy as np
from conftest import save_artifact

from repro.ecg import detect_r_peaks, preprocess_ecg
from repro.experiments import format_table
from repro.icg.points import detect_all_points
from repro.icg.preprocessing import icg_from_impedance
from repro.synth import SynthesisConfig, default_cohort, synthesize_recording


def _landmark_errors(recording, icg, r_peaks):
    fs = recording.fs
    points, failures = detect_all_points(icg, fs, r_peaks)
    truth = {
        "b": recording.annotation("b_times_s"),
        "c": recording.annotation("c_times_s"),
    }
    out = {}
    for key, indices in (("b", [p.b_index for p in points]),
                         ("c", [p.c_index for p in points])):
        detected = np.asarray(indices) / fs
        out[key] = np.array([
            (d - truth[key][np.argmin(np.abs(truth[key] - d))]) * 1000.0
            for d in detected])
    return out, len(failures)


def test_wavelet_vs_filter_conditioning(benchmark, results_dir):
    subject = default_cohort()[0]   # moderate contact, worst posture
    recording = synthesize_recording(subject, "device", 3,
                                     SynthesisConfig(duration_s=30.0))
    fs = recording.fs
    z = recording.channel("z")
    r_peaks = detect_r_peaks(
        preprocess_ecg(recording.channel("ecg"), fs), fs)

    def condition_both():
        return (icg_from_impedance(z, fs, method="filter"),
                icg_from_impedance(z, fs, method="wavelet"))

    filtered, waveleted = benchmark(condition_both)

    err_filter, fails_filter = _landmark_errors(recording, filtered,
                                                r_peaks)
    err_wavelet, fails_wavelet = _landmark_errors(recording, waveleted,
                                                  r_peaks)

    def stats(err):
        return (f"{np.median(np.abs(err)):6.1f}" if err.size else "n/a")

    rows = [
        ["filter chain (paper)", stats(err_filter["c"]),
         stats(err_filter["b"]), str(fails_filter)],
        ["wavelet (related work)", stats(err_wavelet["c"]),
         stats(err_wavelet["b"]), str(fails_wavelet)],
    ]
    table = format_table(
        ["Conditioner", "C med|err| ms", "B med|err| ms", "failed beats"],
        rows,
        title="Ablation A3: ICG conditioning on a noisy device "
              "recording (subject 1, position 3)")
    note = ("\nFinding: the paper's plain filter chain beats VisuShrink "
            "wavelet denoising on\ndevice-grade motion noise (the "
            "universal threshold shaves genuine beat detail\nwhile "
            "in-band motion survives), and it costs 3 biquads/sample "
            "instead of a\nmulti-level transform per window — "
            "supporting the paper's design choice.")
    save_artifact(results_dir, "ablation_wavelet", table + note)

    # The paper's choice holds up: filters are at least as accurate and
    # lose no more beats.
    assert np.median(np.abs(err_filter["c"])) < 20.0
    assert (np.median(np.abs(err_filter["c"]))
            <= np.median(np.abs(err_wavelet["c"])) + 1.0)
    assert fails_filter <= fails_wavelet
