"""Ablation A1: the detection-rule variants the paper discusses.

* X0 search: the paper's global negative minimum right of C versus the
  original Carvalho RT-window (the paper argues T-wave ends are
  unreliable and switched — with a healthy T wave both should agree).
* B branch: how often the (+,-,+,-) second-derivative pattern fires,
  and the accuracy of each branch against ground truth.
"""

import numpy as np
from conftest import save_artifact

from repro.ecg import detect_r_peaks, preprocess_ecg
from repro.errors import DetectionError
from repro.experiments import format_table
from repro.icg.points import PointConfig, detect_all_points, detect_beat_points
from repro.icg.preprocessing import icg_from_impedance
from repro.synth import SynthesisConfig, default_cohort, synthesize_recording


def _errors_ms(detected_times, truth_times):
    return np.array([
        (d - truth_times[np.argmin(np.abs(truth_times - d))]) * 1000.0
        for d in detected_times])


def test_point_detection_ablation(benchmark, results_dir):
    subject = default_cohort()[1]
    recording = synthesize_recording(
        subject, "thoracic", 1,
        SynthesisConfig(duration_s=30.0, include_motion=False,
                        include_powerline=False))
    fs = recording.fs
    icg = icg_from_impedance(recording.channel("z"), fs)
    r_peaks = detect_r_peaks(
        preprocess_ecg(recording.channel("ecg"), fs), fs)

    def run_paper_variant():
        return detect_all_points(icg, fs, r_peaks, PointConfig())

    points, failures = benchmark(run_paper_variant)

    # Carvalho RT-window variant needs per-beat RT intervals from the
    # (synthetic ground truth) T peaks.
    t_peaks = recording.annotation("t_peak_times_s")
    x0_paper, x0_carvalho = [], []
    for p in points:
        r_time = p.r_index / fs
        t_candidates = t_peaks[t_peaks > r_time]
        if t_candidates.size == 0:
            continue
        rt = float(t_candidates[0] - r_time)
        try:
            alternative = detect_beat_points(
                icg, fs, p.r_index,
                p.r_index + int((p.x0_index - p.r_index) * 1.8),
                PointConfig(x_strategy="rt_window"), rt_interval_s=rt)
        except DetectionError:
            continue
        x0_paper.append(p.x0_index / fs)
        x0_carvalho.append(alternative.x0_index / fs)

    truth_b = recording.annotation("b_times_s")
    truth_x = recording.annotation("x_times_s")
    b_pattern = _errors_ms([p.b_index / fs for p in points
                            if p.pattern_found], truth_b)
    b_zerocross = _errors_ms([p.b_index / fs for p in points
                              if not p.pattern_found], truth_b)
    x0_err = _errors_ms([p.x0_index / fs for p in points], truth_x)
    agreement = np.abs(np.array(x0_paper) - np.array(x0_carvalho)) * 1000

    def stats(err):
        return (f"{err.mean():+6.1f} +- {err.std():5.1f}"
                if err.size else "   n/a")

    rows = [
        ["B via d2 pattern branch", str(b_pattern.size),
         stats(b_pattern)],
        ["B via d1 zero-cross branch", str(b_zerocross.size),
         stats(b_zerocross)],
        ["X0 paper (global min right of C)", str(x0_err.size),
         stats(x0_err)],
        ["X0 Carvalho vs paper (|delta|)", str(agreement.size),
         f"{agreement.mean():6.1f} +- {agreement.std():5.1f}"],
    ]
    table = format_table(["Rule variant", "n beats", "error (ms)"], rows,
                         title="Ablation A1: detection-rule variants")
    save_artifact(results_dir, "ablation_points", table)

    assert len(failures) <= 2
    # Both B branches land within the literature's dispersion.
    if b_pattern.size:
        assert abs(b_pattern.mean()) < 25.0
    assert abs(b_zerocross.mean()) < 20.0
    # With a healthy T wave the two X0 definitions mostly agree.
    assert np.median(agreement) < 40.0
