"""Fig 6: thoracic bioimpedance vs injection frequency (F6).

Paper: the traditional-setup Z0 increases until f = 10 kHz and then
decreases.  Shape targets: peak at 10 kHz, monotone decline beyond.
"""

import numpy as np
from conftest import save_artifact

from repro.experiments import render_mean_z_series


def test_fig6_thoracic_bioimpedance(benchmark, study, results_dir):
    series = benchmark(study.thoracic_mean_z)

    save_artifact(results_dir, "fig6_thoracic_z",
                  render_mean_z_series(series,
                                       "Fig 6: Thoracic bioimpedance "
                                       "(mean Z0, ohm)"))

    means = {freq: float(np.mean(values))
             for freq, values in series.items()}
    assert means[10_000.0] > means[2_000.0]          # rising to 10 kHz
    assert means[10_000.0] > means[50_000.0] > means[100_000.0]  # falling
    # Thoracic impedance magnitude is in the tens of ohms.
    assert 5.0 < means[50_000.0] < 60.0
