"""Fig 5: the ICG/ECG waveform with its characteristic points (F5).

Paper: one annotated beat showing R (ECG) and B, C, X (ICG).  The
reproduction detects the points on a synthetic beat with exact
ground-truth landmarks and reports the timing errors; the bench times
the per-beat detection (the work the firmware does every heartbeat).
"""

import numpy as np
from conftest import save_artifact

from repro.experiments import format_table
from repro.icg.points import detect_beat_points
from repro.synth.icg_model import synthesize_icg

FS = 250.0


def _beat():
    icg, landmarks = synthesize_icg(np.array([1.0]), 0.10, 0.30, 1.2,
                                    3.0, FS)
    r_index = int(1.0 * FS)
    return icg, landmarks, r_index


def test_fig5_characteristic_points(benchmark, results_dir):
    icg, landmarks, r_index = _beat()
    window_stop = r_index + int(0.9 * FS)

    points = benchmark(detect_beat_points, icg, FS, r_index, window_stop)

    truth_b = landmarks["b_times_s"][0]
    truth_c = landmarks["c_times_s"][0]
    truth_x = landmarks["x_times_s"][0]
    rows = [
        ["B (aortic opening)", f"{points.b_index / FS:.3f}",
         f"{truth_b:.3f}",
         f"{(points.b_index / FS - truth_b) * 1000:+.0f} ms"],
        ["C (dZ/dt max)", f"{points.c_index / FS:.3f}", f"{truth_c:.3f}",
         f"{(points.c_index / FS - truth_c) * 1000:+.0f} ms"],
        ["X (aortic closure)", f"{points.x_index / FS:.3f}",
         f"{truth_x:.3f}",
         f"{(points.x_index / FS - truth_x) * 1000:+.0f} ms"],
        ["X0 (trough estimate)", f"{points.x0_index / FS:.3f}",
         f"{truth_x:.3f}",
         f"{(points.x0_index / FS - truth_x) * 1000:+.0f} ms"],
    ]
    table = format_table(["Point", "detected (s)", "truth (s)", "error"],
                         rows,
                         title="Fig 5: ICG characteristic points on a "
                               "canonical beat")
    derived = (f"{table}\n\nPEP = {points.pep_s(FS) * 1000:.0f} ms "
               f"(truth 100), LVET = {points.lvet_s(FS) * 1000:.0f} ms "
               f"(truth 300)")
    save_artifact(results_dir, "fig5_waveform", derived)

    assert abs(points.c_index / FS - truth_c) < 0.01
    assert abs(points.b_index / FS - truth_b) < 0.02
    assert abs(points.x0_index / FS - truth_x) < 0.02
    # The refined X precedes the trough by construction of the rule.
    assert points.x_index <= points.x0_index
