"""Section V claim: 40-50 % of the STM32's duty cycle (S5a).

The firmware simulator counts every operation of the streaming chain
(front-end decimation, morphological baseline, FIR, Pan-Tompkins, ICG
conditioning, per-beat landmark search) and prices it on the
Cortex-M3 model in three arithmetic regimes.  The unoptimised
double-precision soft-float build — what plain C with ``double``
literals compiles to on an FPU-less core — reproduces the paper's
figure; the Q15 row quantifies the fixed-point rewrite headroom.
"""

from conftest import save_artifact

from repro.device import FirmwareSimulator
from repro.experiments import format_table


def test_cpu_duty_cycle(benchmark, thoracic_recording, results_dir):
    recording = thoracic_recording
    simulator = FirmwareSimulator(recording.fs)
    ecg = recording.channel("ecg")
    z = recording.channel("z")

    result = benchmark.pedantic(simulator.run, args=(ecg, z),
                                rounds=1, iterations=1)

    rows = [
        ["Q15 fixed point", f"{result.cpu_duty_q15:.1%}"],
        ["soft float (single)", f"{result.cpu_duty_softfloat:.1%}"],
        ["soft float (double)", f"{result.cpu_duty_softdouble:.1%}"],
        ["paper claim", "40-50 %"],
    ]
    table = format_table(["Arithmetic regime", "CPU duty @ 32 MHz"], rows,
                         title="Section V: STM32L151 CPU duty cycle")
    save_artifact(results_dir, "cpu_duty_cycle", table)

    # The paper's regime lands inside its stated band.
    assert 0.40 <= result.cpu_duty_paper <= 0.50
    # Ordering and the fixed-point headroom.
    assert (result.cpu_duty_q15 < result.cpu_duty_softfloat
            < result.cpu_duty_softdouble)
    assert result.cpu_duty_q15 < 0.10
    # Functional output sanity while we are here.
    assert len(result.beats) > 20
