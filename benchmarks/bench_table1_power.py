"""Table I + the battery-life arithmetic (experiment T1/S5b).

Paper: Table I lists per-component currents; Sections V-VI derive
106 h on a 710 mAh battery at 50 % MCU / 1 % radio duty.
"""

from conftest import save_artifact

from repro.device import (
    TABLE_I,
    PowerBudget,
    battery_life_hours,
    paper_operating_point,
)
from repro.experiments import format_table


def test_table1_and_battery_life(benchmark, results_dir):
    hours = benchmark(battery_life_hours)

    rows = [[c.name, f"{c.active_ma:.3f}", f"{c.standby_ma:.3f}"]
            for c in TABLE_I.values()]
    table = format_table(["Component", "active (mA)", "standby (mA)"],
                         rows, title="TABLE I: Current consumption")
    current = PowerBudget().average_current_ma(paper_operating_point())
    summary = (f"{table}\n\nAverage current at paper operating point: "
               f"{current:.3f} mA\nBattery life (710 mAh): {hours:.1f} h "
               f"(paper: 106 h)")
    save_artifact(results_dir, "table1_power", summary)

    assert abs(hours - 106.0) < 1.5
    assert hours / 24.0 > 4.0      # "over four days"
