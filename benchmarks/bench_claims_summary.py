"""Conclusion-level claims (C1): the paper's headline numbers.

* "highly correlated with traditional systems (> 80 %)" and
  "strong correlation (r = 85 %)",
* "the obtained error is always below 20 %",
* "long duration of operation of over four days on a single battery
  charge".
"""

import numpy as np
from conftest import save_artifact

from repro.device import battery_life_hours
from repro.experiments import format_table


def test_headline_claims(benchmark, study, results_dir):
    def derive():
        return (study.mean_correlation(), study.worst_case_error(),
                battery_life_hours())

    mean_r, worst_error, hours = benchmark(derive)

    rows = [
        ["overall correlation", f"{mean_r:.3f}", "~0.85 (> 0.80)"],
        ["worst-case |error|", f"{worst_error * 100:.1f} %", "< 20 %"],
        ["battery life", f"{hours:.0f} h ({hours / 24:.1f} d)",
         "106 h (> 4 d)"],
    ]
    table = format_table(["Claim", "measured", "paper"], rows,
                         title="Conclusion claims, paper vs reproduction")
    save_artifact(results_dir, "claims_summary", table)

    assert mean_r > 0.80
    assert worst_error < 0.20
    assert hours / 24.0 > 4.0
    # The per-position means follow the paper's pattern (pos 3 weakest).
    means = [np.mean(list(study.correlation_table(p).values()))
             for p in (1, 2, 3)]
    assert means[2] == min(means)
