"""Shared benchmark fixtures.

The full protocol simulation (5 subjects x 3 positions x 4 frequencies
x 30 s, plus thoracic references) runs once per session; every
table/figure bench derives its artefact from that shared result and
records the rendered text under ``benchmarks/results/`` so the
paper-vs-measured comparison survives the run.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.experiments import ProtocolConfig, run_study
from repro.synth import SynthesisConfig, default_cohort, synthesize_recording

#: Paper values of Tables II-IV (correlation per subject/position),
#: used for side-by-side rendering in the correlation bench.
PAPER_CORRELATIONS = {
    1: {1: 0.9081, 2: 0.9471, 3: 0.9827, 4: 0.8451, 5: 0.9251},
    2: {1: 0.9747, 2: 0.9497, 3: 0.9938, 4: 0.9033, 5: 0.8461},
    3: {1: 0.9737, 2: 0.9377, 3: 0.9908, 4: 0.8531, 5: 0.6919},
}


@pytest.fixture(scope="session")
def study():
    """The complete simulated protocol (paper-sized)."""
    return run_study(config=ProtocolConfig())


@pytest.fixture(scope="session")
def cohort():
    """The five-subject cohort."""
    return default_cohort()


@pytest.fixture(scope="session")
def results_dir() -> Path:
    """Directory collecting the rendered artefacts."""
    path = Path(__file__).parent / "results"
    path.mkdir(exist_ok=True)
    return path


@pytest.fixture(scope="session")
def thoracic_recording(cohort):
    """A reference recording reused by the algorithm benches."""
    return synthesize_recording(cohort[1], "thoracic", 1,
                                SynthesisConfig(duration_s=30.0))


def save_artifact(results_dir: Path, name: str, text: str) -> None:
    """Persist a rendered table/figure and echo it (visible with -s)."""
    (results_dir / f"{name}.txt").write_text(text + "\n")
    print(f"\n{text}\n")
