"""Figs 7a-c: device bioimpedance per position pair (F7).

Paper: the device's mean Z0 shows the same rise-to-10-kHz-then-fall
shape in every arm position; the figure plots positions pairwise
(1 & 2, 1 & 3, 2 & 3).  Shape targets: the peak at 10 kHz per position
and the position ordering Z(2) > Z(3) > Z(1).
"""

import numpy as np
from conftest import save_artifact

from repro.experiments import render_mean_z_series

PAIRS = {"fig7a": (1, 2), "fig7b": (1, 3), "fig7c": (2, 3)}


def test_fig7_device_bioimpedance(benchmark, study, results_dir):
    def derive():
        return {pos: study.device_mean_z(pos) for pos in (1, 2, 3)}

    by_position = benchmark(derive)

    blocks = []
    for name, (first, second) in PAIRS.items():
        for position in (first, second):
            blocks.append(render_mean_z_series(
                by_position[position],
                f"Fig {name[3:]}: device mean Z0 (ohm), "
                f"Position {position}"))
    save_artifact(results_dir, "fig7_device_z", "\n\n".join(blocks))

    for position, series in by_position.items():
        means = {freq: float(np.mean(values))
                 for freq, values in series.items()}
        assert means[10_000.0] > means[2_000.0], position
        assert means[10_000.0] > means[50_000.0] > means[100_000.0], \
            position
    overall = {pos: np.mean([np.mean(v) for v in series.values()])
               for pos, series in by_position.items()}
    assert overall[2] > overall[3] > overall[1]
