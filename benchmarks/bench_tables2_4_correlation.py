"""Tables II-IV: device-vs-thoracic correlation per position (T2-T4).

Paper: per-subject Pearson correlation of the touch signal against the
thoracic reference — Position 1 0.85-0.98, Position 2 0.85-0.99,
Position 3 0.69-0.99 with the lowest overall correlation; subject 3
best everywhere.  Shape targets: same range, same ordering structure.
"""

import numpy as np
from conftest import PAPER_CORRELATIONS, save_artifact

from repro.experiments import format_table


def _render(study, position):
    measured = study.correlation_table(position)
    paper = PAPER_CORRELATIONS[position]
    rows = [[f"Subject {sid}", f"{measured[sid]:.4f}",
             f"{paper[sid]:.4f}"] for sid in sorted(measured)]
    number = {1: "II", 2: "III", 3: "IV"}[position]
    return measured, format_table(
        ["Subjects", "measured r", "paper r"], rows,
        title=(f"TABLE {number}: Correlation Position {position} vs "
               f"thoracic bioimpedance"))


def test_tables_2_to_4(benchmark, study, results_dir):
    def derive():
        return {pos: study.correlation_table(pos) for pos in (1, 2, 3)}

    tables = benchmark(derive)

    blocks = []
    for position in (1, 2, 3):
        _, text = _render(study, position)
        blocks.append(text)
    save_artifact(results_dir, "tables2_4_correlation",
                  "\n\n".join(blocks))

    values = np.array([v for t in tables.values() for v in t.values()])
    # Range matches the paper's spread.
    assert values.min() > 0.60
    assert values.max() < 1.0
    assert values.mean() > 0.80           # "highly correlated (> 80 %)"
    # Position 3 is the weakest posture overall.
    means = {pos: np.mean(list(t.values())) for pos, t in tables.items()}
    assert means[3] == min(means.values())
    # Subject 3 correlates best in every position.
    for table in tables.values():
        assert table[3] == max(table.values())
    # Subject 5's arms-down collapse (the paper's 0.69 outlier).
    assert tables[3][5] == min(tables[3].values())
    assert tables[3][5] < 0.85
