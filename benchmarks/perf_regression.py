"""Perf-regression harness: throughput trajectory points and gating.

Measures, for a synthetic cohort, recordings/sec of

* the *filtering kernel layer* of one recording (every SOS/FIR
  application the chain performs) with the scalar reference kernels
  vs the vectorized ones — the headline speedup of the vectorized
  DSP layer;
* the *end-to-end pipeline* under both kernel backends;
* the *batch executor* serially, over threads and over processes.

Two entry points:

* ``python benchmarks/perf_regression.py [--quick] --output out.json``
  measures and writes a summary (``--write-baseline`` additionally
  refreshes the committed trajectory file, e.g. ``BENCH_PR2.json``);
* ``... --baseline BENCH_PR2.json`` compares the fresh measurement
  against the committed trajectory point and exits non-zero when any
  gated recordings/sec figure regressed more than ``--tolerance``
  (default 30 %) — the CI perf job.

The pytest bench ``bench_batch_throughput.py`` imports the measurement
helpers from here so both views can never drift apart.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:     # standalone invocation
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core import (                                   # noqa: E402
    BeatToBeatPipeline,
    FilterDesignCache,
    PipelineConfig,
    process_batch,
)
from repro.dsp import fir as _fir                          # noqa: E402
from repro.dsp import iir as _iir                          # noqa: E402
from repro.icg.preprocessing import icg_from_impedance     # noqa: E402
from repro.synth import (                                  # noqa: E402
    SynthesisConfig,
    default_cohort,
    synthesize_recording,
)

#: Keys (dotted paths into the summary) gated by the regression check.
GATED_METRICS = (
    "kernels.vectorized_rec_per_s",
    "pipeline.vectorized_rec_per_s",
    "batch.threads_rec_per_s",
    "batch.process_rec_per_s",
)

DEFAULT_TOLERANCE = 0.30


def cohort_recordings(quick: bool = False):
    """The bench cohort: device + thoracic per subject.

    Full mode uses all five subjects at 20 s; quick mode (CI) three
    subjects at 8 s.
    """
    subjects = default_cohort()
    if quick:
        subjects = subjects[:3]
        duration = 8.0
    else:
        duration = 20.0
    config = SynthesisConfig(duration_s=duration)
    recordings = [
        synthesize_recording(subject, setup, 1, config)
        for subject in subjects
        for setup in ("device", "thoracic")
    ]
    return recordings, duration


def _best_of(fn, repeats: int = 3) -> float:
    """Best wall-clock seconds over ``repeats`` runs (noise floor)."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def filter_workload(recording, cache: FilterDesignCache,
                    config: PipelineConfig):
    """All filter applications one recording triggers, as a thunk.

    This is the kernel layer in isolation: the ICG conditioning chain
    (zero-phase low-/high-pass Butterworth), the zero-phase ECG FIR,
    the Pan-Tompkins band-pass and the MWI convolution — with designs
    pre-warmed so only *application* cost is measured.
    """
    fs = float(recording.fs)
    ecg = recording.channel("ecg")
    z = recording.channel("z")
    taps = cache.ecg_fir_taps(fs, config.ecg)
    lowpass = cache.icg_lowpass_sos(fs, config.icg)
    highpass = cache.icg_highpass_sos(fs, config.icg)
    qrs_sos = cache.pan_tompkins_sos(fs, config.pan_tompkins)
    mwi = cache.mwi_kernel(fs, config.pan_tompkins)

    def run():
        icg_from_impedance(z, fs, config.icg, lowpass_sos=lowpass,
                           highpass_sos=highpass)
        bandpassed = _fir.filtfilt_fir(taps, ecg)
        qrs = _iir.sosfilt(qrs_sos, bandpassed)
        _fir.apply_fir(mwi, qrs ** 2)

    return run


def measure(quick: bool = False, n_jobs: int = 4,
            include_batch: bool = True) -> dict:
    """One trajectory point: kernel, pipeline and batch throughput.

    ``include_batch=False`` skips the (comparatively slow) executor
    measurements — the pytest bench takes its own batch timings and
    splices them in rather than running the cohort twice.
    """
    recordings, duration = cohort_recordings(quick)
    n = len(recordings)
    config = PipelineConfig()
    cache = FilterDesignCache()
    probe = recordings[0]

    # -- kernel layer: scalar reference vs vectorized -------------------
    kernel_run = filter_workload(probe, cache, config)
    with _iir.use_sosfilt_backend("reference"):
        scalar_kernel_s = _best_of(kernel_run)
    vector_kernel_s = _best_of(kernel_run)

    # -- end-to-end pipeline under both kernel backends -----------------
    pipeline = BeatToBeatPipeline(probe.fs, config, cache=cache)
    single = lambda: pipeline.process_recording(probe)  # noqa: E731
    with _iir.use_sosfilt_backend("reference"):
        scalar_pipe_s = _best_of(single)
    vector_pipe_s = _best_of(single)

    summary = {
        "mode": "quick" if quick else "full",
        "n_recordings": n,
        "duration_s_each": duration,
        "n_jobs": n_jobs,
        "cpu_count": os.cpu_count(),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "kernels": {
            "scalar_rec_per_s": 1.0 / scalar_kernel_s,
            "vectorized_rec_per_s": 1.0 / vector_kernel_s,
            "speedup": scalar_kernel_s / vector_kernel_s,
        },
        "pipeline": {
            "scalar_rec_per_s": 1.0 / scalar_pipe_s,
            "vectorized_rec_per_s": 1.0 / vector_pipe_s,
            "speedup": scalar_pipe_s / vector_pipe_s,
        },
    }

    if include_batch:
        # -- batch executor: serial vs threads vs processes -------------
        serial_s = _best_of(
            lambda: process_batch(recordings, config, n_jobs=1,
                                  cache=cache),
            repeats=2)
        threads_s = _best_of(
            lambda: process_batch(recordings, config, n_jobs=n_jobs,
                                  cache=cache),
            repeats=2)
        process_s = _best_of(
            lambda: process_batch(recordings, config, n_jobs=n_jobs,
                                  backend="process"),
            repeats=2)
        summary["batch"] = {
            "serial_rec_per_s": n / serial_s,
            "threads_rec_per_s": n / threads_s,
            "process_rec_per_s": n / process_s,
            "thread_scaling": serial_s / threads_s,
            "process_scaling": serial_s / process_s,
        }

    summary["cache"] = cache.stats()
    return summary


def _lookup(summary: dict, dotted: str):
    value = summary
    for part in dotted.split("."):
        if not isinstance(value, dict) or part not in value:
            return None
        value = value[part]
    return value


def compare(current: dict, baseline: dict,
            tolerance: float = DEFAULT_TOLERANCE) -> list:
    """Gated metrics that regressed beyond ``tolerance``.

    Returns ``(metric, current, baseline)`` triples; empty means pass.
    Metrics missing from either side are skipped (a new baseline field
    must not fail every older checkout).
    """
    regressions = []
    for metric in GATED_METRICS:
        now = _lookup(current, metric)
        then = _lookup(baseline, metric)
        if now is None or then is None or then <= 0:
            continue
        if now < (1.0 - tolerance) * then:
            regressions.append((metric, now, then))
    return regressions


def render(summary: dict) -> str:
    """Human-readable view of one trajectory point."""
    k, p, b = summary["kernels"], summary["pipeline"], summary["batch"]
    lines = [
        f"Perf trajectory ({summary['mode']}: {summary['n_recordings']} "
        f"x {summary['duration_s_each']:.0f} s recordings, "
        f"n_jobs={summary['n_jobs']}, cpus={summary['cpu_count']})",
        f"  filter kernels : scalar {k['scalar_rec_per_s']:8.1f} rec/s"
        f" | vectorized {k['vectorized_rec_per_s']:8.1f} rec/s"
        f" | speedup {k['speedup']:5.1f}x",
        f"  full pipeline  : scalar {p['scalar_rec_per_s']:8.1f} rec/s"
        f" | vectorized {p['vectorized_rec_per_s']:8.1f} rec/s"
        f" | speedup {p['speedup']:5.1f}x",
        f"  batch executor : serial {b['serial_rec_per_s']:8.1f} rec/s"
        f" | threads {b['threads_rec_per_s']:8.1f} rec/s"
        f" | processes {b['process_rec_per_s']:8.1f} rec/s",
    ]
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="measure batch/kernel throughput and gate "
                    "regressions against a committed baseline")
    parser.add_argument("--quick", action="store_true",
                        help="reduced cohort (CI mode)")
    parser.add_argument("--jobs", type=int, default=4,
                        help="workers for the batch measurements")
    parser.add_argument("--baseline", type=Path, default=None,
                        help="committed trajectory JSON to gate against")
    parser.add_argument("--output", type=Path, default=None,
                        help="write the fresh summary here")
    parser.add_argument("--write-baseline", type=Path, default=None,
                        help="write/refresh a trajectory file with "
                             "both quick and full summaries")
    parser.add_argument("--tolerance", type=float,
                        default=DEFAULT_TOLERANCE,
                        help="allowed fractional rec/s regression")
    args = parser.parse_args(argv)

    if args.write_baseline:
        point = {"pr": 2,
                 "quick": measure(quick=True, n_jobs=args.jobs),
                 "full": measure(quick=False, n_jobs=args.jobs)}
        args.write_baseline.write_text(json.dumps(point, indent=2) + "\n")
        print(render(point["full"]))
        print(f"baseline written to {args.write_baseline}")
        return 0

    summary = measure(quick=args.quick, n_jobs=args.jobs)
    print(render(summary))
    if args.output:
        args.output.write_text(json.dumps(summary, indent=2) + "\n")
    if args.baseline is None:
        return 0

    baseline = json.loads(args.baseline.read_text())
    # Trajectory files hold both modes; bare summaries are compared
    # directly.
    baseline = baseline.get(summary["mode"], baseline)
    regressions = compare(summary, baseline, tolerance=args.tolerance)
    if regressions:
        print(f"\nREGRESSION (> {args.tolerance * 100:.0f} % below "
              f"baseline {args.baseline}):")
        for metric, now, then in regressions:
            print(f"  {metric}: {now:.1f} rec/s vs baseline "
                  f"{then:.1f} rec/s")
        return 1
    print(f"\nwithin {args.tolerance * 100:.0f} % of baseline "
          f"{args.baseline}: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
