"""Perf-regression harness: throughput trajectory points and gating.

Measures, for a synthetic cohort, recordings/sec of

* the *filtering kernel layer* of one recording (every SOS/FIR
  application the chain performs) with the scalar reference kernels
  vs the vectorized ones — the headline speedup of the vectorized
  DSP layer;
* the *end-to-end pipeline* under the full-scalar chain (reference
  sosfilt + reference per-beat point detection) vs the full-vectorized
  one (blocked SOS scan + beat-batched landmark kernels);
* the *batch executor* serially, over threads and over processes —
  the process figures ride the shared-memory data plane, whose
  descriptor-vs-bytes IPC accounting lands in the summary
  (``batch.ipc``) and the rendered table;
* the *streaming ingest path*: an 8-device simulated fleet through
  the bounded work queue and the streaming executor, against the
  serial batch over the same recordings (the streaming layer's
  acceptance figure — it must sustain at least serial throughput
  while the queue stays inside its backpressure bound);
* the *cohort-batched tier*: ``process_cohort`` vs per-recording
  dispatch at 10^2 and 10^3 recordings (quick) plus 10^4 (full) —
  the scaling curve of the leading-axis kernel tier.  Two absolute
  floors gate it: ``speedup_1000 >= 2`` (the tier's acceptance bar
  against serial dispatch on the same host) and
  ``curve_ratio >= 0.8`` (rec/s must not *decrease* with cohort
  size beyond noise — a collapsing curve means slab batching
  stopped amortising).

The whole quick run is additionally held to a wall-clock budget
(``--max-seconds``, default ``QUICK_BUDGET_S`` in quick mode): a CI
bench that silently grows unboundedly is itself a perf regression,
so blowing the budget fails the job loudly.

Two entry points:

* ``python benchmarks/perf_regression.py [--quick] --output out.json``
  measures and writes a summary (``--write-baseline`` additionally
  refreshes the committed trajectory file, e.g. ``BENCH_PR3.json``);
* ``... --baseline BENCH_PR3.json [--previous prev.json]`` compares
  the fresh measurement against a reference point and exits non-zero
  when any gated recordings/sec figure regressed more than
  ``--tolerance`` (default 30 %) — the CI perf job.  When
  ``--previous`` names a readable artifact (the prior successful run
  on the *same runner class*, restored from the CI cache), the gate
  checks it *in addition to* the committed cross-machine
  ``--baseline``: the former makes the comparison apples-to-apples on
  the same hardware, the latter remains the absolute floor so
  repeated sub-tolerance regressions cannot ratchet the reference
  down unchecked.

The pytest bench ``bench_batch_throughput.py`` imports the measurement
helpers from here so both views can never drift apart.

Timing estimators: full mode keeps best-of-N (a noise floor on
dedicated hardware); quick mode — the CI gate on contended 1-2 vCPU
runners — first runs a :func:`calibration_spin` (bring the governor/
BLAS/caches to steady state) and then estimates with
:func:`timed_seconds`, a median-of-odd-N that a single 2x-contended
sample cannot move at all (unit-tested in
``tests/test_perf_estimator.py``).
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:     # standalone invocation
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core import (                                   # noqa: E402
    BeatToBeatPipeline,
    FilterDesignCache,
    PipelineConfig,
    process_batch,
    process_cohort,
    shutdown_persistent_pool,
    use_cohort_backend,
)
from repro.core.executor import last_ipc_stats             # noqa: E402
from repro.dsp import calibration as _calibration          # noqa: E402
from repro.dsp import fir as _fir                          # noqa: E402
from repro.dsp import iir as _iir                          # noqa: E402
from repro.icg.points import use_point_backend             # noqa: E402
from repro.icg.preprocessing import icg_from_impedance     # noqa: E402
from repro.ingest import (                                 # noqa: E402
    DeviceFleet,
    FleetConfig,
    StreamingExecutor,
)
from repro.synth import (                                  # noqa: E402
    SynthesisConfig,
    default_cohort,
    synthesize_recording,
)

#: Keys (dotted paths into the summary) gated by the regression check.
GATED_METRICS = (
    "kernels.vectorized_rec_per_s",
    "pipeline.vectorized_rec_per_s",
    "batch.threads_rec_per_s",
    "batch.process_rec_per_s",
    "streaming.rec_per_s",
    "cohort.rec_per_s_1000",
)

#: Absolute floors: dotted path -> ``(minimum, multi_cpu_only)``,
#: checked against the fresh summary itself — no baseline involved, so
#: a regression can never ratchet past them.
#:
#: ``process_scaling`` is the shared-memory backend's acceptance bar:
#: the PR 3 process backend ran at 0.46x of serial because every job
#: round-tripped pickled float64 arrays, and that kind of IPC
#: regression must never merge silently again.  A process pool can
#: only beat serial given more than one CPU, so that floor carries
#: ``multi_cpu_only=True`` (``floor_violations`` skips it on
#: single-core runners, where any pool is pure overhead by
#: construction; the value is still recorded for the trajectory).
#:
#: The cohort floors hold on *any* host — the tier's win comes from
#: amortising python-level dispatch into leading-axis kernels, not
#: from extra cores: ``speedup_1000`` is the tier's acceptance bar
#: (>= 2x over per-recording dispatch at 10^3 recordings) and
#: ``curve_ratio`` asserts the scaling curve does not decrease from
#: 10^2 to 10^3 beyond a noise allowance.
GATED_FLOORS = {
    "batch.process_scaling": (1.0, True),
    "cohort.speedup_1000": (2.0, False),
    "cohort.curve_ratio": (0.8, False),
    # The storage lifecycle's disk bound: after journal-gc of the
    # 8-device 3-round fleet, the journal may hold at most
    # STORAGE_DISK_BOUND x the bytes of its still-live sessions.
    # The metric is (bound x live_bytes) / bytes_after, so the floor
    # reads like the others: <= 1.0 means the bound was exceeded.
    "storage.disk_bound": (1.0, False),
    # The zero-copy ingest plane's acceptance bar: the durable
    # (fsync=True) journal-bound hot path — arena descriptors, iovec
    # codec, group commit — must beat object mode (plain chunks,
    # materializing codec, strict per-record fsync) by >= 1.5x.  The
    # win needs the group writer's fsync to overlap the producer, so
    # like process_scaling it only holds with more than one CPU.
    "ingest.zero_copy": (1.5, True),
}

DEFAULT_TOLERANCE = 0.30

#: Default wall-clock budget for the quick (CI) bench, seconds.  The
#: quick gate exists to run on every PR; if it creeps past this, the
#: bench itself has regressed and the job fails loudly (override with
#: ``--max-seconds``).
QUICK_BUDGET_S = 90.0

#: Minimum seconds of serial work behind the process_scaling figure —
#: the cohort is replicated until a fan-out amortizes pool start-up.
SCALING_BATCH_MIN_S = 0.75

#: The streaming acceptance fleet: 8 concurrent devices; full mode
#: streams the 10-minute fleet (8 x 75 s of signal), quick mode a
#: shorter one for CI.
STREAM_DEVICES = 8
STREAM_DURATION_FULL_S = 75.0
STREAM_DURATION_QUICK_S = 12.0


def cohort_recordings(quick: bool = False):
    """The bench cohort: device + thoracic per subject.

    Full mode uses all five subjects at 20 s; quick mode (CI) three
    subjects at 12 s.  (Quick recordings were 8 s through PR 4; with
    the post-filter half now beat-batched, an 8 s probe measured
    mostly per-recording constants rather than per-beat throughput —
    12 s keeps CI fast while sitting on the same scaling curve as the
    full-mode 20 s sessions.)
    """
    subjects = default_cohort()
    if quick:
        subjects = subjects[:3]
        duration = 12.0
    else:
        duration = 20.0
    config = SynthesisConfig(duration_s=duration)
    recordings = [
        synthesize_recording(subject, setup, 1, config)
        for subject in subjects
        for setup in ("device", "thoracic")
    ]
    return recordings, duration


def _best_of(fn, repeats: int = 3) -> float:
    """Best wall-clock seconds over ``repeats`` runs (noise floor)."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def median_of(samples) -> float:
    """Median of an *odd* number of timing samples.

    Odd N makes the median an actual order statistic (no averaging of
    the middle pair), so a single wildly contended sample — the
    1-2 vCPU CI runner's signature failure mode — cannot move the
    estimate at all: up to (N-1)/2 outliers are discarded outright.
    Best-of-N, by contrast, needs only one *fast* fluke to flatter the
    baseline and one slow run to fail the gate.
    """
    samples = sorted(samples)
    if not samples or len(samples) % 2 == 0:
        raise ValueError(
            f"median_of needs an odd number of samples, got "
            f"{len(samples)}")
    return samples[len(samples) // 2]


def timed_seconds(fn, repeats: int = 5,
                  clock=time.perf_counter) -> float:
    """Median-of-odd-N wall-clock seconds of ``fn()``.

    Even ``repeats`` are rounded up to the next odd count (the
    estimator requires a true middle sample).  ``clock`` is injectable
    so the outlier-tolerance contract is unit-testable without real
    timers.
    """
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    if repeats % 2 == 0:
        repeats += 1
    samples = []
    for _ in range(repeats):
        start = clock()
        fn()
        samples.append(clock() - start)
    return median_of(samples)


def calibration_spin(min_s: float = 0.15) -> int:
    """Burn ``min_s`` of CPU on vectorized busywork before sampling.

    Cold CI runners start measurements with the CPU governor parked,
    BLAS threads unspawned and caches cold — the first timing samples
    then read slow through no fault of the code.  A fixed spin brings
    the host to its steady state before the first sample; returns the
    number of spin iterations (so a caller can assert work happened).
    """
    deadline = time.perf_counter() + min_s
    x = np.full(4096, 1.0)
    spins = 0
    while time.perf_counter() < deadline:
        x = np.sqrt(x * x + 1e-9)
        spins += 1
    return spins


def filter_workload(recording, cache: FilterDesignCache,
                    config: PipelineConfig):
    """All filter applications one recording triggers, as a thunk.

    This is the kernel layer in isolation: the ICG conditioning chain
    (zero-phase low-/high-pass Butterworth), the zero-phase ECG FIR,
    the Pan-Tompkins band-pass and the MWI convolution — with designs
    pre-warmed so only *application* cost is measured.
    """
    fs = float(recording.fs)
    ecg = recording.channel("ecg")
    z = recording.channel("z")
    taps = cache.ecg_fir_taps(fs, config.ecg)
    lowpass = cache.icg_lowpass_sos(fs, config.icg)
    highpass = cache.icg_highpass_sos(fs, config.icg)
    qrs_sos = cache.pan_tompkins_sos(fs, config.pan_tompkins)
    mwi = cache.mwi_kernel(fs, config.pan_tompkins)

    def run():
        icg_from_impedance(z, fs, config.icg, lowpass_sos=lowpass,
                           highpass_sos=highpass)
        bandpassed = _fir.filtfilt_fir(taps, ecg)
        qrs = _iir.sosfilt(qrs_sos, bandpassed)
        _fir.apply_fir(mwi, qrs ** 2)

    return run


def measure_streaming(quick: bool = False,
                      n_devices: int = STREAM_DEVICES,
                      n_workers: int = 4) -> dict:
    """Streaming-ingest throughput: the N-device fleet vs the serial
    batch over the same chunk stream.

    Full mode streams 10 minutes of simulated fleet recording
    (8 devices x 75 s); quick mode shrinks the sessions for CI.
    Synthesis is memoized in the fleet, so every path measures pure
    ingest + analysis throughput.  Two serial baselines are reported:

    * ``serial_ingest_rec_per_s`` — the architecture-equivalent
      alternative: drain the same chunk stream, assemble sessions,
      then ``process_batch(n_jobs=1)`` (a batch service consuming the
      device wire format pays assembly too).  The headline
      ``ratio_vs_serial`` gates on this one: >= 1 means the
      work-queue architecture costs nothing at equal deliverables.
    * ``serial_batch_rec_per_s`` — plain ``process_batch`` over
      pre-materialized recordings (no chunk transport at all), with
      ``ratio_vs_batch`` alongside; on multi-core hosts the overlap
      of finalize workers with the producer pushes this past 1 as
      well, on a single core it bounds the transport overhead.

    ``preview_rec_per_s`` adds the live causal per-chunk conditioning
    view — extra work the batch path does not offer.  The queue
    counters record peak depth/bytes and how often the producer hit
    backpressure (``put`` blocks at the bound, so the peak can never
    exceed it; ``blocked_puts`` shows the bound actually engaging).
    Finalize workers are clamped to 1 on single-CPU hosts (extra
    threads only add switching there).
    """
    # The streaming/serial delta is ~1 %; garbage left over from the
    # kernel/batch sections must not tilt the comparison.
    import gc
    gc.collect()
    if quick:
        calibration_spin()
    timer = timed_seconds if quick else _best_of
    duration = STREAM_DURATION_QUICK_S if quick else STREAM_DURATION_FULL_S
    fleet = DeviceFleet(FleetConfig(n_devices=n_devices,
                                    duration_s=duration,
                                    chunk_s=4.0, seed=2016))
    recordings = [fleet.synthesize(device) for device in fleet.devices]
    cache = FilterDesignCache()
    if (os.cpu_count() or 1) == 1:
        n_workers = 1
    serial_batch_s = timer(
        lambda: process_batch(recordings, n_jobs=1, cache=cache),
        repeats=3)
    # Streaming vs serial-ingest differ by low single-digit percent;
    # a deeper best-of floor keeps container noise out of the ratio.
    stream_repeats = 5

    def serial_ingest():
        from repro.ingest import SessionAssembler

        assembler = SessionAssembler()
        assembled = []
        for chunk in fleet:
            done = assembler.add(chunk)
            if done is not None:
                assembled.append(done)
        return process_batch(assembled, n_jobs=1, cache=cache)

    max_chunks = 64
    # Headline figure: the deliverable-equivalent configuration (both
    # paths turn the chunk stream into per-session PipelineResults),
    # so the ratio isolates the queue architecture's cost/benefit.
    # The two sides are measured interleaved, pairwise, so slow drift
    # (thermals, container neighbours) cancels out of the ratio
    # instead of penalising whichever side runs later.
    executor = StreamingExecutor(n_workers=n_workers,
                                 max_chunks=max_chunks, cache=cache,
                                 preview=False)
    serial_times, stream_times = [], []
    for _ in range(stream_repeats):
        start = time.perf_counter()
        serial_ingest()
        serial_times.append(time.perf_counter() - start)
        start = time.perf_counter()
        executor.run(fleet)
        stream_times.append(time.perf_counter() - start)
    # Quick mode takes the median of the interleaved samples (one
    # contended repeat cannot tilt either side); full mode keeps the
    # best-of noise floor.
    if quick:
        serial_ingest_s = median_of(serial_times)
        stream_s = median_of(stream_times)
    else:
        serial_ingest_s = min(serial_times)
        stream_s = min(stream_times)
    stats = executor.last_queue_stats.as_dict()
    # The live per-chunk causal view is extra work the batch path
    # simply does not offer; its throughput is reported alongside.
    with_preview = StreamingExecutor(n_workers=n_workers,
                                     max_chunks=max_chunks,
                                     cache=cache, preview=True)
    preview_s = timer(lambda: with_preview.run(fleet), repeats=2)
    return {
        "n_devices": n_devices,
        "duration_s_each": duration,
        "total_recording_s": fleet.total_recording_s,
        "n_workers": n_workers,
        "max_chunks": max_chunks,
        "rec_per_s": n_devices / stream_s,
        "preview_rec_per_s": n_devices / preview_s,
        "serial_ingest_rec_per_s": n_devices / serial_ingest_s,
        "serial_batch_rec_per_s": n_devices / serial_batch_s,
        "ratio_vs_serial": serial_ingest_s / stream_s,
        "ratio_vs_batch": serial_batch_s / stream_s,
        "queue": stats,
        # blocked_puts > 0 is the falsifiable evidence that the
        # producer outran the consumers and backpressure engaged
        # (peak_depth <= max_chunks holds by construction — put()
        # blocks at the bound).
        "backpressure_engaged": stats["blocked_puts"] > 0,
    }


#: Journal disk bound after GC, as a multiple of live-session bytes
#: (compaction is byte-copying, so the honest overhead is segment
#: granularity — 25 % covers it with margin).
STORAGE_DISK_BOUND = 1.25

#: The storage-lifecycle fleet: the acceptance shape (8 devices x 3
#: rounds) with churn and no rejoin, so dropped sessions stay live in
#: the journal and the post-GC bound has a non-trivial denominator.
STORAGE_FLEET = dict(n_devices=8, duration_s=8.0, chunk_s=2.0,
                     seed=42, n_rounds=3, round_gap_s=2.0,
                     dropout=0.25, rejoin=False)


def measure_storage(quick: bool = False) -> dict:
    """The storage lifecycle's disk-bound figure.

    Journals the 8-device 3-round churning fleet, garbage-collects,
    and reports the journal's byte trajectory: ``bytes_before`` (the
    whole run), ``live_bytes`` (records of sessions still awaiting
    their trailer — the only replay obligation left) and
    ``bytes_after`` GC.  The gated ``disk_bound`` metric is
    ``(STORAGE_DISK_BOUND x live_bytes) / bytes_after`` — above 1.0
    the journal is bounded by its live traffic, at or below 1.0 GC
    stopped reclaiming and the disk grows with *total* traffic again.
    """
    import shutil
    import tempfile

    from repro.ingest import ChunkJournal, scan_journal
    from repro.ingest.gc import journal_bytes, journal_gc

    directory = Path(tempfile.mkdtemp(prefix="repro-bench-journal-"))
    try:
        fleet = DeviceFleet(FleetConfig(**STORAGE_FLEET))
        with ChunkJournal(directory) as journal:
            executor = StreamingExecutor(n_workers=1, preview=False,
                                         journal=journal)
            start = time.perf_counter()
            results = executor.run(fleet)
            run_s = time.perf_counter() - start
        scan = scan_journal(directory)
        # Live = every record of a session without a journaled trailer.
        from repro.io import scan_segment
        live_bytes = sum(
            entry.length
            for path in scan.segments
            for entry in scan_segment(path).entries
            if entry.session_id in scan.open)
        bytes_before = journal_bytes(directory)
        gc_start = time.perf_counter()
        report = journal_gc(directory)
        gc_s = time.perf_counter() - gc_start
        bytes_after = journal_bytes(directory)
        return {
            "n_sessions": len(results) + len(scan.open),
            "n_live_sessions": len(scan.open),
            "bytes_before": int(bytes_before),
            "live_bytes": int(live_bytes),
            "bytes_after_gc": int(bytes_after),
            "records_dropped": report.records_dropped,
            "records_kept": report.records_kept,
            "gc_s": gc_s,
            "ingest_s": run_s,
            "bound_multiple": STORAGE_DISK_BOUND,
            "disk_bound": (STORAGE_DISK_BOUND * live_bytes
                           / max(bytes_after, 1)),
        }
    finally:
        shutil.rmtree(directory, ignore_errors=True)


#: The zero-copy ingest bench fleet: 8 devices at 2 kHz — enough
#: payload (~3 MB over 48 records) that transport and fsync strategy,
#: not synthesis or dispatch, dominate the journal-bound loop.
INGEST_FLEET = dict(n_devices=8, duration_s=12.0, chunk_s=2.0,
                    seed=2016, fs_choices=(2000.0,))


def measure_ingest(quick: bool = False) -> dict:
    """The zero-copy ingest plane vs object mode, journal-bound.

    Times the durable ingest hot path as a direct append loop (no
    queue-thread ping-pong — at this payload scale that would measure
    thread wake-ups, not transport): *object mode* is the reference
    configuration (plain chunks, strict durability, materializing
    bytes codec, one fsync per record); *zero-copy* is arena publish +
    descriptor views + the iovec codec + group commit (one writev and
    one fsync per flush window).  Both journal bit-identical bytes.

    The gated ``zero_copy`` ratio divides the two durable (fsync=True)
    timings.  fsync=False figures are recorded for transparency but
    not gated — without durability the object path's small buffered
    writes are nearly free and the comparison measures memcpy, not
    the ingest plane.  A final instrumented zero-copy run pins the
    contract numbers: ``bytes_copied`` must be zero and every record
    must travel as a descriptor.
    """
    import shutil
    import tempfile

    from repro.ingest import (
        ChunkArenaRing,
        ChunkJournal,
        chunk_from_descriptor,
        ingest_stats,
        reset_ingest_stats,
    )

    fleet = DeviceFleet(FleetConfig(**INGEST_FLEET))
    chunks = list(fleet)
    payload = sum(sum(d.nbytes for d in c.signals.values())
                  + sum(d.nbytes for d in c.annotations.values())
                  for c in chunks)
    repeats = 3 if quick else 7

    def object_mode(fsync: bool) -> float:
        directory = Path(tempfile.mkdtemp(prefix="repro-bench-ingest-"))
        try:
            start = time.perf_counter()
            with ChunkJournal(directory / "j", durability="strict",
                              codec="bytes", fsync=fsync) as journal:
                for chunk in chunks:
                    journal.append(chunk)
            return time.perf_counter() - start
        finally:
            shutil.rmtree(directory, ignore_errors=True)

    def zero_copy(fsync: bool) -> float:
        directory = Path(tempfile.mkdtemp(prefix="repro-bench-ingest-"))
        try:
            start = time.perf_counter()
            with ChunkArenaRing(size_hint=fleet.session_nbytes) as ring, \
                    ChunkJournal(directory / "j", durability="group",
                                 codec="iov", fsync=fsync) as journal:
                for chunk in chunks:
                    journal.append(
                        chunk_from_descriptor(ring.publish(chunk), ring))
            return time.perf_counter() - start
        finally:
            shutil.rmtree(directory, ignore_errors=True)

    if quick:
        calibration_spin()
    # Interleave the two sides so page-cache and scheduler drift hit
    # both equally; best-of keeps one stolen timeslice from deciding
    # the gate.
    object_s, zero_s = [], []
    for _ in range(repeats):
        object_s.append(object_mode(True))
        zero_s.append(zero_copy(True))
    object_fsync_s = min(object_s)
    zero_fsync_s = min(zero_s)
    object_nofsync_s = min(object_mode(False) for _ in range(repeats))
    zero_nofsync_s = min(zero_copy(False) for _ in range(repeats))
    # One instrumented durable run for the contract counters.
    reset_ingest_stats()
    zero_copy(True)
    stats = ingest_stats()
    n = len(chunks)
    return {
        "n_devices": INGEST_FLEET["n_devices"],
        "n_records": n,
        "payload_bytes": int(payload),
        "object_rec_per_s": n / object_fsync_s,
        "zero_copy_rec_per_s": n / zero_fsync_s,
        "object_mb_per_s": payload / object_fsync_s / 1e6,
        "zero_copy_mb_per_s": payload / zero_fsync_s / 1e6,
        "object_nofsync_rec_per_s": n / object_nofsync_s,
        "zero_copy_nofsync_rec_per_s": n / zero_nofsync_s,
        "bytes_copied": int(stats.bytes_copied),
        "descriptor_chunks": int(stats.descriptor_chunks),
        "group_fsyncs": int(stats.group_fsyncs),
        "group_flushes": int(stats.group_flushes),
        "zero_copy": object_fsync_s / zero_fsync_s,
    }


#: Cohort-tier scaling points: recordings per measurement.
COHORT_SIZES_QUICK = (100, 1000)
COHORT_SIZES_FULL = (100, 1000, 10000)

#: Duration of each cohort-tier bench recording.  Short on purpose:
#: the tier's whole point is amortising per-recording overhead, which
#: short recordings maximise (long ones hide it inside kernel time).
COHORT_DURATION_S = 8.0


def measure_cohort(quick: bool = False) -> dict:
    """The cohort tier's scaling curve vs per-recording dispatch.

    A base pool of ten distinct recordings (five subjects x two
    setups, 8 s each) is tiled out to each scaling point — synthesis
    cost stays constant while the measured sweep grows, exactly how
    the executor's ``process_scaling`` workload is built.  Per point:
    per-recording dispatch (the ``"reference"`` cohort backend — the
    oracle the parity suite pins the tier against) and the batched
    tier, both over identical inputs and a shared warm design cache.

    The gated ratio (``speedup_1000``) divides two noisy timings, so
    both sides of the 10^3 point use the median-of-3 estimator; only
    the full-mode 10^4 serial run — whole tens of seconds — drops to
    a single sample (its ratio is recorded, not gated).
    """
    import gc
    gc.collect()
    if quick:
        calibration_spin()
    subjects = default_cohort()
    config = SynthesisConfig(duration_s=COHORT_DURATION_S)
    base = [
        synthesize_recording(subject, setup, 1, config)
        for subject in subjects
        for setup in ("device", "thoracic")
    ]
    sizes = COHORT_SIZES_QUICK if quick else COHORT_SIZES_FULL
    cache = FilterDesignCache()
    summary: dict = {
        "base_duration_s": COHORT_DURATION_S,
        "sizes": list(sizes),
    }
    for size in sizes:
        recordings = [base[i % len(base)] for i in range(size)]
        serial_s = timed_seconds(
            lambda: _run_cohort_reference(recordings, cache),
            repeats=3 if size <= 1000 else 1)
        cohort_s = timed_seconds(
            lambda: process_cohort(recordings, cache=cache),
            repeats=1 if size >= 10000 else 3)
        summary[f"serial_rec_per_s_{size}"] = size / serial_s
        summary[f"rec_per_s_{size}"] = size / cohort_s
        summary[f"speedup_{size}"] = serial_s / cohort_s
    # The scaling-curve gate: throughput at 10^3 over throughput at
    # 10^2.  >= 1 means batching keeps amortising as cohorts grow;
    # the floor allows 20 % measurement noise but catches a collapse.
    summary["curve_ratio"] = (summary["rec_per_s_1000"]
                              / summary["rec_per_s_100"])
    return summary


def _run_cohort_reference(recordings, cache) -> None:
    """Per-recording dispatch over ``recordings`` (the serial side)."""
    with use_cohort_backend("reference"):
        process_cohort(recordings, cache=cache)


def measure(quick: bool = False, n_jobs: int = 4,
            include_batch: bool = True,
            include_streaming: bool = True,
            include_cohort_tier: bool = True,
            include_storage: bool = True,
            include_ingest: bool = True,
            cohort=None) -> dict:
    """One trajectory point: kernel, pipeline, batch and streaming
    throughput.

    ``include_batch=False`` skips the (comparatively slow) executor
    measurements — the pytest bench takes its own batch timings and
    splices them in rather than running the cohort twice;
    ``include_streaming=False`` likewise skips the fleet measurement.
    ``cohort`` lets a caller that already synthesized the bench
    recordings pass them in as ``(recordings, duration_s)`` instead of
    paying synthesis again.
    """
    if cohort is not None:
        recordings, duration = cohort
        recordings = list(recordings)
    else:
        recordings, duration = cohort_recordings(quick)
    n = len(recordings)
    config = PipelineConfig()
    cache = FilterDesignCache()
    probe = recordings[0]

    # Quick mode (CI) runs on contended 1-2 vCPU runners where one
    # stolen timeslice can blow a best-of estimate past the gate
    # tolerance with no code change: spin the host to its steady state
    # first, then estimate with the outlier-immune median-of-odd-N.
    # Full mode (local hardware) keeps the best-of noise floor.
    if quick:
        calibration_spin()
    timer = timed_seconds if quick else _best_of

    # -- kernel layer: scalar reference vs vectorized -------------------
    kernel_run = filter_workload(probe, cache, config)
    with _iir.use_sosfilt_backend("reference"):
        scalar_kernel_s = timer(kernel_run)
    vector_kernel_s = timer(kernel_run)

    # -- end-to-end pipeline: full-scalar chain vs full-vectorized ------
    # "Scalar" pins every backend toggle to its per-sample/per-beat
    # reference (the original implementations); "vectorized" is the
    # production configuration (blocked SOS scan + beat-batched
    # landmark kernels).
    pipeline = BeatToBeatPipeline(probe.fs, config, cache=cache)
    single = lambda: pipeline.process_recording(probe)  # noqa: E731
    with _iir.use_sosfilt_backend("reference"), \
            use_point_backend("reference"):
        scalar_pipe_s = timer(single)
    vector_pipe_s = timer(single)

    summary = {
        "mode": "quick" if quick else "full",
        "n_recordings": n,
        "duration_s_each": duration,
        "n_jobs": n_jobs,
        "cpu_count": os.cpu_count(),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "kernels": {
            "scalar_rec_per_s": 1.0 / scalar_kernel_s,
            "vectorized_rec_per_s": 1.0 / vector_kernel_s,
            "speedup": scalar_kernel_s / vector_kernel_s,
        },
        "pipeline": {
            "scalar_rec_per_s": 1.0 / scalar_pipe_s,
            "vectorized_rec_per_s": 1.0 / vector_pipe_s,
            "speedup": scalar_pipe_s / vector_pipe_s,
        },
    }

    if include_batch:
        # -- batch executor: serial vs threads vs processes -------------
        serial_s = timer(
            lambda: process_batch(recordings, config, n_jobs=1,
                                  cache=cache),
            repeats=2)
        threads_s = timer(
            lambda: process_batch(recordings, config, n_jobs=n_jobs,
                                  cache=cache),
            repeats=2)
        # Cold vs warm fan-out: the first process_batch after a pool
        # shutdown pays worker spawn + per-worker warm-up; with the
        # persistent pool every later fan-out reuses the warm workers.
        # Single samples by design — cold start is a one-shot event,
        # and the cold/warm *gap* is the figure of interest.
        shutdown_persistent_pool()
        start = time.perf_counter()
        process_batch(recordings, config, n_jobs=n_jobs,
                      backend="process")
        process_cold_s = time.perf_counter() - start
        start = time.perf_counter()
        process_batch(recordings, config, n_jobs=n_jobs,
                      backend="process")
        process_warm_s = time.perf_counter() - start
        process_s = timer(
            lambda: process_batch(recordings, config, n_jobs=n_jobs,
                                  backend="process"),
            repeats=2)
        ipc = last_ipc_stats()

        # Scaling figure on a pool-amortizing workload: the cohort is
        # small enough that pool start-up would dominate any honest
        # parallelism measurement, so process_scaling replicates it
        # (identical recordings share all designs) until the fan-out
        # carries a few hundred milliseconds of work.
        replicas = max(1, int(np.ceil(SCALING_BATCH_MIN_S
                                      / max(serial_s, 1e-9))))
        scaled = recordings * replicas
        serial_scaled_s = timer(
            lambda: process_batch(scaled, config, n_jobs=1,
                                  cache=cache),
            repeats=2)
        process_scaled_s = timer(
            lambda: process_batch(scaled, config, n_jobs=n_jobs,
                                  backend="process"),
            repeats=2)
        summary["batch"] = {
            "serial_rec_per_s": n / serial_s,
            "threads_rec_per_s": n / threads_s,
            "process_rec_per_s": n / process_s,
            "thread_scaling": serial_s / threads_s,
            "process_scaling": serial_scaled_s / process_scaled_s,
            "process_scaling_n_recordings": len(scaled),
            "process_cold_s": process_cold_s,
            "process_warm_s": process_warm_s,
            "warm_pool_speedup": process_cold_s / process_warm_s,
            "ipc": None if ipc is None else {
                "n_items": ipc.n_items,
                "n_descriptors": ipc.n_descriptors,
                "payload_bytes": ipc.payload_bytes,
                "data_plane_bytes": ipc.data_plane_bytes,
                "shipped_bytes": ipc.shipped_bytes,
                "legacy_bytes": ipc.legacy_bytes,
                "descriptor_collapse": ipc.descriptor_collapse,
            },
        }

    if include_streaming:
        summary["streaming"] = measure_streaming(quick,
                                                 n_workers=n_jobs)

    if include_cohort_tier:
        summary["cohort"] = measure_cohort(quick)

    if include_storage:
        summary["storage"] = measure_storage(quick)

    if include_ingest:
        summary["ingest"] = measure_ingest(quick)

    summary["cache"] = cache.stats()
    summary["fft_calibration"] = _calibration.default_crossover_table() \
        .stats()
    return summary


def _lookup(summary: dict, dotted: str):
    value = summary
    for part in dotted.split("."):
        if not isinstance(value, dict) or part not in value:
            return None
        value = value[part]
    return value


def compare(current: dict, baseline: dict,
            tolerance: float = DEFAULT_TOLERANCE) -> list:
    """Gated metrics that regressed beyond ``tolerance``.

    Returns ``(metric, current, baseline)`` triples; empty means pass.
    Metrics missing from either side are skipped (a new baseline field
    must not fail every older checkout).
    """
    regressions = []
    for metric in GATED_METRICS:
        now = _lookup(current, metric)
        then = _lookup(baseline, metric)
        if now is None or then is None or then <= 0:
            continue
        if now < (1.0 - tolerance) * then:
            regressions.append((metric, now, then))
    return regressions


def floor_violations(summary: dict) -> list:
    """Absolute-floor failures of one fresh summary.

    Returns ``(metric, current, floor)`` triples.  Floors marked
    ``multi_cpu_only`` (the ``process_scaling`` bar — a process pool
    cannot beat serial on one core, whatever the IPC does) are only
    enforced when the summary reports more than one CPU; the cohort
    floors hold everywhere, because leading-axis batching needs no
    extra cores to win.  Skipped values are still recorded in the
    trajectory either way.
    """
    multi_cpu = (summary.get("cpu_count") or 1) > 1
    violations = []
    for metric, (floor, multi_cpu_only) in GATED_FLOORS.items():
        if multi_cpu_only and not multi_cpu:
            continue
        now = _lookup(summary, metric)
        if now is not None and now <= floor:
            violations.append((metric, now, floor))
    return violations


def render(summary: dict) -> str:
    """Human-readable view of one trajectory point."""
    k, p, b = summary["kernels"], summary["pipeline"], summary["batch"]
    lines = [
        f"Perf trajectory ({summary['mode']}: {summary['n_recordings']} "
        f"x {summary['duration_s_each']:.0f} s recordings, "
        f"n_jobs={summary['n_jobs']}, cpus={summary['cpu_count']})",
        f"  filter kernels : scalar {k['scalar_rec_per_s']:8.1f} rec/s"
        f" | vectorized {k['vectorized_rec_per_s']:8.1f} rec/s"
        f" | speedup {k['speedup']:5.1f}x",
        f"  full pipeline  : scalar {p['scalar_rec_per_s']:8.1f} rec/s"
        f" | vectorized {p['vectorized_rec_per_s']:8.1f} rec/s"
        f" | speedup {p['speedup']:5.1f}x",
        f"  batch executor : serial {b['serial_rec_per_s']:8.1f} rec/s"
        f" | threads {b['threads_rec_per_s']:8.1f} rec/s"
        f" | processes {b['process_rec_per_s']:8.1f} rec/s"
        f" | scaling {b['process_scaling']:4.2f}x",
    ]
    ipc = b.get("ipc")
    if ipc:
        lines.append(
            f"  process IPC    : {ipc['n_descriptors']} descriptors | "
            f"pipe {ipc['payload_bytes'] / 1024:8.1f} KiB | shm "
            f"{ipc['data_plane_bytes'] / 1024:8.1f} KiB | collapse "
            f"{ipc['descriptor_collapse']:6.0f}x "
            f"(legacy {ipc['legacy_bytes'] / 1024:.1f} KiB)")
    if "process_cold_s" in b:
        lines.append(
            f"  warm pool      : cold fan-out {b['process_cold_s']:6.3f}"
            f" s | warm {b['process_warm_s']:6.3f} s | speedup "
            f"{b['warm_pool_speedup']:4.2f}x")
    s = summary.get("streaming")
    if s:
        queue = s["queue"]
        lines.append(
            f"  streaming      : {s['n_devices']} devices x "
            f"{s['duration_s_each']:.0f} s -> {s['rec_per_s']:8.1f} "
            f"rec/s | serial ingest {s['serial_ingest_rec_per_s']:8.1f} "
            f"rec/s | ratio {s['ratio_vs_serial']:4.2f}x | queue peak "
            f"{queue['peak_depth']}/{s['max_chunks']} "
            f"({queue['blocked_puts']} stalls)")
    c = summary.get("cohort")
    if c:
        for size in c["sizes"]:
            lines.append(
                f"  cohort tier    : n={size:<6d} serial "
                f"{c[f'serial_rec_per_s_{size}']:8.1f} rec/s | batched "
                f"{c[f'rec_per_s_{size}']:8.1f} rec/s | speedup "
                f"{c[f'speedup_{size}']:5.2f}x")
        lines.append(
            f"  cohort curve   : rec/s(10^3) / rec/s(10^2) = "
            f"{c['curve_ratio']:4.2f}")
    st = summary.get("storage")
    if st:
        lines.append(
            f"  journal GC     : {st['bytes_before'] / 1024:8.1f} KiB "
            f"-> {st['bytes_after_gc'] / 1024:8.1f} KiB "
            f"({st['n_live_sessions']} live sessions, "
            f"{st['live_bytes'] / 1024:.1f} KiB live) | bound margin "
            f"{st['disk_bound']:5.2f}x in {st['gc_s'] * 1000:5.1f} ms")
    ing = summary.get("ingest")
    if ing:
        lines.append(
            f"  zero-copy plane: object {ing['object_rec_per_s']:8.1f} "
            f"rec/s | zero-copy {ing['zero_copy_rec_per_s']:8.1f} rec/s "
            f"| ratio {ing['zero_copy']:4.2f}x | "
            f"{ing['zero_copy_mb_per_s']:6.1f} MB/s durable | "
            f"{ing['bytes_copied']} B copied, "
            f"{ing['group_fsyncs']} fsyncs/"
            f"{ing['n_records']} records")
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="measure batch/kernel throughput and gate "
                    "regressions against a committed baseline")
    parser.add_argument("--quick", action="store_true",
                        help="reduced cohort (CI mode)")
    parser.add_argument("--jobs", type=int, default=4,
                        help="workers for the batch measurements")
    parser.add_argument("--baseline", type=Path, default=None,
                        help="committed trajectory JSON to gate against")
    parser.add_argument("--previous", type=Path, default=None,
                        help="previous same-runner summary (e.g. the "
                             "CI cache's artifact); preferred over "
                             "--baseline when the file exists, making "
                             "the gate an apples-to-apples same-"
                             "hardware comparison")
    parser.add_argument("--output", type=Path, default=None,
                        help="write the fresh summary here")
    parser.add_argument("--write-baseline", type=Path, default=None,
                        help="write/refresh a trajectory file with "
                             "both quick and full summaries")
    parser.add_argument("--tolerance", type=float,
                        default=DEFAULT_TOLERANCE,
                        help="allowed fractional rec/s regression")
    parser.add_argument("--max-seconds", type=float, default=None,
                        help="wall-clock budget for the measurement; "
                             "exceeding it fails the run (quick mode "
                             f"defaults to {QUICK_BUDGET_S:.0f} s, "
                             "full mode to no budget)")
    args = parser.parse_args(argv)

    if args.write_baseline:
        point = {"pr": 8,
                 "quick": measure(quick=True, n_jobs=args.jobs),
                 "full": measure(quick=False, n_jobs=args.jobs)}
        args.write_baseline.write_text(json.dumps(point, indent=2) + "\n")
        print(render(point["full"]))
        print(f"baseline written to {args.write_baseline}")
        return 0

    budget_s = args.max_seconds
    if budget_s is None and args.quick:
        budget_s = QUICK_BUDGET_S
    measure_start = time.perf_counter()
    summary = measure(quick=args.quick, n_jobs=args.jobs)
    elapsed_s = time.perf_counter() - measure_start
    summary["elapsed_s"] = elapsed_s
    print(render(summary))
    print(f"  bench wall     : {elapsed_s:6.1f} s"
          + (f" (budget {budget_s:.0f} s)" if budget_s else ""))
    if args.output:
        args.output.write_text(json.dumps(summary, indent=2) + "\n")

    over_budget = budget_s is not None and elapsed_s > budget_s
    if over_budget:
        print(f"\nBUDGET EXCEEDED: the bench took {elapsed_s:.1f} s "
              f"against a --max-seconds budget of {budget_s:.1f} s — "
              f"the measurement suite itself has regressed; trim it "
              f"or raise the budget deliberately.")

    floors = floor_violations(summary)
    if floors:
        print(f"\nFLOOR VIOLATION (absolute minima, cpu_count="
              f"{summary['cpu_count']}):")
        for metric, now, floor in floors:
            print(f"  {metric}: {now:.2f} <= required {floor:.2f}")

    # Gate against *both* references when available: the previous
    # same-runner artifact gives a tight same-hardware comparison, but
    # the committed cross-machine baseline stays in force as the
    # absolute floor — otherwise successive sub-tolerance regressions
    # would ratchet the moving reference down unchecked.
    references = []
    if args.previous is not None and args.previous.exists():
        references.append(("previous same-runner artifact",
                           args.previous))
    if args.baseline is not None:
        references.append(("committed baseline", args.baseline))
    if not references:
        return 1 if (floors or over_budget) else 0

    failed = bool(floors) or over_budget
    for kind, path in references:
        baseline = json.loads(path.read_text())
        # Trajectory files hold both modes; bare summaries are
        # compared directly.
        baseline = baseline.get(summary["mode"], baseline)
        regressions = compare(summary, baseline,
                              tolerance=args.tolerance)
        if regressions:
            failed = True
            print(f"\nREGRESSION (> {args.tolerance * 100:.0f} % "
                  f"below {kind} {path}):")
            for metric, now, then in regressions:
                print(f"  {metric}: {now:.1f} rec/s vs baseline "
                      f"{then:.1f} rec/s")
        else:
            print(f"within {args.tolerance * 100:.0f} % of {kind} "
                  f"{path}: OK")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
