"""Cohort throughput: kernels, cache, and executor backends.

The stage-graph refactor (PR 1) made cohort workloads cheap by
memoizing filter designs; the vectorized DSP layer (PR 2) makes the
filter *applications* array-speed and adds a multi-core process
backend.  This bench measures recordings/sec for

* ``serial-cold``   — one pipeline per recording, each with a fresh
  design cache (the pre-refactor cost model);
* ``serial-warm``   — one shared cache, serial loop;
* ``batch-threads`` — the executor with ``n_jobs`` worker threads;
* ``batch-process`` — the executor over a process pool;
* the filtering kernel layer and the full pipeline under the scalar
  reference kernels vs the vectorized ones (via
  :mod:`perf_regression`, the shared measurement harness).

It asserts the structural claims (a warm second pass performs zero
filter designs; batch output is bit-identical to the serial loop; the
vectorized kernels match the scalar oracle and are >= 5x faster on
the kernel layer) and writes the rendered table plus JSON summaries:
``benchmarks/results/batch_throughput.json`` for the run, including a
fresh trajectory point.  The committed repo-root ``BENCH_PR2.json``
baseline the CI perf job gates against is refreshed only by the
explicit ``perf_regression.py --write-baseline`` flag, never by a
bench run.
"""

import json
import time

import numpy as np
import perf_regression
from conftest import save_artifact

from repro.core import BeatToBeatPipeline, FilterDesignCache, process_batch
from repro.dsp import iir as _iir
from repro.experiments import format_table

N_JOBS = 4


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def test_batch_throughput(benchmark, results_dir):
    recordings, duration = perf_regression.cohort_recordings()

    def serial_cold():
        return [
            BeatToBeatPipeline(r.fs, cache=FilterDesignCache())
            .process_recording(r)
            for r in recordings
        ]

    warm_cache = FilterDesignCache()

    def serial_warm():
        return process_batch(recordings, n_jobs=1, cache=warm_cache)

    cold_results, cold_s = _timed(serial_cold)
    warm_results, warm_s = _timed(serial_warm)
    designs_after_first = warm_cache.misses
    # Second warm pass: every design must come from the cache.
    (warm_results, warm_s) = _timed(serial_warm)
    assert warm_cache.misses == designs_after_first, \
        "filters were re-designed on a repeated (fs, config) run"

    batch_results, batch_s = _timed(
        lambda: benchmark.pedantic(
            lambda: process_batch(recordings, n_jobs=N_JOBS,
                                  cache=warm_cache),
            rounds=1, iterations=1))
    process_results, process_s = _timed(
        lambda: process_batch(recordings, n_jobs=N_JOBS,
                              backend="process"))

    # Parallel fan-out — threads or processes — is bit-identical to
    # the serial loop.
    for serial, threaded, forked in zip(cold_results, batch_results,
                                        process_results):
        for parallel in (threaded, forked):
            assert np.array_equal(serial.r_peak_indices,
                                  parallel.r_peak_indices)
            assert np.array_equal(serial.pep_s, parallel.pep_s)
            assert np.array_equal(serial.icg, parallel.icg)

    # The vectorized kernels match the scalar oracle on real pipeline
    # output and clear the >= 5x bar on the filtering layer.
    probe = recordings[0]
    pipeline = BeatToBeatPipeline(probe.fs, cache=warm_cache)
    with _iir.use_sosfilt_backend("reference"):
        reference = pipeline.process_recording(probe)
    vectorized = pipeline.process_recording(probe)
    scale = float(np.max(np.abs(reference.icg)))
    assert np.array_equal(reference.r_peak_indices,
                          vectorized.r_peak_indices)
    assert np.max(np.abs(reference.icg - vectorized.icg)) <= 1e-9 * scale

    # Kernel/pipeline speedups from the shared harness; the batch
    # figures are spliced in from the timings above instead of running
    # the whole cohort a second time.
    n = len(recordings)
    trajectory = perf_regression.measure(n_jobs=N_JOBS,
                                         include_batch=False,
                                         include_streaming=False,
                                         include_cohort_tier=False,
                                         include_storage=False,
                                         cohort=(recordings, duration))
    trajectory["batch"] = {
        "serial_rec_per_s": n / warm_s,
        "threads_rec_per_s": n / batch_s,
        "process_rec_per_s": n / process_s,
        "thread_scaling": warm_s / batch_s,
        "process_scaling": warm_s / process_s,
    }
    assert trajectory["kernels"]["speedup"] >= 5.0, \
        f"vectorized kernel speedup fell to " \
        f"{trajectory['kernels']['speedup']:.1f}x (< 5x)"
    summary = {
        "n_recordings": n,
        "duration_s_each": duration,
        "n_jobs": N_JOBS,
        "serial_cold": {"seconds": cold_s, "rec_per_s": n / cold_s},
        "serial_warm": {"seconds": warm_s, "rec_per_s": n / warm_s},
        "batch_threads": {"seconds": batch_s, "rec_per_s": n / batch_s},
        "batch_process": {"seconds": process_s,
                          "rec_per_s": n / process_s},
        "cache": warm_cache.stats(),
        "trajectory": trajectory,
    }
    # The committed trajectory baselines (BENCH_PR*.json) are
    # refreshed only by an explicit `perf_regression.py
    # --write-baseline` — a bench run on an arbitrary machine must
    # never silently loosen the CI gate.
    (results_dir / "batch_throughput.json").write_text(
        json.dumps(summary, indent=2) + "\n")

    rows = [
        [name, f"{entry['seconds']:.2f}", f"{entry['rec_per_s']:.2f}"]
        for name, entry in summary.items()
        if isinstance(entry, dict) and "seconds" in entry
    ]
    rows.append(["kernel speedup (scalar -> vectorized)",
                 "-", f"{trajectory['kernels']['speedup']:.1f}x"])
    rows.append(["pipeline speedup (scalar -> vectorized)",
                 "-", f"{trajectory['pipeline']['speedup']:.1f}x"])
    table = format_table(
        ["mode", "time (s)", "recordings/s"], rows,
        title=f"Batch throughput: {n} x {duration:.0f} s recordings "
              f"(n_jobs={N_JOBS})")
    save_artifact(results_dir, "batch_throughput", table)
