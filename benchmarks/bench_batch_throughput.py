"""Cohort throughput: serial vs cached vs threaded batch execution.

The stage-graph refactor exists to make cohort workloads cheap: filter
designs are memoized per ``(fs, config)`` and recordings fan out over
the batch executor.  This bench measures recordings/sec for

* ``serial-cold``  — one pipeline per recording, each with a fresh
  design cache (the pre-refactor cost model: every recording redesigns
  every filter);
* ``serial-warm``  — one shared cache, serial loop (the refactor's
  cache win by itself);
* ``batch-threads``— the executor with ``n_jobs`` worker threads on
  the shared cache.

It asserts the structural claims (a warm second pass performs zero
filter designs; batch output is bit-identical to the serial loop) and
writes both the rendered table and a machine-readable JSON summary
under ``benchmarks/results/``.
"""

import json
import time

import numpy as np
from conftest import save_artifact

from repro.core import BeatToBeatPipeline, FilterDesignCache, process_batch
from repro.experiments import format_table
from repro.synth import SynthesisConfig, default_cohort, synthesize_recording

N_JOBS = 4


def _cohort_recordings():
    config = SynthesisConfig(duration_s=20.0)
    return [
        synthesize_recording(subject, setup, position, config)
        for subject in default_cohort()
        for setup, position in (("device", 1), ("thoracic", 1))
    ]


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def test_batch_throughput(benchmark, results_dir):
    recordings = _cohort_recordings()

    def serial_cold():
        return [
            BeatToBeatPipeline(r.fs, cache=FilterDesignCache())
            .process_recording(r)
            for r in recordings
        ]

    warm_cache = FilterDesignCache()

    def serial_warm():
        return process_batch(recordings, n_jobs=1, cache=warm_cache)

    cold_results, cold_s = _timed(serial_cold)
    warm_results, warm_s = _timed(serial_warm)
    designs_after_first = warm_cache.misses
    # Second warm pass: every design must come from the cache.
    (warm_results, warm_s) = _timed(serial_warm)
    assert warm_cache.misses == designs_after_first, \
        "filters were re-designed on a repeated (fs, config) run"

    batch_results, batch_s = _timed(
        lambda: benchmark.pedantic(
            lambda: process_batch(recordings, n_jobs=N_JOBS,
                                  cache=warm_cache),
            rounds=1, iterations=1))

    # Parallel fan-out is bit-identical to the serial loop.
    for serial, threaded in zip(cold_results, batch_results):
        assert np.array_equal(serial.r_peak_indices,
                              threaded.r_peak_indices)
        assert np.array_equal(serial.pep_s, threaded.pep_s)
        assert np.array_equal(serial.icg, threaded.icg)

    n = len(recordings)
    summary = {
        "n_recordings": n,
        "duration_s_each": 20.0,
        "n_jobs": N_JOBS,
        "serial_cold": {"seconds": cold_s, "rec_per_s": n / cold_s},
        "serial_warm": {"seconds": warm_s, "rec_per_s": n / warm_s},
        "batch_threads": {"seconds": batch_s, "rec_per_s": n / batch_s},
        "cache": warm_cache.stats(),
    }
    (results_dir / "batch_throughput.json").write_text(
        json.dumps(summary, indent=2) + "\n")

    rows = [
        [name, f"{entry['seconds']:.2f}", f"{entry['rec_per_s']:.2f}"]
        for name, entry in summary.items()
        if isinstance(entry, dict) and "seconds" in entry
    ]
    table = format_table(
        ["mode", "time (s)", "recordings/s"], rows,
        title=f"Batch throughput: {n} x 20 s recordings "
              f"(n_jobs={N_JOBS})")
    save_artifact(results_dir, "batch_throughput", table)
