"""Extension bench: CHF alert lead time, ICG vs weight (paper intro).

The paper's introduction cites Chaudhry et al.: weight gain precedes
hospitalisation only unreliably, motivating hemodynamic monitoring.
This bench quantifies that argument on simulated decompensation
courses: how many days after fluid-accumulation onset each rule fires,
and the false-alarm behaviour on stable courses.
"""

import numpy as np
from conftest import save_artifact

from repro.experiments import format_table
from repro.monitoring import (
    ChfMonitor,
    DecompensationScenario,
    WeightMonitor,
    simulate_decompensation_course,
)
from repro.synth import default_cohort

N_COURSES = 10


def _run_courses():
    scenario = DecompensationScenario()
    cohort = default_cohort()
    icg_days, weight_days = [], []
    for seed in range(N_COURSES):
        subject = cohort[seed % len(cohort)]
        course = simulate_decompensation_course(
            subject, scenario, np.random.default_rng(seed))
        icg_days.append(ChfMonitor().run(course))
        weight_days.append(WeightMonitor().run(course))
    false_alarms = 0
    stable = DecompensationScenario(
        z0_drop_fraction=0.0, lvet_drop_fraction=0.0,
        dzdt_drop_fraction=0.0, pep_rise_fraction=0.0, hr_rise_bpm=0.0,
        weight_gain_kg=1e-9)
    for seed in range(N_COURSES):
        course = simulate_decompensation_course(
            cohort[seed % len(cohort)], stable,
            np.random.default_rng(1000 + seed))
        if ChfMonitor().run(course) != -1:
            false_alarms += 1
    return scenario, np.array(icg_days), np.array(weight_days), false_alarms


def test_chf_alert_lead_time(benchmark, results_dir):
    scenario, icg_days, weight_days, false_alarms = benchmark(_run_courses)

    onset = scenario.onset_day
    icg_delay = icg_days - onset
    fired = weight_days > 0
    weight_delay = weight_days[fired] - onset
    rows = [
        ["ICG multi-parameter", f"{N_COURSES}/{N_COURSES}",
         f"{icg_delay.mean():.1f} +- {icg_delay.std():.1f}"],
        ["weight gain (2 kg/7d)", f"{fired.sum()}/{N_COURSES}",
         (f"{weight_delay.mean():.1f} +- {weight_delay.std():.1f}"
          if fired.any() else "n/a")],
    ]
    table = format_table(
        ["Alert rule", "fired", "days after onset"], rows,
        title=(f"CHF decompensation alerts over {N_COURSES} simulated "
               f"courses (onset day {onset})"))
    table += (f"\n\nFalse alarms on {N_COURSES} stable courses: "
              f"{false_alarms}")
    save_artifact(results_dir, "chf_monitoring", table)

    # Every decompensation caught, after onset, with useful lead time.
    assert np.all(icg_days > onset)
    assert icg_delay.mean() < 9.0
    # The ICG alert beats the weight rule by days on every course where
    # the weight rule fires at all.
    assert np.all(weight_days[fired] > icg_days[fired])
    assert false_alarms == 0
