"""Extension bench: the paper's future-work larger-cohort study.

"As for the future work, we are planning to expand our study on a
larger number of subjects."  This bench runs the full protocol on a
10-subject randomly drawn cohort and reports the correlation and
position-error distributions — checking that the paper's claims are
not artefacts of the original five subjects.
"""

import numpy as np
from conftest import save_artifact

from repro.experiments import ProtocolConfig, format_table, run_study
from repro.synth import random_cohort


def test_larger_cohort_study(benchmark, results_dir):
    cohort = random_cohort(10, np.random.default_rng(77))
    config = ProtocolConfig(duration_s=20.0)

    study = benchmark.pedantic(run_study,
                               kwargs={"cohort": cohort, "config": config,
                                       "n_jobs": 4},
                               rounds=1, iterations=1)

    correlations = np.array([
        study.correlation(subject.subject_id, position)
        for subject in cohort for position in (1, 2, 3)
    ])
    worst = study.worst_case_error()
    errors = study.relative_errors()

    def mean_error(name):
        return np.mean([v for by_freq in errors[name].values()
                        for v in by_freq.values()])

    rows = [
        ["subjects x positions", f"{correlations.size}", ""],
        ["correlation mean", f"{correlations.mean():.3f}", "> 0.80"],
        ["correlation min / max",
         f"{correlations.min():.3f} / {correlations.max():.3f}", ""],
        ["fraction r > 0.8",
         f"{np.mean(correlations > 0.8):.0%}", ""],
        ["mean e21 / e23 / e31",
         (f"{mean_error('e21') * 100:+.1f}% / "
          f"{mean_error('e23') * 100:+.1f}% / "
          f"{mean_error('e31') * 100:+.1f}%"), "ordered, > 0"],
        ["worst-case |error|", f"{worst * 100:.1f} %", "< 20 %"],
    ]
    table = format_table(["Statistic", "value", "claim"], rows,
                         title="Future-work study: 10 random subjects, "
                               "full protocol")
    save_artifact(results_dir, "extension_cohort", table)

    # The paper's headline claims hold beyond the original five.
    assert correlations.mean() > 0.80
    assert worst < 0.20
    assert mean_error("e21") > mean_error("e23") > mean_error("e31") > 0