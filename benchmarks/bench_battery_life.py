"""Section VI battery claims + PMU extension bench (S5b).

Paper: 106 h (> 4 days) of continuous monitoring on 710 mAh; the radio
spends ~0.1 % duty (1 % budgeted) because only derived parameters are
transmitted.  The PMU rows quantify the adaptive-policy extension this
library adds as a future-work feature.
"""

from conftest import save_artifact

from repro.device import BleRadioModel, PowerManagementUnit
from repro.experiments import format_table


def test_battery_and_radio_budget(benchmark, results_dir):
    pmu = PowerManagementUnit()

    def discharge_both():
        fixed = pmu.simulate_discharge(adaptive=False)
        adaptive = pmu.simulate_discharge(adaptive=True)
        return fixed, adaptive

    fixed, adaptive = benchmark(discharge_both)

    radio = BleRadioModel()
    beat_duty = radio.report_duty_cycle(1.0)
    streaming_duty = radio.raw_streaming_duty_cycle(250.0, 2)
    rows = [
        ["continuous (paper)", f"{fixed.lifetime_hours:.1f} h",
         f"{fixed.lifetime_hours / 24:.1f} days"],
        ["adaptive PMU", f"{adaptive.lifetime_hours:.1f} h",
         f"{adaptive.lifetime_hours / 24:.1f} days"],
    ]
    table = format_table(["Policy", "lifetime", ""], rows,
                         title="Battery life on 710 mAh")
    radio_text = (f"Radio duty, one report/beat: {beat_duty:.3%} "
                  f"(paper ~0.1 %)\n"
                  f"Radio duty if streaming raw samples: "
                  f"{streaming_duty:.2%} — the design's reason to "
                  f"process on-node")
    save_artifact(results_dir, "battery_life",
                  f"{table}\n\n{radio_text}")

    assert abs(fixed.lifetime_hours - 106.0) < 2.0
    assert adaptive.lifetime_hours > 2 * fixed.lifetime_hours
    assert beat_duty < 0.01
    assert streaming_duty > 5 * beat_duty
