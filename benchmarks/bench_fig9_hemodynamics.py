"""Figs 9a-b: LVET, PEP and HR per subject, Positions 1 and 2 (F9).

Paper: characteristic ICG parameters plus heart rate for each of the
five subjects, measured by the touch device in the two worst-case
positions at 50 kHz.  Shape targets: physiological ranges and per-
subject agreement with the synthetic ground truth.
"""

from conftest import save_artifact

from repro.experiments import render_hemodynamics


def test_fig9_hemodynamic_parameters(benchmark, study, cohort,
                                     results_dir):
    def derive():
        return {pos: study.hemodynamics(pos) for pos in (1, 2)}

    tables = benchmark(derive)

    blocks = [render_hemodynamics(tables[pos], pos) for pos in (1, 2)]
    truth_rows = "\n".join(
        f"  Subject {s.subject_id}: LVET {s.lvet_s * 1000:.0f} ms, "
        f"PEP {s.pep_s * 1000:.0f} ms, HR {s.hr_bpm:.0f} bpm"
        for s in cohort)
    save_artifact(results_dir, "fig9_hemodynamics",
                  "\n\n".join(blocks)
                  + "\n\nSynthetic ground truth:\n" + truth_rows)

    truth = {s.subject_id: s for s in cohort}
    for position, table in tables.items():
        for sid, entry in table.items():
            subject = truth[sid]
            # HR is calibration-free and tight.
            assert abs(entry["hr_bpm"] - subject.hr_bpm) < 3.0, \
                (position, sid)
            # Intervals carry detector-definitional offsets plus
            # device-grade noise; bounded, physiological.
            assert 0.04 < entry["pep_s"] < 0.20, (position, sid)
            assert 0.15 < entry["lvet_s"] < 0.45, (position, sid)
            assert abs(entry["pep_s"] - subject.pep_s) < 0.05
            assert abs(entry["lvet_s"] - subject.lvet_s) < 0.10
