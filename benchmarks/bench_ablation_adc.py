"""Ablation A4: ADC resolution — how many bits does the ICG need?

Section III-A advertises up to 16-bit resolution and 125 Hz-16 kHz
sampling.  This sweep quantizes the impedance channel at decreasing
resolutions (offset removed first, as the AFE's baseline servo does)
and measures where the hemodynamic parameters break — grounding the
"12-bit MCU ADC suffices" design point.
"""

import numpy as np
from conftest import save_artifact

from repro.core import BeatToBeatPipeline
from repro.device import AdcConfig, AdcModel
from repro.experiments import format_table
from repro.synth import SynthesisConfig, default_cohort, synthesize_recording

RESOLUTIONS = (16, 12, 10, 8, 6)


def test_adc_resolution_sweep(benchmark, results_dir):
    subject = default_cohort()[1]
    recording = synthesize_recording(
        subject, "thoracic", 1,
        SynthesisConfig(duration_s=20.0, include_motion=False,
                        include_powerline=False))
    fs = recording.fs
    ecg = recording.channel("ecg")
    z = recording.channel("z")
    z0 = float(np.mean(z))
    pipeline = BeatToBeatPipeline(fs)
    reference = pipeline.process(ecg, z)

    def sweep():
        results = {}
        for bits in RESOLUTIONS:
            adc = AdcModel(AdcConfig(resolution_bits=bits,
                                     full_scale=1.0))
            z_quantized = adc.convert(z - z0).reconstructed + z0
            try:
                results[bits] = pipeline.process(ecg, z_quantized)
            except Exception:   # detector starvation at coarse LSBs
                results[bits] = None
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = []
    for bits in RESOLUTIONS:
        result = results[bits]
        if result is None:
            rows.append([f"{bits}", "failed", "failed", "-"])
            continue
        pep_err = abs(result.mean_pep_s - reference.mean_pep_s) * 1000
        lvet_err = abs(result.mean_lvet_s - reference.mean_lvet_s) * 1000
        rows.append([f"{bits}", f"{pep_err:.1f}", f"{lvet_err:.1f}",
                     f"{len(result.failures)}"])
    lsb_uohm = 2.0 / 2**12 * 1e6
    table = format_table(
        ["bits", "PEP err (ms)", "LVET err (ms)", "failed beats"], rows,
        title="Ablation A4: impedance-channel ADC resolution "
              "(vs float reference)")
    note = (f"\n12-bit LSB on the +-1 ohm pulsatile range: "
            f"{lsb_uohm:.0f} uOhm — the design point of the paper's "
            f"STM32 ADC.")
    save_artifact(results_dir, "ablation_adc", table + note)

    # 12 bits (the MCU's ADC) must be transparent.
    r12 = results[12]
    assert r12 is not None
    assert abs(r12.mean_pep_s - reference.mean_pep_s) < 0.005
    assert abs(r12.mean_lvet_s - reference.mean_lvet_s) < 0.01
    # Degradation must appear by 6 bits (the sweep is discriminative).
    r6 = results[6]
    degraded = (r6 is None
                or len(r6.failures) > len(reference.failures)
                or abs(r6.mean_lvet_s - reference.mean_lvet_s) > 0.01
                or abs(r6.mean_pep_s - reference.mean_pep_s) > 0.005)
    assert degraded
