"""Durable ingest demo: journal a churning fleet, crash it, recover.

The touch-based acquisition scenario is inherently lossy — users lift
their thumbs mid-measurement, devices reconnect, services restart.
This example walks the durability layer end to end:

1. a multi-round :class:`~repro.ingest.fleet.DeviceFleet` (four
   devices, two measurement rounds each, 40 % dropout with rejoin)
   streams through a :class:`~repro.ingest.streaming.StreamingExecutor`
   that writes every consumed chunk through a
   :class:`~repro.ingest.journal.ChunkJournal` *before* analysing it;
2. the service is killed mid-run (a scripted crash at an arbitrary
   chunk boundary) — the exception propagates, but everything consumed
   so far is CRC-framed on disk;
3. a :class:`~repro.ingest.recovery.RecoveryManager` re-opens the
   journal: completed sessions finalize immediately (bit-identical to
   the run the crash interrupted), open sessions are reported;
4. the fleet "reconnects" — ``resume`` replays the journal, skips the
   chunks it already holds, ingests the rest, and every session ends
   bit-identical to an uninterrupted run.

Run:  PYTHONPATH=src python examples/durable_ingest.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro.ingest import (
    ChunkJournal,
    DeviceFleet,
    FleetConfig,
    RecoveryManager,
    StreamingExecutor,
)


class ScriptedCrash(BaseException):
    """Stands in for SIGKILL: not a ReproError, not catchable as one."""


class CrashingSource:
    """Yields the wrapped source's chunks, then dies mid-stream."""

    def __init__(self, source, crash_after: int) -> None:
        self.source = source
        self.crash_after = crash_after

    def __iter__(self):
        for i, chunk in enumerate(self.source):
            if i >= self.crash_after:
                raise ScriptedCrash(
                    f"service killed after {self.crash_after} chunks")
            yield chunk


def main() -> None:
    """Crash a journaled fleet ingest and recover it, bit for bit."""
    fleet = DeviceFleet(FleetConfig(
        n_devices=4, duration_s=10.0, chunk_s=2.0, seed=2016,
        n_rounds=2, round_gap_s=4.0, dropout=0.4, rejoin=True))
    n_sessions = len(fleet.session_ids)
    print(f"Fleet: 4 devices x 2 rounds = {n_sessions} sessions"
          + (f"; churn will interrupt "
             f"{', '.join(fleet.dropped_session_ids)}"
             if fleet.dropped_session_ids else ""))

    # The reference: the same fleet streamed without interruption.
    uninterrupted = StreamingExecutor(n_workers=1,
                                      preview=False).run(fleet)

    with tempfile.TemporaryDirectory() as tmp:
        journal_dir = Path(tmp) / "journal"

        # -- 1+2: journaled ingest, killed mid-run ----------------------
        crash_after = 11                     # an arbitrary chunk boundary
        journal = ChunkJournal(journal_dir, segment_records=6)
        executor = StreamingExecutor(n_workers=1, preview=False,
                                     journal=journal)
        try:
            executor.run(CrashingSource(fleet, crash_after))
        except ScriptedCrash as crash:
            print(f"\nCRASH: {crash}")
        finally:
            journal.close()

        # -- 3: recover what the journal holds --------------------------
        manager = RecoveryManager(journal_dir)
        recovered = manager.recover()
        print(f"Recovery scan: {recovered.n_records} records journaled, "
              f"{len(recovered.results)} session(s) complete, "
              f"{len(recovered.open_sessions)} open")
        for session_id in sorted(recovered.results):
            payload = recovered.results[session_id].result.summary()
            print(f"  finalized {session_id}: "
                  f"Z0 {payload['z0_ohm']:6.1f} ohm, "
                  f"HR {payload['hr_bpm']:5.1f} bpm")
        if recovered.open_sessions:
            print(f"  still open: {', '.join(recovered.open_sessions)}")

        # -- 4: the fleet reconnects; resume completes everything -------
        resumed = manager.resume(fleet)
        print(f"\nResume: {len(resumed.results)} of {n_sessions} "
              f"sessions finalized, {len(resumed.open_sessions)} open")

        agree = all(
            np.array_equal(resumed.results[sid].result.icg,
                           uninterrupted[sid].result.icg)
            and resumed.results[sid].result.z0_ohm
            == uninterrupted[sid].result.z0_ohm
            and resumed.results[sid].result.hr_bpm
            == uninterrupted[sid].result.hr_bpm
            for sid in uninterrupted
        )
        print(f"Recovered vs uninterrupted run: "
              f"{'bit-identical' if agree else 'MISMATCH'} "
              f"across all {n_sessions} sessions")


if __name__ == "__main__":
    main()
