"""Inside the ICG front end: carrier injection and synchronous
demodulation.

Everything else in this library works on the demodulated impedance
envelope; this example opens the box and simulates the actual 50 kHz
carrier path for a short window — inject a safe current, develop a
modulated voltage across a beating thoracic impedance, mix with the
coherent reference, low-pass away the 2fc image — and verifies the
recovered envelope against the ground truth.  It also shows the
measured-Z0-vs-frequency curve that the AC-coupled front end produces
(the Fig 6/7 peak at 10 kHz).

Run:  python examples/carrier_demodulation.py
"""

import numpy as np

from repro.bioimpedance import BodyGeometry, InstrumentResponse, ThoracicPathway
from repro.device import CurrentInjector, IcgFrontEnd, max_safe_current_ua
from repro.synth.icg_model import integrate_to_impedance, synthesize_icg


def main() -> None:
    # --- safety envelope -------------------------------------------------
    print("IEC 60601-1 patient auxiliary current limits:")
    for freq in (2_000.0, 10_000.0, 50_000.0, 100_000.0):
        print(f"  {freq / 1000:5.0f} kHz: "
              f"{max_safe_current_ua(freq):7.0f} uA rms")

    injector = CurrentInjector.safe_for(50_000.0)
    print(f"\nProgrammed source: {injector.frequency_hz / 1000:.0f} kHz, "
          f"{injector.amplitude_ua:.0f} uA rms")

    # --- one second of beating impedance at the carrier rate -----------
    fs_carrier = 400_000.0
    duration_s = 1.2
    icg, landmarks = synthesize_icg(np.array([0.4]), 0.10, 0.30, 1.2,
                                    duration_s, fs_carrier)
    envelope = integrate_to_impedance(icg, fs_carrier, z0_ohm=25.0)

    frontend = IcgFrontEnd(injector=injector)
    voltage = frontend.modulated_voltage_mv(envelope, fs_carrier)
    print(f"\nDeveloped voltage across the body: "
          f"{np.sqrt(np.mean(voltage**2)):.1f} mV rms "
          f"(modulated at {injector.frequency_hz / 1000:.0f} kHz)")

    recovered = frontend.demodulate_carrier(voltage, fs_carrier)
    inner = slice(int(0.15 * fs_carrier), int(1.05 * fs_carrier))
    error = recovered[inner] - envelope[inner]
    print(f"Demodulated envelope error: {np.abs(error).max() * 1000:.3f} "
          f"mOhm max — the cardiac dZ of ~0.3 Ohm is resolved easily")

    c_index = int(landmarks["c_times_s"][0] * fs_carrier)
    window = slice(c_index - int(0.05 * fs_carrier),
                   c_index + int(0.05 * fs_carrier))
    drop = envelope[window].max() - envelope[window].min()
    print(f"Systolic impedance excursion around C: {drop * 1000:.0f} mOhm")

    # --- the measured Z0(f) shape ----------------------------------------
    print("\nMeasured mean Z0 vs carrier frequency (thoracic pathway):")
    pathway = ThoracicPathway(BodyGeometry(1.78, 75.0, 0.18))
    instrument = InstrumentResponse()
    for freq in (2_000.0, 10_000.0, 50_000.0, 100_000.0):
        z0 = float(pathway.measured_z0(freq, instrument))
        print(f"  {freq / 1000:5.0f} kHz: {z0:6.2f} ohm")
    print("-> rises to 10 kHz, falls beyond: the AC-coupled front end "
          "shapes the low side,\n   tissue dispersion the high side "
          "(paper Figs 6-7).")


if __name__ == "__main__":
    main()
