"""Quickstart: acquire a touch measurement and read the vitals.

Synthesizes a 30 s touch-device recording for one subject of the
default cohort, runs the paper's full beat-to-beat pipeline (ECG
conditioning, Pan-Tompkins, ICG conditioning, B/C/X detection) and
prints the device's report payload — Z0, LVET, PEP, HR — next to the
synthetic ground truth.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import BeatToBeatPipeline, default_cohort, synthesize_recording


def main() -> None:
    # Subject 3 has the best fingertip contact in the cohort — the
    # cleanest first demo.  Try index 4 (subject 5) to see what poor
    # contact does to the beat-to-beat spread.
    subject = default_cohort()[2]
    print(f"Subject {subject.subject_id}: {subject.age_years} y, "
          f"{subject.height_m:.2f} m, {subject.weight_kg:.0f} kg, "
          f"resting HR {subject.hr_bpm:.0f} bpm")

    recording = synthesize_recording(subject, setup="device", position=1)
    print(f"Recorded {recording.duration_s:.0f} s at {recording.fs:.0f} Hz "
          f"({recording.annotation('r_times_s').size} beats), "
          f"injection at "
          f"{recording.meta['injection_frequency_hz'] / 1000:.0f} kHz")

    pipeline = BeatToBeatPipeline(recording.fs)
    result = pipeline.process_recording(recording)

    summary = result.summary()
    truth = recording.meta
    print("\nParameter     measured      ground truth")
    print(f"Z0         {summary['z0_ohm']:8.1f} ohm   "
          f"{truth['true_z0_ohm']:8.1f} ohm")
    print(f"LVET       {summary['lvet_s'] * 1000:8.0f} ms    "
          f"{truth['true_lvet_s'] * 1000:8.0f} ms")
    print(f"PEP        {summary['pep_s'] * 1000:8.0f} ms    "
          f"{truth['true_pep_s'] * 1000:8.0f} ms")
    print(f"HR         {summary['hr_bpm']:8.1f} bpm   "
          f"{truth['true_hr_bpm']:8.1f} bpm")

    peps = result.pep_s * 1000
    lvets = result.lvet_s * 1000
    print(f"\nBeat-to-beat spread over {result.n_beats_detected} beats: "
          f"PEP {peps.mean():.0f} +- {peps.std():.0f} ms, "
          f"LVET {lvets.mean():.0f} +- {lvets.std():.0f} ms")
    print(f"Beats that failed analysis: {len(result.failures)}")

    print("\nFirst five beats (after physiological gating):")
    print("beat   PEP (ms)   LVET (ms)")
    for i, (pep, lvet) in enumerate(zip(result.pep_s[:5],
                                        result.lvet_s[:5])):
        print(f"{i + 1:4d}  {pep * 1000:8.0f}  {lvet * 1000:9.0f}")


if __name__ == "__main__":
    main()
