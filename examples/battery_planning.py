"""Battery-life planning: Table I, the 106-hour figure, and the PMU.

Reproduces the paper's power bookkeeping (Section V / VI) and goes one
step further: what the adaptive power-management policies buy over the
fixed continuous-monitoring worst case.

Run:  python examples/battery_planning.py
"""

import numpy as np

from repro.device import (
    TABLE_I,
    PowerBudget,
    PowerManagementUnit,
    battery_life_hours,
    paper_operating_point,
)


def main() -> None:
    print("Component current consumption (Table I):")
    print(f"{'Component':32s} {'active (mA)':>12s} {'standby (mA)':>13s}")
    for component in TABLE_I.values():
        print(f"{component.name:32s} {component.active_ma:12.3f} "
              f"{component.standby_ma:13.3f}")

    duties = paper_operating_point()
    budget = PowerBudget()
    current = budget.average_current_ma(duties)
    print(f"\nPaper operating point: MCU {duties['mcu']:.0%} duty, "
          f"radio {duties['radio']:.0%}, signal chain always on, IMU off")
    print(f"Average current: {current:.2f} mA")
    print(f"Battery life on 710 mAh: {battery_life_hours():.1f} h "
          f"(paper: 106 h, i.e. > 4 days)")

    print("\nBattery life vs MCU duty cycle (the algorithm budget):")
    mcu_duties = [0.1, 0.2, 0.3, 0.4, 0.5, 0.75, 1.0]
    lives = budget.sweep_mcu_duty(710.0, duties, mcu_duties)
    for duty, hours in zip(mcu_duties, lives):
        print(f"  MCU {duty:4.0%}: {hours:6.1f} h "
              f"({hours / 24:.1f} days)")

    print("\nWhat if the IMU stayed powered for continuous posture "
          "tracking?")
    with_imu = dict(duties)
    with_imu["imu"] = 1.0
    print(f"  battery life drops to "
          f"{budget.battery_life_hours(710.0, with_imu):.1f} h — why the "
          f"design only spot-checks posture.")

    print("\nAdaptive PMU policy (continuous -> periodic -> low power):")
    pmu = PowerManagementUnit()
    fixed = pmu.simulate_discharge(adaptive=False)
    adaptive = pmu.simulate_discharge(adaptive=True)
    print(f"  fixed continuous: {fixed.lifetime_hours:8.1f} h")
    print(f"  adaptive policy:  {adaptive.lifetime_hours:8.1f} h "
          f"({adaptive.lifetime_hours / fixed.lifetime_hours:.1f}x)")
    switches = [i for i in range(1, len(adaptive.mode_names))
                if adaptive.mode_names[i] != adaptive.mode_names[i - 1]]
    for switch in switches:
        t = adaptive.timeline_hours[switch]
        print(f"  switched to {adaptive.mode_names[switch]:10s} at "
              f"{t:7.1f} h "
              f"({adaptive.remaining_fraction[switch]:.0%} charge left)")


if __name__ == "__main__":
    main()
