"""The firmware, sample by sample: streaming detection and resource use.

Runs the causal firmware simulator (the embedded counterpart of the
offline pipeline) on a touch recording: streaming morphological
baseline removal, causal FIR, streaming Pan-Tompkins, beat-triggered
ICG analysis — then prices the whole chain on the STM32L151 cycle
model and the BLE link budget, reproducing the Section V resource
claims.

Run:  python examples/streaming_firmware.py
"""

from repro import default_cohort, synthesize_recording
from repro.core import BeatToBeatPipeline
from repro.device import FirmwareSimulator


def main() -> None:
    subject = default_cohort()[1]
    recording = synthesize_recording(subject, "device", 1)
    print(f"Streaming {recording.n_samples} samples "
          f"({recording.duration_s:.0f} s at {recording.fs:.0f} Hz) "
          f"through the firmware model...\n")

    firmware = FirmwareSimulator(recording.fs)
    result = firmware.run(recording.channel("ecg"),
                          recording.channel("z"))

    print(f"R peaks confirmed: {result.r_peak_indices.size}")
    print(f"Beats analysed: {len(result.beats)} "
          f"({len(result.failures)} failed)")
    print("\nFirst five report packets (the BLE payload):")
    print("seq    Z0 (ohm)   LVET (ms)   PEP (ms)   HR (bpm)")
    for packet in result.packets[:5]:
        print(f"{packet.sequence:3d}  {packet.z0_ohm:9.1f}  "
              f"{packet.lvet_s * 1000:9.0f}  {packet.pep_s * 1000:8.0f}  "
              f"{packet.hr_bpm:8.1f}")

    offline = BeatToBeatPipeline(recording.fs).process_recording(recording)
    print("\nStreaming vs offline (zero-phase reference):")
    for key in ("z0_ohm", "lvet_s", "pep_s", "hr_bpm"):
        fw, off = result.summary()[key], offline.summary()[key]
        print(f"  {key:8s}  firmware {fw:9.4f}   offline {off:9.4f}")

    print("\nSTM32L151 CPU duty cycle at 32 MHz (per arithmetic regime):")
    print(f"  Q15 fixed point        : {result.cpu_duty_q15:6.1%}")
    print(f"  soft float (single)    : {result.cpu_duty_softfloat:6.1%}")
    print(f"  soft float (double)    : {result.cpu_duty_softdouble:6.1%}"
          f"   <- the paper's 40-50 % regime")
    print(f"\nRadio duty cycle: {result.radio_duty:.3%} "
          f"(paper: ~0.1 % used, 1 % budgeted)")
    print("\nPer-sample operation counts (referred to 250 Hz):")
    for name, count in result.ops_per_sample.as_dict().items():
        if count:
            print(f"  {name:7s} {count:8.1f}")


if __name__ == "__main__":
    main()
