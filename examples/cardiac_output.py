"""Stroke volume and cardiac output from the ICG (Kubicek vs
Sramek-Bernstein).

The paper's systolic time intervals (LVET, PEP) feed the classic
impedance-cardiography stroke-volume estimators it cites.  This example
computes both on a thoracic recording, shows the beat-to-beat series,
and demonstrates why the touch device needs *two* pathway calibration
factors (Z0 and dZ/dt scale differently hand-to-hand) before its
absolute SV means anything — the reason the paper reports intervals,
not volumes.

Run:  python examples/cardiac_output.py
"""

import numpy as np

from repro import (
    BeatToBeatPipeline,
    PipelineConfig,
    default_cohort,
    synthesize_recording,
)
from repro.icg import thoracic_fluid_content


def main() -> None:
    subject = default_cohort()[0]
    height_cm = subject.height_m * 100

    thoracic = synthesize_recording(subject, "thoracic", 1)
    config = PipelineConfig(height_cm=height_cm)
    result = BeatToBeatPipeline(thoracic.fs, config).process_recording(
        thoracic)

    kubicek = np.array([b.sv_kubicek_ml for b in result.beat_hemodynamics])
    sramek = np.array([b.sv_sramek_ml for b in result.beat_hemodynamics])
    co_kubicek = np.array([b.co_kubicek_l_min
                           for b in result.beat_hemodynamics])
    print(f"Thoracic measurement, {kubicek.size} beats:")
    print(f"  SV (Kubicek)          : {kubicek.mean():6.1f} +- "
          f"{kubicek.std():.1f} ml")
    print(f"  SV (Sramek-Bernstein) : {sramek.mean():6.1f} +- "
          f"{sramek.std():.1f} ml")
    print(f"  CO (Kubicek)          : {co_kubicek.mean():6.2f} L/min")
    print(f"  TFC                   : "
          f"{thoracic_fluid_content(result.z0_ohm):6.1f} /kOhm")

    print("\nBeat-to-beat series (first 8 beats):")
    print("beat   HR (bpm)   LVET (ms)   SV_k (ml)   SV_s (ml)")
    for i, beat in enumerate(result.beat_hemodynamics[:8]):
        print(f"{i + 1:4d}  {beat.hr_bpm:9.1f}  "
              f"{beat.lvet_s * 1000:9.0f}  {beat.sv_kubicek_ml:9.1f}  "
              f"{beat.sv_sramek_ml:9.1f}")

    # --- the device needs pathway calibration --------------------------
    device = synthesize_recording(subject, "device", 1)
    naive = BeatToBeatPipeline(device.fs, config).process_recording(device)
    naive_sv = np.median([b.sv_sramek_ml
                          for b in naive.beat_hemodynamics])

    calibrated_config = PipelineConfig(
        height_cm=height_cm,
        z0_calibration=(thoracic.meta["true_z0_ohm"]
                        / device.meta["true_z0_ohm"]),
        dzdt_calibration=1.0 / device.meta["cardiac_coupling"])
    calibrated = BeatToBeatPipeline(
        device.fs, calibrated_config).process_recording(device)
    calibrated_sv = np.median([b.sv_sramek_ml
                               for b in calibrated.beat_hemodynamics])

    print("\nTouch-device stroke volume (Sramek-Bernstein, median):")
    print(f"  uncalibrated : {naive_sv:8.1f} ml   "
          f"(hand-to-hand Z0 ~17x, dZ/dt ~0.3x thoracic)")
    print(f"  calibrated   : {calibrated_sv:8.1f} ml   "
          f"(after separate Z0 and dZ/dt pathway factors)")
    print("\nSystolic time intervals need no such calibration — that is")
    print("why the paper reports LVET/PEP from the touch device, not SV:")
    print(f"  device LVET {naive.mean_lvet_s * 1000:.0f} ms vs thoracic "
          f"{result.mean_lvet_s * 1000:.0f} ms;  device PEP "
          f"{naive.mean_pep_s * 1000:.0f} ms vs thoracic "
          f"{result.mean_pep_s * 1000:.0f} ms")


if __name__ == "__main__":
    main()
