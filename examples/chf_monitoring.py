"""CHF decompensation monitoring — the paper's motivating use case.

The introduction argues that weight gain precedes CHF hospitalisation
unreliably and that hemodynamic parameters are the better early
signal.  This example simulates a 40-day home-monitoring course in
which thoracic fluid starts accumulating on day 20, runs the
multi-parameter ICG alert alongside the guideline weight-gain rule,
and prints the head-to-head alert timeline.

Run:  python examples/chf_monitoring.py
"""

import numpy as np

from repro import default_cohort
from repro.monitoring import (
    ChfMonitor,
    DecompensationScenario,
    WeightMonitor,
    simulate_decompensation_course,
    theil_sen_slope,
)


def main() -> None:
    subject = default_cohort()[3]   # the older, heavier subject
    scenario = DecompensationScenario(n_days=40, onset_day=20,
                                      ramp_days=10)
    rng = np.random.default_rng(42)
    course = simulate_decompensation_course(subject, scenario, rng)

    print(f"Subject {subject.subject_id}: 40 daily self-measurements, "
          f"fluid accumulation starts day {scenario.onset_day}\n")

    chf = ChfMonitor()
    weight = WeightMonitor()
    chf_alert_day = None
    weight_alert_day = None
    print("day   TFC(/kOhm)  LVET(ms)  HR(bpm)  weight(kg)   risk")
    for measurement in course:
        risk = chf.update(measurement)
        weight_fired = weight.update(measurement)
        if chf.alert and chf_alert_day is None:
            chf_alert_day = measurement.day
        if weight_fired and weight_alert_day is None:
            weight_alert_day = measurement.day
        if measurement.day % 4 == 0 or measurement.day in (
                chf_alert_day, weight_alert_day):
            marker = ""
            if measurement.day == chf_alert_day:
                marker += "  <- ICG ALERT"
            if measurement.day == weight_alert_day:
                marker += "  <- weight alert"
            print(f"{measurement.day:3d}  {measurement.tfc:10.2f}  "
                  f"{measurement.lvet_s * 1000:8.0f}  "
                  f"{measurement.hr_bpm:7.0f}  "
                  f"{measurement.weight_kg:10.1f}  {risk:5.1f}{marker}")

    print(f"\nFluid accumulation onset : day {scenario.onset_day}")
    print(f"ICG multi-parameter alert: day {chf_alert_day} "
          f"({chf_alert_day - scenario.onset_day} days after onset)")
    if weight_alert_day is not None:
        print(f"Weight-gain rule (2 kg/7d): day {weight_alert_day} "
              f"({weight_alert_day - chf_alert_day} days later)")
    else:
        print("Weight-gain rule (2 kg/7d): never fired")

    tfc_series = [m.tfc for m in course]
    days = [m.day for m in course]
    early = slice(0, scenario.onset_day)
    late = slice(scenario.onset_day, len(course))
    print("\nTheil-Sen TFC slope (robust trend):")
    print(f"  before onset: "
          f"{theil_sen_slope(days[early], tfc_series[early]):+.4f} /kOhm/day")
    print(f"  after onset : "
          f"{theil_sen_slope(days[late], tfc_series[late]):+.4f} /kOhm/day")


if __name__ == "__main__":
    main()
