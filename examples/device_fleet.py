"""Streaming ingest demo: a simulated fleet of touch devices.

The paper's device measures one subject; a deployed service ingests
thousands concurrently.  This example simulates that shape end to end:

1. a :class:`~repro.ingest.fleet.DeviceFleet` of six touch devices —
   different subjects, arm positions and start offsets — streams its
   measurements as 1.5 s chunks interleaved in arrival order;
2. the chunks flow through a small bounded work queue, so the
   producer feels backpressure whenever analysis falls behind;
3. a :class:`~repro.ingest.streaming.StreamingExecutor` conditions
   each chunk causally as it lands (the live preview a device UI
   would show) and, when a session's trailer arrives, runs the full
   offline chain — producing exactly the result a batch run over the
   same recordings yields, per payload: Z0, LVET, PEP, HR.

Run:  PYTHONPATH=src python examples/device_fleet.py
"""

from repro.core import process_batch
from repro.ingest import DeviceFleet, FleetConfig, StreamingExecutor


def main() -> None:
    """Stream a six-device fleet and compare with the offline batch."""
    fleet = DeviceFleet(FleetConfig(n_devices=6, duration_s=12.0,
                                    chunk_s=1.5, stagger_s=4.0,
                                    seed=2016))
    executor = StreamingExecutor(n_workers=2, max_chunks=16)

    print("Streaming 6 simulated touch devices (12 s each, 1.5 s "
          "chunks, queue bound 16 chunks)")
    results = executor.run(fleet)

    print("\nPer-session payloads (arrival-ordered finalisation):")
    for session_id in sorted(results):
        session = results[session_id]
        meta = session.recording.meta
        payload = session.result.summary()
        print(f"  {session_id}  subject {int(meta['subject_id'])} "
              f"pos {int(meta['position'])}: "
              f"Z0 {payload['z0_ohm']:6.1f} ohm, "
              f"LVET {payload['lvet_s'] * 1000:4.0f} ms, "
              f"PEP {payload['pep_s'] * 1000:3.0f} ms, "
              f"HR {payload['hr_bpm']:5.1f} bpm "
              f"[{session.n_chunks} chunks, arrived "
              f"{session.first_arrival_s:5.2f}-"
              f"{session.last_arrival_s:5.2f} s]")

    stats = executor.last_queue_stats.as_dict()
    print(f"\nQueue statistics: {stats['total_put']} chunks, peak "
          f"depth {stats['peak_depth']}, peak buffer "
          f"{stats['peak_bytes'] / 1024:.1f} KiB, "
          f"{stats['blocked_puts']} backpressure stalls")

    # The streaming path is pinned to the offline executor: same
    # recordings through process_batch give the same bits.
    offline = process_batch([fleet.synthesize(d) for d in fleet.devices])
    agree = all(
        results[d.session_id].result.z0_ohm == off.z0_ohm
        and results[d.session_id].result.hr_bpm == off.hr_bpm
        for d, off in zip(fleet.devices, offline)
    )
    print(f"Streaming vs offline batch parity: "
          f"{'bit-identical' if agree else 'MISMATCH'}")


if __name__ == "__main__":
    main()
