"""Arm-position sensitivity: a single-subject version of Section V.

Reproduces, for one subject, the paper's position experiment: touch
measurements in the three arm positions at the four injection
frequencies, compared against the traditional thoracic reference.
Prints the measured mean Z0 per position/frequency (Fig 7), the
relative position errors of equations (1)-(3) (Fig 8), and the
device-vs-thoracic morphology correlation (Tables II-IV).

Run:  python examples/position_study.py
"""

import numpy as np

from repro import SynthesisConfig, default_cohort, synthesize_recording
from repro.bioimpedance import pearson_correlation, position_relative_errors
from repro.ecg import detect_r_peaks, preprocess_ecg
from repro.icg import ensemble_average, icg_from_impedance

FREQUENCIES_HZ = (2_000.0, 10_000.0, 50_000.0, 100_000.0)
POSITIONS = (1, 2, 3)


def ensemble_beat(recording):
    """Ensemble-averaged conditioned ICG beat of one recording."""
    fs = recording.fs
    filtered = preprocess_ecg(recording.channel("ecg"), fs)
    r_peaks = detect_r_peaks(filtered, fs)
    icg = icg_from_impedance(recording.channel("z"), fs)
    return ensemble_average(icg, fs, r_peaks).waveform


def main() -> None:
    subject = default_cohort()[2]   # the best-contact subject
    print(f"Subject {subject.subject_id}, contact quality "
          f"{subject.contact_quality:.2f}\n")

    # Thoracic references, one per frequency.
    thoracic = {}
    for freq in FREQUENCIES_HZ:
        config = SynthesisConfig(injection_frequency_hz=freq)
        thoracic[freq] = synthesize_recording(subject, "thoracic", 1,
                                              config)

    # Device recordings: positions x frequencies.
    device = {}
    for position in POSITIONS:
        for freq in FREQUENCIES_HZ:
            config = SynthesisConfig(injection_frequency_hz=freq)
            device[(position, freq)] = synthesize_recording(
                subject, "device", position, config)

    print("Mean measured Z0 (ohm) per position and frequency (cf. Fig 7):")
    header = "f (kHz)  " + "".join(f"  pos {p}   " for p in POSITIONS)
    print(header)
    for freq in FREQUENCIES_HZ:
        row = f"{freq / 1000:7.0f}  "
        for position in POSITIONS:
            z = device[(position, freq)].channel("z")
            row += f"{np.mean(z):8.1f} "
        print(row)
    print("-> Z0 rises to 10 kHz then falls, in every position.\n")

    print("Relative position errors (equations (1)-(3), cf. Fig 8):")
    for freq in FREQUENCIES_HZ:
        mean_z = {p: float(np.mean(device[(p, freq)].channel("z")))
                  for p in POSITIONS}
        errors = position_relative_errors(mean_z)
        print(f"{freq / 1000:5.0f} kHz:  "
              + "  ".join(f"{name}={value * 100:+5.1f}%"
                          for name, value in errors.items()))
    print("-> e21 largest, e31 smallest, all below 20 %.\n")

    print("Device-vs-thoracic ensemble-beat correlation (cf. Tables "
          "II-IV):")
    for position in POSITIONS:
        values = []
        for freq in FREQUENCIES_HZ:
            values.append(pearson_correlation(
                ensemble_beat(device[(position, freq)]),
                ensemble_beat(thoracic[freq])))
        print(f"position {position}: r = {np.mean(values):.4f} "
              f"(per-frequency: "
              + ", ".join(f"{v:.3f}" for v in values) + ")")


if __name__ == "__main__":
    main()
