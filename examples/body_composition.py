"""Body composition from the device's multi-frequency sweep.

The paper's Section IV-B explains why multi-frequency measurement
matters: below ~50 kHz the injected current stays extracellular, above
it crosses cell membranes.  That physics is exactly what classic
bioimpedance analysis (BIA) exploits — so the touch device's 2-100 kHz
sweep yields body composition for free.  This example measures one
subject at 2 kHz and 100 kHz, divides out the instrument response, and
estimates total body water, the ECW/ICW split, fat-free and fat mass.

Run:  python examples/body_composition.py
"""

import numpy as np

from repro.bioimpedance import BodyComposition, InstrumentResponse
from repro.synth import SynthesisConfig, default_cohort, synthesize_recording


def measured_tissue_resistance(subject, frequency_hz: float) -> float:
    """One device measurement -> gain-corrected tissue resistance."""
    config = SynthesisConfig(duration_s=15.0,
                             injection_frequency_hz=frequency_hz)
    recording = synthesize_recording(subject, "device", 1, config)
    gain = float(InstrumentResponse().gain(frequency_hz))
    return float(np.mean(recording.channel("z"))) / gain


def main() -> None:
    for subject in default_cohort():
        r_low = measured_tissue_resistance(subject, 2_000.0)
        r_high = measured_tissue_resistance(subject, 100_000.0)
        body = BodyComposition.from_multifrequency(
            height_cm=subject.height_m * 100.0,
            weight_kg=subject.weight_kg,
            r_low_ohm=r_low, r_high_ohm=r_high, sex="M")
        true_fat = subject.body_fat_fraction
        print(f"Subject {subject.subject_id} "
              f"({subject.height_m:.2f} m, {subject.weight_kg:.0f} kg, "
              f"true fat {true_fat:.0%}):")
        print(f"  R(2 kHz) = {r_low:6.1f} ohm, R(100 kHz) = "
              f"{r_high:6.1f} ohm")
        print(f"  TBW {body.tbw_l:5.1f} L   FFM {body.ffm_kg:5.1f} kg   "
              f"fat {body.fat_kg:5.1f} kg ({body.fat_fraction:.0%})")
        print(f"  ECW fraction {body.compartments.ecw_fraction:.0%} "
              f"(fluid-status index for CHF follow-up)\n")


if __name__ == "__main__":
    main()
