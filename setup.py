"""Legacy shim so editable installs work without the `wheel` package.

All metadata lives in pyproject.toml; this file only enables
``pip install -e .`` on environments whose setuptools lacks
``bdist_wheel`` (no network access to fetch it).
"""

from setuptools import setup

setup()
