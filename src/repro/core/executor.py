"""Batch/cohort execution of the beat-to-beat pipeline.

The paper's evaluation is inherently a batch workload: five subjects
times three positions times four injection frequencies, plus thoracic
references.  :func:`process_batch` runs the stage graph over many
recordings, sharing one filter-design cache (so the cohort pays each
design exactly once) and optionally fanning work out over a pool of
workers.  Results are returned in input order and are bit-identical to
a serial ``process_recording`` loop — every stage is a pure function
of ``(signals, fs, config)``, so execution order cannot change a
single sample.

Two pool backends are available.  ``backend="thread"`` shares one
design cache between workers and costs nothing to start, but the
pure-python portions of the chain hold the GIL, so it mainly overlaps
the numpy-released sections.  ``backend="process"`` fans out over a
``ProcessPoolExecutor`` and buys real multi-core scaling.  The process
backend is organised as a small work-queue: the item list is split
into contiguous *job batches* (:func:`job_batches`), the shared
callable — typically a ``partial`` closing over the pipeline config —
is shipped **once per worker** through the pool initializer rather
than re-pickled with every job, and each batch returns its results
together with a snapshot of the worker's process-local cache counters.
:func:`last_ipc_stats` reports what one fan-out actually shipped
(checked by the executor tests), and
:func:`process_worker_cache_stats` exposes the per-worker design/DSP
cache rebuild counts that ``repro cache-stats --backend process``
renders.

:func:`parallel_map` is the underlying ordered fan-out helper; the
study runner uses it to parallelise synthesis + analysis jobs that do
not reduce to a plain pipeline call.
"""

from __future__ import annotations

import atexit
import contextlib
import hashlib
import os
import pickle
import sys
import time
import traceback
import warnings
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, fields, replace
from functools import partial
from typing import Callable, Optional, Sequence

import numpy as np

from repro.core.cache import (
    FilterDesignCache,
    cache_statistics,
    default_design_cache,
)
from repro.core.config import PipelineConfig
from repro.core.pipeline import BeatToBeatPipeline
from repro.dsp import calibration as _calibration
from repro.core.shm import (
    RecordingDescriptor,
    ShmArena,
    ShmDescriptor,
    aligned_nbytes,
    attach_view,
    detach,
    publish_recording,
    recording_from_descriptor,
    recording_nbytes,
)
from repro.errors import ConfigurationError, PoisonJobError

__all__ = ["process_batch", "parallel_map", "resolve_n_jobs",
           "resolve_backend", "will_parallelize", "BACKENDS",
           "BATCH_BACKENDS", "job_batches", "IpcStats", "last_ipc_stats",
           "process_worker_cache_stats", "process_recording_job",
           "ShmJob", "process_shm_job", "resolve_shm_result",
           "RESULT_ARRAY_FIELDS", "persistent_pool_stats",
           "shutdown_persistent_pool", "persistent_process_pool",
           "PoisonJob", "raise_if_poison", "POISON_ATTEMPTS",
           "RETRY_BACKOFF_S", "RETRY_BACKOFF_CAP_S"]

#: Supported fan-out backends.
BACKENDS = ("thread", "process")

#: Backends :func:`process_batch` accepts: the fan-out pair plus the
#: single-process cohort-batched kernel tier (:mod:`repro.core.cohort`).
BATCH_BACKENDS = BACKENDS + ("cohort",)

#: Contiguous batches handed to each process worker per fan-out —
#: more than one per worker for mild load balancing, few enough that
#: per-submission IPC stays negligible.
BATCHES_PER_WORKER = 2


def resolve_n_jobs(n_jobs: Optional[int]) -> int:
    """Normalise an ``n_jobs`` request to a concrete worker count.

    ``None`` or ``-1`` mean "one worker per CPU"; anything below one is
    rejected.
    """
    if n_jobs is None or n_jobs == -1:
        return os.cpu_count() or 1
    if not isinstance(n_jobs, int) or n_jobs < 1:
        raise ConfigurationError(
            f"n_jobs must be a positive integer, -1 or None, "
            f"got {n_jobs!r}")
    return n_jobs


def resolve_backend(backend: Optional[str]) -> str:
    """Normalise a backend request (``None`` means ``"thread"``)."""
    if backend is None:
        return "thread"
    if backend not in BACKENDS:
        raise ConfigurationError(
            f"backend must be one of {BACKENDS}, got {backend!r}")
    return backend


def will_parallelize(n_jobs: Optional[int], n_items: int) -> bool:
    """Whether a fan-out call actually spawns a pool.

    The single definition of the serial-fallback predicate —
    :func:`parallel_map`, :func:`process_batch` and the study runner
    all consult it, so "will this fork" can never drift between them.
    """
    return resolve_n_jobs(n_jobs) > 1 and n_items > 1


def job_batches(items: Sequence, n_batches: int) -> list:
    """Split ``items`` into ``<= n_batches`` contiguous, order-
    preserving batches of near-equal size (never empty).

    Concatenating the batches reproduces ``items`` exactly — the
    property that keeps batched fan-out bit-identical to the serial
    loop.  The shard partitioner in :mod:`repro.experiments.sharding`
    is the cross-machine sibling of this single-machine splitter.
    """
    items = list(items)
    if n_batches < 1:
        raise ConfigurationError("n_batches must be >= 1")
    n_batches = min(n_batches, len(items))
    if n_batches == 0:
        return []
    size, remainder = divmod(len(items), n_batches)
    batches, start = [], 0
    for index in range(n_batches):
        stop = start + size + (1 if index < remainder else 0)
        batches.append(items[start:stop])
        start = stop
    return batches


# -- process-backend work queue ------------------------------------------

#: Worker-side state: the shared callable memoized by content token,
#: plus the last-installed calibration snapshot.  With the persistent
#: pool, workers outlive fan-outs — the memo is what lets a warm
#: worker skip re-unpickling a callable it already holds.
_WORKER_SHARED: dict = {}

#: Process-local pipeline memo for the process backend: one pipeline
#: per ``(fs, config)`` per worker, each backed by the worker's own
#: process-wide design cache.
_WORKER_PIPELINES: dict = {}


def _install_worker_state(token: str, shared: bytes,
                          calibration: dict) -> Callable:
    """Adopt a submission header in a worker; returns the callable.

    The callable travels pre-pickled so the parent can meter exactly
    what crosses the boundary; a warm worker that already holds this
    ``token`` skips the unpickle.  The parent's FFT-crossover
    calibration snapshot is re-installed only when it changed since
    this worker's last job, so parent and worker can never disagree on
    a convolution path (which would break the bit-identical
    batch/serial contract) and a warm pool never reinstalls a
    snapshot it already runs.
    """
    if _WORKER_SHARED.get("token") != token:
        _WORKER_SHARED["fn"] = pickle.loads(shared)
        _WORKER_SHARED["token"] = token
    if _WORKER_SHARED.get("calibration") != calibration:
        _calibration.install_snapshot(calibration)
        _WORKER_SHARED["calibration"] = calibration
    return _WORKER_SHARED["fn"]


def _run_shared_batch(header: tuple, payload: bytes) -> tuple:
    """Worker body: apply the shared callable to one job batch.

    The batch arrives pre-pickled — the parent serialises each batch
    exactly once, both to meter the IPC honestly and to ship it (the
    same scheme as the header's shared callable).  Returns the batch
    results plus a snapshot of this worker's process-local cache
    counters — the statistics are otherwise invisible to the parent
    process.
    """
    fn = _install_worker_state(*header)
    results = [fn(item) for item in pickle.loads(payload)]
    return results, (os.getpid(), cache_statistics())


def _run_direct_job(calibration: dict, fn: Callable, *args):
    """Worker body for direct (non-batched) submissions through the
    persistent pool — e.g. the streaming executor's per-session
    finalize jobs.  Keeps the calibration contract of
    :func:`_install_worker_state` without the shared-callable memo."""
    if _WORKER_SHARED.get("calibration") != calibration:
        _calibration.install_snapshot(calibration)
        _WORKER_SHARED["calibration"] = calibration
    return fn(*args)


@dataclass(frozen=True)
class IpcStats:
    """What one process-backend fan-out shipped, and over which plane.

    ``shared_fn_bytes`` counts the shared callable's pickle, and
    ``shared_copies`` how many of those pickles actually crossed the
    pipe: one per *submission* under the persistent-pool header
    protocol (each batch carries the callable so any warm worker can
    serve it; workers memoize by content token), one per worker under
    the legacy initializer scheme (``shared_copies=0`` means "per
    worker" for backward compatibility).  Either way the pre-refactor
    cost was ``n_items * shared_fn_bytes``.  ``payload_bytes`` is the
    pickled size of every job batch actually submitted — under the
    shared-memory data plane these are *descriptors*, not arrays.
    ``data_plane_bytes`` is the raw array payload that travelled
    through shared memory instead of the pipe, and ``n_descriptors``
    how many array handles replaced it; both are zero for fan-outs
    that never touch the data plane (non-recording items).
    """

    n_items: int
    n_submissions: int
    n_workers: int
    shared_fn_bytes: int
    payload_bytes: int
    data_plane_bytes: int = 0
    n_descriptors: int = 0
    shared_copies: int = 0

    @property
    def shipped_bytes(self) -> int:
        """Pickled bytes over the pipe: shared-callable copies + job
        batches (array payloads excluded — they ride the data
        plane)."""
        copies = self.shared_copies or self.n_workers
        return copies * self.shared_fn_bytes + self.payload_bytes

    @property
    def legacy_bytes(self) -> int:
        """What the per-job pickle scheme would have shipped for the
        same work: the shared callable re-pickled with every item plus
        every array payload through the pipe."""
        return (self.n_items * self.shared_fn_bytes + self.payload_bytes
                + self.data_plane_bytes)

    @property
    def descriptor_collapse(self) -> float:
        """How many raw array bytes each pickled payload byte stands
        in for (>= 1 means the data plane is carrying the weight)."""
        return self.data_plane_bytes / max(self.payload_bytes, 1)


_LAST_IPC_STATS: list = [None]
_LAST_WORKER_CACHE_STATS: dict = {}


def last_ipc_stats() -> Optional[IpcStats]:
    """IPC accounting of the most recent process-backend fan-out in
    this process (``None`` before any has run)."""
    return _LAST_IPC_STATS[0]


def process_worker_cache_stats() -> dict:
    """Per-worker cache counters of the most recent process-backend
    fan-out: ``{pid: {"designs": {...}, "kernels": {...}}}``.

    Process workers keep process-local caches the parent cannot see;
    each job batch returns a snapshot, and the latest snapshot per
    worker wins.  This is what ``repro cache-stats --backend process``
    reports (the per-worker ``misses`` are the rebuild counts).
    """
    return dict(_LAST_WORKER_CACHE_STATS)


# -- the warm persistent pool --------------------------------------------

#: Environment toggle for the persistent pool (default on): set to
#: ``0``/``false``/``off`` to recreate a pool per fan-out (the
#: pre-warm-pool behaviour, kept for debugging fork-state issues).
PERSISTENT_POOL_ENV = "REPRO_PERSISTENT_POOL"

#: The process-wide warm pool: ``[pool, n_workers]`` or ``None``.
#: Reused across fan-outs so workers keep their design caches,
#: pipeline memos, shared-callable memo and calibration snapshot warm
#: — the second fan-out of a session pays zero fork/spawn latency.
_PERSISTENT_POOL: list = [None]
_POOL_COUNTERS = {"created": 0, "reused": 0}


def _persistent_pool_enabled() -> bool:
    value = os.environ.get(PERSISTENT_POOL_ENV, "1").strip().lower()
    return value not in ("0", "false", "no", "off")


def _acquire_persistent_pool(n_workers: int) -> ProcessPoolExecutor:
    """The warm pool at exactly ``n_workers``, creating or resizing.

    Reuse requires a width match: handing a wider warm pool to a
    narrower request would change which workers see which jobs (and
    the reported worker counts), so a mismatch tears the pool down
    and builds the requested width.
    """
    entry = _PERSISTENT_POOL[0]
    if entry is not None and entry[1] == n_workers:
        _POOL_COUNTERS["reused"] += 1
        return entry[0]
    if entry is not None:
        entry[0].shutdown(wait=True)
        _PERSISTENT_POOL[0] = None
    pool = ProcessPoolExecutor(max_workers=n_workers)
    _PERSISTENT_POOL[0] = [pool, n_workers]
    _POOL_COUNTERS["created"] += 1
    return pool


def _discard_persistent_pool(wait: bool = True) -> None:
    entry = _PERSISTENT_POOL[0]
    if entry is not None:
        _PERSISTENT_POOL[0] = None
        entry[0].shutdown(wait=wait)


def shutdown_persistent_pool() -> None:
    """Tear down the warm pool (idempotent).

    Registered at interpreter exit; also the explicit lifecycle hook
    for hosts that must bound worker lifetimes themselves.  The next
    process fan-out simply builds a fresh pool.
    """
    _discard_persistent_pool(wait=True)


atexit.register(shutdown_persistent_pool)


def persistent_pool_stats() -> dict:
    """Lifecycle counters of the warm process pool.

    ``created``/``reused`` count fan-outs that built a fresh pool vs
    re-entered the warm one (process-wide, monotonic); ``n_workers``
    and ``pids`` describe the pool currently alive (``None``/empty
    when none is).  ``repro cache-stats --backend process`` renders
    these next to the per-worker cache counters.
    """
    entry = _PERSISTENT_POOL[0]
    pids: list = []
    n_workers = None
    if entry is not None:
        n_workers = entry[1]
        pids = sorted(getattr(entry[0], "_processes", {}) or {})
    return {"enabled": _persistent_pool_enabled(),
            "created": _POOL_COUNTERS["created"],
            "reused": _POOL_COUNTERS["reused"],
            "n_workers": n_workers,
            "pids": pids}


@contextlib.contextmanager
def persistent_process_pool(n_workers: int):
    """A process pool for direct submissions, warm when enabled.

    Yields an object with ``submit(fn, *args)`` routing through the
    warm pool (calibration snapshot piggybacked on every job, workers
    install it only on change) — the streaming executor's finalize
    fan-out uses this so back-to-back ingest runs reuse one worker
    fleet.  Exiting the context does *not* tear the warm pool down;
    with the pool disabled via :data:`PERSISTENT_POOL_ENV`, an
    ephemeral pool is created and shut down on exit instead.
    """
    if not _persistent_pool_enabled():
        with ProcessPoolExecutor(
                max_workers=n_workers,
                initializer=_calibration.install_snapshot,
                initargs=(_calibration.snapshot(),)) as pool:
            yield pool
        return
    pool = _acquire_persistent_pool(n_workers)
    try:
        yield _WarmPoolHandle(pool)
    except BrokenProcessPool:
        _discard_persistent_pool(wait=False)
        raise


class _WarmPoolHandle:
    """Submission facade over the warm pool: every job carries the
    parent's calibration snapshot (installed worker-side only when it
    differs from the last one)."""

    def __init__(self, pool: ProcessPoolExecutor) -> None:
        self._pool = pool

    def submit(self, fn: Callable, *args):
        return self._pool.submit(_run_direct_job,
                                 _calibration.snapshot(), fn, *args)


def _submit_shared_batches(pool, header: tuple, payloads: list) -> list:
    """Submit every pre-pickled batch; returns worker outputs in
    submission order."""
    futures = [pool.submit(_run_shared_batch, header, payload)
               for payload in payloads]
    return [future.result() for future in futures]


# -- crash tolerance ------------------------------------------------------

#: A job is quarantined as poison after this many failed attempts —
#: an attempt fails when the pool broke while the job was in flight.
#: The first failure is collateral (a whole broken fan-out cannot say
#: which job killed the worker); the second is an individually
#: attributed worker death on the rebuilt pool.
POISON_ATTEMPTS = 2

#: Capped exponential backoff between retry submissions after a pool
#: break — gives a transiently starved host (OOM killer sweeps) room
#: to recover before the retry.
RETRY_BACKOFF_S = 0.05
RETRY_BACKOFF_CAP_S = 1.0


@dataclass(frozen=True)
class PoisonJob:
    """Structured stand-in for a job that repeatedly killed its worker.

    A poisoned job occupies its input-order slot in the fan-out's
    result list instead of raising, so one pathological job can never
    take down the surviving jobs' results.  Callers that need the
    old throwing behaviour resolve entries through
    :func:`raise_if_poison`.
    """

    #: Input-order position of the job in its fan-out.
    index: int
    #: Failed attempts when the job was quarantined.
    attempts: int
    #: Human-readable account of the worker deaths.
    reason: str


def raise_if_poison(result):
    """Pass a fan-out result through, raising
    :class:`~repro.errors.PoisonJobError` when it is a
    :class:`PoisonJob` — the opt-in bridge back to exception-style
    handling for callers that cannot use a partial batch."""
    if isinstance(result, PoisonJob):
        raise PoisonJobError(
            f"job {result.index} quarantined as poison after "
            f"{result.attempts} failed attempts: {result.reason}")
    return result


def _run_batches_crash_tolerant(fn: Callable, items: list,
                                batches: list, header: tuple,
                                payloads: list, n_workers: int) -> tuple:
    """Run every batch on the warm pool, surviving worker death.

    Returns ``(item_results, stats)`` where ``item_results`` maps the
    global item index to its result (a :class:`PoisonJob` for
    quarantined jobs) and ``stats`` is the list of per-worker cache
    snapshots collected along the way.

    The recovery ladder, in order:

    1. **Fast path** — all batches on the warm pool; no break, no cost.
    2. **Rebuild once** — a break marks one collateral failed attempt
       against every job whose batch had not finished, then the jobs
       are probed one at a time on a fresh pool (sequentially, so a
       second death is attributed to exactly one job), with capped
       exponential backoff between submissions after a break.
    3. **Poison + serial degrade** — a job individually implicated in
       a worker death has :data:`POISON_ATTEMPTS` failures: it is
       quarantined as a :class:`PoisonJob` (never run in-parent — it
       provably kills its host process).  The pool has now broken
       twice, so the remaining unprobed jobs run serially in the
       parent with a loud :class:`RuntimeWarning` instead of betting
       on a third pool.
    """
    offsets = []
    start = 0
    for batch in batches:
        offsets.append(start)
        start += len(batch)
    item_results: dict = {}
    stats: list = []
    pending: list = []
    pool = _acquire_persistent_pool(n_workers)
    broke = False
    futures = []
    try:
        for payload in payloads:
            futures.append(pool.submit(_run_shared_batch, header,
                                       payload))
    except BrokenProcessPool:
        # A pool already broken (a worker killed between fan-outs)
        # refuses the submission itself; every unsubmitted batch is
        # pending.
        broke = True
    for position, future in enumerate(futures):
        try:
            batch_results, worker_stats = future.result()
        except BrokenProcessPool:
            broke = True
            pending.extend(range(offsets[position],
                                 offsets[position]
                                 + len(batches[position])))
            continue
        for shift, result in enumerate(batch_results):
            item_results[offsets[position] + shift] = result
        stats.append(worker_stats)
    for position in range(len(futures), len(batches)):
        pending.extend(range(offsets[position],
                             offsets[position] + len(batches[position])))
    if not broke:
        return item_results, stats

    # Rebuild once; probe the survivors one at a time so a second
    # worker death names its killer.
    _discard_persistent_pool(wait=False)
    pool = _acquire_persistent_pool(n_workers)
    backoff = RETRY_BACKOFF_S
    serial = False
    remaining = list(pending)
    while remaining:
        index = remaining.pop(0)
        if not serial:
            try:
                batch_results, worker_stats = pool.submit(
                    _run_shared_batch, header,
                    pickle.dumps([items[index]])).result()
                item_results[index] = batch_results[0]
                stats.append(worker_stats)
                continue
            except BrokenProcessPool:
                item_results[index] = PoisonJob(
                    index=index, attempts=POISON_ATTEMPTS,
                    reason="worker died running this job on a "
                           "freshly rebuilt pool (and once before "
                           "in the batched fan-out)")
                _discard_persistent_pool(wait=False)
                serial = True
                if remaining:
                    warnings.warn(
                        f"process pool broke twice in one fan-out; "
                        f"running the remaining {len(remaining)} "
                        f"job(s) serially in the parent process",
                        RuntimeWarning, stacklevel=3)
                time.sleep(min(backoff, RETRY_BACKOFF_CAP_S))
                backoff *= 2
                continue
        item_results[index] = fn(items[index])
    return item_results, stats


def _parallel_map_process(fn: Callable, items: list, n_jobs: int,
                          data_plane_bytes: int = 0,
                          n_descriptors: int = 0) -> list:
    """Batched process fan-out over the warm persistent pool; records
    IPC, worker-cache and pool-lifecycle stats.

    Every submission carries a ``(token, shared_pickle, calibration)``
    header: the shared callable is pickled once parent-side, shipped
    with each batch (so any warm worker can serve any batch), and
    memoized worker-side by content token — a warm worker that ran
    the same callable last fan-out never re-unpickles it.

    Worker death never crashes the fan-out: a broken pool is rebuilt
    once and the unfinished jobs retried, a job that keeps killing
    workers comes back as a :class:`PoisonJob` in its result slot,
    and a second pool break degrades the remainder to serial
    execution (see :func:`_run_batches_crash_tolerant`).  With the
    persistent pool disabled the fan-out is single-shot, as before.

    ``data_plane_bytes``/``n_descriptors`` are accounting hints from a
    shared-memory caller: the array payload that bypassed the pipe.
    """
    n_workers = min(n_jobs, len(items))
    batches = job_batches(items, n_workers * BATCHES_PER_WORKER)
    shared = pickle.dumps(fn)
    header = (hashlib.sha1(shared).hexdigest(), shared,
              _calibration.snapshot())
    payloads = [pickle.dumps(batch) for batch in batches]
    payload_bytes = sum(len(payload) for payload in payloads)
    _LAST_WORKER_CACHE_STATS.clear()
    if _persistent_pool_enabled():
        item_results, all_stats = _run_batches_crash_tolerant(
            fn, items, batches, header, payloads, n_workers)
        results = [item_results[index] for index in range(len(items))]
        for pid, stats in all_stats:
            _LAST_WORKER_CACHE_STATS[pid] = stats
    else:
        with ProcessPoolExecutor(max_workers=n_workers) as pool:
            outputs = _submit_shared_batches(pool, header, payloads)
        results = []
        for batch_results, (pid, stats) in outputs:
            results.extend(batch_results)
            _LAST_WORKER_CACHE_STATS[pid] = stats
    _LAST_IPC_STATS[0] = IpcStats(
        n_items=len(items), n_submissions=len(batches),
        n_workers=n_workers, shared_fn_bytes=len(shared),
        payload_bytes=payload_bytes,
        data_plane_bytes=int(data_plane_bytes),
        n_descriptors=int(n_descriptors),
        shared_copies=len(batches))
    return results


def parallel_map(fn: Callable, items: Sequence,
                 n_jobs: Optional[int] = 1,
                 backend: Optional[str] = "thread") -> list:
    """``[fn(item) for item in items]``, optionally over a worker pool.

    Output order always matches input order; exceptions propagate to
    the caller exactly as in the serial loop.  ``backend="process"``
    fans out over a ``ProcessPoolExecutor`` — ``fn``, the items and
    the results must then be picklable (module-level functions or
    :func:`functools.partial` over one, not lambdas or closures).  The
    process backend ships ``fn`` once per worker via the pool
    initializer and submits contiguous job batches, so a shared config
    closed over by a ``partial`` is pickled ``n_workers`` times per
    fan-out instead of once per item (see :func:`last_ipc_stats`).
    """
    items = list(items)
    n_jobs = resolve_n_jobs(n_jobs)
    backend = resolve_backend(backend)
    if not will_parallelize(n_jobs, len(items)):
        return [fn(item) for item in items]
    if backend == "process":
        return _parallel_map_process(fn, items, n_jobs)
    with ThreadPoolExecutor(max_workers=min(n_jobs, len(items))) as pool:
        return list(pool.map(fn, items))


def process_recording_job(recording,
                          config: Optional[PipelineConfig] = None):
    """Run the full chain on one recording with a process-local
    pipeline memo (picklable — the worker body of the process backend,
    also reused by the streaming executor's finalize step)."""
    key = (float(recording.fs), config)
    pipeline = _WORKER_PIPELINES.get(key)
    if pipeline is None:
        pipeline = BeatToBeatPipeline(float(recording.fs), config)
        _WORKER_PIPELINES[key] = pipeline
    return pipeline.process_recording(recording)


# -- the shared-memory data plane ----------------------------------------

#: ``PipelineResult`` fields that are recording-length arrays — the
#: result plane pre-reserves one float64 slot per field per recording.
RESULT_ARRAY_FIELDS = ("ecg_filtered", "icg")


@dataclass(frozen=True)
class ShmJob:
    """One process-backend job by reference: the recording's
    descriptors plus pre-reserved result slots.  Pickles to a few
    hundred bytes however long the recording — this is what crosses
    the pipe instead of the arrays."""

    recording: RecordingDescriptor
    slots: dict


def swap_result_fields(result, slots: dict):
    """Write a dataclass result's array fields into their pre-reserved
    slots and return the result with those fields swapped for
    descriptors — the single definition of the result-plane hand-off
    (batch, streaming and study workers all go through it).

    A field whose array does not match its slot's shape/dtype (a
    custom stage graph changing output lengths) stays inline —
    correctness never depends on the fast path.
    """
    swapped = {}
    for name, descriptor in slots.items():
        value = getattr(result, name, None)
        if (isinstance(value, np.ndarray)
                and tuple(value.shape) == tuple(descriptor.shape)
                and value.dtype.str == descriptor.dtype):
            attach_view(descriptor, writable=True)[...] = value
            swapped[name] = descriptor
    return replace(result, **swapped) if swapped else result


def recording_job_nbytes(recording) -> int:
    """Arena bytes one recording job needs: the published inputs plus
    one float64 result slot per :data:`RESULT_ARRAY_FIELDS` entry."""
    return recording_nbytes(recording) + (
        len(RESULT_ARRAY_FIELDS) * aligned_nbytes(
            recording.n_samples * np.dtype(np.float64).itemsize))


def plan_recording_job(recording, arena: ShmArena) -> ShmJob:
    """Publish one recording and reserve its result slots — the single
    definition of a data-plane job's layout."""
    return ShmJob(
        recording=publish_recording(recording, arena),
        slots={name: arena.reserve((recording.n_samples,), np.float64)
               for name in RESULT_ARRAY_FIELDS})


def process_shm_job(job: ShmJob,
                    config: Optional[PipelineConfig] = None):
    """Worker body of the zero-copy process backend.

    Materialises the recording as shared-memory views, runs the
    pipeline, and hands the result back through
    :func:`swap_result_fields` (descriptors out, arrays in shared
    memory).

    The *entire* body — attachment included — runs under the
    ``finally`` detach: a job that raises anywhere (a partially
    attached recording, a pipeline failure) still leaves the worker
    with zero lingering ``/dev/shm`` mappings, pinned by the shm leak
    test.
    """
    recording = None
    try:
        recording = recording_from_descriptor(job.recording)
        result = process_recording_job(recording, config)
        return swap_result_fields(result, job.slots)
    finally:
        # Drop this job's mappings: long-lived pools (the streaming
        # finalizer runs one arena per *session*) must not accumulate
        # a mapping per processed job — re-attaching within a fan-out
        # is one cheap mmap, an unreclaimable segment per session is
        # an unbounded leak.  The recording and its views are dead by
        # now; detach() refuses (and defers to GC) if any were not.
        del recording
        # A propagating exception's traceback pins the unwound frames
        # — and with them the shared-memory views those frames held —
        # which would turn detach() into the deferred-GC path.  Clear
        # the dead frames so the mappings really close here.
        exc = sys.exc_info()[1]
        if exc is not None:
            traceback.clear_frames(exc.__traceback__)
        blocks = {d.block for d in job.recording.signals.values()}
        blocks |= {d.block for d in job.recording.annotations.values()}
        blocks |= {d.block for d in job.slots.values()}
        for block in blocks:
            detach(block)


def resolve_shm_result(result, arena: ShmArena):
    """Parent-side counterpart of :func:`process_shm_job`: swap every
    :class:`~repro.core.shm.ShmDescriptor` field of a dataclass result
    back to a zero-copy (read-only) view of the arena."""
    swapped = {
        f.name: arena.view(getattr(result, f.name))
        for f in fields(result)
        if isinstance(getattr(result, f.name), ShmDescriptor)
    }
    return replace(result, **swapped) if swapped else result


def _shm_job_plan(recordings) -> tuple:
    """Arena + descriptor jobs for a recording batch.

    Returns ``(arena, jobs, n_descriptors)``; the arena holds every
    input array plus one reserved result slot per
    :data:`RESULT_ARRAY_FIELDS` entry per recording.
    """
    arena = ShmArena(sum(recording_job_nbytes(r) for r in recordings))
    jobs = []
    n_descriptors = 0
    try:
        for recording in recordings:
            job = plan_recording_job(recording, arena)
            jobs.append(job)
            n_descriptors += (len(job.recording.signals)
                              + len(job.recording.annotations)
                              + len(job.slots))
    except Exception:
        arena.release()
        raise
    return arena, jobs, n_descriptors


def _process_batch_shm(recordings, config, n_jobs: int) -> list:
    """Zero-copy process fan-out: descriptors over the pipe,
    recordings and results through one shared-memory arena.

    When the host cannot provide the arena (e.g. a container's
    ``/dev/shm`` cap), the fan-out degrades to the pickle plane — the
    pre-PR data path — instead of failing: slower, never wrong.
    """
    try:
        arena, jobs, n_descriptors = _shm_job_plan(recordings)
    except OSError:
        return _parallel_map_process(
            partial(process_recording_job, config=config),
            recordings, n_jobs)
    try:
        results = _parallel_map_process(
            partial(process_shm_job, config=config), jobs, n_jobs,
            data_plane_bytes=arena.used, n_descriptors=n_descriptors)
        return [resolve_shm_result(result, arena) for result in results]
    finally:
        arena.release()


def process_batch(recordings, config: Optional[PipelineConfig] = None,
                  n_jobs: Optional[int] = 1,
                  cache: Optional[FilterDesignCache] = None,
                  backend: Optional[str] = "thread") -> list:
    """Run the full pipeline over many recordings.

    Parameters
    ----------
    recordings:
        Iterable of :class:`~repro.io.records.Recording` objects with
        ``ecg`` and ``z`` channels; sampling rates may differ between
        recordings (one pipeline is built per distinct rate).
    config:
        Shared stage configuration (paper defaults when omitted).
    n_jobs:
        Worker count; ``1`` runs serially, ``-1``/``None`` uses one
        per CPU.
    cache:
        Filter-design cache shared by every worker; the process-wide
        default when omitted.  Only meaningful for the thread backend
        — process workers cannot share a lock-protected cache and use
        their own process-local default instead.
    backend:
        ``"thread"`` (default), ``"process"`` or ``"cohort"``.
        Threads share one design cache but serialise the GIL-bound
        stages; processes scale with cores.  The process backend runs
        the zero-copy data plane: recordings are published into one
        shared-memory arena, jobs ship ``(block, shape, dtype,
        offset)`` descriptors (the shared callable travels with each
        batch and is memoized per worker), workers write their
        recording-length result arrays into pre-reserved slots, and
        the parent returns results whose arrays are read-only views
        of the arena — see :mod:`repro.core.shm` and
        :func:`last_ipc_stats` for the descriptor-vs-bytes
        accounting.  Process fan-outs run on the warm persistent pool
        (see :func:`persistent_pool_stats`), so consecutive batches
        reuse one worker fleet.  ``"cohort"`` runs the single-process
        cohort-batched kernel tier instead
        (:func:`repro.core.cohort.process_cohort`): recordings are
        grouped and stacked so the hot DSP chain executes as
        leading-axis kernels; ``n_jobs`` is ignored there.

    Returns the list of :class:`~repro.core.pipeline.PipelineResult`
    in input order, identical to ``[pipeline.process_recording(r) for r
    in recordings]``.
    """
    recordings = list(recordings)
    if backend == "cohort":
        from repro.core.cohort import process_cohort
        return process_cohort(recordings, config, cache=cache)
    backend = resolve_backend(backend)
    if backend == "process" and will_parallelize(n_jobs, len(recordings)):
        return _process_batch_shm(recordings, config,
                                  resolve_n_jobs(n_jobs))
    if cache is None:
        cache = default_design_cache()
    # Build pipelines up front (serially) so workers share ready-made,
    # cache-backed instances instead of racing to construct them.
    pipelines: dict = {}
    for recording in recordings:
        fs = float(recording.fs)
        if fs not in pipelines:
            pipelines[fs] = BeatToBeatPipeline(fs, config, cache=cache)
    return parallel_map(
        lambda recording: pipelines[float(recording.fs)]
        .process_recording(recording),
        recordings, n_jobs=n_jobs)
