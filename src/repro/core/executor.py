"""Batch/cohort execution of the beat-to-beat pipeline.

The paper's evaluation is inherently a batch workload: five subjects
times three positions times four injection frequencies, plus thoracic
references.  :func:`process_batch` runs the stage graph over many
recordings, sharing one filter-design cache (so the cohort pays each
design exactly once) and optionally fanning work out over a pool of
workers.  Results are returned in input order and are bit-identical to
a serial ``process_recording`` loop — every stage is a pure function
of ``(signals, fs, config)``, so execution order cannot change a
single sample.

Two pool backends are available.  ``backend="thread"`` shares one
design cache between workers and costs nothing to start, but the
pure-python portions of the chain hold the GIL, so it mainly overlaps
the numpy-released sections.  ``backend="process"`` fans out over a
``ProcessPoolExecutor`` — recordings and results are plain picklable
dataclasses — and buys real multi-core scaling; each worker process
keeps its own process-local design cache (a handful of small arrays,
rebuilt once per worker, not once per recording).

:func:`parallel_map` is the underlying ordered fan-out helper; the
study runner uses it to parallelise synthesis + analysis jobs that do
not reduce to a plain pipeline call.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from functools import partial
from typing import Callable, Optional, Sequence

from repro.core.cache import FilterDesignCache, default_design_cache
from repro.core.config import PipelineConfig
from repro.core.pipeline import BeatToBeatPipeline
from repro.errors import ConfigurationError

__all__ = ["process_batch", "parallel_map", "resolve_n_jobs",
           "resolve_backend", "will_parallelize", "BACKENDS"]

#: Supported fan-out backends.
BACKENDS = ("thread", "process")


def resolve_n_jobs(n_jobs: Optional[int]) -> int:
    """Normalise an ``n_jobs`` request to a concrete worker count.

    ``None`` or ``-1`` mean "one worker per CPU"; anything below one is
    rejected.
    """
    if n_jobs is None or n_jobs == -1:
        return os.cpu_count() or 1
    if not isinstance(n_jobs, int) or n_jobs < 1:
        raise ConfigurationError(
            f"n_jobs must be a positive integer, -1 or None, "
            f"got {n_jobs!r}")
    return n_jobs


def resolve_backend(backend: Optional[str]) -> str:
    """Normalise a backend request (``None`` means ``"thread"``)."""
    if backend is None:
        return "thread"
    if backend not in BACKENDS:
        raise ConfigurationError(
            f"backend must be one of {BACKENDS}, got {backend!r}")
    return backend


def will_parallelize(n_jobs: Optional[int], n_items: int) -> bool:
    """Whether a fan-out call actually spawns a pool.

    The single definition of the serial-fallback predicate —
    :func:`parallel_map`, :func:`process_batch` and the study runner
    all consult it, so "will this fork" can never drift between them.
    """
    return resolve_n_jobs(n_jobs) > 1 and n_items > 1


def parallel_map(fn: Callable, items: Sequence,
                 n_jobs: Optional[int] = 1,
                 backend: Optional[str] = "thread") -> list:
    """``[fn(item) for item in items]``, optionally over a worker pool.

    Output order always matches input order; exceptions propagate to
    the caller exactly as in the serial loop.  ``backend="process"``
    fans out over a ``ProcessPoolExecutor`` — ``fn``, the items and
    the results must then be picklable (module-level functions or
    :func:`functools.partial` over one, not lambdas or closures).
    """
    items = list(items)
    n_jobs = resolve_n_jobs(n_jobs)
    backend = resolve_backend(backend)
    if not will_parallelize(n_jobs, len(items)):
        return [fn(item) for item in items]
    pool_cls = (ProcessPoolExecutor if backend == "process"
                else ThreadPoolExecutor)
    with pool_cls(max_workers=min(n_jobs, len(items))) as pool:
        return list(pool.map(fn, items))


#: Process-local pipeline memo for the process backend: one pipeline
#: per ``(fs, config)`` per worker, each backed by the worker's own
#: process-wide design cache.
_WORKER_PIPELINES: dict = {}


def _process_recording_job(recording, config: Optional[PipelineConfig]):
    """Top-level worker body for ``backend="process"`` (picklable)."""
    key = (float(recording.fs), config)
    pipeline = _WORKER_PIPELINES.get(key)
    if pipeline is None:
        pipeline = BeatToBeatPipeline(float(recording.fs), config)
        _WORKER_PIPELINES[key] = pipeline
    return pipeline.process_recording(recording)


def process_batch(recordings, config: Optional[PipelineConfig] = None,
                  n_jobs: Optional[int] = 1,
                  cache: Optional[FilterDesignCache] = None,
                  backend: Optional[str] = "thread") -> list:
    """Run the full pipeline over many recordings.

    Parameters
    ----------
    recordings:
        Iterable of :class:`~repro.io.records.Recording` objects with
        ``ecg`` and ``z`` channels; sampling rates may differ between
        recordings (one pipeline is built per distinct rate).
    config:
        Shared stage configuration (paper defaults when omitted).
    n_jobs:
        Worker count; ``1`` runs serially, ``-1``/``None`` uses one
        per CPU.
    cache:
        Filter-design cache shared by every worker; the process-wide
        default when omitted.  Only meaningful for the thread backend
        — process workers cannot share a lock-protected cache and use
        their own process-local default instead.
    backend:
        ``"thread"`` (default) or ``"process"``.  Threads share one
        design cache but serialise the GIL-bound stages; processes
        scale with cores at the cost of pickling recordings/results.

    Returns the list of :class:`~repro.core.pipeline.PipelineResult`
    in input order, identical to ``[pipeline.process_recording(r) for r
    in recordings]``.
    """
    recordings = list(recordings)
    backend = resolve_backend(backend)
    if backend == "process" and will_parallelize(n_jobs, len(recordings)):
        return parallel_map(partial(_process_recording_job, config=config),
                            recordings, n_jobs=n_jobs, backend="process")
    if cache is None:
        cache = default_design_cache()
    # Build pipelines up front (serially) so workers share ready-made,
    # cache-backed instances instead of racing to construct them.
    pipelines: dict = {}
    for recording in recordings:
        fs = float(recording.fs)
        if fs not in pipelines:
            pipelines[fs] = BeatToBeatPipeline(fs, config, cache=cache)
    return parallel_map(
        lambda recording: pipelines[float(recording.fs)]
        .process_recording(recording),
        recordings, n_jobs=n_jobs)
