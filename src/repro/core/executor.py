"""Batch/cohort execution of the beat-to-beat pipeline.

The paper's evaluation is inherently a batch workload: five subjects
times three positions times four injection frequencies, plus thoracic
references.  :func:`process_batch` runs the stage graph over many
recordings, sharing one filter-design cache (so the cohort pays each
design exactly once) and optionally fanning work out over a thread
pool.  Results are returned in input order and are bit-identical to a
serial ``process_recording`` loop — every stage is a pure function of
``(signals, fs, config)``, so execution order cannot change a single
sample.

:func:`parallel_map` is the underlying ordered fan-out helper; the
study runner uses it to parallelise synthesis + analysis jobs that do
not reduce to a plain pipeline call.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Optional, Sequence

from repro.core.cache import FilterDesignCache, default_design_cache
from repro.core.config import PipelineConfig
from repro.core.pipeline import BeatToBeatPipeline
from repro.errors import ConfigurationError

__all__ = ["process_batch", "parallel_map", "resolve_n_jobs"]


def resolve_n_jobs(n_jobs: Optional[int]) -> int:
    """Normalise an ``n_jobs`` request to a concrete worker count.

    ``None`` or ``-1`` mean "one worker per CPU"; anything below one is
    rejected.
    """
    if n_jobs is None or n_jobs == -1:
        return os.cpu_count() or 1
    if not isinstance(n_jobs, int) or n_jobs < 1:
        raise ConfigurationError(
            f"n_jobs must be a positive integer, -1 or None, "
            f"got {n_jobs!r}")
    return n_jobs


def parallel_map(fn: Callable, items: Sequence,
                 n_jobs: Optional[int] = 1) -> list:
    """``[fn(item) for item in items]``, optionally over a thread pool.

    Output order always matches input order; exceptions propagate to
    the caller exactly as in the serial loop.
    """
    items = list(items)
    n_jobs = resolve_n_jobs(n_jobs)
    if n_jobs == 1 or len(items) <= 1:
        return [fn(item) for item in items]
    with ThreadPoolExecutor(max_workers=min(n_jobs, len(items))) as pool:
        return list(pool.map(fn, items))


def process_batch(recordings, config: Optional[PipelineConfig] = None,
                  n_jobs: Optional[int] = 1,
                  cache: Optional[FilterDesignCache] = None) -> list:
    """Run the full pipeline over many recordings.

    Parameters
    ----------
    recordings:
        Iterable of :class:`~repro.io.records.Recording` objects with
        ``ecg`` and ``z`` channels; sampling rates may differ between
        recordings (one pipeline is built per distinct rate).
    config:
        Shared stage configuration (paper defaults when omitted).
    n_jobs:
        Worker threads; ``1`` runs serially, ``-1``/``None`` uses one
        per CPU.
    cache:
        Filter-design cache shared by every worker; the process-wide
        default when omitted.

    Returns the list of :class:`~repro.core.pipeline.PipelineResult`
    in input order, identical to ``[pipeline.process_recording(r) for r
    in recordings]``.
    """
    recordings = list(recordings)
    if cache is None:
        cache = default_design_cache()
    # Build pipelines up front (serially) so workers share ready-made,
    # cache-backed instances instead of racing to construct them.
    pipelines: dict = {}
    for recording in recordings:
        fs = float(recording.fs)
        if fs not in pipelines:
            pipelines[fs] = BeatToBeatPipeline(fs, config, cache=cache)
    return parallel_map(
        lambda recording: pipelines[float(recording.fs)]
        .process_recording(recording),
        recordings, n_jobs=n_jobs)
