"""Batch/cohort execution of the beat-to-beat pipeline.

The paper's evaluation is inherently a batch workload: five subjects
times three positions times four injection frequencies, plus thoracic
references.  :func:`process_batch` runs the stage graph over many
recordings, sharing one filter-design cache (so the cohort pays each
design exactly once) and optionally fanning work out over a pool of
workers.  Results are returned in input order and are bit-identical to
a serial ``process_recording`` loop — every stage is a pure function
of ``(signals, fs, config)``, so execution order cannot change a
single sample.

Two pool backends are available.  ``backend="thread"`` shares one
design cache between workers and costs nothing to start, but the
pure-python portions of the chain hold the GIL, so it mainly overlaps
the numpy-released sections.  ``backend="process"`` fans out over a
``ProcessPoolExecutor`` and buys real multi-core scaling.  The process
backend is organised as a small work-queue: the item list is split
into contiguous *job batches* (:func:`job_batches`), the shared
callable — typically a ``partial`` closing over the pipeline config —
is shipped **once per worker** through the pool initializer rather
than re-pickled with every job, and each batch returns its results
together with a snapshot of the worker's process-local cache counters.
:func:`last_ipc_stats` reports what one fan-out actually shipped
(checked by the executor tests), and
:func:`process_worker_cache_stats` exposes the per-worker design/DSP
cache rebuild counts that ``repro cache-stats --backend process``
renders.

:func:`parallel_map` is the underlying ordered fan-out helper; the
study runner uses it to parallelise synthesis + analysis jobs that do
not reduce to a plain pipeline call.
"""

from __future__ import annotations

import os
import pickle
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from functools import partial
from typing import Callable, Optional, Sequence

from repro.core.cache import (
    FilterDesignCache,
    cache_statistics,
    default_design_cache,
)
from repro.core.config import PipelineConfig
from repro.core.pipeline import BeatToBeatPipeline
from repro.errors import ConfigurationError

__all__ = ["process_batch", "parallel_map", "resolve_n_jobs",
           "resolve_backend", "will_parallelize", "BACKENDS",
           "job_batches", "IpcStats", "last_ipc_stats",
           "process_worker_cache_stats", "process_recording_job"]

#: Supported fan-out backends.
BACKENDS = ("thread", "process")

#: Contiguous batches handed to each process worker per fan-out —
#: more than one per worker for mild load balancing, few enough that
#: per-submission IPC stays negligible.
BATCHES_PER_WORKER = 2


def resolve_n_jobs(n_jobs: Optional[int]) -> int:
    """Normalise an ``n_jobs`` request to a concrete worker count.

    ``None`` or ``-1`` mean "one worker per CPU"; anything below one is
    rejected.
    """
    if n_jobs is None or n_jobs == -1:
        return os.cpu_count() or 1
    if not isinstance(n_jobs, int) or n_jobs < 1:
        raise ConfigurationError(
            f"n_jobs must be a positive integer, -1 or None, "
            f"got {n_jobs!r}")
    return n_jobs


def resolve_backend(backend: Optional[str]) -> str:
    """Normalise a backend request (``None`` means ``"thread"``)."""
    if backend is None:
        return "thread"
    if backend not in BACKENDS:
        raise ConfigurationError(
            f"backend must be one of {BACKENDS}, got {backend!r}")
    return backend


def will_parallelize(n_jobs: Optional[int], n_items: int) -> bool:
    """Whether a fan-out call actually spawns a pool.

    The single definition of the serial-fallback predicate —
    :func:`parallel_map`, :func:`process_batch` and the study runner
    all consult it, so "will this fork" can never drift between them.
    """
    return resolve_n_jobs(n_jobs) > 1 and n_items > 1


def job_batches(items: Sequence, n_batches: int) -> list:
    """Split ``items`` into ``<= n_batches`` contiguous, order-
    preserving batches of near-equal size (never empty).

    Concatenating the batches reproduces ``items`` exactly — the
    property that keeps batched fan-out bit-identical to the serial
    loop.  The shard partitioner in :mod:`repro.experiments.sharding`
    is the cross-machine sibling of this single-machine splitter.
    """
    items = list(items)
    if n_batches < 1:
        raise ConfigurationError("n_batches must be >= 1")
    n_batches = min(n_batches, len(items))
    if n_batches == 0:
        return []
    size, remainder = divmod(len(items), n_batches)
    batches, start = [], 0
    for index in range(n_batches):
        stop = start + size + (1 if index < remainder else 0)
        batches.append(items[start:stop])
        start = stop
    return batches


# -- process-backend work queue ------------------------------------------

#: Worker-side state installed by the pool initializer: the shared
#: callable arrives once per worker, jobs ship only their items.
_WORKER_SHARED: dict = {}

#: Process-local pipeline memo for the process backend: one pipeline
#: per ``(fs, config)`` per worker, each backed by the worker's own
#: process-wide design cache.
_WORKER_PIPELINES: dict = {}


def _pool_initializer(payload: bytes) -> None:
    """Install the shared callable in a worker (runs once per worker).

    The callable travels pre-pickled so the parent can meter exactly
    what crosses the boundary; unpickling here is what the per-job
    ``partial`` scheme used to pay on every single job.
    """
    _WORKER_SHARED["fn"] = pickle.loads(payload)


def _run_shared_batch(payload: bytes) -> tuple:
    """Worker body: apply the shared callable to one job batch.

    The batch arrives pre-pickled — the parent serialises each batch
    exactly once, both to meter the IPC honestly and to ship it (the
    same scheme as the initializer's shared callable).  Returns the
    batch results plus a snapshot of this worker's process-local
    cache counters — the statistics are otherwise invisible to the
    parent process.
    """
    fn = _WORKER_SHARED["fn"]
    results = [fn(item) for item in pickle.loads(payload)]
    return results, (os.getpid(), cache_statistics())


@dataclass(frozen=True)
class IpcStats:
    """What one process-backend fan-out shipped over the pipe.

    ``shared_fn_bytes`` counts the shared callable's pickle — paid
    once per *worker* via the initializer, not once per job (the
    pre-refactor cost was ``n_jobs * shared_fn_bytes``).
    ``payload_bytes`` is the pickled size of every job batch actually
    submitted.
    """

    n_items: int
    n_submissions: int
    n_workers: int
    shared_fn_bytes: int
    payload_bytes: int

    @property
    def shipped_bytes(self) -> int:
        """Total bytes shipped: per-worker shared state + batches."""
        return self.n_workers * self.shared_fn_bytes + self.payload_bytes

    @property
    def legacy_bytes(self) -> int:
        """What the per-job ``partial`` scheme would have shipped for
        the same work (shared callable re-pickled with every item)."""
        return self.n_items * self.shared_fn_bytes + self.payload_bytes


_LAST_IPC_STATS: list = [None]
_LAST_WORKER_CACHE_STATS: dict = {}


def last_ipc_stats() -> Optional[IpcStats]:
    """IPC accounting of the most recent process-backend fan-out in
    this process (``None`` before any has run)."""
    return _LAST_IPC_STATS[0]


def process_worker_cache_stats() -> dict:
    """Per-worker cache counters of the most recent process-backend
    fan-out: ``{pid: {"designs": {...}, "kernels": {...}}}``.

    Process workers keep process-local caches the parent cannot see;
    each job batch returns a snapshot, and the latest snapshot per
    worker wins.  This is what ``repro cache-stats --backend process``
    reports (the per-worker ``misses`` are the rebuild counts).
    """
    return dict(_LAST_WORKER_CACHE_STATS)


def _parallel_map_process(fn: Callable, items: list, n_jobs: int) -> list:
    """Batched process fan-out with the shared callable hoisted into
    the worker initializer; records IPC and worker-cache stats."""
    n_workers = min(n_jobs, len(items))
    batches = job_batches(items, n_workers * BATCHES_PER_WORKER)
    shared = pickle.dumps(fn)
    payload_bytes = 0
    results: list = []
    _LAST_WORKER_CACHE_STATS.clear()
    with ProcessPoolExecutor(max_workers=n_workers,
                             initializer=_pool_initializer,
                             initargs=(shared,)) as pool:
        futures = []
        for batch in batches:
            payload = pickle.dumps(batch)
            payload_bytes += len(payload)
            futures.append(pool.submit(_run_shared_batch, payload))
        for future in futures:
            batch_results, (pid, stats) = future.result()
            results.extend(batch_results)
            _LAST_WORKER_CACHE_STATS[pid] = stats
    _LAST_IPC_STATS[0] = IpcStats(
        n_items=len(items), n_submissions=len(batches),
        n_workers=n_workers, shared_fn_bytes=len(shared),
        payload_bytes=payload_bytes)
    return results


def parallel_map(fn: Callable, items: Sequence,
                 n_jobs: Optional[int] = 1,
                 backend: Optional[str] = "thread") -> list:
    """``[fn(item) for item in items]``, optionally over a worker pool.

    Output order always matches input order; exceptions propagate to
    the caller exactly as in the serial loop.  ``backend="process"``
    fans out over a ``ProcessPoolExecutor`` — ``fn``, the items and
    the results must then be picklable (module-level functions or
    :func:`functools.partial` over one, not lambdas or closures).  The
    process backend ships ``fn`` once per worker via the pool
    initializer and submits contiguous job batches, so a shared config
    closed over by a ``partial`` is pickled ``n_workers`` times per
    fan-out instead of once per item (see :func:`last_ipc_stats`).
    """
    items = list(items)
    n_jobs = resolve_n_jobs(n_jobs)
    backend = resolve_backend(backend)
    if not will_parallelize(n_jobs, len(items)):
        return [fn(item) for item in items]
    if backend == "process":
        return _parallel_map_process(fn, items, n_jobs)
    with ThreadPoolExecutor(max_workers=min(n_jobs, len(items))) as pool:
        return list(pool.map(fn, items))


def process_recording_job(recording,
                          config: Optional[PipelineConfig] = None):
    """Run the full chain on one recording with a process-local
    pipeline memo (picklable — the worker body of the process backend,
    also reused by the streaming executor's finalize step)."""
    key = (float(recording.fs), config)
    pipeline = _WORKER_PIPELINES.get(key)
    if pipeline is None:
        pipeline = BeatToBeatPipeline(float(recording.fs), config)
        _WORKER_PIPELINES[key] = pipeline
    return pipeline.process_recording(recording)


def process_batch(recordings, config: Optional[PipelineConfig] = None,
                  n_jobs: Optional[int] = 1,
                  cache: Optional[FilterDesignCache] = None,
                  backend: Optional[str] = "thread") -> list:
    """Run the full pipeline over many recordings.

    Parameters
    ----------
    recordings:
        Iterable of :class:`~repro.io.records.Recording` objects with
        ``ecg`` and ``z`` channels; sampling rates may differ between
        recordings (one pipeline is built per distinct rate).
    config:
        Shared stage configuration (paper defaults when omitted).
    n_jobs:
        Worker count; ``1`` runs serially, ``-1``/``None`` uses one
        per CPU.
    cache:
        Filter-design cache shared by every worker; the process-wide
        default when omitted.  Only meaningful for the thread backend
        — process workers cannot share a lock-protected cache and use
        their own process-local default instead.
    backend:
        ``"thread"`` (default) or ``"process"``.  Threads share one
        design cache but serialise the GIL-bound stages; processes
        scale with cores — the shared config ships once per worker and
        recordings travel in contiguous job batches (the work-queue
        scheme of :func:`parallel_map`).

    Returns the list of :class:`~repro.core.pipeline.PipelineResult`
    in input order, identical to ``[pipeline.process_recording(r) for r
    in recordings]``.
    """
    recordings = list(recordings)
    backend = resolve_backend(backend)
    if backend == "process" and will_parallelize(n_jobs, len(recordings)):
        return parallel_map(partial(process_recording_job, config=config),
                            recordings, n_jobs=n_jobs, backend="process")
    if cache is None:
        cache = default_design_cache()
    # Build pipelines up front (serially) so workers share ready-made,
    # cache-backed instances instead of racing to construct them.
    pipelines: dict = {}
    for recording in recordings:
        fs = float(recording.fs)
        if fs not in pipelines:
            pipelines[fs] = BeatToBeatPipeline(fs, config, cache=cache)
    return parallel_map(
        lambda recording: pipelines[float(recording.fs)]
        .process_recording(recording),
        recordings, n_jobs=n_jobs)
