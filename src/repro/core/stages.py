"""The Fig 3 chain as composable stages.

Each stage is one box of the paper's flowchart, consuming and
producing fields of a :class:`~repro.core.context.BeatContext`:

========================  ==========================  ==================
stage                     reads                       writes
========================  ==========================  ==================
:class:`EcgConditionStage`  ``ecg``                     ``ecg_filtered``
:class:`RPeakStage`         ``ecg_filtered``            ``r_peak_indices``
:class:`IcgConditionStage`  ``z``                       ``icg``
:class:`PointDetectionStage`  ``icg, r_peak_indices``   ``points, failures``
:class:`HemodynamicsStage`  ``points, z``               ``intervals, z0_ohm,
                                                        hr_bpm,
                                                        beat_hemodynamics``
========================  ==========================  ==================

Filter designs come from the context's
:class:`~repro.core.cache.FilterDesignCache`, so repeated runs with the
same ``(fs, config)`` never redo a design.  A :class:`StageGraph` runs
an ordered stage sequence; :func:`default_stage_graph` builds the
published chain, and :meth:`StageGraph.upto` truncates it for callers
that only need the front of the pipeline (e.g. the study runner stops
after point detection).
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

import numpy as np

from repro.bioimpedance.analysis import mean_impedance
from repro.core.context import BeatContext
from repro.ecg.pan_tompkins import PanTompkinsDetector
from repro.ecg.preprocessing import preprocess_ecg
from repro.errors import ConfigurationError, SignalError
from repro.icg.hemodynamics import (
    HemodynamicsEstimator,
    systolic_intervals,
    systolic_intervals_from_landmarks,
)
from repro.icg.points import detect_all_landmarks
from repro.icg.preprocessing import icg_from_impedance

__all__ = [
    "Stage",
    "EcgConditionStage",
    "RPeakStage",
    "IcgConditionStage",
    "WaveletIcgConditionStage",
    "PointDetectionStage",
    "HemodynamicsStage",
    "StageGraph",
    "default_stage_graph",
]


@runtime_checkable
class Stage(Protocol):
    """One box of the processing chain.

    A stage is any object with a ``name`` and a ``run`` that advances a
    :class:`BeatContext` — reading the fields its predecessors filled
    and writing its own.  Stages must be stateless across calls so one
    graph can serve concurrent batch workers.
    """

    name: str

    def run(self, ctx: BeatContext) -> BeatContext:
        """Advance the context by this stage's computation."""
        ...


class EcgConditionStage:
    """Morphological baseline removal + zero-phase 0.05-40 Hz FIR."""

    name = "ecg_condition"

    def run(self, ctx: BeatContext) -> BeatContext:
        """Fill ``ecg_filtered`` from the raw ECG."""
        config = ctx.config.ecg
        taps = ctx.cache.ecg_fir_taps(ctx.fs, config)
        ctx.ecg_filtered = preprocess_ecg(ctx.ecg, ctx.fs, config,
                                          taps=taps)
        return ctx


class RPeakStage:
    """Pan-Tompkins QRS detection on the conditioned ECG."""

    name = "r_peaks"

    def run(self, ctx: BeatContext) -> BeatContext:
        """Fill ``r_peak_indices``; fails when beats cannot be
        delimited."""
        config = ctx.config.pan_tompkins
        detector = PanTompkinsDetector(
            ctx.fs, config,
            bandpass_sos=ctx.cache.pan_tompkins_sos(ctx.fs, config),
            mwi_kernel=ctx.cache.mwi_kernel(ctx.fs, config))
        r_peaks = detector.detect(ctx.require("ecg_filtered"))
        if r_peaks.size < 2:
            raise SignalError(
                "fewer than two R peaks detected; cannot delimit beats")
        ctx.r_peak_indices = r_peaks
        return ctx


class IcgConditionStage:
    """``ICG = -dZ/dt`` plus the 20 Hz low-pass / 0.8 Hz high-pass."""

    name = "icg_condition"

    def run(self, ctx: BeatContext) -> BeatContext:
        """Fill ``icg`` from the raw impedance trace."""
        config = ctx.config.icg
        ctx.icg = icg_from_impedance(
            ctx.z, ctx.fs, config,
            lowpass_sos=ctx.cache.icg_lowpass_sos(ctx.fs, config),
            highpass_sos=ctx.cache.icg_highpass_sos(ctx.fs, config))
        return ctx


class WaveletIcgConditionStage:
    """Wavelet alternative to :class:`IcgConditionStage` — a one-line
    swap in the stage graph.

    Conditions via VisuShrink denoising plus approximation-band
    suppression (the related-work methods of the paper's refs
    [15]-[17], see
    :func:`repro.icg.preprocessing.condition_icg_wavelet`) instead of
    the 20 Hz low-pass / 0.8 Hz high-pass chain.  It shares the stage
    name ``icg_condition`` so graphs, ``upto`` truncation and
    downstream stages are untouched by the swap; only ``ctx.icg``'s
    provenance changes.
    """

    name = "icg_condition"

    def run(self, ctx: BeatContext) -> BeatContext:
        """Fill ``icg`` from the raw impedance trace via wavelets."""
        ctx.icg = icg_from_impedance(ctx.z, ctx.fs, ctx.config.icg,
                                     method="wavelet")
        return ctx


class PointDetectionStage:
    """Beat-to-beat B/C/X detection between consecutive R peaks.

    Collects per-beat failures instead of raising: whether an empty
    result is fatal is the downstream consumer's decision (the full
    pipeline treats it as an error, the study runner reports NaNs).

    Under the default batched backend (see
    :func:`repro.icg.points.set_point_backend`) the detection runs the
    beat-matrix kernels of :mod:`repro.icg.batch` and additionally
    fills ``ctx.beat_landmarks`` with the landmark columns, which the
    hemodynamics stage consumes without re-gathering per beat.  The
    reference backend leaves ``beat_landmarks`` empty and downstream
    stages take their per-beat paths — the configuration the parity
    suite pins the batched chain against.
    """

    name = "point_detection"

    def run(self, ctx: BeatContext) -> BeatContext:
        """Fill ``points``, ``failures`` and (batched) ``beat_landmarks``."""
        points, failures, landmarks = detect_all_landmarks(
            ctx.require("icg"), ctx.fs, ctx.require("r_peak_indices"),
            ctx.config.points)
        ctx.points = points
        ctx.failures = failures
        ctx.beat_landmarks = landmarks
        return ctx


class HemodynamicsStage:
    """Z0, HR, PEP, LVET — the radio payload — plus SV/CO when the
    subject height is configured.

    When the point-detection stage ran batched (``ctx.beat_landmarks``
    present), the systolic intervals and per-beat hemodynamics come
    from the landmark columns in one vectorized pass
    (:func:`~repro.icg.hemodynamics.systolic_intervals_from_landmarks`,
    :meth:`~repro.icg.hemodynamics.HemodynamicsEstimator.estimate_landmarks`);
    otherwise the original per-beat loops run.  Both paths are
    bit-identical (pinned by the batched-parity suite).
    """

    name = "hemodynamics"

    def run(self, ctx: BeatContext) -> BeatContext:
        """Fill ``intervals``, ``z0_ohm``, ``hr_bpm`` and
        ``beat_hemodynamics``; fails when no beat was analysable."""
        points = ctx.require("points")
        if not points:
            raise SignalError(
                f"no ICG beats could be analysed "
                f"({len(ctx.failures or [])} failures)")
        landmarks = ctx.beat_landmarks
        if landmarks is not None:
            ctx.intervals = systolic_intervals_from_landmarks(
                landmarks, ctx.fs)
        else:
            ctx.intervals = systolic_intervals(points, ctx.fs)
        ctx.z0_ohm = mean_impedance(ctx.z)
        rr = np.diff(ctx.require("r_peak_indices")) / ctx.fs
        ctx.hr_bpm = float(60.0 / rr.mean())

        ctx.beat_hemodynamics = []
        if ctx.config.height_cm is not None:
            estimator = HemodynamicsEstimator(
                ctx.fs, ctx.z0_ohm, ctx.config.height_cm,
                z0_calibration=ctx.config.z0_calibration,
                dzdt_calibration=ctx.config.dzdt_calibration)
            icg = ctx.require("icg")
            ctx.beat_hemodynamics = (
                estimator.estimate_landmarks(landmarks, icg)
                if landmarks is not None
                else estimator.estimate_all(points, icg))
        return ctx


class StageGraph:
    """An ordered stage sequence applied to one context.

    The default graph is a straight line (the paper's chain), but any
    stage sequence satisfying the data dependencies works — swap a
    detector, insert a quality gate, or truncate with :meth:`upto`.
    """

    def __init__(self, stages) -> None:
        stages = tuple(stages)
        if not stages:
            raise ConfigurationError("a stage graph needs >= 1 stage")
        names = [stage.name for stage in stages]
        if len(set(names)) != len(names):
            raise ConfigurationError(
                f"duplicate stage names in graph: {names}")
        self.stages = stages

    @property
    def stage_names(self) -> tuple:
        """Names of the stages in execution order."""
        return tuple(stage.name for stage in self.stages)

    def run(self, ctx: BeatContext) -> BeatContext:
        """Run every stage, in order, on the context."""
        for stage in self.stages:
            ctx = stage.run(ctx)
        return ctx

    def upto(self, name: str) -> "StageGraph":
        """The sub-graph from the first stage through ``name``."""
        names = self.stage_names
        if name not in names:
            raise ConfigurationError(
                f"no stage {name!r} in graph; have {list(names)}")
        return StageGraph(self.stages[: names.index(name) + 1])


def default_stage_graph(icg_conditioner: str = "filter") -> StageGraph:
    """The published Fig 3 chain as a stage graph.

    ``icg_conditioner`` selects the ICG conditioning box:
    ``"filter"`` (the paper's zero-phase chain, default) or
    ``"wavelet"`` (the related-work
    :class:`WaveletIcgConditionStage`) — the one-line swap the stage
    architecture exists for.
    """
    conditioners = {"filter": IcgConditionStage,
                    "wavelet": WaveletIcgConditionStage}
    if icg_conditioner not in conditioners:
        raise ConfigurationError(
            f"icg_conditioner must be one of "
            f"{sorted(conditioners)}, got {icg_conditioner!r}")
    return StageGraph((
        EcgConditionStage(),
        RPeakStage(),
        conditioners[icg_conditioner](),
        PointDetectionStage(),
        HemodynamicsStage(),
    ))
