"""The datum passed between pipeline stages.

A :class:`BeatContext` carries one recording through the Fig 3 chain:
it starts with the raw ECG/impedance pair plus the configuration and
filter-design cache, and each stage fills in the fields it owns
(``ecg_filtered``, ``r_peak_indices``, ``icg``, ``points`` ...).
Making the hand-off explicit is what lets stages be rearranged,
replaced or run partially — the study runner, for example, stops after
point detection and derives its own ensemble statistics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.core.cache import FilterDesignCache, default_design_cache
from repro.core.config import PipelineConfig
from repro.errors import SignalError

__all__ = ["BeatContext"]


@dataclass
class BeatContext:
    """Mutable per-recording state flowing through the stage graph.

    Stages read the fields earlier stages produced (via
    :meth:`require`, which fails loudly on an out-of-order graph) and
    write their own.  ``None`` marks a field whose producing stage has
    not run yet.
    """

    fs: float
    ecg: np.ndarray
    z: np.ndarray
    config: PipelineConfig = field(default_factory=PipelineConfig)
    cache: FilterDesignCache = field(default_factory=default_design_cache)

    # -- produced by the stages, in chain order -----------------------------
    ecg_filtered: Optional[np.ndarray] = None
    r_peak_indices: Optional[np.ndarray] = None
    icg: Optional[np.ndarray] = None
    points: Optional[list] = None
    #: Array twin of ``points`` (:class:`repro.icg.batch.BeatLandmarks`)
    #: filled by the batched point-detection backend; ``None`` under the
    #: reference backend, which downstream stages treat as "use the
    #: per-beat path".
    beat_landmarks: Optional[object] = None
    failures: Optional[list] = None
    intervals: Optional[object] = None       # SystolicIntervals
    z0_ohm: Optional[float] = None
    hr_bpm: Optional[float] = None
    beat_hemodynamics: Optional[list] = None

    @classmethod
    def from_signals(cls, ecg, z, fs: float,
                     config: Optional[PipelineConfig] = None,
                     cache: Optional[FilterDesignCache] = None,
                     ) -> "BeatContext":
        """Validated context from raw ECG (mV) and impedance (ohm)."""
        ecg = np.asarray(ecg, dtype=float)
        z = np.asarray(z, dtype=float)
        if ecg.shape != z.shape or ecg.ndim != 1:
            raise SignalError(
                "ecg and z must be 1-D arrays of equal length")
        return cls(fs=float(fs), ecg=ecg, z=z,
                   config=config or PipelineConfig(),
                   cache=(cache if cache is not None
                          else default_design_cache()))

    def require(self, name: str):
        """The named field, raising when its stage has not run yet."""
        value = getattr(self, name)
        if value is None:
            raise SignalError(
                f"stage input {name!r} not available; the producing "
                f"stage has not run")
        return value
