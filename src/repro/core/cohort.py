"""The cohort-batched kernel tier: many recordings, one BLAS call.

Per-recording dispatch runs the Fig 3 chain one signal at a time, so a
million-recording sweep pays a python-level stage graph, filter-design
lookups and dozens of small numpy calls per recording.  This module
turns the *hot half* of the chain into leading-axis kernels instead:
recordings are grouped by ``(fs, length bucket)`` (the stage
configuration is shared per call), each group is stacked into one
``(n_recordings, n_samples)`` matrix (ragged lengths zero-padded and
tracked), and ECG conditioning, Pan-Tompkins energy shaping, the ICG
derivative and both zero-phase Butterworth passes run *once per group*
through the row-batched kernels of :mod:`repro.dsp.iir`,
:mod:`repro.dsp.fir` and :mod:`repro.dsp.morphology`.  The already
beat-batched point-detection and hemodynamics stages then fan out per
recording on the precomputed rows.

Outputs are **bit-identical** to the per-recording path: every batched
kernel is pinned sample-for-sample against its per-row oracle by the
parity suite (BLAS keeps GEMM reductions independent of the leading
axis; the FIR head patch and per-row FFT-size bucketing reproduce the
exact per-row summation orders), and the sequential Pan-Tompkins
threshold logic runs per row through the very same methods.  Error
behaviour also matches: any failure inside a batched group demotes the
whole group to per-recording dispatch, and row-level failures (e.g.
too few R peaks) raise at the failing recording's input position,
exactly where the serial loop would have raised.

:func:`set_cohort_backend` keeps per-recording dispatch available as
the reference backend (the oracle the parity tests compare against),
mirroring :func:`repro.icg.points.set_point_backend`.  The tier also
falls back to per-recording dispatch when the scalar ``sosfilt``
reference kernel is selected — the batched IIR scan has no scalar
twin.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.cache import FilterDesignCache, default_design_cache
from repro.core.config import PipelineConfig
from repro.core.context import BeatContext
from repro.core.pipeline import (
    BeatToBeatPipeline,
    result_from_context,
)
from repro.core.stages import HemodynamicsStage, PointDetectionStage
from repro.dsp import iir as _iir
from repro.dsp._signal import stack_ragged
from repro.ecg.pan_tompkins import PanTompkinsDetector
from repro.ecg.preprocessing import preprocess_ecg_batch
from repro.errors import ConfigurationError, SignalError
from repro.icg.batch import BeatLandmarks, detect_all_points_batched
from repro.icg.points import active_point_backend
from repro.icg.preprocessing import icg_from_impedance_batch

__all__ = [
    "COHORT_BACKENDS",
    "MAX_GROUP_ROWS",
    "MIN_GROUP_ROWS",
    "CohortGroup",
    "CohortPlan",
    "plan_cohort",
    "process_cohort",
    "set_cohort_backend",
    "cohort_backend",
    "use_cohort_backend",
]

#: Which cohort tier runs: ``"batched"`` (leading-axis kernels, the
#: default) or ``"reference"`` (per-recording dispatch, the oracle).
COHORT_BACKENDS = ("batched", "reference")
_cohort_backend = "batched"

#: Slab cap: groups larger than this run as consecutive slabs so a
#: 10^4-recording group never materialises one giant matrix (512 rows
#: of 10 s at 250 Hz is ~10 MB per stacked signal — measured fastest
#: on this chain; bigger slabs start thrashing cache, smaller ones
#: repay the per-call fixed overhead the tier exists to amortise).
MAX_GROUP_ROWS = 512

#: Groups smaller than this gain nothing from stacking and go through
#: per-recording dispatch directly.
MIN_GROUP_ROWS = 2


def set_cohort_backend(name: str) -> None:
    """Select the cohort execution tier process-wide.

    ``"batched"`` stacks recording groups into leading-axis kernel
    calls; ``"reference"`` forces per-recording dispatch — the oracle
    the cohort parity suite compares against (same idiom as
    :func:`repro.icg.points.set_point_backend`).
    """
    global _cohort_backend
    if name not in COHORT_BACKENDS:
        raise ConfigurationError(
            f"unknown cohort backend {name!r}; "
            f"choose from {COHORT_BACKENDS}")
    _cohort_backend = name


def cohort_backend() -> str:
    """The currently selected cohort execution tier."""
    return _cohort_backend


@contextlib.contextmanager
def use_cohort_backend(name: str):
    """Temporarily switch the cohort tier (benches, parity tests)."""
    previous = _cohort_backend
    set_cohort_backend(name)
    try:
        yield
    finally:
        set_cohort_backend(previous)


@dataclass(frozen=True)
class CohortGroup:
    """One stackable batch: same rate, same length bucket.

    ``indices`` point into the cohort's input order; ``width`` is the
    longest member (the stacked matrix width).
    """

    fs: float
    indices: tuple
    width: int


@dataclass(frozen=True)
class CohortPlan:
    """How a recording cohort will execute.

    ``groups`` run the batched tier slab-by-slab; ``singles`` (too
    short for the uniform zero-phase pads, missing channels, singleton
    groups) take per-recording dispatch.  Indices across groups and
    singles partition ``range(n_recordings)``.
    """

    groups: tuple
    singles: tuple

    @property
    def n_batched(self) -> int:
        """Recordings the batched tier will stack."""
        return sum(len(g.indices) for g in self.groups)

    @property
    def n_per_recording(self) -> int:
        """Recordings routed through per-recording dispatch."""
        return len(self.singles)


def _min_batchable_length(fs: float, config: PipelineConfig) -> int:
    """Shortest recording the batched chain accepts at ``fs``.

    Conservative bound over every batched kernel's requirement: the
    uniform zero-phase pads (``3 * ntaps`` per filter), Pan-Tompkins'
    two-second learning phase, and the MWI kernel support.  Shorter
    recordings use per-recording dispatch, whose per-signal pads adapt
    (or whose errors are the contract).
    """
    ecg_taps = config.ecg.fir_order + 1
    lp_sections = (config.icg.order + 1) // 2
    need = max(3 * ecg_taps + 1,
               3 * (2 * lp_sections + 1) + 1,
               int(2 * fs),
               max(1, int(round(
                   config.pan_tompkins.integration_window_s * fs))))
    if config.icg.highpass_hz is not None:
        hp_sections = (config.icg.highpass_order + 1) // 2
        need = max(need, 3 * (2 * hp_sections + 1) + 1)
    return need


def plan_cohort(recordings, config: Optional[PipelineConfig] = None,
                max_group_rows: int = MAX_GROUP_ROWS) -> CohortPlan:
    """Group a recording list into stackable cohorts.

    Grouping key is ``(fs, length bucket)`` with power-of-two length
    buckets — recordings in one group are within 2x of each other, so
    zero-padding waste stays bounded.  The stage configuration is
    shared across the call (as in :func:`process_batch`), so it does
    not enter the key.  Groups wider than ``max_group_rows`` are split
    into consecutive slabs.
    """
    config = config or PipelineConfig()
    if max_group_rows < MIN_GROUP_ROWS:
        raise ConfigurationError(
            f"max_group_rows must be >= {MIN_GROUP_ROWS}, "
            f"got {max_group_rows}")
    buckets: dict = {}
    singles: list = []
    min_lengths: dict = {}
    for index, recording in enumerate(recordings):
        fs = float(recording.fs)
        if fs not in min_lengths:
            min_lengths[fs] = _min_batchable_length(fs, config)
        if ("ecg" not in recording.signals or "z" not in recording.signals
                or recording.n_samples < min_lengths[fs]):
            singles.append(index)
            continue
        bucket = 1 << (recording.n_samples - 1).bit_length()
        buckets.setdefault((fs, bucket), []).append(index)
    groups: list = []
    for (fs, _), indices in buckets.items():
        if len(indices) < MIN_GROUP_ROWS:
            singles.extend(indices)
            continue
        for start in range(0, len(indices), max_group_rows):
            slab = indices[start: start + max_group_rows]
            if len(slab) < MIN_GROUP_ROWS:
                # A trailing one-recording slab stacks nothing.
                singles.extend(slab)
                continue
            width = max(recordings[i].n_samples for i in slab)
            groups.append(CohortGroup(fs=fs, indices=tuple(slab),
                                      width=width))
    return CohortPlan(groups=tuple(groups),
                      singles=tuple(sorted(singles)))


#: The stages after the batched front half — beat-level work that is
#: already internally batched per recording.  Stateless, hence shared.
_TAIL_STAGES = (PointDetectionStage(), HemodynamicsStage())


@dataclass
class _RowOutput:
    """Stage-A products for one batched recording.

    ``points``/``failures``/``landmarks`` are filled when the slab's
    beat-landmark detection also ran batched (one detection over the
    group's concatenated ICG rows); rows they are missing for take the
    stage-object tail path instead.
    """

    ecg_filtered: np.ndarray
    r_peaks: Optional[np.ndarray] = None
    icg: Optional[np.ndarray] = None
    error: Optional[Exception] = None
    points: Optional[list] = None
    failures: Optional[list] = None
    landmarks: Optional[BeatLandmarks] = None


def _run_group(group: CohortGroup, recordings, config: PipelineConfig,
               cache: FilterDesignCache) -> dict:
    """Stage A for one slab: batched conditioning + R peaks.

    Mirrors ``EcgConditionStage`` / ``RPeakStage`` /
    ``IcgConditionStage`` exactly — same cached designs, same
    configuration — but over the leading axis.  Returns
    ``{input_index: _RowOutput}``; raises on any group-level failure
    (the caller demotes the slab wholesale).
    """
    fs = group.fs
    members = [recordings[i] for i in group.indices]
    ecg_rows, lengths = stack_ragged(
        [r.channel("ecg") for r in members], width=group.width)
    z_rows, _ = stack_ragged(
        [r.channel("z") for r in members], width=group.width)

    ecg_filtered = preprocess_ecg_batch(
        ecg_rows, fs, lengths=lengths, config=config.ecg,
        taps=cache.ecg_fir_taps(fs, config.ecg))

    detector = PanTompkinsDetector(
        fs, config.pan_tompkins,
        bandpass_sos=cache.pan_tompkins_sos(fs, config.pan_tompkins),
        mwi_kernel=cache.mwi_kernel(fs, config.pan_tompkins))
    peak_lists = detector.detect_batch(ecg_filtered, lengths=lengths)

    icg_rows = icg_from_impedance_batch(
        z_rows, fs, lengths=lengths, config=config.icg,
        lowpass_sos=cache.icg_lowpass_sos(fs, config.icg),
        highpass_sos=cache.icg_highpass_sos(fs, config.icg))

    outputs: dict = {}
    for row, index in enumerate(group.indices):
        valid = int(lengths[row])
        # Copies: slab matrices die with this function, results must
        # not pin them.
        out = _RowOutput(ecg_filtered=ecg_filtered[row, :valid].copy())
        r_peaks = peak_lists[row]
        if r_peaks.size < 2:
            # The exact RPeakStage failure, raised later at this
            # recording's input position.
            out.error = SignalError(
                "fewer than two R peaks detected; cannot delimit beats")
        else:
            out.r_peaks = r_peaks
            out.icg = icg_rows[row, :valid].copy()
        outputs[index] = out
    if active_point_backend() == "batched":
        _batch_tail(group, config, outputs)
    return outputs


def _batch_tail(group: CohortGroup, config: PipelineConfig,
                outputs: dict) -> None:
    """Stage A': one landmark detection over the slab's concatenated
    ICG rows.

    The per-recording tail pays ~40 fixed-size numpy calls per
    ``detect_all_points_batched`` invocation; at ten beats a recording
    that overhead dominates the whole sweep (Amdahl).  Each batchable
    row's valid ICG samples are laid end to end and detected in *one*
    call with explicit beat windows and per-beat origins — beat
    windows never read outside themselves, and origins make every
    output index (including the float ``b0_index``) bit-identical to a
    detection over the row alone.

    Rows whose beats would delegate to the per-beat reference (any
    R-R interval at or below the C-delay screen) keep the stage-object
    tail — the reference detector works in single-recording frames.
    Fills ``points``/``failures``/``landmarks`` on the rows it covers.
    """
    min_c = int(config.points.min_c_delay_s * group.fs)
    rows: list = []
    segments: list = []
    starts: list = []
    stops: list = []
    origins: list = []
    counts: list = []
    offset = 0
    for index in group.indices:
        out = outputs[index]
        if out.error is not None or out.icg is None:
            continue
        r = np.asarray(out.r_peaks, dtype=np.int64)
        if not (np.diff(r) > min_c).all():
            continue
        rows.append(index)
        segments.append(out.icg)
        starts.append(r[:-1] + offset)
        stops.append(r[1:] + offset)
        origins.append(np.full(r.size - 1, offset, dtype=np.int64))
        counts.append(r.size - 1)
        offset += out.icg.size
    if not rows:
        return
    points, failures, landmarks = detect_all_points_batched(
        np.concatenate(segments), group.fs, None, config.points,
        beats=(np.concatenate(starts), np.concatenate(stops)),
        origins=np.concatenate(origins))
    # Failures carry ascending concatenated beat indices; walk them
    # once while slicing the points list and landmark columns back
    # into per-recording runs.
    beat_base = 0
    point_pos = 0
    failure_pos = 0
    for row_i, index in enumerate(rows):
        n_beats = counts[row_i]
        row_failures = []
        while (failure_pos < len(failures)
               and failures[failure_pos][0] < beat_base + n_beats):
            k, message = failures[failure_pos]
            row_failures.append((k - beat_base, message))
            failure_pos += 1
        n_ok = n_beats - len(row_failures)
        out = outputs[index]
        out.points = points[point_pos: point_pos + n_ok]
        out.failures = row_failures
        out.landmarks = BeatLandmarks(
            r=landmarks.r[point_pos: point_pos + n_ok],
            c=landmarks.c[point_pos: point_pos + n_ok],
            b=landmarks.b[point_pos: point_pos + n_ok],
            x=landmarks.x[point_pos: point_pos + n_ok],
            b0=landmarks.b0[point_pos: point_pos + n_ok],
            x0=landmarks.x0[point_pos: point_pos + n_ok],
            pattern_found=landmarks.pattern_found[
                point_pos: point_pos + n_ok],
        )
        point_pos += n_ok
        beat_base += n_beats


def _finish_recording(recording, output: _RowOutput,
                      pipeline: BeatToBeatPipeline):
    """Stage B for one batched recording: the beat-level tail.

    Rebuilds the stage context exactly as ``run_context`` would after
    the third stage, then runs point detection and hemodynamics — the
    same stage objects, so failure modes and outputs cannot drift.
    """
    if output.error is not None:
        raise output.error
    ctx = BeatContext.from_signals(
        recording.channel("ecg"), recording.channel("z"), pipeline.fs,
        pipeline.config, pipeline.cache)
    ctx.ecg_filtered = output.ecg_filtered
    ctx.r_peak_indices = output.r_peaks
    ctx.icg = output.icg
    if output.landmarks is not None:
        # The slab's concatenated tail already detected this row's
        # landmarks; install them and run hemodynamics only.  Rows
        # with zero analysable beats still flow through the stage so
        # it raises the identical SignalError at this position.
        ctx.points = output.points
        ctx.failures = output.failures
        ctx.beat_landmarks = output.landmarks
        ctx = _TAIL_STAGES[1].run(ctx)
    else:
        for stage in _TAIL_STAGES:
            ctx = stage.run(ctx)
    return result_from_context(ctx)


def process_cohort(recordings, config: Optional[PipelineConfig] = None,
                   cache: Optional[FilterDesignCache] = None,
                   max_group_rows: int = MAX_GROUP_ROWS) -> list:
    """Run the published chain over many recordings, cohort-batched.

    The drop-in cohort twin of a serial
    ``pipeline.process_recording`` loop (and of
    ``process_batch(backend="cohort")``, which routes here): results
    arrive in input order, bit-identical, and the first failing
    recording raises at the same input position with the same error.
    ``n_jobs`` has no meaning in this tier — the parallelism lives
    inside the BLAS/FFT kernels.

    Recordings the batched kernels cannot take (too short for the
    uniform zero-phase pads, missing channels, singleton groups), any
    group whose batched stage fails, and the whole cohort under the
    reference ``sosfilt`` or cohort backend, run per-recording — the
    fallback lattice never trades correctness for speed.
    """
    recordings = list(recordings)
    config = config or PipelineConfig()
    if cache is None:
        cache = default_design_cache()
    # Pipelines per distinct rate, built up front exactly as
    # process_batch's serial path does — construction errors (fs too
    # low for Pan-Tompkins, band edges above Nyquist) surface before
    # any recording is processed, matching the reference.
    pipelines: dict = {}
    for recording in recordings:
        fs = float(recording.fs)
        if fs not in pipelines:
            pipelines[fs] = BeatToBeatPipeline(fs, config, cache=cache)

    if (_cohort_backend == "reference"
            or _iir.sosfilt_backend() == "reference"):
        return [pipelines[float(r.fs)].process_recording(r)
                for r in recordings]

    plan = plan_cohort(recordings, config, max_group_rows=max_group_rows)
    outputs: dict = {}
    demoted = set(plan.singles)
    for group in plan.groups:
        try:
            outputs.update(_run_group(group, recordings, config, cache))
        except Exception:
            # Any batched-stage failure sends the whole slab through
            # per-recording dispatch, which reproduces the serial
            # behaviour (including the error, at the right position).
            demoted.update(group.indices)

    results = []
    for index, recording in enumerate(recordings):
        pipeline = pipelines[float(recording.fs)]
        if index in demoted:
            results.append(pipeline.process_recording(recording))
        else:
            results.append(_finish_recording(recording, outputs[index],
                                             pipeline))
    return results
