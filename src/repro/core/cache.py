"""Memoized filter designs, keyed by ``(fs, config)``.

Every run of the Fig 3 chain needs the same small set of designs: the
ECG band-pass FIR taps, the ICG low-/high-pass Butterworth sections and
the Pan-Tompkins band-pass plus moving-window-integration kernel.
Designing them is pure — a deterministic function of the sampling rate
and a frozen config — yet the monolithic pipeline used to redo the
work for every recording.  Cohort workloads (five subjects, three
positions, four frequencies) paid the full design cost dozens of times
over.

:class:`FilterDesignCache` memoizes each design under a
``(kind, fs, config)`` key.  Config dataclasses are frozen, hence
hashable, so the key is exact: any parameter change produces a fresh
design, identical parameters share one.  Cached arrays are marked
read-only before they are handed out, so a stage can never corrupt a
design another pipeline is using concurrently.  All operations are
thread-safe — the batch executor shares one cache across workers.

A process-wide default instance is shared by every pipeline that does
not bring its own (:func:`default_design_cache`).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.dsp import iir as _iir
from repro.dsp.kernels import KernelCache, default_kernel_cache
from repro.ecg.pan_tompkins import (
    PanTompkinsConfig,
    design_mwi_kernel,
    design_qrs_bandpass_sos,
)
from repro.ecg.preprocessing import EcgFilterConfig, design_ecg_fir
from repro.icg.preprocessing import (
    IcgFilterConfig,
    design_highpass_sos,
    design_lowpass_sos,
)

__all__ = ["FilterDesignCache", "default_design_cache",
           "cache_statistics"]


class FilterDesignCache(KernelCache):
    """Thread-safe memo table for filter designs.

    The generic memoization core — lock, hit/miss counters,
    build-outside-the-lock :meth:`get` with the unhashable-key
    fallback, read-only values — is inherited from the DSP layer's
    :class:`~repro.dsp.kernels.KernelCache`; this class adds the typed
    design entry points (:meth:`ecg_fir_taps`,
    :meth:`icg_lowpass_sos`, ...) pipeline code calls.  :meth:`get`
    remains the escape hatch for future stages with their own designs.
    """

    # -- typed entry points (the Fig 3 designs) -----------------------------

    def ecg_fir_taps(self, fs: float,
                     config: EcgFilterConfig) -> np.ndarray:
        """Taps of the paper's 0.05-40 Hz zero-phase ECG FIR."""
        return self.get(("ecg_fir", float(fs), config),
                        lambda: design_ecg_fir(fs, config))

    def icg_lowpass_sos(self, fs: float,
                        config: IcgFilterConfig) -> np.ndarray:
        """SOS of the ICG 20 Hz low-pass Butterworth."""
        return self.get(("icg_lp", float(fs), config),
                        lambda: design_lowpass_sos(fs, config))

    def icg_highpass_sos(self, fs: float, config: IcgFilterConfig,
                         ) -> Optional[np.ndarray]:
        """SOS of the ICG 0.8 Hz high-pass; ``None`` when disabled."""
        if config.highpass_hz is None:
            return None
        return self.get(("icg_hp", float(fs), config),
                        lambda: design_highpass_sos(fs, config))

    def pan_tompkins_sos(self, fs: float,
                         config: PanTompkinsConfig) -> np.ndarray:
        """SOS of the Pan-Tompkins ~5-15 Hz QRS band-pass."""
        return self.get(("pt_bp", float(fs), config),
                        lambda: design_qrs_bandpass_sos(fs, config))

    def mwi_kernel(self, fs: float,
                   config: PanTompkinsConfig) -> np.ndarray:
        """Moving-window-integration kernel (150 ms boxcar)."""
        return self.get(("pt_mwi", float(fs), config),
                        lambda: design_mwi_kernel(fs, config))

    def respiration_lowpass_sos(self, fs: float,
                                cutoff_hz: float,
                                order: int = 4) -> np.ndarray:
        """SOS of the respiration-rate cardiac-rejection low-pass.

        The monitoring/HRV analysis path designs this once per
        ``(fs, cutoff)`` instead of once per trend sample."""
        return self.get(("resp_lp", float(fs), float(cutoff_hz),
                         int(order)),
                        lambda: _iir.butter_lowpass(order, cutoff_hz,
                                                    fs))


_DEFAULT_CACHE = FilterDesignCache()


def default_design_cache() -> FilterDesignCache:
    """The process-wide shared cache used when a pipeline is built
    without an explicit one."""
    return _DEFAULT_CACHE


def cache_statistics() -> dict:
    """Hit/miss counters of both process-wide caches.

    ``designs`` is the filter-design cache above; ``kernels`` is the
    DSP-layer application-kernel cache (blocked SOS scan matrices,
    Savitzky-Golay projections, anti-alias taps — see
    :mod:`repro.dsp.kernels`).  This is the capacity-planning view the
    ``repro cache-stats`` subcommand renders.
    """
    return {"designs": default_design_cache().stats(),
            "kernels": default_kernel_cache().stats()}
