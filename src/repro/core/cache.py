"""Memoized filter designs, keyed by ``(fs, config)``.

Every run of the Fig 3 chain needs the same small set of designs: the
ECG band-pass FIR taps, the ICG low-/high-pass Butterworth sections and
the Pan-Tompkins band-pass plus moving-window-integration kernel.
Designing them is pure — a deterministic function of the sampling rate
and a frozen config — yet the monolithic pipeline used to redo the
work for every recording.  Cohort workloads (five subjects, three
positions, four frequencies) paid the full design cost dozens of times
over.

:class:`FilterDesignCache` memoizes each design under a
``(kind, fs, config)`` key.  Config dataclasses are frozen, hence
hashable, so the key is exact: any parameter change produces a fresh
design, identical parameters share one.  Cached arrays are marked
read-only before they are handed out, so a stage can never corrupt a
design another pipeline is using concurrently.  All operations are
thread-safe — the batch executor shares one cache across workers.

A process-wide default instance is shared by every pipeline that does
not bring its own (:func:`default_design_cache`).
"""

from __future__ import annotations

import threading
from typing import Callable, Hashable, Optional

import numpy as np

from repro.ecg.pan_tompkins import (
    PanTompkinsConfig,
    design_mwi_kernel,
    design_qrs_bandpass_sos,
)
from repro.ecg.preprocessing import EcgFilterConfig, design_ecg_fir
from repro.icg.preprocessing import (
    IcgFilterConfig,
    design_highpass_sos,
    design_lowpass_sos,
)

__all__ = ["FilterDesignCache", "default_design_cache"]


def _frozen(array: np.ndarray) -> np.ndarray:
    array.setflags(write=False)
    return array


class FilterDesignCache:
    """Thread-safe memo table for filter designs.

    Use the typed entry points (:meth:`ecg_fir_taps`,
    :meth:`icg_lowpass_sos`, ...) from pipeline code; :meth:`get` is the
    generic escape hatch for future stages with their own designs.
    """

    def __init__(self) -> None:
        self._store: dict = {}
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0

    # -- generic memoization ------------------------------------------------

    def get(self, key: Hashable, builder: Callable[[], np.ndarray],
            ) -> np.ndarray:
        """The design under ``key``, building (and freezing) it once.

        An unhashable key (a config carrying a list-valued field, say)
        falls back to building without memoization rather than failing
        — caching is an optimisation, never a requirement.
        """
        try:
            with self._lock:
                if key in self._store:
                    self._hits += 1
                    return self._store[key]
        except TypeError:
            return builder()
        # Build outside the lock: designs are deterministic, so a rare
        # duplicate build is harmless and cheaper than serialising all
        # design work.
        value = builder()
        if isinstance(value, np.ndarray):
            value = _frozen(value)
        with self._lock:
            if key in self._store:
                return self._store[key]
            self._misses += 1
            self._store[key] = value
            return value

    # -- typed entry points (the Fig 3 designs) -----------------------------

    def ecg_fir_taps(self, fs: float,
                     config: EcgFilterConfig) -> np.ndarray:
        """Taps of the paper's 0.05-40 Hz zero-phase ECG FIR."""
        return self.get(("ecg_fir", float(fs), config),
                        lambda: design_ecg_fir(fs, config))

    def icg_lowpass_sos(self, fs: float,
                        config: IcgFilterConfig) -> np.ndarray:
        """SOS of the ICG 20 Hz low-pass Butterworth."""
        return self.get(("icg_lp", float(fs), config),
                        lambda: design_lowpass_sos(fs, config))

    def icg_highpass_sos(self, fs: float, config: IcgFilterConfig,
                         ) -> Optional[np.ndarray]:
        """SOS of the ICG 0.8 Hz high-pass; ``None`` when disabled."""
        if config.highpass_hz is None:
            return None
        return self.get(("icg_hp", float(fs), config),
                        lambda: design_highpass_sos(fs, config))

    def pan_tompkins_sos(self, fs: float,
                         config: PanTompkinsConfig) -> np.ndarray:
        """SOS of the Pan-Tompkins ~5-15 Hz QRS band-pass."""
        return self.get(("pt_bp", float(fs), config),
                        lambda: design_qrs_bandpass_sos(fs, config))

    def mwi_kernel(self, fs: float,
                   config: PanTompkinsConfig) -> np.ndarray:
        """Moving-window-integration kernel (150 ms boxcar)."""
        return self.get(("pt_mwi", float(fs), config),
                        lambda: design_mwi_kernel(fs, config))

    # -- introspection / management -----------------------------------------

    @property
    def hits(self) -> int:
        """Lookups served from the table."""
        return self._hits

    @property
    def misses(self) -> int:
        """Lookups that had to run a design."""
        return self._misses

    def __len__(self) -> int:
        return len(self._store)

    def stats(self) -> dict:
        """Hit/miss counters and entry count, for benches and logs."""
        with self._lock:
            return {"hits": self._hits, "misses": self._misses,
                    "entries": len(self._store)}

    def clear(self) -> None:
        """Drop every design and reset the counters."""
        with self._lock:
            self._store.clear()
            self._hits = 0
            self._misses = 0


_DEFAULT_CACHE = FilterDesignCache()


def default_design_cache() -> FilterDesignCache:
    """The process-wide shared cache used when a pipeline is built
    without an explicit one."""
    return _DEFAULT_CACHE
