"""The end-to-end beat-to-beat pipeline — the paper's Fig 3 flowchart.

Given a simultaneous ECG + impedance recording (from the synthesizer,
the device simulator, or a real file), the pipeline runs the complete
published processing chain:

1. ECG conditioning (morphological baseline removal + zero-phase
   0.05-40 Hz FIR),
2. Pan-Tompkins R-peak detection,
3. ICG derivation (``-dZ/dt``) and conditioning (zero-phase 20 Hz
   Butterworth + 0.8 Hz band edge),
4. beat-to-beat B/C/X detection between consecutive R peaks,
5. hemodynamic parameters: Z0, HR, PEP, LVET (the radio payload of
   Section V) plus stroke volume / cardiac output estimates.

This offline pipeline is the reference implementation; the streaming
firmware model in :mod:`repro.device.firmware` mirrors it causally and
is tested for agreement against it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.bioimpedance.analysis import mean_impedance
from repro.ecg.pan_tompkins import PanTompkinsConfig, PanTompkinsDetector
from repro.ecg.preprocessing import EcgFilterConfig, preprocess_ecg
from repro.errors import ConfigurationError, SignalError
from repro.icg.hemodynamics import HemodynamicsEstimator, systolic_intervals
from repro.icg.points import PointConfig, detect_all_points
from repro.icg.preprocessing import IcgFilterConfig, icg_from_impedance
from repro.io.records import Recording

__all__ = ["PipelineConfig", "PipelineResult", "BeatToBeatPipeline"]


@dataclass(frozen=True)
class PipelineConfig:
    """All stage configurations in one bundle (paper defaults)."""

    ecg: EcgFilterConfig = field(default_factory=EcgFilterConfig)
    icg: IcgFilterConfig = field(default_factory=IcgFilterConfig)
    points: PointConfig = field(default_factory=PointConfig)
    pan_tompkins: PanTompkinsConfig = field(
        default_factory=PanTompkinsConfig)
    #: Subject height for the Sramek-Bernstein stroke volume (cm);
    #: ``None`` skips SV/CO estimation.
    height_cm: float = None
    #: Pathway calibrations for the SV formulas (1.0 = thoracic); see
    #: :class:`repro.icg.hemodynamics.HemodynamicsEstimator`.
    z0_calibration: float = 1.0
    dzdt_calibration: float = 1.0


@dataclass(frozen=True)
class PipelineResult:
    """Everything the pipeline extracted from one recording."""

    fs: float
    r_peak_indices: np.ndarray
    r_peak_times_s: np.ndarray
    points: list
    failures: list
    pep_s: np.ndarray
    lvet_s: np.ndarray
    hr_bpm: float
    z0_ohm: float
    beat_hemodynamics: list
    ecg_filtered: np.ndarray
    icg: np.ndarray

    @property
    def mean_pep_s(self) -> float:
        """Mean pre-ejection period over valid beats."""
        return float(self.pep_s.mean())

    @property
    def mean_lvet_s(self) -> float:
        """Mean left-ventricular ejection time over valid beats."""
        return float(self.lvet_s.mean())

    @property
    def n_beats_detected(self) -> int:
        """Number of R-R intervals successfully analysed."""
        return len(self.points)

    def summary(self) -> dict:
        """The device's report payload: ``Z0, LVET, PEP, HR``
        (Section V lists exactly these as the radio payload)."""
        return {
            "z0_ohm": self.z0_ohm,
            "lvet_s": self.mean_lvet_s,
            "pep_s": self.mean_pep_s,
            "hr_bpm": self.hr_bpm,
        }


class BeatToBeatPipeline:
    """Reference implementation of the paper's processing chain."""

    def __init__(self, fs: float, config: PipelineConfig = None) -> None:
        if fs <= 0:
            raise ConfigurationError("fs must be positive")
        self.fs = float(fs)
        self.config = config or PipelineConfig()
        self._pan_tompkins = PanTompkinsDetector(self.fs,
                                                 self.config.pan_tompkins)

    def process_recording(self, recording: Recording) -> PipelineResult:
        """Run the full chain on a :class:`Recording` with ``ecg`` and
        ``z`` channels."""
        if recording.fs != self.fs:
            raise ConfigurationError(
                f"pipeline built for fs={self.fs}, recording has "
                f"fs={recording.fs}")
        return self.process(recording.channel("ecg"),
                            recording.channel("z"))

    def process(self, ecg, z) -> PipelineResult:
        """Run the full chain on raw ECG (mV) and impedance (ohm)."""
        ecg = np.asarray(ecg, dtype=float)
        z = np.asarray(z, dtype=float)
        if ecg.shape != z.shape or ecg.ndim != 1:
            raise SignalError(
                "ecg and z must be 1-D arrays of equal length")

        ecg_filtered = preprocess_ecg(ecg, self.fs, self.config.ecg)
        r_peaks = self._pan_tompkins.detect(ecg_filtered)
        if r_peaks.size < 2:
            raise SignalError(
                "fewer than two R peaks detected; cannot delimit beats")

        icg = icg_from_impedance(z, self.fs, self.config.icg)
        points, failures = detect_all_points(icg, self.fs, r_peaks,
                                             self.config.points)
        if not points:
            raise SignalError(
                f"no ICG beats could be analysed "
                f"({len(failures)} failures)")
        intervals = systolic_intervals(points, self.fs)

        z0 = mean_impedance(z)
        rr = np.diff(r_peaks) / self.fs
        hr = float(60.0 / rr.mean())

        hemodynamics = []
        if self.config.height_cm is not None:
            estimator = HemodynamicsEstimator(
                self.fs, z0, self.config.height_cm,
                z0_calibration=self.config.z0_calibration,
                dzdt_calibration=self.config.dzdt_calibration)
            hemodynamics = estimator.estimate_all(points, icg)

        return PipelineResult(
            fs=self.fs,
            r_peak_indices=r_peaks,
            r_peak_times_s=r_peaks / self.fs,
            points=points,
            failures=failures,
            pep_s=intervals.pep_s,
            lvet_s=intervals.lvet_s,
            hr_bpm=hr,
            z0_ohm=z0,
            beat_hemodynamics=hemodynamics,
            ecg_filtered=ecg_filtered,
            icg=icg,
        )
