"""The end-to-end beat-to-beat pipeline — the paper's Fig 3 flowchart.

Given a simultaneous ECG + impedance recording (from the synthesizer,
the device simulator, or a real file), the pipeline runs the complete
published processing chain:

1. ECG conditioning (morphological baseline removal + zero-phase
   0.05-40 Hz FIR),
2. Pan-Tompkins R-peak detection,
3. ICG derivation (``-dZ/dt``) and conditioning (zero-phase 20 Hz
   Butterworth + 0.8 Hz band edge),
4. beat-to-beat B/C/X detection between consecutive R peaks,
5. hemodynamic parameters: Z0, HR, PEP, LVET (the radio payload of
   Section V) plus stroke volume / cardiac output estimates.

Since the stage-graph refactor, :class:`BeatToBeatPipeline` is a thin
facade: the chain itself lives in :mod:`repro.core.stages` as five
composable stages exchanging a :class:`~repro.core.context.BeatContext`,
with filter designs memoized in :mod:`repro.core.cache` and cohort
fan-out in :mod:`repro.core.executor`.  This offline pipeline is the
reference implementation; the streaming firmware model in
:mod:`repro.device.firmware` mirrors it causally and is tested for
agreement against it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.cache import FilterDesignCache, default_design_cache
from repro.core.config import PipelineConfig
from repro.core.context import BeatContext
from repro.core.stages import RPeakStage, StageGraph, default_stage_graph
from repro.ecg.pan_tompkins import PanTompkinsDetector
from repro.errors import ConfigurationError
from repro.io.records import Recording

__all__ = ["PipelineConfig", "PipelineResult", "BeatToBeatPipeline",
           "result_from_context"]


@dataclass(frozen=True)
class PipelineResult:
    """Everything the pipeline extracted from one recording."""

    fs: float
    r_peak_indices: np.ndarray
    r_peak_times_s: np.ndarray
    points: list
    failures: list
    pep_s: np.ndarray
    lvet_s: np.ndarray
    hr_bpm: float
    z0_ohm: float
    beat_hemodynamics: list
    ecg_filtered: np.ndarray
    icg: np.ndarray

    @property
    def mean_pep_s(self) -> float:
        """Mean pre-ejection period over valid beats."""
        return float(self.pep_s.mean())

    @property
    def mean_lvet_s(self) -> float:
        """Mean left-ventricular ejection time over valid beats."""
        return float(self.lvet_s.mean())

    @property
    def n_beats_detected(self) -> int:
        """Number of R-R intervals successfully analysed."""
        return len(self.points)

    def summary(self) -> dict:
        """The device's report payload: ``Z0, LVET, PEP, HR``
        (Section V lists exactly these as the radio payload)."""
        return {
            "z0_ohm": self.z0_ohm,
            "lvet_s": self.mean_lvet_s,
            "pep_s": self.mean_pep_s,
            "hr_bpm": self.hr_bpm,
        }


def result_from_context(ctx: BeatContext) -> PipelineResult:
    """Assemble a :class:`PipelineResult` from a fully-run context."""
    intervals = ctx.require("intervals")
    r_peaks = ctx.require("r_peak_indices")
    return PipelineResult(
        fs=ctx.fs,
        r_peak_indices=r_peaks,
        r_peak_times_s=r_peaks / ctx.fs,
        points=ctx.require("points"),
        failures=ctx.failures if ctx.failures is not None else [],
        pep_s=intervals.pep_s,
        lvet_s=intervals.lvet_s,
        hr_bpm=ctx.require("hr_bpm"),
        z0_ohm=ctx.require("z0_ohm"),
        beat_hemodynamics=(ctx.beat_hemodynamics
                           if ctx.beat_hemodynamics is not None else []),
        ecg_filtered=ctx.require("ecg_filtered"),
        icg=ctx.require("icg"),
    )


class BeatToBeatPipeline:
    """Facade over the stage graph, bound to one sampling rate.

    Parameters
    ----------
    fs:
        Sampling rate of the recordings this pipeline will process.
    config:
        Stage configurations (paper defaults when omitted).
    cache:
        Filter-design cache; the process-wide shared cache when
        omitted, so repeated pipelines with the same ``(fs, config)``
        never redo a design.
    graph:
        The stage graph to run; the published Fig 3 chain when omitted.
    """

    def __init__(self, fs: float,
                 config: Optional[PipelineConfig] = None,
                 cache: Optional[FilterDesignCache] = None,
                 graph: Optional[StageGraph] = None) -> None:
        if fs <= 0:
            raise ConfigurationError("fs must be positive")
        self.fs = float(fs)
        self.config = config or PipelineConfig()
        self.cache = (cache if cache is not None
                      else default_design_cache())
        self.graph = graph or default_stage_graph()
        # Construct a detector eagerly when the graph uses one: it
        # validates fs/band-edge combinations at build time (as the
        # monolithic pipeline did) and warms the QRS designs in the
        # cache.  Graphs with an alternative QRS stage skip this.
        self._pan_tompkins = None
        if any(isinstance(stage, RPeakStage)
               for stage in self.graph.stages):
            self._pan_tompkins = PanTompkinsDetector(
                self.fs, self.config.pan_tompkins,
                bandpass_sos=self.cache.pan_tompkins_sos(
                    self.fs, self.config.pan_tompkins),
                mwi_kernel=self.cache.mwi_kernel(
                    self.fs, self.config.pan_tompkins))

    def process_recording(self, recording: Recording) -> PipelineResult:
        """Run the full chain on a :class:`Recording` with ``ecg`` and
        ``z`` channels."""
        if recording.fs != self.fs:
            raise ConfigurationError(
                f"pipeline built for fs={self.fs}, recording has "
                f"fs={recording.fs}")
        return self.process(recording.channel("ecg"),
                            recording.channel("z"))

    def process(self, ecg, z) -> PipelineResult:
        """Run the full chain on raw ECG (mV) and impedance (ohm)."""
        ctx = self.run_context(ecg, z)
        return result_from_context(ctx)

    def run_context(self, ecg, z) -> BeatContext:
        """Run the stage graph and return the raw context (for callers
        needing intermediate fields beyond :class:`PipelineResult`)."""
        ctx = BeatContext.from_signals(ecg, z, self.fs, self.config,
                                       self.cache)
        return self.graph.run(ctx)
