"""The paper's primary contribution: the beat-to-beat pipeline.

The chain is a stage graph (:mod:`repro.core.stages`) exchanging a
:class:`~repro.core.context.BeatContext`, with filter designs memoized
by :mod:`repro.core.cache` and cohort fan-out provided by
:mod:`repro.core.executor`.  :class:`BeatToBeatPipeline` is the
single-recording facade over that machinery.
"""

from repro.core.cache import (
    FilterDesignCache,
    cache_statistics,
    default_design_cache,
)
from repro.core.cohort import (
    COHORT_BACKENDS,
    CohortGroup,
    CohortPlan,
    cohort_backend,
    plan_cohort,
    process_cohort,
    set_cohort_backend,
    use_cohort_backend,
)
from repro.core.config import PipelineConfig
from repro.core.context import BeatContext
from repro.core.executor import (
    BACKENDS,
    BATCH_BACKENDS,
    IpcStats,
    job_batches,
    last_ipc_stats,
    parallel_map,
    persistent_pool_stats,
    persistent_process_pool,
    process_batch,
    process_worker_cache_stats,
    resolve_backend,
    shutdown_persistent_pool,
)
from repro.core.pipeline import (
    BeatToBeatPipeline,
    PipelineResult,
    result_from_context,
)
from repro.core.shm import (
    RecordingDescriptor,
    ShmArena,
    ShmDescriptor,
    attach_view,
    publish_recording,
    recording_from_descriptor,
)
from repro.core.stages import (
    EcgConditionStage,
    HemodynamicsStage,
    IcgConditionStage,
    PointDetectionStage,
    RPeakStage,
    Stage,
    StageGraph,
    WaveletIcgConditionStage,
    default_stage_graph,
)

__all__ = [
    "BeatToBeatPipeline", "PipelineConfig", "PipelineResult",
    "BeatContext", "result_from_context",
    "Stage", "StageGraph", "default_stage_graph",
    "EcgConditionStage", "RPeakStage", "IcgConditionStage",
    "WaveletIcgConditionStage", "PointDetectionStage",
    "HemodynamicsStage",
    "FilterDesignCache", "default_design_cache", "cache_statistics",
    "process_batch", "parallel_map", "resolve_backend", "BACKENDS",
    "BATCH_BACKENDS", "job_batches", "IpcStats", "last_ipc_stats",
    "process_worker_cache_stats", "persistent_pool_stats",
    "persistent_process_pool", "shutdown_persistent_pool",
    "process_cohort", "plan_cohort", "CohortPlan", "CohortGroup",
    "COHORT_BACKENDS", "cohort_backend", "set_cohort_backend",
    "use_cohort_backend",
    "ShmArena", "ShmDescriptor", "RecordingDescriptor", "attach_view",
    "publish_recording", "recording_from_descriptor",
]
