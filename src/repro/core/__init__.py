"""The paper's primary contribution: the beat-to-beat pipeline."""

from repro.core.pipeline import (
    BeatToBeatPipeline,
    PipelineConfig,
    PipelineResult,
)

__all__ = ["BeatToBeatPipeline", "PipelineConfig", "PipelineResult"]
