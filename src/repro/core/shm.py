"""Shared-memory data plane for the process backends.

The PR 3 work queue fixed *how often* the process backend pickled its
shared callable, but every job still round-tripped full float64
recordings — and their equally large results — through the pool's
pipes.  For array-heavy jobs the pickling dominated end to end: the
measured process backend ran at a fraction of serial throughput.

This module is the replacement data plane.  Arrays live in
``multiprocessing.shared_memory`` blocks; what crosses the pipe is an
:class:`ShmDescriptor` — ``(block, shape, dtype, offset)``, a few
dozen bytes regardless of signal length:

* :class:`ShmArena` is a parent-owned block with a bump allocator:
  ``put`` copies an array in (the only copy on the input path),
  ``reserve`` hands out an uninitialised slot for a worker to write
  results into (the only copy on the output path), and ``view`` maps a
  descriptor back onto the parent's buffer with zero copies.
* :func:`attach_view` is the worker side: attach once per block
  (process-local cache), then every descriptor resolves to a zero-copy
  ndarray view.
* :func:`publish_recording` / :func:`recording_from_descriptor` lift
  the scheme to whole :class:`~repro.io.records.Recording` objects —
  the unit the batch executor, the streaming finalizer and the study
  runner all exchange.
* :func:`pack_arrays` / :func:`buffer_view` apply the *same descriptor
  type* to a plain in-file buffer (``block == ""``): the shard
  serializer packs its ensemble waveforms into one blob indexed by
  descriptors, so the zero-copy layout is identical on the wire, on
  disk and in shared memory.

Lifecycle and crash safety
--------------------------
The parent creates, the parent unlinks.  Workers only ever attach and
close.  ``unlink`` is called as soon as the fan-out's futures resolve —
POSIX keeps the segment alive for every process that still maps it, so
result views remain valid while the *name* disappears immediately;
a crash after unlink leaks nothing.  A crash *before* unlink leaves a
named segment behind, which the Python resource tracker removes at
interpreter exit — shared memory is deliberately kept out of the
durability story (the ingest journal owns persistence; see
ARCHITECTURE.md's memory model).
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass, field
from multiprocessing import shared_memory
from typing import Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.io.records import Recording

__all__ = [
    "ShmDescriptor",
    "ShmArena",
    "attach_view",
    "detach",
    "detach_all",
    "RecordingDescriptor",
    "publish_recording",
    "recording_from_descriptor",
    "recording_nbytes",
    "pack_arrays",
    "buffer_view",
    "aligned_nbytes",
]

#: Slot alignment inside a block — cache-line sized so adjacent slots
#: never false-share when a worker writes one while the parent reads
#: its neighbour.
ALIGNMENT = 64


def aligned_nbytes(nbytes: int) -> int:
    """``nbytes`` rounded up to the arena alignment."""
    return -(-int(nbytes) // ALIGNMENT) * ALIGNMENT


@dataclass(frozen=True)
class ShmDescriptor:
    """Where one array lives inside a named buffer.

    ``block`` names a shared-memory segment — or is empty for an
    inline buffer (the shard file's packed blob uses the same
    descriptor with ``block=""``).  This tuple is what the process
    backends ship instead of the array: a constant few dozen pickled
    bytes however long the recording.
    """

    block: str
    shape: tuple
    dtype: str
    offset: int

    @property
    def nbytes(self) -> int:
        """Payload size described by this descriptor."""
        # math.prod, not np.prod: this property sits on the per-array
        # hot path (queue accounting, arena reserve, iovec framing)
        # and a ufunc reduction per call measurably drags it.
        return math.prod(self.shape) * np.dtype(self.dtype).itemsize


def _require_supported(array: np.ndarray) -> np.ndarray:
    if array.dtype.hasobject:
        raise ConfigurationError(
            "object arrays cannot travel through shared memory")
    return np.ascontiguousarray(array)


class ShmArena:
    """A parent-owned shared-memory block with a bump allocator.

    Create with the total byte budget (use :func:`aligned_nbytes` per
    array when planning), ``put``/``reserve`` slots, hand the returned
    descriptors to workers, ``view`` the results, then ``release``.
    Also usable as a context manager (releases on exit).
    """

    def __init__(self, nbytes: int, name: Optional[str] = None) -> None:
        if nbytes <= 0:
            raise ConfigurationError("arena size must be positive")
        self._shm = shared_memory.SharedMemory(
            create=True, size=int(nbytes), name=name)
        # Pre-fault the mapping: one sequential touch per page.  A
        # fresh shm segment is faulted in lazily, so without this
        # every first put pays scattered page faults mid-memcpy —
        # measured ~6x slower than copying into touched pages (and the
        # sequential stride lets the kernel back the segment with huge
        # pages).  Arenas are sized to their payload, so the touch is
        # not wasted on slack.
        np.frombuffer(self._shm.buf, dtype=np.uint8)[::4096] = 0
        self._cursor = 0
        self._released = False

    @property
    def name(self) -> str:
        """The shared-memory block name workers attach by."""
        return self._shm.name

    @property
    def nbytes(self) -> int:
        """Total capacity of the block."""
        return self._shm.size

    @property
    def used(self) -> int:
        """Bytes allocated so far (including alignment padding)."""
        return self._cursor

    def reserve(self, shape, dtype) -> ShmDescriptor:
        """An uninitialised, aligned slot — the result plane: workers
        write into it, the parent views it afterwards."""
        shape = tuple(int(s) for s in np.atleast_1d(shape)) \
            if not isinstance(shape, tuple) else shape
        dtype = np.dtype(dtype)
        descriptor = ShmDescriptor(block=self.name, shape=tuple(shape),
                                   dtype=dtype.str, offset=self._cursor)
        end = self._cursor + descriptor.nbytes
        if end > self._shm.size:
            raise ConfigurationError(
                f"arena overflow: need {end} bytes, have {self._shm.size}")
        self._cursor = aligned_nbytes(end)
        return descriptor

    def put(self, array) -> ShmDescriptor:
        """Copy an array into the arena; returns its descriptor.

        The single copy of the input path — every later consumer,
        local or in a worker process, views these bytes in place.
        """
        array = _require_supported(np.asarray(array))
        descriptor = self.reserve(array.shape, array.dtype)
        self.view(descriptor, writable=True)[...] = array
        return descriptor

    def view(self, descriptor: ShmDescriptor,
             writable: bool = False) -> np.ndarray:
        """Zero-copy ndarray over one slot of this arena's buffer."""
        out = np.frombuffer(self._shm.buf, dtype=descriptor.dtype,
                            count=math.prod(descriptor.shape),
                            offset=descriptor.offset,
                            ).reshape(descriptor.shape)
        if not writable:
            out = out.view()
            out.setflags(write=False)
        return out

    def release(self) -> None:
        """Unlink the block and detach the arena's handle.

        Views already handed out stay valid — numpy holds the mapping
        through its own buffer exports, and the OS frees the segment
        only when the last view is garbage-collected.  The name
        disappears immediately (nothing to leak after a later crash);
        the file descriptor is closed here (the mapping does not need
        it).  Idempotent.
        """
        if self._released:
            return
        self._released = True
        shm = self._shm
        self._shm = _ReleasedBlock(shm)
        try:
            shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass
        _detach_handle(shm)

    def __enter__(self) -> "ShmArena":
        return self

    def __exit__(self, *exc) -> None:
        self.release()


class _ReleasedBlock:
    """Keeps a released arena's buffer reachable for existing views
    while refusing new allocations."""

    def __init__(self, shm) -> None:
        self.buf = shm.buf
        self.size = shm.size
        self.name = shm.name


#: Handles we could not surgically detach (unexpected CPython
#: internals): kept alive so their ``__del__`` never runs against
#: exported buffers.  Empty in practice.
_PARKED_HANDLES: list = []


def _detach_handle(shm) -> None:
    """Disarm a ``SharedMemory`` handle whose buffer may still be
    exported by numpy views.

    ``SharedMemory.__del__`` unconditionally calls ``close()``, which
    raises ``BufferError`` while views are alive and would tear the
    mapping from under them once they are not.  The mapping's real
    lifetime is managed by the views themselves (ndarray → memoryview
    → mmap), so the handle only needs its file descriptor closed and
    its references dropped.  Private-attribute surgery is guarded: on
    an unexpected CPython layout the handle is parked forever instead,
    which leaks a handle object but never corrupts a view.
    """
    try:
        fd = shm._fd
        if fd >= 0:
            os.close(fd)
            shm._fd = -1
        shm._buf = None
        shm._mmap = None        # views hold the real mmap alive
    except (AttributeError, OSError):  # pragma: no cover - exotic layout
        _PARKED_HANDLES.append(shm)


# -- worker-side attachment ----------------------------------------------

#: Process-local attachments: one mapping per block, shared by every
#: descriptor that names it.
_ATTACHED: dict = {}


def attach_view(descriptor: ShmDescriptor,
                writable: bool = False) -> np.ndarray:
    """Resolve a descriptor in this process (attaching on first use).

    Workers call this for every descriptor a job ships; the block is
    mapped once and cached, each view is zero-copy.  ``writable=True``
    is the result plane — the worker writes its output straight into
    the parent's buffer.
    """
    block = _ATTACHED.get(descriptor.block)
    if block is None:
        block = shared_memory.SharedMemory(name=descriptor.block)
        _ATTACHED[descriptor.block] = block
    out = np.frombuffer(block.buf, dtype=descriptor.dtype,
                        count=math.prod(descriptor.shape),
                        offset=descriptor.offset,
                        ).reshape(descriptor.shape)
    if not writable:
        out = out.view()
        out.setflags(write=False)
    return out


def detach(block_name: str) -> None:
    """Drop this process's cached mapping of one block (no-op when it
    was never attached).  Any views created from it must be dead."""
    block = _ATTACHED.pop(block_name, None)
    if block is not None:
        try:
            block.close()
        except BufferError:       # views still alive: let GC reclaim
            pass


def detach_all() -> None:
    """Drop every cached attachment (worker shutdown / test isolation)."""
    for name in list(_ATTACHED):
        detach(name)


# -- recordings over the data plane --------------------------------------

@dataclass(frozen=True)
class RecordingDescriptor:
    """A :class:`~repro.io.records.Recording` by reference.

    Signals and annotations are descriptors into a block; ``fs`` and
    scalar ``meta`` ride along inline (they are tiny).  Pickles to a
    few hundred bytes regardless of the recording length.
    """

    fs: float
    signals: dict = field(default_factory=dict)
    annotations: dict = field(default_factory=dict)
    meta: dict = field(default_factory=dict)


def recording_nbytes(recording: Recording) -> int:
    """Aligned bytes :func:`publish_recording` will consume for one
    recording (arena sizing)."""
    total = 0
    for data in recording.signals.values():
        total += aligned_nbytes(np.asarray(data).nbytes)
    for data in recording.annotations.values():
        total += aligned_nbytes(np.asarray(data).nbytes)
    return total


def publish_recording(recording: Recording,
                      arena: ShmArena) -> RecordingDescriptor:
    """Copy a recording's arrays into the arena; descriptor by value."""
    return RecordingDescriptor(
        fs=float(recording.fs),
        signals={name: arena.put(data)
                 for name, data in recording.signals.items()},
        annotations={name: arena.put(data)
                     for name, data in recording.annotations.items()},
        meta=dict(recording.meta),
    )


def recording_from_descriptor(descriptor: RecordingDescriptor,
                              ) -> Recording:
    """Materialise a recording as zero-copy views (worker side).

    The views are read-only — a stage mutating its input would corrupt
    the shared buffer for every other consumer, so that bug class is
    turned into an immediate ``ValueError``.
    """
    return Recording(
        fs=descriptor.fs,
        signals={name: attach_view(desc)
                 for name, desc in descriptor.signals.items()},
        annotations={name: attach_view(desc)
                     for name, desc in descriptor.annotations.items()},
        meta=dict(descriptor.meta),
    )


# -- the same descriptors over a plain buffer (shard files) ---------------

def pack_arrays(arrays) -> tuple:
    """Pack arrays into one contiguous buffer plus descriptors.

    The in-file twin of :meth:`ShmArena.put`: same alignment, same
    descriptor type, ``block=""`` marking "the accompanying buffer".
    Returns ``(buffer, [ShmDescriptor, ...])``.
    """
    arrays = [_require_supported(np.asarray(a)) for a in arrays]
    total = sum(aligned_nbytes(a.nbytes) for a in arrays)
    buffer = np.zeros(max(total, 1), dtype=np.uint8)
    descriptors = []
    cursor = 0
    for array in arrays:
        descriptor = ShmDescriptor(block="", shape=array.shape,
                                   dtype=array.dtype.str, offset=cursor)
        view = buffer[cursor: cursor + array.nbytes].view(array.dtype)
        view.reshape(array.shape or (1,))[...] = (
            array if array.shape else array.reshape(1))
        descriptors.append(descriptor)
        cursor = aligned_nbytes(cursor + array.nbytes)
    return buffer, descriptors


def buffer_view(buffer: np.ndarray,
                descriptor: ShmDescriptor) -> np.ndarray:
    """Zero-copy view of one packed array inside a plain buffer."""
    if descriptor.block:
        raise ConfigurationError(
            f"descriptor names shared-memory block "
            f"{descriptor.block!r}; use attach_view")
    raw = np.asarray(buffer, dtype=np.uint8)
    out = raw[descriptor.offset: descriptor.offset + descriptor.nbytes] \
        .view(descriptor.dtype).reshape(descriptor.shape)
    out = out.view()
    out.setflags(write=False)
    return out
