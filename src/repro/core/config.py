"""Pipeline-wide configuration.

:class:`PipelineConfig` bundles the per-stage configurations of the
paper's Fig 3 chain into one frozen (hence hashable) object.  Being
hashable matters: the filter-design cache (:mod:`repro.core.cache`)
keys memoized FIR taps and Butterworth sections by ``(fs, config)``,
so two pipelines sharing a configuration also share every design.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.ecg.pan_tompkins import PanTompkinsConfig
from repro.ecg.preprocessing import EcgFilterConfig
from repro.icg.points import PointConfig
from repro.icg.preprocessing import IcgFilterConfig

__all__ = ["PipelineConfig"]


@dataclass(frozen=True)
class PipelineConfig:
    """All stage configurations in one bundle (paper defaults)."""

    ecg: EcgFilterConfig = field(default_factory=EcgFilterConfig)
    icg: IcgFilterConfig = field(default_factory=IcgFilterConfig)
    points: PointConfig = field(default_factory=PointConfig)
    pan_tompkins: PanTompkinsConfig = field(
        default_factory=PanTompkinsConfig)
    #: Subject height for the Sramek-Bernstein stroke volume (cm);
    #: ``None`` skips SV/CO estimation.
    height_cm: Optional[float] = None
    #: Pathway calibrations for the SV formulas (1.0 = thoracic); see
    #: :class:`repro.icg.hemodynamics.HemodynamicsEstimator`.
    z0_calibration: float = 1.0
    dzdt_calibration: float = 1.0
