"""Command-line interface: the device experience in a terminal.

The subcommands cover the workflows a user of the real device (or a
reviewer of the paper, or an operator of the simulated fleet) would
want:

* ``measure`` — one touch measurement for a cohort subject, reporting
  the paper's payload (Z0, LVET, PEP, HR);
* ``cohort`` — batch-measure every cohort subject through the parallel
  executor (``--jobs``/``--backend``) and print one payload row per
  subject;
* ``study`` — run the evaluation protocol (optionally with ``--jobs``/
  ``--backend`` fan-out) and print Tables II-IV plus the figure
  series; ``--shards K --shard-index i --out shard.npz`` runs one
  machine's slice instead and writes the shard artifact;
* ``merge`` — merge shard artifacts back into the full study report;
* ``ingest`` — stream a simulated N-device fleet through the bounded
  work queue and the streaming executor, one payload row per session
  plus the queue's backpressure statistics; ``--rounds``/``--dropout``
  turn on multi-round operation with churn, and ``--journal DIR``
  writes every consumed chunk through a durable
  :class:`~repro.ingest.journal.ChunkJournal` first (sessions left
  open by dropouts or a kill then survive the process);
* ``serve`` — the supervised always-on analysis service: boot-recover
  the journal, multiplex a device fleet's sessions under the
  :mod:`repro.serve` state machine (deadlines, retry backoff,
  load-shedding degradation), run journal GC/archival as supervised
  periodic jobs, and answer ``repro serve --status`` over the
  journal directory's unix socket; SIGTERM drains gracefully
  (buffered chunks finalized, open sessions left durable);
* ``recover`` — re-open a journal directory after a crash: finalize
  every session whose trailer was journaled (bit-identical to the
  interrupted run), report the ones still open, and quarantine any
  the scan found damaged; ``--json`` emits the machine-readable
  report (per-session verdicts, damage taxonomy counts, bytes
  scanned) with the same exit-1-iff-damage contract;
* ``journal-gc`` — reclaim journal segments whose records belong to
  finalized, manifested sessions (delete fully dead segments, compact
  mixed ones); crash-safe and a conservative no-op on damage;
* ``archive`` — compact finalized sessions into a compressed cold-tier
  archive (``io/archive.py``) so ``journal-gc`` can reclaim their hot
  segments; the archive index keeps them addressable;
* ``rehydrate`` — pull one archived session back out of the cold tier,
  bit-identical, and re-run the stage graph over it (``--list`` shows
  the index instead);
* ``power`` — the Table I battery bookkeeping;
* ``monitor`` — a simulated CHF decompensation course with alerts;
* ``cache-stats`` — exercise a small cohort and report the filter-
  design and DSP-kernel cache hit rates (capacity planning);
  ``--backend process`` additionally reports each worker's
  process-local rebuild counts.

Run ``python -m repro.cli <command> --help`` for options.
"""

from __future__ import annotations

import argparse
import json
import signal
import sys
from pathlib import Path

import numpy as np

from repro.core import BeatToBeatPipeline, process_batch
from repro.core.cache import cache_statistics
from repro.core.executor import (
    BACKENDS,
    last_ipc_stats,
    persistent_pool_stats,
    process_worker_cache_stats,
)
from repro.device.power import PowerBudget, battery_life_hours, paper_operating_point
from repro.errors import ReproError
from repro.experiments import (
    ProtocolConfig,
    StudyShard,
    merge_shards,
    render_batch_summary,
    render_correlation_table,
    render_hemodynamics,
    render_mean_z_series,
    render_relative_errors,
    run_study,
    run_study_shard,
)
from repro.ingest import (
    ChunkArenaRing,
    ChunkJournal,
    DeviceFleet,
    FleetConfig,
    RecoveryManager,
    StreamingExecutor,
    ingest_stats,
    reset_ingest_stats,
)
from repro.ingest.gc import journal_bytes, journal_gc
from repro.io import load_shard, save_shard
from repro.io.archive import (
    archive_sessions,
    read_archive_index,
    rehydrate_session,
)
from repro.serve import (
    DeadlinePolicy,
    RetryPolicy,
    STATUS_SOCKET_NAME,
    ServeDaemon,
    read_status,
)
from repro.ingest.journal import DURABILITY_MODES
from repro.monitoring import (
    ChfMonitor,
    DecompensationScenario,
    WeightMonitor,
    simulate_decompensation_course,
)
from repro.synth import SynthesisConfig, default_cohort, synthesize_recording

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument schema (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Touch-based ICG/ECG reproduction (Sopic et al., "
                    "DATE 2016)")
    commands = parser.add_subparsers(dest="command", required=True)

    measure = commands.add_parser(
        "measure", help="one touch measurement for a cohort subject")
    measure.add_argument("--subject", type=int, default=3,
                         choices=range(1, 6),
                         help="cohort subject id (1-5)")
    measure.add_argument("--position", type=int, default=1,
                         choices=(1, 2, 3), help="arm position")
    measure.add_argument("--setup", default="device",
                         choices=("device", "thoracic"))
    measure.add_argument("--duration", type=float, default=30.0,
                         help="recording length in seconds")
    measure.add_argument("--frequency-khz", type=float, default=50.0,
                         help="injection frequency in kHz")

    cohort = commands.add_parser(
        "cohort", help="batch-measure the whole cohort through the "
                       "parallel executor")
    cohort.add_argument("--position", type=int, default=1,
                        choices=(1, 2, 3), help="arm position")
    cohort.add_argument("--setup", default="device",
                        choices=("device", "thoracic"))
    cohort.add_argument("--duration", type=float, default=30.0,
                        help="recording length in seconds")
    cohort.add_argument("--jobs", type=int, default=1,
                        help="workers (-1 = one per CPU)")
    cohort.add_argument("--backend", default="thread", choices=BACKENDS,
                        help="fan-out backend: threads share one design "
                             "cache, processes scale with cores")

    study = commands.add_parser(
        "study", help="run the evaluation protocol (Tables II-IV, "
                      "Figs 6-9), whole or one shard of it")
    study.add_argument("--quick", action="store_true",
                       help="reduced protocol (12 s, 2 frequencies)")
    study.add_argument("--jobs", type=int, default=1,
                       help="workers (-1 = one per CPU)")
    study.add_argument("--backend", default="thread", choices=BACKENDS,
                       help="fan-out backend: threads share one design "
                            "cache, processes scale with cores")
    study.add_argument("--shards", type=int, default=1,
                       help="total shard count of a distributed run")
    study.add_argument("--shard-index", type=int, default=0,
                       help="which shard this machine executes (0-based)")
    study.add_argument("--out", default=None,
                       help="write the shard artifact here (.npz; "
                            "required when --shards > 1)")

    merge = commands.add_parser(
        "merge", help="merge study shard artifacts into the full "
                      "report")
    merge.add_argument("shards", nargs="+",
                       help="the .npz artifacts of every shard 0..K-1")

    ingest = commands.add_parser(
        "ingest", help="stream a simulated device fleet through the "
                       "bounded work queue")
    ingest.add_argument("--devices", type=int, default=8,
                        help="number of concurrent simulated devices")
    ingest.add_argument("--duration", type=float, default=30.0,
                        help="recording length per device, seconds")
    ingest.add_argument("--chunk", type=float, default=2.0,
                        help="chunk length a device transmits, seconds")
    ingest.add_argument("--jobs", type=int, default=2,
                        help="finalize-pool workers")
    ingest.add_argument("--backend", default="thread", choices=BACKENDS,
                        help="finalize backend (as in process_batch)")
    ingest.add_argument("--max-chunks", type=int, default=64,
                        help="queue bound: buffered chunks before the "
                             "producer blocks (backpressure)")
    ingest.add_argument("--seed", type=int, default=0,
                        help="fleet seed (device parameters + jitter)")
    ingest.add_argument("--rounds", type=int, default=1,
                        help="measurement rounds per device "
                             "(long-lived load)")
    ingest.add_argument("--gap", type=float, default=5.0,
                        help="nominal gap between a device's rounds, "
                             "seconds (jittered 0.5-1.5x)")
    ingest.add_argument("--dropout", type=float, default=0.0,
                        help="per-session probability the user aborts "
                             "mid-measurement")
    ingest.add_argument("--no-rejoin", action="store_true",
                        help="dropped sessions never reconnect (they "
                             "stay open; requires --journal to be "
                             "durable)")
    ingest.add_argument("--journal", default=None,
                        help="journal directory: write every consumed "
                             "chunk through a durable chunk journal "
                             "(enables `repro recover` after a crash)")
    ingest.add_argument("--segment-records", type=int, default=None,
                        help="roll the journal to a new segment file "
                             "every N records")

    serve = commands.add_parser(
        "serve", help="supervised always-on analysis service: "
                      "boot-recover the journal, serve a device "
                      "fleet under session supervision, answer "
                      "--status over a unix socket")
    serve.add_argument("--journal", required=True,
                       help="journal directory the daemon owns (its "
                            "durable state and status socket live "
                            "here)")
    serve.add_argument("--status", action="store_true",
                       help="query a running daemon's health endpoint "
                            "instead of serving (prints the JSON "
                            "status document; exit 0 iff healthy)")
    serve.add_argument("--devices", type=int, default=8,
                       help="simulated fleet size to serve")
    serve.add_argument("--duration", type=float, default=30.0,
                       help="recording length per device, seconds")
    serve.add_argument("--chunk", type=float, default=2.0,
                       help="chunk length a device transmits, seconds")
    serve.add_argument("--seed", type=int, default=0,
                       help="fleet seed (device parameters + jitter)")
    serve.add_argument("--rounds", type=int, default=1,
                       help="measurement rounds per device")
    serve.add_argument("--gap", type=float, default=5.0,
                       help="nominal gap between rounds, seconds")
    serve.add_argument("--dropout", type=float, default=0.0,
                       help="per-session probability the user aborts "
                            "mid-measurement")
    serve.add_argument("--no-rejoin", action="store_true",
                       help="dropped sessions never reconnect (they "
                            "stay open in the journal for the next "
                            "boot)")
    serve.add_argument("--jobs", type=int, default=2,
                       help="finalize-pool workers")
    serve.add_argument("--backend", default="thread", choices=BACKENDS,
                       help="finalize backend (as in process_batch)")
    serve.add_argument("--max-chunks", type=int, default=64,
                       help="queue bound; also the denominator of the "
                            "overload ladder's pressure signal")
    serve.add_argument("--durability", default="strict",
                       choices=DURABILITY_MODES,
                       help="journal durability (overload may force "
                            "strict temporarily)")
    serve.add_argument("--segment-records", type=int, default=None,
                       help="roll the journal to a new segment file "
                            "every N records")
    serve.add_argument("--deadline", type=float, default=None,
                       help="quarantine a session whose source goes "
                            "silent this many seconds (default: "
                            "disabled)")
    serve.add_argument("--finalize-timeout", type=float, default=None,
                       help="quarantine a session whose finalize runs "
                            "longer than this many seconds (default: "
                            "disabled)")
    serve.add_argument("--retries", type=int, default=2,
                       help="attempts per transient fault before a "
                            "session is quarantined")
    serve.add_argument("--gc-interval", type=float, default=None,
                       help="run journal GC every N seconds as a "
                            "supervised job")
    serve.add_argument("--archive-dir", default=None,
                       help="cold-tier archive directory for the "
                            "supervised archival job")
    serve.add_argument("--archive-interval", type=float, default=None,
                       help="archive finalized sessions every N "
                            "seconds (needs --archive-dir)")
    serve.add_argument("--no-health", action="store_true",
                       help="do not bind the status socket")

    recover = commands.add_parser(
        "recover", help="replay a chunk journal after a crash: "
                        "finalize completed sessions, report open and "
                        "damaged ones")
    recover.add_argument("journal", help="the journal directory a "
                                         "previous `repro ingest "
                                         "--journal` wrote")
    recover.add_argument("--jobs", type=int, default=1,
                         help="finalize-pool workers")
    recover.add_argument("--backend", default="thread", choices=BACKENDS,
                         help="finalize backend (as in process_batch)")
    recover.add_argument("--json", action="store_true",
                         help="machine-readable report: per-session "
                              "verdicts, damage taxonomy counts, bytes "
                              "scanned (same exit code contract)")

    gc = commands.add_parser(
        "journal-gc", help="reclaim journal segments of finalized, "
                           "manifested sessions (crash-safe; no-op on "
                           "damage it cannot prove dead)")
    gc.add_argument("journal", help="the journal directory to collect")
    gc.add_argument("--dry-run", action="store_true",
                    help="report what would be reclaimed without "
                         "touching the journal")
    gc.add_argument("--json", action="store_true",
                    help="machine-readable GC report")

    archive = commands.add_parser(
        "archive", help="compact finalized journal sessions into a "
                        "compressed cold-tier archive (run journal-gc "
                        "afterwards to reclaim their segments)")
    archive.add_argument("journal", help="the journal directory to "
                                         "archive from")
    archive.add_argument("archive_dir", help="the cold-tier archive "
                                             "directory (index.json + "
                                             "archive-*.npz)")
    archive.add_argument("--sessions", nargs="+", default=None,
                         help="archive only these session ids (default: "
                              "every finalized, manifested session)")
    archive.add_argument("--json", action="store_true",
                         help="machine-readable archive report")

    rehydrate = commands.add_parser(
        "rehydrate", help="pull one archived session back out of the "
                          "cold tier (bit-identical) and re-run the "
                          "stage graph over it")
    rehydrate.add_argument("archive_dir", help="the cold-tier archive "
                                               "directory")
    rehydrate.add_argument("session", nargs="?", default=None,
                           help="session id to rehydrate (omit with "
                                "--list)")
    rehydrate.add_argument("--list", action="store_true",
                           help="list the archive index instead of "
                                "rehydrating")

    commands.add_parser("power", help="Table I battery bookkeeping")

    cache_stats = commands.add_parser(
        "cache-stats", help="filter-design / DSP-kernel cache hit rates "
                            "after a sample cohort run")
    cache_stats.add_argument("--duration", type=float, default=10.0,
                             help="seconds per sample recording")
    cache_stats.add_argument("--backend", default="thread",
                             choices=BACKENDS,
                             help="process: also report each pool "
                                  "worker's process-local rebuild "
                                  "counts")
    cache_stats.add_argument("--jobs", type=int, default=2,
                             help="workers for the sample batch")

    monitor = commands.add_parser(
        "monitor", help="simulated CHF decompensation course")
    monitor.add_argument("--subject", type=int, default=4,
                         choices=range(1, 6))
    monitor.add_argument("--days", type=int, default=40)
    monitor.add_argument("--onset", type=int, default=20)
    monitor.add_argument("--seed", type=int, default=42)
    return parser


def _cmd_measure(args) -> int:
    subject = default_cohort()[args.subject - 1]
    config = SynthesisConfig(
        duration_s=args.duration,
        injection_frequency_hz=args.frequency_khz * 1000.0)
    recording = synthesize_recording(subject, args.setup, args.position,
                                     config)
    result = BeatToBeatPipeline(recording.fs).process_recording(recording)
    summary = result.summary()
    print(f"Subject {subject.subject_id}, {args.setup}, position "
          f"{args.position}, {args.frequency_khz:.0f} kHz, "
          f"{args.duration:.0f} s")
    print(f"  Z0   = {summary['z0_ohm']:8.1f} ohm")
    print(f"  LVET = {summary['lvet_s'] * 1000:8.0f} ms")
    print(f"  PEP  = {summary['pep_s'] * 1000:8.0f} ms")
    print(f"  HR   = {summary['hr_bpm']:8.1f} bpm")
    print(f"  beats analysed: {result.n_beats_detected} "
          f"({len(result.failures)} failed)")
    return 0


def _cmd_cohort(args) -> int:
    cohort = default_cohort()
    config = SynthesisConfig(duration_s=args.duration)
    recordings = [
        synthesize_recording(subject, args.setup, args.position, config)
        for subject in cohort
    ]
    results = process_batch(recordings, n_jobs=args.jobs,
                            backend=args.backend)
    print(render_batch_summary(
        results,
        labels=[f"Subject {subject.subject_id}" for subject in cohort],
        title=(f"Cohort batch: {args.setup}, position {args.position}, "
               f"{args.duration:.0f} s")))
    return 0


def _render_study(study, config) -> None:
    """Print Tables II-IV and the figure series of a study result."""
    for position in config.positions:
        print()
        print(render_correlation_table(study.correlation_table(position),
                                       position))
    print()
    print(render_mean_z_series(study.thoracic_mean_z(),
                               "Fig 6: thoracic mean Z0 (ohm)"))
    for position in config.positions:
        print()
        print(render_mean_z_series(study.device_mean_z(position),
                                   f"Fig 7: device mean Z0 (ohm), "
                                   f"position {position}"))
    print()
    print(render_relative_errors(study.relative_errors()))
    for position in (1, 2):
        print()
        print(render_hemodynamics(
            study.hemodynamics(position,
                               config.frequencies_hz[-1]
                               if 50_000.0 not in config.frequencies_hz
                               else 50_000.0),
            position))
    print(f"\nOverall correlation: {study.mean_correlation():.3f} "
          f"(paper ~0.85); worst error "
          f"{study.worst_case_error() * 100:.1f} % (paper < 20 %)")


def _cmd_study(args) -> int:
    config = ProtocolConfig()
    if args.quick:
        config = config.quick()
    if args.shards < 1 or not 0 <= args.shard_index < args.shards:
        print(f"error: need 0 <= shard-index < shards, got "
              f"{args.shard_index}/{args.shards}", file=sys.stderr)
        return 2
    if args.shards > 1:
        if args.out is None:
            print("error: --shards > 1 requires --out for the shard "
                  "artifact", file=sys.stderr)
            return 2
        shard = run_study_shard(config=config, n_shards=args.shards,
                                shard_index=args.shard_index,
                                n_jobs=args.jobs, backend=args.backend)
        path = save_shard(shard, args.out)
        print(f"Shard {args.shard_index}/{args.shards}: "
              f"{shard.n_jobs_done} of {shard.n_jobs_total} protocol "
              f"jobs analysed")
        print(f"Artifact written to {path}")
        # Suggest sibling artifact names when the user's --out embeds
        # the shard index; otherwise stay generic — guessing wrong
        # filenames would invite a failing copy-paste.
        token = str(args.shard_index)
        if str(args.out).count(token) == 1:
            siblings = " ".join(str(args.out).replace(token, str(i))
                                for i in range(args.shards))
            print(f"Merge with: repro merge {siblings}")
        else:
            print(f"Merge with: repro merge <all {args.shards} shard "
                  f"artifacts>")
        return 0
    print(f"Running protocol: {len(default_cohort())} subjects, "
          f"{len(config.positions)} positions, "
          f"{len(config.frequencies_hz)} frequencies, "
          f"{config.duration_s:.0f} s each ...")
    study = run_study(config=config, n_jobs=args.jobs,
                      backend=args.backend)
    _render_study(study, config)
    if args.out:
        shard = StudyShard(
            config=config, subject_ids=list(study.subject_ids),
            n_shards=1, shard_index=0,
            n_jobs_total=len(study.device) + len(study.thoracic),
            device=study.device, thoracic=study.thoracic)
        path = save_shard(shard, args.out)
        print(f"Study artifact written to {path}")
    return 0


def _cmd_merge(args) -> int:
    shards = [load_shard(path) for path in args.shards]
    study = merge_shards(shards)
    print(f"Merged {len(shards)} shard(s): "
          f"{len(study.device) + len(study.thoracic)} analyses, "
          f"{len(study.subject_ids)} subjects")
    _render_study(study, study.config)
    return 0


def _print_session_rows(results) -> None:
    for session_id in sorted(results):
        session = results[session_id]
        summary = session.result.summary()
        meta = session.recording.meta
        print(f"  {session_id}: subject "
              f"{int(meta['subject_id'])} pos {int(meta['position'])} | "
              f"Z0 {summary['z0_ohm']:7.1f} ohm | "
              f"LVET {summary['lvet_s'] * 1000:4.0f} ms | "
              f"PEP {summary['pep_s'] * 1000:3.0f} ms | "
              f"HR {summary['hr_bpm']:5.1f} bpm | "
              f"{session.n_chunks} chunks")


def _cmd_ingest(args) -> int:
    fleet = DeviceFleet(FleetConfig(n_devices=args.devices,
                                    duration_s=args.duration,
                                    chunk_s=args.chunk,
                                    seed=args.seed,
                                    n_rounds=args.rounds,
                                    round_gap_s=args.gap,
                                    dropout=args.dropout,
                                    rejoin=not args.no_rejoin))
    journal = (None if args.journal is None
               else ChunkJournal(args.journal,
                                 segment_records=args.segment_records))
    executor = StreamingExecutor(n_workers=args.jobs,
                                 finalize_backend=args.backend,
                                 max_chunks=args.max_chunks,
                                 journal=journal)
    rounds = (f", {args.rounds} rounds" if args.rounds > 1 else "")
    churn = (f", dropout {args.dropout:.0%}" if args.dropout else "")
    print(f"Ingesting {args.devices} devices x {args.duration:.0f} s"
          f"{rounds}{churn} ({args.chunk:.1f} s chunks, queue bound "
          f"{args.max_chunks} chunks, {args.jobs} finalize "
          f"worker(s)"
          + (f", journal {args.journal}" if args.journal else "")
          + ") ...")
    try:
        results = executor.run(fleet)
    finally:
        if journal is not None:
            journal.close()
    _print_session_rows(results)
    if executor.last_open_sessions:
        print(f"Open sessions (journaled, awaiting trailer): "
              f"{', '.join(executor.last_open_sessions)}")
        print(f"Finalize later with: repro recover {args.journal}")
    stats = executor.last_queue_stats.as_dict()
    print(f"Queue: {stats['total_put']} chunks through, peak depth "
          f"{stats['peak_depth']} ({stats['peak_bytes']} bytes), "
          f"{stats['blocked_puts']} backpressure stalls")
    return 0


def _cmd_serve(args) -> int:
    if args.status:
        doc = read_status(Path(args.journal) / STATUS_SOCKET_NAME)
        print(json.dumps(doc, indent=2, sort_keys=True))
        return 0 if doc.get("ok") else 1
    fleet = DeviceFleet(FleetConfig(n_devices=args.devices,
                                    duration_s=args.duration,
                                    chunk_s=args.chunk,
                                    seed=args.seed,
                                    n_rounds=args.rounds,
                                    round_gap_s=args.gap,
                                    dropout=args.dropout,
                                    rejoin=not args.no_rejoin))
    daemon = ServeDaemon(
        args.journal,
        n_workers=args.jobs,
        finalize_backend=args.backend,
        max_chunks=args.max_chunks,
        durability=args.durability,
        segment_records=args.segment_records,
        deadline=DeadlinePolicy(chunk_deadline_s=args.deadline,
                                finalize_timeout_s=args.finalize_timeout),
        retry=RetryPolicy(max_attempts=args.retries),
        gc_interval_s=args.gc_interval,
        archive_dir=args.archive_dir,
        archive_interval_s=args.archive_interval,
        health=not args.no_health)

    def drain(_signum, _frame):
        # Graceful shutdown: stop admitting, finish what is buffered
        # and submitted, flush, exit.  Open sessions stay journaled.
        daemon.stop()

    previous = {}
    for signum in (signal.SIGTERM, signal.SIGINT):
        previous[signum] = signal.signal(signum, drain)
    print(f"Serving {args.devices} device(s) x {args.duration:.0f} s "
          f"over journal {args.journal} "
          f"({args.durability} durability, {args.jobs} finalize "
          f"worker(s)"
          + ("" if args.no_health
             else f"; status: repro serve --status --journal "
                  f"{args.journal}") + ") ...")
    try:
        results = daemon.serve([fleet], once=True)
    finally:
        for signum, handler in previous.items():
            signal.signal(signum, handler)
    _print_session_rows(results)
    status = daemon.status()
    counts = status["sessions"]["counts"]
    print(f"Sessions: {counts['done']} done, "
          f"{counts['accepting']} still open (journaled), "
          f"{counts['quarantined']} quarantined"
          + (f", {len(status['shed_sessions'])} shed"
             if status["shed_sessions"] else ""))
    for record in daemon.supervisor.in_state("quarantined"):
        print(f"QUARANTINED {record.session_id}: {record.reason}")
    stats = ingest_stats()
    print(f"Policies: {stats.serve_retries} retried fault(s), "
          f"{stats.serve_deadline_hits} deadline hit(s), "
          f"{stats.serve_degradations} degradation(s), "
          f"{stats.serve_sheds} shed(s)")
    return 0


def _damage_taxonomy(damaged: dict, unattributed: int,
                     torn: bool) -> dict:
    """Count quarantine reasons by failure class — the aggregate view
    of the journal damage taxonomy (ARCHITECTURE.md table)."""
    counts = {"crc_mismatch": 0, "sequence_break": 0,
              "manifest_mismatch": 0, "undecodable": 0, "other": 0}
    for reason in damaged.values():
        if "crc mismatch" in reason:
            counts["crc_mismatch"] += 1
        elif "sequence broken" in reason:
            counts["sequence_break"] += 1
        elif "manifest records" in reason:
            counts["manifest_mismatch"] += 1
        elif "undecodable" in reason:
            counts["undecodable"] += 1
        else:
            counts["other"] += 1
    counts["unattributed_records"] = int(unattributed)
    counts["torn_tail"] = 1 if torn else 0
    return counts


def _cmd_recover(args) -> int:
    bytes_scanned = journal_bytes(args.journal)
    manager = RecoveryManager(args.journal)
    outcome = manager.recover(n_workers=args.jobs,
                              finalize_backend=args.backend)
    exit_code = 1 if (outcome.damaged
                      or outcome.unattributed_damage) else 0
    if args.json:
        sessions = {}
        for sid, session in outcome.results.items():
            summary = session.result.summary()
            sessions[sid] = {
                "verdict": "recovered",
                "n_chunks": int(session.n_chunks),
                "payload": {key: float(value)
                            for key, value in summary.items()},
            }
        for sid in outcome.open_sessions:
            sessions[sid] = {"verdict": "open"}
        for sid, reason in outcome.damaged.items():
            sessions[sid] = {"verdict": "damaged", "reason": reason}
        print(json.dumps({
            "journal": str(args.journal),
            "n_records": int(outcome.n_records),
            "bytes_scanned": int(bytes_scanned),
            "torn_tail_recovered": bool(outcome.torn_tail_recovered),
            "sessions": sessions,
            "damage": _damage_taxonomy(outcome.damaged,
                                       outcome.unattributed_damage,
                                       outcome.torn_tail_recovered),
            "exit_code": exit_code,
        }, indent=2, sort_keys=True))
        return exit_code
    print(f"Journal {args.journal}: {outcome.n_records} records"
          + (", torn tail truncated" if outcome.torn_tail_recovered
             else ""))
    print(f"Recovered {len(outcome.results)} session(s):")
    _print_session_rows(outcome.results)
    if outcome.open_sessions:
        print(f"Still open (no trailer journaled): "
              f"{', '.join(outcome.open_sessions)}")
    for session_id in sorted(outcome.damaged):
        print(f"DAMAGED {session_id}: {outcome.damaged[session_id]}")
    if outcome.unattributed_damage:
        print(f"DAMAGED records not attributable to a session: "
              f"{outcome.unattributed_damage}")
    return exit_code


def _cmd_journal_gc(args) -> int:
    report = journal_gc(args.journal, dry_run=args.dry_run)
    if args.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
        return 0
    verb = "Would reclaim" if args.dry_run else "Reclaimed"
    print(f"Journal {args.journal}: {report.bytes_before} -> "
          f"{report.bytes_after} bytes")
    print(f"{verb} {report.records_dropped} record(s): "
          f"{len(report.dropped_segments)} segment(s) dropped, "
          f"{len(report.compacted_segments)} compacted "
          f"({report.records_kept} live record(s) kept)")
    if report.sessions_collected:
        print(f"Sessions collected: "
              f"{', '.join(report.sessions_collected)}")
    for name, reason in report.skipped_segments:
        print(f"SKIPPED {name}: {reason}")
    if report.torn_tail_repaired:
        print("Torn tail truncated before collection")
    if report.noop:
        print("Nothing to collect")
    return 0


def _cmd_archive(args) -> int:
    report = archive_sessions(args.journal, args.archive_dir,
                              session_ids=args.sessions)
    if args.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
        return 1 if report.skipped else 0
    if report.file is not None:
        print(f"Archived {len(report.archived)} session(s) "
              f"({report.n_chunks} chunks) into {report.file} "
              f"({report.bytes_written} bytes)")
        for sid in report.archived:
            print(f"  {sid}")
    if report.already_archived:
        print(f"Already archived: "
              f"{', '.join(report.already_archived)}")
    for sid, reason in sorted(report.skipped.items()):
        print(f"SKIPPED {sid}: {reason}")
    if report.file is None and not report.already_archived:
        print("Nothing to archive")
    print(f"Reclaim the archived sessions' journal segments with: "
          f"repro journal-gc {args.journal}")
    return 1 if report.skipped else 0


def _cmd_rehydrate(args) -> int:
    if args.list:
        index = read_archive_index(args.archive_dir)
        print(f"Archive {args.archive_dir}: {len(index)} session(s)")
        for sid in sorted(index):
            entry = index[sid]
            print(f"  {sid}: {entry['n_chunks']} chunks, "
                  f"{entry['n_samples']} samples @ {entry['fs']:.0f} Hz "
                  f"in {entry['file']}")
        return 0
    if args.session is None:
        print("error: a session id is required unless --list is given",
              file=sys.stderr)
        return 2
    chunks = rehydrate_session(args.archive_dir, args.session)
    executor = StreamingExecutor(n_workers=1, preview=False)
    results = executor.run(iter(chunks))
    print(f"Rehydrated {args.session} from {args.archive_dir}: "
          f"{len(chunks)} chunks")
    _print_session_rows(results)
    return 0


def _cmd_power(_args) -> int:
    budget = PowerBudget()
    duties = paper_operating_point()
    print("Operating point: MCU 50 %, radio 1 %, signal chain on, IMU "
          "off")
    print(f"Average current : "
          f"{budget.average_current_ma(duties):.3f} mA")
    print(f"Battery life    : {battery_life_hours():.1f} h on 710 mAh "
          f"(paper: 106 h)")
    return 0


def _cmd_monitor(args) -> int:
    subject = default_cohort()[args.subject - 1]
    scenario = DecompensationScenario(n_days=args.days,
                                      onset_day=args.onset)
    course = simulate_decompensation_course(
        subject, scenario, np.random.default_rng(args.seed))
    icg_day = ChfMonitor().run(course)
    weight_day = WeightMonitor().run(course)
    print(f"Subject {subject.subject_id}: {args.days}-day course, fluid "
          f"onset day {args.onset}")
    print(f"  ICG multi-parameter alert : day {icg_day}"
          + ("" if icg_day < 0 else
             f" ({icg_day - args.onset} days after onset)"))
    print(f"  weight-gain rule (2 kg/7d): "
          + (f"day {weight_day}" if weight_day >= 0 else "never fired"))
    return 0


def _render_cache_table(stats: dict, indent: str = "  ") -> None:
    for name, entry in stats.items():
        lookups = entry["hits"] + entry["misses"]
        rate = entry["hits"] / lookups if lookups else 0.0
        print(f"{indent}{name:8s}: {entry['entries']:3d} entries, "
              f"{entry['hits']:5d} hits / {entry['misses']:3d} misses "
              f"({rate * 100:5.1f} % hit rate)")


def _cmd_cache_stats(args) -> int:
    """Run a small cohort through the shared caches and report their
    hit/miss counters — the capacity-planning numbers (how much design
    work a warm process saves per recording).  Under
    ``--backend process`` the pool workers' process-local caches are
    invisible to this process, so each worker ships a snapshot home
    with its job batch and the per-worker rebuild counts (misses) are
    reported too."""
    cohort = default_cohort()
    config = SynthesisConfig(duration_s=args.duration)
    recordings = [
        synthesize_recording(subject, "device", 1, config)
        for subject in cohort
    ]
    process_batch(recordings, n_jobs=args.jobs, backend=args.backend)
    process_batch(recordings, n_jobs=args.jobs, backend=args.backend)
    print(f"Cache statistics after 2 x {len(recordings)} recordings "
          f"({args.duration:.0f} s each, backend={args.backend}):")
    _render_cache_table(cache_statistics())
    if args.backend == "process":
        workers = process_worker_cache_stats()
        print(f"Per-worker process-local caches ({len(workers)} "
              f"worker(s), rebuilds = misses):")
        for pid in sorted(workers):
            print(f"  worker pid {pid}:")
            _render_cache_table(workers[pid], indent="    ")
        stats = last_ipc_stats()
        if stats is not None:
            print("Shared-memory data plane (last fan-out):")
            print(f"  {stats.n_descriptors} descriptors | pipe "
                  f"{stats.payload_bytes / 1024:.1f} KiB | shm "
                  f"{stats.data_plane_bytes / 1024:.1f} KiB | "
                  f"collapse {stats.descriptor_collapse:.0f}x "
                  f"(legacy pickle plane: "
                  f"{stats.legacy_bytes / 1024:.1f} KiB)")
        pool = persistent_pool_stats()
        state = ("disabled" if not pool["enabled"] else
                 f"{pool['n_workers']} worker(s), pids "
                 f"{pool['pids']}" if pool["n_workers"] else "cold")
        print("Warm process pool (persistent across fan-outs):")
        print(f"  {pool['created']} built / {pool['reused']} reused "
              f"| {state}")
    _render_ingest_stats()
    return 0


def _render_ingest_stats() -> None:
    """Stream a small fleet through the zero-copy ingest plane (arena
    ring + group-commit iovec journal) and report its counters: the
    capacity-planning numbers for the descriptor transport."""
    import tempfile

    fleet = DeviceFleet(FleetConfig(n_devices=3, duration_s=6.0,
                                    chunk_s=2.0, seed=2))
    # Utilization snapshot: publish the fleet into a standalone ring
    # and read per-session fill before the executor releases anything.
    with ChunkArenaRing(size_hint=fleet.session_nbytes) as ring:
        for chunk in fleet:
            ring.publish(chunk)
        utilization = ring.session_utilization()
    reset_ingest_stats()
    with tempfile.TemporaryDirectory() as tmp:
        try:
            with ChunkJournal(tmp, durability="group", codec="iov",
                              fsync=True) as journal:
                StreamingExecutor(n_workers=1, preview=False,
                                  journal=journal).run(fleet)
        except ReproError as exc:         # never block the report
            print(f"Zero-copy ingest plane: unavailable ({exc})")
            return
    stats = ingest_stats()
    total = stats.descriptor_chunks + stats.object_chunks
    print(f"Zero-copy ingest plane ({fleet.config.n_devices} devices "
          f"through a group-commit journal):")
    print(f"  {stats.descriptor_chunks}/{total} descriptor chunks | "
          f"{stats.bytes_published / 1024:.1f} KiB published | "
          f"{stats.bytes_copied} B copied on the hot path")
    print(f"  arena: {stats.arena_blocks} block(s), "
          f"{stats.arena_bytes_used / 1024:.1f} / "
          f"{stats.arena_bytes_reserved / 1024:.1f} KiB used "
          f"({stats.arena_utilization * 100:.1f} %), "
          f"{stats.arena_sessions_released} session(s) released")
    for sid in sorted(utilization):
        print(f"    session {sid}: "
              f"{utilization[sid] * 100:5.1f} % of its ring")
    print(f"  journal: {stats.journal_records} records, "
          f"{stats.journal_bytes_written / 1024:.1f} KiB | "
          f"group commit: {stats.group_flushes} flush(es), "
          f"{stats.group_fsyncs} fsync(s)")
    _render_serve_stats()


def _render_serve_stats() -> None:
    """Serve a tiny fleet through the supervised daemon and report the
    service counters — the same numbers the ``repro serve --status``
    endpoint exposes, from the same :func:`ingest_stats` source."""
    import tempfile

    fleet = DeviceFleet(FleetConfig(n_devices=2, duration_s=4.0,
                                    chunk_s=2.0, seed=3))
    with tempfile.TemporaryDirectory() as tmp:
        try:
            daemon = ServeDaemon(tmp, n_workers=1, health=False)
            results = daemon.run_once(fleet)
        except ReproError as exc:         # never block the report
            print(f"Serve daemon: unavailable ({exc})")
            return
    stats = ingest_stats()
    print(f"Serve daemon ({fleet.config.n_devices} supervised "
          f"sessions):")
    print(f"  sessions: {stats.serve_sessions_accepted} accepted | "
          f"{stats.serve_sessions_done} done | "
          f"{stats.serve_sessions_quarantined} quarantined | "
          f"{len(results)} finalized this pass")
    print(f"  policies: {stats.serve_sheds} shed(s), "
          f"{stats.serve_retries} retried fault(s), "
          f"{stats.serve_deadline_hits} deadline hit(s), "
          f"{stats.serve_degradations} degradation(s)")


_COMMANDS = {
    "measure": _cmd_measure,
    "cohort": _cmd_cohort,
    "study": _cmd_study,
    "merge": _cmd_merge,
    "ingest": _cmd_ingest,
    "serve": _cmd_serve,
    "recover": _cmd_recover,
    "journal-gc": _cmd_journal_gc,
    "archive": _cmd_archive,
    "rehydrate": _cmd_rehydrate,
    "power": _cmd_power,
    "monitor": _cmd_monitor,
    "cache-stats": _cmd_cache_stats,
}


def main(argv=None) -> int:
    """Entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
