"""Spectral estimation: periodogram, Welch PSD and band power.

Used throughout the library to verify filter behaviour (the paper
motivates the 20 Hz ICG low-pass by inspecting the signal's spectrum)
and by the signal-quality metrics in :mod:`repro.ecg.quality`.
"""

from __future__ import annotations

import numpy as np

from repro._compat import trapezoid
from repro.dsp import windows as _windows
from repro.dsp._signal import as_signal as _as_signal
from repro.errors import ConfigurationError, SignalError

__all__ = [
    "periodogram",
    "welch",
    "band_power",
    "total_power",
    "dominant_frequency",
]


def periodogram(x, fs: float, window="hann", detrend: bool = True):
    """One-sided periodogram PSD estimate.

    Returns ``(freqs, psd)`` with PSD in units of ``x**2 / Hz``,
    normalised so that ``sum(psd) * df`` approximates the signal power.
    """
    x = _as_signal(x)
    if fs <= 0:
        raise ConfigurationError(f"sampling rate must be positive, got {fs}")
    if detrend:
        x = x - x.mean()
    w = _windows.get_window(window, x.size, periodic=True)
    scale = 1.0 / (fs * np.sum(w**2))
    spectrum = np.fft.rfft(x * w)
    psd = scale * np.abs(spectrum) ** 2
    # One-sided correction: double everything except DC (and Nyquist for
    # even lengths).
    if x.size % 2 == 0:
        psd[1:-1] *= 2.0
    else:
        psd[1:] *= 2.0
    freqs = np.fft.rfftfreq(x.size, d=1.0 / fs)
    return freqs, psd


def welch(x, fs: float, nperseg: int = 256, overlap: float = 0.5,
          window="hann", detrend: bool = True):
    """Welch-averaged PSD estimate.

    Segments of ``nperseg`` samples with fractional ``overlap`` are
    windowed, periodogrammed, and averaged.  Short inputs degrade
    gracefully to a single segment.
    """
    x = _as_signal(x)
    if fs <= 0:
        raise ConfigurationError(f"sampling rate must be positive, got {fs}")
    if nperseg < 8:
        raise ConfigurationError(f"nperseg must be >= 8, got {nperseg}")
    if not 0.0 <= overlap < 1.0:
        raise ConfigurationError(f"overlap must be in [0, 1), got {overlap}")
    nperseg = min(int(nperseg), x.size)
    step = max(1, int(round(nperseg * (1.0 - overlap))))
    starts = range(0, x.size - nperseg + 1, step)
    if not starts:
        starts = [0]
    psd_accumulator = None
    count = 0
    freqs = None
    for start in starts:
        segment = x[start: start + nperseg]
        freqs, psd = periodogram(segment, fs, window=window, detrend=detrend)
        psd_accumulator = psd if psd_accumulator is None else psd_accumulator + psd
        count += 1
    return freqs, psd_accumulator / count


def band_power(freqs, psd, low_hz: float, high_hz: float) -> float:
    """Integrated PSD over ``[low_hz, high_hz]`` (trapezoidal rule)."""
    freqs = np.asarray(freqs, dtype=float)
    psd = np.asarray(psd, dtype=float)
    if freqs.shape != psd.shape:
        raise SignalError("freqs and psd must have matching shapes")
    if low_hz >= high_hz:
        raise ConfigurationError(
            f"band limits must satisfy low < high, got [{low_hz}, {high_hz}]"
        )
    mask = (freqs >= low_hz) & (freqs <= high_hz)
    if mask.sum() < 2:
        return 0.0
    return float(trapezoid(psd[mask], freqs[mask]))


def total_power(freqs, psd) -> float:
    """Integrated PSD over the full one-sided axis."""
    freqs = np.asarray(freqs, dtype=float)
    psd = np.asarray(psd, dtype=float)
    return float(trapezoid(psd, freqs))


def dominant_frequency(x, fs: float, low_hz: float = 0.0,
                       high_hz: float = None) -> float:
    """Frequency of the PSD maximum, optionally restricted to a band.

    Used e.g. to recover respiration rate from the impedance baseline.
    """
    freqs, psd = welch(x, fs, nperseg=min(1024, max(8, len(np.atleast_1d(x)))))
    if high_hz is None:
        high_hz = fs / 2.0
    mask = (freqs >= low_hz) & (freqs <= high_hz)
    if not mask.any():
        raise SignalError(
            f"no PSD bins inside the requested band [{low_hz}, {high_hz}] Hz"
        )
    band_freqs = freqs[mask]
    band_psd = psd[mask]
    return float(band_freqs[int(np.argmax(band_psd))])
