"""Grey-scale 1-D mathematical morphology for baseline-wander removal.

The paper removes ECG baseline wander with the morphological filtering
scheme of Sun, Chan and Krishnan (2002): an *opening* (erosion then
dilation) removes peaks, a subsequent *closing* (dilation then erosion)
removes pits, and the result — the estimated baseline drift — is
subtracted from the original signal.

All operators use flat (zero-height) structuring elements, so erosion and
dilation reduce to sliding-window minimum and maximum.  Edges are handled
by replicating the first/last samples, which keeps the operators
extensive/anti-extensive near the boundaries.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.dsp._signal import as_signal as _as_signal
from repro.errors import ConfigurationError

__all__ = [
    "erode",
    "dilate",
    "opening",
    "closing",
    "estimate_baseline",
    "remove_baseline",
    "default_element_lengths",
]


def _check_size(size: int) -> int:
    if not isinstance(size, (int, np.integer)):
        raise ConfigurationError(
            f"structuring element size must be an integer, got {size!r}"
        )
    if size < 1:
        raise ConfigurationError(
            f"structuring element size must be >= 1, got {size}"
        )
    if size % 2 == 0:
        raise ConfigurationError(
            f"structuring element size must be odd for a centred origin, "
            f"got {size}"
        )
    return int(size)


def _sliding_extreme(x: np.ndarray, size: int, take_max: bool) -> np.ndarray:
    """Sliding max/min by the van Herk/Gil-Werman two-scan recursion.

    O(n) regardless of the element size — the window view's O(n * size)
    reduction was the dominant cost of baseline estimation at ECG
    rates.  Max/min are reduction-order independent, so the output is
    bit-identical to the windowed reduce it replaces.
    """
    half = size // 2
    op = np.maximum if take_max else np.minimum
    identity = -np.inf if take_max else np.inf
    n_windows = x.size
    length = n_windows + 2 * half
    n_blocks = -(-length // size)
    buf = np.full(n_blocks * size, identity)
    buf[:half] = x[0]
    buf[half: half + x.size] = x
    buf[half + x.size: length] = x[-1]
    blocks = buf.reshape(n_blocks, size)
    prefix = op.accumulate(blocks, axis=1).ravel()
    suffix = op.accumulate(blocks[:, ::-1], axis=1)[:, ::-1].ravel()
    # Window starting at i spans at most two blocks: the tail of one
    # (suffix) and the head of the next (prefix).
    return op(suffix[:n_windows],
              prefix[size - 1: size - 1 + n_windows])


def erode(x, size: int) -> np.ndarray:
    """Grey-scale erosion: sliding-window minimum over ``size`` samples."""
    x = _as_signal(x)
    size = _check_size(size)
    if size == 1:
        return x.copy()
    return _sliding_extreme(x, size, take_max=False)


def dilate(x, size: int) -> np.ndarray:
    """Grey-scale dilation: sliding-window maximum over ``size`` samples."""
    x = _as_signal(x)
    size = _check_size(size)
    if size == 1:
        return x.copy()
    return _sliding_extreme(x, size, take_max=True)


def opening(x, size: int) -> np.ndarray:
    """Opening (erosion then dilation): suppresses peaks narrower than
    the structuring element while leaving the rest mostly intact."""
    return dilate(erode(x, size), size)


def closing(x, size: int) -> np.ndarray:
    """Closing (dilation then erosion): fills pits narrower than the
    structuring element."""
    return erode(dilate(x, size), size)


def default_element_lengths(fs: float) -> tuple:
    """Structuring-element lengths for ECG baseline estimation.

    Following Sun et al., the first element must be wider than the QRS
    complex (0.2 s) so the opening flattens R peaks, and the second must
    be wider than the T wave (we use 1.5 x the first) so the closing
    fills the pits the opening leaves behind.  Both lengths are rounded
    up to odd sample counts.
    """
    if fs <= 0:
        raise ConfigurationError(f"sampling rate must be positive, got {fs}")
    first = int(round(0.2 * fs))
    second = int(round(0.3 * fs))
    first += 1 - first % 2   # force odd
    second += 1 - second % 2
    return max(first, 3), max(second, 3)


def estimate_baseline(x, fs: float,
                      lengths: Optional[Tuple[int, int]] = None) -> np.ndarray:
    """Estimate baseline wander by an opening followed by a closing.

    Matches the paper's description: "It first applies an erosion
    followed by a dilation, which removes peaks in the signal.  Then, the
    resultant waveforms with pits are removed by a dilation followed by
    an erosion.  The final result is an estimate of the baseline drift."
    """
    x = _as_signal(x)
    if lengths is None:
        lengths = default_element_lengths(fs)
    first, second = lengths
    return closing(opening(x, first), second)


def remove_baseline(x, fs: float,
                    lengths: Optional[Tuple[int, int]] = None) -> np.ndarray:
    """Baseline-corrected signal: ``x - estimate_baseline(x)``."""
    x = _as_signal(x)
    return x - estimate_baseline(x, fs, lengths)
