"""Grey-scale 1-D mathematical morphology for baseline-wander removal.

The paper removes ECG baseline wander with the morphological filtering
scheme of Sun, Chan and Krishnan (2002): an *opening* (erosion then
dilation) removes peaks, a subsequent *closing* (dilation then erosion)
removes pits, and the result — the estimated baseline drift — is
subtracted from the original signal.

All operators use flat (zero-height) structuring elements, so erosion and
dilation reduce to sliding-window minimum and maximum.  Edges are handled
by replicating the first/last samples, which keeps the operators
extensive/anti-extensive near the boundaries.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.dsp._signal import as_signal as _as_signal
from repro.dsp._signal import check_lengths as _check_lengths
from repro.errors import ConfigurationError

__all__ = [
    "erode",
    "dilate",
    "opening",
    "closing",
    "estimate_baseline",
    "remove_baseline",
    "remove_baseline_batch",
    "default_element_lengths",
]


def _check_size(size: int) -> int:
    if not isinstance(size, (int, np.integer)):
        raise ConfigurationError(
            f"structuring element size must be an integer, got {size!r}"
        )
    if size < 1:
        raise ConfigurationError(
            f"structuring element size must be >= 1, got {size}"
        )
    if size % 2 == 0:
        raise ConfigurationError(
            f"structuring element size must be odd for a centred origin, "
            f"got {size}"
        )
    return int(size)


def _sliding_extreme(x: np.ndarray, size: int, take_max: bool) -> np.ndarray:
    """Sliding max/min by the van Herk/Gil-Werman two-scan recursion.

    O(n) regardless of the element size — the window view's O(n * size)
    reduction was the dominant cost of baseline estimation at ECG
    rates.  Max/min are reduction-order independent, so the output is
    bit-identical to the windowed reduce it replaces.
    """
    half = size // 2
    op = np.maximum if take_max else np.minimum
    identity = -np.inf if take_max else np.inf
    n_windows = x.size
    length = n_windows + 2 * half
    n_blocks = -(-length // size)
    buf = np.full(n_blocks * size, identity)
    buf[:half] = x[0]
    buf[half: half + x.size] = x
    buf[half + x.size: length] = x[-1]
    blocks = buf.reshape(n_blocks, size)
    prefix = op.accumulate(blocks, axis=1).ravel()
    suffix = op.accumulate(blocks[:, ::-1], axis=1)[:, ::-1].ravel()
    # Window starting at i spans at most two blocks: the tail of one
    # (suffix) and the head of the next (prefix).
    return op(suffix[:n_windows],
              prefix[size - 1: size - 1 + n_windows])


def _sliding_extreme_rows(x: np.ndarray, lengths: np.ndarray, size: int,
                          take_max: bool) -> np.ndarray:
    """Row-batched :func:`_sliding_extreme` over a leading axis.

    Each row's window reductions replicate that row's own first/last
    valid sample at the edges and ignore the stacked tail (the
    identity fill never wins a max/min).  Max/min are exact — no
    rounding — so any correct sliding-window evaluation returns the
    same bits as the per-row two-scan; only the block alignment
    differs here.  Columns beyond a row's length are unspecified.
    """
    half = size // 2
    op = np.maximum if take_max else np.minimum
    identity = -np.inf if take_max else np.inf
    n_rows, width = x.shape
    rows = np.arange(n_rows)[:, None]
    buf_len = width + 2 * half
    n_blocks = -(-buf_len // size)
    buf = np.full((n_rows, n_blocks * size), identity)
    buf[:, half: half + width] = x
    # Mask each row's stacked tail, then write the edge replications.
    cols = np.arange(width)[None, :]
    buf[:, half: half + width][cols >= lengths[:, None]] = identity
    buf[:, :half] = x[:, :1]
    j = np.arange(half)[None, :]
    last = x[rows, lengths[:, None] - 1]
    np.put_along_axis(buf, half + lengths[:, None] + j,
                      np.broadcast_to(last, (n_rows, half)).copy(),
                      axis=1)
    blocks = buf.reshape(n_rows, n_blocks, size)
    prefix = op.accumulate(blocks, axis=2).reshape(n_rows, -1)
    suffix = op.accumulate(blocks[:, :, ::-1],
                           axis=2)[:, :, ::-1].reshape(n_rows, -1)
    return op(suffix[:, :width], prefix[:, size - 1: size - 1 + width])


def _morph_rows(x: np.ndarray, lengths: np.ndarray, size: int,
                take_max: bool) -> np.ndarray:
    if size == 1:
        return x.copy()
    return _sliding_extreme_rows(x, lengths, size, take_max)


def remove_baseline_batch(x, fs: float, lengths=None,
                          element_lengths: Optional[Tuple[int, int]] = None,
                          ) -> np.ndarray:
    """Row-batched :func:`remove_baseline` over a leading axis.

    ``x`` is a ``(n_rows, width)`` matrix of zero-stacked signals, row
    ``i`` valid up to ``lengths[i]``.  Opening, closing and the final
    subtraction act on each row's own samples with that row's edge
    replication, so row ``i``'s first ``lengths[i]`` outputs are
    bit-identical to ``remove_baseline(x[i, :lengths[i]], fs,
    element_lengths)`` — max/min and the subtraction are exact.
    Columns beyond a row's length are unspecified.
    """
    lengths = _check_lengths(x, lengths)
    x = np.asarray(x, dtype=float)
    if element_lengths is None:
        element_lengths = default_element_lengths(fs)
    first, second = (_check_size(element_lengths[0]),
                     _check_size(element_lengths[1]))
    if lengths.size and int(lengths.min()) < 2:
        raise ConfigurationError(
            "batched baseline removal needs >= 2 samples per row")
    opened = _morph_rows(_morph_rows(x, lengths, first, take_max=False),
                         lengths, first, take_max=True)
    baseline = _morph_rows(_morph_rows(opened, lengths, second,
                                       take_max=True),
                           lengths, second, take_max=False)
    return x - baseline


def erode(x, size: int) -> np.ndarray:
    """Grey-scale erosion: sliding-window minimum over ``size`` samples."""
    x = _as_signal(x)
    size = _check_size(size)
    if size == 1:
        return x.copy()
    return _sliding_extreme(x, size, take_max=False)


def dilate(x, size: int) -> np.ndarray:
    """Grey-scale dilation: sliding-window maximum over ``size`` samples."""
    x = _as_signal(x)
    size = _check_size(size)
    if size == 1:
        return x.copy()
    return _sliding_extreme(x, size, take_max=True)


def opening(x, size: int) -> np.ndarray:
    """Opening (erosion then dilation): suppresses peaks narrower than
    the structuring element while leaving the rest mostly intact."""
    return dilate(erode(x, size), size)


def closing(x, size: int) -> np.ndarray:
    """Closing (dilation then erosion): fills pits narrower than the
    structuring element."""
    return erode(dilate(x, size), size)


def default_element_lengths(fs: float) -> tuple:
    """Structuring-element lengths for ECG baseline estimation.

    Following Sun et al., the first element must be wider than the QRS
    complex (0.2 s) so the opening flattens R peaks, and the second must
    be wider than the T wave (we use 1.5 x the first) so the closing
    fills the pits the opening leaves behind.  Both lengths are rounded
    up to odd sample counts.
    """
    if fs <= 0:
        raise ConfigurationError(f"sampling rate must be positive, got {fs}")
    first = int(round(0.2 * fs))
    second = int(round(0.3 * fs))
    first += 1 - first % 2   # force odd
    second += 1 - second % 2
    return max(first, 3), max(second, 3)


def estimate_baseline(x, fs: float,
                      lengths: Optional[Tuple[int, int]] = None) -> np.ndarray:
    """Estimate baseline wander by an opening followed by a closing.

    Matches the paper's description: "It first applies an erosion
    followed by a dilation, which removes peaks in the signal.  Then, the
    resultant waveforms with pits are removed by a dilation followed by
    an erosion.  The final result is an estimate of the baseline drift."
    """
    x = _as_signal(x)
    if lengths is None:
        lengths = default_element_lengths(fs)
    first, second = lengths
    return closing(opening(x, first), second)


def remove_baseline(x, fs: float,
                    lengths: Optional[Tuple[int, int]] = None) -> np.ndarray:
    """Baseline-corrected signal: ``x - estimate_baseline(x)``."""
    x = _as_signal(x)
    return x - estimate_baseline(x, fs, lengths)
