"""Discrete wavelet transform and wavelet denoising.

The paper's related work ([15]-[17]) suppresses respiratory and motion
artifacts in the ICG with wavelet methods; this module provides the
machinery those comparisons need, implemented from scratch:

* orthogonal DWT/IDWT (Haar, Daubechies-4) with periodic extension —
  perfect reconstruction to machine precision,
* multi-level decomposition/reconstruction,
* VisuShrink denoising (universal threshold on the MAD-estimated noise
  level, soft or hard shrinkage),
* subband suppression — zeroing the approximation levels that carry a
  named frequency band, the Pandey-style respiratory cancellation.

Periodic extension keeps the transform exactly orthonormal, so energy
bookkeeping (and therefore threshold calibration) is exact; signal
lengths are padded to a multiple of ``2**level`` and trimmed back.
"""

from __future__ import annotations

import numpy as np

from repro.dsp._signal import as_signal as _as_signal
from repro.errors import ConfigurationError, SignalError

__all__ = [
    "WAVELETS",
    "dwt",
    "idwt",
    "wavedec",
    "waverec",
    "denoise",
    "suppress_low_frequency",
    "level_band_hz",
]

_SQRT2 = np.sqrt(2.0)

#: Orthonormal scaling (low-pass) filters; the wavelet filter is the
#: quadrature mirror.  Coefficients are the canonical Daubechies values
#: at full double precision (so perfect reconstruction holds to machine
#: epsilon).
WAVELETS = {
    "haar": np.array([1.0, 1.0]) / _SQRT2,
    "db2": np.array([
        0.48296291314469025, 0.8365163037378079,
        0.22414386804185735, -0.12940952255092145,
    ]),
    "db4": np.array([
        0.23037781330885523, 0.7148465705525415,
        0.6308807679295904, -0.02798376941698385,
        -0.18703481171888114, 0.030841381835986965,
        0.032883011666982945, -0.010597401784997278,
    ]),
}


def _filters(wavelet: str):
    if wavelet not in WAVELETS:
        raise ConfigurationError(
            f"unknown wavelet {wavelet!r}; available: {sorted(WAVELETS)}")
    low = WAVELETS[wavelet]
    # Quadrature mirror: g[k] = (-1)^k h[N-1-k].
    high = low[::-1] * (-1.0) ** np.arange(low.size)
    return low, high


def _periodic_convolve_decimate(x: np.ndarray, taps: np.ndarray,
                                ) -> np.ndarray:
    """Circular convolution followed by dyadic decimation."""
    n = x.size
    full = np.convolve(np.concatenate([x, x[: taps.size - 1]]), taps,
                       mode="full")[taps.size - 1: taps.size - 1 + n]
    return full[::2]


def dwt(x, wavelet: str = "db4"):
    """One analysis level: returns ``(approximation, detail)``.

    The input length must be even (use :func:`wavedec` for automatic
    padding).
    """
    x = _as_signal(x)
    if x.size % 2:
        raise SignalError("dwt needs an even-length signal")
    low, high = _filters(wavelet)
    return (_periodic_convolve_decimate(x, low[::-1]),
            _periodic_convolve_decimate(x, high[::-1]))


def idwt(approx, detail, wavelet: str = "db4") -> np.ndarray:
    """One synthesis level: inverse of :func:`dwt`."""
    approx = _as_signal(approx)
    detail = _as_signal(detail)
    if approx.size != detail.size:
        raise SignalError("approximation and detail must match in length")
    low, high = _filters(wavelet)
    n = 2 * approx.size
    up_a = np.zeros(n)
    up_d = np.zeros(n)
    up_a[::2] = approx
    up_d[::2] = detail
    out = np.zeros(n)
    for taps, upsampled in ((low, up_a), (high, up_d)):
        extended = np.concatenate([upsampled[-(taps.size - 1):],
                                   upsampled]) if taps.size > 1 else upsampled
        out += np.convolve(extended, taps, mode="full")[
            taps.size - 1: taps.size - 1 + n]
    return out


def wavedec(x, wavelet: str = "db4", level: int = None):
    """Multi-level decomposition.

    Returns ``(coefficients, original_length)`` where coefficients is
    ``[approx_L, detail_L, detail_L-1, ..., detail_1]``.  The signal is
    periodically padded to a multiple of ``2**level``.
    """
    x = _as_signal(x)
    if level is None:
        level = max(1, int(np.log2(x.size)) - 4)
    if level < 1:
        raise ConfigurationError("level must be >= 1")
    if 2**level > x.size:
        raise SignalError(
            f"signal of {x.size} samples too short for level {level}")
    original = x.size
    block = 2**level
    if x.size % block:
        pad = block - x.size % block
        x = np.concatenate([x, x[:pad]])
    details = []
    approx = x
    for _ in range(level):
        approx, detail = dwt(approx, wavelet)
        details.append(detail)
    return [approx] + details[::-1], original


def waverec(coefficients, wavelet: str = "db4",
            original_length: int = None) -> np.ndarray:
    """Inverse of :func:`wavedec`."""
    if len(coefficients) < 2:
        raise ConfigurationError(
            "need at least one approximation and one detail band")
    approx = np.asarray(coefficients[0], dtype=float)
    for detail in coefficients[1:]:
        approx = idwt(approx, np.asarray(detail, dtype=float), wavelet)
    if original_length is not None:
        approx = approx[:original_length]
    return approx


def denoise(x, wavelet: str = "db4", level: int = None,
            mode: str = "soft", threshold_scale: float = 1.0) -> np.ndarray:
    """VisuShrink wavelet denoising.

    The noise level is estimated from the finest detail band via the
    median absolute deviation (``sigma = MAD / 0.6745``), the universal
    threshold ``sigma * sqrt(2 ln n)`` (times ``threshold_scale``) is
    applied to every detail band with soft or hard shrinkage, and the
    signal is reconstructed.
    """
    if mode not in ("soft", "hard"):
        raise ConfigurationError(f"mode must be 'soft' or 'hard', got {mode!r}")
    if threshold_scale <= 0:
        raise ConfigurationError("threshold scale must be positive")
    x = _as_signal(x)
    coefficients, original = wavedec(x, wavelet, level)
    finest = coefficients[-1]
    sigma = float(np.median(np.abs(finest)) / 0.6745)
    threshold = threshold_scale * sigma * np.sqrt(2.0 * np.log(max(x.size,
                                                                   2)))
    shrunk = [coefficients[0]]
    for detail in coefficients[1:]:
        if mode == "soft":
            shrunk.append(np.sign(detail)
                          * np.maximum(np.abs(detail) - threshold, 0.0))
        else:
            shrunk.append(np.where(np.abs(detail) > threshold, detail,
                                   0.0))
    return waverec(shrunk, wavelet, original)


def level_band_hz(level: int, fs: float) -> tuple:
    """The nominal frequency band of detail level ``level``:
    ``[fs / 2^(level+1), fs / 2^level]``."""
    if level < 1:
        raise ConfigurationError("level must be >= 1")
    if fs <= 0:
        raise ConfigurationError("fs must be positive")
    return fs / 2.0 ** (level + 1), fs / 2.0**level


def suppress_low_frequency(x, fs: float, cutoff_hz: float,
                           wavelet: str = "db4") -> np.ndarray:
    """Respiratory-artifact cancellation by approximation suppression.

    Decomposes deep enough that the approximation band lies entirely
    below ``cutoff_hz`` and zeroes it — removing baseline/respiratory
    content while leaving every detail band (the cardiac structure)
    untouched.  The wavelet counterpart of the 0.8 Hz high-pass.
    """
    x = _as_signal(x)
    if not 0.0 < cutoff_hz < fs / 2.0:
        raise ConfigurationError(
            f"cutoff must lie in (0, fs/2), got {cutoff_hz}")
    level = 1
    while fs / 2.0 ** (level + 1) > cutoff_hz:
        level += 1
        if 2**level > x.size:
            raise SignalError(
                "signal too short to isolate the requested band")
    coefficients, original = wavedec(x, wavelet, level)
    coefficients[0] = np.zeros_like(coefficients[0])
    return waverec(coefficients, wavelet, original)
