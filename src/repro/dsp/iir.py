"""Butterworth IIR design and second-order-section filtering.

Implements, from scratch on numpy, the classic design flow used by the
paper's ICG stage (zero-phase low-pass Butterworth, fc = 20 Hz):

1. analog Butterworth low-pass prototype (poles on the unit circle),
2. frequency transformation (lp2lp / lp2hp / lp2bp / lp2bs) with
   bilinear pre-warping,
3. bilinear transform to the z-domain,
4. conversion to second-order sections (SOS),
5. direct-form-II-transposed SOS filtering, steady-state initial
   conditions, and zero-phase forward-backward filtering.

The test-suite validates every step against :mod:`scipy.signal`.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass

import numpy as np

from repro.dsp._signal import as_signal as _as_signal
from repro.dsp._signal import check_lengths as _check_lengths
from repro.dsp._signal import odd_reflect_pad as _odd_reflect_pad
from repro.dsp._signal import odd_reflect_pad_rows as _odd_reflect_pad_rows
from repro.dsp.kernels import DEFAULT_BLOCK, pole_block_kernel
from repro.errors import ConfigurationError, SignalError

__all__ = [
    "ZpkFilter",
    "butter_prototype",
    "butter_lowpass",
    "butter_highpass",
    "butter_bandpass",
    "butter_bandstop",
    "zpk_to_sos",
    "sosfilt",
    "sosfilt_batch",
    "sosfilt_zi",
    "sosfiltfilt",
    "sosfiltfilt_batch",
    "sos_frequency_response",
    "set_sosfilt_backend",
    "sosfilt_backend",
    "use_sosfilt_backend",
]


@dataclass(frozen=True)
class ZpkFilter:
    """A filter in zeros/poles/gain form (analog or digital)."""

    zeros: np.ndarray
    poles: np.ndarray
    gain: float

    def __post_init__(self) -> None:
        object.__setattr__(self, "zeros", np.atleast_1d(np.asarray(self.zeros,
                                                                   complex)))
        object.__setattr__(self, "poles", np.atleast_1d(np.asarray(self.poles,
                                                                   complex)))
        object.__setattr__(self, "gain", float(self.gain))


def _validate_order(order: int) -> int:
    if not isinstance(order, (int, np.integer)):
        raise ConfigurationError(f"filter order must be an integer, got {order!r}")
    if order < 1:
        raise ConfigurationError(f"filter order must be >= 1, got {order}")
    return int(order)


def _validate_cutoff(cutoff_hz: float, fs: float, name: str = "cutoff") -> float:
    if fs <= 0:
        raise ConfigurationError(f"sampling rate must be positive, got {fs}")
    if not 0.0 < cutoff_hz < fs / 2.0:
        raise ConfigurationError(
            f"{name} must lie strictly inside (0, fs/2) = (0, {fs / 2.0}); "
            f"got {cutoff_hz}"
        )
    return float(cutoff_hz)


def butter_prototype(order: int) -> ZpkFilter:
    """Analog low-pass Butterworth prototype with cut-off 1 rad/s.

    Poles sit equally spaced on the left half of the unit circle; there
    are no finite zeros and the gain is one.
    """
    order = _validate_order(order)
    k = np.arange(order)
    poles = np.exp(1j * np.pi * (2.0 * k + order + 1.0) / (2.0 * order))
    # Force exact conjugate symmetry (kills 1e-17 imaginary dust on the
    # real pole of odd orders).
    poles = poles[np.argsort(poles.imag)]
    if order % 2:
        real_idx = order // 2
        poles[real_idx] = poles[real_idx].real
    return ZpkFilter(np.empty(0, complex), poles, 1.0)


def _prewarp(cutoff_hz: float, fs: float) -> float:
    """Map a digital cut-off to the analog frequency the bilinear
    transform will place back exactly at ``cutoff_hz``."""
    return 2.0 * fs * np.tan(np.pi * cutoff_hz / fs)


def _lp2lp(proto: ZpkFilter, warped: float) -> ZpkFilter:
    degree = proto.poles.size - proto.zeros.size
    return ZpkFilter(proto.zeros * warped, proto.poles * warped,
                     proto.gain * warped**degree)


def _lp2hp(proto: ZpkFilter, warped: float) -> ZpkFilter:
    degree = proto.poles.size - proto.zeros.size
    zeros = warped / proto.zeros if proto.zeros.size else np.empty(0, complex)
    poles = warped / proto.poles
    # Gain correction: lim s->inf of prototype over transformed.
    num = np.prod(-proto.zeros) if proto.zeros.size else 1.0
    den = np.prod(-proto.poles)
    gain = proto.gain * float(np.real(num / den))
    zeros = np.concatenate([zeros, np.zeros(degree, complex)])
    return ZpkFilter(zeros, poles, gain)


def _lp2bp(proto: ZpkFilter, w0: float, bw: float) -> ZpkFilter:
    degree = proto.poles.size - proto.zeros.size
    scaled_z = proto.zeros * bw / 2.0
    scaled_p = proto.poles * bw / 2.0
    zeros = np.concatenate([
        scaled_z + np.sqrt(scaled_z**2 - w0**2),
        scaled_z - np.sqrt(scaled_z**2 - w0**2),
        np.zeros(degree, complex),
    ])
    poles = np.concatenate([
        scaled_p + np.sqrt(scaled_p**2 - w0**2),
        scaled_p - np.sqrt(scaled_p**2 - w0**2),
    ])
    return ZpkFilter(zeros, poles, proto.gain * bw**degree)


def _lp2bs(proto: ZpkFilter, w0: float, bw: float) -> ZpkFilter:
    degree = proto.poles.size - proto.zeros.size
    inv_z = (bw / 2.0) / proto.zeros if proto.zeros.size else np.empty(0, complex)
    inv_p = (bw / 2.0) / proto.poles
    zeros = np.concatenate([
        inv_z + np.sqrt(inv_z**2 - w0**2) if inv_z.size else np.empty(0, complex),
        inv_z - np.sqrt(inv_z**2 - w0**2) if inv_z.size else np.empty(0, complex),
        np.full(degree, 1j * w0, complex),
        np.full(degree, -1j * w0, complex),
    ])
    poles = np.concatenate([
        inv_p + np.sqrt(inv_p**2 - w0**2),
        inv_p - np.sqrt(inv_p**2 - w0**2),
    ])
    num = np.prod(-proto.zeros) if proto.zeros.size else 1.0
    den = np.prod(-proto.poles)
    gain = proto.gain * float(np.real(num / den))
    return ZpkFilter(zeros, poles, gain)


def _bilinear(analog: ZpkFilter, fs: float) -> ZpkFilter:
    fs2 = 2.0 * fs
    degree = analog.poles.size - analog.zeros.size
    zeros = (fs2 + analog.zeros) / (fs2 - analog.zeros)
    poles = (fs2 + analog.poles) / (fs2 - analog.poles)
    zeros = np.concatenate([zeros, -np.ones(degree, complex)])
    num = np.prod(fs2 - analog.zeros) if analog.zeros.size else 1.0
    den = np.prod(fs2 - analog.poles)
    gain = analog.gain * float(np.real(num / den))
    return ZpkFilter(zeros, poles, gain)


def butter_lowpass(order: int, cutoff_hz: float, fs: float) -> np.ndarray:
    """Digital Butterworth low-pass as second-order sections.

    The paper's ICG filter is ``butter_lowpass(4, 20.0, 250.0)`` applied
    with :func:`sosfiltfilt` (zero phase).
    """
    cutoff_hz = _validate_cutoff(cutoff_hz, fs)
    proto = butter_prototype(order)
    analog = _lp2lp(proto, _prewarp(cutoff_hz, fs))
    return zpk_to_sos(_bilinear(analog, fs))


def butter_highpass(order: int, cutoff_hz: float, fs: float) -> np.ndarray:
    """Digital Butterworth high-pass as second-order sections."""
    cutoff_hz = _validate_cutoff(cutoff_hz, fs)
    proto = butter_prototype(order)
    analog = _lp2hp(proto, _prewarp(cutoff_hz, fs))
    return zpk_to_sos(_bilinear(analog, fs))


def _band_edges(low_hz: float, high_hz: float, fs: float):
    low = _validate_cutoff(low_hz, fs, "low cut-off")
    high = _validate_cutoff(high_hz, fs, "high cut-off")
    if low >= high:
        raise ConfigurationError(
            f"low cut-off ({low} Hz) must be below high cut-off ({high} Hz)"
        )
    w1 = _prewarp(low, fs)
    w2 = _prewarp(high, fs)
    return np.sqrt(w1 * w2), w2 - w1


def butter_bandpass(order: int, low_hz: float, high_hz: float,
                    fs: float) -> np.ndarray:
    """Digital Butterworth band-pass (final order is ``2 * order``)."""
    w0, bw = _band_edges(low_hz, high_hz, fs)
    proto = butter_prototype(order)
    analog = _lp2bp(proto, w0, bw)
    return zpk_to_sos(_bilinear(analog, fs))


def butter_bandstop(order: int, low_hz: float, high_hz: float,
                    fs: float) -> np.ndarray:
    """Digital Butterworth band-stop (final order is ``2 * order``)."""
    w0, bw = _band_edges(low_hz, high_hz, fs)
    proto = butter_prototype(order)
    analog = _lp2bs(proto, w0, bw)
    return zpk_to_sos(_bilinear(analog, fs))


def _split_conjugates(values: np.ndarray, tol: float = 1e-9):
    """Split into (conjugate pairs, reals); raises on unpaired complexes."""
    remaining = list(values)
    pairs = []
    reals = []
    while remaining:
        v = remaining.pop(0)
        if abs(v.imag) < tol:
            reals.append(v.real)
            continue
        match = None
        for idx, other in enumerate(remaining):
            if abs(other - np.conj(v)) < tol * max(1.0, abs(v)):
                match = idx
                break
        if match is None:
            raise ConfigurationError(
                f"complex value {v} has no conjugate partner; "
                "coefficients would not be real"
            )
        remaining.pop(match)
        pairs.append(v)
    return pairs, reals


def zpk_to_sos(filt: ZpkFilter) -> np.ndarray:
    """Convert zeros/poles/gain to real second-order sections.

    Sections are ordered with poles closest to the unit circle last,
    which keeps intermediate signals well-scaled.  The overall gain is
    folded into the first section.
    """
    zeros = np.asarray(filt.zeros, complex)
    poles = np.asarray(filt.poles, complex)
    if zeros.size > poles.size:
        raise ConfigurationError(
            f"more zeros ({zeros.size}) than poles ({poles.size}); "
            "not a proper filter"
        )
    n_sections = (poles.size + 1) // 2
    if n_sections == 0:
        raise ConfigurationError("filter has no poles")

    pole_pairs, pole_reals = _split_conjugates(poles)
    zero_pairs, zero_reals = _split_conjugates(zeros)

    # Assemble per-section (poles, zeros) groups.  Pair conjugate pole
    # pairs with conjugate zero pairs first (both give real quadratics),
    # then mop up the real ones two at a time.
    sections = []
    pole_pairs.sort(key=lambda p: -abs(p))
    zero_pairs.sort(key=lambda z: -abs(z))
    for pp in pole_pairs:
        if zero_pairs:
            zz = zero_pairs.pop(0)
            sec_zeros = [zz, np.conj(zz)]
        else:
            sec_zeros = []
            while zero_reals and len(sec_zeros) < 2:
                sec_zeros.append(zero_reals.pop(0))
        sections.append(([pp, np.conj(pp)], sec_zeros))
    pole_reals.sort(key=lambda p: -abs(p))
    while pole_reals:
        sec_poles = [pole_reals.pop(0)]
        if pole_reals:
            sec_poles.append(pole_reals.pop(0))
        sec_zeros = []
        while zero_reals and len(sec_zeros) < len(sec_poles):
            sec_zeros.append(zero_reals.pop(0))
        sections.append((sec_poles, sec_zeros))
    if zero_pairs or zero_reals:
        raise ConfigurationError("could not place all zeros into sections")

    sos = np.zeros((len(sections), 6))
    for i, (sec_poles, sec_zeros) in enumerate(sections):
        a = np.real(np.poly(sec_poles)) if sec_poles else np.array([1.0])
        b = np.real(np.poly(sec_zeros)) if sec_zeros else np.array([1.0])
        sos[i, 3: 3 + a.size] = a
        sos[i, 0: b.size] = b
    sos[0, :3] *= filt.gain
    # Order sections so the last has poles closest to the unit circle.
    closeness = [max(abs(abs(np.asarray(p)) - 1.0).min() for p in [sec[0]])
                 for sec in sections]
    order = np.argsort(closeness)[::-1]
    return sos[order]


def _check_sos(sos) -> np.ndarray:
    sos = np.asarray(sos, dtype=float)
    if sos.ndim != 2 or sos.shape[1] != 6:
        raise ConfigurationError(
            f"sos must have shape (n_sections, 6), got {sos.shape}"
        )
    # Same acceptance band as np.allclose(sos[:, 3], 1.0) without its
    # generic broadcasting machinery — this check runs on every filter
    # application, so its constant cost is hot-path overhead.
    a0_error = np.abs(sos[:, 3] - 1.0)
    if not (a0_error <= 1.0e-8 + 1.0e-5).all():
        raise ConfigurationError("sos sections must be normalised (a0 == 1)")
    return sos


#: Which ``sosfilt`` kernel runs: ``"vectorized"`` (blocked
#: state-space scan, the default) or ``"reference"`` (the original
#: per-sample scalar loop, kept as the correctness oracle).
_SOSFILT_BACKENDS = ("vectorized", "reference")
_sosfilt_backend = "vectorized"


def set_sosfilt_backend(name: str) -> None:
    """Select the ``sosfilt`` kernel implementation process-wide.

    ``"vectorized"`` is the production kernel; ``"reference"`` forces
    the scalar per-sample loop — the oracle the parity tests and the
    perf-regression bench compare against.
    """
    global _sosfilt_backend
    if name not in _SOSFILT_BACKENDS:
        raise ConfigurationError(
            f"unknown sosfilt backend {name!r}; "
            f"choose from {_SOSFILT_BACKENDS}")
    _sosfilt_backend = name


def sosfilt_backend() -> str:
    """The currently selected ``sosfilt`` kernel implementation."""
    return _sosfilt_backend


@contextlib.contextmanager
def use_sosfilt_backend(name: str):
    """Temporarily switch the ``sosfilt`` kernel (benches, tests)."""
    previous = _sosfilt_backend
    set_sosfilt_backend(name)
    try:
        yield
    finally:
        set_sosfilt_backend(previous)


def _check_state(zi, n_sections: int) -> np.ndarray:
    state = (np.zeros((n_sections, 2)) if zi is None
             else np.array(zi, dtype=float))
    if state.shape != (n_sections, 2):
        raise ConfigurationError(
            f"zi must have shape ({n_sections}, 2), got {state.shape}"
        )
    return state


def _sosfilt_ref(sos, x, zi=None):
    """Scalar reference SOS kernel (direct form II transposed).

    The original per-sample Python loop, kept verbatim as the oracle
    the vectorized kernel is validated against (and the baseline the
    perf-regression bench measures speedups from).
    """
    sos = _check_sos(sos)
    x = _as_signal(x)
    n_sections = sos.shape[0]
    state = _check_state(zi, n_sections)
    y = x.copy()
    for s in range(n_sections):
        b0, b1, b2, _, a1, a2 = sos[s]
        w0, w1 = state[s]
        out = np.empty_like(y)
        for n in range(y.size):
            xn = y[n]
            yn = b0 * xn + w0
            w0 = b1 * xn - a1 * yn + w1
            w1 = b2 * xn - a2 * yn
            out[n] = yn
        state[s, 0], state[s, 1] = w0, w1
        y = out
    return y if zi is None else (y, state)


def _biquad_block(section: np.ndarray, x: np.ndarray, w0: float,
                  w1: float, block: int) -> tuple:
    """One biquad over the whole signal via the blocked pole scan.

    The zero (FIR) part and the incoming DF2T state fold into a
    forcing term ``f``; the pole recurrence ``y[n] = f[n] - a1 y[n-1]
    - a2 y[n-2]`` is then solved ``block`` samples at a time with the
    cached scan matrices: one triangular matmul for all within-block
    particular responses at once, a cheap 2-vector recursion across
    block boundaries, and one rank-2 update folding the boundary
    states back in.  Python-level iteration count drops from
    ``n_samples`` to ``n_samples / block``.
    """
    b0, b1, b2, _, a1, a2 = section
    n = x.size
    if n == 1:
        y0 = b0 * x[0] + w0
        return (np.array([y0]),
                b1 * x[0] - a1 * y0 + w1,
                b2 * x[0] - a2 * y0)
    f = b0 * x
    f[1:] += b1 * x[:-1]
    f[2:] += b2 * x[:-2]
    f[0] += w0
    f[1] += w1

    H, G = pole_block_kernel(a1, a2, block)
    n_blocks = -(-n // block)
    padded = np.zeros(n_blocks * block)
    padded[:n] = f
    forcing = padded.reshape(n_blocks, block)
    particular = forcing @ H.T
    # Block-boundary states [y[-1], y[-2]]: a first-order recursion of
    # 2-vectors — the only remaining Python loop, n_samples / block
    # iterations of scalar work (kept as plain floats: a 2x2 np.dot per
    # block would cost more in call overhead than the whole matmul).
    m00, m01 = G[block - 1]
    m10, m11 = G[block - 2]
    tails = particular[:, block - 2:].tolist()
    rows = []
    s0 = s1 = 0.0
    for p_penult, p_last in tails:
        rows.append((s0, s1))
        s0, s1 = (m00 * s0 + m01 * s1 + p_last,
                  m10 * s0 + m11 * s1 + p_penult)
    states = np.array(rows)
    y = (particular + states @ G.T).ravel()[:n]
    # Closing DF2T state, read off the last in/out samples.
    w1_out = b2 * x[-1] - a2 * y[-1]
    w0_out = b1 * x[-1] - a1 * y[-1] + b2 * x[-2] - a2 * y[-2]
    return y, w0_out, w1_out


def _biquad_block_rows(section: np.ndarray, x: np.ndarray,
                       w0: np.ndarray, w1: np.ndarray,
                       block: int) -> np.ndarray:
    """Row-batched :func:`_biquad_block` over a leading recording axis.

    ``x`` is ``(n_rows, n)`` with every row a full signal (ragged rows
    zero-stacked to a common width); ``w0``/``w1`` are per-row incoming
    DF2T states.  Every operation is the per-row kernel's operation
    broadcast over rows: the forcing build and boundary recursion are
    elementwise, and the block matmuls are bit-identical under a
    leading batch axis (BLAS keeps the K-reduction order independent
    of M — pinned by the batched-kernel parity suite).  Row ``i``'s
    first ``L_i`` outputs therefore equal the per-row kernel's outputs
    whenever columns beyond ``L_i`` are zero, because the filter is
    causal.  Only ``y`` is returned — batch callers read closing
    states off the valid row ends themselves.
    """
    b0, b1, b2, _, a1, a2 = section
    n_rows, n = x.shape
    f = b0 * x
    f[:, 1:] += b1 * x[:, :-1]
    f[:, 2:] += b2 * x[:, :-2]
    f[:, 0] += w0
    f[:, 1] += w1

    H, G = pole_block_kernel(a1, a2, block)
    n_blocks = -(-n // block)
    padded = np.zeros((n_rows, n_blocks * block))
    padded[:, :n] = f
    forcing = padded.reshape(n_rows, n_blocks, block)
    particular = forcing @ H.T
    m00, m01 = G[block - 1]
    m10, m11 = G[block - 2]
    penult = particular[:, :, block - 2]
    last = particular[:, :, block - 1]
    states = np.empty((n_rows, n_blocks, 2))
    s0 = np.zeros(n_rows)
    s1 = np.zeros(n_rows)
    for k in range(n_blocks):
        states[:, k, 0] = s0
        states[:, k, 1] = s1
        s0, s1 = (m00 * s0 + m01 * s1 + last[:, k],
                  m10 * s0 + m11 * s1 + penult[:, k])
    return (particular + states @ G.T).reshape(n_rows, -1)[:, :n]


def sosfilt_batch(sos, x, zi=None, lengths=None):
    """Causal SOS filtering over a leading recording axis.

    ``x`` is a ``(n_rows, n_samples)`` matrix of zero-stacked signals
    (see :func:`repro.dsp._signal.stack_ragged`); row ``i`` is valid up
    to ``lengths[i]`` (full width when ``lengths`` is omitted).  ``zi``
    accepts per-row initial conditions of shape ``(n_rows, n_sections,
    2)`` or one shared ``(n_sections, 2)`` state.  Returns ``y`` or
    ``(y, zf)`` with ``zf`` read off each row's own last valid
    samples.  Row ``i``'s first ``lengths[i]`` output samples are
    bit-identical to ``sosfilt(sos, x[i, :lengths[i]], ...)`` under
    the vectorized backend; columns beyond a row's length are
    by-products of the stacked scan and must be masked by the caller.
    """
    sos = _check_sos(sos)
    lengths = _check_lengths(x, lengths)
    x = np.asarray(x, dtype=float)
    if x.shape[1] < 2:
        raise SignalError("batched sosfilt needs >= 2 samples per row")
    n_rows = x.shape[0]
    n_sections = sos.shape[0]
    if zi is None:
        state = np.zeros((n_rows, n_sections, 2))
    else:
        state = np.array(zi, dtype=float)
        if state.shape == (n_sections, 2):
            state = np.broadcast_to(state, (n_rows, n_sections, 2)).copy()
        if state.shape != (n_rows, n_sections, 2):
            raise ConfigurationError(
                f"zi must have shape ({n_rows}, {n_sections}, 2) or "
                f"({n_sections}, 2), got {np.shape(zi)}")
    rows = np.arange(n_rows)
    y = x
    for s in range(n_sections):
        b0, b1, b2, _, a1, a2 = sos[s]
        out = _biquad_block_rows(sos[s], y, state[:, s, 0],
                                 state[:, s, 1], DEFAULT_BLOCK)
        if zi is not None:
            # Closing DF2T state at each row's own end, the same
            # expressions as the per-row kernel evaluated per row.
            x_last = y[rows, lengths - 1]
            x_penult = y[rows, lengths - 2]
            y_last = out[rows, lengths - 1]
            y_penult = out[rows, lengths - 2]
            state[:, s, 1] = b2 * x_last - a2 * y_last
            state[:, s, 0] = (b1 * x_last - a1 * y_last
                              + b2 * x_penult - a2 * y_penult)
        y = out
    return y if zi is None else (y, state)


def sosfiltfilt_batch(sos, x, lengths=None) -> np.ndarray:
    """Zero-phase SOS filtering over a leading recording axis.

    The row-batched twin of :func:`sosfiltfilt`: per-row odd-reflect
    padding, steady-state initial conditions scaled by each row's
    first padded sample, a forward scan, a per-row reversal gather,
    the backward scan, and un-padding.  Requires every row length to
    clear the uniform pad (``3 * ntaps``); shorter rows would need
    per-row pad lengths and belong on the per-recording path.  Row
    ``i``'s first ``lengths[i]`` outputs are bit-identical to
    ``sosfiltfilt(sos, x[i, :lengths[i]])`` under the vectorized
    backend; columns beyond are unspecified.
    """
    sos = _check_sos(sos)
    lengths = _check_lengths(x, lengths)
    x = np.asarray(x, dtype=float)
    n_rows, width = x.shape
    ntaps = 2 * sos.shape[0] + 1
    pad = 3 * ntaps
    if lengths.size and int(lengths.min()) <= pad:
        raise SignalError(
            f"batched sosfiltfilt needs rows longer than {pad} samples; "
            "route shorter recordings through the per-recording path")
    padded = _odd_reflect_pad_rows(x, lengths, pad)
    padded_lengths = lengths + 2 * pad
    zi = sosfilt_zi(sos)
    zi_fwd = zi[None, :, :] * padded[:, :1, None]
    forward, _ = sosfilt_batch(sos, padded, zi=zi_fwd,
                               lengths=padded_lengths)
    rows = np.arange(n_rows)[:, None]
    rev_idx = np.maximum(padded_lengths[:, None] - 1
                         - np.arange(padded.shape[1])[None, :], 0)
    reversed_rows = forward[rows, rev_idx]
    zi_bwd = zi[None, :, :] * reversed_rows[:, :1, None]
    backward, _ = sosfilt_batch(sos, reversed_rows, zi=zi_bwd,
                                lengths=padded_lengths)
    out_idx = np.maximum(padded_lengths[:, None] - 1 - pad
                         - np.arange(width)[None, :], 0)
    return backward[rows, out_idx]


def _sosfilt_vec(sos, x, zi=None, block: int = DEFAULT_BLOCK):
    """Vectorized SOS kernel: per-section convolution + blocked scan."""
    sos = _check_sos(sos)
    x = _as_signal(x)
    n_sections = sos.shape[0]
    state = _check_state(zi, n_sections)
    y = x
    for s in range(n_sections):
        y, state[s, 0], state[s, 1] = _biquad_block(
            sos[s], y, state[s, 0], state[s, 1], block)
    return y if zi is None else (y, state)


def sosfilt(sos, x, zi=None):
    """Causal SOS filtering (direct form II transposed).

    Returns ``y`` or ``(y, zf)`` when initial conditions ``zi`` of shape
    ``(n_sections, 2)`` are supplied.  Runs the vectorized blocked-scan
    kernel unless :func:`set_sosfilt_backend` selected the scalar
    reference; both produce the same samples to ~1e-12 relative
    accuracy (asserted at 1e-9 by the parity suite).
    """
    if _sosfilt_backend == "reference":
        return _sosfilt_ref(sos, x, zi=zi)
    return _sosfilt_vec(sos, x, zi=zi)


def sosfilt_zi(sos) -> np.ndarray:
    """Steady-state DF2T state for a unit-amplitude constant input.

    Scaling by the first input sample makes step responses start in
    steady state — the trick :func:`sosfiltfilt` relies on to suppress
    edge transients.
    """
    sos = _check_sos(sos)
    zi = np.zeros((sos.shape[0], 2))
    input_level = 1.0
    for s, (b0, b1, b2, _, a1, a2) in enumerate(sos):
        denom = 1.0 + a1 + a2
        if abs(denom) < 1e-300:
            raise ConfigurationError(
                "section has a pole at z = 1; steady state undefined"
            )
        out_level = input_level * (b0 + b1 + b2) / denom
        zi[s, 1] = b2 * input_level - a2 * out_level
        zi[s, 0] = b1 * input_level - a1 * out_level + zi[s, 1]
        input_level = out_level
    return zi


def sosfiltfilt(sos, x) -> np.ndarray:
    """Zero-phase SOS filtering (forward-backward with edge handling).

    This is the application mode the paper uses for both the ECG FIR and
    the ICG Butterworth ("zero-phase ... filter").
    """
    sos = _check_sos(sos)
    x = _as_signal(x)
    ntaps = 2 * sos.shape[0] + 1
    pad = min(3 * ntaps, x.size - 1)
    padded = _odd_reflect_pad(x, pad)
    zi = sosfilt_zi(sos)
    forward, _ = sosfilt(sos, padded, zi=zi * padded[0])
    backward, _ = sosfilt(sos, forward[::-1], zi=zi * forward[-1])
    result = backward[::-1]
    return result[pad: pad + x.size] if pad else result


def sos_frequency_response(sos, freqs_hz, fs: float):
    """Complex frequency response of an SOS cascade at given frequencies."""
    sos = _check_sos(sos)
    if fs <= 0:
        raise ConfigurationError(f"sampling rate must be positive, got {fs}")
    freqs_hz = np.atleast_1d(np.asarray(freqs_hz, dtype=float))
    z = np.exp(1j * 2.0 * np.pi * freqs_hz / fs)
    h = np.ones_like(z, dtype=complex)
    for b0, b1, b2, a0, a1, a2 in sos:
        num = b0 + b1 / z + b2 / z**2
        den = a0 + a1 / z + a2 / z**2
        h *= num / den
    return freqs_hz, h
