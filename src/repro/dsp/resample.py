"""Resampling utilities.

Two kinds of resampling appear in this system:

* *rate conversion* of full recordings (e.g. simulating the device's
  selectable 125 Hz - 16 kHz sampling rates from a high-rate synthetic
  master signal), done with an anti-aliased polyphase-style FIR method;
* *beat normalisation* to a fixed number of samples per cardiac cycle,
  used by the ensemble-averaging and correlation analyses, done with
  linear interpolation.
"""

from __future__ import annotations

import numpy as np

from repro.dsp import fir as _fir
from repro.dsp._signal import as_signal as _as_signal
from repro.dsp.kernels import default_kernel_cache
from repro.errors import ConfigurationError, SignalError

__all__ = [
    "linear_resample",
    "resample_to_length",
    "decimate",
    "resample_rate",
]


def _antialias_taps(order: int, cutoff_hz: float, fs: float) -> np.ndarray:
    """Anti-alias low-pass design, memoized in the DSP kernel cache.

    Rate conversion is a per-recording operation in the sampling-rate
    study and the ensemble/beat-matrix paths; the 64th-order design was
    redone for every call although it only depends on ``(order,
    cutoff, fs)``."""
    key = ("antialias_fir", int(order), float(cutoff_hz), float(fs))
    return default_kernel_cache().get(
        key, lambda: _fir.design_lowpass(order, cutoff_hz, fs))


def linear_resample(x, times_in, times_out) -> np.ndarray:
    """Linear interpolation of ``x`` sampled at ``times_in`` onto
    ``times_out``.  Out-of-range targets clamp to the edge values."""
    x = _as_signal(x)
    times_in = np.asarray(times_in, dtype=float)
    times_out = np.asarray(times_out, dtype=float)
    if times_in.shape != x.shape:
        raise SignalError("times_in must match the signal length")
    if np.any(np.diff(times_in) <= 0):
        raise SignalError("times_in must be strictly increasing")
    return np.interp(times_out, times_in, x)


def resample_to_length(x, n_out: int) -> np.ndarray:
    """Resample a signal to exactly ``n_out`` samples (linear).

    End points map to end points, which preserves landmark positions in
    *relative* time — the property the beat-correlation analysis needs.
    """
    x = _as_signal(x)
    if n_out < 2:
        raise ConfigurationError(f"output length must be >= 2, got {n_out}")
    if x.size == 1:
        return np.full(n_out, x[0])
    src = np.linspace(0.0, 1.0, x.size)
    dst = np.linspace(0.0, 1.0, n_out)
    return np.interp(dst, src, x)


def decimate(x, factor: int, fs: float) -> np.ndarray:
    """Integer-factor decimation with an anti-alias FIR low-pass.

    The low-pass cuts at 80 % of the new Nyquist rate using a 64th-order
    zero-phase FIR, then every ``factor``-th sample is kept.
    """
    x = _as_signal(x)
    if not isinstance(factor, (int, np.integer)) or factor < 1:
        raise ConfigurationError(f"factor must be a positive integer, got {factor}")
    if factor == 1:
        return x.copy()
    new_nyquist = fs / (2.0 * factor)
    taps = _antialias_taps(64, 0.8 * new_nyquist, fs)
    if x.size <= taps.size:
        raise SignalError(
            f"signal of {x.size} samples too short to decimate by {factor}"
        )
    filtered = _fir.filtfilt_fir(taps, x)
    return filtered[::factor]


def resample_rate(x, fs_in: float, fs_out: float) -> np.ndarray:
    """Arbitrary-rate resampling.

    Downsampling applies an anti-alias low-pass first; upsampling uses
    plain linear interpolation (adequate for the smooth, band-limited
    physiological signals in this library).
    """
    x = _as_signal(x)
    if fs_in <= 0 or fs_out <= 0:
        raise ConfigurationError("sampling rates must be positive")
    if fs_in == fs_out:
        return x.copy()
    duration = (x.size - 1) / fs_in
    n_out = max(2, int(round(duration * fs_out)) + 1)
    if fs_out < fs_in:
        taps = _antialias_taps(64, 0.45 * fs_out, fs_in)
        if x.size > taps.size:
            x = _fir.filtfilt_fir(taps, x)
    times_in = np.arange(x.size) / fs_in
    times_out = np.arange(n_out) / fs_out
    times_out = times_out[times_out <= times_in[-1] + 1e-12]
    return np.interp(times_out, times_in, x)
