"""Shared signal validation and padding helpers for the DSP layer.

Every DSP module used to carry its own copy of the 1-D signal check
and the odd-reflection padding that zero-phase filtering relies on;
they now live here once.  The helpers are intentionally tiny — this
module must stay import-free of the rest of the package so any DSP
module (and the kernel cache) can depend on it without cycles.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SignalError

__all__ = ["as_signal", "odd_reflect_pad"]


def as_signal(x) -> np.ndarray:
    """Validate and return ``x`` as a non-empty 1-D float array."""
    x = np.asarray(x, dtype=float)
    if x.ndim != 1:
        raise SignalError(f"expected a 1-D signal, got shape {x.shape}")
    if x.size == 0:
        raise SignalError("signal is empty")
    return x


def odd_reflect_pad(x: np.ndarray, pad: int) -> np.ndarray:
    """Odd reflection about the end points, as used by filtfilt.

    Each edge is extended by ``pad`` samples of the signal mirrored and
    negated around the edge value, which keeps both the level and the
    slope continuous — the padding that suppresses forward-backward
    filtering transients.
    """
    if pad == 0:
        return x
    if x.size < 2:
        raise SignalError("signal too short for reflective padding")
    left = 2.0 * x[0] - x[pad:0:-1]
    right = 2.0 * x[-1] - x[-2: -pad - 2: -1]
    return np.concatenate([left, x, right])
