"""Shared signal validation and padding helpers for the DSP layer.

Every DSP module used to carry its own copy of the 1-D signal check
and the odd-reflection padding that zero-phase filtering relies on;
they now live here once.  The helpers are intentionally tiny — this
module must stay import-free of the rest of the package so any DSP
module (and the kernel cache) can depend on it without cycles.

The leading-axis variants (:func:`stack_ragged`,
:func:`odd_reflect_pad_rows`, :func:`padded_row_view`) serve the
batched kernel tiers: the beat-matrix kernels of
:mod:`repro.icg.batch` and the cohort stacker of
:mod:`repro.core.cohort` both need zero padding / odd reflection over
a leading row axis, so the padding semantics live here exactly once.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SignalError

__all__ = ["as_signal", "odd_reflect_pad", "stack_ragged",
           "check_lengths", "odd_reflect_pad_rows", "padded_row_view"]


def as_signal(x) -> np.ndarray:
    """Validate and return ``x`` as a non-empty 1-D float array."""
    x = np.asarray(x, dtype=float)
    if x.ndim != 1:
        raise SignalError(f"expected a 1-D signal, got shape {x.shape}")
    if x.size == 0:
        raise SignalError("signal is empty")
    return x


def odd_reflect_pad(x: np.ndarray, pad: int) -> np.ndarray:
    """Odd reflection about the end points, as used by filtfilt.

    Each edge is extended by ``pad`` samples of the signal mirrored and
    negated around the edge value, which keeps both the level and the
    slope continuous — the padding that suppresses forward-backward
    filtering transients.
    """
    if pad == 0:
        return x
    if x.size < 2:
        raise SignalError("signal too short for reflective padding")
    left = 2.0 * x[0] - x[pad:0:-1]
    right = 2.0 * x[-1] - x[-2: -pad - 2: -1]
    return np.concatenate([left, x, right])


# -- leading-axis (row-batched) variants ---------------------------------

def stack_ragged(signals, width: int = None):
    """Stack 1-D signals of possibly unequal length into one matrix.

    Returns ``(matrix, lengths)``: a ``(n_rows, width)`` float64 matrix
    with each signal left-aligned and zero-padded to ``width`` (the
    maximum length when omitted), plus the per-row valid lengths.
    Zero tail padding is the stacking contract every batched kernel in
    the cohort tier relies on: causal filters cannot propagate the pad
    back into a row's valid samples, so row ``i``'s first ``lengths[i]``
    outputs are bit-identical to the unstacked call.
    """
    arrays = [as_signal(s) for s in signals]
    if not arrays:
        raise SignalError("cannot stack an empty list of signals")
    lengths = np.array([a.size for a in arrays], dtype=np.int64)
    max_len = int(lengths.max())
    if width is None:
        width = max_len
    elif width < max_len:
        raise SignalError(
            f"stack width {width} shorter than longest signal {max_len}")
    matrix = np.zeros((len(arrays), int(width)))
    for row, a in enumerate(arrays):
        matrix[row, : a.size] = a
    return matrix, lengths


def check_lengths(x: np.ndarray, lengths) -> np.ndarray:
    """Validate per-row lengths against a ``(n_rows, width)`` matrix."""
    x = np.asarray(x, dtype=float)
    if x.ndim != 2:
        raise SignalError(f"expected a (n_rows, n_samples) matrix, "
                          f"got shape {x.shape}")
    if lengths is None:
        return np.full(x.shape[0], x.shape[1], dtype=np.int64)
    lengths = np.asarray(lengths, dtype=np.int64)
    if lengths.shape != (x.shape[0],):
        raise SignalError(
            f"lengths must have shape ({x.shape[0]},), "
            f"got {lengths.shape}")
    if lengths.size and (lengths.min() < 1 or lengths.max() > x.shape[1]):
        raise SignalError("row lengths must lie in [1, n_samples]")
    return lengths


def odd_reflect_pad_rows(x: np.ndarray, lengths, pad: int) -> np.ndarray:
    """Row-batched :func:`odd_reflect_pad` over a leading axis.

    ``x`` is a ``(n_rows, width)`` matrix whose row ``i`` is valid up
    to ``lengths[i]`` (zero-stacked per :func:`stack_ragged`).  Every
    row is padded by ``pad`` samples of odd reflection about its own
    end points; the result has width ``width + 2 * pad`` with row ``i``
    valid up to ``lengths[i] + 2 * pad`` and zeros beyond.  Each padded
    row is bit-identical to ``odd_reflect_pad(x[i, :lengths[i]], pad)``
    — same expressions, elementwise over the rows.
    """
    lengths = check_lengths(x, lengths)
    if pad == 0:
        return x.copy()
    if lengths.size and int(lengths.min()) < pad + 1:
        raise SignalError("signal too short for reflective padding")
    n_rows, width = x.shape
    rows = np.arange(n_rows)[:, None]
    out = np.zeros((n_rows, width + 2 * pad))
    out[:, pad: pad + width] = x
    # Zero the stale tail copies: row i's stacked zeros land between
    # its data and where the right reflection goes.
    cols = np.arange(width)[None, :]
    out[:, pad: pad + width][cols >= lengths[:, None]] = 0.0
    # Left edge: 2*x[0] - x[pad:0:-1], identical per row.
    out[:, :pad] = 2.0 * x[:, :1] - x[:, pad:0:-1]
    # Right edge: 2*x[L-1] - x[L-2-j] for j = 0..pad-1, gathered at
    # each row's own end.
    j = np.arange(pad)[None, :]
    last = x[rows, lengths[:, None] - 1]
    mirrored = x[rows, lengths[:, None] - 2 - j]
    right = 2.0 * last - mirrored
    np.put_along_axis(out, pad + lengths[:, None] + j, right, axis=1)
    return out


def padded_row_view(signal: np.ndarray, row_starts, width: int):
    """Strided ``(n_rows, width)`` window view with tail zero padding.

    Gathers the window of ``width`` samples starting at each
    ``row_starts`` entry from a 1-D signal, zero-extending the signal
    so windows running off the end stay in bounds (the gather the
    beat-matrix kernels and the cohort stacker both build on).  Zero
    extension preserves values: windows never read past their row's
    valid samples in the consuming reductions, which mask by length.
    """
    signal = np.asarray(signal, dtype=float)
    row_starts = np.asarray(row_starts, dtype=np.int64)
    pad = max(0, (int(row_starts.max()) if row_starts.size else 0)
              + int(width) - signal.size)
    padded = np.concatenate([signal, np.zeros(pad)]) if pad else signal
    return np.lib.stride_tricks.sliding_window_view(
        padded, int(width))[row_starts]
