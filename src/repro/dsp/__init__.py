"""Digital signal processing substrate.

Everything the paper's embedded pipeline needs, implemented from scratch
on numpy: window functions, windowed-sinc FIR design, Butterworth IIR
design with second-order-section filtering, zero-phase application,
grey-scale morphology for baseline wander, smoothed derivatives,
spectral estimation and resampling.

The public surface re-exports the most commonly used callables; the
individual submodules stay importable for the full APIs.
"""

from repro.dsp.derivative import (
    central_difference,
    fit_line,
    line_x_intercept,
    local_maxima,
    local_minima,
    savgol_derivative,
    sign_pattern_positions,
    smooth_derivative,
    zero_crossings,
)
from repro.dsp.fir import (
    apply_fir,
    design_bandpass,
    design_bandstop,
    design_highpass,
    design_lowpass,
    filtfilt_fir,
    frequency_response,
    group_delay,
)
from repro.dsp.iir import (
    butter_bandpass,
    butter_bandstop,
    butter_highpass,
    butter_lowpass,
    sos_frequency_response,
    sosfilt,
    sosfilt_zi,
    sosfiltfilt,
)
from repro.dsp.morphology import (
    closing,
    dilate,
    erode,
    estimate_baseline,
    opening,
    remove_baseline,
)
from repro.dsp.resample import (
    decimate,
    linear_resample,
    resample_rate,
    resample_to_length,
)
from repro.dsp.spectral import (
    band_power,
    dominant_frequency,
    periodogram,
    total_power,
    welch,
)
from repro.dsp.wavelet import (
    denoise as wavelet_denoise,
    dwt,
    idwt,
    level_band_hz,
    suppress_low_frequency,
    wavedec,
    waverec,
)
from repro.dsp.windows import get_window, hamming, hann, kaiser

__all__ = [
    # windows
    "get_window", "hamming", "hann", "kaiser",
    # fir
    "design_lowpass", "design_highpass", "design_bandpass", "design_bandstop",
    "apply_fir", "filtfilt_fir", "group_delay", "frequency_response",
    # iir
    "butter_lowpass", "butter_highpass", "butter_bandpass", "butter_bandstop",
    "sosfilt", "sosfilt_zi", "sosfiltfilt", "sos_frequency_response",
    # morphology
    "erode", "dilate", "opening", "closing",
    "estimate_baseline", "remove_baseline",
    # derivative
    "central_difference", "smooth_derivative", "savgol_derivative",
    "fit_line", "line_x_intercept", "zero_crossings",
    "local_minima", "local_maxima", "sign_pattern_positions",
    # spectral
    "periodogram", "welch", "band_power", "total_power",
    "dominant_frequency",
    # resample
    "linear_resample", "resample_to_length", "decimate", "resample_rate",
    # wavelet
    "dwt", "idwt", "wavedec", "waverec", "wavelet_denoise",
    "suppress_low_frequency", "level_band_hz",
]
