"""Derivatives, polynomial smoothing, line fits and landmark search.

The ICG characteristic-point algorithm leans heavily on signal
derivatives: the B point is located from sign patterns of the *second*
derivative and minima of the *third*, and the X point from minima of the
third derivative.  Raw finite differences amplify noise at exactly the
frequencies that matter here, so this module provides Savitzky-Golay
smoothed derivatives (implemented from first principles via local
least-squares polynomial fits) next to plain central differences.
"""

from __future__ import annotations

import numpy as np

from repro.dsp._signal import as_signal as _as_signal
from repro.dsp.kernels import savgol_kernel
from repro.errors import ConfigurationError, SignalError

__all__ = [
    "central_difference",
    "savgol_coefficients",
    "savgol_derivative",
    "smooth_derivative",
    "fit_line",
    "line_x_intercept",
    "zero_crossings",
    "local_minima",
    "local_maxima",
    "sign_pattern_positions",
]


def central_difference(x, fs: float = 1.0, order: int = 1) -> np.ndarray:
    """Repeated central-difference derivative (ends use one-sided stencils).

    Output has the same length as the input.  ``order`` applications of
    the first derivative are used for higher orders, which keeps the
    implementation transparent at the cost of slightly wider effective
    stencils.
    """
    x = _as_signal(x)
    if fs <= 0:
        raise ConfigurationError(f"sampling rate must be positive, got {fs}")
    if order < 1:
        raise ConfigurationError(f"derivative order must be >= 1, got {order}")
    y = x
    for _ in range(order):
        y = np.gradient(y, 1.0 / fs)
    return y


def savgol_coefficients(window: int, polyorder: int, deriv: int = 0,
                        delta: float = 1.0) -> np.ndarray:
    """Savitzky-Golay convolution coefficients via local least squares.

    A polynomial of degree ``polyorder`` is fit to ``window`` samples
    centred on each point; the returned taps evaluate the ``deriv``-th
    derivative of that fit at the centre.  ``delta`` is the sample
    spacing (``1 / fs``).
    """
    if window < 3 or window % 2 == 0:
        raise ConfigurationError(
            f"window must be an odd integer >= 3, got {window}"
        )
    if polyorder >= window:
        raise ConfigurationError(
            f"polyorder ({polyorder}) must be < window ({window})"
        )
    if deriv > polyorder:
        raise ConfigurationError(
            f"derivative order ({deriv}) exceeds polyorder ({polyorder})"
        )
    # Least-squares projection onto polynomial coefficients; row `deriv`
    # times deriv! gives the derivative at the centre point.  The
    # pseudo-inverse is shared through the kernel cache — point
    # detection calls this once per beat with the same (window, poly).
    proj = savgol_kernel(window, polyorder)
    factorial = 1.0
    for i in range(2, deriv + 1):
        factorial *= i
    taps = proj[deriv] * factorial
    return taps / (delta ** deriv)


def savgol_derivative(x, fs: float, window: int, polyorder: int,
                      deriv: int) -> np.ndarray:
    """Smoothed ``deriv``-th derivative by Savitzky-Golay filtering.

    Edge samples are produced by fitting the same polynomial to the
    first/last full window (standard edge handling).
    """
    x = _as_signal(x)
    if fs <= 0:
        raise ConfigurationError(f"sampling rate must be positive, got {fs}")
    if x.size < window:
        raise SignalError(
            f"signal of {x.size} samples shorter than window {window}"
        )
    taps = savgol_coefficients(window, polyorder, deriv, delta=1.0 / fs)
    half = window // 2
    # Correlation (not convolution): coefficient k multiplies x[n + k].
    core = np.correlate(x, taps, mode="valid")
    out = np.empty_like(x)
    out[half: x.size - half] = core
    # Edge handling: evaluate the end-window polynomial fits off-centre
    # (same cached projection as the interior taps).
    proj = savgol_kernel(window, polyorder)
    factorial = 1.0
    for i in range(2, deriv + 1):
        factorial *= i
    head_coefficients = proj @ x[:window]
    tail_coefficients = proj @ x[-window:]
    for j in range(half):
        t_head = j - half
        t_tail = j + 1
        out[j] = _poly_derivative_at(head_coefficients, t_head, deriv,
                                     factorial) * fs**deriv
        out[x.size - half + j] = _poly_derivative_at(
            tail_coefficients, t_tail, deriv, factorial) * fs**deriv
    return out


def _poly_derivative_at(coefficients: np.ndarray, t: float, deriv: int,
                        factorial: float) -> float:
    """Evaluate the ``deriv``-th derivative of a polynomial (increasing
    powers) at offset ``t`` samples from the window centre."""
    total = 0.0
    for power in range(deriv, coefficients.size):
        term = coefficients[power]
        for k in range(deriv):
            term *= (power - k)
        total += term * t ** (power - deriv)
    return total


def smooth_derivative(x, fs: float, order: int = 1, smooth: bool = True,
                      window: int = None) -> np.ndarray:
    """Convenience wrapper: smoothed (default) or raw derivative.

    The default window (9 samples at 250 Hz, scaled with fs) matches the
    time support used when analysing ICG beats in the detection
    algorithm; polynomial degree is ``order + 2`` capped to window - 1.
    """
    if smooth:
        if window is None:
            window = max(5, int(round(0.036 * fs)) | 1)
        poly = min(order + 2, window - 1)
        return savgol_derivative(x, fs, window, poly, order)
    return central_difference(x, fs, order)


def fit_line(t, y) -> tuple:
    """Least-squares line fit.  Returns ``(slope, intercept)``."""
    t = np.asarray(t, dtype=float)
    y = np.asarray(y, dtype=float)
    if t.shape != y.shape or t.ndim != 1:
        raise SignalError("fit_line expects two 1-D arrays of equal length")
    if t.size < 2:
        raise SignalError("need at least two points to fit a line")
    t_mean = t.mean()
    y_mean = y.mean()
    denom = np.sum((t - t_mean) ** 2)
    if denom == 0:
        raise SignalError("all abscissae identical; line fit is vertical")
    slope = float(np.sum((t - t_mean) * (y - y_mean)) / denom)
    return slope, float(y_mean - slope * t_mean)


def line_x_intercept(slope: float, intercept: float) -> float:
    """Abscissa where a line crosses the horizontal axis."""
    if slope == 0:
        raise SignalError("horizontal line never crosses the axis")
    return -intercept / slope


def zero_crossings(x) -> np.ndarray:
    """Indices ``i`` where the signal crosses zero between ``i`` and
    ``i+1`` (sign change), including exact zeros."""
    x = _as_signal(x)
    signs = np.sign(x)
    # Treat exact zeros as crossings at their own index.
    exact = np.flatnonzero(signs == 0)
    change = np.flatnonzero(signs[:-1] * signs[1:] < 0)
    return np.unique(np.concatenate([exact, change]))


def local_minima(x, include_edges: bool = False) -> np.ndarray:
    """Indices of strict local minima (plateaus report their first
    sample)."""
    return _local_extrema(x, find_min=True, include_edges=include_edges)


def local_maxima(x, include_edges: bool = False) -> np.ndarray:
    """Indices of strict local maxima (plateaus report their first
    sample)."""
    return _local_extrema(x, find_min=False, include_edges=include_edges)


def _local_extrema(x, find_min: bool, include_edges: bool) -> np.ndarray:
    x = _as_signal(x)
    if find_min:
        x = -x
    n = x.size
    if n == 1:
        return np.array([0]) if include_edges else np.array([], dtype=int)
    idx = []
    i = 1
    while i < n - 1:
        if x[i] > x[i - 1]:
            # Walk plateaus: find where value next changes.
            j = i
            while j < n - 1 and x[j + 1] == x[i]:
                j += 1
            if j < n - 1 and x[j + 1] < x[i]:
                idx.append(i)
            i = j + 1
        else:
            i += 1
    if include_edges:
        if x[0] > x[1]:
            idx.insert(0, 0)
        if x[-1] > x[-2]:
            idx.append(n - 1)
    return np.asarray(sorted(idx), dtype=int)


def sign_pattern_positions(x, pattern: str, tol: float = 0.0) -> np.ndarray:
    """Find where the signal's sign sequence matches ``pattern``.

    The signal is first run-length encoded into a sequence of signs
    (``+``, ``-``; samples with ``|x| <= tol`` inherit the previous
    sign).  Returns the *sample index* at which each match of the
    pattern (e.g. ``"+-+-"``) begins.  This implements the
    "(+,-,+,-) sign pattern of the second-order derivative" test used
    for ICG B-point qualification.
    """
    x = _as_signal(x)
    if not pattern or any(c not in "+-" for c in pattern):
        raise ConfigurationError(
            f"pattern must be a non-empty string over '+-', got {pattern!r}"
        )
    signs = np.where(x > tol, 1, np.where(x < -tol, -1, 0))
    # Samples inside the tolerance band extend the previous run.
    last = 0
    for i in range(signs.size):
        if signs[i] == 0:
            signs[i] = last
        else:
            last = signs[i]
    # Run-length encode.
    runs = []          # (sign, start_index)
    for i, s in enumerate(signs):
        if s == 0:
            continue
        if not runs or runs[-1][0] != s:
            runs.append((s, i))
    wanted = [1 if c == "+" else -1 for c in pattern]
    matches = []
    for start in range(len(runs) - len(wanted) + 1):
        if all(runs[start + k][0] == wanted[k] for k in range(len(wanted))):
            matches.append(runs[start][1])
    return np.asarray(matches, dtype=int)
