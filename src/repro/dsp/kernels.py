"""Precomputed application kernels for the vectorized DSP hot paths.

The filter *designs* (Butterworth sections, FIR taps) are memoized by
:mod:`repro.core.cache`; this module plays the same role one layer
below, for the *application* kernels that make filtering array-speed:

* the blocked state-space scan matrices that solve a biquad's order-2
  pole recurrence ``block`` samples at a time (:func:`pole_block_kernel`
  — the heart of the vectorized :func:`repro.dsp.iir.sosfilt`);
* Savitzky-Golay convolution taps and edge projection matrices
  (:func:`savgol_kernel`), whose pseudo-inverse used to be recomputed
  for every beat of every recording;
* any other pure array valued by key through the generic
  :meth:`KernelCache.get`, e.g. the resampler's anti-alias designs.

The cache lives in the DSP layer (not ``repro.core``) so the low-level
filter routines can use it without importing upward;
``repro.core.cache`` re-exposes its counters next to the design-cache
statistics for the ``repro cache-stats`` capacity-planning view.
"""

from __future__ import annotations

import threading
from typing import Callable, Hashable

import numpy as np

__all__ = [
    "KernelCache",
    "default_kernel_cache",
    "pole_block_kernel",
    "savgol_kernel",
    "DEFAULT_BLOCK",
]

#: Samples advanced per Python-level iteration of the blocked scan.
#: Chosen empirically: large enough that interpreter overhead per
#: sample is negligible, small enough that the O(n * block) flops of
#: the triangular matmul stay cheap next to numpy's call overhead.
DEFAULT_BLOCK = 64


def _freeze(value):
    """Mark cached arrays read-only so no caller can corrupt a kernel
    another thread is using."""
    if isinstance(value, np.ndarray):
        value.setflags(write=False)
    elif isinstance(value, tuple):
        for item in value:
            if isinstance(item, np.ndarray):
                item.setflags(write=False)
    return value


class KernelCache:
    """Thread-safe memo table for application kernels.

    Mirrors the design cache's contract: deterministic builders, exact
    hashable keys, read-only values, and hit/miss counters for capacity
    planning.  Unhashable keys fall back to building without
    memoization — caching is an optimisation, never a requirement.
    """

    def __init__(self) -> None:
        self._store: dict = {}
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0

    def get(self, key: Hashable, builder: Callable[[], object]):
        """The kernel under ``key``, building (and freezing) it once."""
        try:
            with self._lock:
                if key in self._store:
                    self._hits += 1
                    return self._store[key]
        except TypeError:
            return builder()
        # Build outside the lock: kernels are deterministic, so a rare
        # duplicate build is harmless and cheaper than serialising all
        # builds behind one mutex.
        value = _freeze(builder())
        with self._lock:
            if key in self._store:
                return self._store[key]
            self._misses += 1
            self._store[key] = value
            return value

    @property
    def hits(self) -> int:
        """Lookups served from the table."""
        return self._hits

    @property
    def misses(self) -> int:
        """Lookups that had to run a builder."""
        return self._misses

    def __len__(self) -> int:
        return len(self._store)

    def stats(self) -> dict:
        """Hit/miss counters and entry count, for benches and logs."""
        with self._lock:
            return {"hits": self._hits, "misses": self._misses,
                    "entries": len(self._store)}

    def clear(self) -> None:
        """Drop every kernel and reset the counters."""
        with self._lock:
            self._store.clear()
            self._hits = 0
            self._misses = 0


_DEFAULT_CACHE = KernelCache()


def default_kernel_cache() -> KernelCache:
    """The process-wide kernel cache shared by the DSP hot paths."""
    return _DEFAULT_CACHE


def _build_pole_block(a1: float, a2: float, block: int):
    """Scan matrices for ``y[n] = f[n] - a1 y[n-1] - a2 y[n-2]``.

    ``h`` is the impulse response of the all-pole part ``1 / A(z)``;
    the blocked solution over ``block`` samples is then

        ``y = H @ f  +  G @ [y_prev1, y_prev2]``

    with ``H`` the lower-triangular Toeplitz matrix of ``h`` (the
    within-block particular response) and ``G`` the pair of
    initial-condition responses — equivalently, the first companion-
    matrix powers ``A^1 ... A^block`` of the recurrence laid out as the
    two columns each power contributes to the block's output.
    """
    h = np.empty(block + 1)
    h[0] = 1.0
    h[1] = -a1
    for n in range(2, block + 1):
        h[n] = -a1 * h[n - 1] - a2 * h[n - 2]
    idx = np.arange(block)
    lag = idx[:, None] - idx[None, :]
    H = np.where(lag >= 0, h[np.clip(lag, 0, block)], 0.0)
    # Response to y[-1] = 1 is h shifted by one; to y[-2] = 1 is -a2 h.
    G = np.column_stack([h[1: block + 1], -a2 * h[:block]])
    return H, G


def pole_block_kernel(a1: float, a2: float,
                      block: int = DEFAULT_BLOCK) -> tuple:
    """Cached ``(H, G)`` scan matrices for a biquad's pole recurrence.

    Keyed exactly by the denominator coefficients and block length, so
    forward and backward :func:`~repro.dsp.iir.sosfiltfilt` passes —
    and every recording sharing a filter design — reuse one kernel.
    """
    if block < 2:
        raise ValueError(f"block length must be >= 2, got {block}")
    key = ("pole_block", float(a1), float(a2), int(block))
    return default_kernel_cache().get(
        key, lambda: _build_pole_block(float(a1), float(a2), int(block)))


def _build_savgol(window: int, polyorder: int):
    """Least-squares projection of a centred ``window`` onto polynomial
    coefficients (rows = increasing powers)."""
    half = window // 2
    offsets = np.arange(-half, half + 1, dtype=float)
    vander = np.vander(offsets, polyorder + 1, increasing=True)
    return np.linalg.pinv(vander)


def savgol_kernel(window: int, polyorder: int) -> np.ndarray:
    """Cached Savitzky-Golay projection matrix for ``(window,
    polyorder)``.

    Row ``d`` (times ``d!`` and the sample-spacing power) is the
    ``d``-th-derivative convolution tap set; the full matrix also
    serves the edge-window polynomial fits.  The pseudo-inverse behind
    it used to be recomputed per beat — the second-hottest kernel in a
    recording after the SOS loop.
    """
    key = ("savgol_proj", int(window), int(polyorder))
    return default_kernel_cache().get(
        key, lambda: _build_savgol(int(window), int(polyorder)))
