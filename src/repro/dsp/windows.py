"""Window functions for FIR design and spectral estimation.

All windows are implemented directly on numpy so that the library has no
runtime dependency on :mod:`scipy`; the test-suite cross-checks each
window against ``scipy.signal.get_window`` as an oracle.

Windows are returned *symmetric* by default (the right choice for filter
design).  Pass ``periodic=True`` for spectral analysis use, which returns
the DFT-even variant (equivalent to computing the symmetric window of
length ``n + 1`` and dropping the last sample).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError

__all__ = [
    "rectangular",
    "hamming",
    "hann",
    "blackman",
    "blackman_harris",
    "kaiser",
    "kaiser_beta",
    "kaiser_order",
    "get_window",
]


def _check_length(n: int) -> None:
    if not isinstance(n, (int, np.integer)):
        raise ConfigurationError(f"window length must be an integer, got {n!r}")
    if n < 1:
        raise ConfigurationError(f"window length must be >= 1, got {n}")


def _cosine_window(n: int, coefficients, periodic: bool) -> np.ndarray:
    """Generalised cosine window: ``sum_k (-1)^k a_k cos(2 pi k t)``."""
    _check_length(n)
    if n == 1:
        return np.ones(1)
    denom = n if periodic else n - 1
    t = np.arange(n) / denom
    window = np.zeros(n)
    for k, a_k in enumerate(coefficients):
        window += ((-1) ** k) * a_k * np.cos(2.0 * np.pi * k * t)
    return window


def rectangular(n: int, periodic: bool = False) -> np.ndarray:
    """Rectangular (boxcar) window of length ``n``."""
    _check_length(n)
    del periodic  # identical either way
    return np.ones(n)


def hamming(n: int, periodic: bool = False) -> np.ndarray:
    """Hamming window (first sidelobe about -43 dB)."""
    return _cosine_window(n, (0.54, 0.46), periodic)


def hann(n: int, periodic: bool = False) -> np.ndarray:
    """Hann window (raised cosine, sidelobes roll off at -18 dB/octave)."""
    return _cosine_window(n, (0.5, 0.5), periodic)


def blackman(n: int, periodic: bool = False) -> np.ndarray:
    """Blackman window (classic a0=0.42 variant, sidelobes < -58 dB)."""
    return _cosine_window(n, (0.42, 0.5, 0.08), periodic)


def blackman_harris(n: int, periodic: bool = False) -> np.ndarray:
    """4-term Blackman-Harris window (sidelobes < -92 dB)."""
    return _cosine_window(n, (0.35875, 0.48829, 0.14128, 0.01168), periodic)


def kaiser(n: int, beta: float, periodic: bool = False) -> np.ndarray:
    """Kaiser window with shape parameter ``beta``.

    ``beta`` trades main-lobe width against sidelobe attenuation; use
    :func:`kaiser_beta` to derive it from a stop-band attenuation target.
    """
    _check_length(n)
    if beta < 0:
        raise ConfigurationError(f"kaiser beta must be >= 0, got {beta}")
    if n == 1:
        return np.ones(1)
    denom = n if periodic else n - 1
    ratio = 2.0 * np.arange(n) / denom - 1.0
    return np.i0(beta * np.sqrt(np.clip(1.0 - ratio**2, 0.0, None))) / np.i0(beta)


def kaiser_beta(attenuation_db: float) -> float:
    """Kaiser's empirical beta for a given stop-band attenuation in dB."""
    a = float(attenuation_db)
    if a > 50.0:
        return 0.1102 * (a - 8.7)
    if a >= 21.0:
        return 0.5842 * (a - 21.0) ** 0.4 + 0.07886 * (a - 21.0)
    return 0.0


def kaiser_order(attenuation_db: float, transition_width: float) -> int:
    """Estimate the FIR order for a Kaiser-window design.

    Parameters
    ----------
    attenuation_db:
        Desired stop-band attenuation in dB (positive number).
    transition_width:
        Transition band width as a fraction of the sampling rate
        (``delta_f / fs``), must be in (0, 0.5).
    """
    if not 0.0 < transition_width < 0.5:
        raise ConfigurationError(
            f"transition width must be in (0, 0.5) of fs, got {transition_width}"
        )
    a = float(attenuation_db)
    numtaps = (a - 7.95) / (2.285 * 2.0 * np.pi * transition_width) + 1
    return max(1, int(np.ceil(numtaps)) - 1)


_WINDOWS_BY_NAME = {
    "rectangular": rectangular,
    "boxcar": rectangular,
    "hamming": hamming,
    "hann": hann,
    "hanning": hann,
    "blackman": blackman,
    "blackmanharris": blackman_harris,
    "blackman_harris": blackman_harris,
}


def get_window(name, n: int, periodic: bool = False) -> np.ndarray:
    """Look a window up by name, mirroring scipy's string interface.

    ``name`` may be a plain string (``"hamming"``) or a ``("kaiser",
    beta)`` tuple.  Unknown names raise :class:`ConfigurationError`.
    """
    if isinstance(name, tuple):
        kind, *params = name
        if kind.lower() == "kaiser":
            if len(params) != 1:
                raise ConfigurationError("kaiser window expects ('kaiser', beta)")
            return kaiser(n, float(params[0]), periodic=periodic)
        raise ConfigurationError(f"unknown parametric window {kind!r}")
    key = str(name).lower()
    if key not in _WINDOWS_BY_NAME:
        raise ConfigurationError(
            f"unknown window {name!r}; available: {sorted(_WINDOWS_BY_NAME)}"
        )
    return _WINDOWS_BY_NAME[key](n, periodic=periodic)
