"""Adaptive FFT/direct convolution crossover calibration.

:func:`repro.dsp.fir.apply_fir` picks between ``np.convolve`` and a
single-FFT path.  PR 2 pinned the switch at one measured constant
(``FFT_CROSSOVER_TAPS = 256``), but the true crossover moves with the
host: numpy build, BLAS/SIMD kernels, cache sizes.  A constant tuned
on one machine silently picks the slower path on another.

This module replaces the constant with a **startup micro-calibration**:

* the decision is a per-*signal-length-bucket* tap threshold
  (:class:`FftCrossoverTable`); buckets are powers of two, so one tiny
  measurement covers every nearby signal length;
* each bucket is calibrated lazily on first use — a few milliseconds
  of timing direct vs FFT convolution at candidate tap counts, binary
  searched and cached for the life of the process;
* results are clamped to ``[MIN_CROSSOVER_TAPS, MAX_CROSSOVER_TAPS]``.
  The floor guarantees the short designs of the published chain (the
  33-tap ECG FIR, the 150 ms MWI at clinical rates) always take the
  direct path on every host, so cross-host bit-reproducibility of the
  core protocol never depends on timing;
* ``REPRO_FFT_CROSSOVER=<taps>`` forces a fixed crossover (no timing,
  full determinism — deployment hosts with a known-good value), and
  ``REPRO_FFT_CALIBRATE=0`` disables measurement in favour of the
  built-in default;
* within one process the table is calibrated once and then frozen, and
  the process backends ship the parent's snapshot to their workers
  (:func:`snapshot` / :func:`install_snapshot`), so a parent and its
  pool can never disagree on a convolution path — the property the
  bit-identical batch/serial tests rely on;
* calibrated buckets persist to a per-host cache file
  (``$XDG_CACHE_HOME/repro/fft-crossover.json``, keyed by
  python/numpy/machine; ``REPRO_FFT_CACHE`` relocates it, empty
  disables), so *separate processes on the same host* — a second CLI
  run, a crash-recovery replay — resolve every previously measured
  bucket identically instead of re-timing it.  Persistence is
  best-effort; ``REPRO_FFT_CROSSOVER`` remains the hard-determinism
  switch for fleets that need identical paths across hosts.
"""

from __future__ import annotations

import json
import os
import platform
import threading
import time
from pathlib import Path
from typing import Callable, Optional

import numpy as np

from repro.errors import ConfigurationError

__all__ = [
    "DEFAULT_CROSSOVER_TAPS",
    "MIN_CROSSOVER_TAPS",
    "MAX_CROSSOVER_TAPS",
    "FftCrossoverTable",
    "crossover_taps",
    "default_crossover_table",
    "snapshot",
    "install_snapshot",
    "use_crossover",
    "reset_default_table",
]

#: The PR 2 measured constant — the fallback when calibration is
#: disabled and the seed of every candidate search.
DEFAULT_CROSSOVER_TAPS = 256

#: Clamp: never send kernels shorter than this to the FFT path.  The
#: published chain's designs (33-tap ECG FIR, ~38-tap MWI at 250 Hz)
#: sit safely below, so the protocol's numbers are timing-independent.
MIN_CROSSOVER_TAPS = 64
MAX_CROSSOVER_TAPS = 2048

#: Candidate thresholds probed by the calibration search.
_CANDIDATES = (64, 128, 256, 512, 1024, 2048)

#: Signal lengths above this are measured at this length — the FFT
#: advantage only grows with n, so the cached value stays valid while
#: startup cost stays bounded.
_MAX_PROBE_SAMPLES = 16384

_ENV_FORCE = "REPRO_FFT_CROSSOVER"
_ENV_CALIBRATE = "REPRO_FFT_CALIBRATE"
_ENV_CACHE = "REPRO_FFT_CACHE"


def _disk_cache_path() -> Optional[Path]:
    """The per-host calibration cache file (``None`` disables).

    ``REPRO_FFT_CACHE`` overrides the location; an empty value turns
    persistence off.  Default: ``$XDG_CACHE_HOME/repro`` (or
    ``~/.cache/repro``).
    """
    env = os.environ.get(_ENV_CACHE)
    if env is not None:
        return Path(env) if env.strip() else None
    base = os.environ.get("XDG_CACHE_HOME") or os.path.join(
        os.path.expanduser("~"), ".cache")
    return Path(base) / "repro" / "fft-crossover.json"


def _host_key() -> str:
    """Cache key: the crossover moves with interpreter/numpy/machine."""
    return (f"py{platform.python_version()}"
            f"-np{np.__version__}-{platform.machine()}")


def _load_disk_table() -> dict:
    """Previously persisted ``{bucket: crossover}`` for this host
    (empty on any problem — the cache is best-effort)."""
    path = _disk_cache_path()
    if path is None:
        return {}
    try:
        stored = json.loads(path.read_text())
        return {int(bucket): int(taps)
                for bucket, taps in stored.get(_host_key(), {}).items()}
    except (OSError, ValueError, AttributeError, TypeError):
        return {}


def _store_disk_table(table: dict) -> None:
    """Atomically merge this process's calibrated buckets into the
    host cache, so the *next* process (a recovery replay, a second CLI
    run) resolves every already-measured bucket identically instead of
    re-timing it.  Best-effort: any I/O problem is ignored."""
    path = _disk_cache_path()
    if path is None:
        return
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        try:
            stored = json.loads(path.read_text())
        except (OSError, ValueError):
            stored = {}
        host = stored.setdefault(_host_key(), {})
        host.update({str(bucket): int(taps)
                     for bucket, taps in table.items()})
        temp = path.with_suffix(".tmp")
        temp.write_text(json.dumps(stored, indent=1, sort_keys=True))
        os.replace(temp, path)
    except OSError:     # pragma: no cover - read-only home, races, ...
        pass


def _fft_beats_direct(n_samples: int, n_taps: int,
                      repeats: int = 3,
                      clock: Callable[[], float] = time.perf_counter,
                      ) -> bool:
    """Measure whether the FFT path wins for ``(n_samples, n_taps)``.

    Median-of-N of each path (the same outlier-immune estimator the
    perf harness uses, in miniature).
    """
    from repro.dsp import fir as _fir

    rng = np.random.default_rng(n_samples * 31 + n_taps)
    x = rng.standard_normal(n_samples)
    taps = rng.standard_normal(n_taps)
    # One warm pass each (FFT plans, allocator, code paths).
    np.convolve(x, taps, mode="full")
    _fir._fft_convolve(x, taps)
    direct_times = []
    fft_times = []
    for _ in range(repeats):
        start = clock()
        np.convolve(x, taps, mode="full")
        direct_times.append(clock() - start)
        start = clock()
        _fir._fft_convolve(x, taps)
        fft_times.append(clock() - start)
    return sorted(fft_times)[repeats // 2] < sorted(
        direct_times)[repeats // 2]


class FftCrossoverTable:
    """Lazily calibrated per-signal-bucket crossover thresholds.

    ``resolve(n_taps, n_samples)`` is the hot-path query used by
    ``apply_fir``'s ``auto`` mode; everything else is plumbing for
    determinism (env overrides, worker snapshots, test injection).
    """

    def __init__(self, default: int = DEFAULT_CROSSOVER_TAPS,
                 calibrate: Optional[bool] = None,
                 override: Optional[int] = None,
                 measure: Callable[[int, int], bool] = _fft_beats_direct,
                 ) -> None:
        if override is None:
            forced = os.environ.get(_ENV_FORCE, "").strip()
            if forced:
                try:
                    override = int(forced)
                except ValueError:
                    raise ConfigurationError(
                        f"{_ENV_FORCE} must be an integer, got "
                        f"{forced!r}")
        if calibrate is None:
            calibrate = os.environ.get(_ENV_CALIBRATE, "1") != "0"
        self.default = int(default)
        self.override = None if override is None else int(override)
        self.calibrate = bool(calibrate) and self.override is None
        self._measure = measure
        # Seed from the per-host disk cache: a fresh process (a second
        # CLI run, a crash-recovery replay) then resolves every
        # previously measured bucket identically instead of re-timing
        # it — cross-*process* path stability on one host.
        self._table: dict = _load_disk_table() if self.calibrate else {}
        self._lock = threading.Lock()

    @staticmethod
    def bucket(n_samples: int) -> int:
        """Power-of-two signal-length bucket for ``n_samples``."""
        n = min(max(int(n_samples), 1), _MAX_PROBE_SAMPLES)
        return 1 << (n - 1).bit_length()

    def crossover_taps(self, n_samples: int) -> int:
        """The tap threshold at/above which FFT wins for this length."""
        if self.override is not None:
            return max(1, self.override)
        bucket = self.bucket(n_samples)
        with self._lock:
            value = self._table.get(bucket)
        if value is not None:        # calibrated (or installed) bucket
            return value
        if not self.calibrate:
            return self.default
        value = self._calibrate_bucket(bucket)
        with self._lock:
            self._table.setdefault(bucket, value)
            value = self._table[bucket]
            table = dict(self._table)
        _store_disk_table(table)
        return value

    def resolve(self, n_taps: int, n_samples: int) -> str:
        """``"fft"`` or ``"direct"`` for one application."""
        if n_taps >= self.crossover_taps(n_samples) \
                and n_samples > n_taps:
            return "fft"
        return "direct"

    def _calibrate_bucket(self, bucket: int) -> int:
        """Binary-search the candidate grid for the smallest tap count
        where the FFT path wins; clamped, defaulting to the static
        constant when FFT never wins in range."""
        lo, hi = 0, len(_CANDIDATES) - 1
        winner = None
        while lo <= hi:
            mid = (lo + hi) // 2
            taps = _CANDIDATES[mid]
            if taps >= bucket:        # degenerate: kernel ~ signal
                hi = mid - 1
                continue
            if self._measure(bucket, taps):
                winner = taps
                hi = mid - 1
            else:
                lo = mid + 1
        if winner is None:
            winner = max(self.default, MIN_CROSSOVER_TAPS)
        return int(min(max(winner, MIN_CROSSOVER_TAPS),
                       MAX_CROSSOVER_TAPS))

    # -- worker shipping ---------------------------------------------------

    def snapshot(self) -> dict:
        """Picklable state for installing in a pool worker."""
        with self._lock:
            table = dict(self._table)
        return {"default": self.default, "override": self.override,
                "calibrate": self.calibrate, "table": table}

    @classmethod
    def from_snapshot(cls, state: dict) -> "FftCrossoverTable":
        """Rebuild a table that will never re-measure: buckets missing
        from the snapshot fall back to the parent's default, keeping
        parent and worker on identical paths."""
        out = cls(default=state["default"], calibrate=False,
                  override=state["override"])
        out._table = dict(state["table"])
        # Resolve un-snapshotted buckets from the snapshot, never from
        # fresh (possibly disagreeing) measurement.
        return out

    def stats(self) -> dict:
        """Calibrated ``{bucket: crossover}`` plus mode, for the perf
        harness's summary."""
        with self._lock:
            table = dict(sorted(self._table.items()))
        mode = ("override" if self.override is not None
                else "calibrated" if self.calibrate else "static")
        return {"mode": mode, "default": self.default,
                "override": self.override, "table": table}


_DEFAULT_TABLE = FftCrossoverTable()
_TABLE_LOCK = threading.Lock()


def default_crossover_table() -> FftCrossoverTable:
    """The process-wide table ``apply_fir`` consults."""
    return _DEFAULT_TABLE


def crossover_taps(n_samples: int) -> int:
    """Tap threshold for a signal of ``n_samples`` (hot-path helper)."""
    return _DEFAULT_TABLE.crossover_taps(n_samples)


def snapshot() -> dict:
    """The process-wide table's picklable state (for pool workers)."""
    return _DEFAULT_TABLE.snapshot()


def install_snapshot(state: dict) -> None:
    """Adopt a parent's calibration snapshot process-wide (worker
    initializer) — the worker then never re-measures, so parent and
    pool agree on every convolution path."""
    global _DEFAULT_TABLE
    with _TABLE_LOCK:
        _DEFAULT_TABLE = FftCrossoverTable.from_snapshot(state)


def reset_default_table(**kwargs) -> None:
    """Replace the process-wide table (tests / env-change pickup)."""
    global _DEFAULT_TABLE
    with _TABLE_LOCK:
        _DEFAULT_TABLE = FftCrossoverTable(**kwargs)


class use_crossover:
    """Context manager pinning a fixed crossover process-wide.

    ``with use_crossover(256): ...`` makes ``auto`` behave exactly like
    the static PR 2 constant — what the kernel-parity boundary tests
    pin, and a handy escape hatch for bit-reproducing a run on a
    different host.
    """

    def __init__(self, taps: int) -> None:
        if taps < 1:
            raise ConfigurationError("crossover must be >= 1 tap")
        self.taps = int(taps)
        self._previous: Optional[FftCrossoverTable] = None

    def __enter__(self) -> "use_crossover":
        global _DEFAULT_TABLE
        with _TABLE_LOCK:
            self._previous = _DEFAULT_TABLE
            _DEFAULT_TABLE = FftCrossoverTable(override=self.taps)
        return self

    def __exit__(self, *exc) -> None:
        global _DEFAULT_TABLE
        with _TABLE_LOCK:
            _DEFAULT_TABLE = self._previous
