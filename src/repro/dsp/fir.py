"""FIR filter design (windowed-sinc) and application.

This module provides the linear-phase FIR machinery used by the paper's
ECG chain: a 32nd-order band-pass with cut-offs 0.05 Hz and 40 Hz applied
in zero phase (forward-backward).  Designs follow the classic
windowed-sinc method: an ideal brick-wall impulse response truncated and
shaped by a window from :mod:`repro.dsp.windows`.

Only odd-length (even-order, type-I) designs are produced for high-pass
and band-stop responses, since even-length linear-phase filters force a
null at Nyquist.
"""

from __future__ import annotations

import numpy as np

from repro.dsp import windows as _windows
from repro.dsp._signal import as_signal as _as_signal
from repro.dsp._signal import check_lengths as _check_lengths
from repro.dsp._signal import odd_reflect_pad as _odd_reflect_pad
from repro.dsp._signal import odd_reflect_pad_rows as _odd_reflect_pad_rows
from repro.errors import ConfigurationError, SignalError

__all__ = [
    "design_lowpass",
    "design_highpass",
    "design_bandpass",
    "design_bandstop",
    "apply_fir",
    "apply_fir_batch",
    "filtfilt_fir",
    "filtfilt_fir_batch",
    "group_delay",
    "frequency_response",
    "FFT_CROSSOVER_TAPS",
]

#: Static default tap count above which the FFT convolution path beats
#: direct ``np.convolve``.  Measured on the reference interpreter
#: (numpy 2.x, signals of 2k-32k samples): direct wins clearly through
#: ~129 taps, the two trade places around 257, and FFT wins beyond.
#: Kernels this long appear in the high-rate device modes (e.g. the
#: 150 ms Pan-Tompkins integration window at fs >= ~1.7 kHz) and the
#: resampler's anti-alias filters.
#:
#: ``method="auto"`` no longer uses this constant directly: the actual
#: switch point comes from the startup micro-calibration in
#: :mod:`repro.dsp.calibration` (per signal-length bucket, clamped,
#: env-overridable), which tracks numpy/BLAS differences between
#: hosts.  This value remains the calibration's fallback/default and
#: the documented reference point.
FFT_CROSSOVER_TAPS = 256


def _validate_order(order: int) -> int:
    if not isinstance(order, (int, np.integer)):
        raise ConfigurationError(f"filter order must be an integer, got {order!r}")
    if order < 2:
        raise ConfigurationError(f"filter order must be >= 2, got {order}")
    if order % 2:
        raise ConfigurationError(
            f"only even (type-I) FIR orders are supported, got {order}"
        )
    return int(order)


def _validate_cutoff(cutoff_hz: float, fs: float, name: str = "cutoff") -> float:
    if fs <= 0:
        raise ConfigurationError(f"sampling rate must be positive, got {fs}")
    if not 0.0 < cutoff_hz < fs / 2.0:
        raise ConfigurationError(
            f"{name} must lie strictly inside (0, fs/2) = (0, {fs / 2.0}); "
            f"got {cutoff_hz}"
        )
    return float(cutoff_hz)


def _ideal_lowpass(order: int, fc_norm: float) -> np.ndarray:
    """Impulse response of the ideal low-pass, fc as a fraction of fs."""
    n = np.arange(order + 1) - order / 2.0
    return 2.0 * fc_norm * np.sinc(2.0 * fc_norm * n)


def _windowed(h: np.ndarray, window) -> np.ndarray:
    w = _windows.get_window(window, h.size)
    return h * w


def design_lowpass(order: int, cutoff_hz: float, fs: float,
                   window="hamming") -> np.ndarray:
    """Design a linear-phase low-pass FIR of the given (even) order.

    Returns ``order + 1`` taps normalised for unit gain at DC.
    """
    order = _validate_order(order)
    fc = _validate_cutoff(cutoff_hz, fs) / fs
    taps = _windowed(_ideal_lowpass(order, fc), window)
    return taps / taps.sum()


def design_highpass(order: int, cutoff_hz: float, fs: float,
                    window="hamming") -> np.ndarray:
    """Design a linear-phase high-pass FIR by spectral inversion.

    Gain is normalised to exactly one at the Nyquist frequency.
    """
    order = _validate_order(order)
    fc = _validate_cutoff(cutoff_hz, fs) / fs
    low = _windowed(_ideal_lowpass(order, fc), window)
    taps = -low
    taps[order // 2] += 1.0
    # Normalise gain at Nyquist: H(pi) = sum h[n] * (-1)^n
    nyq_gain = np.sum(taps * (-1.0) ** np.arange(taps.size))
    return taps / nyq_gain


def design_bandpass(order: int, low_hz: float, high_hz: float, fs: float,
                    window="hamming") -> np.ndarray:
    """Design a linear-phase band-pass FIR (difference of two low-passes).

    This is the design used by the paper's ECG stage with
    ``order=32, low_hz=0.05, high_hz=40, fs=250``.  Gain is normalised to
    one at the geometric centre of the pass-band.
    """
    order = _validate_order(order)
    lo = _validate_cutoff(low_hz, fs, "low cut-off")
    hi = _validate_cutoff(high_hz, fs, "high cut-off")
    if lo >= hi:
        raise ConfigurationError(
            f"low cut-off ({lo} Hz) must be below high cut-off ({hi} Hz)"
        )
    wide = _ideal_lowpass(order, hi / fs)
    narrow = _ideal_lowpass(order, lo / fs)
    taps = _windowed(wide - narrow, window)
    centre_hz = float(np.sqrt(lo * hi))
    gain = np.abs(frequency_response(taps, np.array([centre_hz]), fs)[1][0])
    if gain <= 0:
        raise ConfigurationError("degenerate band-pass design (zero centre gain)")
    return taps / gain


def design_bandstop(order: int, low_hz: float, high_hz: float, fs: float,
                    window="hamming") -> np.ndarray:
    """Design a linear-phase band-stop FIR (sum of low-pass + high-pass)."""
    order = _validate_order(order)
    lo = _validate_cutoff(low_hz, fs, "low cut-off")
    hi = _validate_cutoff(high_hz, fs, "high cut-off")
    if lo >= hi:
        raise ConfigurationError(
            f"low cut-off ({lo} Hz) must be below high cut-off ({hi} Hz)"
        )
    low = _ideal_lowpass(order, lo / fs)
    wide = _ideal_lowpass(order, hi / fs)
    taps = low - wide
    taps[order // 2] += 1.0
    taps = _windowed(taps, window)
    return taps / taps.sum()  # unit DC gain


def _fft_convolve(x: np.ndarray, taps: np.ndarray) -> np.ndarray:
    """Causal convolution via one real FFT of the next power-of-two
    length, truncated to the input length."""
    full = x.size + taps.size - 1
    nfft = 1 << (full - 1).bit_length()
    spectrum = np.fft.rfft(x, nfft) * np.fft.rfft(taps, nfft)
    return np.fft.irfft(spectrum, nfft)[: x.size]


def _check_taps(taps) -> np.ndarray:
    taps = np.asarray(taps, dtype=float)
    if taps.ndim != 1 or taps.size == 0:
        raise ConfigurationError("taps must be a non-empty 1-D array")
    return taps


def _resolve_method(method: str, taps: np.ndarray, x: np.ndarray) -> str:
    if method not in ("auto", "direct", "fft"):
        raise ConfigurationError(
            f"method must be 'auto', 'direct' or 'fft', got {method!r}")
    if method != "auto":
        return method
    from repro.dsp.calibration import default_crossover_table

    return default_crossover_table().resolve(taps.size, x.size)


def apply_fir(taps: np.ndarray, x, method: str = "auto") -> np.ndarray:
    """Causal FIR filtering (same length as input).

    ``method`` selects the convolution path: ``"direct"``
    (``np.convolve``), ``"fft"`` (overlap-free single real FFT), or
    ``"auto"`` (default) which switches to FFT above the measured
    :data:`FFT_CROSSOVER_TAPS` crossover.  Both paths agree to
    ~1e-13 relative accuracy (asserted at 1e-9 by the parity suite).
    """
    x = _as_signal(x)
    taps = _check_taps(taps)
    if _resolve_method(method, taps, x) == "fft":
        return _fft_convolve(x, taps)
    return np.convolve(x, taps, mode="full")[: x.size]


def _resolve_method_rows(method: str, taps: np.ndarray,
                         lengths: np.ndarray) -> list:
    """Per-row convolution paths, matching what :func:`apply_fir` would
    resolve for each row's own length."""
    if method not in ("auto", "direct", "fft"):
        raise ConfigurationError(
            f"method must be 'auto', 'direct' or 'fft', got {method!r}")
    if method != "auto":
        return [method] * lengths.size
    from repro.dsp.calibration import default_crossover_table

    table = default_crossover_table()
    return [table.resolve(taps.size, int(n)) for n in lengths]


def apply_fir_batch(taps: np.ndarray, x, lengths=None,
                    method: str = "auto",
                    patch_head: bool = True) -> np.ndarray:
    """Causal FIR filtering over a leading recording axis.

    ``x`` is a ``(n_rows, width)`` matrix of zero-stacked signals, row
    ``i`` valid up to ``lengths[i]``.  The convolution path is resolved
    per row against each row's own length — exactly what
    :func:`apply_fir` would pick — and rows sharing a path (and, on
    the FFT path, a transform size) are processed together:

    * **direct**: one ``np.convolve`` over the row-flattened buffer
      with ``ntaps - 1`` guard zeros between rows.  Interior outputs
      are the same full-window dot products either way (the
      beat-matrix precedent); the first ``ntaps - 1`` outputs of each
      row are boundary dots whose summation tree differs, so they are
      patched per row from a prefix convolution — bit-identical.
    * **fft**: rows bucket by their power-of-two transform length
      (``nfft`` depends on the row length, so ragged rows can resolve
      different sizes); each bucket runs one batched ``rfft``/``irfft``
      — bit-identical to the per-row transforms, since zero tail
      padding is exactly what ``np.fft.rfft(x, nfft)`` does.

    Row ``i``'s first ``lengths[i]`` outputs equal
    ``apply_fir(taps, x[i, :lengths[i]], method)``; columns beyond are
    unspecified.  Requires every row length ``>= taps.size``.

    ``patch_head=False`` skips the per-row boundary patch on the
    direct path, leaving each row's first ``ntaps - 1`` outputs
    unspecified alongside the trailing columns.  Only for callers
    that provably never read the head: :func:`filtfilt_fir_batch`
    pads by ``3 * ntaps`` before both passes, so the head region of
    each pass lies entirely inside trimmed padding — the patch there
    is per-row ``np.convolve`` work (the one remaining per-row loop
    of the batched FIR) spent on samples nothing observes.
    """
    taps = _check_taps(taps)
    lengths = _check_lengths(x, lengths)
    x = np.asarray(x, dtype=float)
    n_rows, width = x.shape
    if lengths.size and int(lengths.min()) < taps.size:
        raise SignalError(
            f"batched FIR needs rows of >= {taps.size} samples; route "
            "shorter recordings through the per-recording path")
    methods = _resolve_method_rows(method, taps, lengths)
    out = np.empty_like(x)
    cols = np.arange(width)[None, :]

    direct = np.flatnonzero([m == "direct" for m in methods])
    if direct.size:
        guard = taps.size - 1
        buf = np.zeros((direct.size, width + guard))
        buf[:, :width] = x[direct]
        buf[:, :width][cols >= lengths[direct, None]] = 0.0
        flat = np.convolve(buf.ravel(), taps, mode="full")
        rows_out = flat[: buf.size].reshape(direct.size, -1)[:, :width]
        # Boundary patch: the first ntaps-1 outputs come from partial
        # windows whose dot products numpy evaluates over fewer terms
        # than the guard-zero-extended windows of the flat pass.
        if patch_head:
            head = min(guard, width)
            for k, row in enumerate(direct):
                prefix = buf[k, : taps.size]
                rows_out[k, :head] = np.convolve(
                    prefix, taps, mode="full")[:head]
        out[direct] = rows_out

    fft_rows = np.flatnonzero([m == "fft" for m in methods])
    if fft_rows.size:
        taps_spectra: dict = {}
        nffts = np.array([
            1 << (int(n) + taps.size - 1 - 1).bit_length()
            for n in lengths[fft_rows]])
        for nfft in np.unique(nffts):
            rows = fft_rows[nffts == nfft]
            take = min(width, int(nfft))
            buf = np.zeros((rows.size, take))
            buf[:] = x[rows, :take]
            buf[cols[:, :take] >= lengths[rows, None]] = 0.0
            if nfft not in taps_spectra:
                taps_spectra[nfft] = np.fft.rfft(taps, int(nfft))
            spectrum = (np.fft.rfft(buf, int(nfft), axis=-1)
                        * taps_spectra[nfft])
            y = np.fft.irfft(spectrum, int(nfft), axis=-1)
            out[rows] = 0.0
            out[rows, :take] = y[:, :take]
    return out


def filtfilt_fir(taps: np.ndarray, x, method: str = "auto") -> np.ndarray:
    """Zero-phase FIR filtering (forward pass then reversed pass).

    The effective magnitude response is ``|H(f)|^2`` and the phase is
    exactly zero; edges are handled by odd reflection padding of three
    filter lengths, mirroring common practice.  ``method`` is the
    convolution path, as in :func:`apply_fir`.
    """
    x = _as_signal(x)
    taps = _check_taps(taps)
    pad = min(3 * taps.size, x.size - 1)
    padded = _odd_reflect_pad(x, pad)
    forward = apply_fir(taps, padded, method=method)
    backward = apply_fir(taps, forward[::-1], method=method)
    result = backward[::-1]
    # Each pass delays by (ntaps-1)/2 on average; for linear-phase taps the
    # two passes cancel exactly, so plain unpadding recovers alignment.
    return result[pad: pad + x.size] if pad else result


def filtfilt_fir_batch(taps: np.ndarray, x, lengths=None,
                       method: str = "auto") -> np.ndarray:
    """Zero-phase FIR filtering over a leading recording axis.

    The row-batched twin of :func:`filtfilt_fir`: per-row odd-reflect
    padding, a forward :func:`apply_fir_batch` pass, a per-row
    reversal gather, the backward pass, and un-padding.  Requires
    every row length to clear the uniform pad (``3 * taps``), so the
    per-row pad expression ``min(3 * ntaps, n - 1)`` collapses to the
    same constant for every row; shorter rows belong on the
    per-recording path.  Row ``i``'s first ``lengths[i]`` outputs are
    bit-identical to ``filtfilt_fir(taps, x[i, :lengths[i]],
    method)``; columns beyond are unspecified.
    """
    taps = _check_taps(taps)
    lengths = _check_lengths(x, lengths)
    x = np.asarray(x, dtype=float)
    n_rows, width = x.shape
    pad = 3 * taps.size
    if lengths.size and int(lengths.min()) <= pad:
        raise SignalError(
            f"batched filtfilt needs rows longer than {pad} samples; "
            "route shorter recordings through the per-recording path")
    padded = _odd_reflect_pad_rows(x, lengths, pad)
    padded_lengths = lengths + 2 * pad
    # Both passes run with patch_head=False: the returned outputs read
    # backward rows [pad, length + pad - 1], which depend on forward
    # rows [pad, length + pad + ntaps - 2] — with pad = 3 * ntaps,
    # neither pass's first ntaps - 1 columns are ever observed, so
    # their per-row boundary patches would be pure dead work.
    forward = apply_fir_batch(taps, padded, padded_lengths,
                              method=method, patch_head=False)
    rows = np.arange(n_rows)[:, None]
    rev_idx = np.maximum(padded_lengths[:, None] - 1
                         - np.arange(padded.shape[1])[None, :], 0)
    reversed_rows = forward[rows, rev_idx]
    # Zero the tails so the backward pass sees zero-stacked rows (the
    # gather clamps trailing indices to column 0).
    cols = np.arange(padded.shape[1])[None, :]
    reversed_rows[cols >= padded_lengths[:, None]] = 0.0
    backward = apply_fir_batch(taps, reversed_rows, padded_lengths,
                               method=method, patch_head=False)
    out_idx = np.maximum(padded_lengths[:, None] - 1 - pad
                         - np.arange(width)[None, :], 0)
    return backward[rows, out_idx]


def group_delay(taps: np.ndarray) -> float:
    """Group delay in samples of a linear-phase FIR: ``(ntaps - 1) / 2``."""
    taps = np.asarray(taps, dtype=float)
    if taps.ndim != 1 or taps.size == 0:
        raise ConfigurationError("taps must be a non-empty 1-D array")
    return (taps.size - 1) / 2.0


def frequency_response(taps: np.ndarray, freqs_hz: np.ndarray, fs: float):
    """Complex frequency response ``H(f)`` of an FIR at given frequencies.

    Returns ``(freqs_hz, H)``.  Direct evaluation of the DTFT; cost is
    O(ntaps * nfreqs), fine for the design sizes used here.
    """
    taps = np.asarray(taps, dtype=float)
    freqs_hz = np.atleast_1d(np.asarray(freqs_hz, dtype=float))
    if fs <= 0:
        raise ConfigurationError(f"sampling rate must be positive, got {fs}")
    omega = 2.0 * np.pi * freqs_hz / fs
    n = np.arange(taps.size)
    h = np.exp(-1j * np.outer(omega, n)) @ taps
    return freqs_hz, h
