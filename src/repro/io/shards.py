"""On-disk persistence of study shards.

A :class:`~repro.experiments.sharding.StudyShard` is the artifact a
machine ships after running its slice of the protocol; this module
round-trips it losslessly through a single compressed ``.npz`` (the
same container :class:`~repro.io.records.Recording` uses, no pickle).
Every float travels as float64 and every array verbatim, so a
save/load round trip changes no bits and the merged study stays
bit-identical to the serial run.

The layout is flat key/value: shard coordinates and protocol identity
under ``shard::``/``config::``, one ``device::{i}::field`` /
``thoracic::{i}::field`` group of scalars per analysis (``i`` is the
shard-local insertion index, preserved on load so a shard also
round-trips its own ordering) — and, since schema 2, **one** packed
``pack::blob`` holding every ensemble waveform, indexed per analysis
by ``(offset, length)`` spans.  The spans are the on-disk form of the
process backends' :class:`~repro.core.shm.ShmDescriptor` (built by the
same :func:`~repro.core.shm.pack_arrays` /
:func:`~repro.core.shm.buffer_view` pair with ``block=""``), so the
zero-copy array layout is identical whether an analysis crosses a
process boundary through shared memory or crosses machines inside a
shard file: loads resolve each waveform as a view into the blob, not a
per-key copy.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.core.shm import ShmDescriptor, buffer_view, pack_arrays
from repro.errors import ConfigurationError

# The experiment-layer types are imported lazily inside the functions:
# the io package sits below repro.core/repro.experiments in the import
# graph (recordings are used by the pipeline), so a module-level import
# here would be circular.

__all__ = ["save_shard", "load_shard"]

_SCHEMA = 2

#: Scalar fields of one analysis, in serialisation order.  The
#: ensemble waveform is the only array field; it lives in the packed
#: blob and each analysis stores its descriptor span.
_SCALAR_FIELDS = ("subject_id", "setup", "position", "frequency_hz",
                  "mean_z0_ohm", "mean_pep_s", "mean_lvet_s", "hr_bpm",
                  "n_beats", "n_failures")


def save_shard(shard, path) -> Path:
    """Serialise a shard to ``path`` (``.npz`` appended when missing);
    returns the real file location."""
    payload = {
        "schema": np.asarray(_SCHEMA),
        "shard::n_shards": np.asarray(shard.n_shards),
        "shard::shard_index": np.asarray(shard.shard_index),
        "shard::n_jobs_total": np.asarray(shard.n_jobs_total),
        "shard::subject_ids": np.asarray(shard.subject_ids, dtype=int),
        "config::duration_s": np.asarray(shard.config.duration_s),
        "config::fs": np.asarray(shard.config.fs),
        "config::frequencies_hz": np.asarray(shard.config.frequencies_hz,
                                             dtype=float),
        "config::positions": np.asarray(shard.config.positions,
                                        dtype=int),
    }
    waveforms = []
    for store in ("device", "thoracic"):
        for index, analysis in enumerate(getattr(shard, store).values()):
            prefix = f"{store}::{index:05d}::"
            for name in _SCALAR_FIELDS:
                payload[prefix + name] = np.asarray(
                    getattr(analysis, name))
            waveforms.append((prefix, np.asarray(analysis.ensemble_beat,
                                                 dtype=np.float64)))
    blob, descriptors = pack_arrays([w for _, w in waveforms])
    payload["pack::blob"] = blob
    for (prefix, _), descriptor in zip(waveforms, descriptors):
        payload[prefix + "ensemble_beat_span"] = np.asarray(
            [descriptor.offset, int(descriptor.shape[0])], dtype=np.int64)
    path = Path(path)
    np.savez_compressed(path, **payload)
    return path if str(path).endswith(".npz") else Path(f"{path}.npz")


def _load_analysis(data, prefix: str, blob):
    from repro.experiments.study import RecordingAnalysis

    fields = {}
    for name in _SCALAR_FIELDS:
        value = data[prefix + name].item()
        fields[name] = value
    offset, length = (int(v) for v in data[prefix + "ensemble_beat_span"])
    descriptor = ShmDescriptor(block="", shape=(length,),
                               dtype="<f8", offset=offset)
    return RecordingAnalysis(
        subject_id=int(fields["subject_id"]),
        setup=str(fields["setup"]),
        position=int(fields["position"]),
        frequency_hz=float(fields["frequency_hz"]),
        mean_z0_ohm=float(fields["mean_z0_ohm"]),
        ensemble_beat=buffer_view(blob, descriptor),
        mean_pep_s=float(fields["mean_pep_s"]),
        mean_lvet_s=float(fields["mean_lvet_s"]),
        hr_bpm=float(fields["hr_bpm"]),
        n_beats=int(fields["n_beats"]),
        n_failures=int(fields["n_failures"]),
    )


def load_shard(path):
    """Load a shard previously written by :func:`save_shard`; returns
    a :class:`~repro.experiments.sharding.StudyShard`.

    Ensemble waveforms come back as zero-copy views into the shard's
    packed blob — one decompressed buffer serves every analysis.
    """
    from repro.experiments.protocol import ProtocolConfig
    from repro.experiments.sharding import StudyShard

    path = Path(path)
    if not path.exists():
        alt = path.with_name(path.name + ".npz")
        if alt.exists():
            path = alt
        else:
            raise ConfigurationError(f"no shard file at {path}")
    with np.load(path, allow_pickle=False) as data:
        if int(data["schema"]) != _SCHEMA:
            raise ConfigurationError(
                f"unsupported shard schema {int(data['schema'])} "
                f"(this build reads schema {_SCHEMA})")
        config = ProtocolConfig(
            duration_s=float(data["config::duration_s"]),
            fs=float(data["config::fs"]),
            frequencies_hz=tuple(
                float(f) for f in data["config::frequencies_hz"]),
            positions=tuple(int(p) for p in data["config::positions"]),
        )
        shard = StudyShard(
            config=config,
            subject_ids=[int(s) for s in data["shard::subject_ids"]],
            n_shards=int(data["shard::n_shards"]),
            shard_index=int(data["shard::shard_index"]),
            n_jobs_total=int(data["shard::n_jobs_total"]),
        )
        blob = data["pack::blob"]
        groups: dict = {}
        for key in data.files:
            parts = key.split("::")
            if len(parts) == 3 and parts[0] in ("device", "thoracic"):
                groups.setdefault((parts[0], parts[1]), parts[0])
        for (store, index) in sorted(groups):
            prefix = f"{store}::{index}::"
            analysis = _load_analysis(data, prefix, blob)
            if store == "device":
                key = (analysis.subject_id, analysis.position,
                       analysis.frequency_hz)
            else:
                key = (analysis.subject_id, analysis.frequency_hz)
            getattr(shard, store)[key] = analysis
    return shard
