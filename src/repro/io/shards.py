"""On-disk persistence of study shards.

A :class:`~repro.experiments.sharding.StudyShard` is the artifact a
machine ships after running its slice of the protocol; this module
round-trips it losslessly through a single compressed ``.npz`` (the
same container :class:`~repro.io.records.Recording` uses, no pickle).
Every float travels as float64 and every array verbatim, so a
save/load round trip changes no bits and the merged study stays
bit-identical to the serial run.

The layout is flat key/value: shard coordinates and protocol identity
under ``shard::``/``config::``, then one ``device::{i}::field`` /
``thoracic::{i}::field`` group per analysis, where ``i`` is the
shard-local insertion index (preserved on load, so a shard also
round-trips its own ordering).
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.errors import ConfigurationError

# The experiment-layer types are imported lazily inside the functions:
# the io package sits below repro.core/repro.experiments in the import
# graph (recordings are used by the pipeline), so a module-level import
# here would be circular.

__all__ = ["save_shard", "load_shard"]

_SCHEMA = 1

#: Scalar fields of one analysis, in serialisation order.  The
#: ensemble waveform is the only array field and travels separately.
_SCALAR_FIELDS = ("subject_id", "setup", "position", "frequency_hz",
                  "mean_z0_ohm", "mean_pep_s", "mean_lvet_s", "hr_bpm",
                  "n_beats", "n_failures")


def save_shard(shard, path) -> Path:
    """Serialise a shard to ``path`` (``.npz`` appended when missing);
    returns the real file location."""
    payload = {
        "schema": np.asarray(_SCHEMA),
        "shard::n_shards": np.asarray(shard.n_shards),
        "shard::shard_index": np.asarray(shard.shard_index),
        "shard::n_jobs_total": np.asarray(shard.n_jobs_total),
        "shard::subject_ids": np.asarray(shard.subject_ids, dtype=int),
        "config::duration_s": np.asarray(shard.config.duration_s),
        "config::fs": np.asarray(shard.config.fs),
        "config::frequencies_hz": np.asarray(shard.config.frequencies_hz,
                                             dtype=float),
        "config::positions": np.asarray(shard.config.positions,
                                        dtype=int),
    }
    for store in ("device", "thoracic"):
        for index, analysis in enumerate(getattr(shard, store).values()):
            prefix = f"{store}::{index:05d}::"
            for name in _SCALAR_FIELDS:
                payload[prefix + name] = np.asarray(
                    getattr(analysis, name))
            payload[prefix + "ensemble_beat"] = analysis.ensemble_beat
    path = Path(path)
    np.savez_compressed(path, **payload)
    return path if str(path).endswith(".npz") else Path(f"{path}.npz")


def _load_analysis(data, prefix: str):
    from repro.experiments.study import RecordingAnalysis

    fields = {}
    for name in _SCALAR_FIELDS:
        value = data[prefix + name].item()
        fields[name] = value
    return RecordingAnalysis(
        subject_id=int(fields["subject_id"]),
        setup=str(fields["setup"]),
        position=int(fields["position"]),
        frequency_hz=float(fields["frequency_hz"]),
        mean_z0_ohm=float(fields["mean_z0_ohm"]),
        ensemble_beat=data[prefix + "ensemble_beat"],
        mean_pep_s=float(fields["mean_pep_s"]),
        mean_lvet_s=float(fields["mean_lvet_s"]),
        hr_bpm=float(fields["hr_bpm"]),
        n_beats=int(fields["n_beats"]),
        n_failures=int(fields["n_failures"]),
    )


def load_shard(path):
    """Load a shard previously written by :func:`save_shard`; returns
    a :class:`~repro.experiments.sharding.StudyShard`."""
    from repro.experiments.protocol import ProtocolConfig
    from repro.experiments.sharding import StudyShard

    path = Path(path)
    if not path.exists():
        alt = path.with_name(path.name + ".npz")
        if alt.exists():
            path = alt
        else:
            raise ConfigurationError(f"no shard file at {path}")
    with np.load(path, allow_pickle=False) as data:
        if int(data["schema"]) != _SCHEMA:
            raise ConfigurationError(
                f"unsupported shard schema {int(data['schema'])} "
                f"(this build reads schema {_SCHEMA})")
        config = ProtocolConfig(
            duration_s=float(data["config::duration_s"]),
            fs=float(data["config::fs"]),
            frequencies_hz=tuple(
                float(f) for f in data["config::frequencies_hz"]),
            positions=tuple(int(p) for p in data["config::positions"]),
        )
        shard = StudyShard(
            config=config,
            subject_ids=[int(s) for s in data["shard::subject_ids"]],
            n_shards=int(data["shard::n_shards"]),
            shard_index=int(data["shard::shard_index"]),
            n_jobs_total=int(data["shard::n_jobs_total"]),
        )
        groups: dict = {}
        for key in data.files:
            parts = key.split("::")
            if len(parts) == 3 and parts[0] in ("device", "thoracic"):
                groups.setdefault((parts[0], parts[1]), parts[0])
        for (store, index) in sorted(groups):
            prefix = f"{store}::{index}::"
            analysis = _load_analysis(data, prefix)
            if store == "device":
                key = (analysis.subject_id, analysis.position,
                       analysis.frequency_hz)
            else:
                key = (analysis.subject_id, analysis.frequency_hz)
            getattr(shard, store)[key] = analysis
    return shard
