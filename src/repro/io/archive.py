"""Cold-tier session archives: finalized sessions off the hot journal.

The storage lifecycle's last stage: once a session is complete and
manifested, its journal records exist only to make the session
replayable — and :func:`archive_sessions` moves that responsibility
into a compressed ``.npz`` archive so ``journal-gc`` can reclaim the
hot segments.  The container reuses the shard layout
(:mod:`repro.io.shards`): **one** ``pack::blob`` built by
:func:`~repro.core.shm.pack_arrays` holds every chunk array of every
archived session, per-chunk spans live in one JSON header per session,
and rehydration resolves each array as a
:func:`~repro.core.shm.buffer_view` into the blob — the same zero-copy
layout the process data plane and the shard files use.

Rehydration is bit-identical: arrays travel as raw float64 and chunk
coordinates as JSON scalars (both round-trip exactly, the journal
codec's own guarantee), so a rehydrated
:class:`~repro.ingest.chunks.RecordingChunk` stream replayed through
the stage graph reproduces the original session's results bit for bit
— pinned by the archive property test.

Archived sessions stay addressable through ``index.json`` in the
archive directory (session id → archive file + shape), updated
atomically after each archive file lands, so a crash between the two
leaves an unreferenced file, never a dangling index entry.  Damage —
truncated file, flipped byte, unknown schema, missing session — is
:class:`~repro.errors.ArchiveError`: the archive is typically the only
remaining copy, so rehydration refuses to guess.
"""

from __future__ import annotations

import json
import os
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional

import numpy as np

from repro.core.shm import ShmDescriptor, buffer_view, pack_arrays
from repro.errors import ArchiveError

# RecordingChunk is imported lazily (io sits below repro.ingest in the
# import graph — the journal-codec convention).

__all__ = ["ArchiveReport", "archive_sessions", "save_archive",
           "load_archive", "rehydrate_session", "read_archive_index"]

_SCHEMA = 1
_INDEX_NAME = "index.json"


@dataclass
class ArchiveReport:
    """What one :func:`archive_sessions` pass wrote."""

    directory: Path
    #: The archive file this pass created (``None`` when every
    #: candidate was already archived).
    file: Optional[Path] = None
    archived: tuple = ()
    #: Sessions skipped because the index already holds them.
    already_archived: tuple = ()
    #: ``{session_id: reason}`` for sessions that could not be
    #: archived (not complete, quarantined, unknown).
    skipped: dict = field(default_factory=dict)
    n_chunks: int = 0
    bytes_written: int = 0

    def to_dict(self) -> dict:
        """JSON-safe summary (the CLI's ``--json`` payload)."""
        return {
            "directory": str(self.directory),
            "file": None if self.file is None else self.file.name,
            "archived": list(self.archived),
            "already_archived": list(self.already_archived),
            "skipped": dict(self.skipped),
            "n_chunks": self.n_chunks,
            "bytes_written": self.bytes_written,
        }


def _chunk_header(chunk, descriptors) -> dict:
    """JSON-safe coordinates of one chunk plus its array spans.

    ``descriptors`` maps array name → packed descriptor, in the pack
    order produced by :func:`save_archive`.
    """
    from repro.io.journal_records import _meta_scalar

    def spans(store):
        return [[name, int(desc.offset), int(desc.shape[0])]
                for name, desc in descriptors[store].items()]

    return {
        "seq": int(chunk.seq),
        "fs": float(chunk.fs),
        "start_sample": int(chunk.start_sample),
        "is_last": bool(chunk.is_last),
        "arrival_s": float(chunk.arrival_s),
        "signals": spans("signals"),
        "annotations": spans("annotations"),
        "meta": {key: _meta_scalar(value)
                 for key, value in chunk.meta.items()},
    }


def save_archive(sessions: dict, path) -> Path:
    """Write one archive file holding ``{session_id: [chunks]}``.

    Chunks must be in sequence order per session (the journal scan
    yields them that way).  Returns the real file location (``.npz``
    appended when missing).
    """
    order = []              # (sid, chunk, {"signals": {...}, ...})
    arrays = []
    for sid, chunks in sessions.items():
        for chunk in chunks:
            slots: dict = {"signals": {}, "annotations": {}}
            for store in ("signals", "annotations"):
                for name, data in getattr(chunk, store).items():
                    arrays.append(np.ascontiguousarray(
                        np.asarray(data, dtype="<f8")))
                    slots[store][name] = len(arrays) - 1
            order.append((sid, chunk, slots))
    blob, descriptors = pack_arrays(arrays)
    payload = {
        "schema": np.asarray(_SCHEMA),
        "pack::blob": blob,
        "pack::crc32": np.asarray(zlib.crc32(blob.tobytes())
                                  & 0xFFFFFFFF, dtype=np.uint32),
        "sessions": np.asarray(json.dumps(list(sessions))),
    }
    grouped: dict = {sid: [] for sid in sessions}
    for sid, chunk, slots in order:
        resolved = {store: {name: descriptors[i]
                            for name, i in slots[store].items()}
                    for store in ("signals", "annotations")}
        grouped[sid].append(_chunk_header(chunk, resolved))
    for position, (sid, headers) in enumerate(grouped.items()):
        payload[f"session::{position:05d}"] = np.asarray(json.dumps(
            {"session_id": sid, "chunks": headers}))
    path = Path(path)
    np.savez_compressed(path, **payload)
    return path if str(path).endswith(".npz") else Path(f"{path}.npz")


def load_archive(path) -> dict:
    """Read an archive file back into ``{session_id: [chunks]}``.

    Every failure mode — missing file, truncated or bit-flipped
    container, schema or checksum mismatch — raises
    :class:`~repro.errors.ArchiveError`; a partially readable archive
    is never silently partially returned.
    """
    from repro.ingest.chunks import RecordingChunk

    path = Path(path)
    if not path.exists():
        alt = path.with_name(path.name + ".npz")
        if alt.exists():
            path = alt
        else:
            raise ArchiveError(f"no archive file at {path}")
    try:
        with np.load(path, allow_pickle=False) as data:
            if int(data["schema"]) != _SCHEMA:
                raise ArchiveError(
                    f"unsupported archive schema {int(data['schema'])} "
                    f"(this build reads schema {_SCHEMA})")
            blob = data["pack::blob"]
            if (zlib.crc32(blob.tobytes()) & 0xFFFFFFFF) != int(
                    data["pack::crc32"]):
                raise ArchiveError(
                    f"archive blob failed its checksum in {path.name}")
            session_ids = json.loads(str(data["sessions"]))
            sessions: dict = {}
            for position, sid in enumerate(session_ids):
                record = json.loads(
                    str(data[f"session::{position:05d}"]))
                if record["session_id"] != sid:
                    raise ArchiveError(
                        f"archive index/session mismatch in {path.name}")
                sessions[sid] = [
                    _rehydrate_chunk(RecordingChunk, sid, header, blob)
                    for header in record["chunks"]]
            return sessions
    except ArchiveError:
        raise
    except Exception as exc:       # zip/zlib/json/key damage
        raise ArchiveError(
            f"unreadable archive {path.name}: {exc}") from exc


def _rehydrate_chunk(chunk_type, sid: str, header: dict, blob):
    def views(spans):
        out = {}
        for name, offset, size in spans:
            descriptor = ShmDescriptor(block="", shape=(int(size),),
                                       dtype="<f8", offset=int(offset))
            out[str(name)] = buffer_view(blob, descriptor)
        return out

    return chunk_type(
        session_id=sid,
        seq=int(header["seq"]),
        fs=float(header["fs"]),
        signals=views(header["signals"]),
        start_sample=int(header["start_sample"]),
        is_last=bool(header["is_last"]),
        arrival_s=float(header["arrival_s"]),
        annotations=views(header["annotations"]),
        meta=dict(header["meta"]),
    )


def read_archive_index(directory) -> dict:
    """The archive directory's ``{session_id: entry}`` index (empty
    when no archive was written yet)."""
    path = Path(directory) / _INDEX_NAME
    if not path.exists():
        return {}
    try:
        return dict(json.loads(path.read_text()))
    except Exception as exc:
        raise ArchiveError(
            f"unreadable archive index {path}: {exc}") from exc


def _write_index(directory: Path, index: dict) -> None:
    path = directory / _INDEX_NAME
    tmp = path.with_suffix(".tmp")
    tmp.write_text(json.dumps(index, indent=2, sort_keys=True) + "\n")
    os.replace(tmp, path)


def archive_sessions(journal_directory, archive_directory,
                     session_ids=None) -> ArchiveReport:
    """Archive finalized journal sessions into the cold tier.

    Candidates are the journal's complete, manifested sessions —
    ``session_ids`` narrows the set (requesting a session the journal
    cannot fully reassemble is reported in ``skipped``, not an error,
    so one bad id never blocks a fleet sweep).  Sessions the index
    already holds are skipped: archiving is idempotent.  The archive
    file is written before the index references it, so a crash leaves
    at worst an unreferenced file.

    The journal is *not* modified — run ``journal-gc`` afterwards to
    reclaim the archived sessions' segments.
    """
    from repro.ingest.journal import scan_journal

    archive_directory = Path(archive_directory)
    archive_directory.mkdir(parents=True, exist_ok=True)
    scan = scan_journal(journal_directory)
    index = read_archive_index(archive_directory)
    report = ArchiveReport(directory=archive_directory)

    candidates = {sid: chunks for sid, chunks in scan.complete.items()
                  if sid in scan.manifests}
    if session_ids is None:
        wanted = dict(candidates)
    else:
        wanted = {}
        for sid in session_ids:
            if sid in candidates:
                wanted[sid] = candidates[sid]
            elif sid in scan.damaged:
                report.skipped[sid] = (
                    f"quarantined: {scan.damaged[sid]}")
            elif sid in scan.open:
                report.skipped[sid] = "still open (no trailer)"
            elif sid in scan.collected:
                report.skipped[sid] = ("journal records already "
                                       "collected by journal-gc")
            else:
                report.skipped[sid] = "unknown to the journal"
    fresh = {sid: chunks for sid, chunks in wanted.items()
             if sid not in index}
    report.already_archived = tuple(sid for sid in wanted
                                    if sid in index)
    if not fresh:
        return report

    position = 0
    while (archive_directory / f"archive-{position:05d}.npz").exists():
        position += 1
    file = save_archive(
        fresh, archive_directory / f"archive-{position:05d}.npz")
    for sid, chunks in fresh.items():
        trailer = chunks[-1]
        index[sid] = {
            "file": file.name,
            "n_chunks": len(chunks),
            "n_samples": int(trailer.start_sample + trailer.n_samples),
            "fs": float(trailer.fs),
        }
    _write_index(archive_directory, index)
    report.file = file
    report.archived = tuple(fresh)
    report.n_chunks = sum(len(chunks) for chunks in fresh.values())
    report.bytes_written = file.stat().st_size
    return report


def rehydrate_session(archive_directory, session_id: str) -> list:
    """The archived chunk stream of one session, bit-identical to the
    journal records it was archived from.

    Raises :class:`~repro.errors.ArchiveError` when the index does not
    know the session or its archive file fails verification.
    """
    archive_directory = Path(archive_directory)
    index = read_archive_index(archive_directory)
    if session_id not in index:
        raise ArchiveError(
            f"session {session_id!r} is not in the archive index "
            f"at {archive_directory}")
    entry = index[session_id]
    sessions = load_archive(archive_directory / entry["file"])
    if session_id not in sessions:
        raise ArchiveError(
            f"index points session {session_id!r} at "
            f"{entry['file']}, which does not hold it")
    chunks = sessions[session_id]
    if len(chunks) != int(entry["n_chunks"]):
        raise ArchiveError(
            f"session {session_id!r}: archive holds {len(chunks)} "
            f"chunks, index records {entry['n_chunks']}")
    return chunks
