"""Recording containers and persistence."""

from repro.io.records import Recording

__all__ = ["Recording"]
