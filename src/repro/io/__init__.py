"""Recording containers, shard artifacts and persistence."""

from repro.io.records import Recording
from repro.io.shards import load_shard, save_shard

__all__ = ["Recording", "save_shard", "load_shard"]
