"""Recording containers, shard artifacts, journal records and
persistence."""

from repro.io.records import Recording
from repro.io.shards import load_shard, save_shard
from repro.io.journal_records import (
    RecordEntry,
    SegmentScan,
    decode_chunk,
    encode_chunk,
    frame_record,
    scan_segment,
)

__all__ = ["Recording", "save_shard", "load_shard",
           "encode_chunk", "decode_chunk", "frame_record",
           "RecordEntry", "SegmentScan", "scan_segment"]
