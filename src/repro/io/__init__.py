"""Recording containers, shard artifacts, journal records, cold-tier
session archives and persistence."""

from repro.io.archive import (
    ArchiveReport,
    archive_sessions,
    load_archive,
    read_archive_index,
    rehydrate_session,
    save_archive,
)
from repro.io.records import Recording
from repro.io.shards import load_shard, save_shard
from repro.io.journal_records import (
    RecordEntry,
    SegmentScan,
    decode_chunk,
    decode_chunk_into,
    encode_chunk,
    encode_chunk_iov,
    frame_nbytes,
    frame_record,
    frame_record_iov,
    payload_crc,
    scan_segment,
)

__all__ = ["Recording", "save_shard", "load_shard",
           "encode_chunk", "encode_chunk_iov", "decode_chunk",
           "decode_chunk_into", "frame_record", "frame_record_iov",
           "payload_crc", "frame_nbytes",
           "RecordEntry", "SegmentScan", "scan_segment",
           "ArchiveReport", "archive_sessions", "save_archive",
           "load_archive", "rehydrate_session", "read_archive_index"]
