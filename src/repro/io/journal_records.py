"""CRC-framed on-disk records for the durable-ingest chunk journal.

One journal segment is a flat append-only file of framed records, each
holding exactly one :class:`~repro.ingest.chunks.RecordingChunk`:

```
record  := MAGIC(4) | payload_len u32 | crc32(payload) u32 | payload
payload := header_len u32 | header JSON (utf-8) | float64 arrays
```

The JSON header carries the chunk coordinates (session id, seq, fs,
start_sample, is_last, arrival_s), the name and length of every signal
and annotation array, and the scalar metadata; the arrays follow
back-to-back as raw little-endian float64 — so a decode reproduces the
encoded chunk bit-for-bit (float64 bytes round-trip exactly, and JSON
round-trips Python scalars exactly).

The framing is what makes crash recovery tractable:

* a **torn tail** (the process died mid-``write``) shows up as a frame
  or payload shorter than its declared length — recoverable by
  truncating to the last good record;
* a **flipped byte** anywhere in the payload or the stored CRC shows
  up as a CRC mismatch, but the frame length stays trustworthy, so the
  scan steps over the damaged record and keeps reading the segment;
* only a corrupted *frame header* (bad magic) ends a scan early — at
  that point the byte stream has lost its framing entirely.

:func:`scan_segment` implements exactly that taxonomy and never
raises on damaged input; callers decide what a damaged record means
(the recovery layer quarantines the affected session).

Two codec paths share the byte format:

* :func:`encode_chunk` materializes the payload as one ``bytes`` — the
  reference path, paying an ``arr.tobytes()`` copy per array plus a
  join per payload and another per frame;
* :func:`encode_chunk_iov` returns the *same payload* as an iovec of
  buffers (header bytes + raw little-endian float64 views over the
  chunk's arrays) and :func:`frame_record_iov` frames it with the CRC
  chained incrementally over the views (``zlib.crc32`` carries state),
  so a journal append materializes **zero** intermediate bytes — the
  frame goes to disk through one ``os.writev``.  The concatenation of
  the iovec is bit-identical to the reference frame, pinned by test.

On the read side :func:`decode_chunk_into` rehydrates a payload's
arrays straight into an arena (one write into the slab, no per-array
``.copy()``), which is how recovery replays stay on the zero-copy
plane.  Both paths credit :mod:`repro.ingest.stats` so "zero copies"
is an asserted number, not a comment.
"""

from __future__ import annotations

import json
import struct
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Optional

import numpy as np

from repro.errors import JournalError

# RecordingChunk is imported lazily inside the decoders: the io package
# sits below repro.ingest in the import graph (chunks are built from
# repro.io.records), so a module-level import here would be circular —
# the same convention repro.io.shards uses for the experiment types.

__all__ = ["MAGIC", "encode_chunk", "encode_chunk_iov", "decode_chunk",
           "decode_chunk_into", "frame_record", "frame_record_iov",
           "payload_crc", "frame_nbytes", "RecordEntry", "SegmentScan",
           "scan_segment"]

#: Frame marker; a scan that does not find it where a record should
#: start has lost the framing and must stop.
MAGIC = b"ICGJ"

_FRAME = len(MAGIC) + 4 + 4     # magic | payload_len | crc32

#: The wire dtype.  Arrays already in it (arena views always are)
#: skip the ``ascontiguousarray`` round-trip on the encode hot path.
_LE_F8 = np.dtype("<f8")

_U32 = struct.Struct("<I")


def _credit(**deltas) -> None:
    """Credit the ingest counters (lazy import: repro.io sits below
    repro.ingest in the import graph, same convention as the chunk
    types themselves)."""
    from repro.ingest.stats import ingest_stats
    ingest_stats().add(**deltas)


def _as_buffer(part):
    """A byte-granular buffer over one iovec part (no copy)."""
    if isinstance(part, (bytes, bytearray)):
        return part
    view = part if isinstance(part, memoryview) else memoryview(part)
    return view if view.format == "B" else view.cast("B")


def _part_nbytes(part) -> int:
    """Byte length of one iovec part."""
    if isinstance(part, (bytes, bytearray)):
        return len(part)
    if isinstance(part, (np.ndarray, memoryview)):
        return part.nbytes
    return memoryview(part).nbytes


def _meta_scalar(value):
    """A JSON-safe view of one Recording meta scalar (numpy scalars
    become the equivalent Python number; equality is preserved)."""
    if isinstance(value, (bool, np.bool_)):
        return bool(value)
    if isinstance(value, (int, np.integer)):
        return int(value)
    if isinstance(value, (float, np.floating)):
        return float(value)
    return str(value)


def _payload_parts(chunk):
    """The payload of one chunk as ``(parts, payload_len, cast_bytes)``.

    ``parts`` is the header blob (``bytes``) followed by the chunk's
    arrays as contiguous little-endian float64 ``ndarray``s — still
    zero-copy views whenever the chunk's arrays already are (arena
    slices are); ``cast_bytes`` counts the bytes a dtype/contiguity
    conversion had to materialize.  Both encoders join/iterate these
    same parts, which is what makes them bit-identical by
    construction.
    """
    cast_bytes = 0
    arrays = []
    sized = {"signals": [], "annotations": []}
    for key, store in (("signals", chunk.signals),
                       ("annotations", chunk.annotations)):
        for name, data in store.items():
            if (isinstance(data, np.ndarray) and data.dtype == _LE_F8
                    and data.flags.c_contiguous):
                arr = data            # arena views take this path
            else:
                src = np.asarray(data)
                arr = np.ascontiguousarray(src, dtype="<f8")
                if arr is not src:
                    cast_bytes += arr.nbytes
            sized[key].append([name, int(arr.size)])
            arrays.append(arr)
    header = {
        "session_id": chunk.session_id,
        "seq": int(chunk.seq),
        "fs": float(chunk.fs),
        "start_sample": int(chunk.start_sample),
        "is_last": bool(chunk.is_last),
        "arrival_s": float(chunk.arrival_s),
        "signals": sized["signals"],
        "annotations": sized["annotations"],
        "meta": {key: _meta_scalar(value)
                 for key, value in chunk.meta.items()},
    }
    head = json.dumps(header, separators=(",", ":")).encode("utf-8")
    parts = [_U32.pack(len(head)) + head]
    parts.extend(arrays)
    payload_len = len(parts[0]) + sum(arr.nbytes for arr in arrays)
    return parts, payload_len, cast_bytes


def encode_chunk(chunk) -> bytes:
    """Serialise one chunk to a record *payload* (no frame).

    The reference (object-mode) codec: every array is materialized via
    ``tobytes`` and the parts joined — copies the iovec path avoids
    and the ``bytes_copied`` counter makes visible.
    """
    parts, payload_len, cast_bytes = _payload_parts(chunk)
    payload = b"".join(p if isinstance(p, bytes) else p.tobytes()
                       for p in parts)
    # casts + per-array tobytes + the join itself
    _credit(bytes_copied=cast_bytes
            + (payload_len - len(parts[0])) + payload_len)
    return payload


def encode_chunk_iov(chunk) -> list:
    """Serialise one chunk to a payload *iovec* (no frame, no copies).

    Returns a list of buffers — header ``bytes`` followed by raw
    float64 views over the chunk's arrays — whose concatenation equals
    :func:`encode_chunk`'s payload bit-for-bit.  Nothing is
    materialized unless an array needed a dtype/contiguity cast (the
    only case that credits ``bytes_copied``).
    """
    parts, _, cast_bytes = _payload_parts(chunk)
    if cast_bytes:
        _credit(bytes_copied=cast_bytes)
    return parts


def _decode_arrays(payload, header, offset, make):
    signals, annotations = {}, {}
    for store, names in (
            (signals, header["signals"]),
            (annotations, header["annotations"])):
        for name, size in names:
            nbytes = int(size) * 8
            block = payload[offset:offset + nbytes]
            if len(block) != nbytes:
                raise JournalError("record payload shorter than its "
                                   "declared arrays")
            store[name] = make(block)
            offset += nbytes
    return signals, annotations


def _chunk_from_header(header, signals, annotations):
    from repro.ingest.chunks import RecordingChunk

    return RecordingChunk(
        session_id=header["session_id"],
        seq=int(header["seq"]),
        fs=float(header["fs"]),
        signals=signals,
        start_sample=int(header["start_sample"]),
        is_last=bool(header["is_last"]),
        arrival_s=float(header["arrival_s"]),
        annotations=annotations,
        meta=dict(header["meta"]),
    )


def decode_chunk(payload):
    """Rebuild the :class:`~repro.ingest.chunks.RecordingChunk` a
    payload encodes (raises on malformed input — callers gate on the
    CRC first).  Every array is a private copy."""
    header, offset = _decode_header(payload)
    signals, annotations = _decode_arrays(
        payload, header, offset,
        lambda block: np.frombuffer(block, dtype="<f8").copy())
    copied = sum(a.nbytes for a in signals.values())
    copied += sum(a.nbytes for a in annotations.values())
    _credit(bytes_copied=copied)
    return _chunk_from_header(header, signals, annotations)


def decode_chunk_into(payload, arena):
    """Rebuild a chunk with its arrays rehydrated into ``arena``.

    ``arena`` is a :class:`~repro.ingest.chunks.ChunkArenaRing` (its
    ``put(array, session_id)`` / ``view(descriptor)`` pair; a plain
    :class:`~repro.core.shm.ShmArena` works too) — each array is
    written once into a shared-memory slab and returned as a read-only
    zero-copy view, so a recovery replay stays on the same zero-copy
    plane live ingest runs on.  Bit-identical to :func:`decode_chunk`
    (float64 bytes land verbatim), pinned by the recovery tests.
    """
    header, offset = _decode_header(payload)
    session_id = str(header["session_id"])

    def rehydrate(block):
        source = np.frombuffer(block, dtype="<f8")
        try:
            descriptor = arena.put(source, session_id)
        except TypeError:     # a bare ShmArena: no session routing
            descriptor = arena.put(source)
        return arena.view(descriptor)

    signals, annotations = _decode_arrays(payload, header, offset,
                                          rehydrate)
    published = sum(a.nbytes for a in signals.values())
    published += sum(a.nbytes for a in annotations.values())
    _credit(rehydrated_chunks=1, bytes_published=published)
    return _chunk_from_header(header, signals, annotations)


def _decode_header(payload):
    if len(payload) < 4:
        raise JournalError("record payload too short for a header")
    head_len = int(np.frombuffer(payload[:4], dtype="<u4")[0])
    head = payload[4:4 + head_len]
    if len(head) != head_len:
        raise JournalError("record payload shorter than its header")
    return json.loads(bytes(head).decode("utf-8")), 4 + head_len


def payload_crc(parts) -> int:
    """CRC32 of a payload iovec, chained incrementally over the parts
    (``zlib.crc32`` carries state) — equal to the CRC of the joined
    payload without ever joining it."""
    crc = 0
    for part in parts:
        crc = zlib.crc32(part, crc)
    return crc & 0xFFFFFFFF


def frame_nbytes(parts) -> int:
    """On-disk frame size of a payload iovec (accounting for bounded
    write buffers — nothing is materialized)."""
    return _FRAME + sum(_part_nbytes(p) for p in parts)


def frame_record_iov(parts) -> list:
    """Frame a payload iovec without materializing it.

    Returns a list of buffers — the 12-byte frame header followed by
    the payload parts — whose concatenation is bit-identical to
    :func:`frame_record` of the joined payload; the journal hands it
    straight to ``os.writev``.
    """
    payload_len = sum(_part_nbytes(p) for p in parts)
    header = (MAGIC + _U32.pack(payload_len)
              + _U32.pack(payload_crc(parts)))
    return [header, *parts]


def frame_record(payload) -> bytes:
    """Wrap a payload in the on-disk frame (magic, length, CRC).

    Accepts the joined payload ``bytes`` or a payload iovec (what
    :func:`encode_chunk_iov` returns); either way the frame is built
    with a *single* join and an incrementally chained CRC — the strict
    append path stopped paying the historical payload-then-frame
    double materialization.
    """
    parts = ([payload]
             if isinstance(payload, (bytes, bytearray, memoryview))
             else list(payload))
    frame = b"".join(_as_buffer(p) for p in frame_record_iov(parts))
    _credit(bytes_copied=len(frame))
    return frame


@dataclass(frozen=True)
class RecordEntry:
    """One scanned record: its location plus either the decoded chunk
    or, for a damaged record, the best-effort identity and reason."""

    offset: int                       #: frame start within the segment
    length: int                       #: whole frame length, bytes
    chunk: Optional[RecordingChunk]   #: ``None`` when damaged
    error: Optional[str] = None       #: damage reason when damaged
    #: Best-effort identity of a damaged record (its header usually
    #: survives a payload/CRC byte flip); ``None`` when unreadable.
    session_id: Optional[str] = None
    seq: Optional[int] = None


@dataclass(frozen=True)
class SegmentScan:
    """Everything one segment file yielded.

    ``torn_offset`` is set when the file ends inside a record — the
    signature of a crash mid-append; bytes from that offset on are not
    a record.  ``lost_framing_offset`` is set when a frame header was
    unreadable (bad magic): nothing after it could be interpreted.
    """

    path: Path
    entries: tuple
    torn_offset: Optional[int] = None
    lost_framing_offset: Optional[int] = None

    @property
    def clean(self) -> bool:
        """No torn tail, no lost framing, no damaged records."""
        return (self.torn_offset is None
                and self.lost_framing_offset is None
                and all(e.error is None for e in self.entries))


def scan_segment(path, decoder=None) -> SegmentScan:
    """Read every interpretable record of one segment file.

    Never raises on damaged content — damage is classified per the
    module taxonomy and reported in the returned :class:`SegmentScan`.
    ``decoder`` replaces :func:`decode_chunk` for CRC-clean payloads
    (recovery passes a :func:`decode_chunk_into` closure to rehydrate
    straight into an arena); payloads reach it as memoryviews over the
    segment bytes.
    """
    decoder = decode_chunk if decoder is None else decoder
    path = Path(path)
    data = path.read_bytes()
    view = memoryview(data)
    entries = []
    offset = 0
    torn = None
    lost = None
    while offset < len(data):
        frame = data[offset:offset + _FRAME]
        if len(frame) < _FRAME:
            torn = offset
            break
        if frame[:len(MAGIC)] != MAGIC:
            lost = offset
            break
        payload_len = int(np.frombuffer(
            frame[len(MAGIC):len(MAGIC) + 4], dtype="<u4")[0])
        crc_stored = int(np.frombuffer(
            frame[len(MAGIC) + 4:], dtype="<u4")[0])
        payload = view[offset + _FRAME:offset + _FRAME + payload_len]
        if len(payload) < payload_len:
            torn = offset
            break
        length = _FRAME + payload_len
        if (zlib.crc32(payload) & 0xFFFFFFFF) != crc_stored:
            sid, seq = _best_effort_identity(payload)
            entries.append(RecordEntry(
                offset=offset, length=length, chunk=None,
                error="crc mismatch", session_id=sid, seq=seq))
        else:
            try:
                chunk = decoder(payload)
            except Exception as exc:     # malformed despite good CRC
                sid, seq = _best_effort_identity(payload)
                entries.append(RecordEntry(
                    offset=offset, length=length, chunk=None,
                    error=f"undecodable record: {exc}",
                    session_id=sid, seq=seq))
            else:
                entries.append(RecordEntry(
                    offset=offset, length=length, chunk=chunk,
                    session_id=chunk.session_id, seq=chunk.seq))
        offset += length
    return SegmentScan(path=path, entries=tuple(entries),
                       torn_offset=torn, lost_framing_offset=lost)


def _best_effort_identity(payload):
    """(session_id, seq) of a damaged record when its JSON header
    still parses — a CRC-field or array-byte flip leaves it intact —
    else ``(None, None)``."""
    try:
        header, _ = _decode_header(payload)
        return str(header["session_id"]), int(header["seq"])
    except Exception:
        return None, None
