"""CRC-framed on-disk records for the durable-ingest chunk journal.

One journal segment is a flat append-only file of framed records, each
holding exactly one :class:`~repro.ingest.chunks.RecordingChunk`:

```
record  := MAGIC(4) | payload_len u32 | crc32(payload) u32 | payload
payload := header_len u32 | header JSON (utf-8) | float64 arrays
```

The JSON header carries the chunk coordinates (session id, seq, fs,
start_sample, is_last, arrival_s), the name and length of every signal
and annotation array, and the scalar metadata; the arrays follow
back-to-back as raw little-endian float64 — so a decode reproduces the
encoded chunk bit-for-bit (float64 bytes round-trip exactly, and JSON
round-trips Python scalars exactly).

The framing is what makes crash recovery tractable:

* a **torn tail** (the process died mid-``write``) shows up as a frame
  or payload shorter than its declared length — recoverable by
  truncating to the last good record;
* a **flipped byte** anywhere in the payload or the stored CRC shows
  up as a CRC mismatch, but the frame length stays trustworthy, so the
  scan steps over the damaged record and keeps reading the segment;
* only a corrupted *frame header* (bad magic) ends a scan early — at
  that point the byte stream has lost its framing entirely.

:func:`scan_segment` implements exactly that taxonomy and never
raises on damaged input; callers decide what a damaged record means
(the recovery layer quarantines the affected session).
"""

from __future__ import annotations

import json
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Optional

import numpy as np

from repro.errors import JournalError

# RecordingChunk is imported lazily inside decode_chunk: the io package
# sits below repro.ingest in the import graph (chunks are built from
# repro.io.records), so a module-level import here would be circular —
# the same convention repro.io.shards uses for the experiment types.

__all__ = ["MAGIC", "encode_chunk", "decode_chunk", "frame_record",
           "RecordEntry", "SegmentScan", "scan_segment"]

#: Frame marker; a scan that does not find it where a record should
#: start has lost the framing and must stop.
MAGIC = b"ICGJ"

_FRAME = len(MAGIC) + 4 + 4     # magic | payload_len | crc32


def _meta_scalar(value):
    """A JSON-safe view of one Recording meta scalar (numpy scalars
    become the equivalent Python number; equality is preserved)."""
    if isinstance(value, (bool, np.bool_)):
        return bool(value)
    if isinstance(value, (int, np.integer)):
        return int(value)
    if isinstance(value, (float, np.floating)):
        return float(value)
    return str(value)


def encode_chunk(chunk) -> bytes:
    """Serialise one chunk to a record *payload* (no frame)."""
    signals = {name: np.ascontiguousarray(np.asarray(data, dtype="<f8"))
               for name, data in chunk.signals.items()}
    annotations = {
        name: np.ascontiguousarray(np.asarray(data, dtype="<f8"))
        for name, data in chunk.annotations.items()
    }
    header = {
        "session_id": chunk.session_id,
        "seq": int(chunk.seq),
        "fs": float(chunk.fs),
        "start_sample": int(chunk.start_sample),
        "is_last": bool(chunk.is_last),
        "arrival_s": float(chunk.arrival_s),
        "signals": [[name, int(arr.size)]
                    for name, arr in signals.items()],
        "annotations": [[name, int(arr.size)]
                        for name, arr in annotations.items()],
        "meta": {key: _meta_scalar(value)
                 for key, value in chunk.meta.items()},
    }
    head = json.dumps(header, separators=(",", ":")).encode("utf-8")
    parts = [np.uint32(len(head)).tobytes(), head]
    parts.extend(arr.tobytes() for arr in signals.values())
    parts.extend(arr.tobytes() for arr in annotations.values())
    return b"".join(parts)


def decode_chunk(payload: bytes):
    """Rebuild the :class:`~repro.ingest.chunks.RecordingChunk` a
    payload encodes (raises on malformed input — callers gate on the
    CRC first)."""
    from repro.ingest.chunks import RecordingChunk

    header, offset = _decode_header(payload)
    signals, annotations = {}, {}
    for store, names in (
            (signals, header["signals"]),
            (annotations, header["annotations"])):
        for name, size in names:
            nbytes = int(size) * 8
            block = payload[offset:offset + nbytes]
            if len(block) != nbytes:
                raise JournalError("record payload shorter than its "
                                   "declared arrays")
            store[name] = np.frombuffer(block, dtype="<f8").copy()
            offset += nbytes
    return RecordingChunk(
        session_id=header["session_id"],
        seq=int(header["seq"]),
        fs=float(header["fs"]),
        signals=signals,
        start_sample=int(header["start_sample"]),
        is_last=bool(header["is_last"]),
        arrival_s=float(header["arrival_s"]),
        annotations=annotations,
        meta=dict(header["meta"]),
    )


def _decode_header(payload: bytes):
    if len(payload) < 4:
        raise JournalError("record payload too short for a header")
    head_len = int(np.frombuffer(payload[:4], dtype="<u4")[0])
    head = payload[4:4 + head_len]
    if len(head) != head_len:
        raise JournalError("record payload shorter than its header")
    return json.loads(head.decode("utf-8")), 4 + head_len


def frame_record(payload: bytes) -> bytes:
    """Wrap a payload in the on-disk frame (magic, length, CRC)."""
    return b"".join([
        MAGIC,
        np.uint32(len(payload)).tobytes(),
        np.uint32(zlib.crc32(payload) & 0xFFFFFFFF).tobytes(),
        payload,
    ])


@dataclass(frozen=True)
class RecordEntry:
    """One scanned record: its location plus either the decoded chunk
    or, for a damaged record, the best-effort identity and reason."""

    offset: int                       #: frame start within the segment
    length: int                       #: whole frame length, bytes
    chunk: Optional[RecordingChunk]   #: ``None`` when damaged
    error: Optional[str] = None       #: damage reason when damaged
    #: Best-effort identity of a damaged record (its header usually
    #: survives a payload/CRC byte flip); ``None`` when unreadable.
    session_id: Optional[str] = None
    seq: Optional[int] = None


@dataclass(frozen=True)
class SegmentScan:
    """Everything one segment file yielded.

    ``torn_offset`` is set when the file ends inside a record — the
    signature of a crash mid-append; bytes from that offset on are not
    a record.  ``lost_framing_offset`` is set when a frame header was
    unreadable (bad magic): nothing after it could be interpreted.
    """

    path: Path
    entries: tuple
    torn_offset: Optional[int] = None
    lost_framing_offset: Optional[int] = None

    @property
    def clean(self) -> bool:
        """No torn tail, no lost framing, no damaged records."""
        return (self.torn_offset is None
                and self.lost_framing_offset is None
                and all(e.error is None for e in self.entries))


def scan_segment(path) -> SegmentScan:
    """Read every interpretable record of one segment file.

    Never raises on damaged content — damage is classified per the
    module taxonomy and reported in the returned :class:`SegmentScan`.
    """
    path = Path(path)
    data = path.read_bytes()
    entries = []
    offset = 0
    torn = None
    lost = None
    while offset < len(data):
        frame = data[offset:offset + _FRAME]
        if len(frame) < _FRAME:
            torn = offset
            break
        if frame[:len(MAGIC)] != MAGIC:
            lost = offset
            break
        payload_len = int(np.frombuffer(
            frame[len(MAGIC):len(MAGIC) + 4], dtype="<u4")[0])
        crc_stored = int(np.frombuffer(
            frame[len(MAGIC) + 4:], dtype="<u4")[0])
        payload = data[offset + _FRAME:offset + _FRAME + payload_len]
        if len(payload) < payload_len:
            torn = offset
            break
        length = _FRAME + payload_len
        if (zlib.crc32(payload) & 0xFFFFFFFF) != crc_stored:
            sid, seq = _best_effort_identity(payload)
            entries.append(RecordEntry(
                offset=offset, length=length, chunk=None,
                error="crc mismatch", session_id=sid, seq=seq))
        else:
            try:
                chunk = decode_chunk(payload)
            except Exception as exc:     # malformed despite good CRC
                sid, seq = _best_effort_identity(payload)
                entries.append(RecordEntry(
                    offset=offset, length=length, chunk=None,
                    error=f"undecodable record: {exc}",
                    session_id=sid, seq=seq))
            else:
                entries.append(RecordEntry(
                    offset=offset, length=length, chunk=chunk,
                    session_id=chunk.session_id, seq=chunk.seq))
        offset += length
    return SegmentScan(path=path, entries=tuple(entries),
                       torn_offset=torn, lost_framing_offset=lost)


def _best_effort_identity(payload: bytes):
    """(session_id, seq) of a damaged record when its JSON header
    still parses — a CRC-field or array-byte flip leaves it intact —
    else ``(None, None)``."""
    try:
        header, _ = _decode_header(payload)
        return str(header["session_id"]), int(header["seq"])
    except Exception:
        return None, None
